/// Frontal-matrix compression: the paper's third test problem. Extracts the
/// root frontal matrix (the Schur complement of the top separator) from a
/// multifrontal factorization of a 3D Poisson problem, clusters the
/// separator-plane geometry, and compresses the dense front with the
/// sketching H2 construction and the weak-admissibility HSS baseline. The
/// sketching operator is the full dense front, as in the paper.

#include <iostream>

#include "baselines/hss.hpp"
#include "core/construction.hpp"
#include "core/error_est.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "sparse/multifrontal.hpp"

using namespace h2sketch;

int main() {
  const sparse::Grid g{17, 17, 17};
  std::cout << "factoring 3D Poisson " << g.nx << "^3 (" << g.size() << " unknowns)...\n";
  const sparse::CsrMatrix a = sparse::poisson_matrix(g);
  const auto mf = sparse::multifrontal_root_front(a, g, {64});
  const index_t nf = mf.root_front.rows();
  std::cout << "root separator front: " << nf << " x " << nf << "\n";

  // Cluster the separator-plane geometry and permute the front.
  auto tr = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(sparse::grid_points(g, mf.root_vars), 32));
  Matrix front(nf, nf);
  for (index_t j = 0; j < nf; ++j)
    for (index_t i = 0; i < nf; ++i)
      front(i, j) = mf.root_front(tr->original_index(i), tr->original_index(j));

  kern::DenseMatrixSampler sampler(front.view());
  kern::DenseEntryGenerator gen(front.view());
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = 32;
  opts.initial_samples = 64;

  auto h2res = core::construct_h2(tr, tree::Admissibility::general(0.7), sampler, gen, opts);
  kern::DenseMatrixSampler fresh(front.view());
  h2::H2Sampler approx(h2res.matrix);
  const real_t err = core::relative_error_2norm(fresh, approx, 15);

  kern::DenseMatrixSampler s_hss(front.view());
  auto hss = baselines::construct_hss(tr, s_hss, gen, opts);

  const double dense_mb = static_cast<double>(nf) * nf * 8.0 / (1024.0 * 1024.0);
  std::cout << "dense front: " << dense_mb << " MiB\n"
            << "H2 (eta=0.7): "
            << static_cast<double>(h2res.stats.memory_bytes) / (1024.0 * 1024.0) << " MiB, ranks ["
            << h2res.stats.min_rank << "," << h2res.stats.max_rank << "], rel err " << err << "\n"
            << "HSS (weak):   "
            << static_cast<double>(hss.stats.memory_bytes) / (1024.0 * 1024.0) << " MiB, ranks ["
            << hss.stats.min_rank << "," << hss.stats.max_rank << "]\n";
  return err < 1e-4 ? 0 : 1;
}
