/// Gaussian-process regression with an H2-compressed covariance: one of the
/// applications motivating the paper's introduction. The posterior mean at
/// the training points requires solving (K + sigma^2 I) alpha = y; with the
/// H2 matvec each CG iteration costs O(N) instead of O(N^2).

#include <cmath>
#include <iostream>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "la/blas.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"

using namespace h2sketch;

namespace {

/// Conjugate gradients on (A + sigma2 I) x = b with A given by a matvec.
index_t conjugate_gradients(const h2::H2Matrix& a, real_t sigma2, const_real_span b, real_span x,
                            real_t rtol, index_t max_it) {
  const index_t n = static_cast<index_t>(b.size());
  std::vector<real_t> r(b.begin(), b.end()), p(r), ap(static_cast<size_t>(n));
  std::fill(x.begin(), x.end(), 0.0);
  real_t rr = la::dot(r, r);
  const real_t stop = rtol * rtol * rr;
  index_t it = 0;
  for (; it < max_it && rr > stop; ++it) {
    Matrix pv(n, 1), apv(n, 1);
    std::copy(p.begin(), p.end(), pv.data());
    h2::h2_matvec(a, pv.view(), apv.view());
    for (index_t i = 0; i < n; ++i)
      ap[static_cast<size_t>(i)] = apv(i, 0) + sigma2 * p[static_cast<size_t>(i)];
    const real_t alpha = rr / la::dot(p, ap);
    la::axpy(alpha, p, x);
    la::axpy(-alpha, ap, r);
    const real_t rr_new = la::dot(r, r);
    const real_t beta = rr_new / rr;
    rr = rr_new;
    for (index_t i = 0; i < n; ++i)
      p[static_cast<size_t>(i)] = r[static_cast<size_t>(i)] + beta * p[static_cast<size_t>(i)];
  }
  return it;
}

} // namespace

int main() {
  const index_t n = 4096;
  const real_t sigma2 = 1e-2; // observation noise

  auto pts = geo::uniform_random_cube(n, 3, 5);
  auto tr = std::make_shared<tree::ClusterTree>(tree::ClusterTree::build(pts, 32));
  kern::Matern32Kernel kernel(0.3);

  // Compress the covariance with the sketching construction.
  kern::KernelMatVecSampler sampler(*tr, kernel);
  kern::KernelEntryGenerator entry_gen(*tr, kernel);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  auto res = core::construct_h2(tr, tree::Admissibility::general(0.7), sampler, entry_gen, opts);
  std::cout << "covariance compressed: " << res.stats.summary() << "\n";

  // Synthetic observations y = f(x) + noise, in permuted order.
  std::vector<real_t> y(static_cast<size_t>(n));
  SmallRng noise(9);
  for (index_t i = 0; i < n; ++i) {
    const real_t x0 = tr->coord_permuted(i, 0), x1 = tr->coord_permuted(i, 1);
    y[static_cast<size_t>(i)] =
        std::sin(3.0 * x0) * std::cos(2.0 * x1) + 0.05 * noise.next_gaussian();
  }

  // Posterior weights: (K + sigma^2 I) alpha = y via CG on the H2 matvec.
  // The covariance is ill-conditioned, so the plain-CG iteration count is
  // substantial; each iteration is O(N) thanks to the compressed operator.
  std::vector<real_t> alpha(static_cast<size_t>(n));
  const index_t iters = conjugate_gradients(res.matrix, sigma2, y, alpha, 1e-7, 3000);
  std::cout << "CG converged in " << iters << " iterations\n";

  // Residual check through the operator.
  Matrix av(n, 1), kv(n, 1);
  std::copy(alpha.begin(), alpha.end(), av.data());
  h2::h2_matvec(res.matrix, av.view(), kv.view());
  real_t resid = 0, ynorm = 0;
  for (index_t i = 0; i < n; ++i) {
    const real_t r = kv(i, 0) + sigma2 * alpha[static_cast<size_t>(i)] - y[static_cast<size_t>(i)];
    resid += r * r;
    ynorm += y[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
  }
  std::cout << "relative residual: " << std::sqrt(resid / ynorm) << "\n";
  // Posterior mean at the training points is K alpha.
  std::cout << "posterior mean sample: m(x0) = " << kv(0, 0) << " vs observed y0 = " << y[0]
            << "\n";
  return std::sqrt(resid / ynorm) < 1e-5 ? 0 : 1;
}
