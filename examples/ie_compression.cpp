/// Volume integral equation compression: the paper's second application.
/// Builds the Helmholtz cos(k r)/r operator on a uniform 3D cube through a
/// Chebyshev-interpolation H2 matrix (the fast "input operator", standing in
/// for H2Opus), then reconstructs it with the sketching algorithm at a
/// tighter adaptive rank, comparing admissibility parameters.

#include <iostream>

#include "core/construction.hpp"
#include "core/error_est.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/kernels.hpp"

using namespace h2sketch;

int main() {
  const index_t n = 4096;
  auto tr = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, 11), 16));
  kern::HelmholtzCosKernel kernel(/*k=*/3.0);

  for (real_t eta : {0.9, 0.7}) {
    const auto adm = tree::Admissibility::general(eta);

    // Input operator: Chebyshev interpolation H2 (uniform rank q^3).
    const h2::H2Matrix input = h2::build_cheb_h2(tr, adm, kernel, /*q=*/3);
    h2::H2Sampler sampler(input);
    h2::H2EntryGenerator entry_gen(input);

    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 128;
    opts.sample_block = 32;
    auto res = core::construct_h2(tr, adm, sampler, entry_gen, opts);

    h2::H2Sampler a(input);
    h2::H2Sampler b(res.matrix);
    const real_t err = core::relative_error_2norm(a, b, 10);

    std::cout << "eta=" << eta << ": Csp=" << res.matrix.mtree.csp()
              << ", input rank=" << input.max_rank()
              << ", sketched ranks [" << res.stats.min_rank << "," << res.stats.max_rank << "]"
              << ", samples=" << res.stats.total_samples
              << ", memory=" << static_cast<double>(res.stats.memory_bytes) / (1024.0 * 1024.0)
              << " MiB, rel err=" << err << "\n";
  }
  return 0;
}
