/// Command-line utility around the library: compress a kernel matrix to a
/// file, inspect a saved H2 matrix, or apply it to a vector of ones. Shows
/// the save/load workflow a downstream solver would use (compress once,
/// reload for repeated matvecs).
///
///   h2_tool compress <out.h2> [N] [kernel: exp|helm|matern] [tol]
///   h2_tool info <in.h2>
///   h2_tool matvec <in.h2>

#include <cstring>
#include <iostream>
#include <string>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/h2_io.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"

using namespace h2sketch;

namespace {

int cmd_compress(int argc, char** argv) {
  const std::string path = argv[2];
  const index_t n = argc > 3 ? std::atoll(argv[3]) : 4096;
  const std::string which = argc > 4 ? argv[4] : "exp";
  const real_t tol = argc > 5 ? std::atof(argv[5]) : 1e-6;

  std::unique_ptr<kern::KernelFunction> kernel;
  if (which == "helm") kernel = std::make_unique<kern::HelmholtzCosKernel>(3.0);
  else if (which == "matern") kernel = std::make_unique<kern::Matern32Kernel>(0.3);
  else kernel = std::make_unique<kern::ExponentialKernel>(0.2);

  auto tr = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, 7), 32));
  kern::KernelMatVecSampler sampler(*tr, *kernel);
  kern::KernelEntryGenerator gen(*tr, *kernel);
  core::ConstructionOptions opts;
  opts.tol = tol;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  auto res = core::construct_h2(tr, tree::Admissibility::general(0.7), sampler, gen, opts);
  std::cout << res.stats.summary() << "\n";
  h2::save_h2_file(path, res.matrix);
  std::cout << "saved " << path << "\n";
  return 0;
}

int cmd_info(const char* path) {
  const h2::H2Matrix a = h2::load_h2_file(path);
  std::cout << "N = " << a.size() << ", levels = " << a.num_levels() << ", Csp = "
            << a.mtree.csp() << "\n"
            << "ranks [" << a.min_rank() << ", " << a.max_rank() << "]\n"
            << "far blocks " << a.mtree.total_far_blocks() << ", dense blocks "
            << a.mtree.near_leaf.count() << "\n"
            << "memory " << static_cast<double>(a.memory_bytes()) / (1024.0 * 1024.0) << " MiB ("
            << static_cast<double>(a.size()) * a.size() * 8.0 / (1024.0 * 1024.0)
            << " MiB dense)\n";
  return 0;
}

int cmd_matvec(const char* path) {
  const h2::H2Matrix a = h2::load_h2_file(path);
  const index_t n = a.size();
  Matrix x(n, 1), y(n, 1);
  x.fill(1.0);
  const double t0 = wall_seconds();
  h2::h2_matvec(a, x.view(), y.view());
  std::cout << "||K*1|| = " << la::norm_f(y.view()) << " in " << wall_seconds() - t0 << " s\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "compress") == 0) return cmd_compress(argc, argv);
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) return cmd_info(argv[2]);
  if (argc >= 3 && std::strcmp(argv[1], "matvec") == 0) return cmd_matvec(argv[2]);
  std::cerr << "usage:\n  h2_tool compress <out.h2> [N] [exp|helm|matern] [tol]\n"
               "  h2_tool info <in.h2>\n  h2_tool matvec <in.h2>\n";
  // With no arguments (e.g. smoke runs), exercise the full cycle in temp.
  if (argc == 1) {
    const char* tmp = "h2_tool_demo.h2";
    char prog[] = "h2_tool", sub[] = "compress", n[] = "1024";
    char* fake[] = {prog, sub, const_cast<char*>(tmp), n};
    cmd_compress(4, fake);
    cmd_info(tmp);
    cmd_matvec(tmp);
    std::remove(tmp);
    return 0;
  }
  return 2;
}
