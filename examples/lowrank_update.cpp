/// Low-rank update recompression: the paper's third application (Fig. 5c).
/// An existing H2 covariance matrix is updated with a rank-32 symmetric
/// product — the shape of a Schur-complement update in multifrontal or
/// H2-LU arithmetic — and recompressed into a fresh H2 matrix whose sampler
/// is the old matvec plus the low-rank apply.

#include <iostream>

#include "core/construction.hpp"
#include "core/error_est.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/update_sampler.hpp"
#include "kernels/kernels.hpp"

using namespace h2sketch;

int main() {
  const index_t n = 4096;
  const index_t update_rank = 32;
  auto tr = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, 21), 16));
  kern::ExponentialKernel kernel(0.2);
  const auto adm = tree::Admissibility::general(0.7);

  // The existing compressed operator.
  const h2::H2Matrix base = h2::build_cheb_h2(tr, adm, kernel, /*q=*/3);

  // A symmetric rank-32 update U U^T in the tree's permuted index space.
  la::LowRank lr = la::random_lowrank(n, n, update_rank, 0.05, 77);
  lr.v = to_matrix(lr.u.view());

  // Recompress K' = K + U U^T.
  h2::UpdatedH2Sampler sampler(base, lr);
  h2::UpdatedH2EntryGenerator entry_gen(base, lr);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 128;
  opts.sample_block = 32;
  auto res = core::construct_h2(tr, adm, sampler, entry_gen, opts);

  h2::UpdatedH2Sampler exact(base, lr);
  h2::H2Sampler approx(res.matrix);
  const real_t err = core::relative_error_2norm(exact, approx, 10);

  std::cout << "base ranks: uniform " << base.max_rank() << " (Chebyshev)\n"
            << "recompressed ranks: [" << res.stats.min_rank << ", " << res.stats.max_rank
            << "] after adding a rank-" << update_rank << " product\n"
            << "samples: " << res.stats.total_samples << ", time " << res.stats.total_seconds
            << " s\n"
            << "relative 2-norm error of the recompression: " << err << "\n";
  return err < 1e-4 ? 0 : 1;
}
