/// Quickstart: compress a 3D Gaussian-process covariance matrix into an H2
/// matrix with the adaptive sketching construction (Algorithm 1), then
/// verify the result with a fast matvec and a power-method error estimate.
///
/// The only inputs the construction sees are (a) a black-box product
/// Y = K*Omega and (b) an entry evaluator for small sub-blocks — here both
/// are provided directly from the kernel for clarity (the benchmarks use a
/// fast H2 operator as the black box instead).

#include <iostream>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "la/blas.hpp"
#include "core/error_est.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"

using namespace h2sketch;

int main() {
  const index_t n = 4096;

  // 1. Geometry and hierarchical clustering (KD-tree, leaf size 32).
  auto pts = geo::uniform_random_cube(n, 3, /*seed=*/7);
  auto tr = std::make_shared<tree::ClusterTree>(tree::ClusterTree::build(std::move(pts), 32));

  // 2. The kernel and the two black-box inputs of Algorithm 1.
  kern::ExponentialKernel kernel(/*correlation_length=*/0.2);
  kern::KernelMatVecSampler sampler(*tr, kernel);   // Y = K * Omega
  kern::KernelEntryGenerator entry_gen(*tr, kernel); // K(I, J) sub-blocks

  // 3. Adaptive sketching construction.
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  auto result = core::construct_h2(tr, tree::Admissibility::general(0.7), sampler, entry_gen, opts);

  std::cout << "construction: " << result.stats.summary() << "\n";

  // 4. Use the compressed operator: y = K x in O(N).
  Matrix x(n, 1), y(n, 1);
  fill_gaussian(x.view(), GaussianStream(3));
  h2::h2_matvec(result.matrix, x.view(), y.view());
  std::cout << "matvec norm: " << la::norm2(real_span(y.data(), static_cast<size_t>(n))) << "\n";

  // 5. Measure the relative 2-norm error against the exact operator.
  kern::KernelMatVecSampler exact(*tr, kernel);
  h2::H2Sampler approx(result.matrix);
  const real_t err = core::relative_error_2norm(exact, approx, 10);
  std::cout << "relative 2-norm error: " << err << " (target " << opts.tol << ")\n";
  std::cout << "compressed memory: "
            << static_cast<double>(result.matrix.memory_bytes()) / (1024.0 * 1024.0) << " MiB vs "
            << static_cast<double>(n) * n * 8.0 / (1024.0 * 1024.0) << " MiB dense\n";
  return err < 100 * opts.tol ? 0 : 1;
}
