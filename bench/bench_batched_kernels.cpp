/// Micro-benchmarks (google-benchmark) of the batched execution substrate:
/// variable-size batched gemm, the conflict-free BSR gemm, batched row-ID
/// and the counter-based Gaussian fill. These are the building blocks whose
/// batching the paper's GPU implementation lives on.

#include <benchmark/benchmark.h>

#include "batched/batched_gemm.hpp"
#include "batched/batched_id.hpp"
#include "batched/batched_rand.hpp"
#include "batched/bsr_gemm.hpp"
#include "common/random.hpp"

using namespace h2sketch;

namespace {

Matrix random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Matrix a(m, n);
  SmallRng rng(seed);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.next_gaussian();
  return a;
}

void BM_BatchedGemm(benchmark::State& state) {
  const index_t batch = state.range(0);
  const index_t m = 32;
  std::vector<Matrix> as, bs, cs;
  std::vector<ConstMatrixView> av, bv;
  std::vector<MatrixView> cv;
  for (index_t i = 0; i < batch; ++i) {
    as.push_back(random_matrix(m, m, 1 + static_cast<std::uint64_t>(i)));
    bs.push_back(random_matrix(m, m, 100 + static_cast<std::uint64_t>(i)));
    cs.push_back(Matrix(m, m));
  }
  for (index_t i = 0; i < batch; ++i) {
    av.push_back(as[static_cast<size_t>(i)].view());
    bv.push_back(bs[static_cast<size_t>(i)].view());
    cv.push_back(cs[static_cast<size_t>(i)].view());
  }
  batched::ExecutionContext ctx(batched::Backend::Batched);
  for (auto _ : state) {
    batched::batched_gemm(ctx, 1.0, av, la::Op::None, bv, la::Op::None, 0.0, cv);
    benchmark::DoNotOptimize(cs[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedGemm)->Arg(16)->Arg(64)->Arg(256);

void BM_BsrGemm(benchmark::State& state) {
  const index_t rows = state.range(0);
  const index_t bs = 32, d = 32;
  SmallRng rng(7);
  std::vector<index_t> row_ptr = {0}, col;
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < rows; ++c)
      if (rng.next_real() < 4.0 / static_cast<double>(rows)) col.push_back(c);
    row_ptr.push_back(static_cast<index_t>(col.size()));
  }
  std::vector<Matrix> blocks, xs, ys;
  std::vector<ConstMatrixView> blv, xv;
  std::vector<MatrixView> yv;
  for (size_t e = 0; e < col.size(); ++e) blocks.push_back(random_matrix(bs, bs, e));
  for (index_t c = 0; c < rows; ++c) xs.push_back(random_matrix(bs, d, 900 + c));
  for (index_t r = 0; r < rows; ++r) ys.push_back(Matrix(bs, d));
  for (auto& b : blocks) blv.push_back(b.view());
  for (auto& x : xs) xv.push_back(x.view());
  for (auto& y : ys) yv.push_back(y.view());
  batched::ExecutionContext ctx(batched::Backend::Batched);
  for (auto _ : state) {
    batched::bsr_gemm(ctx, 1.0, row_ptr, col, blv, xv, yv);
    benchmark::DoNotOptimize(ys[0].data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<index_t>(col.size()));
}
BENCHMARK(BM_BsrGemm)->Arg(32)->Arg(128);

void BM_BatchedRowId(benchmark::State& state) {
  const index_t batch = state.range(0);
  std::vector<Matrix> ys;
  std::vector<ConstMatrixView> yv;
  for (index_t i = 0; i < batch; ++i) ys.push_back(random_matrix(48, 32, 3 + i));
  for (auto& y : ys) yv.push_back(y.view());
  std::vector<la::RowID> out(static_cast<size_t>(batch));
  batched::ExecutionContext ctx(batched::Backend::Batched);
  for (auto _ : state) {
    batched::batched_row_id(ctx, yv, 1e-8, -1, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedRowId)->Arg(16)->Arg(64);

void BM_BatchedRand(benchmark::State& state) {
  const index_t n = state.range(0);
  Matrix a(n, 64);
  GaussianStream stream(5);
  batched::ExecutionContext ctx(batched::Backend::Batched);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    batched::batched_fill_gaussian(ctx, a.view(), stream, offset);
    offset += static_cast<std::uint64_t>(n) * 64;
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64);
}
BENCHMARK(BM_BatchedRand)->Arg(1024)->Arg(8192);

} // namespace

BENCHMARK_MAIN();
