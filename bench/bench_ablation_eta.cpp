/// Ablation for the admissibility parameter (paper Fig. 4(a)-(b) and the
/// Csp discussion in §II-A): smaller eta refines the partitioning, raising
/// the sparsity constant and block counts, and shifts memory between dense
/// and coupling storage.

#include "bench_common.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  const index_t n = large ? 32768 : 2048;
  const index_t leaf = large ? 64 : 16;

  Table table("ablation_eta",
              {"eta", "csp", "far_blocks", "near_blocks", "h2_MB", "max_rank", "time_s", "err"});
  table.print_header();

  for (real_t eta : {0.9, 0.7, 0.5}) {
    KernelWorkload w("cov", n, leaf, eta, 3);
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 128;
    opts.sample_block = 64;
    auto res = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                  *w.entry_gen, opts);
    const real_t err = measure_error(w, res.matrix);
    table.row({fmt(eta), fmt(res.matrix.mtree.csp()), fmt(res.matrix.mtree.total_far_blocks()),
               fmt(res.matrix.mtree.near_leaf.count()), fmt_mb(res.stats.memory_bytes),
               fmt(res.stats.max_rank), fmt(res.stats.total_seconds), fmt(err, 2)});
  }
  std::cout << "\nShape checks (paper Fig. 4): smaller eta -> more refined partitioning\n"
               "(more, smaller far blocks; larger Csp) and smaller ranks per block.\n";
  return 0;
}
