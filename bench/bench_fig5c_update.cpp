/// Fig. 5(c): time vs N for recompressing an H2 covariance matrix updated
/// with a rank-32 low-rank product — the multifrontal/Schur-update use case.
/// The sketching operator is the fast H2 matvec plus the low-rank apply;
/// entries come from the existing H2 representation plus low-rank rows.

#include "bench_common.hpp"
#include "h2/update_sampler.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  std::vector<index_t> sizes = {1024, 2048, 4096};
  if (large) sizes = {8192, 16384, 32768, 65536};
  const index_t leaf = large ? 64 : 16;
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;
  const index_t update_rank = 32; // the paper's rank-32 product

  Table table("fig5c_update", {"N", "ours_batched_s", "ours_naive_s", "ours_samples", "ours_err",
                               "rank_min", "rank_max", "memory_MB"});
  table.print_header();

  for (index_t n : sizes) {
    KernelWorkload w("cov", n, leaf, eta, cheb_q);
    // Symmetric rank-32 update U U^T (permuted space), modest scale.
    la::LowRank lr = la::random_lowrank(n, n, update_rank, 0.05, 99 + n);
    lr.v = to_matrix(lr.u.view());

    h2::UpdatedH2Sampler sampler(w.input, lr);
    h2::UpdatedH2EntryGenerator gen(w.input, lr);
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 256;
    opts.sample_block = 64;

    batched::ExecutionContext ctx_b(batched::Backend::Batched);
    auto res_b =
        core::construct_h2(w.tree, tree::Admissibility::general(eta), sampler, gen, opts, ctx_b);

    h2::UpdatedH2Sampler fresh(w.input, lr);
    h2::H2Sampler approx(res_b.matrix);
    const real_t err = core::relative_error_2norm(fresh, approx, 10);

    h2::UpdatedH2Sampler sampler_n(w.input, lr);
    batched::ExecutionContext ctx_n(batched::Backend::Naive);
    auto res_n =
        core::construct_h2(w.tree, tree::Admissibility::general(eta), sampler_n, gen, opts, ctx_n);

    table.row({fmt(n), fmt(res_b.stats.total_seconds), fmt(res_n.stats.total_seconds),
               fmt(res_b.stats.total_samples), fmt(err, 2), fmt(res_b.stats.min_rank),
               fmt(res_b.stats.max_rank), fmt_mb(res_b.stats.memory_bytes)});
  }
  std::cout << "\nShape checks (paper Fig. 5c): linear time growth, flat O(1) sample count;\n"
               "ranks slightly above the un-updated covariance case.\n";
  return 0;
}
