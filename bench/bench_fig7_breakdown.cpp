/// Fig. 7: breakdown of construction time by phase (percent of total) for
/// varying problem sizes of the 3D covariance matrix, on both execution
/// backends. Naive (per-block launches) plays the paper's CPU panel (a);
/// Batched (marshaled, one launch per level per op) plays the GPU-shaped
/// panel (b). Phases follow the paper: sampling, entry generation, BSR
/// gemm, convergence test (batched QR), ID, upsweep, misc (marshal/alloc).

#include "bench_common.hpp"
#include "obs/trace.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

/// Phase seconds recovered from the trace: every PhaseScope is also a
/// "construction"-category span, so the breakdown reads off the same event
/// stream a Perfetto view of the run would show.
std::vector<double> phase_seconds_from_trace(const obs::TraceData& trace) {
  std::vector<double> out(static_cast<size_t>(Phase::kCount), 0.0);
  for (const auto& e : trace.events) {
    if (e.cat != "construction" || e.dur_ns < 0) continue;
    for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
      if (e.name == phase_name(static_cast<Phase>(p))) {
        out[static_cast<size_t>(p)] += static_cast<double>(e.dur_ns) * 1e-9;
        break;
      }
  }
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  std::vector<index_t> sizes = {1024, 2048, 4096};
  if (large) sizes = {8192, 16384, 32768};
  const index_t leaf = large ? 64 : 16;
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;

  std::vector<std::string> cols = {"backend", "N", "total_s"};
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
    cols.push_back(std::string(phase_name(static_cast<Phase>(p))) + "_pct");
  Table table("fig7_breakdown", cols);
  table.print_header();

  for (auto backend : {batched::Backend::Naive, batched::Backend::Batched}) {
    for (index_t n : sizes) {
      KernelWorkload w("cov", n, leaf, eta, cheb_q);
      core::ConstructionOptions opts;
      opts.tol = 1e-6;
      opts.initial_samples = 256;
      opts.sample_block = 64;
      batched::ExecutionContext ctx(backend);
      // batchedGen reads from the input H2 representation (consistent with
      // the sampler). The paper's analytic-kernel batchedGen is cheaper per
      // entry, which shifts ~half of our entry_gen slice into the paper's
      // sampling/BSR slices; see the EXPERIMENTS.md note on Fig. 7.
      obs::start_trace();
      auto res = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                    *w.entry_gen, opts, ctx);
      ctx.sync_all();
      const obs::TraceData trace = obs::stop_trace();
      const std::vector<double> phase_s = phase_seconds_from_trace(trace);
      std::vector<std::string> cells = {
          backend == batched::Backend::Naive ? "naive(cpu)" : "batched(gpu-model)", fmt(n),
          fmt(res.stats.total_seconds)};
      double total = 0.0;
      for (double s : phase_s) total += s;
      total = std::max(1e-12, total);
      for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
        cells.push_back(fmt(100.0 * phase_s[static_cast<size_t>(p)] / total, 3));
      table.row(cells);
      if (trace.dropped > 0)
        std::cout << "  (warning: " << trace.dropped << " trace events dropped)\n";
    }
  }
  std::cout << "\nPhase percentages are aggregated from trace spans (obs::start_trace /\n"
               "stop_trace), not separate stopwatches: the same run can be exported with\n"
               "H2SKETCH_TRACE=path.json and inspected span-by-span in Perfetto.\n";
  std::cout << "\nShape checks (paper Fig. 7): sampling + BSR gemm dominate on both\n"
               "backends; the convergence-test share is larger on the batched/GPU-shaped\n"
               "path at small N and shrinks as N grows; ID stays a small slice.\n";
  return 0;
}
