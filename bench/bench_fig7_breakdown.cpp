/// Fig. 7: breakdown of construction time by phase (percent of total) for
/// varying problem sizes of the 3D covariance matrix, on both execution
/// backends. Naive (per-block launches) plays the paper's CPU panel (a);
/// Batched (marshaled, one launch per level per op) plays the GPU-shaped
/// panel (b). Phases follow the paper: sampling, entry generation, BSR
/// gemm, convergence test (batched QR), ID, upsweep, misc (marshal/alloc).

#include "bench_common.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  std::vector<index_t> sizes = {1024, 2048, 4096};
  if (large) sizes = {8192, 16384, 32768};
  const index_t leaf = large ? 64 : 16;
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;

  std::vector<std::string> cols = {"backend", "N", "total_s"};
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
    cols.push_back(std::string(phase_name(static_cast<Phase>(p))) + "_pct");
  Table table("fig7_breakdown", cols);
  table.print_header();

  for (auto backend : {batched::Backend::Naive, batched::Backend::Batched}) {
    for (index_t n : sizes) {
      KernelWorkload w("cov", n, leaf, eta, cheb_q);
      core::ConstructionOptions opts;
      opts.tol = 1e-6;
      opts.initial_samples = 256;
      opts.sample_block = 64;
      batched::ExecutionContext ctx(backend);
      // batchedGen reads from the input H2 representation (consistent with
      // the sampler). The paper's analytic-kernel batchedGen is cheaper per
      // entry, which shifts ~half of our entry_gen slice into the paper's
      // sampling/BSR slices; see the EXPERIMENTS.md note on Fig. 7.
      auto res = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                    *w.entry_gen, opts, ctx);
      std::vector<std::string> cells = {
          backend == batched::Backend::Naive ? "naive(cpu)" : "batched(gpu-model)", fmt(n),
          fmt(res.stats.total_seconds)};
      const double total = std::max(1e-12, res.stats.phases.total());
      for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
        cells.push_back(fmt(100.0 * res.stats.phases.seconds(static_cast<Phase>(p)) / total, 3));
      table.row(cells);
    }
  }
  std::cout << "\nShape checks (paper Fig. 7): sampling + BSR gemm dominate on both\n"
               "backends; the convergence-test share is larger on the batched/GPU-shaped\n"
               "path at small N and shrinks as N grows; ID stays a small slice.\n";
  return 0;
}
