/// Proxy-point sampler head-to-head: the same construction driven by the
/// exact O(N^2 d) KernelMatVecSampler and by the O(N d) ProxyMatVecSampler,
/// at the N = 8192 scale where the exact sampler dominates build time
/// (BENCH_hss_solve.json: 24.7 s of a 26.4 s pipeline).
///
/// Default mode runs two head-to-heads and asserts the acceptance contract
/// (proxy error within 10x of exact at the same tolerance, total proxy
/// build — surrogate setup + sketched construction — at least 5x faster):
///   * HSS: the bench_hss_solve workload (2D regularized GP covariance,
///     leaf 64, tol 1e-6) through solver::build_hss. This is the
///     sampling-dominated regime the contract targets (~700 adaptive
///     samples), so it carries both the error and the 5x speedup gate.
///   * H2: the 3D exponential-covariance workload (leaf 32, eta 0.7,
///     tol 1e-6) through core::construct_h2. At N = 8192 this workload
///     converges in ~96 samples, so exact sampling is only a few seconds
///     of the build and no sampler swap can reach 5x — the row gates the
///     error contract only and documents where the O(N) crossover lies
///     (the --xlarge run shows the regime where the proxy path is the only
///     one that completes).
/// Errors are power-method relative 2-norms against a fresh exact sampler.
///
/// --xlarge additionally runs a paper-scale N = 2^17 3D proxy construction
/// (unreachable for the exact sampler on this machine) and records its
/// stats; its error is measured against the proxy surrogate (the operator
/// actually sketched), since an exact oracle matvec at that scale costs
/// ~1.7e10 kernel evaluations per power iteration.
///
/// Results go to BENCH_proxy.json; --smoke shrinks everything for the CI
/// sanitizer sweep and writes the gitignored BENCH_proxy_smoke.json.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/proxy_sampler.hpp"
#include "solver/hss_construction.hpp"
#include "solver/hss_matrix.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

/// Black-box adapter over the HSS fast matvec, for the error estimator.
class HssSampler final : public kern::MatVecSampler {
 public:
  explicit HssSampler(const solver::HssMatrix& a) : a_(&a) {}
  index_t size() const override { return a_->size(); }
  void sample(ConstMatrixView omega, MatrixView y) override {
    a_->matvec(omega, y);
    record_samples(omega.cols);
  }

 private:
  const solver::HssMatrix* a_;
};

struct HeadToHead {
  std::string workload;
  index_t n = 0;
  double exact_seconds = 0.0;
  double proxy_surrogate_seconds = 0.0;
  double proxy_construct_seconds = 0.0;
  double speedup = 0.0;
  real_t exact_err = 0.0;
  real_t proxy_err = 0.0;
  index_t exact_samples = 0;
  index_t proxy_samples = 0;
  index_t exact_max_rank = 0;
  index_t proxy_max_rank = 0;

  /// Whether the 5x speedup gate binds for this row (it binds where the
  /// exact sampler dominates the build; see the file comment).
  bool gate_speedup = true;

  double proxy_total() const { return proxy_surrogate_seconds + proxy_construct_seconds; }
  bool pass() const {
    const bool err_ok = proxy_err < std::max<real_t>(10 * exact_err, real_t(1e-5));
    return err_ok && (!gate_speedup || speedup >= 5.0);
  }
};

HeadToHead run_hss(index_t n, real_t tol, int err_iters) {
  auto tree = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 2, 4242), 64));
  kern::ExponentialKernel base(0.2);
  kern::RidgeKernel kernel(base, 10.0);
  kern::KernelEntryGenerator gen(*tree, kernel);
  core::ConstructionOptions opts;
  opts.tol = tol;
  opts.sample_block = 32;
  opts.initial_samples = 64;

  HeadToHead r;
  r.workload = "hss_2d_cov_ridge";
  r.n = n;

  kern::KernelMatVecSampler exact(*tree, kernel);
  auto res_e = solver::build_hss(tree, exact, gen, opts);
  r.exact_seconds = res_e.stats.total_seconds;
  r.exact_samples = res_e.stats.total_samples;
  r.exact_max_rank = res_e.stats.max_rank;

  kern::ProxySamplerOptions popts;
  popts.tol = tol;
  kern::ProxyMatVecSampler proxy(tree, kernel, popts);
  r.proxy_surrogate_seconds = proxy.build_seconds();
  auto res_p = solver::build_hss(tree, proxy, gen, opts);
  r.proxy_construct_seconds = res_p.stats.total_seconds;
  r.proxy_samples = res_p.stats.total_samples;
  r.proxy_max_rank = res_p.stats.max_rank;
  r.speedup = r.exact_seconds / r.proxy_total();

  kern::KernelMatVecSampler oracle(*tree, kernel);
  HssSampler se(res_e.matrix), sp(res_p.matrix);
  r.exact_err = core::relative_error_2norm(oracle, se, err_iters);
  r.proxy_err = core::relative_error_2norm(oracle, sp, err_iters);
  return r;
}

HeadToHead run_h2(index_t n, index_t leaf, real_t tol, int err_iters) {
  auto tree = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, 1234), leaf));
  kern::ExponentialKernel kernel(0.2);
  kern::KernelEntryGenerator gen(*tree, kernel);
  const auto adm = tree::Admissibility::general(0.7);
  core::ConstructionOptions opts;
  opts.tol = tol;
  opts.sample_block = 32;
  opts.initial_samples = 32;

  HeadToHead r;
  r.workload = "h2_3d_cov";
  r.n = n;
  // ~96 samples suffice here, so sampling is a minority of the exact build
  // and the 5x gate cannot bind at this N; the error contract still does.
  r.gate_speedup = false;

  kern::KernelMatVecSampler exact(*tree, kernel);
  auto res_e = core::construct_h2(tree, adm, exact, gen, opts);
  r.exact_seconds = res_e.stats.total_seconds;
  r.exact_samples = res_e.stats.total_samples;
  r.exact_max_rank = res_e.stats.max_rank;

  kern::ProxySamplerOptions popts;
  popts.tol = tol;
  kern::ProxyMatVecSampler proxy(tree, kernel, popts);
  r.proxy_surrogate_seconds = proxy.build_seconds();
  auto res_p = core::construct_h2(tree, adm, proxy, gen, opts);
  r.proxy_construct_seconds = res_p.stats.total_seconds;
  r.proxy_samples = res_p.stats.total_samples;
  r.proxy_max_rank = res_p.stats.max_rank;
  r.speedup = r.exact_seconds / r.proxy_total();

  kern::KernelMatVecSampler oracle(*tree, kernel);
  h2::H2Sampler se(res_e.matrix), sp(res_p.matrix);
  r.exact_err = core::relative_error_2norm(oracle, se, err_iters);
  r.proxy_err = core::relative_error_2norm(oracle, sp, err_iters);
  return r;
}

struct XLarge {
  index_t n = 0, leaf = 0;
  real_t tol = 0;
  double surrogate_seconds = 0.0, construct_seconds = 0.0;
  index_t total_samples = 0, min_rank = 0, max_rank = 0, proxy_points = 0;
  double memory_mb = 0.0;
  real_t err_vs_surrogate = 0.0;
};

XLarge run_xlarge(index_t n, index_t leaf, real_t tol) {
  auto tree = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, 1234), leaf));
  kern::ExponentialKernel kernel(0.2);
  kern::KernelEntryGenerator gen(*tree, kernel);
  const auto adm = tree::Admissibility::general(0.7);
  core::ConstructionOptions opts;
  opts.tol = tol;
  opts.sample_block = 32;
  opts.initial_samples = 32;

  XLarge x;
  x.n = n;
  x.leaf = leaf;
  x.tol = tol;
  kern::ProxySamplerOptions popts;
  popts.tol = tol;
  kern::ProxyMatVecSampler proxy(tree, kernel, popts);
  x.surrogate_seconds = proxy.build_seconds();
  x.proxy_points = proxy.proxy_points_used();
  std::cout << "  surrogate built in " << fmt(x.surrogate_seconds) << " s ("
            << x.proxy_points << " proxy points)\n";
  auto res = core::construct_h2(tree, adm, proxy, gen, opts);
  x.construct_seconds = res.stats.total_seconds;
  x.total_samples = res.stats.total_samples;
  x.min_rank = res.stats.min_rank;
  x.max_rank = res.stats.max_rank;
  x.memory_mb = static_cast<double>(res.stats.memory_bytes) / (1024.0 * 1024.0);

  h2::H2Sampler approx(res.matrix);
  x.err_vs_surrogate = core::relative_error_2norm(proxy, approx, /*iters=*/6);
  return x;
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const bool xlarge = has_flag(argc, argv, "--xlarge");

  const index_t n = smoke ? 1024 : 8192;
  const real_t tol = 1e-6;
  const int err_iters = smoke ? 4 : 8;

  Table table("bench_proxy", {"workload", "n", "exact_s", "proxy_s", "speedup", "exact_err",
                              "proxy_err", "exact_samples", "proxy_samples"});
  table.print_header();

  std::vector<HeadToHead> runs;
  runs.push_back(run_hss(n, tol, err_iters));
  // The 3D H2 head-to-head needs tree depth before far blocks exist; the
  // smoke size drops the leaf to 16 like bench_construction.
  runs.push_back(run_h2(n, smoke ? 16 : 32, tol, err_iters));
  bool all_pass = true;
  for (const auto& r : runs) {
    table.row({r.workload, fmt(r.n), fmt(r.exact_seconds), fmt(r.proxy_total()), fmt(r.speedup),
               fmt(r.exact_err, 2), fmt(r.proxy_err, 2), fmt(r.exact_samples),
               fmt(r.proxy_samples)});
    // The acceptance gates only bind at the full scale: smoke sizes are too
    // small for the O(N) vs O(N^2) separation to show.
    if (!smoke && !r.pass()) all_pass = false;
  }

  XLarge x;
  if (xlarge) {
    std::cout << "\nxlarge: N = 2^17 proxy-sampled 3D construction...\n";
    x = run_xlarge(index_t{1} << 17, 256, 1e-4);
    std::cout << "  construction " << fmt(x.construct_seconds) << " s, samples "
              << x.total_samples << ", ranks " << x.min_rank << "-" << x.max_rank << ", memory "
              << fmt(x.memory_mb) << " MB, err vs surrogate " << fmt(x.err_vs_surrogate, 2)
              << "\n";
  }

  const char* json_name = smoke ? "BENCH_proxy_smoke.json" : "BENCH_proxy.json";
  std::ofstream json(json_name);
  json << "{\n  \"bench\": \"proxy\",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
       << "\",\n  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n  \"tol\": " << tol
       << ",\n  \"note\": \"proxy_s = surrogate build + sketched construction; errors are "
       << "power-method relative 2-norms against the exact kernel sampler\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    json << "    {\"workload\": \"" << r.workload << "\", \"n\": " << r.n
         << ", \"exact_seconds\": " << r.exact_seconds
         << ", \"proxy_surrogate_seconds\": " << r.proxy_surrogate_seconds
         << ", \"proxy_construct_seconds\": " << r.proxy_construct_seconds
         << ", \"speedup\": " << r.speedup << ", \"exact_err\": " << r.exact_err
         << ", \"proxy_err\": " << r.proxy_err << ", \"exact_samples\": " << r.exact_samples
         << ", \"proxy_samples\": " << r.proxy_samples
         << ", \"exact_max_rank\": " << r.exact_max_rank
         << ", \"proxy_max_rank\": " << r.proxy_max_rank
         << ", \"speedup_gated\": " << (r.gate_speedup ? "true" : "false") << "}"
         << (i + 1 < runs.size() || xlarge ? "," : "") << "\n";
  }
  if (xlarge) {
    json << "    {\"workload\": \"h2_3d_cov_xlarge\", \"n\": " << x.n << ", \"leaf\": " << x.leaf
         << ", \"tol\": " << x.tol << ", \"proxy_surrogate_seconds\": " << x.surrogate_seconds
         << ", \"proxy_construct_seconds\": " << x.construct_seconds
         << ", \"total_samples\": " << x.total_samples << ", \"min_rank\": " << x.min_rank
         << ", \"max_rank\": " << x.max_rank << ", \"memory_mb\": " << x.memory_mb
         << ", \"proxy_points\": " << x.proxy_points
         << ", \"err_vs_surrogate\": " << x.err_vs_surrogate << "}\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_name << "\n";

  if (!all_pass) {
    std::cout << "WARNING: proxy acceptance gates (err <= 10x exact; speedup >= 5x where "
                 "sampling dominates) not met\n";
    return 1;
  }
  return 0;
}
