/// Table II: effect of leaf size and sample block size on runtime, rank
/// range, memory, total samples and error, for the 3D covariance and IE
/// problems (tol = 1e-6). "fixed" rows take one round of d = leaf samples;
/// "adaptive" rows start from a block of 32 and add blocks as the
/// convergence test demands.

#include "bench_common.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  const index_t n = large ? 65536 : 4096; // paper: 2^18
  const std::vector<index_t> leaves = large ? std::vector<index_t>{128, 256}
                                            : std::vector<index_t>{32, 64};
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;

  Table table("table2_adaptive", {"problem", "mode", "leaf", "sample_block", "time_s",
                                  "rank_range", "memory_MB", "total_samples", "rel_err"});
  table.print_header();

  for (const std::string which : {"cov", "ie"}) {
    for (index_t leaf : leaves) {
      KernelWorkload w(which, n, leaf, eta, cheb_q);
      for (int mode = 0; mode < 2; ++mode) {
        core::ConstructionOptions opts;
        opts.tol = 1e-6;
        if (mode == 0) { // fixed: one round of `leaf` samples
          opts.adaptive = false;
          opts.initial_samples = leaf;
          opts.sample_block = leaf;
        } else { // adaptive: blocks of 32
          opts.adaptive = true;
          opts.initial_samples = 32;
          opts.sample_block = 32;
        }
        w.sampler->reset_sample_count();
        auto res = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                      *w.entry_gen, opts);
        const real_t err = measure_error(w, res.matrix);
        table.row({which, mode == 0 ? "fixed" : "adaptive", fmt(leaf), fmt(opts.sample_block),
                   fmt(res.stats.total_seconds), fmt(res.stats.min_rank) + "-" +
                       fmt(res.stats.max_rank),
                   fmt_mb(res.stats.memory_bytes), fmt(res.stats.total_samples), fmt(err, 2)});
      }
    }
  }
  std::cout << "\nShape checks (paper Table II): adaptive uses fewer total samples and runs\n"
               "faster than fixed; smaller leaves lower memory and time; adaptive errors are\n"
               "slightly larger but stay within the 1e-6 target scale.\n";
  return 0;
}
