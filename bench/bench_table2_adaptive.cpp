/// Table II: effect of leaf size and sample block size on runtime, rank
/// range, memory, total samples and error, for the 3D covariance and IE
/// problems (tol = 1e-6). "fixed" rows take one round of d = leaf samples;
/// "adaptive" rows start from a block of 32 and add blocks as the
/// convergence test demands.

#include <fstream>

#include "bench_common.hpp"
#include "kernels/proxy_sampler.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

struct Row {
  std::string problem, mode;
  index_t n = 0, leaf = 0, sample_block = 0, total_samples = 0, min_rank = 0, max_rank = 0;
  double time_s = 0.0, memory_mb = 0.0;
  real_t rel_err = 0.0;
};

/// Paper-scale construction row (N = 2^17), reachable only through the
/// O(N d) proxy sampler: the exact sampler would need ~1.7e10 kernel
/// evaluations per sketch round at this size. The error is measured against
/// the proxy surrogate — the operator actually sketched — since an exact
/// oracle matvec is equally unaffordable here.
Row run_xlarge_proxy() {
  const index_t n = index_t{1} << 17;
  const index_t leaf = 256;
  const real_t tol = 1e-4;
  auto tree = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, 1234), leaf));
  kern::ExponentialKernel kernel(0.2);
  kern::KernelEntryGenerator gen(*tree, kernel);
  kern::ProxySamplerOptions popts;
  popts.tol = tol;
  kern::ProxyMatVecSampler sampler(tree, kernel, popts);
  std::cout << "xlarge surrogate built in " << fmt(sampler.build_seconds()) << " s\n";

  core::ConstructionOptions opts;
  opts.tol = tol;
  opts.adaptive = true;
  opts.initial_samples = 32;
  opts.sample_block = 32;
  auto res = core::construct_h2(tree, tree::Admissibility::general(0.7), sampler, gen, opts);
  h2::H2Sampler approx(res.matrix);
  const real_t err = core::relative_error_2norm(sampler, approx, /*iters=*/6);
  return {"cov-proxy", "adaptive(tol=1e-4)", n, leaf, opts.sample_block,
          res.stats.total_samples, res.stats.min_rank, res.stats.max_rank,
          res.stats.total_seconds + sampler.build_seconds(),
          static_cast<double>(res.stats.memory_bytes) / (1024.0 * 1024.0), err};
}

} // namespace

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  const bool xlarge = has_flag(argc, argv, "--xlarge");
  const index_t n = large ? 65536 : 4096; // paper: 2^18
  const std::vector<index_t> leaves = large ? std::vector<index_t>{128, 256}
                                            : std::vector<index_t>{32, 64};
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;

  Table table("table2_adaptive", {"problem", "mode", "leaf", "sample_block", "time_s",
                                  "rank_range", "memory_MB", "total_samples", "rel_err"});
  table.print_header();
  std::vector<Row> rows;

  for (const std::string which : {"cov", "ie"}) {
    for (index_t leaf : leaves) {
      KernelWorkload w(which, n, leaf, eta, cheb_q);
      for (int mode = 0; mode < 2; ++mode) {
        core::ConstructionOptions opts;
        opts.tol = 1e-6;
        if (mode == 0) { // fixed: one round of `leaf` samples
          opts.adaptive = false;
          opts.initial_samples = leaf;
          opts.sample_block = leaf;
        } else { // adaptive: blocks of 32
          opts.adaptive = true;
          opts.initial_samples = 32;
          opts.sample_block = 32;
        }
        w.sampler->reset_sample_count();
        auto res = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                      *w.entry_gen, opts);
        const real_t err = measure_error(w, res.matrix);
        table.row({which, mode == 0 ? "fixed" : "adaptive", fmt(leaf), fmt(opts.sample_block),
                   fmt(res.stats.total_seconds), fmt(res.stats.min_rank) + "-" +
                       fmt(res.stats.max_rank),
                   fmt_mb(res.stats.memory_bytes), fmt(res.stats.total_samples), fmt(err, 2)});
        rows.push_back({which, mode == 0 ? "fixed" : "adaptive", n, leaf, opts.sample_block,
                        res.stats.total_samples, res.stats.min_rank, res.stats.max_rank,
                        res.stats.total_seconds,
                        static_cast<double>(res.stats.memory_bytes) / (1024.0 * 1024.0), err});
      }
    }
  }

  if (xlarge) {
    std::cout << "\nrunning paper-scale proxy construction (N = 2^17)...\n";
    Row r = run_xlarge_proxy();
    table.row({r.problem, r.mode, fmt(r.leaf), fmt(r.sample_block), fmt(r.time_s),
               fmt(r.min_rank) + "-" + fmt(r.max_rank), fmt(r.memory_mb, 4),
               fmt(r.total_samples), fmt(r.rel_err, 2)});
    rows.push_back(r);
  }

  // Reference record for the perf trajectory: the paper-shape checks above
  // plus raw numbers, machine-readable.
  {
    std::ofstream json("BENCH_table2.json");
    json << "{\n  \"bench\": \"table2_adaptive\",\n  \"n\": " << n
         << ",\n  \"eta\": " << eta << ",\n  \"cheb_q\": " << cheb_q
         << ",\n  \"hardware_threads\": " << std::thread::hardware_concurrency()
         << ",\n  \"note\": \"cov-proxy rows sketch through the O(N d) proxy sampler; their "
         << "time_s includes the surrogate build and their rel_err is measured against the "
         << "proxy surrogate (the operator actually sketched)\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json << "    {\"problem\": \"" << r.problem << "\", \"mode\": \"" << r.mode
           << "\", \"n\": " << r.n << ", \"leaf\": " << r.leaf
           << ", \"sample_block\": " << r.sample_block
           << ", \"time_s\": " << r.time_s << ", \"min_rank\": " << r.min_rank
           << ", \"max_rank\": " << r.max_rank << ", \"memory_mb\": " << r.memory_mb
           << ", \"total_samples\": " << r.total_samples << ", \"rel_err\": " << r.rel_err << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nwrote BENCH_table2.json\n";
  }
  std::cout << "\nShape checks (paper Table II): adaptive uses fewer total samples and runs\n"
               "faster than fixed; smaller leaves lower memory and time; adaptive errors are\n"
               "slightly larger but stay within the 1e-6 target scale.\n";
  return 0;
}
