/// The solver workload: HSS-compress a regularized GP covariance matrix
/// (K + sigma^2 I, exponential kernel on a 2D cloud), ULV-factor it, and
/// solve — factor time, solve time and relative residual against a dense
/// Cholesky reference. This is the serving pattern the solver subsystem
/// opens: compress once, factor once, answer many right-hand sides at O(N r)
/// each, at a fraction of the dense O(N^3)/O(N^2) cost.
///
/// Results go to BENCH_hss_solve.json: per-N HSS build/ULV factor/solve
/// seconds, solve residual (measured against the exact operator via the
/// O(N^2) on-the-fly kernel apply), memory, and the dense Cholesky
/// factor/solve reference where it fits. `--smoke` runs a tiny problem for
/// the CI sanitizer sweep; `--large` adds the N = 8192 row.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/random.hpp"
#include "geometry/point_cloud.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "solver/hss_construction.hpp"
#include "solver/ulv.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

struct Measurement {
  index_t n = 0;
  double hss_build_s = 0.0;
  double ulv_factor_s = 0.0;
  double solve_s = 0.0;       ///< single RHS
  double solve16_s = 0.0;     ///< 16-RHS batched solve, total
  real_t residual = 0.0;      ///< ||K x - b|| / ||b|| against the exact operator
  index_t max_rank = 0;
  index_t total_samples = 0;
  double hss_mb = 0.0;
  double ulv_mb = 0.0;
  bool dense_done = false;
  double dense_chol_s = 0.0;
  double dense_solve_s = 0.0;
  real_t dense_residual = 0.0;
};

Measurement run_case(index_t n, real_t tol, bool with_dense) {
  Measurement m;
  m.n = n;
  auto tr = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 2, 4242), 64));
  kern::ExponentialKernel base(0.2);
  kern::RidgeKernel kernel(base, 10.0);
  kern::KernelMatVecSampler sampler(*tr, kernel);
  kern::KernelEntryGenerator gen(*tr, kernel);

  core::ConstructionOptions opts;
  opts.tol = tol;
  opts.sample_block = 32;
  opts.initial_samples = 64;

  double t0 = wall_seconds();
  auto res = solver::build_hss(tr, sampler, gen, opts);
  m.hss_build_s = wall_seconds() - t0;
  m.max_rank = res.stats.max_rank;
  m.total_samples = res.stats.total_samples;
  m.hss_mb = static_cast<double>(res.matrix.memory_bytes()) / (1024.0 * 1024.0);

  t0 = wall_seconds();
  solver::UlvCholesky f = solver::ulv_factor(res.matrix);
  m.ulv_factor_s = wall_seconds() - t0;
  m.ulv_mb = static_cast<double>(f.memory_bytes()) / (1024.0 * 1024.0);

  Matrix b(n, 1), x(n, 1);
  fill_gaussian(b.view(), GaussianStream(77));
  t0 = wall_seconds();
  f.solve_many(b.view(), x.view());
  m.solve_s = wall_seconds() - t0;

  Matrix b16(n, 16), x16(n, 16);
  fill_gaussian(b16.view(), GaussianStream(78));
  t0 = wall_seconds();
  f.solve_many(b16.view(), x16.view());
  m.solve16_s = wall_seconds() - t0;

  // Residual against the *exact* operator (not the HSS approximation).
  Matrix ax(n, 1);
  kern::KernelMatVecSampler applier(*tr, kernel);
  applier.sample(x.view(), ax.view());
  real_t num = 0, den = 0;
  for (index_t i = 0; i < n; ++i) {
    num += (ax(i, 0) - b(i, 0)) * (ax(i, 0) - b(i, 0));
    den += b(i, 0) * b(i, 0);
  }
  m.residual = std::sqrt(num / den);

  if (with_dense) {
    // Dense reference: assemble K in tree order, Cholesky, solve.
    Matrix kd(n, n);
    {
      std::vector<index_t> all(static_cast<size_t>(n));
      for (index_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
      gen.generate_block(all, all, kd.view());
    }
    t0 = wall_seconds();
    la::cholesky(kd.view());
    m.dense_chol_s = wall_seconds() - t0;
    Matrix xd = to_matrix(b.view());
    t0 = wall_seconds();
    la::cholesky_solve(kd.view(), xd.view());
    m.dense_solve_s = wall_seconds() - t0;
    Matrix axd(n, 1);
    applier.sample(xd.view(), axd.view());
    num = den = 0;
    for (index_t i = 0; i < n; ++i) {
      num += (axd(i, 0) - b(i, 0)) * (axd(i, 0) - b(i, 0));
      den += b(i, 0) * b(i, 0);
    }
    m.dense_residual = std::sqrt(num / den);
    m.dense_done = true;
  }
  return m;
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const bool large = has_flag(argc, argv, "--large");
  const real_t tol = 1e-6;

  std::vector<index_t> sizes = smoke ? std::vector<index_t>{512} : std::vector<index_t>{2048, 4096};
  if (large) sizes.push_back(8192);

  Table table("bench_hss_solve", {"n", "hss_build_s", "ulv_factor_s", "solve_s", "residual",
                                  "dense_chol_s", "dense_residual", "max_rank"});
  table.print_header();

  std::vector<Measurement> all;
  for (index_t n : sizes) {
    const Measurement m = run_case(n, tol, /*with_dense=*/true);
    table.row({fmt(m.n), fmt(m.hss_build_s), fmt(m.ulv_factor_s), fmt(m.solve_s, 4),
               fmt(m.residual, 3), m.dense_done ? fmt(m.dense_chol_s) : "-",
               m.dense_done ? fmt(m.dense_residual, 3) : "-", fmt(m.max_rank)});
    all.push_back(m);
  }

  // Acceptance gate (mirrors the test suites): the solve residual tracks the
  // construction tolerance within two orders.
  bool ok = true;
  for (const auto& m : all)
    if (!(m.residual < 100 * tol)) ok = false;
  if (!ok) std::cout << "WARNING: solve residual exceeded 100x construction tolerance\n";

  const char* json_name = smoke ? "BENCH_hss_solve_smoke.json" : "BENCH_hss_solve.json";
  std::ofstream json(json_name);
  json << "{\n  \"bench\": \"hss_solve\",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
       << "\",\n  \"workload\": \"2D cloud, exponential kernel (l=0.2) + ridge 10 "
       << "(regularized GP covariance), tol=1e-6, leaf=64\",\n  \"residual_metric\": "
       << "\"||K x - b|| / ||b|| against the exact operator via O(N^2) kernel apply\","
       << "\n  \"runs\": [\n";
  for (size_t i = 0; i < all.size(); ++i) {
    const auto& m = all[i];
    json << "    {\"n\": " << m.n << ", \"hss_build_s\": " << m.hss_build_s
         << ", \"ulv_factor_s\": " << m.ulv_factor_s << ", \"solve_s\": " << m.solve_s
         << ", \"solve16_s\": " << m.solve16_s << ", \"residual\": " << m.residual
         << ", \"max_rank\": " << m.max_rank << ", \"total_samples\": " << m.total_samples
         << ", \"hss_mb\": " << m.hss_mb << ", \"ulv_mb\": " << m.ulv_mb;
    if (m.dense_done)
      json << ", \"dense_chol_s\": " << m.dense_chol_s
           << ", \"dense_solve_s\": " << m.dense_solve_s
           << ", \"dense_residual\": " << m.dense_residual;
    json << "}" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_name << "\n";
  return ok ? 0 : 1;
}
