#pragma once

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/construction.hpp"
#include "core/error_est.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/kernels.hpp"

/// \file bench_common.hpp
/// Shared plumbing for the figure/table harnesses: workload construction
/// (the paper's covariance / volume-IE pipelines with a Chebyshev-built
/// input operator playing H2Opus's role), table printing and CSV output.
/// Every harness accepts --large to restore paper-scale problem sizes
/// (laptop-scale axes are the default; see DESIGN.md / EXPERIMENTS.md).

namespace h2sketch::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

/// Aligned table printer that mirrors rows into a CSV file.
class Table {
 public:
  Table(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), cols_(std::move(columns)) {
    for (const auto& c : cols_) widths_.push_back(std::max<size_t>(c.size() + 2, 12));
  }

  void print_header() const {
    std::cout << "\n== " << name_ << " ==\n";
    for (size_t i = 0; i < cols_.size(); ++i)
      std::cout << std::left << std::setw(static_cast<int>(widths_[i])) << cols_[i];
    std::cout << "\n";
    for (size_t i = 0; i < cols_.size(); ++i)
      std::cout << std::string(widths_[i] - 1, '-') << " ";
    std::cout << "\n";
  }

  void row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i)
      std::cout << std::left << std::setw(static_cast<int>(widths_[std::min(i, widths_.size() - 1)]))
                << cells[i];
    std::cout << "\n" << std::flush;
    rows_.push_back(cells);
  }

  ~Table() {
    std::ofstream csv(name_ + ".csv");
    for (size_t i = 0; i < cols_.size(); ++i) csv << (i ? "," : "") << cols_[i];
    csv << "\n";
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size(); ++i) csv << (i ? "," : "") << r[i];
      csv << "\n";
    }
  }

 private:
  std::string name_;
  std::vector<std::string> cols_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

template <typename T>
std::string fmt(T v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

inline std::string fmt_mb(std::size_t bytes) {
  return fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 4);
}

/// The paper's §V-A pipeline for the covariance / IE experiments: cluster a
/// uniform 3D cube, build the input operator by Chebyshev interpolation
/// (H2Opus's role), and expose its fast matvec + entry evaluation as the
/// black-box pair for Algorithm 1.
struct KernelWorkload {
  std::shared_ptr<tree::ClusterTree> tree;
  std::unique_ptr<kern::KernelFunction> kernel;
  h2::H2Matrix input; ///< the operator being reconstructed
  double input_build_seconds = 0.0;

  std::unique_ptr<h2::H2Sampler> sampler;
  std::unique_ptr<h2::H2EntryGenerator> entry_gen;
  std::unique_ptr<kern::KernelEntryGenerator> kernel_gen;

  /// which = "cov" (exponential, l = 0.2) or "ie" (Helmholtz cos, k = 3).
  KernelWorkload(const std::string& which, index_t n, index_t leaf, real_t eta, index_t cheb_q,
                 std::uint64_t seed = 1234) {
    tree = std::make_shared<tree::ClusterTree>(
        tree::ClusterTree::build(geo::uniform_random_cube(n, 3, seed), leaf));
    if (which == "ie")
      kernel = std::make_unique<kern::HelmholtzCosKernel>(3.0);
    else
      kernel = std::make_unique<kern::ExponentialKernel>(0.2);
    const double t0 = wall_seconds();
    input = h2::build_cheb_h2(tree, tree::Admissibility::general(eta), *kernel, cheb_q);
    input_build_seconds = wall_seconds() - t0;
    sampler = std::make_unique<h2::H2Sampler>(input);
    entry_gen = std::make_unique<h2::H2EntryGenerator>(input);
    kernel_gen = std::make_unique<kern::KernelEntryGenerator>(*tree, *kernel);
  }
};

/// Relative 2-norm error of a constructed H2 against the workload operator.
inline real_t measure_error(const KernelWorkload& w, const h2::H2Matrix& approx, int iters = 10) {
  h2::H2Sampler a(w.input);
  h2::H2Sampler b(approx);
  return core::relative_error_2norm(a, b, iters);
}

} // namespace h2sketch::bench
