/// Fig. 5(b): construction time vs N for the discretized Helmholtz volume
/// integral-equation matrix (cos(k r)/r, k = 3, eta = 0.7, tol = 1e-6).
/// Same comparison set as Fig. 5(a).

#include "baselines/peeling_hodlr.hpp"
#include "baselines/topdown.hpp"
#include "bench_common.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  std::vector<index_t> sizes = {1024, 2048, 4096};
  if (large) sizes = {8192, 16384, 32768, 65536};
  const index_t leaf = large ? 64 : 16;
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;
  const index_t topdown_cutoff = 2048;

  Table table("fig5b_ie", {"N", "ours_batched_s", "ours_naive_s", "ours_samples", "ours_err",
                           "colored_s", "colored_samples", "peeling_s", "peeling_samples",
                           "peeling_capped", "csp"});
  table.print_header();

  for (index_t n : sizes) {
    KernelWorkload w("ie", n, leaf, eta, cheb_q);
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 256;
    opts.sample_block = 64;

    batched::ExecutionContext ctx_b(batched::Backend::Batched);
    auto res_b = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                    *w.entry_gen, opts, ctx_b);
    const real_t err = measure_error(w, res_b.matrix);

    w.sampler->reset_sample_count();
    batched::ExecutionContext ctx_n(batched::Backend::Naive);
    auto res_n = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                    *w.entry_gen, opts, ctx_n);

    std::string colored_s = "-", colored_samples = "-", peeling_s = "-", peeling_samples = "-",
                peeling_capped = "-";
    if (n <= topdown_cutoff) {
      h2::H2Sampler s1(w.input);
      baselines::TopDownOptions td;
      td.tol = 1e-6;
      td.sample_block = 64;
      auto rc = baselines::build_topdown_hmatrix(w.tree, tree::Admissibility::general(eta), s1, td);
      colored_s = fmt(rc.stats.seconds);
      colored_samples = fmt(rc.stats.total_samples);

      h2::H2Sampler s2(w.input);
      baselines::TopDownOptions pd;
      pd.tol = 1e-6;
      pd.sample_block = 64;
      pd.max_block_rank = 768;
      auto rp = baselines::build_peeling_hodlr(w.tree, s2, pd);
      peeling_s = fmt(rp.stats.seconds);
      peeling_samples = fmt(rp.stats.total_samples);
      peeling_capped = rp.stats.rank_cap_hit ? "yes" : "no";
    }

    table.row({fmt(n), fmt(res_b.stats.total_seconds), fmt(res_n.stats.total_seconds),
               fmt(res_b.stats.total_samples), fmt(err, 2), colored_s, colored_samples, peeling_s,
               peeling_samples, peeling_capped, fmt(res_b.stats.csp)});
  }
  std::cout << "\nShape checks (paper Fig. 5b): same conclusions as Fig. 5a for the IE kernel.\n";
  return 0;
}
