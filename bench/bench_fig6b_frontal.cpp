/// Fig. 6(b): memory of compressed multifrontal frontal matrices — the
/// proposed strongly-admissible H2 vs the weak-admissibility formats
/// (HSS = Algorithm 1 under weak admissibility, HODLR = top-down peeling;
/// HODBF is out of scope, see DESIGN.md). Small fronts are exact root
/// fronts of 3D Poisson grids via the multifrontal substrate; larger fronts
/// use the DtN-like synthetic separator kernel. As in the paper, the
/// sketching operator here is a full dense matrix.

#include "baselines/hss.hpp"
#include "baselines/peeling_hodlr.hpp"
#include "bench_common.hpp"
#include "kernels/dense_sampler.hpp"
#include "sparse/multifrontal.hpp"
#include "sparse/synthetic_front.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

/// Dense (permuted) front + its cluster tree.
struct FrontCase {
  std::string name;
  std::shared_ptr<tree::ClusterTree> tr;
  Matrix dense; ///< permuted dense front
};

FrontCase exact_front(index_t g1d, index_t leaf) {
  const sparse::Grid g{g1d, g1d, g1d};
  const sparse::CsrMatrix a = sparse::poisson_matrix(g);
  const auto mf = sparse::multifrontal_root_front(a, g, {64});
  geo::PointCloud pts = sparse::grid_points(g, mf.root_vars);
  FrontCase fc;
  fc.name = "poisson" + std::to_string(g1d) + "^3";
  fc.tr = std::make_shared<tree::ClusterTree>(tree::ClusterTree::build(std::move(pts), leaf));
  const index_t n = fc.tr->num_points();
  fc.dense.resize(n, n);
  // Permute the front into cluster order.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      fc.dense(i, j) = mf.root_front(fc.tr->original_index(i), fc.tr->original_index(j));
  return fc;
}

FrontCase synthetic_front_case(index_t nx, index_t leaf) {
  const auto f = sparse::make_synthetic_front(nx, nx);
  const auto kernel = sparse::synthetic_front_kernel(f);
  FrontCase fc;
  fc.name = "dtn" + std::to_string(nx) + "x" + std::to_string(nx);
  fc.tr = std::make_shared<tree::ClusterTree>(tree::ClusterTree::build(f.points, leaf));
  kern::KernelEntryGenerator gen(*fc.tr, kernel);
  const index_t n = fc.tr->num_points();
  std::vector<index_t> all(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  fc.dense.resize(n, n);
  gen.generate_block(all, all, fc.dense.view());
  return fc;
}

} // namespace

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  const index_t leaf = 32;
  const real_t eta = 0.7;

  std::vector<FrontCase> cases;
  cases.push_back(exact_front(9, leaf));   // 81-point separator
  cases.push_back(exact_front(13, leaf));  // 169
  cases.push_back(exact_front(17, leaf));  // 289
  cases.push_back(synthetic_front_case(24, leaf));  // 576
  cases.push_back(synthetic_front_case(32, leaf));  // 1024
  if (large) {
    cases.push_back(synthetic_front_case(50, leaf)); // 2500 (paper's smallest)
    cases.push_back(synthetic_front_case(100, leaf)); // 10000
  }

  Table table("fig6b_frontal", {"front", "N", "dense_MB", "h2_MB", "hss_MB", "hodlr_MB",
                                "h2_err", "h2_max_rank", "hss_max_rank"});
  table.print_header();

  for (auto& fc : cases) {
    const index_t n = fc.tr->num_points();
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.sample_block = 32;
    opts.initial_samples = 64;

    kern::DenseEntryGenerator gen(fc.dense.view());

    kern::DenseMatrixSampler s_h2(fc.dense.view());
    auto r_h2 = core::construct_h2(fc.tr, tree::Admissibility::general(eta), s_h2, gen, opts);
    kern::DenseMatrixSampler fresh(fc.dense.view());
    h2::H2Sampler approx(r_h2.matrix);
    const real_t err = core::relative_error_2norm(fresh, approx, 10);

    kern::DenseMatrixSampler s_hss(fc.dense.view());
    auto r_hss = baselines::construct_hss(fc.tr, s_hss, gen, opts);

    kern::DenseMatrixSampler s_hodlr(fc.dense.view());
    baselines::TopDownOptions td;
    td.tol = 1e-6;
    td.sample_block = 32;
    auto r_hodlr = baselines::build_peeling_hodlr(fc.tr, s_hodlr, td);

    const std::size_t dense_bytes = static_cast<std::size_t>(n) * n * sizeof(real_t);
    table.row({fc.name, fmt(n), fmt_mb(dense_bytes), fmt_mb(r_h2.stats.memory_bytes),
               fmt_mb(r_hss.stats.memory_bytes), fmt_mb(r_hodlr.stats.memory_bytes), fmt(err, 2),
               fmt(r_h2.stats.max_rank), fmt(r_hss.stats.max_rank)});
  }
  std::cout << "\nShape checks (paper Fig. 6b): the H2 memory grows ~O(N); the weak-\n"
               "admissibility formats (HSS/HODLR) carry larger ranks on these 2D-surface\n"
               "operators and their memory grows superlinearly (smaller prefactor at tiny N).\n";
  return 0;
}
