/// The serving throughput bench (ROADMAP item 3): one factored operator,
/// many concurrent single-RHS clients. For each concurrent-client count it
/// measures the one-launch-per-request baseline (every client drives its
/// own context and every request is its own blocked-size-1 launch) against
/// the coalescing engine (requests batched into one `HssMatrix::matvec` /
/// `solve_many` launch per tick), reporting ops/s and p50/p99 request
/// latency for both, plus the realized mean batch size and flush-reason
/// split. Results go to BENCH_serving.json; the coalesced path is expected
/// to beat the baseline by >= 2x at 16 clients — the amortization H2Opus's
/// setup/apply phase separation exists to exploit.

#include <atomic>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "backend/fault_injection.hpp"
#include "backend/registry.hpp"
#include "bench_common.hpp"
#include "common/errors.hpp"
#include "common/random.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile_sketch.hpp"
#include "serve/coalescer.hpp"
#include "serve/operator_cache.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

struct ModeResult {
  double seconds = 0.0;
  double ops_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  // Sketch-backed quantiles: per-client KLL sketches merged after the run
  // (~1% rank error vs the histogram's ~19% log-bucket width).
  double sketch_p50_ms = 0.0;
  double sketch_p99_ms = 0.0;
  double mean_batch = 1.0;
  std::uint64_t batches = 0;
  std::uint64_t flush_full = 0;
  std::uint64_t flush_timeout = 0;
};

/// Merge per-client sketches into one and fill the sketch quantile fields.
void fill_sketch_quantiles(ModeResult& r, std::vector<obs::QuantileSketch>& per_client) {
  obs::QuantileSketch merged;
  for (const auto& sk : per_client) merged.merge(sk);
  if (merged.empty()) return;
  r.sketch_p50_ms = merged.quantile(0.50) * 1e3;
  r.sketch_p99_ms = merged.quantile(0.99) * 1e3;
}

Matrix client_inputs(index_t n, int clients, std::uint64_t seed) {
  Matrix x(n, clients);
  fill_gaussian(x.view(), GaussianStream(seed), 0);
  return x;
}

/// Closed-loop clients, one launch per request: each client owns a context
/// and calls the blocked path with a single RHS.
ModeResult run_per_request(serve::ServedOperator& op, serve::RequestKind kind, int clients,
                           int per_client) {
  const index_t n = op.size();
  const Matrix xs = client_inputs(n, clients, 42);
  Matrix ys(n, clients);
  serve::LatencyHistogram hist;
  std::vector<obs::QuantileSketch> sketches(static_cast<size_t>(clients));
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      batched::ExecutionContext ctx(backend::shared_backend(op.backend));
      const ConstMatrixView x = ConstMatrixView(xs.view()).col_range(c, 1);
      MatrixView y = ys.view().col_range(c, 1);
      for (int r = 0; r < per_client; ++r) {
        const double t0 = wall_seconds();
        if (kind == serve::RequestKind::Matvec)
          op.matrix.matvec(ctx, x, y);
        else
          op.factor.solve_many(x, y, ctx);
        const double dt = wall_seconds() - t0;
        hist.record(dt);
        sketches[static_cast<size_t>(c)].update(dt);
      }
    });
  for (auto& t : threads) t.join();

  ModeResult r;
  r.seconds = timer.elapsed();
  r.ops_per_s = static_cast<double>(clients) * per_client / r.seconds;
  r.p50_ms = hist.quantile(0.50) * 1e3;
  r.p99_ms = hist.quantile(0.99) * 1e3;
  fill_sketch_quantiles(r, sketches);
  r.batches = static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(per_client);
  return r;
}

/// Closed-loop clients through the coalescer.
ModeResult run_coalesced(serve::OperatorHandle op, serve::RequestKind kind, int clients,
                         int per_client) {
  const index_t n = op->size();
  const Matrix xs = client_inputs(n, clients, 42);
  Matrix ys(n, clients);
  const serve::MetricsSnapshot before = op->metrics->snapshot();

  serve::CoalescerOptions opts;
  opts.max_batch = std::max<index_t>(1, std::min(clients, 64));
  // The tick: waiting ~half a launch time to fill a batch is always worth
  // it — a k-wide blocked launch costs barely more than a 1-wide one.
  opts.max_delay_seconds = 2e-3;
  opts.lanes = clients > 8 ? 2 : 1;
  serve::Coalescer co(opts);

  serve::LatencyHistogram hist;
  std::vector<obs::QuantileSketch> sketches(static_cast<size_t>(clients));
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      const auto x = const_real_span(xs.data() + c * n, static_cast<size_t>(n));
      const auto y = real_span(ys.data() + c * n, static_cast<size_t>(n));
      for (int r = 0; r < per_client; ++r) {
        const double t0 = wall_seconds();
        co.submit(op, kind, x, y).get();
        const double dt = wall_seconds() - t0;
        hist.record(dt);
        sketches[static_cast<size_t>(c)].update(dt);
      }
    });
  for (auto& t : threads) t.join();
  co.stop();

  ModeResult r;
  r.seconds = timer.elapsed();
  r.ops_per_s = static_cast<double>(clients) * per_client / r.seconds;
  r.p50_ms = hist.quantile(0.50) * 1e3;
  r.p99_ms = hist.quantile(0.99) * 1e3;
  fill_sketch_quantiles(r, sketches);
  const serve::MetricsSnapshot after = op->metrics->snapshot();
  r.batches = after.batches - before.batches;
  r.flush_full = after.flush_full - before.flush_full;
  r.flush_timeout = after.flush_timeout - before.flush_timeout;
  const std::uint64_t rhs = after.coalesced_rhs - before.coalesced_rhs;
  r.mean_batch = r.batches == 0 ? 0.0 : static_cast<double>(rhs) / static_cast<double>(r.batches);
  return r;
}

struct Run {
  const char* kind;
  int clients;
  int requests;
  ModeResult per_request;
  ModeResult coalesced;
  double speedup = 0.0;
};

/// Chaos pass (--faults): the coalesced matvec workload against a
/// "faulty-cpu" operator with a ~1% per-injection-point fault probability.
/// The coalescer absorbs launch/copy faults by retrying the batch on the
/// fault-free "cpu" config (same device heap); whatever still surfaces is
/// retried by the client, bounded. Returns nonzero unless every request
/// completes with the bitwise fault-free result.
int run_fault_smoke(int clients, int per_client) {
  std::cout << "\nfault smoke: " << clients << " clients x " << per_client
            << " matvecs on faulty-cpu, prob:0.01 faults at every alloc/copy/launch point\n";
  auto inj = backend::fault_injector("faulty-cpu");
  inj->set_schedule(backend::FaultSchedule::off());

  const kern::ExponentialKernel base(0.2);
  const kern::RidgeKernel kernel(base, 1.0);
  const geo::PointCloud points = geo::uniform_random_cube(384, 3, 1234);
  serve::ServeBuildOptions build;
  build.leaf_size = 32;
  build.construction.tol = 1e-6;
  build.construction.sample_block = 32;
  build.construction.initial_samples = 64;
  serve::OperatorCache cache;
  serve::OperatorHandle op = cache.acquire(
      serve::make_operator_key(points, kernel, build, "faulty-cpu"),
      [&] { return serve::build_served_operator(points, kernel, build, "faulty-cpu"); });
  const index_t n = op->size();

  const Matrix xs = client_inputs(n, clients, 42);
  Matrix y_ref(n, clients), ys(n, clients);
  {
    batched::ExecutionContext ctx(backend::shared_backend("cpu"));
    op->matrix.matvec(ctx, xs.view(), y_ref.view());
  }

  serve::CoalescerOptions opts;
  opts.max_batch = std::max<index_t>(1, std::min(clients, 64));
  opts.max_delay_seconds = 2e-3;
  serve::Coalescer co(opts);

  inj->set_schedule(backend::FaultSchedule::with_probability(0.01, 2024));
  std::atomic<std::uint64_t> completed{0}, client_retries{0}, failed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      const auto x = const_real_span(xs.data() + c * n, static_cast<size_t>(n));
      const auto y = real_span(ys.data() + c * n, static_cast<size_t>(n));
      for (int r = 0; r < per_client; ++r) {
        bool done = false;
        for (int attempt = 0; attempt < 50 && !done; ++attempt) {
          try {
            co.submit(op, serve::RequestKind::Matvec, x, y).get();
            done = true;
          } catch (const Error& e) {
            if (!e.retryable()) break;
            client_retries.fetch_add(1, std::memory_order_relaxed);
          }
        }
        (done ? completed : failed).fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& t : threads) t.join();
  co.stop();
  const auto fs = inj->fault_stats(); // before set_schedule: it resets counters
  inj->set_schedule(backend::FaultSchedule::off());

  const serve::MetricsSnapshot m = op->metrics->snapshot();
  const std::uint64_t total = static_cast<std::uint64_t>(clients) * per_client;
  const double worst = max_abs_diff(ys.view(), y_ref.view());
  std::cout << "  faults injected: " << fs.injected << " (of " << fs.points()
            << " points), coalescer degraded retries: " << m.degraded_launches
            << ", client retries: " << client_retries.load() << "\n"
            << "  requests completed: " << completed.load() << "/" << total
            << ", max |y - y_ref| = " << worst << "\n";
  if (completed.load() != total || failed.load() != 0 || worst != 0.0) {
    std::cout << "FAULT SMOKE FAILED\n";
    return 1;
  }
  std::cout << "fault smoke passed: every request completed bitwise-correct under injection.\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const bool faults = has_flag(argc, argv, "--faults");
  const index_t n = smoke ? 384 : 2048;
  const std::vector<int> client_counts = smoke ? std::vector<int>{1, 4}
                                               : std::vector<int>{1, 4, 16, 64};
  const int matvec_reqs = smoke ? 8 : 48;
  const int solve_reqs = smoke ? 4 : 12;

  // One operator, built and factored once through the cache — the serve
  // phase below never touches construction again.
  std::cout << "building served operator (N=" << n << ", exponential+ridge, tol=1e-6)...\n";
  const kern::ExponentialKernel base(0.2);
  const kern::RidgeKernel kernel(base, 1.0);
  const geo::PointCloud points = geo::uniform_random_cube(n, 3, 1234);
  serve::ServeBuildOptions build;
  build.leaf_size = 32;
  build.construction.tol = 1e-6;
  build.construction.sample_block = 32;
  build.construction.initial_samples = 64;
  serve::OperatorCache cache;
  const double t_build0 = wall_seconds();
  serve::OperatorHandle op =
      cache.acquire(serve::make_operator_key(points, kernel, build, "cpu"),
                    [&] { return serve::build_served_operator(points, kernel, build, "cpu"); });
  const double build_seconds = wall_seconds() - t_build0;
  std::cout << "  built+factored in " << fmt(build_seconds, 3) << " s, "
            << fmt_mb(op->bytes) << " MB cached\n";

  Table table("serving", {"kind", "clients", "base_ops_s", "coal_ops_s", "speedup", "batch",
                          "base_p50ms", "coal_p50ms", "coal_p99ms"});
  table.print_header();

  std::vector<Run> runs;
  for (const char* kind_name : {"matvec", "solve"}) {
    const auto kind = std::string_view(kind_name) == "matvec" ? serve::RequestKind::Matvec
                                                              : serve::RequestKind::Solve;
    const int per_client = kind == serve::RequestKind::Matvec ? matvec_reqs : solve_reqs;
    for (int clients : client_counts) {
      Run r;
      r.kind = kind_name;
      r.clients = clients;
      r.requests = clients * per_client;
      r.per_request = run_per_request(*op, kind, clients, per_client);
      r.coalesced = run_coalesced(op, kind, clients, per_client);
      r.speedup = r.coalesced.ops_per_s / r.per_request.ops_per_s;
      runs.push_back(r);
      table.row({r.kind, fmt(clients), fmt(r.per_request.ops_per_s, 4),
                 fmt(r.coalesced.ops_per_s, 4), fmt(r.speedup, 3), fmt(r.coalesced.mean_batch, 3),
                 fmt(r.per_request.p50_ms, 3), fmt(r.coalesced.p50_ms, 3),
                 fmt(r.coalesced.p99_ms, 3)});
    }
  }

  // Steady-state residency phase: the same workload built on the simdevice
  // backend, then repeatedly applied through one context. With
  // device-resident operators every repeated apply moves exactly the x
  // panel over and the y panel back — the marshaling cost a PCIe bus would
  // see per request, independent of operator size.
  struct SteadyState {
    std::uint64_t matvec_h2d = 0, matvec_d2h = 0;
    std::uint64_t solve_h2d = 0, solve_d2h = 0;
    std::uint64_t panel_bytes = 0, operator_device_bytes = 0;
  } ss;
  {
    std::cout << "\nsteady-state phase: repeated applies on a simdevice-resident operator\n";
    serve::OperatorHandle dop = cache.acquire(
        serve::make_operator_key(points, kernel, build, "simdevice"),
        [&] { return serve::build_served_operator(points, kernel, build, "simdevice"); });
    auto dev = backend::shared_backend("simdevice").device;
    batched::ExecutionContext sctx(backend::shared_backend("simdevice"));
    Matrix sx(n, 1), sy(n, 1);
    fill_gaussian(sx.view(), GaussianStream(9), 0);
    dop->matrix.matvec(sctx, sx.view(), sy.view()); // warmup (workspace growth)
    dop->factor.solve_many(sx.view(), sy.view(), sctx);
    const int reps = 8;
    const auto s0 = dev->stats();
    for (int i = 0; i < reps; ++i) dop->matrix.matvec(sctx, sx.view(), sy.view());
    const auto s1 = dev->stats();
    for (int i = 0; i < reps; ++i) dop->factor.solve_many(sx.view(), sy.view(), sctx);
    const auto s2 = dev->stats();
    ss.matvec_h2d = (s1.bytes_to_device - s0.bytes_to_device) / reps;
    ss.matvec_d2h = (s1.bytes_to_host - s0.bytes_to_host) / reps;
    ss.solve_h2d = (s2.bytes_to_device - s1.bytes_to_device) / reps;
    ss.solve_d2h = (s2.bytes_to_host - s1.bytes_to_host) / reps;
    ss.panel_bytes = static_cast<std::uint64_t>(n) * sizeof(real_t);
    ss.operator_device_bytes = dop->matrix.device_bytes() + dop->factor.device_bytes();
    std::cout << "  per-apply bytes to device: matvec " << ss.matvec_h2d << ", solve "
              << ss.solve_h2d << " (x panel = " << ss.panel_bytes << " B); operator holds "
              << fmt_mb(ss.operator_device_bytes) << " MB device-resident\n";
    if (ss.matvec_h2d != ss.panel_bytes || ss.solve_h2d != ss.panel_bytes)
      std::cout << "WARNING: steady-state apply moved more than the x panel\n";
  }

  const char* json_name = smoke ? "BENCH_serving_smoke.json" : "BENCH_serving.json";
  std::ofstream json(json_name);
  json << "{\n  \"bench\": \"serving\",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
       << "\",\n  \"workload\": \"3D cube, exponential+ridge kernel (SPD), tol=1e-6, leaf=32, "
       << "one cached ULV-factored HSS operator, closed-loop clients\",\n  \"n\": " << n
       << ",\n  \"build_seconds\": " << fmt(build_seconds, 4)
       << ",\n  \"operator_bytes\": " << op->bytes
       << ",\n  \"note\": \"per_request = one blocked-size-1 launch per request on a per-client "
       << "context; coalesced = requests batched into one solve_many/blocked-matvec launch per "
       << "tick (max_batch=clients capped at 64, max_delay=2ms, 2 lanes above 8 clients). "
       << "Latencies are client-observed: p50/p99 from the log-bucket histogram (~19% bucket "
       << "width), sketch_p50/p99 from merged per-client KLL sketches (~1% rank error). "
       << "steady_state: per-apply host<->device byte deltas after warmup on a "
       << "simdevice-resident copy of the operator — uploads equal the x panel exactly\",\n"
       << "  \"steady_state\": {\"matvec_bytes_to_device_per_apply\": " << ss.matvec_h2d
       << ", \"matvec_bytes_to_host_per_apply\": " << ss.matvec_d2h
       << ", \"solve_bytes_to_device_per_apply\": " << ss.solve_h2d
       << ", \"solve_bytes_to_host_per_apply\": " << ss.solve_d2h
       << ", \"x_panel_bytes\": " << ss.panel_bytes
       << ", \"operator_device_bytes\": " << ss.operator_device_bytes << "},\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    json << "    {\"kind\": \"" << r.kind << "\", \"clients\": " << r.clients
         << ", \"requests\": " << r.requests
         << ", \"per_request\": {\"ops_per_s\": " << fmt(r.per_request.ops_per_s, 5)
         << ", \"p50_ms\": " << fmt(r.per_request.p50_ms, 4)
         << ", \"p99_ms\": " << fmt(r.per_request.p99_ms, 4)
         << ", \"sketch_p50_ms\": " << fmt(r.per_request.sketch_p50_ms, 4)
         << ", \"sketch_p99_ms\": " << fmt(r.per_request.sketch_p99_ms, 4) << "}"
         << ", \"coalesced\": {\"ops_per_s\": " << fmt(r.coalesced.ops_per_s, 5)
         << ", \"p50_ms\": " << fmt(r.coalesced.p50_ms, 4)
         << ", \"p99_ms\": " << fmt(r.coalesced.p99_ms, 4)
         << ", \"sketch_p50_ms\": " << fmt(r.coalesced.sketch_p50_ms, 4)
         << ", \"sketch_p99_ms\": " << fmt(r.coalesced.sketch_p99_ms, 4)
         << ", \"batches\": " << r.coalesced.batches
         << ", \"mean_batch\": " << fmt(r.coalesced.mean_batch, 4)
         << ", \"flush_full\": " << r.coalesced.flush_full
         << ", \"flush_timeout\": " << r.coalesced.flush_timeout << "}"
         << ", \"speedup\": " << fmt(r.speedup, 4) << "}" << (i + 1 < runs.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_name << "\n";

  // Registry-side view of the same serving traffic: the coalescer feeds
  // every request latency into serve_request_latency_seconds.
  const obs::RegistrySnapshot reg = obs::MetricsRegistry::global().snapshot();
  if (const obs::SketchSummary* sk = reg.sketch("serve_request_latency_seconds");
      sk != nullptr && sk->count > 0)
    std::cout << "registry serve_request_latency_seconds: n=" << sk->count
              << " p50=" << fmt(sk->p50 * 1e3, 4) << "ms p99=" << fmt(sk->p99 * 1e3, 4)
              << "ms\n";

  for (const Run& r : runs)
    if (std::string_view(r.kind) == "matvec" && r.clients == 16)
      std::cout << "\nGate: coalesced matvec at 16 clients is " << fmt(r.speedup, 3)
                << "x the per-request baseline (target >= 2x).\n";
  std::cout << "\nShape checks: speedup grows with the client count (more concurrent RHS to\n"
               "coalesce per tick) while coalesced p50 stays in the same decade as the\n"
               "baseline — batching trades a bounded max_delay wait for launch amortization.\n";

  if (faults) return run_fault_smoke(4, 25);
  return 0;
}
