/// End-to-end construction wall time under the stream runtime vs the flat
/// OpenMP baseline it replaced. One binary measures both sides honestly:
/// RuntimeMode::FlatOpenMP restores the pre-stream behavior (fork/join
/// `schedule(static)` launches, serial sampler GEMM, no overlap) while
/// RuntimeMode::Streams runs the persistent pool with cost-aware chunking,
/// stream overlap and the intra-op parallel GEMM path.
///
/// Results go to BENCH_construction.json: per (N, threads, mode) wall time,
/// the stream-over-flat speedup, and 1->T scaling efficiency of the stream
/// runtime, at N = 2048 and 8192. `--smoke` runs a tiny single problem for
/// the CI sanitizer sweep.

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "geometry/point_cloud.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/kernels.hpp"
#include "kernels/proxy_sampler.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

struct Measurement {
  index_t n = 0;
  int threads = 0;
  std::string mode;
  double seconds = 0.0;
  index_t total_samples = 0;
  index_t kernel_launches = 0;
  index_t max_rank = 0;
};

void set_threads(int t) {
#if defined(_OPENMP)
  omp_set_num_threads(t);
#else
  (void)t;
#endif
}

Measurement build_once(index_t n, index_t leaf, int threads, RuntimeMode mode,
                       std::uint64_t seed, kern::SamplerKind kind) {
  set_threads(threads);
  set_runtime_mode(mode);
  auto tree = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(geo::uniform_random_cube(n, 3, seed), leaf));
  kern::ExponentialKernel kernel(0.2);
  kern::KernelEntryGenerator gen(*tree, kernel);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 32;
  opts.sample_block = 32;
  // Surrogate setup (proxy kind) happens outside the timed region: the A/B
  // here compares the construction runtime's scheduling, not sampler setup.
  kern::ProxySamplerOptions popts;
  popts.tol = opts.tol;
  auto sampler = kern::make_kernel_sampler(kind, tree, kernel, popts);

  batched::ExecutionContext ctx;
  const double t0 = wall_seconds();
  auto res = core::construct_h2(tree, tree::Admissibility::general(0.7), *sampler, gen, opts, ctx);
  Measurement m;
  m.n = n;
  m.threads = threads;
  m.mode = mode == RuntimeMode::FlatOpenMP ? "flat" : "streams";
  m.seconds = wall_seconds() - t0;
  m.total_samples = res.stats.total_samples;
  m.kernel_launches = res.stats.kernel_launches;
  m.max_rank = res.stats.max_rank;
  set_runtime_mode(RuntimeMode::Streams);
  return m;
}

/// Best of `reps` runs (damps scheduler noise without averaging in cold
/// caches).
Measurement best_of(index_t n, index_t leaf, int threads, RuntimeMode mode, int reps,
                    kern::SamplerKind kind) {
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    Measurement m = build_once(n, leaf, threads, mode, /*seed=*/1234, kind);
    if (best.n == 0 || m.seconds < best.seconds) best = m;
  }
  return best;
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  // --proxy switches the sketching operator to the O(N d) proxy-point
  // sampler (H2SKETCH_SAMPLER=exact|proxy overrides either default) — the
  // CI sanitizers drive the proxy launch paths through this flag.
  const kern::SamplerKind kind = kern::sampler_kind_from_env(
      has_flag(argc, argv, "--proxy") ? kern::SamplerKind::Proxy : kern::SamplerKind::Exact);

  // A 3D cube at eta = 0.7 needs depth before any pair is admissible
  // (leaf 32 has zero far blocks below N ~ 2048), so the smoke problem
  // drops to leaf 16 to keep the full adaptive pipeline in play.
  const std::vector<index_t> sizes =
      smoke ? std::vector<index_t>{1024} : std::vector<index_t>{2048, 8192};
  const index_t leaf = smoke ? 16 : 32;
  const std::vector<int> thread_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 8};
  const int reps = smoke ? 1 : 2;

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << "\n";

  Table table("bench_construction",
              {"n", "threads", "mode", "time_s", "samples", "launches", "speedup_vs_flat"});
  table.print_header();

  std::vector<Measurement> all;
  std::vector<std::string> rows_json;
  bool consistent = true;
  for (index_t n : sizes) {
    for (int t : thread_counts) {
      const Measurement flat = best_of(n, leaf, t, RuntimeMode::FlatOpenMP, reps, kind);
      const Measurement streams = best_of(n, leaf, t, RuntimeMode::Streams, reps, kind);
      // The runtime is a scheduling change only: identical adaptive control
      // flow (and therefore samples/ranks) in both modes is a correctness
      // gate, not a benchmark statistic.
      if (flat.total_samples != streams.total_samples || flat.max_rank != streams.max_rank)
        consistent = false;
      const double speedup = flat.seconds / streams.seconds;
      table.row({fmt(n), fmt(t), "flat", fmt(flat.seconds), fmt(flat.total_samples),
                 fmt(flat.kernel_launches), "1"});
      table.row({fmt(n), fmt(t), "streams", fmt(streams.seconds), fmt(streams.total_samples),
                 fmt(streams.kernel_launches), fmt(speedup)});
      all.push_back(flat);
      all.push_back(streams);
    }
  }

  // Scaling efficiency of the stream runtime: T1 / (T * T_T) per size.
  std::cout << "\n";
  for (index_t n : sizes) {
    double t1 = 0.0, tmax = 0.0;
    int maxt = 0;
    for (const auto& m : all) {
      if (m.n != n || m.mode != "streams") continue;
      if (m.threads == 1) t1 = m.seconds;
      if (m.threads > maxt) {
        maxt = m.threads;
        tmax = m.seconds;
      }
    }
    if (maxt > 1 && tmax > 0.0)
      std::cout << "N=" << n << ": stream scaling efficiency 1->" << maxt << " threads: "
                << fmt(t1 / (tmax * maxt)) << " (speedup " << fmt(t1 / tmax) << "x)\n";
  }
  if (!consistent)
    std::cout << "WARNING: flat and stream modes disagreed on samples/ranks\n";

  // Smoke and proxy runs write separate (gitignored) files so reproducing
  // the CI steps from the repo root cannot clobber the committed full-mode
  // exact-sampler record.
  const bool proxy_kind = kind == kern::SamplerKind::Proxy;
  const char* json_name =
      proxy_kind ? (smoke ? "BENCH_construction_proxy_smoke.json" : "BENCH_construction_proxy.json")
                 : (smoke ? "BENCH_construction_smoke.json" : "BENCH_construction.json");
  std::ofstream json(json_name);
  json << "{\n  \"bench\": \"construction\",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
       << "\",\n  \"hardware_threads\": " << hw << ",\n  \"workload\": "
       << "\"3D cube, exponential kernel (l=0.2), "
       << (kind == kern::SamplerKind::Proxy ? "ProxyMatVecSampler" : "KernelMatVecSampler")
       << ", tol=1e-6\""
       << ",\n  \"leaf\": " << leaf << ",\n  \"consistent\": " << (consistent ? "true" : "false")
       << ",\n  \"note\": \"rows with threads > hardware_threads are oversubscribed: they "
       << "measure scheduler overhead, not scaling — compare flat vs streams per row, and "
       << "read speedups only where oversubscribed is false\",\n  \"runs\": [\n";
  for (size_t i = 0; i < all.size(); ++i) {
    const auto& m = all[i];
    json << "    {\"n\": " << m.n << ", \"threads\": " << m.threads << ", \"mode\": \"" << m.mode
         << "\", \"seconds\": " << m.seconds << ", \"total_samples\": " << m.total_samples
         << ", \"kernel_launches\": " << m.kernel_launches << ", \"max_rank\": " << m.max_rank
         << ", \"oversubscribed\": "
         << (static_cast<unsigned>(m.threads) > hw ? "true" : "false") << "}"
         << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_name << "\n";
  return consistent ? 0 : 1;
}
