/// Fig. 6(a): memory consumption of the constructed H2 matrices vs N for
/// the covariance kernel, the IE kernel, and the low-rank-updated
/// covariance. The paper's claim is O(N) growth.

#include "bench_common.hpp"
#include "h2/update_sampler.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  std::vector<index_t> sizes = {1024, 2048, 4096};
  if (large) sizes = {8192, 16384, 32768, 65536};
  const index_t leaf = large ? 64 : 16;
  const real_t eta = 0.7;
  const index_t cheb_q = large ? 4 : 3;

  Table table("fig6a_memory",
              {"N", "cov_MB", "ie_MB", "updated_MB", "cov_MB_per_N", "ie_MB_per_N"});
  table.print_header();

  for (index_t n : sizes) {
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 256;
    opts.sample_block = 64;

    KernelWorkload wc("cov", n, leaf, eta, cheb_q);
    auto rc = core::construct_h2(wc.tree, tree::Admissibility::general(eta), *wc.sampler,
                                 *wc.entry_gen, opts);

    KernelWorkload wi("ie", n, leaf, eta, cheb_q);
    auto ri = core::construct_h2(wi.tree, tree::Admissibility::general(eta), *wi.sampler,
                                 *wi.entry_gen, opts);

    la::LowRank lr = la::random_lowrank(n, n, 32, 0.05, 42 + n);
    lr.v = to_matrix(lr.u.view());
    h2::UpdatedH2Sampler us(wc.input, lr);
    h2::UpdatedH2EntryGenerator ug(wc.input, lr);
    auto ru = core::construct_h2(wc.tree, tree::Admissibility::general(eta), us, ug, opts);

    const double covmb = static_cast<double>(rc.stats.memory_bytes) / (1024.0 * 1024.0);
    const double iemb = static_cast<double>(ri.stats.memory_bytes) / (1024.0 * 1024.0);
    table.row({fmt(n), fmt_mb(rc.stats.memory_bytes), fmt_mb(ri.stats.memory_bytes),
               fmt_mb(ru.stats.memory_bytes), fmt(covmb / static_cast<double>(n), 3),
               fmt(iemb / static_cast<double>(n), 3)});
  }
  std::cout << "\nShape checks (paper Fig. 6a): *_MB grows ~linearly with N, so MB_per_N\n"
               "stays roughly flat (O(N) memory).\n";
  return 0;
}
