#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "bench_common.hpp"
#include "la/blas.hpp"
#include "la/gemm_engine.hpp"

/// \file bench_gemm.cpp
/// GFLOP/s driver for the blocked GEMM engine against the retained naive
/// reference, over the shape distribution the H2 construction actually
/// generates:
///   - square compute-bound products (the engine's headline case; the
///     acceptance bar is >= 4x over naive at 512^3 single-threaded),
///   - sketching-sized products n x l with l ~ rank + oversampling (leaf
///     blocks times sample blocks — these must NOT regress, which is what
///     the auto-dispatch cutover is for),
///   - transfer/coupling-shaped skinny products and transposed combos from
///     the upsweep and ID application.
///
/// Results go to BENCH_gemm.json. `--smoke` runs a reduced shape set with a
/// correctness cross-check (used by CI under ASan so the packing paths are
/// sanitizer-covered); `--smoke` exits non-zero on any mismatch.

namespace {

using namespace h2sketch;

struct Shape {
  index_t m, n, k;
  la::Op oa, ob;
  const char* what;
};

double time_gemm(bool blocked, index_t m, index_t n, index_t k, la::Op oa, la::Op ob,
                 double min_seconds) {
  Matrix av(oa == la::Op::None ? m : k, oa == la::Op::None ? k : m);
  Matrix bv(ob == la::Op::None ? k : n, ob == la::Op::None ? n : k);
  fill_gaussian(av.view(), GaussianStream(1));
  fill_gaussian(bv.view(), GaussianStream(2));
  Matrix c(m, n);
  // One untimed warm-up (faults in C's pages, warms caches and the branch
  // predictors), then repeat until the timed window is long enough to trust.
  if (blocked)
    la::gemm_blocked(1.0, av.view(), oa, bv.view(), ob, 0.0, c.view());
  else
    la::gemm_naive(1.0, av.view(), oa, bv.view(), ob, 0.0, c.view());
  int reps = 0;
  double elapsed = 0.0;
  WallTimer t;
  do {
    if (blocked)
      la::gemm_blocked(1.0, av.view(), oa, bv.view(), ob, 0.0, c.view());
    else
      la::gemm_naive(1.0, av.view(), oa, bv.view(), ob, 0.0, c.view());
    ++reps;
    elapsed = t.elapsed();
  } while (elapsed < min_seconds);
  return elapsed / reps;
}

const char* op_str(la::Op o) { return o == la::Op::None ? "N" : "T"; }

/// max |blocked - naive| for one shape with random alpha/beta; returns the
/// error so --smoke can gate on it.
real_t cross_check(index_t m, index_t n, index_t k, la::Op oa, la::Op ob) {
  const Matrix a = [&] {
    Matrix x(oa == la::Op::None ? m : k, oa == la::Op::None ? k : m);
    fill_gaussian(x.view(), GaussianStream(11));
    return x;
  }();
  const Matrix b = [&] {
    Matrix x(ob == la::Op::None ? k : n, ob == la::Op::None ? n : k);
    fill_gaussian(x.view(), GaussianStream(12));
    return x;
  }();
  Matrix c0(m, n);
  fill_gaussian(c0.view(), GaussianStream(13));
  Matrix c1 = to_matrix(c0.view()), c2 = to_matrix(c0.view());
  la::gemm_blocked(1.7, a.view(), oa, b.view(), ob, -0.3, c1.view());
  la::gemm_naive(1.7, a.view(), oa, b.view(), ob, -0.3, c2.view());
  return max_abs_diff(c1.view(), c2.view());
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = h2sketch::bench::has_flag(argc, argv, "--smoke");

  // The H2 construction's shape distribution: leaf sizes 32-256, sample
  // blocks 16-64 (rank + oversampling), transfer stacks, plus the square
  // compute-bound sizes that dominate dense sampling and densification.
  std::vector<Shape> shapes = {
      {64, 64, 64, la::Op::None, la::Op::None, "square-64"},
      {128, 128, 128, la::Op::None, la::Op::None, "square-128"},
      {256, 256, 256, la::Op::None, la::Op::None, "square-256"},
      {512, 512, 512, la::Op::None, la::Op::None, "square-512"},
      {64, 32, 64, la::Op::None, la::Op::None, "leaf-sample"},
      {128, 32, 128, la::Op::None, la::Op::None, "leaf-sample-128"},
      {256, 48, 256, la::Op::None, la::Op::None, "leaf-sample-256"},
      {2048, 32, 2048, la::Op::None, la::Op::None, "dense-sketch"},
      {64, 32, 16, la::Op::None, la::Op::None, "transfer-apply"},
      {32, 32, 64, la::Op::Trans, la::Op::None, "basis-gram"},
      {512, 48, 512, la::Op::Trans, la::Op::None, "sketch-tn"},
      {256, 256, 32, la::Op::None, la::Op::Trans, "lowrank-outer"},
      {512, 512, 512, la::Op::Trans, la::Op::Trans, "square-512-tt"},
  };
  if (smoke)
    shapes = {{96, 96, 96, la::Op::None, la::Op::None, "square-96"},
              {128, 40, 128, la::Op::None, la::Op::None, "leaf-sample"},
              {70, 33, 129, la::Op::Trans, la::Op::Trans, "edge-tt"}};

  const double min_seconds = smoke ? 0.01 : 0.25;

  std::cout << std::left << std::setw(18) << "shape" << std::setw(16) << "m x n x k"
            << std::setw(6) << "ops" << std::setw(12) << "naive GF/s" << std::setw(13)
            << "blocked GF/s" << std::setw(9) << "speedup" << "\n";

  std::ofstream json("BENCH_gemm.json");
  json << "{\n  \"bench\": \"gemm\",\n  \"mode\": \"" << (smoke ? "smoke" : "full")
       << "\",\n  \"shapes\": [\n";

  bool ok = true;
  double speedup_512 = 0.0;
  for (size_t s = 0; s < shapes.size(); ++s) {
    const auto& sh = shapes[s];
    const real_t err = cross_check(sh.m, sh.n, sh.k, sh.oa, sh.ob);
    // Errors from reordered summation scale like k * eps * |entries|; an
    // indexing bug shows up as O(1).
    const real_t tol = 1e-12 * static_cast<real_t>(sh.k);
    if (err > tol) {
      std::cerr << "MISMATCH at " << sh.what << ": max diff " << err << " > " << tol << "\n";
      ok = false;
    }
    const double tn = time_gemm(false, sh.m, sh.n, sh.k, sh.oa, sh.ob, min_seconds);
    const double tb = time_gemm(true, sh.m, sh.n, sh.k, sh.oa, sh.ob, min_seconds);
    const double flops = 2.0 * static_cast<double>(sh.m) * static_cast<double>(sh.n) *
                         static_cast<double>(sh.k);
    const double gf_naive = flops / tn / 1e9, gf_blocked = flops / tb / 1e9;
    const double speedup = tn / tb;
    if (sh.m == 512 && sh.n == 512 && sh.k == 512 && sh.oa == la::Op::None &&
        sh.ob == la::Op::None)
      speedup_512 = speedup;

    std::ostringstream dims;
    dims << sh.m << "x" << sh.n << "x" << sh.k;
    std::cout << std::left << std::setw(18) << sh.what << std::setw(16) << dims.str()
              << std::setw(6) << (std::string(op_str(sh.oa)) + op_str(sh.ob)) << std::setw(12)
              << std::setprecision(4) << gf_naive << std::setw(13) << gf_blocked << std::setw(9)
              << std::setprecision(3) << speedup
              << (la::gemm_use_blocked(sh.m, sh.n, sh.k) ? "" : "  [dispatch: naive]") << "\n";

    json << "    {\"shape\": \"" << sh.what << "\", \"m\": " << sh.m << ", \"n\": " << sh.n
         << ", \"k\": " << sh.k << ", \"op_a\": \"" << op_str(sh.oa) << "\", \"op_b\": \""
         << op_str(sh.ob) << "\", \"gflops_naive\": " << gf_naive
         << ", \"gflops_blocked\": " << gf_blocked << ", \"speedup\": " << speedup
         << ", \"dispatch_blocked\": " << (la::gemm_use_blocked(sh.m, sh.n, sh.k) ? "true" : "false")
         << ", \"max_abs_diff\": " << err << "}" << (s + 1 < shapes.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_512\": " << speedup_512 << ",\n  \"correct\": "
       << (ok ? "true" : "false") << "\n}\n";

  if (!smoke && speedup_512 > 0.0)
    std::cout << "\n512^3 single-threaded speedup over naive: " << std::setprecision(3)
              << speedup_512 << "x (acceptance bar: 4x)\n";
  if (!ok) {
    std::cerr << "bench_gemm: correctness cross-check FAILED\n";
    return 1;
  }
  return 0;
}
