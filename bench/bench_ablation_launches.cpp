/// Ablation supporting §IV-B: kernel-launch counts of the construction on
/// the naive (one launch per block, the paper's "impractical" path) vs the
/// batched backend (one launch per level per operation, <= Csp for the BSR
/// products). The batched count should grow like O(Csp log N); the naive
/// count like O(N). This launch-count gap is the mechanism behind the
/// paper's GPU speedups.

#include "bench_common.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  std::vector<index_t> sizes = {1024, 2048, 4096};
  if (large) sizes.push_back(8192);
  const index_t leaf = 16;
  const real_t eta = 0.7;

  Table table("ablation_launches", {"N", "levels", "csp", "launches_batched", "launches_naive",
                                    "ratio", "launches_batched_per_level"});
  table.print_header();

  for (index_t n : sizes) {
    KernelWorkload w("cov", n, leaf, eta, 3);
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 128;
    opts.sample_block = 64;

    batched::ExecutionContext cb(batched::Backend::Batched);
    auto rb = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                 *w.entry_gen, opts, cb);
    batched::ExecutionContext cn(batched::Backend::Naive);
    auto rn = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                 *w.entry_gen, opts, cn);

    table.row({fmt(n), fmt(rb.stats.levels), fmt(rb.stats.csp), fmt(rb.stats.kernel_launches),
               fmt(rn.stats.kernel_launches),
               fmt(static_cast<double>(rn.stats.kernel_launches) /
                       static_cast<double>(std::max<index_t>(1, rb.stats.kernel_launches)),
                   3),
               fmt(static_cast<double>(rb.stats.kernel_launches) /
                       static_cast<double>(rb.stats.levels),
                   3)});
  }
  std::cout << "\nShape checks: launches_batched grows ~logarithmically (per-level it is\n"
               "bounded by a Csp-dependent constant); launches_naive grows ~linearly in N,\n"
               "so the ratio widens with N — the batching payoff claimed in §IV-B.\n";
  return 0;
}
