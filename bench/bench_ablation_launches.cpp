/// Ablation supporting §IV-B: kernel-launch counts of the construction on
/// the naive (one launch per block, the paper's "impractical" path) vs the
/// batched backend (one launch per level per operation, <= Csp for the BSR
/// products). The batched count should grow like O(Csp log N); the naive
/// count like O(N). This launch-count gap is the mechanism behind the
/// paper's GPU speedups.
///
/// The same construction also runs on the SimulatedDevice backend, which
/// keeps the sketching state in a separate device heap behind explicit
/// copies: its launch count must be identical to the batched CPU run (the
/// dispatch table only changes who owns memory), and its host<->device
/// byte counters report the marshaling traffic a PCIe bus would carry.
/// Results go to BENCH_ablation_launches.json.

#include <fstream>

#include "backend/registry.hpp"
#include "bench_common.hpp"

using namespace h2sketch;
using namespace h2sketch::bench;

namespace {

struct Run {
  index_t n = 0, levels = 0, csp = 0;
  index_t launches_batched = 0, launches_naive = 0, launches_simdevice = 0;
  std::uint64_t bytes_to_device = 0, bytes_to_host = 0, bytes_on_device = 0;
  std::uint64_t device_peak_bytes = 0;
  /// Steady-state per-apply marshaling (after a warmup matvec): with
  /// device-resident operators these must equal the x/y panel exactly.
  std::uint64_t steady_h2d_per_apply = 0, steady_d2h_per_apply = 0, x_panel_bytes = 0;
  std::uint64_t operator_device_bytes = 0;
};

} // namespace

int main(int argc, char** argv) {
  const bool large = has_flag(argc, argv, "--large");
  const bool smoke = has_flag(argc, argv, "--smoke");
  std::vector<index_t> sizes = smoke ? std::vector<index_t>{1024}
                                     : std::vector<index_t>{1024, 2048, 4096};
  if (large) sizes.push_back(8192);
  const index_t leaf = 16;
  const real_t eta = 0.7;

  Table table("ablation_launches",
              {"N", "levels", "csp", "launches_batched", "launches_naive", "launches_simdev",
               "ratio", "h2d_MB", "d2h_MB", "apply_h2d_B", "x_panel_B"});
  table.print_header();

  std::vector<Run> runs;
  for (index_t n : sizes) {
    KernelWorkload w("cov", n, leaf, eta, 3);
    core::ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.initial_samples = 128;
    opts.sample_block = 64;

    Run r;
    r.n = n;

    batched::ExecutionContext cb(backend::make_backend("cpu"));
    auto rb = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                 *w.entry_gen, opts, cb);
    batched::ExecutionContext cn(backend::make_backend("naive"));
    auto rn = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                 *w.entry_gen, opts, cn);
    batched::ExecutionContext cs(backend::make_backend("simdevice"));
    // make_backend now hands out the process-wide shared simdevice, so its
    // stats counters accumulate across runs: report per-run deltas.
    const auto dstats0 = cs.device().stats();
    auto rs = core::construct_h2(w.tree, tree::Admissibility::general(eta), *w.sampler,
                                 *w.entry_gen, opts, cs);
    // A d=8 matvec on the device-built matrix: the construction itself
    // generates its samples *on* the device (near-zero h2d/d2h), so the
    // matvec supplies the representative cross-boundary traffic. After a
    // warmup apply (which grows the context workspace once), repeated
    // applies must move exactly the x panel over and the y panel back —
    // the operator panels are device-resident.
    {
      const index_t d = 8;
      Matrix x(n, d), y(n, d);
      fill_gaussian(x.view(), GaussianStream(7), 0);
      h2::h2_matvec(cs, rs.matrix, x.view(), y.view()); // warmup
      const int reps = 4;
      const auto s0 = cs.device().stats();
      for (int rep = 0; rep < reps; ++rep) h2::h2_matvec(cs, rs.matrix, x.view(), y.view());
      const auto s1 = cs.device().stats();
      r.steady_h2d_per_apply = (s1.bytes_to_device - s0.bytes_to_device) / reps;
      r.steady_d2h_per_apply = (s1.bytes_to_host - s0.bytes_to_host) / reps;
      r.x_panel_bytes = static_cast<std::uint64_t>(n) * d * sizeof(real_t);
      r.operator_device_bytes = rs.matrix.device_bytes();
    }
    const auto dstats = cs.device().stats();

    r.levels = rb.stats.levels;
    r.csp = rb.stats.csp;
    r.launches_batched = rb.stats.kernel_launches;
    r.launches_naive = rn.stats.kernel_launches;
    r.launches_simdevice = rs.stats.kernel_launches;
    r.bytes_to_device = dstats.bytes_to_device - dstats0.bytes_to_device;
    r.bytes_to_host = dstats.bytes_to_host - dstats0.bytes_to_host;
    r.bytes_on_device = dstats.bytes_on_device - dstats0.bytes_on_device;
    r.device_peak_bytes = dstats.peak_bytes;
    runs.push_back(r);

    table.row({fmt(n), fmt(r.levels), fmt(r.csp), fmt(r.launches_batched),
               fmt(r.launches_naive), fmt(r.launches_simdevice),
               fmt(static_cast<double>(r.launches_naive) /
                       static_cast<double>(std::max<index_t>(1, r.launches_batched)),
                   3),
               fmt(static_cast<double>(r.bytes_to_device) / (1024.0 * 1024.0), 2),
               fmt(static_cast<double>(r.bytes_to_host) / (1024.0 * 1024.0), 2),
               fmt(r.steady_h2d_per_apply), fmt(r.x_panel_bytes)});

    if (r.launches_simdevice != r.launches_batched)
      std::cout << "WARNING: simdevice launch count deviates from batched at N=" << n << "\n";
    if (r.steady_h2d_per_apply != r.x_panel_bytes)
      std::cout << "WARNING: steady-state apply uploads " << r.steady_h2d_per_apply
                << " B, expected the x panel only (" << r.x_panel_bytes << " B) at N=" << n
                << "\n";
  }

  const char* json_name =
      smoke ? "BENCH_ablation_launches_smoke.json" : "BENCH_ablation_launches.json";
  std::ofstream json(json_name);
  json << "{\n  \"bench\": \"ablation_launches\",\n  \"mode\": \""
       << (smoke ? "smoke" : (large ? "large" : "full"))
       << "\",\n  \"workload\": \"3D cube covariance, exponential kernel, tol=1e-6, leaf="
       << leaf << ", eta=" << eta
       << "\",\n  \"note\": \"launches_simdevice must equal launches_batched (the device "
       << "backend changes memory ownership, not launch structure); bytes_* are the "
       << "SimulatedDevice marshaling counters: host->device uploads, device->host "
       << "downloads, on-device copies/fills; steady_* are per-apply deltas after warmup — "
       << "with device-resident operators they equal x_panel_bytes exactly (apply touches "
       << "only x/y across the boundary)\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    json << "    {\"n\": " << r.n << ", \"levels\": " << r.levels << ", \"csp\": " << r.csp
         << ", \"launches_batched\": " << r.launches_batched
         << ", \"launches_naive\": " << r.launches_naive
         << ", \"launches_simdevice\": " << r.launches_simdevice
         << ", \"bytes_to_device\": " << r.bytes_to_device
         << ", \"bytes_to_host\": " << r.bytes_to_host
         << ", \"bytes_on_device\": " << r.bytes_on_device
         << ", \"device_peak_bytes\": " << r.device_peak_bytes
         << ", \"steady_bytes_to_device_per_apply\": " << r.steady_h2d_per_apply
         << ", \"steady_bytes_to_host_per_apply\": " << r.steady_d2h_per_apply
         << ", \"x_panel_bytes\": " << r.x_panel_bytes
         << ", \"operator_device_bytes\": " << r.operator_device_bytes << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_name << "\n";
  std::cout << "\nShape checks: launches_batched grows ~logarithmically (per-level it is\n"
               "bounded by a Csp-dependent constant); launches_naive grows ~linearly in N,\n"
               "so the ratio widens with N — the batching payoff claimed in §IV-B. The\n"
               "simdevice column equals the batched column exactly: the GPU seam adds\n"
               "explicit memory traffic (h2d/d2h columns), not launches.\n";
  return 0;
}
