#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <sstream>

namespace h2sketch::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string sanitize_prom(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') c = '_';
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) out.insert(0, "_");
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

} // namespace

SketchSummary summarize(const QuantileSketch& sk) {
  SketchSummary s;
  s.count = sk.count();
  if (sk.empty()) return s;
  s.min = sk.min();
  s.max = sk.max();
  s.p50 = sk.quantile(0.50);
  s.p90 = sk.quantile(0.90);
  s.p99 = sk.quantile(0.99);
  return s;
}

const std::uint64_t* RegistrySnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return &v;
  return nullptr;
}

const double* RegistrySnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return &v;
  return nullptr;
}

const SketchSummary* RegistrySnapshot::sketch(std::string_view name) const {
  for (const auto& [n, v] : sketches)
    if (n == name) return &v;
  return nullptr;
}

std::string RegistrySnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    const std::string n = sanitize_prom(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = sanitize_prom(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, s] : sketches) {
    const std::string n = sanitize_prom(name);
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << s.p50 << "\n";
    os << n << "{quantile=\"0.9\"} " << s.p90 << "\n";
    os << n << "{quantile=\"0.99\"} " << s.p99 << "\n";
    os << n << "_count " << s.count << "\n";
    os << n << "_min " << s.min << "\n";
    os << n << "_max " << s.max << "\n";
  }
  return os.str();
}

std::string RegistrySnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i)
    os << (i ? "," : "") << "\n    \"" << counters[i].first << "\": " << counters[i].second;
  os << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i)
    os << (i ? "," : "") << "\n    \"" << gauges[i].first
       << "\": " << json_number(gauges[i].second);
  os << "\n  },\n  \"sketches\": {";
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    const auto& [name, s] = sketches[i];
    os << (i ? "," : "") << "\n    \"" << name << "\": {\"count\": " << s.count
       << ", \"min\": " << json_number(s.min) << ", \"max\": " << json_number(s.max)
       << ", \"p50\": " << json_number(s.p50) << ", \"p90\": " << json_number(s.p90)
       << ", \"p99\": " << json_number(s.p99) << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

void SnapshotBuilder::counter(const std::string& name, std::uint64_t v) {
  counters_[name] += v; // duplicate emitters (e.g. two caches) sum
}

void SnapshotBuilder::gauge(const std::string& name, double v) { gauges_[name] = v; }

void SnapshotBuilder::sketch(const std::string& name, const QuantileSketch& sk) {
  auto it = sketches_.find(name);
  if (it == sketches_.end())
    sketches_.emplace(name, sk);
  else
    it->second.merge(sk);
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: instrument references handed to other leaked singletons
  // (backends, thread pool) must outlive static destruction.
  static MetricsRegistry* reg = new MetricsRegistry;
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return *it->second;
  Counter& c = counters_.emplace_back();
  counter_names_.emplace(std::string(name), &c);
  return c;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return *it->second;
  Gauge& g = gauges_.emplace_back();
  gauge_names_.emplace(std::string(name), &g);
  return g;
}

SketchMetric& MetricsRegistry::sketch(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sketch_names_.find(name);
  if (it != sketch_names_.end()) return *it->second;
  SketchMetric& s = sketches_.emplace_back();
  sketch_names_.emplace(std::string(name), &s);
  return s;
}

std::uint64_t MetricsRegistry::add_collector(Collector fn) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  std::erase_if(collectors_, [id](const auto& p) { return p.first == id; });
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  SnapshotBuilder b;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, c] : counter_names_) b.counter(name, c->value());
    for (const auto& [name, g] : gauge_names_) b.gauge(name, g->value());
    for (const auto& [name, s] : sketch_names_) b.sketch(name, s->snapshot());
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  // Collectors run unlocked: they may call back into counter()/sketch().
  for (const auto& fn : collectors) fn(b);

  RegistrySnapshot snap;
  snap.counters.assign(b.counters_.begin(), b.counters_.end());
  snap.gauges.assign(b.gauges_.begin(), b.gauges_.end());
  snap.sketches.reserve(b.sketches_.size());
  for (const auto& [name, sk] : b.sketches_) snap.sketches.emplace_back(name, summarize(sk));
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  counter_names_.clear();
  gauge_names_.clear();
  sketch_names_.clear();
  counters_.clear();
  gauges_.clear();
  sketches_.clear();
  collectors_.clear();
}

PeriodicReporter::PeriodicReporter(MetricsRegistry& reg, double interval_seconds,
                                   std::function<void(const RegistrySnapshot&)> sink)
    : reg_(reg), interval_(interval_seconds), sink_(std::move(sink)) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait_for(lk, std::chrono::duration<double>(interval_), [this] { return stopping_; });
      const bool last = stopping_;
      lk.unlock();
      sink_(reg_.snapshot());
      lk.lock();
      if (last) return;
    }
  });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

} // namespace h2sketch::obs
