#include "obs/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace h2sketch::obs {

namespace {

/// splitmix64: the repo's standard cheap deterministic stream (same
/// generator the fault scheduler and samplers evolve).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

} // namespace

QuantileSketch::QuantileSketch(int k, std::uint64_t seed) : k_(k), rng_state_(seed) {
  H2S_CHECK(k >= 8, "QuantileSketch: k must be >= 8 (got " << k << ")");
  levels_.emplace_back();
  levels_.front().reserve(static_cast<std::size_t>(k_));
}

std::uint64_t QuantileSketch::next_random() { return splitmix64(rng_state_); }

std::size_t QuantileSketch::level_capacity(std::size_t level) const {
  // Top level holds k, each step toward level 0 shrinks by 2/3, floor 8.
  double cap = static_cast<double>(k_);
  for (std::size_t d = level + 1; d < levels_.size(); ++d) cap *= 2.0 / 3.0;
  return std::max<std::size_t>(8, static_cast<std::size_t>(std::ceil(cap)));
}

std::size_t QuantileSketch::total_capacity() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) total += level_capacity(l);
  return total;
}

std::size_t QuantileSketch::retained() const {
  std::size_t total = 0;
  for (const auto& lvl : levels_) total += lvl.size();
  return total;
}

void QuantileSketch::update(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  levels_.front().push_back(v);
  if (retained() > total_capacity()) compress();
}

void QuantileSketch::compress() {
  while (retained() > total_capacity()) {
    // Compact the lowest level that is individually over capacity; if the
    // overflow is spread out, take the lowest non-trivial level.
    std::size_t target = levels_.size();
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (levels_[l].size() > level_capacity(l)) {
        target = l;
        break;
      }
    }
    if (target == levels_.size()) {
      for (std::size_t l = 0; l < levels_.size(); ++l) {
        if (levels_[l].size() >= 2) {
          target = l;
          break;
        }
      }
    }
    if (target == levels_.size()) return; // nothing compactable
    // Grow the stack before binding references: emplace_back may reallocate
    // levels_ and would dangle them.
    if (target + 1 == levels_.size()) levels_.emplace_back();
    auto& items = levels_[target];
    std::sort(items.begin(), items.end());
    auto& up = levels_[target + 1];
    const std::size_t offset = next_random() & 1u;
    // Keep every other item starting at a random parity: survivors carry
    // doubled weight one level up, discarded items cancel in expectation.
    for (std::size_t i = offset; i < items.size(); i += 2) up.push_back(items[i]);
    const bool leftover = (items.size() % 2 == 1) && offset == 1;
    const double tail = leftover ? items.back() : 0.0;
    items.clear();
    if (leftover) items.push_back(tail); // odd straggler stays at its weight
    std::sort(up.begin(), up.end());
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  if (other.levels_.size() > levels_.size()) levels_.resize(other.levels_.size());
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    auto& dst = levels_[l];
    const auto& src = other.levels_[l];
    dst.insert(dst.end(), src.begin(), src.end());
    if (l > 0) std::sort(dst.begin(), dst.end());
  }
  if (retained() > total_capacity()) compress();
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Gather (value, weight) pairs; level l items each stand in for 2^l
  // stream values.
  std::vector<std::pair<double, std::uint64_t>> weighted;
  weighted.reserve(retained());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto w = static_cast<std::uint64_t>(1) << l;
    for (double v : levels_[l]) weighted.emplace_back(v, w);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t total = 0;
  for (const auto& [v, w] : weighted) total += w;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (const auto& [v, w] : weighted) {
    cum += w;
    if (static_cast<double>(cum) >= target) return std::clamp(v, min_, max_);
  }
  return max_;
}

double QuantileSketch::rank(double v) const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  std::uint64_t below = 0, total = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto w = static_cast<std::uint64_t>(1) << l;
    for (double x : levels_[l]) {
      total += w;
      if (x <= v) below += w;
    }
  }
  return total == 0 ? std::numeric_limits<double>::quiet_NaN()
                    : static_cast<double>(below) / static_cast<double>(total);
}

double QuantileSketch::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double QuantileSketch::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

void QuantileSketch::reset() {
  n_ = 0;
  min_ = max_ = 0.0;
  levels_.clear();
  levels_.emplace_back();
  levels_.front().reserve(static_cast<std::size_t>(k_));
}

} // namespace h2sketch::obs
