#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/check.hpp"

namespace h2sketch::obs {

std::atomic<bool> detail::g_trace_enabled{false};

namespace {

/// Events per thread ring. Bounded and allocated once per thread on first
/// record; overflow increments `dropped` rather than reallocating, so a
/// recording thread never takes a lock or malloc after warm-up.
constexpr std::size_t kRingCapacity = 1 << 15;

struct ThreadBuffer {
  explicit ThreadBuffer(std::int32_t tid_) : tid(tid_) { slots.resize(kRingCapacity); }
  std::int32_t tid;
  std::vector<TraceEvent> slots;
  /// Owner thread stores with release after writing the slot; the collector
  /// loads with acquire, so slot contents are published without a lock.
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers; // leaked: TLS pointers must stay valid
  std::int32_t next_tid = 0;
};

/// Leaked singleton: thread-exit order and the atexit exporter must both be
/// able to touch it safely.
BufferRegistry& registry() {
  static BufferRegistry* reg = new BufferRegistry;
  return *reg;
}

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local const char* t_launch_label = nullptr;

ThreadBuffer* acquire_buffer() {
  if (t_buffer) return t_buffer;
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto* buf = new ThreadBuffer(reg.next_tid++);
  reg.buffers.push_back(buf);
  t_buffer = buf;
  return buf;
}

std::atomic<std::int32_t> g_next_ctx_id{0};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

} // namespace

std::int64_t trace_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0).count();
}

void record_event(const TraceEvent& ev) {
  if (!trace_enabled()) return;
  ThreadBuffer* buf = acquire_buffer();
  const std::size_t idx = buf->count.load(std::memory_order_relaxed);
  if (idx >= kRingCapacity) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& slot = buf->slots[idx];
  slot = ev;
  if (slot.tid == kCallerTrack) slot.tid = buf->tid;
  buf->count.store(idx + 1, std::memory_order_release);
}

const char* launch_label() { return t_launch_label; }

ScopedLaunchLabel::ScopedLaunchLabel(const char* label) : prev_(t_launch_label) {
  t_launch_label = label;
}
ScopedLaunchLabel::~ScopedLaunchLabel() { t_launch_label = prev_; }

std::int32_t next_trace_ctx_id() {
  return g_next_ctx_id.fetch_add(1, std::memory_order_relaxed);
}

void start_trace() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (ThreadBuffer* buf : reg.buffers) {
    buf->count.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  detail::g_trace_enabled.store(true, std::memory_order_seq_cst);
}

TraceData stop_trace() {
  detail::g_trace_enabled.store(false, std::memory_order_seq_cst);
  TraceData data;
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (ThreadBuffer* buf : reg.buffers) {
    const std::size_t n = buf->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& src = buf->slots[i];
      TraceData::Event ev;
      ev.cat = src.cat ? src.cat : "";
      ev.name = src.name ? src.name : "";
      ev.ts_ns = src.ts_ns;
      ev.dur_ns = src.dur_ns;
      ev.tid = src.tid;
      for (int a = 0; a < 2; ++a)
        if (src.arg_key[a]) ev.args.emplace_back(src.arg_key[a], src.arg_val[a]);
      data.events.push_back(std::move(ev));
    }
    data.dropped += buf->dropped.load(std::memory_order_relaxed);
    buf->count.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  std::sort(data.events.begin(), data.events.end(),
            [](const TraceData::Event& a, const TraceData::Event& b) { return a.ts_ns < b.ts_ns; });
  return data;
}

TraceStats trace_stats() {
  TraceStats st;
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  st.buffers = reg.buffers.size();
  for (ThreadBuffer* buf : reg.buffers) {
    st.events += buf->count.load(std::memory_order_acquire);
    st.dropped += buf->dropped.load(std::memory_order_relaxed);
  }
  return st;
}

std::string TraceData::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Track-name metadata: plain threads by registration order, stream
  // tracks decomposed into (context, stream).
  std::vector<std::int32_t> tids;
  for (const Event& ev : events) tids.push_back(ev.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (std::int32_t tid : tids) {
    comma();
    std::string name;
    if (tid >= kStreamTrackBase) {
      const std::int32_t ctx = (tid - kStreamTrackBase) / kStreamsPerContext;
      const std::int32_t stream = (tid - kStreamTrackBase) % kStreamsPerContext;
      name = "ctx" + std::to_string(ctx) + "/stream" + std::to_string(stream);
    } else {
      name = tid == 0 ? "thread0 (main)" : "thread" + std::to_string(tid);
    }
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }

  char ts[64];
  for (const Event& ev : events) {
    comma();
    std::snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(ev.ts_ns) / 1000.0);
    os << "{\"ph\":\"" << (ev.dur_ns < 0 ? "i" : "X") << "\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << ts;
    if (ev.dur_ns >= 0) {
      std::snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(ev.dur_ns) / 1000.0);
      os << ",\"dur\":" << ts;
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"cat\":\"" << json_escape(ev.cat) << "\",\"name\":\"" << json_escape(ev.name) << "\"";
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a) os << ",";
        os << "\"" << json_escape(ev.args[a].first) << "\":" << ev.args[a].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void TraceData::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  H2S_CHECK(f != nullptr, "trace: cannot open '" << path << "' for writing");
  const std::string body = to_json();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

namespace {

/// H2SKETCH_TRACE=path.json: trace the whole process, export at exit.
/// Registered from a dynamic initializer so `main` runs fully traced; the
/// atexit hook runs after main returns, when instrumented work is quiesced.
struct EnvTraceExport {
  EnvTraceExport() {
    const char* path = std::getenv("H2SKETCH_TRACE");
    if (!path || !*path) return;
    static std::string g_path;
    g_path = path;
    start_trace();
    std::atexit([] {
      if (!trace_enabled()) return;
      stop_trace().write_json(g_path);
    });
  }
};
EnvTraceExport g_env_trace_export;

} // namespace

} // namespace h2sketch::obs
