#pragma once

#include <cstdint>
#include <vector>

/// \file quantile_sketch.hpp
/// Mergeable KLL-style streaming quantile sketch (Karnin–Lang–Liberty).
///
/// Fixed memory: a stack of compactor levels where level `l` holds items of
/// weight 2^l; when a level overflows, its sorted contents are halved (keep
/// every other item from a pseudo-random even/odd offset) and the survivors
/// promoted one level up. Retained items total O(k log(n/k)); rank error is
/// ~1/k at the median (k = 200 gives roughly 1% normalized rank error),
/// which replaces the serving LatencyHistogram's 19% log-bucket error when a
/// tight p99 is wanted.
///
/// Determinism: compaction offsets come from an internal splitmix64 stream
/// seeded at construction (never from time or global RNG state), per the
/// repo-wide seeding rules — the same update sequence on the same seed
/// yields a bitwise-identical sketch, and merge(a, b) is deterministic in
/// the receiver's stream.

namespace h2sketch::obs {

class QuantileSketch {
 public:
  /// `k` bounds the top-level compactor (larger k = lower rank error,
  /// ~1.7/k normalized); `seed` drives compaction coin flips.
  explicit QuantileSketch(int k = 200, std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Stream one value in. Amortized O(1); worst case compacts O(log n) levels.
  void update(double v);

  /// Fold another sketch in (level-wise concatenation + re-compaction).
  /// Error bounds compose: the merged sketch keeps the KLL guarantee.
  void merge(const QuantileSketch& other);

  /// Total values streamed in (not retained count).
  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Estimated value at normalized rank q in [0, 1]; q=0.5 is the median.
  /// Returns NaN on an empty sketch.
  double quantile(double q) const;

  /// Estimated normalized rank of `v`: fraction of streamed items <= v.
  double rank(double v) const;

  /// Exact stream extrema (tracked outside the compactors).
  double min() const;
  double max() const;

  int k() const { return k_; }

  /// Items currently held across all levels — the memory bound under test.
  std::size_t retained() const;

  void reset();

 private:
  /// Capacity of `level` given the current stack height: the top level gets
  /// k items and each step down shrinks by 2/3, floored at 8.
  std::size_t level_capacity(std::size_t level) const;
  std::size_t total_capacity() const;

  /// Halve the lowest over-full level, promoting survivors upward.
  void compress();

  std::uint64_t next_random();

  int k_;
  std::uint64_t rng_state_;
  std::uint64_t n_ = 0;
  double min_ = 0.0, max_ = 0.0;
  /// levels_[l] holds items of weight 2^l; level 0 is the raw (unsorted)
  /// ingest buffer, higher levels are kept sorted by compaction.
  std::vector<std::vector<double>> levels_;
};

} // namespace h2sketch::obs
