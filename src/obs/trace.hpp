#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/// \file trace.hpp
/// Low-overhead cross-layer tracing with Chrome trace-event export.
///
/// `TraceSpan` is an RAII scope that records a timed event into a
/// thread-local lock-free ring buffer. When tracing is disabled (the
/// default) every entry point is a single relaxed atomic load and no
/// allocation ever happens — the hot paths (run_batch, backend copies,
/// coalescer ticks) pay one predictable branch.
///
/// Enable programmatically with `start_trace()` / `stop_trace()`, or set
/// `H2SKETCH_TRACE=path.json` in the environment to trace the whole process
/// and write the file at exit. The export is Chrome trace-event JSON: open
/// it at https://ui.perfetto.dev (or chrome://tracing).
///
/// Track model: each recording thread gets its own track (tid 0, 1, ...
/// in registration order). ExecutionContext additionally mirrors every
/// batched launch onto a per-(context, stream) track (tid >= kStreamTrackBase)
/// so the four logical streams read as GPU-style timelines, which is how a
/// coalesced serving request stays followable across the thread pool:
/// admit (client thread) -> flush (lane thread) -> launches (stream tracks)
/// -> scatter (lane thread).
///
/// Quiescence contract: `stop_trace()` flips the enabled flag and then
/// reads every thread's buffer. Callers must ensure no instrumented work is
/// in flight when they stop (sync contexts / join lanes first) — the
/// exporters here and the tests do. Spans that straddle the disable point
/// are dropped, never torn.

namespace h2sketch::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
} // namespace detail

/// True while a trace is being collected. One relaxed load; safe to call at
/// any frequency from any thread.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Stream tracks start here: tid = kStreamTrackBase + ctx_id * n_streams + stream.
inline constexpr std::int32_t kStreamTrackBase = 4096;

/// Stream-track stride per ExecutionContext. Must equal batched::kNumStreams
/// (static_asserted in device.hpp) — the exporter decomposes stream tids
/// into "ctx<i>/stream<j>" names with this stride.
inline constexpr std::int32_t kStreamsPerContext = 4;

/// Use as `tid` to mean "the calling thread's own track".
inline constexpr std::int32_t kCallerTrack = -1;

/// Monotonic nanoseconds since the process trace epoch.
std::int64_t trace_now_ns();

/// One recorded event. `cat`/`name`/arg keys must be string literals (or
/// otherwise outlive the trace) — the ring stores pointers, not copies.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = -1; ///< -1 marks an instant event
  std::int32_t tid = kCallerTrack;
  const char* arg_key[2] = {nullptr, nullptr};
  std::uint64_t arg_val[2] = {0, 0};
};

/// Append `ev` to the calling thread's ring buffer (drops when full).
/// No-op when tracing is disabled.
void record_event(const TraceEvent& ev);

/// Record an instant event (a point-in-time marker, rendered as a pin).
inline void trace_instant(const char* cat, const char* name, const char* k0 = nullptr,
                          std::uint64_t v0 = 0, const char* k1 = nullptr, std::uint64_t v1 = 0) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.ts_ns = trace_now_ns();
  ev.arg_key[0] = k0;
  ev.arg_val[0] = v0;
  ev.arg_key[1] = k1;
  ev.arg_val[1] = v1;
  record_event(ev);
}

/// RAII timed scope on the calling thread's track. All-literal arguments;
/// the constructor is a single branch when tracing is off.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, const char* k0 = nullptr, std::uint64_t v0 = 0,
            const char* k1 = nullptr, std::uint64_t v1 = 0) {
    if (!trace_enabled()) return;
    active_ = true;
    ev_.cat = cat;
    ev_.name = name;
    ev_.ts_ns = trace_now_ns();
    ev_.arg_key[0] = k0;
    ev_.arg_val[0] = v0;
    ev_.arg_key[1] = k1;
    ev_.arg_val[1] = v1;
  }
  ~TraceSpan() {
    if (!active_) return;
    ev_.dur_ns = trace_now_ns() - ev_.ts_ns;
    record_event(ev_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  TraceEvent ev_;
};

/// Thread-local launch label: the batched dispatch wrappers scope one of
/// these around each backend op so the runtime can name the launches the op
/// issues (a single op may enqueue several) without threading strings
/// through every signature.
const char* launch_label();

class ScopedLaunchLabel {
 public:
  explicit ScopedLaunchLabel(const char* label);
  ~ScopedLaunchLabel();
  ScopedLaunchLabel(const ScopedLaunchLabel&) = delete;
  ScopedLaunchLabel& operator=(const ScopedLaunchLabel&) = delete;

 private:
  const char* prev_;
};

/// Collected trace, detached from the ring buffers (strings copied).
struct TraceData {
  struct Event {
    std::string cat;
    std::string name;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = -1;
    std::int32_t tid = 0;
    std::vector<std::pair<std::string, std::uint64_t>> args;
  };
  std::vector<Event> events;
  std::uint64_t dropped = 0;

  /// Serialize as Chrome trace-event JSON ({"traceEvents": [...]}) with
  /// thread_name metadata naming the per-thread and per-stream tracks.
  std::string to_json() const;
  void write_json(const std::string& path) const;
};

/// Begin collecting (resets all ring buffers). Idempotent while running.
void start_trace();

/// Stop collecting and return everything recorded. See the quiescence
/// contract above.
TraceData stop_trace();

/// Ring-buffer accounting, for the zero-overhead-when-disabled pin test.
struct TraceStats {
  std::size_t buffers = 0; ///< thread-local rings ever allocated
  std::size_t events = 0;  ///< events currently held
  std::uint64_t dropped = 0;
};
TraceStats trace_stats();

/// Fresh id for an ExecutionContext's stream-track block.
std::int32_t next_trace_ctx_id();

} // namespace h2sketch::obs
