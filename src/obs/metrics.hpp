#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/quantile_sketch.hpp"

/// \file metrics.hpp
/// Process-wide metrics registry: one namespace of named counters, gauges
/// and quantile sketches, plus pull-style collectors that fold the stack's
/// pre-existing stat islands (DeviceStatsSnapshot, CacheStats,
/// MetricsSnapshot, fault counters, ConstructionStats) into a single
/// `snapshot()` with Prometheus-text and JSON exporters.
///
/// Two write paths:
///  - Push: layers grab a `Counter&`/`Gauge&`/`SketchMetric&` once (stable
///    address for the registry's lifetime) and hit it lock-free on the hot
///    path.
///  - Pull: subsystems that already keep their own atomics register a
///    collector callback; `snapshot()` invokes it to translate their native
///    stats into named metrics. Collectors from independent subsystems may
///    emit the same name — counters sum, gauges keep the last value,
///    sketches merge.

namespace h2sketch::obs {

/// Monotonic lock-free counter.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins gauge.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Mutex-guarded quantile sketch: `record` is a short critical section
/// (amortized O(1) sketch update), cheap enough for per-request rates but
/// kept off per-element inner loops.
class SketchMetric {
 public:
  void record(double v) {
    std::lock_guard<std::mutex> lk(mu_);
    sk_.update(v);
  }
  void merge(const QuantileSketch& other) {
    std::lock_guard<std::mutex> lk(mu_);
    sk_.merge(other);
  }
  QuantileSketch snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return sk_;
  }

 private:
  mutable std::mutex mu_;
  QuantileSketch sk_;
};

/// Point-in-time digest of one sketch.
struct SketchSummary {
  std::uint64_t count = 0;
  double min = 0.0, max = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};
SketchSummary summarize(const QuantileSketch& sk);

/// Immutable snapshot of every metric, ordered by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, SketchSummary>> sketches;

  /// Lookup helpers (nullptr when absent) — mainly for tests.
  const std::uint64_t* counter(std::string_view name) const;
  const double* gauge(std::string_view name) const;
  const SketchSummary* sketch(std::string_view name) const;

  /// Prometheus text exposition: counters as `<name> <v>`, sketches as
  /// summary-style `<name>{quantile="0.5"} <v>` + `_count`/`_min`/`_max`.
  std::string to_prometheus() const;
  std::string to_json() const;
};

/// Collectors receive a builder and emit named metrics into the snapshot.
class SnapshotBuilder {
 public:
  void counter(const std::string& name, std::uint64_t v);
  void gauge(const std::string& name, double v);
  void sketch(const std::string& name, const QuantileSketch& sk);

 private:
  friend class MetricsRegistry;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, QuantileSketch> sketches_;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every layer reports into.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime (instruments live in deques behind the name map).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  SketchMetric& sketch(std::string_view name);

  using Collector = std::function<void(SnapshotBuilder&)>;
  /// Register a pull collector; returns an id for remove_collector.
  /// Collectors run during snapshot() WITHOUT the registry mutex held, so
  /// they may freely touch registry instruments.
  std::uint64_t add_collector(Collector fn);
  void remove_collector(std::uint64_t id);

  /// Gather pushed instruments + all collector output into one snapshot.
  RegistrySnapshot snapshot() const;

  /// Drop all instruments and collectors (tests only — outstanding
  /// references dangle).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter*, std::less<>> counter_names_;
  std::map<std::string, Gauge*, std::less<>> gauge_names_;
  std::map<std::string, SketchMetric*, std::less<>> sketch_names_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<SketchMetric> sketches_;
  std::uint64_t next_collector_id_ = 1;
  std::vector<std::pair<std::uint64_t, Collector>> collectors_;
};

/// Periodically snapshots a registry and hands the result to a sink —
/// the hook long-running serving processes use to push metrics at a
/// scraper/logger. The sink runs on the reporter thread.
class PeriodicReporter {
 public:
  PeriodicReporter(MetricsRegistry& reg, double interval_seconds,
                   std::function<void(const RegistrySnapshot&)> sink);
  ~PeriodicReporter();
  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stop the reporter thread (idempotent). One final snapshot is emitted
  /// on stop so short-lived processes still report.
  void stop();

 private:
  MetricsRegistry& reg_;
  double interval_;
  std::function<void(const RegistrySnapshot&)> sink_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

} // namespace h2sketch::obs
