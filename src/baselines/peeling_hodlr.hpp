#pragma once

#include "baselines/topdown.hpp"

/// \file peeling_hodlr.hpp
/// Top-down sketching through a weak-admissibility (HODLR) partitioning —
/// the H2Opus-comparator stand-in. The paper (§V-B) observes that H2Opus's
/// top-down construction "requires a temporary weak-admissible
/// representation (HODLR), hence requires much more [sic] number of random
/// vectors (up to 18920) for 3D problems, causing the code to memory crash
/// for larger problems". This builder exhibits exactly that mechanism: for
/// 3D kernels the HODLR off-diagonal ranks grow with N, so the adaptive
/// sample count grows with N and eventually hits the rank cap (our analogue
/// of the OOM).

namespace h2sketch::baselines {

/// build_topdown_hmatrix under weak admissibility.
TopDownResult build_peeling_hodlr(std::shared_ptr<const tree::ClusterTree> tree,
                                  kern::MatVecSampler& sampler, const TopDownOptions& opts);

} // namespace h2sketch::baselines
