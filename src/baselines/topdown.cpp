#include "baselines/topdown.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/random.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace h2sketch::baselines {

namespace {

/// y -= contributions of every compressed far block at levels < upto.
void subtract_compressed(const HMatrix& h, index_t upto, ConstMatrixView omega, MatrixView y) {
  const tree::ClusterTree& t = *h.tree;
  for (index_t l = 0; l < upto; ++l) {
    const auto& far = h.mtree.far[static_cast<size_t>(l)];
    for (index_t s = 0; s < t.nodes_at(l); ++s)
      for (index_t j = 0; j < far.row_count(s); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
        const index_t c = far.col_at(s, j);
        const la::LowRank& lr = h.far_lr[static_cast<size_t>(l)][static_cast<size_t>(e)];
        if (lr.rank() == 0) continue;
        lr.apply(-1.0, omega.row_range(t.begin(l, c), t.size(l, c)),
                 y.row_range(t.begin(l, s), t.size(l, s)));
      }
  }
}

/// Greedy conflict coloring of the columns appearing in `targets` (the far
/// list at one level): two columns conflict when some block row would see
/// both (either as far targets or as polluting near columns). Returns -1
/// for nodes that are not columns of any target.
std::vector<index_t> color_columns(const tree::LevelBlockList& far,
                                   const tree::LevelBlockList& near, index_t nodes) {
  std::vector<std::set<index_t>> adj(static_cast<size_t>(nodes));
  std::vector<bool> is_col(static_cast<size_t>(nodes), false);
  for (index_t s = 0; s < nodes; ++s) {
    // Members a block row s can see: its far targets and its near columns.
    std::vector<index_t> members;
    for (index_t j = 0; j < far.row_count(s); ++j) members.push_back(far.col_at(s, j));
    const index_t nf = static_cast<index_t>(members.size());
    for (index_t j = 0; j < near.row_count(s); ++j) members.push_back(near.col_at(s, j));
    for (index_t a = 0; a < nf; ++a) {
      is_col[static_cast<size_t>(members[static_cast<size_t>(a)])] = true;
      for (size_t b = 0; b < members.size(); ++b) {
        if (members[static_cast<size_t>(a)] == members[b]) continue;
        adj[static_cast<size_t>(members[static_cast<size_t>(a)])].insert(members[b]);
        adj[static_cast<size_t>(members[b])].insert(members[static_cast<size_t>(a)]);
      }
    }
  }
  std::vector<index_t> order;
  for (index_t u = 0; u < nodes; ++u)
    if (is_col[static_cast<size_t>(u)]) order.push_back(u);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return adj[static_cast<size_t>(a)].size() > adj[static_cast<size_t>(b)].size();
  });
  std::vector<index_t> color(static_cast<size_t>(nodes), -1);
  for (index_t u : order) {
    std::set<index_t> used;
    for (index_t v : adj[static_cast<size_t>(u)])
      if (color[static_cast<size_t>(v)] >= 0) used.insert(color[static_cast<size_t>(v)]);
    index_t c = 0;
    while (used.count(c)) ++c;
    color[static_cast<size_t>(u)] = c;
  }
  return color;
}

/// M = A * pinv(C) via SVD of C (small dimensions).
Matrix right_solve_pinv(ConstMatrixView a, ConstMatrixView c) {
  const la::Svd s = la::jacobi_svd(c);
  const index_t r = la::svd_rank(s, 1e-12);
  // pinv(C) = V_r diag(1/sigma) U_r^T; M = A pinv(C) = (A V_r) diag(1/s) U_r^T.
  Matrix av(a.rows, r);
  la::gemm(1.0, a, la::Op::None, s.v.view().col_range(0, r), la::Op::None, 0.0, av.view());
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < a.rows; ++i) av(i, j) /= s.sigma[static_cast<size_t>(j)];
  Matrix m(a.rows, c.rows);
  la::gemm(1.0, av.view(), la::Op::None, s.u.view().col_range(0, r), la::Op::Trans, 0.0, m.view());
  return m;
}

struct EntrySketch {
  Matrix q;  ///< orthonormal row basis of the block (m x k)
  Matrix a;  ///< Q^T Y_st (k x d of its color)
  index_t color = -1;
};

} // namespace

TopDownResult build_topdown_hmatrix(std::shared_ptr<const tree::ClusterTree> tree,
                                    const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                    const TopDownOptions& opts) {
  const double t0 = wall_seconds();
  TopDownResult out;
  HMatrix& h = out.matrix;
  h.tree = tree;
  h.mtree = tree::MatrixTree::build(*tree, adm);
  h.init_structure();
  TopDownStats& st = out.stats;
  st.levels = tree->num_levels();
  st.samples_per_level.assign(static_cast<size_t>(st.levels), 0);

  const tree::ClusterTree& t = *tree;
  const index_t n = t.num_points();
  const index_t leaf = t.leaf_level();
  GaussianStream stream(opts.seed);
  std::uint64_t rand_idx = 0;
  auto gauss = [&]() {
    return stream(rand_idx++);
  };

  // Norm estimate from one dedicated global round.
  real_t norm_est = 0.0;
  {
    const index_t d0 = opts.sample_block;
    Matrix omega(n, d0), y(n, d0);
    for (index_t j = 0; j < d0; ++j)
      for (index_t i = 0; i < n; ++i) omega(i, j) = gauss();
    sampler.sample(omega.view(), y.view());
    st.total_samples += d0;
    norm_est = la::norm_f(y.view()) / std::sqrt(static_cast<real_t>(d0));
  }
  const real_t eps_abs = opts.tol * norm_est;

  // ---- far levels, top-down ----
  for (index_t l = 1; l <= leaf; ++l) {
    const auto ul = static_cast<size_t>(l);
    const auto& far = h.mtree.far[ul];
    if (far.empty()) continue;
    const index_t nodes = t.nodes_at(l);
    const std::vector<index_t> color =
        color_columns(far, h.mtree.near[ul], nodes);
    const index_t ncolors =
        1 + *std::max_element(color.begin(), color.end());
    st.max_colors = std::max(st.max_colors, ncolors);

    // Per directed entry: sketch state. Per color: the Gaussians used.
    std::vector<EntrySketch> entries(static_cast<size_t>(far.count()));
    std::vector<std::vector<Matrix>> g_per_color(static_cast<size_t>(ncolors));
    for (auto& g : g_per_color) g.resize(static_cast<size_t>(nodes));

    for (index_t c = 0; c < ncolors; ++c) {
      std::vector<index_t> active;
      for (index_t u = 0; u < nodes; ++u)
        if (color[static_cast<size_t>(u)] == c) active.push_back(u);

      Matrix yacc(n, 0);
      index_t d = 0;
      bool converged = false;
      while (!converged) {
        const index_t dn = opts.sample_block;
        Matrix omega(n, dn), ynew(n, dn);
        for (index_t u : active) {
          Matrix& g = g_per_color[static_cast<size_t>(c)][static_cast<size_t>(u)];
          const index_t gc0 = g.cols();
          // Extend this column cluster's Gaussian block.
          Matrix bigger(t.size(l, u), gc0 + dn);
          if (gc0 > 0) copy(g.view(), bigger.view().col_range(0, gc0));
          for (index_t j = 0; j < dn; ++j)
            for (index_t i = 0; i < t.size(l, u); ++i) bigger(i, gc0 + j) = gauss();
          g = std::move(bigger);
          copy(g.view().col_range(gc0, dn),
               omega.view().block(t.begin(l, u), 0, t.size(l, u), dn));
        }
        sampler.sample(omega.view(), ynew.view());
        st.total_samples += dn;
        st.samples_per_level[ul] += dn;
        subtract_compressed(h, l, omega.view(), ynew.view());
        Matrix grown(n, d + dn);
        if (d > 0) copy(yacc.view(), grown.view().col_range(0, d));
        copy(ynew.view(), grown.view().col_range(d, dn));
        yacc = std::move(grown);
        d += dn;

        converged = true;
        for (index_t s = 0; s < nodes && converged; ++s) {
          for (index_t j = 0; j < far.row_count(s) && converged; ++j) {
            const index_t u = far.col_at(s, j);
            if (color[static_cast<size_t>(u)] != c) continue;
            const index_t m = t.size(l, s);
            if (d >= std::min(m, t.size(l, u))) continue;
            if (d >= opts.max_block_rank) {
              st.rank_cap_hit = true;
              continue;
            }
            if (la::min_abs_r_diag(yacc.view().row_range(t.begin(l, s), m)) >= eps_abs)
              converged = false;
          }
        }
      }

      // Row bases + projected sketches for this color's entries.
      for (index_t s = 0; s < nodes; ++s) {
        for (index_t j = 0; j < far.row_count(s); ++j) {
          const index_t u = far.col_at(s, j);
          if (color[static_cast<size_t>(u)] != c) continue;
          const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
          const index_t m = t.size(l, s);
          Matrix ys = to_matrix(yacc.view().row_range(t.begin(l, s), m));
          Matrix work = to_matrix(ys.view());
          std::vector<real_t> tau;
          const la::Cpqr f = la::cpqr(work.view(), tau, eps_abs, opts.max_block_rank);
          EntrySketch& es = entries[static_cast<size_t>(e)];
          es.color = c;
          es.q = la::form_q(work.view(), tau, f.rank);
          es.a.resize(f.rank, d);
          la::gemm(1.0, es.q.view(), la::Op::Trans, ys.view(), la::Op::None, 0.0, es.a.view());
        }
      }
    }

    // Cores: K_st ~ Q_st M Q_ts^T with M = A_st pinv(Q_ts^T G_t).
    for (index_t s = 0; s < nodes; ++s) {
      for (index_t j = 0; j < far.row_count(s); ++j) {
        const index_t u = far.col_at(s, j);
        const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
        // Mirror entry (u, s).
        index_t em = -1;
        for (index_t jm = 0; jm < far.row_count(u); ++jm)
          if (far.col_at(u, jm) == s) em = far.row_ptr[static_cast<size_t>(u)] + jm;
        H2S_CHECK(em >= 0, "topdown: mirror far entry missing (asymmetric partition?)");
        const EntrySketch& es = entries[static_cast<size_t>(e)];
        const EntrySketch& em_s = entries[static_cast<size_t>(em)];
        la::LowRank& lr = h.far_lr[ul][static_cast<size_t>(e)];
        if (es.q.cols() == 0 || em_s.q.cols() == 0) {
          lr.u.resize(t.size(l, s), 0);
          lr.v.resize(t.size(l, u), 0);
          continue;
        }
        // C = Q_ts^T G_t where G_t are the Gaussians of *this* entry's color.
        const Matrix& g = g_per_color[static_cast<size_t>(es.color)][static_cast<size_t>(u)];
        Matrix cmat(em_s.q.cols(), g.cols());
        la::gemm(1.0, em_s.q.view(), la::Op::Trans, g.view(), la::Op::None, 0.0, cmat.view());
        const Matrix m = right_solve_pinv(es.a.view(), cmat.view());
        lr.u.resize(t.size(l, s), em_s.q.cols());
        la::gemm(1.0, es.q.view(), la::Op::None, m.view(), la::Op::None, 0.0, lr.u.view());
        lr.v = to_matrix(em_s.q.view());
      }
    }
  }

  // ---- dense leaf blocks via colored identity probes ----
  {
    const auto& near = h.mtree.near_leaf;
    const index_t nodes = t.nodes_at(leaf);
    // Conflict graph: two near columns of the same row conflict.
    std::vector<std::set<index_t>> adj(static_cast<size_t>(nodes));
    for (index_t s = 0; s < nodes; ++s)
      for (index_t a = 0; a < near.row_count(s); ++a)
        for (index_t b = 0; b < near.row_count(s); ++b)
          if (a != b)
            adj[static_cast<size_t>(near.col_at(s, a))].insert(near.col_at(s, b));
    std::vector<index_t> color(static_cast<size_t>(nodes), -1);
    index_t ncolors = 0;
    for (index_t u = 0; u < nodes; ++u) {
      std::set<index_t> used;
      for (index_t v : adj[static_cast<size_t>(u)])
        if (color[static_cast<size_t>(v)] >= 0) used.insert(color[static_cast<size_t>(v)]);
      index_t c = 0;
      while (used.count(c)) ++c;
      color[static_cast<size_t>(u)] = c;
      ncolors = std::max(ncolors, c + 1);
    }
    st.max_colors = std::max(st.max_colors, ncolors);

    for (index_t c = 0; c < ncolors; ++c) {
      index_t width = 0;
      for (index_t u = 0; u < nodes; ++u)
        if (color[static_cast<size_t>(u)] == c) width = std::max(width, t.size(leaf, u));
      if (width == 0) continue;
      Matrix omega(n, width), y(n, width);
      for (index_t u = 0; u < nodes; ++u)
        if (color[static_cast<size_t>(u)] == c)
          for (index_t i = 0; i < t.size(leaf, u); ++i) omega(t.begin(leaf, u) + i, i) = 1.0;
      sampler.sample(omega.view(), y.view());
      st.total_samples += width;
      subtract_compressed(h, t.num_levels(), omega.view(), y.view());
      for (index_t s = 0; s < nodes; ++s)
        for (index_t j = 0; j < near.row_count(s); ++j) {
          const index_t u = near.col_at(s, j);
          if (color[static_cast<size_t>(u)] != c) continue;
          const index_t e = near.row_ptr[static_cast<size_t>(s)] + j;
          h.dense[static_cast<size_t>(e)] =
              to_matrix(y.view().block(t.begin(leaf, s), 0, t.size(leaf, s), t.size(leaf, u)));
        }
    }
  }

  st.seconds = wall_seconds() - t0;
  st.memory_bytes = h.memory_bytes();
  st.max_rank = h.max_rank();
  return out;
}

} // namespace h2sketch::baselines
