#pragma once

#include "core/construction.hpp"

/// \file hss.hpp
/// Bottom-up sketching HSS construction (Martinsson 2011, [29]) — exactly
/// Algorithm 1 restricted to weak admissibility, which is how the paper
/// positions its contribution ("the extension of the sketching-based
/// construction algorithm for the HSS matrix [29] to strongly-admissible H2
/// matrices"). Serves as the STRUMPACK-HSS line of Fig. 6(b).
///
/// NOTE: this is a THIN WRAPPER, not an independent HSS implementation. It
/// forwards to `core::construct_h2` with `Admissibility::weak()` and changes
/// nothing else — same adaptive sampling, same IDs, same H2 data structures
/// (which subsume HSS when the coupling sparsity constant is 1). A genuine
/// HSS baseline (dedicated generators, ULV factorization) is a ROADMAP item;
/// `test_baselines.cpp` pins the wrapper equivalence so that a future real
/// implementation shows up as an explicit behavioral diff.

namespace h2sketch::baselines {

/// construct_h2 under weak admissibility: every off-diagonal sibling pair is
/// low-rank, with nested (HSS) bases. Identical to calling construct_h2 with
/// Admissibility::weak() directly (see file comment).
core::ConstructionResult construct_hss(std::shared_ptr<const tree::ClusterTree> tree,
                                       kern::MatVecSampler& sampler,
                                       const kern::EntryGenerator& gen,
                                       const core::ConstructionOptions& opts);

} // namespace h2sketch::baselines
