#pragma once

#include "solver/hss_construction.hpp"

/// \file hss.hpp
/// Bottom-up sketching HSS construction (Martinsson 2011, [29]) — the
/// baseline the paper positions its contribution against ("the extension of
/// the sketching-based construction algorithm for the HSS matrix [29] to
/// strongly-admissible H2 matrices"). Serves as the STRUMPACK-HSS line of
/// Fig. 6(b).
///
/// Since the solver subsystem landed this dispatches to the genuine
/// implementation in solver/hss_construction.hpp: dedicated generator
/// storage (HssMatrix), weak-admissibility structure hard-wired, and a ULV
/// factorization consuming it (solver/ulv.hpp). It is no longer the thin
/// `construct_h2(Admissibility::weak())` forward of earlier revisions — the
/// behavioral diff the old `Hss.IsExactlyWeakAdmissibilityConstructH2` pin
/// announced; `test_baselines.cpp` now asserts tolerance-level agreement
/// with the weak-admissibility H2 build instead.

namespace h2sketch::baselines {

/// Bottom-up sketching HSS construction into dedicated HSS storage. Same
/// black-box inputs as construct_h2; equivalent compression quality to
/// construct_h2 under Admissibility::weak() (asserted to tolerance by
/// test_baselines.cpp), with generators laid out for the ULV solver.
solver::HssResult construct_hss(std::shared_ptr<const tree::ClusterTree> tree,
                                kern::MatVecSampler& sampler, const kern::EntryGenerator& gen,
                                const core::ConstructionOptions& opts);

} // namespace h2sketch::baselines
