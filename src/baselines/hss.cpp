#include "baselines/hss.hpp"

namespace h2sketch::baselines {

core::ConstructionResult construct_hss(std::shared_ptr<const tree::ClusterTree> tree,
                                       kern::MatVecSampler& sampler,
                                       const kern::EntryGenerator& gen,
                                       const core::ConstructionOptions& opts) {
  return core::construct_h2(std::move(tree), tree::Admissibility::weak(), sampler, gen, opts);
}

} // namespace h2sketch::baselines
