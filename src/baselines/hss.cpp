#include "baselines/hss.hpp"

namespace h2sketch::baselines {

solver::HssResult construct_hss(std::shared_ptr<const tree::ClusterTree> tree,
                                kern::MatVecSampler& sampler, const kern::EntryGenerator& gen,
                                const core::ConstructionOptions& opts) {
  return solver::build_hss(std::move(tree), sampler, gen, opts);
}

} // namespace h2sketch::baselines
