#include "baselines/hss.hpp"

namespace h2sketch::baselines {

core::ConstructionResult construct_hss(std::shared_ptr<const tree::ClusterTree> tree,
                                       kern::MatVecSampler& sampler,
                                       const kern::EntryGenerator& gen,
                                       const core::ConstructionOptions& opts) {
  // Deliberately nothing but a forward: Algorithm 1 with weak admissibility
  // IS the bottom-up HSS construction. Keep this in sync with the pinning
  // test (Hss.IsExactlyWeakAdmissibilityConstructH2) when replacing it with
  // a real HSS implementation.
  return core::construct_h2(std::move(tree), tree::Admissibility::weak(), sampler, gen, opts);
}

} // namespace h2sketch::baselines
