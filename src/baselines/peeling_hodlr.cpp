#include "baselines/peeling_hodlr.hpp"

namespace h2sketch::baselines {

TopDownResult build_peeling_hodlr(std::shared_ptr<const tree::ClusterTree> tree,
                                  kern::MatVecSampler& sampler, const TopDownOptions& opts) {
  return build_topdown_hmatrix(std::move(tree), tree::Admissibility::weak(), sampler, opts);
}

} // namespace h2sketch::baselines
