#pragma once

#include <memory>
#include <vector>

#include "la/lowrank.hpp"
#include "tree/matrix_tree.hpp"

/// \file hmatrix.hpp
/// Non-nested H-matrix: every admissible block carries its own U V^T factors
/// (O(N log N) storage instead of H2's O(N)). This is the output format of
/// the top-down sketching baselines (the H2Opus-peeling and ButterflyPACK-H
/// stand-ins) and the HODLR line of Fig. 6(b).

namespace h2sketch::baselines {

class HMatrix {
 public:
  std::shared_ptr<const tree::ClusterTree> tree;
  tree::MatrixTree mtree;

  /// far_lr[l][e]: low-rank factors of the e-th CSR far entry at level l.
  std::vector<std::vector<la::LowRank>> far_lr;
  /// dense[e]: e-th near-leaf block.
  std::vector<Matrix> dense;

  index_t size() const { return tree ? tree->num_points() : 0; }

  /// Allocate empty containers matching the trees.
  void init_structure();

  /// y = A x (permuted space), multi-column.
  void matvec(ConstMatrixView x, MatrixView y) const;

  /// Dense representation (small N, tests).
  Matrix densify() const;

  /// Bytes in U/V factors and dense blocks.
  std::size_t memory_bytes() const;

  /// Largest block rank.
  index_t max_rank() const;
};

} // namespace h2sketch::baselines
