#pragma once

#include <memory>

#include "baselines/hmatrix.hpp"
#include "kernels/sampler.hpp"

/// \file topdown.hpp
/// Top-down, fully black-box sketching construction of a (non-nested)
/// H-matrix via graph-colored peeling — the stand-in for the paper's two
/// comparators:
///
///  * With *weak* admissibility this is the classic peeling construction
///    through a HODLR partitioning (Lin, Lu & Ying [22]), the algorithm
///    inside H2Opus's top-down GPU builder. For 3D kernels its off-diagonal
///    ranks grow with N, so its sample count explodes — the reason H2Opus
///    needed up to 18920 samples and ran out of memory (paper §V-B).
///  * With *general* (strong) admissibility this is a graph-coloring
///    randomized H construction in the spirit of Levitt & Martinsson [23]
///    (ButterflyPACK): per level, column clusters are colored so that no
///    block row sees two active columns, giving O(colors * (r + p)) samples
///    per level and O(log N)-growing totals — versus Algorithm 1's O(1).
///
/// Level blocks are compressed two-sided from a single sketch per color:
/// K_st ~ Q_st M Q_ts^T with M = (Q_st^T Y_st) pinv(Q_ts^T G_t)
/// (generalized-Nystrom style), so no second projection pass is needed.
/// Dense leaf blocks are extracted with colored identity probes. The
/// operator is assumed symmetric (as everywhere in this repo).

namespace h2sketch::baselines {

struct TopDownOptions {
  real_t tol = 1e-6;          ///< relative tolerance
  index_t sample_block = 32;  ///< columns per sampling round
  index_t max_block_rank = 512; ///< rank cap; hitting it flags rank_cap_hit
  std::uint64_t seed = 0xB1a5;
};

struct TopDownStats {
  index_t total_samples = 0; ///< total random columns through the sampler
  index_t max_colors = 0;    ///< worst per-level color count
  index_t levels = 0;
  bool rank_cap_hit = false; ///< the analogue of the paper's baseline OOM
  double seconds = 0.0;
  std::size_t memory_bytes = 0;
  index_t max_rank = 0;
  std::vector<index_t> samples_per_level;
};

struct TopDownResult {
  HMatrix matrix;
  TopDownStats stats;
};

/// Build the H-matrix by top-down colored sketching (see file comment).
TopDownResult build_topdown_hmatrix(std::shared_ptr<const tree::ClusterTree> tree,
                                    const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                    const TopDownOptions& opts);

} // namespace h2sketch::baselines
