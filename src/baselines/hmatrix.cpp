#include "baselines/hmatrix.hpp"

#include "la/blas.hpp"

namespace h2sketch::baselines {

void HMatrix::init_structure() {
  H2S_CHECK(tree != nullptr, "HMatrix: tree not set");
  far_lr.assign(static_cast<size_t>(mtree.num_levels), {});
  for (index_t l = 0; l < mtree.num_levels; ++l)
    far_lr[static_cast<size_t>(l)].assign(
        static_cast<size_t>(mtree.far[static_cast<size_t>(l)].count()), la::LowRank{});
  dense.assign(static_cast<size_t>(mtree.near_leaf.count()), Matrix());
}

void HMatrix::matvec(ConstMatrixView x, MatrixView y) const {
  const tree::ClusterTree& t = *tree;
  H2S_CHECK(x.rows == t.num_points() && y.rows == x.rows && y.cols == x.cols,
            "HMatrix::matvec shape mismatch");
  set_all(y, 0.0);
  for (index_t l = 0; l < mtree.num_levels; ++l) {
    const auto& far = mtree.far[static_cast<size_t>(l)];
    for (index_t s = 0; s < t.nodes_at(l); ++s)
      for (index_t j = 0; j < far.row_count(s); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
        const index_t c = far.col_at(s, j);
        const la::LowRank& lr = far_lr[static_cast<size_t>(l)][static_cast<size_t>(e)];
        if (lr.rank() == 0) continue;
        lr.apply(1.0, x.row_range(t.begin(l, c), t.size(l, c)),
                 y.row_range(t.begin(l, s), t.size(l, s)));
      }
  }
  const index_t leaf = t.leaf_level();
  const auto& near = mtree.near_leaf;
  for (index_t s = 0; s < t.nodes_at(leaf); ++s)
    for (index_t j = 0; j < near.row_count(s); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(s)] + j;
      const index_t c = near.col_at(s, j);
      la::gemm(1.0, dense[static_cast<size_t>(e)].view(), la::Op::None,
               x.row_range(t.begin(leaf, c), t.size(leaf, c)), la::Op::None, 1.0,
               y.row_range(t.begin(leaf, s), t.size(leaf, s)));
    }
}

Matrix HMatrix::densify() const {
  const tree::ClusterTree& t = *tree;
  const index_t n = t.num_points();
  Matrix k(n, n);
  for (index_t l = 0; l < mtree.num_levels; ++l) {
    const auto& far = mtree.far[static_cast<size_t>(l)];
    for (index_t s = 0; s < t.nodes_at(l); ++s)
      for (index_t j = 0; j < far.row_count(s); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
        const index_t c = far.col_at(s, j);
        const la::LowRank& lr = far_lr[static_cast<size_t>(l)][static_cast<size_t>(e)];
        if (lr.rank() == 0) continue;
        la::gemm(1.0, lr.u.view(), la::Op::None, lr.v.view(), la::Op::Trans, 1.0,
                 k.view().block(t.begin(l, s), t.begin(l, c), t.size(l, s), t.size(l, c)));
      }
  }
  const index_t leaf = t.leaf_level();
  const auto& near = mtree.near_leaf;
  for (index_t s = 0; s < t.nodes_at(leaf); ++s)
    for (index_t j = 0; j < near.row_count(s); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(s)] + j;
      const index_t c = near.col_at(s, j);
      copy(dense[static_cast<size_t>(e)].view(),
           k.view().block(t.begin(leaf, s), t.begin(leaf, c), t.size(leaf, s), t.size(leaf, c)));
    }
  return k;
}

std::size_t HMatrix::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lvl : far_lr)
    for (const auto& lr : lvl)
      bytes += static_cast<std::size_t>(lr.u.size() + lr.v.size()) * sizeof(real_t);
  for (const auto& d : dense) bytes += static_cast<std::size_t>(d.size()) * sizeof(real_t);
  return bytes;
}

index_t HMatrix::max_rank() const {
  index_t mx = 0;
  for (const auto& lvl : far_lr)
    for (const auto& lr : lvl) mx = std::max(mx, lr.rank());
  return mx;
}

} // namespace h2sketch::baselines
