#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/blas.hpp"

namespace h2sketch::la {

Svd jacobi_svd(ConstMatrixView a) {
  // Work on A (or A^T so rows >= cols), orthogonalize columns by plane
  // rotations, accumulate V; at the end sigma_j = ||col_j||, U = A V / sigma.
  const bool transposed = a.rows < a.cols;
  Matrix w = transposed ? Matrix(a.cols, a.rows) : to_matrix(a);
  if (transposed) {
    for (index_t j = 0; j < a.cols; ++j)
      for (index_t i = 0; i < a.rows; ++i) w(j, i) = a(i, j);
  }
  const index_t m = w.rows(), n = w.cols();
  Matrix v = Matrix::identity(n);

  const real_t eps = 1e-15;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        real_t app = 0, aqq = 0, apq = 0;
        for (index_t i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) continue;
        rotated = true;
        const real_t zeta = (aqq - app) / (2.0 * apq);
        const real_t t = std::copysign(1.0, zeta) / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const real_t c = 1.0 / std::sqrt(1.0 + t * t);
        const real_t s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const real_t wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (index_t i = 0; i < n; ++i) {
          const real_t vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Extract singular values and left vectors; sort descending.
  std::vector<real_t> sig(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    real_t s = 0;
    for (index_t i = 0; i < m; ++i) s += w(i, j) * w(i, j);
    sig[static_cast<size_t>(j)] = std::sqrt(s);
  }
  std::vector<index_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(),
            [&](index_t x, index_t y) { return sig[static_cast<size_t>(x)] > sig[static_cast<size_t>(y)]; });

  Svd out;
  out.sigma.resize(static_cast<size_t>(n));
  out.u.resize(m, n);
  out.v.resize(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<size_t>(j)];
    const real_t s = sig[static_cast<size_t>(src)];
    out.sigma[static_cast<size_t>(j)] = s;
    const real_t inv = s > 0 ? 1.0 / s : 0.0;
    for (index_t i = 0; i < m; ++i) out.u(i, j) = w(i, src) * inv;
    for (index_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  if (transposed) std::swap(out.u, out.v);
  return out;
}

index_t svd_rank(const Svd& s, real_t rel_tol) {
  if (s.sigma.empty() || s.sigma[0] == 0.0) return 0;
  index_t r = 0;
  for (real_t v : s.sigma)
    if (v > rel_tol * s.sigma[0]) ++r;
  return r;
}

} // namespace h2sketch::la
