#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file qr.hpp
/// Householder QR, column-pivoted QR (rank-revealing, with early stop), and
/// the min-|diag(R)| probe used by the adaptive construction's convergence
/// test (paper §III-B).

namespace h2sketch::la {

/// In-place unpivoted Householder QR (LAPACK geqrf layout): on exit the upper
/// triangle of A holds R and the strict lower triangle holds the Householder
/// vectors (v(0) = 1 implicit); tau holds the reflector scalars.
void householder_qr(MatrixView a, std::vector<real_t>& tau);

/// Continue an unpivoted Householder QR after columns were appended: the
/// first `from` columns of A (and tau, with tau.size() == min(from, rows))
/// already hold householder_qr output; the remaining columns hold fresh
/// data. Replays the existing reflectors on the appended columns, then
/// extends the factorization in place, growing tau. The result — R diagonal
/// included — is bitwise identical to householder_qr of the full matrix,
/// because each appended column sees the same reflectors in the same order.
void householder_qr_continue(MatrixView a, std::vector<real_t>& tau, index_t from);

/// Apply Q^T (from householder_qr of `qr`) to B in place: B := Q^T B.
void apply_q_transpose(ConstMatrixView qr, const std::vector<real_t>& tau, MatrixView b);

/// Apply Q to B in place: B := Q B.
void apply_q(ConstMatrixView qr, const std::vector<real_t>& tau, MatrixView b);

/// Form the thin Q factor (m x k, k = min(m, n) columns) from householder_qr output.
Matrix form_q(ConstMatrixView qr, const std::vector<real_t>& tau, index_t k);

/// Smallest |R(i,i)| of the unpivoted QR of A (A is copied; empty -> 0).
/// This is the adaptive construction's convergence probe: once the sample
/// matrix has more columns than the numerical rank of the sketched block row,
/// the trailing R diagonal collapses below epsilon_abs.
real_t min_abs_r_diag(ConstMatrixView a);

/// Result of a column-pivoted QR stopped at a tolerance.
struct Cpqr {
  /// Column permutation: factored column j of the output is input column piv[j].
  std::vector<index_t> piv;
  /// Numerical rank detected: number of Householder steps performed.
  index_t rank = 0;
};

/// In-place rank-revealing CPQR with norm downdating (LAPACK geqp3 style).
/// Stops when the largest remaining column norm drops to <= abs_tol or
/// rank == max_rank (max_rank < 0 means unbounded). On exit A holds the
/// factorization of A(:, piv) in geqrf layout; tau as in householder_qr.
Cpqr cpqr(MatrixView a, std::vector<real_t>& tau, real_t abs_tol, index_t max_rank = -1);

} // namespace h2sketch::la
