#include "la/id.hpp"

#include "la/blas.hpp"
#include "la/qr.hpp"

namespace h2sketch::la {

ColumnID column_id(ConstMatrixView a, real_t abs_tol, index_t max_rank) {
  const index_t n = a.cols;
  Matrix work = to_matrix(a);
  std::vector<real_t> tau;
  const Cpqr f = cpqr(work.view(), tau, abs_tol, max_rank);
  const index_t k = f.rank;

  ColumnID id;
  id.skeleton.assign(f.piv.begin(), f.piv.begin() + k);
  id.interp.resize(k, n);
  if (k == 0) return id;

  // T = R1^{-1} R2 where [R1 R2] is the leading k rows of R.
  Matrix t(k, n - k);
  for (index_t j = 0; j < n - k; ++j)
    for (index_t i = 0; i < k; ++i) t(i, j) = work(i, k + j);
  if (n - k > 0) trsm_upper_left(work.block(0, 0, k, k), Op::None, t.view());

  // X = [I T] P^T: column piv[j] of X is e_j for j < k, T(:, j-k) otherwise.
  for (index_t j = 0; j < k; ++j) id.interp(j, f.piv[static_cast<size_t>(j)]) = 1.0;
  for (index_t j = k; j < n; ++j)
    for (index_t i = 0; i < k; ++i)
      id.interp(i, f.piv[static_cast<size_t>(j)]) = t(i, j - k);
  return id;
}

RowID row_id(ConstMatrixView a, real_t abs_tol, index_t max_rank) {
  // Row ID of A = column ID of A^T.
  Matrix at(a.cols, a.rows);
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) at(j, i) = a(i, j);
  ColumnID cid = column_id(at.view(), abs_tol, max_rank);

  RowID id;
  id.skeleton = std::move(cid.skeleton);
  const index_t k = static_cast<index_t>(id.skeleton.size());
  id.interp.resize(a.rows, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < a.rows; ++i) id.interp(i, j) = cid.interp(j, i);
  return id;
}

real_t column_id_rel_error(ConstMatrixView a, const ColumnID& id) {
  const index_t k = static_cast<index_t>(id.skeleton.size());
  Matrix cols(a.rows, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < a.rows; ++i) cols(i, j) = a(i, id.skeleton[static_cast<size_t>(j)]);
  Matrix rec = to_matrix(a);
  gemm(-1.0, cols.view(), Op::None, id.interp.view(), Op::None, 1.0, rec.view());
  const real_t na = norm_f(a);
  return na == 0.0 ? norm_f(rec.view()) : norm_f(rec.view()) / na;
}

real_t row_id_rel_error(ConstMatrixView a, const RowID& id) {
  const index_t k = static_cast<index_t>(id.skeleton.size());
  Matrix rows(k, a.cols);
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < k; ++i) rows(i, j) = a(id.skeleton[static_cast<size_t>(i)], j);
  Matrix rec = to_matrix(a);
  gemm(-1.0, id.interp.view(), Op::None, rows.view(), Op::None, 1.0, rec.view());
  const real_t na = norm_f(a);
  return na == 0.0 ? norm_f(rec.view()) : norm_f(rec.view()) / na;
}

} // namespace h2sketch::la
