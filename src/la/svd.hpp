#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file svd.hpp
/// One-sided Jacobi SVD. Used by the low-rank tools (truncation of update
/// products) and as an independent oracle in tests; not on the construction
/// hot path.

namespace h2sketch::la {

/// Thin SVD A = U diag(sigma) V^T for any m x n A (rank r = min(m, n)).
struct Svd {
  Matrix u;                  ///< m x r, orthonormal columns
  std::vector<real_t> sigma; ///< r singular values, descending
  Matrix v;                  ///< n x r, orthonormal columns
};

/// One-sided Jacobi SVD; converges to machine precision for the modest block
/// sizes used in hierarchical matrices.
Svd jacobi_svd(ConstMatrixView a);

/// Numerical rank at relative tolerance: #{ sigma_i > tol * sigma_0 }.
index_t svd_rank(const Svd& s, real_t rel_tol);

} // namespace h2sketch::la
