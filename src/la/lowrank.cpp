#include "la/lowrank.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/svd.hpp"

namespace h2sketch::la {

void LowRank::apply(real_t alpha, ConstMatrixView x, MatrixView y) const {
  H2S_CHECK(x.rows == cols() && y.rows == rows() && x.cols == y.cols,
            "LowRank::apply: shape mismatch");
  Matrix tmp(rank(), x.cols);
  gemm(1.0, v.view(), Op::Trans, x, Op::None, 0.0, tmp.view());
  gemm(alpha, u.view(), Op::None, tmp.view(), Op::None, 1.0, y);
}

Matrix LowRank::densify() const {
  Matrix d(rows(), cols());
  gemm(1.0, u.view(), Op::None, v.view(), Op::Trans, 0.0, d.view());
  return d;
}

real_t LowRank::entry(index_t i, index_t j) const {
  real_t s = 0.0;
  for (index_t k = 0; k < rank(); ++k) s += u(i, k) * v(j, k);
  return s;
}

LowRank random_lowrank(index_t m, index_t n, index_t k, real_t scale, std::uint64_t seed) {
  LowRank lr;
  lr.u.resize(m, k);
  lr.v.resize(n, k);
  GaussianStream gu(seed), gv(seed + 0x5851f42d4c957f2dull);
  fill_gaussian(lr.u.view(), gu);
  fill_gaussian(lr.v.view(), gv);
  const real_t f = scale / std::sqrt(static_cast<real_t>(std::max<index_t>(1, k)));
  la::scale(f, real_span(lr.u.data(), static_cast<size_t>(lr.u.size())));
  return lr;
}

LowRank truncate_to_lowrank(ConstMatrixView a, real_t rel_tol, index_t max_rank) {
  const Svd s = jacobi_svd(a);
  index_t k = svd_rank(s, rel_tol);
  if (max_rank >= 0) k = std::min(k, max_rank);
  LowRank lr;
  lr.u.resize(a.rows, k);
  lr.v.resize(a.cols, k);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < a.rows; ++i) lr.u(i, j) = s.u(i, j) * s.sigma[static_cast<size_t>(j)];
    for (index_t i = 0; i < a.cols; ++i) lr.v(i, j) = s.v(i, j);
  }
  return lr;
}

} // namespace h2sketch::la
