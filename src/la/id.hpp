#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file id.hpp
/// Interpolative decompositions (paper §II-B). The construction algorithm
/// uses the *row* ID of the sample matrix Y_loc: Y ≈ X · Y(J, :), where J is
/// the skeleton row set and X the interpolation operator with X(J, :) = I.
/// X directly becomes the cluster basis U (leaf level) or the stacked
/// transfer matrices [E1; E2] (inner levels).

namespace h2sketch::la {

/// Column ID: A ≈ A(:, J) * X with X (k x n), X(:, J) = I_k.
struct ColumnID {
  std::vector<index_t> skeleton; ///< J: selected column indices, size k
  Matrix interp;                 ///< X: k x n interpolation matrix
};

/// Row ID: A ≈ X * A(J, :) with X (m x k), X(J, :) = I_k.
struct RowID {
  std::vector<index_t> skeleton; ///< J: selected row indices, size k
  Matrix interp;                 ///< X: m x k interpolation matrix
};

/// Compute a column ID of A via tolerance-stopped CPQR (Eq. (3)):
/// A P = Q [R1 R2] -> T = R1^{-1} R2, X = [I T] P^T.
/// abs_tol bounds the norm of the discarded trailing block R3; max_rank < 0
/// means unbounded.
ColumnID column_id(ConstMatrixView a, real_t abs_tol, index_t max_rank = -1);

/// Compute a row ID of A as the column ID of A^T.
RowID row_id(ConstMatrixView a, real_t abs_tol, index_t max_rank = -1);

/// Reconstruction helpers for tests: ||A - A(:,J) X|| / ||A||.
real_t column_id_rel_error(ConstMatrixView a, const ColumnID& id);
real_t row_id_rel_error(ConstMatrixView a, const RowID& id);

} // namespace h2sketch::la
