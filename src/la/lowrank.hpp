#pragma once

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

/// \file lowrank.hpp
/// Dense low-rank factor pairs K ≈ U V^T. Used for the paper's third
/// application: updating an existing H2 matrix with a low-rank product
/// (Fig. 5(c)) as arises in LU/multifrontal Schur-complement updates.

namespace h2sketch::la {

/// A rank-k product U V^T with U (m x k) and V (n x k).
struct LowRank {
  Matrix u;
  Matrix v;

  index_t rows() const { return u.rows(); }
  index_t cols() const { return v.rows(); }
  index_t rank() const { return u.cols(); }

  /// Y += alpha * (U V^T) * X.
  void apply(real_t alpha, ConstMatrixView x, MatrixView y) const;

  /// Dense representation (tests / small problems).
  Matrix densify() const;

  /// Entry (i, j) = sum_k U(i,k) V(j,k).
  real_t entry(index_t i, index_t j) const;
};

/// Random rank-k product with N(0,1)/sqrt(k) factors (bounded spectrum),
/// scaled so that ||U V^T||_F ≈ `scale` * sqrt(m n / max(m,n)) — a generic
/// Schur-complement-update stand-in.
LowRank random_lowrank(index_t m, index_t n, index_t k, real_t scale, std::uint64_t seed);

/// SVD-truncate a dense matrix to relative tolerance (and optional max rank).
LowRank truncate_to_lowrank(ConstMatrixView a, real_t rel_tol, index_t max_rank = -1);

} // namespace h2sketch::la
