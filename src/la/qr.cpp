#include "la/qr.hpp"

#include <algorithm>
#include <cmath>

namespace h2sketch::la {

namespace {

/// Build a Householder reflector for x (length len, stride 1):
/// H = I - tau v v^T with v(0) = 1 zeroes x(1:). On exit x(0) = beta (the R
/// diagonal) and x(1:) holds v(1:). Returns tau (0 when x(1:) is zero).
real_t make_reflector(real_t* x, index_t len) {
  if (len <= 1) return 0.0;
  real_t xnorm = 0.0;
  for (index_t i = 1; i < len; ++i) xnorm += x[i] * x[i];
  if (xnorm == 0.0) return 0.0;
  const real_t alpha = x[0];
  const real_t beta = -std::copysign(std::sqrt(alpha * alpha + xnorm), alpha);
  const real_t tau = (beta - alpha) / beta;
  const real_t inv = 1.0 / (alpha - beta);
  for (index_t i = 1; i < len; ++i) x[i] *= inv;
  x[0] = beta;
  return tau;
}

/// Apply H = I - tau v v^T (v packed below a(k,k), v(0)=1) to A(k:, j0:).
void apply_reflector(MatrixView a, index_t k, real_t tau, index_t j0) {
  if (tau == 0.0) return;
  const index_t m = a.rows;
  for (index_t j = j0; j < a.cols; ++j) {
    real_t* col = a.data + j * a.ld;
    const real_t* v = a.data + k * a.ld; // column k holds the reflector
    real_t w = col[k];
    for (index_t i = k + 1; i < m; ++i) w += v[i] * col[i];
    w *= tau;
    col[k] -= w;
    for (index_t i = k + 1; i < m; ++i) col[i] -= w * v[i];
  }
}

} // namespace

void householder_qr(MatrixView a, std::vector<real_t>& tau) {
  const index_t kmax = std::min(a.rows, a.cols);
  tau.assign(static_cast<size_t>(kmax), 0.0);
  for (index_t k = 0; k < kmax; ++k) {
    tau[static_cast<size_t>(k)] = make_reflector(a.data + k + k * a.ld, a.rows - k);
    apply_reflector(a, k, tau[static_cast<size_t>(k)], k + 1);
  }
}

void householder_qr_continue(MatrixView a, std::vector<real_t>& tau, index_t from) {
  const index_t kmax = std::min(a.rows, a.cols);
  const index_t kdone = std::min(from, kmax);
  H2S_CHECK(from <= a.cols && static_cast<index_t>(tau.size()) == kdone,
            "householder_qr_continue: tau does not match the factored prefix");
  if (from >= a.cols) return;
  // Replay H_0..H_{kdone-1} on the appended columns in factorization order —
  // exactly the updates a full QR would have applied to them.
  for (index_t t = 0; t < kdone; ++t) apply_reflector(a, t, tau[static_cast<size_t>(t)], from);
  tau.resize(static_cast<size_t>(kmax), 0.0);
  for (index_t k = kdone; k < kmax; ++k) {
    tau[static_cast<size_t>(k)] = make_reflector(a.data + k + k * a.ld, a.rows - k);
    apply_reflector(a, k, tau[static_cast<size_t>(k)], k + 1);
  }
}

void apply_q_transpose(ConstMatrixView qr, const std::vector<real_t>& tau, MatrixView b) {
  H2S_CHECK(b.rows == qr.rows, "apply_q_transpose: shape mismatch");
  const index_t k = static_cast<index_t>(tau.size());
  // Q^T = H_{k-1} ... H_1 H_0 applied in order 0..k-1.
  for (index_t t = 0; t < k; ++t) {
    if (tau[static_cast<size_t>(t)] == 0.0) continue;
    for (index_t j = 0; j < b.cols; ++j) {
      real_t* col = b.data + j * b.ld;
      const real_t* v = qr.data + t * qr.ld;
      real_t w = col[t];
      for (index_t i = t + 1; i < qr.rows; ++i) w += v[i] * col[i];
      w *= tau[static_cast<size_t>(t)];
      col[t] -= w;
      for (index_t i = t + 1; i < qr.rows; ++i) col[i] -= w * v[i];
    }
  }
}

void apply_q(ConstMatrixView qr, const std::vector<real_t>& tau, MatrixView b) {
  H2S_CHECK(b.rows == qr.rows, "apply_q: shape mismatch");
  const index_t k = static_cast<index_t>(tau.size());
  // Q = H_0 H_1 ... H_{k-1} applied in reverse order.
  for (index_t t = k - 1; t >= 0; --t) {
    if (tau[static_cast<size_t>(t)] == 0.0) continue;
    for (index_t j = 0; j < b.cols; ++j) {
      real_t* col = b.data + j * b.ld;
      const real_t* v = qr.data + t * qr.ld;
      real_t w = col[t];
      for (index_t i = t + 1; i < qr.rows; ++i) w += v[i] * col[i];
      w *= tau[static_cast<size_t>(t)];
      col[t] -= w;
      for (index_t i = t + 1; i < qr.rows; ++i) col[i] -= w * v[i];
    }
  }
}

Matrix form_q(ConstMatrixView qr, const std::vector<real_t>& tau, index_t k) {
  H2S_CHECK(k <= qr.rows, "form_q: too many columns requested");
  Matrix q(qr.rows, k);
  for (index_t j = 0; j < k; ++j) q(j, j) = 1.0;
  apply_q(qr, tau, q.view());
  return q;
}

real_t min_abs_r_diag(ConstMatrixView a) {
  if (a.rows == 0 || a.cols == 0) return 0.0;
  Matrix work = to_matrix(a);
  std::vector<real_t> tau;
  householder_qr(work.view(), tau);
  const index_t kmax = std::min(a.rows, a.cols);
  real_t mn = std::abs(work(0, 0));
  for (index_t i = 1; i < kmax; ++i) mn = std::min(mn, std::abs(work(i, i)));
  return mn;
}

Cpqr cpqr(MatrixView a, std::vector<real_t>& tau, real_t abs_tol, index_t max_rank) {
  const index_t m = a.rows, n = a.cols;
  const index_t kcap = max_rank < 0 ? std::min(m, n) : std::min({m, n, max_rank});
  Cpqr out;
  out.piv.resize(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) out.piv[static_cast<size_t>(j)] = j;
  tau.assign(static_cast<size_t>(std::min(m, n)), 0.0);

  // Column norms, with originals kept for the downdating safeguard.
  std::vector<real_t> cnorm(static_cast<size_t>(n)), corig(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    real_t s = 0.0;
    for (index_t i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    cnorm[static_cast<size_t>(j)] = std::sqrt(s);
    corig[static_cast<size_t>(j)] = cnorm[static_cast<size_t>(j)];
  }

  for (index_t k = 0; k < kcap; ++k) {
    // Pivot: largest remaining column norm.
    index_t jmax = k;
    for (index_t j = k + 1; j < n; ++j)
      if (cnorm[static_cast<size_t>(j)] > cnorm[static_cast<size_t>(jmax)]) jmax = j;
    if (cnorm[static_cast<size_t>(jmax)] <= abs_tol) {
      out.rank = k;
      return out;
    }
    if (jmax != k) {
      for (index_t i = 0; i < m; ++i) std::swap(a(i, k), a(i, jmax));
      std::swap(cnorm[static_cast<size_t>(k)], cnorm[static_cast<size_t>(jmax)]);
      std::swap(corig[static_cast<size_t>(k)], corig[static_cast<size_t>(jmax)]);
      std::swap(out.piv[static_cast<size_t>(k)], out.piv[static_cast<size_t>(jmax)]);
    }
    tau[static_cast<size_t>(k)] = make_reflector(a.data + k + k * a.ld, m - k);
    apply_reflector(a, k, tau[static_cast<size_t>(k)], k + 1);
    // Downdate remaining column norms; recompute on cancellation.
    for (index_t j = k + 1; j < n; ++j) {
      real_t& cn = cnorm[static_cast<size_t>(j)];
      if (cn == 0.0) continue;
      const real_t t = std::abs(a(k, j)) / cn;
      real_t f = std::max(0.0, (1.0 - t) * (1.0 + t));
      const real_t rel = cn / corig[static_cast<size_t>(j)];
      if (f * rel * rel < 1e-14) {
        real_t s = 0.0;
        for (index_t i = k + 1; i < m; ++i) s += a(i, j) * a(i, j);
        cn = std::sqrt(s);
        corig[static_cast<size_t>(j)] = cn;
      } else {
        cn *= std::sqrt(f);
      }
    }
  }
  out.rank = kcap;
  return out;
}

} // namespace h2sketch::la
