#pragma once

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "la/blas.hpp"

/// \file gemm_engine.hpp
/// Cache-blocked, register-tiled GEMM engine (GotoBLAS/BLIS structure).
///
/// The engine packs operand panels into contiguous, zero-padded buffers and
/// runs a fixed MR x NR register microkernel over them, so
///   - the innermost loops are stride-1 and auto-vectorizable regardless of
///     the leading dimensions of the caller's views,
///   - all four transpose combinations are folded into the packing step: the
///     microkernel only ever sees the no-transpose case,
///   - edge tiles are handled by zero padding inside the packed panels, so
///     the kernel itself is branch-free.
///
/// `la::gemm` auto-dispatches between this engine and the retained naive
/// triple-loop kernels (`gemm_naive`): tiny or skinny products — e.g. the
/// sketching-sized n x l multiplies with l ~ rank + oversampling — stay on
/// the naive path where packing overhead would dominate; everything else
/// goes through the blocked path. The batched backend and BSR products
/// inherit the engine through `la::gemm`, matching the paper's CPU design of
/// OpenMP loops around fast single-threaded BLAS.

namespace h2sketch::la {

/// Register-tile footprint of the microkernel: MR rows of C (the vectorized,
/// stride-1 direction) by NR columns. MR*NR accumulators live in registers.
inline constexpr index_t kGemmMR = 4;
inline constexpr index_t kGemmNR = 8;

/// Cache blocking: A panels are MC x KC (packed to L2-resident slivers of MR
/// rows), B panels are KC x NC (streamed through L3/L2 in slivers of NR
/// columns). See README "GEMM engine" for tuning notes.
inline constexpr index_t kGemmMC = 128;
inline constexpr index_t kGemmKC = 256;
inline constexpr index_t kGemmNC = 2048;

/// True when the blocked engine is expected to beat the naive kernels for a
/// C(m x n) += op(A) * op(B) product with inner dimension k. Exposed so the
/// fuzz suite and bench driver can exercise both sides of the cutover.
bool gemm_use_blocked(index_t m, index_t n, index_t k);

/// The retained scalar reference: C = alpha * op(A) * op(B) + beta * C as
/// straight triple loops. This is the kernel the seed repo shipped; it stays
/// as the correctness oracle for the fuzz suite and the baseline for
/// bench_gemm speedup numbers.
void gemm_naive(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, real_t beta,
                MatrixView c);

/// The blocked engine: same contract as `gemm` / `gemm_naive`. Valid for all
/// shapes (including empty); callers normally go through `la::gemm`, which
/// picks the faster path per shape.
void gemm_blocked(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b,
                  real_t beta, MatrixView c);

} // namespace h2sketch::la
