#pragma once

#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file blas.hpp
/// Self-contained dense BLAS-like kernels on column-major views. These are
/// the single-threaded building blocks the batched backend loops over (the
/// paper's CPU path wraps single-threaded BLAS in OpenMP loops; its GPU path
/// calls MAGMA/KBLAS batched equivalents).
///
/// `gemm` auto-dispatches between the cache-blocked, register-tiled engine
/// in gemm_engine.hpp and the retained naive triple-loop reference: large
/// products take the packed path, tiny/skinny (sketching-sized) shapes stay
/// scalar. `trsm_upper_left` and `cholesky_solve` switch to blocked
/// substitution with gemm updates once the system/right-hand-side count is
/// large enough for the engine to win.

namespace h2sketch::la {

/// Transposition selector for gemm/gemv operands.
enum class Op { None, Trans };

/// Dimensions of op(A).
inline index_t op_rows(ConstMatrixView a, Op op) { return op == Op::None ? a.rows : a.cols; }
inline index_t op_cols(ConstMatrixView a, Op op) { return op == Op::None ? a.cols : a.rows; }

/// C = alpha * op(A) * op(B) + beta * C. Dispatches to the blocked engine or
/// the naive reference per shape (see gemm_engine.hpp).
void gemm(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, real_t beta,
          MatrixView c);

/// Same contract as `gemm`, with an opt-in intra-op parallel path: C is
/// tiled into row panels at the engine's MC boundary and column panels at
/// the NC boundary, and the tiles run concurrently on the persistent pool.
/// Because the panel cuts coincide with the serial engine's own blocking,
/// the result is bitwise identical to `gemm` for every thread count. Falls
/// back to the serial dispatch when the product is too small to split, the
/// pool width is 1, or the runtime is in FlatOpenMP baseline mode. Intended
/// for the few monolithic products (dense sampler applications,
/// densification) that a batched launch cannot subdivide.
void gemm_parallel(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b,
                   real_t beta, MatrixView c);

/// y = alpha * op(A) * x + beta * y. Single right-hand side: always the
/// naive kernels (a packed panel would never be reused).
void gemv(real_t alpha, ConstMatrixView a, Op op_a, const_real_span x, real_t beta, real_span y);

/// Solve op(R) * X = B in place for upper-triangular R (unit_diag selects an
/// implicit unit diagonal). B has R.cols rows.
void trsm_upper_left(ConstMatrixView r, Op op_r, MatrixView b, bool unit_diag = false);

/// Solve op(L) * X = B in place for lower-triangular L. B has L.rows rows.
/// Blocked like trsm_upper_left: scalar substitution on kTrsmBlock diagonal
/// blocks, gemm updates in between.
void trsm_lower_left(ConstMatrixView l, Op op_l, MatrixView b, bool unit_diag = false);

/// Solve X * op(L) = B in place for lower-triangular L (the right-side
/// variant the ULV factorization needs for W = D_sz L^{-T}). B has L.rows
/// columns.
void trsm_lower_right(ConstMatrixView l, Op op_l, MatrixView b, bool unit_diag = false);

/// In-place lower Cholesky factorization A = L L^T of an SPD matrix (the
/// strict upper triangle is left untouched). Throws on a non-positive pivot.
/// Large systems run a blocked right-looking sweep (scalar diagonal factor,
/// right-side trsm panel, gemm trailing update); small ones — the batched
/// per-node blocks — stay on the scalar kernel.
void cholesky(MatrixView a);

/// Solve A X = B in place given the Cholesky factor L (lower) of A.
void cholesky_solve(ConstMatrixView l, MatrixView b);

/// Frobenius norm.
real_t norm_f(ConstMatrixView a);

/// Euclidean norm of a vector.
real_t norm2(const_real_span x);

/// Dot product.
real_t dot(const_real_span x, const_real_span y);

/// y += alpha * x.
void axpy(real_t alpha, const_real_span x, real_span y);

/// x *= alpha.
void scale(real_t alpha, real_span x);

} // namespace h2sketch::la
