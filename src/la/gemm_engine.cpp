#include "la/gemm_engine.hpp"

#include <vector>

#include "common/thread_pool.hpp"

namespace h2sketch::la {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define H2S_RESTRICT __restrict__
#else
#define H2S_RESTRICT
#endif

/// C *= beta (beta == 0 clears, beta == 1 is a no-op).
void apply_beta(real_t beta, MatrixView c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    set_all(c, 0.0);
    return;
  }
  for (index_t j = 0; j < c.cols; ++j) {
    real_t* ccol = c.data + j * c.ld;
    for (index_t i = 0; i < c.rows; ++i) ccol[i] *= beta;
  }
}

void check_gemm_shapes(ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, MatrixView c) {
  H2S_CHECK(op_rows(a, op_a) == c.rows && op_cols(b, op_b) == c.cols &&
                op_cols(a, op_a) == op_rows(b, op_b),
            "gemm: shape mismatch (" << op_rows(a, op_a) << "x" << op_cols(a, op_a) << ") * ("
                                     << op_rows(b, op_b) << "x" << op_cols(b, op_b) << ") -> "
                                     << c.rows << "x" << c.cols);
}

// ---------------------------------------------------------------------------
// Naive reference kernels (the seed repo's triple loops, retained verbatim as
// the correctness oracle and small-shape fast path).
// ---------------------------------------------------------------------------

// C += alpha * A * B, all column-major, stride-1 inner loop over rows of C.
void gemm_nn(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t k = 0; k < a.cols; ++k) {
      const real_t bkj = alpha * b(k, j);
      if (bkj == 0.0) continue;
      const real_t* acol = a.data + k * a.ld;
      real_t* ccol = c.data + j * c.ld;
      for (index_t i = 0; i < c.rows; ++i) ccol[i] += acol[i] * bkj;
    }
  }
}

void gemm_tn(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // C(i,j) += alpha * sum_k A(k,i) * B(k,j): dot of two columns, stride-1.
  for (index_t j = 0; j < c.cols; ++j) {
    const real_t* bcol = b.data + j * b.ld;
    for (index_t i = 0; i < c.rows; ++i) {
      const real_t* acol = a.data + i * a.ld;
      real_t s = 0.0;
      for (index_t k = 0; k < a.rows; ++k) s += acol[k] * bcol[k];
      c(i, j) += alpha * s;
    }
  }
}

void gemm_nt(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // C(:,j) += alpha * sum_k A(:,k) * B(j,k)
  for (index_t j = 0; j < c.cols; ++j) {
    real_t* ccol = c.data + j * c.ld;
    for (index_t k = 0; k < a.cols; ++k) {
      const real_t bjk = alpha * b(j, k);
      if (bjk == 0.0) continue;
      const real_t* acol = a.data + k * a.ld;
      for (index_t i = 0; i < c.rows; ++i) ccol[i] += acol[i] * bjk;
    }
  }
}

void gemm_tt(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < c.rows; ++i) {
      const real_t* acol = a.data + i * a.ld;
      real_t s = 0.0;
      for (index_t k = 0; k < a.rows; ++k) s += acol[k] * b(j, k);
      c(i, j) += alpha * s;
    }
  }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// op(A)(i, j): the packing routines fold the transpose here so the
/// microkernel only ever sees packed, no-transpose panels.
inline real_t op_at(ConstMatrixView a, Op op, index_t i, index_t j) {
  return op == Op::None ? a(i, j) : a(j, i);
}

/// Pack the mb x kb block of op(A) starting at (i0, k0) into slivers of
/// kGemmMR rows: sliver p holds, for k = 0..kb-1, the kGemmMR contiguous
/// values op(A)(i0 + p*MR + i, k0 + k), zero-padded past mb. The microkernel
/// then streams each sliver with stride-1 loads.
void pack_a(ConstMatrixView a, Op op, index_t i0, index_t k0, index_t mb, index_t kb,
            real_t* H2S_RESTRICT buf) {
  for (index_t p = 0; p < mb; p += kGemmMR) {
    const index_t mr = std::min(kGemmMR, mb - p);
    if (op == Op::None) {
      const real_t* src = a.data + (i0 + p) + k0 * a.ld;
      for (index_t k = 0; k < kb; ++k) {
        const real_t* col = src + k * a.ld;
        for (index_t i = 0; i < mr; ++i) buf[i] = col[i];
        for (index_t i = mr; i < kGemmMR; ++i) buf[i] = 0.0;
        buf += kGemmMR;
      }
    } else {
      for (index_t k = 0; k < kb; ++k) {
        for (index_t i = 0; i < mr; ++i) buf[i] = a(k0 + k, i0 + p + i);
        for (index_t i = mr; i < kGemmMR; ++i) buf[i] = 0.0;
        buf += kGemmMR;
      }
    }
  }
}

/// Pack the kb x nb block of op(B) starting at (k0, j0) into slivers of
/// kGemmNR columns: sliver q holds, for k = 0..kb-1, the kGemmNR values
/// op(B)(k0 + k, j0 + q*NR + j), zero-padded past nb.
void pack_b(ConstMatrixView b, Op op, index_t k0, index_t j0, index_t kb, index_t nb,
            real_t* H2S_RESTRICT buf) {
  for (index_t q = 0; q < nb; q += kGemmNR) {
    const index_t nr = std::min(kGemmNR, nb - q);
    if (op == Op::Trans) {
      // op(B)(k, j) = B(j, k): rows of the sliver are stride-1 in memory.
      const real_t* src = b.data + (j0 + q) + k0 * b.ld;
      for (index_t k = 0; k < kb; ++k) {
        const real_t* col = src + k * b.ld;
        for (index_t j = 0; j < nr; ++j) buf[j] = col[j];
        for (index_t j = nr; j < kGemmNR; ++j) buf[j] = 0.0;
        buf += kGemmNR;
      }
    } else {
      for (index_t k = 0; k < kb; ++k) {
        for (index_t j = 0; j < nr; ++j) buf[j] = b(k0 + k, j0 + q + j);
        for (index_t j = nr; j < kGemmNR; ++j) buf[j] = 0.0;
        buf += kGemmNR;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Microkernel
// ---------------------------------------------------------------------------

/// acc[j * MR + i] = sum_k ap[k * MR + i] * bp[k * NR + j].
/// Fixed trip counts and restrict-qualified, stride-1 panels let the
/// compiler keep the MR x NR accumulator block in vector registers and
/// vectorize over i (the stride-1 direction of C and the packed A sliver).
///
/// The same source body is compiled three times: for the build's baseline
/// ISA and (on x86-64 GCC/Clang) as AVX2+FMA and AVX-512 clones via target
/// attributes. One function pointer is selected per process at first use
/// with __builtin_cpu_supports, so a generic -O2/-O3 build still runs wide
/// FMA kernels on the machines that have them while remaining portable.
/// Kernel choice is fixed for the process lifetime, which keeps results
/// bitwise reproducible across thread counts and backends within a run.
#define H2S_DEFINE_MICRO_KERNEL(NAME, TARGET_ATTR)                                              \
  TARGET_ATTR void NAME(index_t kb, const real_t* H2S_RESTRICT ap,                              \
                        const real_t* H2S_RESTRICT bp, real_t* H2S_RESTRICT acc) {              \
    real_t c[kGemmMR * kGemmNR] = {};                                                           \
    for (index_t k = 0; k < kb; ++k) {                                                          \
      const real_t* H2S_RESTRICT av = ap + k * kGemmMR;                                         \
      const real_t* H2S_RESTRICT bv = bp + k * kGemmNR;                                         \
      for (index_t j = 0; j < kGemmNR; ++j)                                                     \
        for (index_t i = 0; i < kGemmMR; ++i) c[j * kGemmMR + i] += av[i] * bv[j];              \
    }                                                                                           \
    for (index_t x = 0; x < kGemmMR * kGemmNR; ++x) acc[x] = c[x];                              \
  }

H2S_DEFINE_MICRO_KERNEL(micro_kernel_base, )

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define H2S_HAVE_KERNEL_DISPATCH 1
H2S_DEFINE_MICRO_KERNEL(micro_kernel_avx2, __attribute__((target("avx2,fma"))))
H2S_DEFINE_MICRO_KERNEL(micro_kernel_avx512, __attribute__((target("avx512f,avx512vl"))))
#endif

using MicroKernelFn = void (*)(index_t, const real_t*, const real_t*, real_t*);

MicroKernelFn select_micro_kernel() {
#if defined(H2S_HAVE_KERNEL_DISPATCH)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl"))
    return micro_kernel_avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return micro_kernel_avx2;
#endif
  return micro_kernel_base;
}

MicroKernelFn micro_kernel = select_micro_kernel();

/// C(0:mr, 0:nr) += alpha * acc, where acc is a full MR x NR register tile
/// (zero-padded rows/columns of edge tiles contribute nothing and are simply
/// not written back).
void accumulate_tile(real_t alpha, const real_t* H2S_RESTRICT acc, MatrixView c, index_t r0,
                     index_t c0, index_t mr, index_t nr) {
  for (index_t j = 0; j < nr; ++j) {
    real_t* ccol = c.data + r0 + (c0 + j) * c.ld;
    const real_t* av = acc + j * kGemmMR;
    for (index_t i = 0; i < mr; ++i) ccol[i] += alpha * av[i];
  }
}

} // namespace

bool gemm_use_blocked(index_t m, index_t n, index_t k) {
  // Packing costs O(m*k + k*n) extra traffic plus two buffer allocations;
  // it pays off only when each packed element is reused enough times.
  // Sketching-sized products (tall-thin with n ~ rank + oversampling below
  // one register tile, or tiny k rank updates) stay on the naive kernels.
  if (m < kGemmMR || n < kGemmNR || k < 8) return false;
  return m * n * k >= 32768; // ~32^3: crossover measured by bench_gemm
}

void gemm_naive(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, real_t beta,
                MatrixView c) {
  check_gemm_shapes(a, op_a, b, op_b, c);
  apply_beta(beta, c);
  if (c.rows == 0 || c.cols == 0 || op_cols(a, op_a) == 0 || alpha == 0.0) return;
  if (op_a == Op::None && op_b == Op::None) gemm_nn(alpha, a, b, c);
  else if (op_a == Op::Trans && op_b == Op::None) gemm_tn(alpha, a, b, c);
  else if (op_a == Op::None && op_b == Op::Trans) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

void gemm_blocked(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b,
                  real_t beta, MatrixView c) {
  check_gemm_shapes(a, op_a, b, op_b, c);
  apply_beta(beta, c);
  const index_t m = c.rows, n = c.cols, kk = op_cols(a, op_a);
  if (m == 0 || n == 0 || kk == 0 || alpha == 0.0) return;

  const index_t mc_max = std::min(m, kGemmMC);
  const index_t nc_max = std::min(n, kGemmNC);
  const index_t kc_max = std::min(kk, kGemmKC);
  // Per-call packing buffers, sized to the actual panel extents so products
  // just past the dispatch cutover don't allocate full-MC/NC blocks inside
  // the batched backend's parallel loops.
  std::vector<real_t> a_pack(static_cast<size_t>(((mc_max + kGemmMR - 1) / kGemmMR) * kGemmMR *
                                                 kc_max));
  std::vector<real_t> b_pack(static_cast<size_t>(kc_max * ((nc_max + kGemmNR - 1) / kGemmNR) *
                                                 kGemmNR));
  real_t acc[kGemmMR * kGemmNR];

  for (index_t jc = 0; jc < n; jc += kGemmNC) {
    const index_t nb = std::min(kGemmNC, n - jc);
    for (index_t pc = 0; pc < kk; pc += kGemmKC) {
      const index_t kb = std::min(kGemmKC, kk - pc);
      pack_b(b, op_b, pc, jc, kb, nb, b_pack.data());
      for (index_t ic = 0; ic < m; ic += kGemmMC) {
        const index_t mb = std::min(kGemmMC, m - ic);
        pack_a(a, op_a, ic, pc, mb, kb, a_pack.data());
        for (index_t jr = 0; jr < nb; jr += kGemmNR) {
          const index_t nr = std::min(kGemmNR, nb - jr);
          const real_t* bp = b_pack.data() + (jr / kGemmNR) * kb * kGemmNR;
          for (index_t ir = 0; ir < mb; ir += kGemmMR) {
            const index_t mr = std::min(kGemmMR, mb - ir);
            const real_t* ap = a_pack.data() + (ir / kGemmMR) * kb * kGemmMR;
            micro_kernel(kb, ap, bp, acc);
            accumulate_tile(alpha, acc, c, ic + ir, jc + jr, mr, nr);
          }
        }
      }
    }
  }
}

void gemm_parallel(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b,
                   real_t beta, MatrixView c) {
  const index_t m = c.rows, n = c.cols, kk = op_cols(a, op_a);
  ThreadPool& pool = ThreadPool::global();
  const index_t row_panels = (m + kGemmMC - 1) / kGemmMC;
  const index_t col_panels = (n + kGemmNC - 1) / kGemmNC;
  if (runtime_mode() == RuntimeMode::FlatOpenMP || pool.width() <= 1 ||
      !gemm_use_blocked(m, n, kk) || row_panels * col_panels <= 1) {
    gemm(alpha, a, op_a, b, op_b, beta, c);
    return;
  }
  // Tile grid aligned with the serial engine's (ic, jc) blocking: tile
  // (rp, cp) covers C(rp*MC .., cp*NC ..). Each tile runs the full pc loop
  // itself, so its accumulation order — and therefore every bit of C — is
  // exactly the serial engine's. Boundaries depend only on (m, n).
  pool.parallel_for(row_panels * col_panels, [&](index_t t) {
    const index_t rp = t % row_panels, cp = t / row_panels;
    const index_t r0 = rp * kGemmMC, mb = std::min(kGemmMC, m - r0);
    const index_t c0 = cp * kGemmNC, nb = std::min(kGemmNC, n - c0);
    const ConstMatrixView ap =
        op_a == Op::None ? a.block(r0, 0, mb, a.cols) : a.block(0, r0, a.rows, mb);
    const ConstMatrixView bp =
        op_b == Op::None ? b.block(0, c0, b.rows, nb) : b.block(c0, 0, nb, b.cols);
    gemm_blocked(alpha, ap, op_a, bp, op_b, beta, c.block(r0, c0, mb, nb));
  });
}

} // namespace h2sketch::la
