#include "la/blas.hpp"

#include <cmath>

#include "la/gemm_engine.hpp"

namespace h2sketch::la {

namespace {

/// Column-block width for the blocked triangular solves and the threshold at
/// which they take over from the scalar substitution loops: below that, the
/// gemm updates are too small for the engine to win.
constexpr index_t kTrsmBlock = 32;

bool use_blocked_solve(index_t n, index_t nrhs) { return n > 2 * kTrsmBlock && nrhs >= 4; }

/// Scalar back/forward substitution for op(R) X = B with upper-triangular R.
/// Used standalone for small systems and as the diagonal-block solver of the
/// blocked path.
void trsm_upper_scalar(ConstMatrixView r, Op op_r, MatrixView b, bool unit_diag) {
  const index_t n = r.rows;
  if (op_r == Op::None) {
    // Back substitution: solve R X = B.
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = n - 1; i >= 0; --i) {
        real_t s = b(i, j);
        for (index_t k = i + 1; k < n; ++k) s -= r(i, k) * b(k, j);
        b(i, j) = unit_diag ? s : s / r(i, i);
      }
    }
  } else {
    // Forward substitution: solve R^T X = B.
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = 0; i < n; ++i) {
        real_t s = b(i, j);
        for (index_t k = 0; k < i; ++k) s -= r(k, i) * b(k, j);
        b(i, j) = unit_diag ? s : s / r(i, i);
      }
    }
  }
}

/// Scalar forward substitution L Z = B for lower-triangular L.
void lower_solve_scalar(ConstMatrixView l, MatrixView b) {
  const index_t n = l.rows;
  for (index_t j = 0; j < b.cols; ++j) {
    for (index_t i = 0; i < n; ++i) {
      real_t s = b(i, j);
      for (index_t p = 0; p < i; ++p) s -= l(i, p) * b(p, j);
      b(i, j) = s / l(i, i);
    }
  }
}

/// Scalar back substitution L^T X = B for lower-triangular L.
void lower_trans_solve_scalar(ConstMatrixView l, MatrixView b) {
  const index_t n = l.rows;
  for (index_t j = 0; j < b.cols; ++j) {
    for (index_t i = n - 1; i >= 0; --i) {
      real_t s = b(i, j);
      for (index_t p = i + 1; p < n; ++p) s -= l(p, i) * b(p, j);
      b(i, j) = s / l(i, i);
    }
  }
}

} // namespace

void gemm(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, real_t beta,
          MatrixView c) {
  // Auto-dispatch: the blocked pack-and-compute engine for large products,
  // the retained naive kernels for tiny/skinny shapes (both implement the
  // full alpha/beta contract; see gemm_engine.hpp).
  if (gemm_use_blocked(c.rows, c.cols, op_cols(a, op_a)))
    gemm_blocked(alpha, a, op_a, b, op_b, beta, c);
  else
    gemm_naive(alpha, a, op_a, b, op_b, beta, c);
}

void gemv(real_t alpha, ConstMatrixView a, Op op_a, const_real_span x, real_t beta, real_span y) {
  const index_t m = op_rows(a, op_a);
  const index_t n = op_cols(a, op_a);
  H2S_CHECK(static_cast<index_t>(x.size()) == n && static_cast<index_t>(y.size()) == m,
            "gemv: shape mismatch");
  // A single right-hand side never reuses a packed panel, so the blocked
  // engine cannot win here; go straight to the naive kernels.
  ConstMatrixView xv(x.data(), n, 1, n == 0 ? 1 : n);
  MatrixView yv(y.data(), m, 1, m == 0 ? 1 : m);
  gemm_naive(alpha, a, op_a, xv, Op::None, beta, yv);
}

void trsm_upper_left(ConstMatrixView r, Op op_r, MatrixView b, bool unit_diag) {
  const index_t n = r.rows;
  H2S_CHECK(r.rows == r.cols && b.rows == n, "trsm: shape mismatch");
  if (n == 0 || b.cols == 0) return;
  if (!use_blocked_solve(n, b.cols)) {
    trsm_upper_scalar(r, op_r, b, unit_diag);
    return;
  }
  // Blocked substitution: scalar-solve a kTrsmBlock diagonal block, then
  // push its contribution into the remaining rows with a gemm the engine can
  // accelerate.
  if (op_r == Op::None) {
    for (index_t i1 = n; i1 > 0;) {
      const index_t nb = std::min(kTrsmBlock, i1);
      const index_t i0 = i1 - nb;
      if (i1 < n)
        gemm(-1.0, r.block(i0, i1, nb, n - i1), Op::None, b.row_range(i1, n - i1), Op::None, 1.0,
             b.row_range(i0, nb));
      trsm_upper_scalar(r.block(i0, i0, nb, nb), Op::None, b.row_range(i0, nb), unit_diag);
      i1 = i0;
    }
  } else {
    for (index_t i0 = 0; i0 < n; i0 += kTrsmBlock) {
      const index_t nb = std::min(kTrsmBlock, n - i0);
      if (i0 > 0)
        gemm(-1.0, r.block(0, i0, i0, nb), Op::Trans, b.row_range(0, i0), Op::None, 1.0,
             b.row_range(i0, nb));
      trsm_upper_scalar(r.block(i0, i0, nb, nb), Op::Trans, b.row_range(i0, nb), unit_diag);
    }
  }
}

void cholesky(MatrixView a) {
  const index_t n = a.rows;
  H2S_CHECK(a.rows == a.cols, "cholesky: square matrix required");
  for (index_t k = 0; k < n; ++k) {
    real_t d = a(k, k);
    for (index_t p = 0; p < k; ++p) d -= a(k, p) * a(k, p);
    H2S_CHECK(d > 0.0, "cholesky: non-positive pivot at " << k);
    d = std::sqrt(d);
    a(k, k) = d;
    for (index_t i = k + 1; i < n; ++i) {
      real_t s = a(i, k);
      for (index_t p = 0; p < k; ++p) s -= a(i, p) * a(k, p);
      a(i, k) = s / d;
    }
  }
}

void cholesky_solve(ConstMatrixView l, MatrixView b) {
  const index_t n = l.rows;
  H2S_CHECK(l.rows == l.cols && b.rows == n, "cholesky_solve: shape mismatch");
  if (n == 0 || b.cols == 0) return;
  if (!use_blocked_solve(n, b.cols)) {
    lower_solve_scalar(l, b);
    lower_trans_solve_scalar(l, b);
    return;
  }
  // Forward sweep L Z = B, top-down with gemm updates from solved blocks.
  for (index_t i0 = 0; i0 < n; i0 += kTrsmBlock) {
    const index_t nb = std::min(kTrsmBlock, n - i0);
    if (i0 > 0)
      gemm(-1.0, l.block(i0, 0, nb, i0), Op::None, b.row_range(0, i0), Op::None, 1.0,
           b.row_range(i0, nb));
    lower_solve_scalar(l.block(i0, i0, nb, nb), b.row_range(i0, nb));
  }
  // Backward sweep L^T X = Z, bottom-up.
  for (index_t i1 = n; i1 > 0;) {
    const index_t nb = std::min(kTrsmBlock, i1);
    const index_t i0 = i1 - nb;
    if (i1 < n)
      gemm(-1.0, l.block(i1, i0, n - i1, nb), Op::Trans, b.row_range(i1, n - i1), Op::None, 1.0,
           b.row_range(i0, nb));
    lower_trans_solve_scalar(l.block(i0, i0, nb, nb), b.row_range(i0, nb));
    i1 = i0;
  }
}

real_t norm_f(ConstMatrixView a) {
  real_t s = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

real_t norm2(const_real_span x) {
  real_t s = 0.0;
  for (real_t v : x) s += v * v;
  return std::sqrt(s);
}

real_t dot(const_real_span x, const_real_span y) {
  H2S_CHECK(x.size() == y.size(), "dot: size mismatch");
  real_t s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(real_t alpha, const_real_span x, real_span y) {
  H2S_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(real_t alpha, real_span x) {
  for (real_t& v : x) v *= alpha;
}

} // namespace h2sketch::la
