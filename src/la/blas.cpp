#include "la/blas.hpp"

#include <cmath>

namespace h2sketch::la {

namespace {

// C += alpha * A * B, all column-major, stride-1 inner loop over rows of C.
void gemm_nn(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t k = 0; k < a.cols; ++k) {
      const real_t bkj = alpha * b(k, j);
      if (bkj == 0.0) continue;
      const real_t* acol = a.data + k * a.ld;
      real_t* ccol = c.data + j * c.ld;
      for (index_t i = 0; i < c.rows; ++i) ccol[i] += acol[i] * bkj;
    }
  }
}

void gemm_tn(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // C(i,j) += alpha * sum_k A(k,i) * B(k,j): dot of two columns, stride-1.
  for (index_t j = 0; j < c.cols; ++j) {
    const real_t* bcol = b.data + j * b.ld;
    for (index_t i = 0; i < c.rows; ++i) {
      const real_t* acol = a.data + i * a.ld;
      real_t s = 0.0;
      for (index_t k = 0; k < a.rows; ++k) s += acol[k] * bcol[k];
      c(i, j) += alpha * s;
    }
  }
}

void gemm_nt(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  // C(:,j) += alpha * sum_k A(:,k) * B(j,k)
  for (index_t j = 0; j < c.cols; ++j) {
    real_t* ccol = c.data + j * c.ld;
    for (index_t k = 0; k < a.cols; ++k) {
      const real_t bjk = alpha * b(j, k);
      if (bjk == 0.0) continue;
      const real_t* acol = a.data + k * a.ld;
      for (index_t i = 0; i < c.rows; ++i) ccol[i] += acol[i] * bjk;
    }
  }
}

void gemm_tt(real_t alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < c.rows; ++i) {
      const real_t* acol = a.data + i * a.ld;
      real_t s = 0.0;
      for (index_t k = 0; k < a.rows; ++k) s += acol[k] * b(j, k);
      c(i, j) += alpha * s;
    }
  }
}

} // namespace

void gemm(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, real_t beta,
          MatrixView c) {
  H2S_CHECK(op_rows(a, op_a) == c.rows && op_cols(b, op_b) == c.cols &&
                op_cols(a, op_a) == op_rows(b, op_b),
            "gemm: shape mismatch (" << op_rows(a, op_a) << "x" << op_cols(a, op_a) << ") * ("
                                     << op_rows(b, op_b) << "x" << op_cols(b, op_b) << ") -> "
                                     << c.rows << "x" << c.cols);
  if (beta == 0.0) {
    set_all(c, 0.0);
  } else if (beta != 1.0) {
    for (index_t j = 0; j < c.cols; ++j)
      for (index_t i = 0; i < c.rows; ++i) c(i, j) *= beta;
  }
  if (c.rows == 0 || c.cols == 0 || op_cols(a, op_a) == 0 || alpha == 0.0) return;
  if (op_a == Op::None && op_b == Op::None) gemm_nn(alpha, a, b, c);
  else if (op_a == Op::Trans && op_b == Op::None) gemm_tn(alpha, a, b, c);
  else if (op_a == Op::None && op_b == Op::Trans) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

void gemv(real_t alpha, ConstMatrixView a, Op op_a, const_real_span x, real_t beta, real_span y) {
  const index_t m = op_rows(a, op_a);
  const index_t n = op_cols(a, op_a);
  H2S_CHECK(static_cast<index_t>(x.size()) == n && static_cast<index_t>(y.size()) == m,
            "gemv: shape mismatch");
  ConstMatrixView xv(x.data(), n, 1, n == 0 ? 1 : n);
  MatrixView yv(y.data(), m, 1, m == 0 ? 1 : m);
  gemm(alpha, a, op_a, xv, Op::None, beta, yv);
}

void trsm_upper_left(ConstMatrixView r, Op op_r, MatrixView b, bool unit_diag) {
  const index_t n = r.rows;
  H2S_CHECK(r.rows == r.cols && b.rows == n, "trsm: shape mismatch");
  if (op_r == Op::None) {
    // Back substitution: solve R X = B.
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = n - 1; i >= 0; --i) {
        real_t s = b(i, j);
        for (index_t k = i + 1; k < n; ++k) s -= r(i, k) * b(k, j);
        b(i, j) = unit_diag ? s : s / r(i, i);
      }
    }
  } else {
    // Forward substitution: solve R^T X = B.
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = 0; i < n; ++i) {
        real_t s = b(i, j);
        for (index_t k = 0; k < i; ++k) s -= r(k, i) * b(k, j);
        b(i, j) = unit_diag ? s : s / r(i, i);
      }
    }
  }
}

void cholesky(MatrixView a) {
  const index_t n = a.rows;
  H2S_CHECK(a.rows == a.cols, "cholesky: square matrix required");
  for (index_t k = 0; k < n; ++k) {
    real_t d = a(k, k);
    for (index_t p = 0; p < k; ++p) d -= a(k, p) * a(k, p);
    H2S_CHECK(d > 0.0, "cholesky: non-positive pivot at " << k);
    d = std::sqrt(d);
    a(k, k) = d;
    for (index_t i = k + 1; i < n; ++i) {
      real_t s = a(i, k);
      for (index_t p = 0; p < k; ++p) s -= a(i, p) * a(k, p);
      a(i, k) = s / d;
    }
  }
}

void cholesky_solve(ConstMatrixView l, MatrixView b) {
  const index_t n = l.rows;
  H2S_CHECK(l.rows == l.cols && b.rows == n, "cholesky_solve: shape mismatch");
  // Forward: L z = b.
  for (index_t j = 0; j < b.cols; ++j) {
    for (index_t i = 0; i < n; ++i) {
      real_t s = b(i, j);
      for (index_t p = 0; p < i; ++p) s -= l(i, p) * b(p, j);
      b(i, j) = s / l(i, i);
    }
    // Backward: L^T x = z.
    for (index_t i = n - 1; i >= 0; --i) {
      real_t s = b(i, j);
      for (index_t p = i + 1; p < n; ++p) s -= l(p, i) * b(p, j);
      b(i, j) = s / l(i, i);
    }
  }
}

real_t norm_f(ConstMatrixView a) {
  real_t s = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

real_t norm2(const_real_span x) {
  real_t s = 0.0;
  for (real_t v : x) s += v * v;
  return std::sqrt(s);
}

real_t dot(const_real_span x, const_real_span y) {
  H2S_CHECK(x.size() == y.size(), "dot: size mismatch");
  real_t s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(real_t alpha, const_real_span x, real_span y) {
  H2S_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(real_t alpha, real_span x) {
  for (real_t& v : x) v *= alpha;
}

} // namespace h2sketch::la
