#include "la/blas.hpp"

#include <cmath>
#include <string>

#include "common/errors.hpp"

#include "la/gemm_engine.hpp"

namespace h2sketch::la {

namespace {

/// Column-block width for the blocked triangular solves and the threshold at
/// which they take over from the scalar substitution loops: below that, the
/// gemm updates are too small for the engine to win.
constexpr index_t kTrsmBlock = 32;

bool use_blocked_solve(index_t n, index_t nrhs) { return n > 2 * kTrsmBlock && nrhs >= 4; }

/// Scalar back/forward substitution for op(R) X = B with upper-triangular R.
/// Used standalone for small systems and as the diagonal-block solver of the
/// blocked path.
void trsm_upper_scalar(ConstMatrixView r, Op op_r, MatrixView b, bool unit_diag) {
  const index_t n = r.rows;
  if (op_r == Op::None) {
    // Back substitution: solve R X = B.
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = n - 1; i >= 0; --i) {
        real_t s = b(i, j);
        for (index_t k = i + 1; k < n; ++k) s -= r(i, k) * b(k, j);
        b(i, j) = unit_diag ? s : s / r(i, i);
      }
    }
  } else {
    // Forward substitution: solve R^T X = B.
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = 0; i < n; ++i) {
        real_t s = b(i, j);
        for (index_t k = 0; k < i; ++k) s -= r(k, i) * b(k, j);
        b(i, j) = unit_diag ? s : s / r(i, i);
      }
    }
  }
}

/// Scalar substitution for op(L) X = B with lower-triangular L and the
/// unit-diagonal option (the general form behind trsm_lower_left).
void trsm_lower_scalar(ConstMatrixView l, Op op_l, MatrixView b, bool unit_diag) {
  const index_t n = l.rows;
  if (op_l == Op::None) {
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = 0; i < n; ++i) {
        real_t s = b(i, j);
        for (index_t p = 0; p < i; ++p) s -= l(i, p) * b(p, j);
        b(i, j) = unit_diag ? s : s / l(i, i);
      }
    }
  } else {
    for (index_t j = 0; j < b.cols; ++j) {
      for (index_t i = n - 1; i >= 0; --i) {
        real_t s = b(i, j);
        for (index_t p = i + 1; p < n; ++p) s -= l(p, i) * b(p, j);
        b(i, j) = unit_diag ? s : s / l(i, i);
      }
    }
  }
}

/// Scalar substitution for X op(L) = B (right-side solve; B is m x n, L n x n).
void trsm_lower_right_scalar(ConstMatrixView l, Op op_l, MatrixView b, bool unit_diag) {
  const index_t n = l.rows;
  const index_t m = b.rows;
  if (op_l == Op::None) {
    // X L = B: column i of X depends on the already-solved columns > i.
    for (index_t i = n - 1; i >= 0; --i) {
      for (index_t r = 0; r < m; ++r) {
        real_t s = b(r, i);
        for (index_t k = i + 1; k < n; ++k) s -= b(r, k) * l(k, i);
        b(r, i) = unit_diag ? s : s / l(i, i);
      }
    }
  } else {
    // X L^T = B: L^T is upper triangular, solve columns left to right.
    for (index_t i = 0; i < n; ++i) {
      for (index_t r = 0; r < m; ++r) {
        real_t s = b(r, i);
        for (index_t k = 0; k < i; ++k) s -= b(r, k) * l(i, k);
        b(r, i) = unit_diag ? s : s / l(i, i);
      }
    }
  }
}

} // namespace

void gemm(real_t alpha, ConstMatrixView a, Op op_a, ConstMatrixView b, Op op_b, real_t beta,
          MatrixView c) {
  // Auto-dispatch: the blocked pack-and-compute engine for large products,
  // the retained naive kernels for tiny/skinny shapes (both implement the
  // full alpha/beta contract; see gemm_engine.hpp).
  if (gemm_use_blocked(c.rows, c.cols, op_cols(a, op_a)))
    gemm_blocked(alpha, a, op_a, b, op_b, beta, c);
  else
    gemm_naive(alpha, a, op_a, b, op_b, beta, c);
}

void gemv(real_t alpha, ConstMatrixView a, Op op_a, const_real_span x, real_t beta, real_span y) {
  const index_t m = op_rows(a, op_a);
  const index_t n = op_cols(a, op_a);
  H2S_CHECK(static_cast<index_t>(x.size()) == n && static_cast<index_t>(y.size()) == m,
            "gemv: shape mismatch");
  // A single right-hand side never reuses a packed panel, so the blocked
  // engine cannot win here; go straight to the naive kernels.
  ConstMatrixView xv(x.data(), n, 1, n == 0 ? 1 : n);
  MatrixView yv(y.data(), m, 1, m == 0 ? 1 : m);
  gemm_naive(alpha, a, op_a, xv, Op::None, beta, yv);
}

void trsm_upper_left(ConstMatrixView r, Op op_r, MatrixView b, bool unit_diag) {
  const index_t n = r.rows;
  H2S_CHECK(r.rows == r.cols && b.rows == n, "trsm: shape mismatch");
  if (n == 0 || b.cols == 0) return;
  if (!use_blocked_solve(n, b.cols)) {
    trsm_upper_scalar(r, op_r, b, unit_diag);
    return;
  }
  // Blocked substitution: scalar-solve a kTrsmBlock diagonal block, then
  // push its contribution into the remaining rows with a gemm the engine can
  // accelerate.
  if (op_r == Op::None) {
    for (index_t i1 = n; i1 > 0;) {
      const index_t nb = std::min(kTrsmBlock, i1);
      const index_t i0 = i1 - nb;
      if (i1 < n)
        gemm(-1.0, r.block(i0, i1, nb, n - i1), Op::None, b.row_range(i1, n - i1), Op::None, 1.0,
             b.row_range(i0, nb));
      trsm_upper_scalar(r.block(i0, i0, nb, nb), Op::None, b.row_range(i0, nb), unit_diag);
      i1 = i0;
    }
  } else {
    for (index_t i0 = 0; i0 < n; i0 += kTrsmBlock) {
      const index_t nb = std::min(kTrsmBlock, n - i0);
      if (i0 > 0)
        gemm(-1.0, r.block(0, i0, i0, nb), Op::Trans, b.row_range(0, i0), Op::None, 1.0,
             b.row_range(i0, nb));
      trsm_upper_scalar(r.block(i0, i0, nb, nb), Op::Trans, b.row_range(i0, nb), unit_diag);
    }
  }
}

void trsm_lower_left(ConstMatrixView l, Op op_l, MatrixView b, bool unit_diag) {
  const index_t n = l.rows;
  H2S_CHECK(l.rows == l.cols && b.rows == n, "trsm_lower_left: shape mismatch");
  if (n == 0 || b.cols == 0) return;
  if (!use_blocked_solve(n, b.cols)) {
    trsm_lower_scalar(l, op_l, b, unit_diag);
    return;
  }
  if (op_l == Op::None) {
    // Forward: solve a diagonal block, push it into the rows below.
    for (index_t i0 = 0; i0 < n; i0 += kTrsmBlock) {
      const index_t nb = std::min(kTrsmBlock, n - i0);
      if (i0 > 0)
        gemm(-1.0, l.block(i0, 0, nb, i0), Op::None, b.row_range(0, i0), Op::None, 1.0,
             b.row_range(i0, nb));
      trsm_lower_scalar(l.block(i0, i0, nb, nb), Op::None, b.row_range(i0, nb), unit_diag);
    }
  } else {
    // Backward: L^T is upper triangular, sweep bottom-up.
    for (index_t i1 = n; i1 > 0;) {
      const index_t nb = std::min(kTrsmBlock, i1);
      const index_t i0 = i1 - nb;
      if (i1 < n)
        gemm(-1.0, l.block(i1, i0, n - i1, nb), Op::Trans, b.row_range(i1, n - i1), Op::None, 1.0,
             b.row_range(i0, nb));
      trsm_lower_scalar(l.block(i0, i0, nb, nb), Op::Trans, b.row_range(i0, nb), unit_diag);
      i1 = i0;
    }
  }
}

void trsm_lower_right(ConstMatrixView l, Op op_l, MatrixView b, bool unit_diag) {
  const index_t n = l.rows;
  H2S_CHECK(l.rows == l.cols && b.cols == n, "trsm_lower_right: shape mismatch");
  if (n == 0 || b.rows == 0) return;
  // The "right-hand-side count" of the right-side solve is the row count.
  if (!use_blocked_solve(n, b.rows)) {
    trsm_lower_right_scalar(l, op_l, b, unit_diag);
    return;
  }
  if (op_l == Op::None) {
    // X L = B: solve column blocks right to left, then update the columns to
    // the left with the sub-diagonal panel of L.
    for (index_t j1 = n; j1 > 0;) {
      const index_t nb = std::min(kTrsmBlock, j1);
      const index_t j0 = j1 - nb;
      trsm_lower_right_scalar(l.block(j0, j0, nb, nb), Op::None, b.col_range(j0, nb), unit_diag);
      if (j0 > 0)
        gemm(-1.0, b.col_range(j0, nb), Op::None, l.block(j0, 0, nb, j0), Op::None, 1.0,
             b.col_range(0, j0));
      j1 = j0;
    }
  } else {
    // X L^T = B: L^T is upper triangular, solve column blocks left to right.
    for (index_t j0 = 0; j0 < n; j0 += kTrsmBlock) {
      const index_t nb = std::min(kTrsmBlock, n - j0);
      if (j0 > 0)
        gemm(-1.0, b.col_range(0, j0), Op::None, l.block(j0, 0, nb, j0), Op::Trans, 1.0,
             b.col_range(j0, nb));
      trsm_lower_right_scalar(l.block(j0, j0, nb, nb), Op::Trans, b.col_range(j0, nb), unit_diag);
    }
  }
}

namespace {

/// Scalar left-looking Cholesky (the original kernel): diagonal blocks of
/// the blocked path and whole small matrices.
void cholesky_scalar(MatrixView a) {
  const index_t n = a.rows;
  for (index_t k = 0; k < n; ++k) {
    real_t d = a(k, k);
    for (index_t p = 0; p < k; ++p) d -= a(k, p) * a(k, p);
    // Typed failure: callers (ulv_factor's ridge retry, the operator
    // cache) must be able to tell "not numerically SPD" from operational
    // errors — NumericalError is the non-retryable branch of the taxonomy.
    if (!(d > 0.0))
      throw NumericalError("cholesky: non-positive pivot at column " + std::to_string(k) +
                           " (matrix is not numerically SPD)");
    d = std::sqrt(d);
    a(k, k) = d;
    for (index_t i = k + 1; i < n; ++i) {
      real_t s = a(i, k);
      for (index_t p = 0; p < k; ++p) s -= a(i, p) * a(k, p);
      a(i, k) = s / d;
    }
  }
}

} // namespace

void cholesky(MatrixView a) {
  const index_t n = a.rows;
  H2S_CHECK(a.rows == a.cols, "cholesky: square matrix required");
  // Small systems (the batched per-node blocks) stay on the scalar kernel;
  // large ones go blocked so the O(n^3) is spent in the gemm engine:
  // right-looking with a scalar diagonal factor, a right-side trsm for the
  // panel and a gemm trailing update on the lower triangle.
  constexpr index_t kCholBlock = 128;
  if (n <= 2 * kCholBlock) {
    cholesky_scalar(a);
    return;
  }
  for (index_t k0 = 0; k0 < n; k0 += kCholBlock) {
    const index_t nb = std::min(kCholBlock, n - k0);
    cholesky_scalar(a.block(k0, k0, nb, nb));
    const index_t rest = n - k0 - nb;
    if (rest == 0) continue;
    // Panel: L21 L11^T = A21.
    trsm_lower_right(a.block(k0, k0, nb, nb), Op::Trans, a.block(k0 + nb, k0, rest, nb));
    // Trailing update A22 -= L21 L21^T, lower triangle only: per column
    // strip, a scalar rank-nb update on the diagonal block (preserving the
    // untouched-upper contract) and one tall gemm for the rows below it.
    for (index_t j0 = 0; j0 < rest; j0 += kCholBlock) {
      const index_t jb = std::min(kCholBlock, rest - j0);
      ConstMatrixView lj(a.block(k0 + nb + j0, k0, jb, nb));
      MatrixView d = a.block(k0 + nb + j0, k0 + nb + j0, jb, jb);
      for (index_t j = 0; j < jb; ++j)
        for (index_t i = j; i < jb; ++i) {
          real_t s = 0.0;
          for (index_t p = 0; p < nb; ++p) s += lj(i, p) * lj(j, p);
          d(i, j) -= s;
        }
      const index_t below = rest - j0 - jb;
      if (below > 0)
        gemm(-1.0, a.block(k0 + nb + j0 + jb, k0, below, nb), Op::None, lj, Op::Trans, 1.0,
             a.block(k0 + nb + j0 + jb, k0 + nb + j0, below, jb));
    }
  }
}

void cholesky_solve(ConstMatrixView l, MatrixView b) {
  H2S_CHECK(l.rows == l.cols && b.rows == l.rows, "cholesky_solve: shape mismatch");
  // Forward sweep L Z = B, backward sweep L^T X = Z; both inherit the
  // blocked-vs-scalar dispatch from trsm_lower_left.
  trsm_lower_left(l, Op::None, b);
  trsm_lower_left(l, Op::Trans, b);
}

real_t norm_f(ConstMatrixView a) {
  real_t s = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

real_t norm2(const_real_span x) {
  real_t s = 0.0;
  for (real_t v : x) s += v * v;
  return std::sqrt(s);
}

real_t dot(const_real_span x, const_real_span y) {
  H2S_CHECK(x.size() == y.size(), "dot: size mismatch");
  real_t s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(real_t alpha, const_real_span x, real_span y) {
  H2S_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(real_t alpha, real_span x) {
  for (real_t& v : x) v *= alpha;
}

} // namespace h2sketch::la
