#pragma once

#include "h2/h2_matrix.hpp"

/// \file h2_dense.hpp
/// Densification of an H2 matrix (small problems only; tests and error
/// oracles). Expands the nested bases level by level and accumulates
/// U_s B_{s,t} U_t^T over every admissible block plus the dense leaves.

namespace h2sketch::h2 {

/// Full dense representation in permuted position space. O(N^2) memory.
Matrix densify(const H2Matrix& a);

/// Expanded (non-nested) basis U_tau for one node: cluster_size x rank.
Matrix expand_basis(const H2Matrix& a, index_t level, index_t node);

} // namespace h2sketch::h2
