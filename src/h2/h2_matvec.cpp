#include "h2/h2_matvec.hpp"

#include "batched/batched_gemm.hpp"
#include "batched/bsr_gemm.hpp"

namespace h2sketch::h2 {

namespace {

using batched::StreamId;

/// Streams of the matvec pipeline: the whole upward/coupling/downward
/// low-rank chain runs FIFO on the sample stream while the dense near-field
/// product — typically the largest single launch — runs concurrently on the
/// basis stream; per-level coupling products, independent of each other,
/// fan out over the remaining streams.
constexpr StreamId kLowRank = batched::kSampleStream;
constexpr StreamId kNearField = batched::kBasisStream;
constexpr StreamId kCouplingSpill[] = {batched::kEntryGenStream, batched::kAuxStream};

} // namespace

void h2_matvec(batched::ExecutionContext& ctx, const H2Matrix& a, ConstMatrixView x,
               MatrixView y) {
  const index_t n = a.size();
  const index_t d = x.cols;
  H2S_CHECK(x.rows == n && y.rows == n && y.cols == d, "h2_matvec: shape mismatch");
  const tree::ClusterTree& t = *a.tree;
  const index_t levels = t.num_levels();
  const index_t leaf = t.leaf_level();

  backend::DeviceBackend& dev = ctx.device();
  // The operator's arenas are device-resident: a context on a foreign
  // device heap must be rejected instead of dereferencing poisoned pages.
  if (auto own = a.storage_backend())
    H2S_CHECK(own->memory_owner() == dev.memory_owner(),
              "h2_matvec: context device does not own this matrix's device arenas (built on "
                  << own->name() << ", applied on " << dev.name() << ")");

  // Marshal into device memory: the input/output panels and every per-level
  // coefficient block come from one arena reservation (one backing
  // allocation per matvec, the paper's prefix-sum pattern), sized up front.
  Workspace& ws = ctx.workspace();
  ws.reset();
  {
    std::size_t total = 2 * Workspace::panel_bytes(n, d) + 64;
    for (index_t l = 0; l < levels; ++l)
      for (index_t i = 0; i < t.nodes_at(l); ++i)
        total += 2 * Workspace::panel_bytes(a.rank(l, i), d);
    ws.reserve_bytes(total);
  }

  // x is uploaded across the boundary once; y accumulates device-side in yd
  // and is downloaded after the final barrier.
  MatrixView xd = ws.panel(n, d);
  MatrixView yd = ws.panel(n, d);

  // Per-level coefficient blocks xhat/yhat (rank x d per node); they (and
  // yd) must start zeroed — the beta = 0 "skip" entries of the rank-0
  // launches rely on it.
  std::vector<std::vector<MatrixView>> xhat(static_cast<size_t>(levels)),
      yhat(static_cast<size_t>(levels));
  for (index_t l = 0; l < levels; ++l) {
    const index_t nodes = t.nodes_at(l);
    xhat[static_cast<size_t>(l)].resize(static_cast<size_t>(nodes));
    yhat[static_cast<size_t>(l)].resize(static_cast<size_t>(nodes));
    for (index_t i = 0; i < nodes; ++i) {
      xhat[static_cast<size_t>(l)][static_cast<size_t>(i)] = ws.panel(a.rank(l, i), d);
      yhat[static_cast<size_t>(l)][static_cast<size_t>(i)] = ws.panel(a.rank(l, i), d);
    }
  }
  // One bulk zero fill from yd through the last coefficient panel (one
  // kernel scope and one memset instead of two per node); xd sits before
  // the span and is filled by the upload instead.
  const auto skip = static_cast<std::size_t>(reinterpret_cast<std::byte*>(yd.data) -
                                             static_cast<std::byte*>(ws.arena_data()));
  dev.fill_zero(yd.data, ws.used_bytes() - skip);
  dev.upload(x, xd);

  // Dense near field: yd(I_tau, :) += D_{tau,b} xd(I_b, :). Issued first, on
  // its own stream: it reads only xd and writes only yd, so it overlaps the
  // entire low-rank pipeline and is joined right before the leaf expansion
  // (the only other writer of yd).
  {
    const auto& near = a.mtree.near_leaf;
    if (!near.empty()) {
      std::vector<ConstMatrixView> blocks, xv;
      std::vector<MatrixView> yv;
      for (index_t e = 0; e < a.dense.count(); ++e) blocks.push_back(a.dense.dev(e));
      for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
        xv.push_back(xd.row_range(t.begin(leaf, i), t.size(leaf, i)));
        yv.push_back(yd.row_range(t.begin(leaf, i), t.size(leaf, i)));
      }
      batched::bsr_gemm(ctx, kNearField, 1.0, {near.row_ptr.begin(), near.row_ptr.end()},
                        {near.col.begin(), near.col.end()}, std::move(blocks), std::move(xv),
                        std::move(yv));
    }
  }

  // Upward pass, leaf: xhat = U^T xd(I_tau, :).
  {
    const auto& ub = a.basis[static_cast<size_t>(leaf)];
    std::vector<ConstMatrixView> av, bv;
    std::vector<MatrixView> cv;
    for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
      if (a.rank(leaf, i) == 0) {
        av.push_back(ConstMatrixView());
        bv.push_back(ConstMatrixView());
        cv.push_back(MatrixView());
        continue;
      }
      av.push_back(ub.dev(i));
      bv.push_back(xd.row_range(t.begin(leaf, i), t.size(leaf, i)));
      cv.push_back(xhat[static_cast<size_t>(leaf)][static_cast<size_t>(i)]);
    }
    batched::batched_gemm(ctx, kLowRank, 1.0, std::move(av), la::Op::Trans, std::move(bv),
                          la::Op::None, 0.0, std::move(cv));
  }

  // Upward pass, inner: xhat_tau = E_left^T xhat_l + E_right^T xhat_r.
  // Level-to-level dependencies ride the stream's FIFO order — no barriers.
  for (index_t l = leaf - 1; l >= 0; --l) {
    // Two half-launches (left children then right children) so each parent
    // coefficient block is written by one entry per launch.
    for (int side = 0; side < 2; ++side) {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < t.nodes_at(l); ++i) {
        const index_t r_left = a.rank(l + 1, 2 * i);
        const index_t r_side = side == 0 ? r_left : a.rank(l + 1, 2 * i + 1);
        const index_t row0 = side == 0 ? 0 : r_left;
        const index_t r_tau = a.rank(l, i);
        if (r_tau == 0 || r_side == 0) {
          // Rank-0 parent or child: no contribution (xhat starts zeroed).
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(a.basis[static_cast<size_t>(l)].dev(i).block(row0, 0, r_side, r_tau));
        bv.push_back(xhat[static_cast<size_t>(l + 1)][static_cast<size_t>(2 * i + side)]);
        cv.push_back(xhat[static_cast<size_t>(l)][static_cast<size_t>(i)]);
      }
      batched::batched_gemm(ctx, kLowRank, 1.0, std::move(av), la::Op::Trans, std::move(bv),
                            la::Op::None, side == 0 ? 0.0 : 1.0, std::move(cv));
    }
  }

  // Coupling phase: yhat[s] += B_{s,t} xhat[t] per level, conflict-free BSR.
  // Levels are mutually independent given the finished upward pass (each
  // writes only its own yhat[l]), so they fan out across streams.
  ctx.sync(kLowRank);
  int spill = 0;
  for (index_t l = 0; l < levels; ++l) {
    const auto& far = a.mtree.far[static_cast<size_t>(l)];
    if (far.empty()) continue;
    std::vector<ConstMatrixView> blocks, xv;
    std::vector<MatrixView> yv;
    for (index_t e = 0; e < a.coupling[static_cast<size_t>(l)].count(); ++e)
      blocks.push_back(a.coupling[static_cast<size_t>(l)].dev(e));
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      xv.push_back(xhat[static_cast<size_t>(l)][static_cast<size_t>(i)]);
      yv.push_back(yhat[static_cast<size_t>(l)][static_cast<size_t>(i)]);
    }
    const StreamId s = (l % 2 == 0) ? kLowRank : kCouplingSpill[(spill++) % 2];
    batched::bsr_gemm(ctx, s, 1.0, {far.row_ptr.begin(), far.row_ptr.end()},
                      {far.col.begin(), far.col.end()}, std::move(blocks), std::move(xv),
                      std::move(yv));
  }
  // Downward pass consumes every level's yhat: join the coupling fan-out
  // (the near-field stream keeps running).
  ctx.sync(kLowRank);
  for (const StreamId s : kCouplingSpill) ctx.sync(s);

  // Downward pass: children accumulate E * yhat_parent.
  for (index_t l = 0; l < leaf; ++l) {
    for (int side = 0; side < 2; ++side) {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < t.nodes_at(l); ++i) {
        const index_t r_left = a.rank(l + 1, 2 * i);
        const index_t r_side = side == 0 ? r_left : a.rank(l + 1, 2 * i + 1);
        const index_t row0 = side == 0 ? 0 : r_left;
        const index_t r_tau = a.rank(l, i);
        if (r_tau == 0 || r_side == 0) {
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(a.basis[static_cast<size_t>(l)].dev(i).block(row0, 0, r_side, r_tau));
        bv.push_back(yhat[static_cast<size_t>(l)][static_cast<size_t>(i)]);
        cv.push_back(yhat[static_cast<size_t>(l + 1)][static_cast<size_t>(2 * i + side)]);
      }
      batched::batched_gemm(ctx, kLowRank, 1.0, std::move(av), la::Op::None, std::move(bv),
                            la::Op::None, 1.0, std::move(cv));
    }
  }

  // Leaf expansion: yd(I_tau, :) += U yhat_leaf. Writes yd, so the
  // concurrent near-field accumulation must finish first.
  ctx.sync(kNearField);
  {
    const auto& ub = a.basis[static_cast<size_t>(leaf)];
    std::vector<ConstMatrixView> av, bv;
    std::vector<MatrixView> cv;
    for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
      if (a.rank(leaf, i) == 0) {
        av.push_back(ConstMatrixView());
        bv.push_back(ConstMatrixView());
        cv.push_back(MatrixView());
        continue;
      }
      av.push_back(ub.dev(i));
      bv.push_back(yhat[static_cast<size_t>(leaf)][static_cast<size_t>(i)]);
      cv.push_back(yd.row_range(t.begin(leaf, i), t.size(leaf, i)));
    }
    batched::batched_gemm(ctx, kLowRank, 1.0, std::move(av), la::Op::None, std::move(bv),
                          la::Op::None, 1.0, std::move(cv));
  }

  // The arena panels must outlive every launch; then the result crosses
  // back over the marshaling boundary.
  ctx.sync_all();
  dev.download(yd, y);
}

void h2_matvec(const H2Matrix& a, ConstMatrixView x, MatrixView y) {
  // Bind to the device the matrix's arenas live on, not the process
  // default: an operator built on simdevice stays applicable without the
  // caller wiring a context through.
  batched::ExecutionContext ctx(a.execution_config());
  h2_matvec(ctx, a, x, y);
}

} // namespace h2sketch::h2
