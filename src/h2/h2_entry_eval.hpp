#pragma once

#include "h2/h2_matrix.hpp"
#include "kernels/entry_gen.hpp"

/// \file h2_entry_eval.hpp
/// Entry evaluation of an already-constructed H2 matrix. An admissible
/// entry (i, j) meets its coupling block at some level l; its value is
///   (row i of U_s) * B_{s,t} * (row j of U_t)^T,
/// where the U rows are expanded through the transfer-matrix chain of
/// Eq. (2). This is the batchedGen used by the paper's third application
/// (recompression of an H2 matrix plus a low-rank update), where entries
/// must come from the existing H2 representation rather than a kernel.

namespace h2sketch::h2 {

class H2EntryGenerator final : public kern::EntryGenerator {
 public:
  /// The H2 matrix must outlive the generator.
  explicit H2EntryGenerator(const H2Matrix& a);

  /// Evaluate a single (permuted) entry.
  real_t entry(index_t i, index_t j) const;

  void generate_block(const_index_span rows, const_index_span cols, MatrixView out) const override;

 private:
  /// Basis row of position p at every level: chain[l] is a 1 x rank(l, node)
  /// row vector (empty above the levels reached).
  std::vector<std::vector<real_t>> basis_row_chain(index_t p) const;

  const H2Matrix* a_;
  std::vector<index_t> leaf_of_; ///< permuted position -> leaf node index
};

} // namespace h2sketch::h2
