#pragma once

#include <memory>
#include <vector>

#include "backend/block_arena.hpp"
#include "common/matrix.hpp"
#include "tree/matrix_tree.hpp"

/// \file h2_matrix.hpp
/// The H2 matrix data structure (paper §II-A, Figs. 1-3): nested cluster
/// bases stored level by level.
///
///  * Leaf nodes store explicit bases U_tau (n_tau x r_tau).
///  * Inner nodes store stacked transfer matrices [E_left; E_right]
///    ((r_left + r_right) x r_tau), implicitly defining
///    U_tau = diag(U_left, U_right) [E_left; E_right]  (Eq. (2)).
///  * Each admissible pair (s, t) at its level stores a coupling matrix
///    B_{s,t} (r_s x r_t); each inadmissible leaf pair stores a dense block.
///
/// The matrix is symmetric (V = U). All blocks are indexed in the cluster
/// tree's permuted position space, following the matrix tree's CSR lists.
///
/// Storage is **device-resident**: each per-level family of blocks lives
/// packed in one `backend::BlockArena` (one DeviceBuffer per level per
/// kind), so the matvec reads operands in place and steady-state per-apply
/// host<->device traffic is just the x upload and y download. Host-side
/// consumers (densify, io, entry evaluation) go through the arenas' lazy
/// `host(i)` mirrors. The matrix is move-only and pinned to the backend it
/// was built on (`execution_config()`).

namespace h2sketch::h2 {

class H2Matrix {
 public:
  std::shared_ptr<const tree::ClusterTree> tree; ///< cluster geometry
  tree::MatrixTree mtree;                        ///< block partitioning

  /// ranks[l][i]: basis rank of node i at level l.
  std::vector<std::vector<index_t>> ranks;

  /// basis[l], slot i: at the leaf level, U_i (cluster_size x rank). At
  /// inner levels, the stacked transfer [E_left; E_right]
  /// ((rank(l+1,2i) + rank(l+1,2i+1)) x rank(l,i)).
  std::vector<backend::BlockArena> basis;

  /// coupling[l], slot e: B for the e-th CSR entry of mtree.far[l].
  std::vector<backend::BlockArena> coupling;

  /// Slot e: D for the e-th CSR entry of mtree.near_leaf.
  backend::BlockArena dense;

  /// skeleton[l][i]: permuted positions selected as skeleton indices for
  /// node i at level l (size == ranks[l][i]). Produced by sketching
  /// construction; interpolation-based constructions leave it empty.
  std::vector<std::vector<std::vector<index_t>>> skeleton;

  index_t size() const { return tree ? tree->num_points() : 0; }
  index_t num_levels() const { return tree ? tree->num_levels() : 0; }
  index_t leaf_level() const { return tree->leaf_level(); }

  index_t rank(index_t level, index_t node) const {
    return ranks[static_cast<size_t>(level)][static_cast<size_t>(node)];
  }

  /// Allocate empty per-level containers sized to the trees.
  void init_structure();

  /// Smallest/largest rank over all nodes at levels that carry far blocks
  /// (the paper's "rank range" in Table II).
  index_t min_rank() const;
  index_t max_rank() const;

  /// Logical payload bytes of U/E/B/D blocks plus skeleton index lists.
  std::size_t memory_bytes() const;

  /// Real device-resident bytes across all arenas (alignment padding
  /// included) — what the serving cache budgets and eviction frees.
  std::size_t device_bytes() const;

  /// Backend the arenas live on; null when nothing is allocated yet.
  std::shared_ptr<backend::DeviceBackend> storage_backend() const;

  /// Backend the arenas live on (from the first allocated arena; the
  /// process default if nothing is allocated yet). Contexts applying this
  /// matrix must share its device heap.
  backend::ExecutionConfig execution_config() const;

  /// Structural consistency: every dimension implied by ranks, cluster
  /// sizes and CSR lists must match. Throws on violation.
  void validate() const;
};

} // namespace h2sketch::h2
