#pragma once

#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "tree/matrix_tree.hpp"

/// \file h2_matrix.hpp
/// The H2 matrix data structure (paper §II-A, Figs. 1-3): nested cluster
/// bases stored level by level.
///
///  * Leaf nodes store explicit bases U_tau (n_tau x r_tau).
///  * Inner nodes store stacked transfer matrices [E_left; E_right]
///    ((r_left + r_right) x r_tau), implicitly defining
///    U_tau = diag(U_left, U_right) [E_left; E_right]  (Eq. (2)).
///  * Each admissible pair (s, t) at its level stores a coupling matrix
///    B_{s,t} (r_s x r_t); each inadmissible leaf pair stores a dense block.
///
/// The matrix is symmetric (V = U). All blocks are indexed in the cluster
/// tree's permuted position space, following the matrix tree's CSR lists.
/// Trees are stored level-contiguously, matching the flattened layout the
/// GPU implementation marshals from.

namespace h2sketch::h2 {

class H2Matrix {
 public:
  std::shared_ptr<const tree::ClusterTree> tree; ///< cluster geometry
  tree::MatrixTree mtree;                        ///< block partitioning

  /// ranks[l][i]: basis rank of node i at level l.
  std::vector<std::vector<index_t>> ranks;

  /// basis[l][i]: at the leaf level, U_i (cluster_size x rank). At inner
  /// levels, the stacked transfer [E_left; E_right]
  /// ((rank(l+1,2i) + rank(l+1,2i+1)) x rank(l,i)).
  std::vector<std::vector<Matrix>> basis;

  /// coupling[l][e]: B for the e-th CSR entry of mtree.far[l].
  std::vector<std::vector<Matrix>> coupling;

  /// dense[e]: D for the e-th CSR entry of mtree.near_leaf.
  std::vector<Matrix> dense;

  /// skeleton[l][i]: permuted positions selected as skeleton indices for
  /// node i at level l (size == ranks[l][i]). Produced by sketching
  /// construction; interpolation-based constructions leave it empty.
  std::vector<std::vector<std::vector<index_t>>> skeleton;

  index_t size() const { return tree ? tree->num_points() : 0; }
  index_t num_levels() const { return tree ? tree->num_levels() : 0; }
  index_t leaf_level() const { return tree->leaf_level(); }

  index_t rank(index_t level, index_t node) const {
    return ranks[static_cast<size_t>(level)][static_cast<size_t>(node)];
  }

  /// Allocate empty per-level containers sized to the trees.
  void init_structure();

  /// Smallest/largest rank over all nodes at levels that carry far blocks
  /// (the paper's "rank range" in Table II).
  index_t min_rank() const;
  index_t max_rank() const;

  /// Exact bytes held in U/E/B/D matrices plus skeleton index lists.
  std::size_t memory_bytes() const;

  /// Structural consistency: every dimension implied by ranks, cluster
  /// sizes and CSR lists must match. Throws on violation.
  void validate() const;
};

} // namespace h2sketch::h2
