#include "h2/cheb_construction.hpp"

#include "backend/registry.hpp"

#include <cmath>
#include <numbers>

namespace h2sketch::h2 {

namespace {

/// 1D Chebyshev-Gauss nodes mapped to [center-half, center+half].
std::vector<real_t> cheb_nodes_1d(real_t lo, real_t hi, index_t q) {
  // Guard zero-extent boxes (duplicate points, degenerate planes): widen so
  // Lagrange denominators stay nonzero.
  const real_t c = 0.5 * (lo + hi);
  const real_t h = std::max(0.5 * (hi - lo), 1e-8 * (1.0 + std::abs(c)));
  std::vector<real_t> x(static_cast<size_t>(q));
  for (index_t m = 0; m < q; ++m)
    x[static_cast<size_t>(m)] =
        c + h * std::cos(std::numbers::pi * (2.0 * m + 1.0) / (2.0 * q));
  return x;
}

/// Lagrange basis L_m(x) over the 1D nodes.
real_t lagrange(const std::vector<real_t>& nodes, index_t m, real_t x) {
  real_t v = 1.0;
  for (index_t k = 0; k < static_cast<index_t>(nodes.size()); ++k) {
    if (k == m) continue;
    v *= (x - nodes[static_cast<size_t>(k)]) /
         (nodes[static_cast<size_t>(m)] - nodes[static_cast<size_t>(k)]);
  }
  return v;
}

/// Tensor Chebyshev grid of a box: r = q^dim points, row-major over the
/// base-q digits of the flat index.
struct ChebGrid {
  index_t q = 0;
  index_t dim = 0;
  std::vector<std::vector<real_t>> nodes_1d; ///< per dimension
  index_t rank() const {
    index_t r = 1;
    for (index_t d = 0; d < dim; ++d) r *= q;
    return r;
  }
  /// Coordinates of tensor point m.
  void point(index_t m, real_t* out) const {
    index_t rem = m;
    for (index_t d = 0; d < dim; ++d) {
      out[d] = nodes_1d[static_cast<size_t>(d)][static_cast<size_t>(rem % q)];
      rem /= q;
    }
  }
  /// Tensor Lagrange basis value of function m at coordinates x.
  real_t basis(index_t m, const real_t* x) const {
    index_t rem = m;
    real_t v = 1.0;
    for (index_t d = 0; d < dim; ++d) {
      v *= lagrange(nodes_1d[static_cast<size_t>(d)], rem % q, x[d]);
      rem /= q;
    }
    return v;
  }
};

ChebGrid grid_of_box(const geo::BoundingBox& box, index_t q) {
  ChebGrid g;
  g.q = q;
  g.dim = box.dim;
  g.nodes_1d.resize(static_cast<size_t>(box.dim));
  for (index_t d = 0; d < box.dim; ++d)
    g.nodes_1d[static_cast<size_t>(d)] =
        cheb_nodes_1d(box.lo[static_cast<size_t>(d)], box.hi[static_cast<size_t>(d)], q);
  return g;
}

} // namespace

H2Matrix build_cheb_h2(std::shared_ptr<const tree::ClusterTree> tree,
                       const tree::Admissibility& adm, const kern::KernelFunction& kernel,
                       index_t q) {
  H2S_CHECK(q >= 2, "need at least two interpolation nodes per dimension");
  H2Matrix a;
  a.tree = tree;
  a.mtree = tree::MatrixTree::build(*tree, adm);
  a.init_structure();

  const tree::ClusterTree& t = *tree;
  const index_t dim = t.dim();
  const index_t leaf = t.leaf_level();
  index_t rank = 1;
  for (index_t d = 0; d < dim; ++d) rank *= q;

  // Grids for every node, level-major.
  std::vector<std::vector<ChebGrid>> grids(static_cast<size_t>(t.num_levels()));
  for (index_t l = 0; l < t.num_levels(); ++l) {
    grids[static_cast<size_t>(l)].resize(static_cast<size_t>(t.nodes_at(l)));
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      grids[static_cast<size_t>(l)][static_cast<size_t>(i)] = grid_of_box(t.box(l, i), q);
      a.ranks[static_cast<size_t>(l)][static_cast<size_t>(i)] = rank;
    }
  }

  // Leaf bases: U(p, m) = tensor Lagrange basis m at point p.
  for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
    const ChebGrid& g = grids[static_cast<size_t>(leaf)][static_cast<size_t>(i)];
    Matrix u(t.size(leaf, i), rank);
    for (index_t p = 0; p < t.size(leaf, i); ++p) {
      real_t x[3] = {0, 0, 0};
      for (index_t d = 0; d < dim; ++d) x[d] = t.coord_permuted(t.begin(leaf, i) + p, d);
      for (index_t m = 0; m < rank; ++m) u(p, m) = g.basis(m, x);
    }
    a.basis[static_cast<size_t>(leaf)].stage(i, std::move(u));
  }

  // Transfer matrices: child grid points interpolated in the parent's basis.
  for (index_t l = leaf - 1; l >= 0; --l) {
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      const ChebGrid& parent = grids[static_cast<size_t>(l)][static_cast<size_t>(i)];
      Matrix tr(2 * rank, rank);
      for (int side = 0; side < 2; ++side) {
        const ChebGrid& child = grids[static_cast<size_t>(l + 1)][static_cast<size_t>(2 * i + side)];
        for (index_t mc = 0; mc < rank; ++mc) {
          real_t x[3] = {0, 0, 0};
          child.point(mc, x);
          for (index_t mp = 0; mp < rank; ++mp)
            tr(side * rank + mc, mp) = parent.basis(mp, x);
        }
      }
      a.basis[static_cast<size_t>(l)].stage(i, std::move(tr));
    }
  }

  // Coupling blocks: kernel between the two grids.
  for (index_t l = 0; l < t.num_levels(); ++l) {
    const auto& far = a.mtree.far[static_cast<size_t>(l)];
    for (index_t s = 0; s < t.nodes_at(l); ++s) {
      for (index_t j = 0; j < far.row_count(s); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
        const index_t c = far.col[static_cast<size_t>(e)];
        const ChebGrid& gs = grids[static_cast<size_t>(l)][static_cast<size_t>(s)];
        const ChebGrid& gc = grids[static_cast<size_t>(l)][static_cast<size_t>(c)];
        Matrix b(rank, rank);
        for (index_t mt = 0; mt < rank; ++mt) {
          real_t y[3] = {0, 0, 0};
          gc.point(mt, y);
          for (index_t ms = 0; ms < rank; ++ms) {
            real_t x[3] = {0, 0, 0};
            gs.point(ms, x);
            b(ms, mt) = kernel.evaluate(x, y, dim);
          }
        }
        a.coupling[static_cast<size_t>(l)].stage(e, std::move(b));
      }
    }
  }

  // Dense near field: exact kernel entries.
  const auto& near = a.mtree.near_leaf;
  for (index_t s = 0; s < t.nodes_at(leaf); ++s) {
    for (index_t j = 0; j < near.row_count(s); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(s)] + j;
      const index_t c = near.col[static_cast<size_t>(e)];
      Matrix dmat(t.size(leaf, s), t.size(leaf, c));
      for (index_t jj = 0; jj < dmat.cols(); ++jj) {
        real_t y[3] = {0, 0, 0};
        for (index_t d = 0; d < dim; ++d) y[d] = t.coord_permuted(t.begin(leaf, c) + jj, d);
        for (index_t ii = 0; ii < dmat.rows(); ++ii) {
          real_t x[3] = {0, 0, 0};
          for (index_t d = 0; d < dim; ++d) x[d] = t.coord_permuted(t.begin(leaf, s) + ii, d);
          dmat(ii, jj) = kernel.evaluate(x, y, dim);
        }
      }
      a.dense.stage(e, std::move(dmat));
    }
  }

  // Host-side writer: commit each staged arena to the process default
  // device (one allocation + upload per level; mirrors stay warm).
  backend::DeviceBackend& dev = *backend::default_backend().device;
  for (auto& lvl : a.basis) lvl.commit(dev);
  for (auto& lvl : a.coupling) lvl.commit(dev);
  a.dense.commit(dev);

  a.validate();
  return a;
}

} // namespace h2sketch::h2
