#include "h2/h2_matrix.hpp"

namespace h2sketch::h2 {

void H2Matrix::init_structure() {
  H2S_CHECK(tree != nullptr, "H2Matrix: tree not set");
  const index_t levels = tree->num_levels();
  ranks.assign(static_cast<size_t>(levels), {});
  basis.assign(static_cast<size_t>(levels), {});
  coupling.assign(static_cast<size_t>(levels), {});
  skeleton.assign(static_cast<size_t>(levels), {});
  for (index_t l = 0; l < levels; ++l) {
    const auto nodes = static_cast<size_t>(tree->nodes_at(l));
    ranks[static_cast<size_t>(l)].assign(nodes, 0);
    basis[static_cast<size_t>(l)].assign(nodes, Matrix());
    skeleton[static_cast<size_t>(l)].assign(nodes, {});
    coupling[static_cast<size_t>(l)].assign(static_cast<size_t>(mtree.far[static_cast<size_t>(l)].count()),
                                            Matrix());
  }
  dense.assign(static_cast<size_t>(mtree.near_leaf.count()), Matrix());
}

index_t H2Matrix::min_rank() const {
  index_t mn = -1;
  for (index_t l = 0; l < num_levels(); ++l) {
    if (mtree.far[static_cast<size_t>(l)].count() == 0) continue;
    for (index_t i = 0; i < tree->nodes_at(l); ++i) {
      if (mtree.far[static_cast<size_t>(l)].row_count(i) == 0) continue;
      const index_t r = rank(l, i);
      mn = mn < 0 ? r : std::min(mn, r);
    }
  }
  return mn < 0 ? 0 : mn;
}

index_t H2Matrix::max_rank() const {
  index_t mx = 0;
  for (index_t l = 0; l < num_levels(); ++l)
    for (index_t i = 0; i < tree->nodes_at(l); ++i) mx = std::max(mx, rank(l, i));
  return mx;
}

std::size_t H2Matrix::memory_bytes() const {
  std::size_t bytes = 0;
  auto mat_bytes = [](const Matrix& m) {
    return static_cast<std::size_t>(m.size()) * sizeof(real_t);
  };
  for (const auto& lvl : basis)
    for (const auto& m : lvl) bytes += mat_bytes(m);
  for (const auto& lvl : coupling)
    for (const auto& m : lvl) bytes += mat_bytes(m);
  for (const auto& m : dense) bytes += mat_bytes(m);
  for (const auto& lvl : skeleton)
    for (const auto& s : lvl) bytes += s.size() * sizeof(index_t);
  return bytes;
}

void H2Matrix::validate() const {
  H2S_CHECK(tree != nullptr, "H2Matrix: tree not set");
  const index_t levels = num_levels();
  const index_t leaf = leaf_level();
  for (index_t l = 0; l < levels; ++l) {
    const auto ul = static_cast<size_t>(l);
    H2S_CHECK(static_cast<index_t>(ranks[ul].size()) == tree->nodes_at(l),
              "rank array size mismatch at level " << l);
    for (index_t i = 0; i < tree->nodes_at(l); ++i) {
      const auto ui = static_cast<size_t>(i);
      const Matrix& b = basis[ul][ui];
      const index_t r = ranks[ul][ui];
      if (l == leaf) {
        if (r > 0)
          H2S_CHECK(b.rows() == tree->size(l, i) && b.cols() == r,
                    "leaf basis dims mismatch at node " << i);
      } else if (r > 0) {
        const index_t child_rows = rank(l + 1, 2 * i) + rank(l + 1, 2 * i + 1);
        H2S_CHECK(b.rows() == child_rows && b.cols() == r,
                  "transfer dims mismatch at level " << l << " node " << i);
      }
      if (!skeleton[ul][ui].empty())
        H2S_CHECK(static_cast<index_t>(skeleton[ul][ui].size()) == r,
                  "skeleton size != rank at level " << l << " node " << i);
    }
    // Coupling blocks match the CSR far list and the node ranks.
    const auto& far = mtree.far[ul];
    H2S_CHECK(static_cast<index_t>(coupling[ul].size()) == far.count(),
              "coupling count mismatch at level " << l);
    for (index_t rnode = 0; rnode < tree->nodes_at(l); ++rnode)
      for (index_t j = 0; j < far.row_count(rnode); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(rnode)] + j;
        const index_t cnode = far.col[static_cast<size_t>(e)];
        const Matrix& bm = coupling[ul][static_cast<size_t>(e)];
        H2S_CHECK(bm.rows() == rank(l, rnode) && bm.cols() == rank(l, cnode),
                  "coupling dims mismatch at level " << l << " entry " << e);
      }
  }
  const auto& near = mtree.near_leaf;
  H2S_CHECK(static_cast<index_t>(dense.size()) == near.count(), "dense count mismatch");
  for (index_t rnode = 0; rnode < tree->nodes_at(leaf); ++rnode)
    for (index_t j = 0; j < near.row_count(rnode); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(rnode)] + j;
      const index_t cnode = near.col[static_cast<size_t>(e)];
      H2S_CHECK(dense[static_cast<size_t>(e)].rows() == tree->size(leaf, rnode) &&
                    dense[static_cast<size_t>(e)].cols() == tree->size(leaf, cnode),
                "dense dims mismatch at entry " << e);
    }
}

} // namespace h2sketch::h2
