#include "h2/h2_matrix.hpp"

#include "backend/registry.hpp"

namespace h2sketch::h2 {

void H2Matrix::init_structure() {
  H2S_CHECK(tree != nullptr, "H2Matrix: tree not set");
  const index_t levels = tree->num_levels();
  ranks.assign(static_cast<size_t>(levels), {});
  basis = std::vector<backend::BlockArena>(static_cast<size_t>(levels));
  coupling = std::vector<backend::BlockArena>(static_cast<size_t>(levels));
  skeleton.assign(static_cast<size_t>(levels), {});
  for (index_t l = 0; l < levels; ++l) {
    const auto nodes = static_cast<size_t>(tree->nodes_at(l));
    ranks[static_cast<size_t>(l)].assign(nodes, 0);
    basis[static_cast<size_t>(l)].reset(tree->nodes_at(l));
    skeleton[static_cast<size_t>(l)].assign(nodes, {});
    coupling[static_cast<size_t>(l)].reset(mtree.far[static_cast<size_t>(l)].count());
  }
  dense.reset(mtree.near_leaf.count());
}

index_t H2Matrix::min_rank() const {
  index_t mn = -1;
  for (index_t l = 0; l < num_levels(); ++l) {
    if (mtree.far[static_cast<size_t>(l)].count() == 0) continue;
    for (index_t i = 0; i < tree->nodes_at(l); ++i) {
      if (mtree.far[static_cast<size_t>(l)].row_count(i) == 0) continue;
      const index_t r = rank(l, i);
      mn = mn < 0 ? r : std::min(mn, r);
    }
  }
  return mn < 0 ? 0 : mn;
}

index_t H2Matrix::max_rank() const {
  index_t mx = 0;
  for (index_t l = 0; l < num_levels(); ++l)
    for (index_t i = 0; i < tree->nodes_at(l); ++i) mx = std::max(mx, rank(l, i));
  return mx;
}

std::size_t H2Matrix::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lvl : basis) bytes += lvl.payload_bytes();
  for (const auto& lvl : coupling) bytes += lvl.payload_bytes();
  bytes += dense.payload_bytes();
  for (const auto& lvl : skeleton)
    for (const auto& s : lvl) bytes += s.size() * sizeof(index_t);
  return bytes;
}

std::size_t H2Matrix::device_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lvl : basis) bytes += lvl.device_bytes();
  for (const auto& lvl : coupling) bytes += lvl.device_bytes();
  bytes += dense.device_bytes();
  return bytes;
}

std::shared_ptr<backend::DeviceBackend> H2Matrix::storage_backend() const {
  for (const auto& lvl : basis)
    if (lvl.allocated()) return lvl.backend_ptr();
  if (dense.allocated()) return dense.backend_ptr();
  for (const auto& lvl : coupling)
    if (lvl.allocated()) return lvl.backend_ptr();
  return nullptr;
}

backend::ExecutionConfig H2Matrix::execution_config() const {
  if (auto dev = storage_backend()) return {std::move(dev), backend::LaunchMode::Batched};
  return backend::default_backend();
}

void H2Matrix::validate() const {
  H2S_CHECK(tree != nullptr, "H2Matrix: tree not set");
  const index_t levels = num_levels();
  const index_t leaf = leaf_level();
  for (index_t l = 0; l < levels; ++l) {
    const auto ul = static_cast<size_t>(l);
    H2S_CHECK(static_cast<index_t>(ranks[ul].size()) == tree->nodes_at(l),
              "rank array size mismatch at level " << l);
    for (index_t i = 0; i < tree->nodes_at(l); ++i) {
      const auto ui = static_cast<size_t>(i);
      const index_t r = ranks[ul][ui];
      if (l == leaf) {
        if (r > 0)
          H2S_CHECK(basis[ul].rows(i) == tree->size(l, i) && basis[ul].cols(i) == r,
                    "leaf basis dims mismatch at node " << i);
      } else if (r > 0) {
        const index_t child_rows = rank(l + 1, 2 * i) + rank(l + 1, 2 * i + 1);
        H2S_CHECK(basis[ul].rows(i) == child_rows && basis[ul].cols(i) == r,
                  "transfer dims mismatch at level " << l << " node " << i);
      }
      if (!skeleton[ul][ui].empty())
        H2S_CHECK(static_cast<index_t>(skeleton[ul][ui].size()) == r,
                  "skeleton size != rank at level " << l << " node " << i);
    }
    // Coupling blocks match the CSR far list and the node ranks.
    const auto& far = mtree.far[ul];
    H2S_CHECK(coupling[ul].count() == far.count(), "coupling count mismatch at level " << l);
    for (index_t rnode = 0; rnode < tree->nodes_at(l); ++rnode)
      for (index_t j = 0; j < far.row_count(rnode); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(rnode)] + j;
        const index_t cnode = far.col[static_cast<size_t>(e)];
        H2S_CHECK(coupling[ul].rows(e) == rank(l, rnode) && coupling[ul].cols(e) == rank(l, cnode),
                  "coupling dims mismatch at level " << l << " entry " << e);
      }
  }
  const auto& near = mtree.near_leaf;
  H2S_CHECK(dense.count() == near.count(), "dense count mismatch");
  for (index_t rnode = 0; rnode < tree->nodes_at(leaf); ++rnode)
    for (index_t j = 0; j < near.row_count(rnode); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(rnode)] + j;
      const index_t cnode = near.col[static_cast<size_t>(e)];
      H2S_CHECK(dense.rows(e) == tree->size(leaf, rnode) &&
                    dense.cols(e) == tree->size(leaf, cnode),
                "dense dims mismatch at entry " << e);
    }
}

} // namespace h2sketch::h2
