#pragma once

#include <iosfwd>

#include "h2/h2_matrix.hpp"

/// \file h2_io.hpp
/// Binary (de)serialization of H2 matrices, including the cluster geometry
/// and block partitioning, so a compressed operator can be built once and
/// reloaded for repeated matvec/solve workloads. The format is a simple
/// versioned little-endian stream; it is not exchange-stable across
/// architectures with different endianness.

namespace h2sketch::h2 {

/// Write the full matrix (points, clustering, partitioning, all blocks).
void save_h2(std::ostream& os, const H2Matrix& a);

/// Read a matrix previously written by save_h2; validates on load.
H2Matrix load_h2(std::istream& is);

/// File-path conveniences.
void save_h2_file(const std::string& path, const H2Matrix& a);
H2Matrix load_h2_file(const std::string& path);

} // namespace h2sketch::h2
