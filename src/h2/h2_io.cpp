#include "h2/h2_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "backend/registry.hpp"

namespace h2sketch::h2 {

namespace {

constexpr std::uint64_t kMagic = 0x4832534b45544348ull; // "H2SKETCH"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  H2S_CHECK(static_cast<bool>(is), "h2_io: truncated stream");
  return v;
}

void put_indices(std::ostream& os, const std::vector<index_t>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(index_t)));
}

std::vector<index_t> get_indices(std::istream& is) {
  const auto n = get<std::uint64_t>(is);
  std::vector<index_t> v(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(index_t)));
  H2S_CHECK(static_cast<bool>(is), "h2_io: truncated index block");
  return v;
}

void put_matrix(std::ostream& os, const Matrix& m) {
  put<index_t>(os, m.rows());
  put<index_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(real_t)));
}

Matrix get_matrix(std::istream& is) {
  const auto rows = get<index_t>(is);
  const auto cols = get<index_t>(is);
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(real_t)));
  H2S_CHECK(static_cast<bool>(is), "h2_io: truncated matrix block");
  return m;
}

void put_block_list(std::ostream& os, const tree::LevelBlockList& l) {
  put_indices(os, l.row_ptr);
  put_indices(os, l.col);
}

tree::LevelBlockList get_block_list(std::istream& is) {
  tree::LevelBlockList l;
  l.row_ptr = get_indices(is);
  l.col = get_indices(is);
  return l;
}

} // namespace

void save_h2(std::ostream& os, const H2Matrix& a) {
  H2S_CHECK(a.tree != nullptr, "save_h2: empty matrix");
  put(os, kMagic);
  put(os, kVersion);

  // Geometry.
  const geo::PointCloud& pc = a.tree->points();
  put<index_t>(os, pc.size());
  put<index_t>(os, pc.dim());
  os.write(reinterpret_cast<const char*>(pc.raw().data()),
           static_cast<std::streamsize>(pc.raw().size() * sizeof(real_t)));

  // Clustering.
  const geo::KdClustering& cl = a.tree->clustering();
  put<index_t>(os, cl.num_levels);
  put_indices(os, cl.perm);
  put<std::uint64_t>(os, cl.nodes.size());
  for (const auto& node : cl.nodes) {
    put<index_t>(os, node.begin);
    put<index_t>(os, node.end);
    put(os, node.box);
  }

  // Partitioning.
  put<index_t>(os, a.mtree.num_levels);
  for (const auto& f : a.mtree.far) put_block_list(os, f);
  for (const auto& nl : a.mtree.near) put_block_list(os, nl);

  // Blocks.
  for (const auto& lvl : a.ranks) put_indices(os, lvl);
  // Device-resident blocks stream out through the arenas' host mirrors.
  for (const auto& lvl : a.basis)
    for (index_t i = 0; i < lvl.count(); ++i) put_matrix(os, lvl.host(i));
  for (const auto& lvl : a.coupling)
    for (index_t e = 0; e < lvl.count(); ++e) put_matrix(os, lvl.host(e));
  for (index_t e = 0; e < a.dense.count(); ++e) put_matrix(os, a.dense.host(e));
  for (const auto& lvl : a.skeleton)
    for (const auto& s : lvl) put_indices(os, s);
}

H2Matrix load_h2(std::istream& is) {
  H2S_CHECK(get<std::uint64_t>(is) == kMagic, "load_h2: bad magic");
  H2S_CHECK(get<std::uint32_t>(is) == kVersion, "load_h2: unsupported version");

  const auto npts = get<index_t>(is);
  const auto dim = get<index_t>(is);
  geo::PointCloud pc(npts, dim);
  {
    std::vector<real_t> raw(static_cast<size_t>(npts * dim));
    is.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(raw.size() * sizeof(real_t)));
    for (index_t i = 0; i < npts; ++i)
      for (index_t d = 0; d < dim; ++d) pc.coord(i, d) = raw[static_cast<size_t>(i * dim + d)];
  }

  geo::KdClustering cl;
  cl.num_levels = get<index_t>(is);
  cl.perm = get_indices(is);
  cl.nodes.resize(get<std::uint64_t>(is));
  for (auto& node : cl.nodes) {
    node.begin = get<index_t>(is);
    node.end = get<index_t>(is);
    node.box = get<geo::BoundingBox>(is);
  }

  H2Matrix a;
  a.tree = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::from_parts(std::move(pc), std::move(cl)));

  a.mtree.num_levels = get<index_t>(is);
  a.mtree.far.resize(static_cast<size_t>(a.mtree.num_levels));
  a.mtree.near.resize(static_cast<size_t>(a.mtree.num_levels));
  for (auto& f : a.mtree.far) f = get_block_list(is);
  for (auto& nl : a.mtree.near) nl = get_block_list(is);
  a.mtree.near_leaf = a.mtree.near.back();

  a.init_structure();
  for (auto& lvl : a.ranks) lvl = get_indices(is);
  // Stage each block host-side as it streams in, then commit per arena: one
  // device allocation + upload per level, and the mirrors stay warm.
  backend::DeviceBackend& dev = *backend::default_backend().device;
  for (auto& lvl : a.basis) {
    for (index_t i = 0; i < lvl.count(); ++i) lvl.stage(i, get_matrix(is));
    lvl.commit(dev);
  }
  for (auto& lvl : a.coupling) {
    for (index_t e = 0; e < lvl.count(); ++e) lvl.stage(e, get_matrix(is));
    lvl.commit(dev);
  }
  for (index_t e = 0; e < a.dense.count(); ++e) a.dense.stage(e, get_matrix(is));
  a.dense.commit(dev);
  for (auto& lvl : a.skeleton)
    for (auto& s : lvl) s = get_indices(is);

  a.validate();
  return a;
}

void save_h2_file(const std::string& path, const H2Matrix& a) {
  std::ofstream os(path, std::ios::binary);
  H2S_CHECK(os.is_open(), "save_h2_file: cannot open " << path);
  save_h2(os, a);
}

H2Matrix load_h2_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  H2S_CHECK(is.is_open(), "load_h2_file: cannot open " << path);
  return load_h2(is);
}

} // namespace h2sketch::h2
