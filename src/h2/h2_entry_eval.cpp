#include "h2/h2_entry_eval.hpp"

#include <algorithm>

namespace h2sketch::h2 {

namespace {

/// CSR lookup: entry index of (r, c) in `list`, or -1.
index_t find_entry(const tree::LevelBlockList& list, index_t r, index_t c) {
  const index_t lo = list.row_ptr[static_cast<size_t>(r)];
  const index_t hi = list.row_ptr[static_cast<size_t>(r + 1)];
  const auto begin = list.col.begin() + lo;
  const auto end = list.col.begin() + hi;
  const auto it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) return lo + static_cast<index_t>(it - begin);
  return -1;
}

} // namespace

H2EntryGenerator::H2EntryGenerator(const H2Matrix& a) : a_(&a) {
  const tree::ClusterTree& t = *a.tree;
  const index_t leaf = t.leaf_level();
  leaf_of_.resize(static_cast<size_t>(t.num_points()));
  for (index_t i = 0; i < t.nodes_at(leaf); ++i)
    for (index_t p = t.begin(leaf, i); p < t.end(leaf, i); ++p)
      leaf_of_[static_cast<size_t>(p)] = i;
}

std::vector<std::vector<real_t>> H2EntryGenerator::basis_row_chain(index_t p) const {
  const tree::ClusterTree& t = *a_->tree;
  const index_t leaf = t.leaf_level();
  std::vector<std::vector<real_t>> chain(static_cast<size_t>(leaf + 1));

  index_t node = leaf_of_[static_cast<size_t>(p)];
  // Leaf row: U(p_local, :).
  {
    const Matrix& u = a_->basis[static_cast<size_t>(leaf)].host(node);
    const index_t r = a_->rank(leaf, node);
    auto& row = chain[static_cast<size_t>(leaf)];
    row.resize(static_cast<size_t>(r));
    const index_t loc = p - t.begin(leaf, node);
    for (index_t k = 0; k < r; ++k) row[static_cast<size_t>(k)] = u(loc, k);
  }
  // Climb: row_l = row_{l+1} * E_child-block of the parent's stacked transfer.
  for (index_t l = leaf - 1; l >= 0; --l) {
    const index_t child = node;
    node = child / 2;
    const Matrix& tr = a_->basis[static_cast<size_t>(l)].host(node);
    const index_t r_parent = a_->rank(l, node);
    const index_t r_left = a_->rank(l + 1, 2 * node);
    const index_t row0 = (child % 2 == 0) ? 0 : r_left;
    const auto& prev = chain[static_cast<size_t>(l + 1)];
    auto& row = chain[static_cast<size_t>(l)];
    row.assign(static_cast<size_t>(r_parent), 0.0);
    for (index_t k = 0; k < r_parent; ++k) {
      real_t s = 0.0;
      for (index_t m = 0; m < static_cast<index_t>(prev.size()); ++m)
        s += prev[static_cast<size_t>(m)] * tr(row0 + m, k);
      row[static_cast<size_t>(k)] = s;
    }
  }
  return chain;
}

real_t H2EntryGenerator::entry(index_t i, index_t j) const {
  std::vector<index_t> one_i = {i}, one_j = {j};
  Matrix out(1, 1);
  generate_block(one_i, one_j, out.view());
  return out(0, 0);
}

void H2EntryGenerator::generate_block(const_index_span rows, const_index_span cols,
                                      MatrixView out) const {
  H2S_CHECK(out.rows == static_cast<index_t>(rows.size()) &&
                out.cols == static_cast<index_t>(cols.size()),
            "generate_block: shape mismatch");
  const tree::ClusterTree& t = *a_->tree;
  const index_t leaf = t.leaf_level();

  // Cache the basis-row chains of every requested row and column position.
  std::vector<std::vector<std::vector<real_t>>> rchain, cchain;
  rchain.reserve(rows.size());
  cchain.reserve(cols.size());
  for (index_t i : rows) rchain.push_back(basis_row_chain(i));
  for (index_t j : cols) cchain.push_back(basis_row_chain(j));

  for (index_t jj = 0; jj < out.cols; ++jj) {
    const index_t j = cols[static_cast<size_t>(jj)];
    const index_t jleaf = leaf_of_[static_cast<size_t>(j)];
    for (index_t ii = 0; ii < out.rows; ++ii) {
      const index_t i = rows[static_cast<size_t>(ii)];
      const index_t ileaf = leaf_of_[static_cast<size_t>(i)];

      // Near-field dense block?
      const index_t ne = find_entry(a_->mtree.near_leaf, ileaf, jleaf);
      if (ne >= 0) {
        const Matrix& dmat = a_->dense.host(ne);
        out(ii, jj) = dmat(i - t.begin(leaf, ileaf), j - t.begin(leaf, jleaf));
        continue;
      }
      // Otherwise the pair meets a coupling block at some level.
      real_t val = 0.0;
      bool found = false;
      index_t s = ileaf, c = jleaf;
      for (index_t l = leaf; l >= 0; --l) {
        const index_t fe = find_entry(a_->mtree.far[static_cast<size_t>(l)], s, c);
        if (fe >= 0) {
          const Matrix& b = a_->coupling[static_cast<size_t>(l)].host(fe);
          const auto& ur = rchain[static_cast<size_t>(ii)][static_cast<size_t>(l)];
          const auto& vc = cchain[static_cast<size_t>(jj)][static_cast<size_t>(l)];
          for (index_t q = 0; q < b.cols(); ++q) {
            real_t s_acc = 0.0;
            for (index_t p = 0; p < b.rows(); ++p)
              s_acc += ur[static_cast<size_t>(p)] * b(p, q);
            val += s_acc * vc[static_cast<size_t>(q)];
          }
          found = true;
          break;
        }
        s /= 2;
        c /= 2;
      }
      H2S_CHECK(found, "H2 entry (" << i << "," << j << ") not covered by any block");
      out(ii, jj) = val;
    }
  }
  record_entries(out.rows * out.cols);
}

} // namespace h2sketch::h2
