#include "h2/h2_dense.hpp"

#include "common/parallel.hpp"
#include "la/blas.hpp"

namespace h2sketch::h2 {

Matrix expand_basis(const H2Matrix& a, index_t level, index_t node) {
  const tree::ClusterTree& t = *a.tree;
  // Diagnostic path: read through the arenas' lazy host mirrors.
  if (level == t.leaf_level()) return a.basis[static_cast<size_t>(level)].host(node);
  const Matrix left = expand_basis(a, level + 1, 2 * node);
  const Matrix right = expand_basis(a, level + 1, 2 * node + 1);
  const Matrix& tr = a.basis[static_cast<size_t>(level)].host(node);
  const index_t r = a.rank(level, node);
  Matrix u(t.size(level, node), r);
  if (r == 0) return u;
  // U = [U_left E_left; U_right E_right].
  la::gemm(1.0, left.view(), la::Op::None, tr.view().block(0, 0, left.cols(), r), la::Op::None, 0.0,
           u.view().row_range(0, left.rows()));
  la::gemm(1.0, right.view(), la::Op::None, tr.view().block(left.cols(), 0, right.cols(), r),
           la::Op::None, 0.0, u.view().row_range(left.rows(), right.rows()));
  return u;
}

Matrix densify(const H2Matrix& a) {
  const tree::ClusterTree& t = *a.tree;
  const index_t n = t.num_points();
  Matrix k(n, n);

  for (index_t l = 0; l < t.num_levels(); ++l) {
    const auto& far = a.mtree.far[static_cast<size_t>(l)];
    if (far.empty()) continue;
    // Expand every basis the level's block list touches (as a row or column
    // node) up front, in parallel, so the per-entry loop below only reads.
    std::vector<char> needed(static_cast<size_t>(t.nodes_at(l)), 0);
    for (index_t s = 0; s < t.nodes_at(l); ++s) {
      for (index_t j = 0; j < far.row_count(s); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(s)] + j;
        needed[static_cast<size_t>(s)] = 1;
        needed[static_cast<size_t>(far.col[static_cast<size_t>(e)])] = 1;
      }
    }
    std::vector<Matrix> expanded(static_cast<size_t>(t.nodes_at(l)));
    parallel_for(t.nodes_at(l), [&](index_t i) {
      if (needed[static_cast<size_t>(i)]) expanded[static_cast<size_t>(i)] = expand_basis(a, l, i);
    });
    // Every far entry writes a disjoint block of K (distinct (s, c) index
    // ranges), so the leaf-level densification runs one task per entry.
    parallel_for(far.count(), [&](index_t e) {
      index_t s = 0;
      while (far.row_ptr[static_cast<size_t>(s + 1)] <= e) ++s;
      const index_t c = far.col[static_cast<size_t>(e)];
      const Matrix& b = a.coupling[static_cast<size_t>(l)].host(e);
      Matrix ub(t.size(l, s), b.cols());
      la::gemm(1.0, expanded[static_cast<size_t>(s)].view(), la::Op::None, b.view(), la::Op::None,
               0.0, ub.view());
      la::gemm(1.0, ub.view(), la::Op::None, expanded[static_cast<size_t>(c)].view(),
               la::Op::Trans, 1.0,
               k.view().block(t.begin(l, s), t.begin(l, c), t.size(l, s), t.size(l, c)));
    });
  }

  const index_t leaf = t.leaf_level();
  const auto& near = a.mtree.near_leaf;
  for (index_t s = 0; s < t.nodes_at(leaf); ++s) {
    for (index_t j = 0; j < near.row_count(s); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(s)] + j;
      const index_t c = near.col[static_cast<size_t>(e)];
      copy(a.dense.host(e).view(),
           k.view().block(t.begin(leaf, s), t.begin(leaf, c), t.size(leaf, s), t.size(leaf, c)));
    }
  }
  return k;
}

} // namespace h2sketch::h2
