#pragma once

#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "la/lowrank.hpp"

/// \file update_sampler.hpp
/// The paper's third application (Fig. 5(c)): recompressing
///   K' = K_H2 + U V^T
/// into a fresh H2 matrix. The sketching operator is the fast H2 matvec
/// plus the low-rank product; the entry generator reads entries from both
/// representations. Both factors live in the tree's permuted position space.

namespace h2sketch::h2 {

/// Kblk for an H2 matrix plus a low-rank update.
class UpdatedH2Sampler final : public kern::MatVecSampler {
 public:
  /// Both referenced objects must outlive the sampler.
  UpdatedH2Sampler(const H2Matrix& a, const la::LowRank& update) : a_(&a), lr_(&update) {
    H2S_CHECK(update.rows() == a.size() && update.cols() == a.size(),
              "UpdatedH2Sampler: update shape mismatch");
  }

  index_t size() const override { return a_->size(); }
  void sample(ConstMatrixView omega, MatrixView y) override {
    h2_matvec(ctx_, *a_, omega, y);
    lr_->apply(1.0, omega, y);
    record_samples(omega.cols);
  }

 private:
  const H2Matrix* a_;
  const la::LowRank* lr_;
  batched::ExecutionContext ctx_;
};

/// batchedGen for an H2 matrix plus a low-rank update.
class UpdatedH2EntryGenerator final : public kern::EntryGenerator {
 public:
  UpdatedH2EntryGenerator(const H2Matrix& a, const la::LowRank& update)
      : base_(a), lr_(&update) {}

  void generate_block(const_index_span rows, const_index_span cols,
                      MatrixView out) const override {
    base_.generate_block(rows, cols, out);
    for (index_t j = 0; j < out.cols; ++j)
      for (index_t i = 0; i < out.rows; ++i)
        out(i, j) += lr_->entry(rows[static_cast<size_t>(i)], cols[static_cast<size_t>(j)]);
    record_entries(out.rows * out.cols);
  }

 private:
  H2EntryGenerator base_;
  const la::LowRank* lr_;
};

} // namespace h2sketch::h2
