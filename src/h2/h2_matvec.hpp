#pragma once

#include <mutex>

#include "batched/device.hpp"
#include "h2/h2_matrix.hpp"
#include "kernels/sampler.hpp"

/// \file h2_matvec.hpp
/// The O(N) H2 matrix-(multi)vector product: upward pass (project inputs
/// onto cluster bases through the transfer tree), per-level coupling phase
/// (block-sparse products with the B matrices), downward pass (expand
/// contributions back down), and the dense near-field phase. Each phase is
/// one batched launch per level — this is also the structure of the H2Opus
/// matvec the paper plugs in as Kblk.

namespace h2sketch::h2 {

/// y = A * x with x, y (N x d) in the tree's permuted position order.
void h2_matvec(batched::ExecutionContext& ctx, const H2Matrix& a, ConstMatrixView x,
               MatrixView y);

/// Convenience overload with an internal batched context.
void h2_matvec(const H2Matrix& a, ConstMatrixView x, MatrixView y);

/// Black-box sampler backed by the fast H2 matvec: the Kblk oracle for
/// reconstruction experiments and the error estimator.
class H2Sampler final : public kern::MatVecSampler {
 public:
  /// The H2 matrix must outlive the sampler. The embedded context binds to
  /// the device the matrix's arenas live on.
  explicit H2Sampler(const H2Matrix& a) : a_(&a), ctx_(a.execution_config()) {}

  index_t size() const override { return a_->size(); }
  void sample(ConstMatrixView omega, MatrixView y) override {
    // The embedded context (its workspace arena in particular) is mutable
    // shared state: serialize samples so one sampler instance may be shared
    // across threads. Callers wanting concurrency use h2_matvec directly
    // with per-thread contexts.
    std::lock_guard<std::mutex> lk(mu_);
    h2_matvec(ctx_, *a_, omega, y);
    record_samples(omega.cols);
  }

 private:
  const H2Matrix* a_;
  std::mutex mu_;
  batched::ExecutionContext ctx_;
};

} // namespace h2sketch::h2
