#pragma once

#include <memory>

#include "h2/h2_matrix.hpp"
#include "kernels/kernel.hpp"

/// \file cheb_construction.hpp
/// Deterministic H2 construction from tensor Chebyshev interpolation
/// (black-box FMM style). Every cluster carries the same rank q^dim; leaf
/// bases are Lagrange evaluations of the cluster's points at its box's
/// Chebyshev grid, transfer matrices interpolate child grids in parent
/// bases, and coupling blocks are kernel evaluations between grids.
///
/// Role in this repo: the paper uses an existing H2Opus-built H2 matrix as
/// the black-box sampler Kblk for the covariance/IE experiments; this
/// construction provides that input operator independently of the sketching
/// algorithm under test (see DESIGN.md substitutions).

namespace h2sketch::h2 {

/// Build a Chebyshev-interpolation H2 matrix with q interpolation nodes per
/// dimension (rank q^dim). Typical q: 4-6 for ~1e-4..1e-7 far-field accuracy
/// at eta <= 0.7.
H2Matrix build_cheb_h2(std::shared_ptr<const tree::ClusterTree> tree,
                       const tree::Admissibility& adm, const kern::KernelFunction& kernel,
                       index_t q);

} // namespace h2sketch::h2
