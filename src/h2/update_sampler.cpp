#include "h2/update_sampler.hpp"

// Header-only; anchors the object file.
namespace h2sketch::h2::detail {
void update_sampler_anchor() {}
} // namespace h2sketch::h2::detail
