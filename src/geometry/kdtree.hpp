#pragma once

#include <vector>

#include "geometry/bounding_box.hpp"
#include "geometry/point_cloud.hpp"

/// \file kdtree.hpp
/// Median-split KD clustering (paper §V-A: "the cluster tree is constructed
/// as a KD-tree"). Median splits keep the tree *perfect* (every leaf at the
/// same depth, sibling sizes within one point), which lets every level be
/// stored contiguously and processed with one batch per operation.

namespace h2sketch::geo {

/// One cluster: a contiguous range [begin, end) of the permuted point order
/// plus its tight bounding box.
struct KdNode {
  index_t begin = 0;
  index_t end = 0;
  BoundingBox box;

  index_t size() const { return end - begin; }
};

/// A perfect binary KD clustering stored in heap order
/// (root = node 0; children of i are 2i+1, 2i+2; level l spans
/// [2^l - 1, 2^{l+1} - 1)).
struct KdClustering {
  index_t num_levels = 0;        ///< root level 0 .. leaf level num_levels-1
  std::vector<index_t> perm;     ///< permuted position -> original point index
  std::vector<KdNode> nodes;     ///< heap order, size 2^num_levels - 1
};

/// Build the clustering: split along the widest box dimension at the median
/// until every leaf holds at most leaf_size points. leaf_size >= 1.
KdClustering build_kd_clustering(const PointCloud& pc, index_t leaf_size);

} // namespace h2sketch::geo
