#pragma once

#include <array>

#include "geometry/point_cloud.hpp"

/// \file bounding_box.hpp
/// Axis-aligned bounding boxes with the diameter/distance queries used by
/// the general admissibility condition (paper Eq. (1)).

namespace h2sketch::geo {

/// Axis-aligned box in up to 3 dimensions. Unused dimensions collapse to
/// [0, 0] so diameter/distance remain correct for 1D/2D point sets.
struct BoundingBox {
  std::array<real_t, 3> lo = {0, 0, 0};
  std::array<real_t, 3> hi = {0, 0, 0};
  index_t dim = 0;

  /// Smallest box containing the points at positions perm[begin..end).
  static BoundingBox of_points(const PointCloud& pc, const_index_span perm, index_t begin,
                               index_t end);

  /// Euclidean length of the box diagonal: D in the admissibility condition.
  real_t diameter() const;

  /// Euclidean gap between two boxes (0 if they intersect): Dist in Eq. (1).
  real_t distance(const BoundingBox& other) const;

  /// Midpoint along dimension d (0 for unused dimensions).
  real_t center(index_t d) const {
    return 0.5 * (lo[static_cast<size_t>(d)] + hi[static_cast<size_t>(d)]);
  }

  /// Largest Euclidean distance from point c (length dim) to any corner of
  /// the box: the radius of a ball around c guaranteed to contain the box.
  real_t max_corner_distance(const real_t* c) const;

  /// Index of the widest dimension (KD-tree split axis).
  index_t widest_dim() const;

  /// True if the point at position i (via perm) lies within the box.
  bool contains(const PointCloud& pc, index_t point) const;
};

} // namespace h2sketch::geo
