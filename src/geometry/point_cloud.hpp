#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

/// \file point_cloud.hpp
/// Point sets in 1-3 dimensions with the generators used by the paper's
/// experiments (uniform 3D distributions in a cube) and by the frontal-matrix
/// substitution (separator-plane grids).

namespace h2sketch::geo {

/// Dense set of n points in `dim` dimensions, stored point-major
/// (x0 y0 z0 x1 y1 z1 ...).
class PointCloud {
 public:
  PointCloud() = default;
  PointCloud(index_t n, index_t dim) : dim_(dim), coords_(static_cast<size_t>(n * dim), 0.0) {
    H2S_CHECK(dim >= 1 && dim <= 3, "PointCloud supports 1-3 dimensions");
  }

  index_t size() const { return dim_ == 0 ? 0 : static_cast<index_t>(coords_.size()) / dim_; }
  index_t dim() const { return dim_; }

  real_t& coord(index_t i, index_t d) { return coords_[static_cast<size_t>(i * dim_ + d)]; }
  real_t coord(index_t i, index_t d) const { return coords_[static_cast<size_t>(i * dim_ + d)]; }

  /// Euclidean distance between points i and j.
  real_t distance(index_t i, index_t j) const;

  const std::vector<real_t>& raw() const { return coords_; }

 private:
  index_t dim_ = 0;
  std::vector<real_t> coords_;
};

/// n points uniformly random in the unit cube [0,1]^dim.
PointCloud uniform_random_cube(index_t n, index_t dim, std::uint64_t seed);

/// Regular grid with `per_side` points per dimension in [0,1]^dim
/// (n = per_side^dim points total).
PointCloud uniform_grid(index_t per_side, index_t dim);

/// nx x ny grid on the plane z = z0 inside the unit cube; this is the
/// geometry of a 3D-grid separator, used by the synthetic frontal matrices.
PointCloud plane_grid(index_t nx, index_t ny, real_t z0);

/// n points on the unit sphere surface (Fibonacci spiral), for boundary-IE
/// style geometry tests.
PointCloud sphere_surface(index_t n);

} // namespace h2sketch::geo
