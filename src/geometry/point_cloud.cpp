#include "geometry/point_cloud.hpp"

#include <cmath>
#include <numbers>

#include "common/random.hpp"

namespace h2sketch::geo {

real_t PointCloud::distance(index_t i, index_t j) const {
  real_t s = 0.0;
  for (index_t d = 0; d < dim_; ++d) {
    const real_t diff = coord(i, d) - coord(j, d);
    s += diff * diff;
  }
  return std::sqrt(s);
}

PointCloud uniform_random_cube(index_t n, index_t dim, std::uint64_t seed) {
  PointCloud pc(n, dim);
  SmallRng rng(seed);
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < dim; ++d) pc.coord(i, d) = rng.next_real();
  return pc;
}

PointCloud uniform_grid(index_t per_side, index_t dim) {
  index_t n = 1;
  for (index_t d = 0; d < dim; ++d) n *= per_side;
  PointCloud pc(n, dim);
  const real_t h = per_side > 1 ? 1.0 / static_cast<real_t>(per_side - 1) : 0.0;
  for (index_t i = 0; i < n; ++i) {
    index_t rem = i;
    for (index_t d = 0; d < dim; ++d) {
      pc.coord(i, d) = static_cast<real_t>(rem % per_side) * h;
      rem /= per_side;
    }
  }
  return pc;
}

PointCloud plane_grid(index_t nx, index_t ny, real_t z0) {
  PointCloud pc(nx * ny, 3);
  const real_t hx = nx > 1 ? 1.0 / static_cast<real_t>(nx - 1) : 0.0;
  const real_t hy = ny > 1 ? 1.0 / static_cast<real_t>(ny - 1) : 0.0;
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t p = j * nx + i;
      pc.coord(p, 0) = static_cast<real_t>(i) * hx;
      pc.coord(p, 1) = static_cast<real_t>(j) * hy;
      pc.coord(p, 2) = z0;
    }
  }
  return pc;
}

PointCloud sphere_surface(index_t n) {
  PointCloud pc(n, 3);
  const real_t golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (index_t i = 0; i < n; ++i) {
    const real_t y = 1.0 - 2.0 * (static_cast<real_t>(i) + 0.5) / static_cast<real_t>(n);
    const real_t r = std::sqrt(std::max(0.0, 1.0 - y * y));
    const real_t th = golden * static_cast<real_t>(i);
    pc.coord(i, 0) = r * std::cos(th);
    pc.coord(i, 1) = y;
    pc.coord(i, 2) = r * std::sin(th);
  }
  return pc;
}

} // namespace h2sketch::geo
