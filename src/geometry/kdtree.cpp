#include "geometry/kdtree.hpp"

#include <algorithm>
#include <numeric>

namespace h2sketch::geo {

KdClustering build_kd_clustering(const PointCloud& pc, index_t leaf_size) {
  const index_t n = pc.size();
  H2S_CHECK(n > 0, "cannot cluster an empty point set");
  H2S_CHECK(leaf_size >= 1, "leaf_size must be positive");

  KdClustering t;
  // Depth so that ceil(n / 2^(L-1)) <= leaf_size, capped so every leaf keeps
  // at least one point (relevant only for tiny leaf_size).
  index_t levels = 1;
  index_t leaves = 1;
  while ((n + leaves - 1) / leaves > leaf_size && 2 * leaves <= n) {
    leaves *= 2;
    ++levels;
  }
  t.num_levels = levels;
  t.perm.resize(static_cast<size_t>(n));
  std::iota(t.perm.begin(), t.perm.end(), index_t{0});
  t.nodes.resize(static_cast<size_t>((index_t{1} << levels) - 1));

  // Iterative top-down split, level by level (the level-major order also
  // matches how the construction algorithm walks the tree).
  t.nodes[0].begin = 0;
  t.nodes[0].end = n;
  for (index_t l = 0; l < levels; ++l) {
    const index_t first = (index_t{1} << l) - 1;
    const index_t count = index_t{1} << l;
    for (index_t i = 0; i < count; ++i) {
      KdNode& node = t.nodes[static_cast<size_t>(first + i)];
      node.box = BoundingBox::of_points(pc, t.perm, node.begin, node.end);
      if (l + 1 == levels) continue; // leaf level: no split
      const index_t axis = node.box.widest_dim();
      const index_t half = node.begin + (node.size() + 1) / 2; // ceil half left
      auto* base = t.perm.data();
      std::nth_element(base + node.begin, base + half, base + node.end,
                       [&](index_t a, index_t b) { return pc.coord(a, axis) < pc.coord(b, axis); });
      KdNode& left = t.nodes[static_cast<size_t>(2 * (first + i) + 1)];
      KdNode& right = t.nodes[static_cast<size_t>(2 * (first + i) + 2)];
      left.begin = node.begin;
      left.end = half;
      right.begin = half;
      right.end = node.end;
    }
  }
  return t;
}

} // namespace h2sketch::geo
