#include "geometry/bounding_box.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace h2sketch::geo {

BoundingBox BoundingBox::of_points(const PointCloud& pc, const_index_span perm, index_t begin,
                                   index_t end) {
  BoundingBox b;
  b.dim = pc.dim();
  if (begin >= end) return b;
  for (index_t d = 0; d < b.dim; ++d) {
    b.lo[static_cast<size_t>(d)] = std::numeric_limits<real_t>::infinity();
    b.hi[static_cast<size_t>(d)] = -std::numeric_limits<real_t>::infinity();
  }
  for (index_t p = begin; p < end; ++p) {
    const index_t i = perm[static_cast<size_t>(p)];
    for (index_t d = 0; d < b.dim; ++d) {
      const real_t c = pc.coord(i, d);
      b.lo[static_cast<size_t>(d)] = std::min(b.lo[static_cast<size_t>(d)], c);
      b.hi[static_cast<size_t>(d)] = std::max(b.hi[static_cast<size_t>(d)], c);
    }
  }
  return b;
}

real_t BoundingBox::diameter() const {
  real_t s = 0.0;
  for (index_t d = 0; d < dim; ++d) {
    const real_t e = hi[static_cast<size_t>(d)] - lo[static_cast<size_t>(d)];
    s += e * e;
  }
  return std::sqrt(s);
}

real_t BoundingBox::distance(const BoundingBox& other) const {
  real_t s = 0.0;
  for (index_t d = 0; d < dim; ++d) {
    const real_t gap = std::max({0.0, lo[static_cast<size_t>(d)] - other.hi[static_cast<size_t>(d)],
                                 other.lo[static_cast<size_t>(d)] - hi[static_cast<size_t>(d)]});
    s += gap * gap;
  }
  return std::sqrt(s);
}

real_t BoundingBox::max_corner_distance(const real_t* c) const {
  real_t s = 0.0;
  for (index_t d = 0; d < dim; ++d) {
    const real_t e = std::max(std::abs(c[d] - lo[static_cast<size_t>(d)]),
                              std::abs(c[d] - hi[static_cast<size_t>(d)]));
    s += e * e;
  }
  return std::sqrt(s);
}

index_t BoundingBox::widest_dim() const {
  index_t best = 0;
  real_t w = -1.0;
  for (index_t d = 0; d < dim; ++d) {
    const real_t e = hi[static_cast<size_t>(d)] - lo[static_cast<size_t>(d)];
    if (e > w) {
      w = e;
      best = d;
    }
  }
  return best;
}

bool BoundingBox::contains(const PointCloud& pc, index_t point) const {
  for (index_t d = 0; d < dim; ++d) {
    const real_t c = pc.coord(point, d);
    if (c < lo[static_cast<size_t>(d)] - 1e-14 || c > hi[static_cast<size_t>(d)] + 1e-14)
      return false;
  }
  return true;
}

} // namespace h2sketch::geo
