#pragma once

#include "geometry/point_cloud.hpp"
#include "sparse/csr.hpp"

/// \file poisson.hpp
/// Finite-difference Poisson operators on uniform grids with homogeneous
/// Dirichlet boundary (5-point stencil in 2D, 7-point in 3D): the sparse
/// matrices whose multifrontal fronts the paper compresses.

namespace h2sketch::sparse {

/// Uniform grid description. Grid point (i, j, k) has linear index
/// i + j*nx + k*nx*ny.
struct Grid {
  index_t nx = 0, ny = 0, nz = 1; ///< nz == 1 means 2D
  index_t size() const { return nx * ny * nz; }
  bool is_3d() const { return nz > 1; }

  /// Coordinates of a grid point in the unit cube.
  void coords(index_t p, real_t* xyz) const;
};

/// Assemble the (SPD) Dirichlet Laplacian: diagonal 2*dim, off-diagonal -1
/// per grid neighbour.
CsrMatrix poisson_matrix(const Grid& g);

/// Point cloud of a subset of grid points (for clustering fronts).
geo::PointCloud grid_points(const Grid& g, const_index_span subset);

} // namespace h2sketch::sparse
