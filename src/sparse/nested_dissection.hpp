#pragma once

#include <vector>

#include "sparse/poisson.hpp"

/// \file nested_dissection.hpp
/// Geometric nested dissection of a uniform grid: recursive mid-plane
/// separators down to small interior subdomains. Drives the multifrontal
/// factorization whose root front is the paper's frontal-matrix workload.

namespace h2sketch::sparse {

/// One node of the separator tree. Internal nodes own a separator plane;
/// leaves own an entire small subdomain.
struct NdNode {
  std::vector<index_t> vars; ///< grid indices owned by this node
  index_t left = -1;
  index_t right = -1;
  index_t parent = -1;
  bool is_leaf() const { return left < 0; }
};

struct NdTree {
  std::vector<NdNode> nodes;
  index_t root = -1;
  /// Children-before-parents traversal order.
  std::vector<index_t> postorder;

  /// Every grid variable appears in exactly one node.
  index_t total_vars() const;
};

/// Build the separator tree; subdomains with at most `max_leaf` points stop
/// recursing.
NdTree nested_dissection(const Grid& g, index_t max_leaf);

} // namespace h2sketch::sparse
