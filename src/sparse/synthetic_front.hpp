#pragma once

#include "geometry/point_cloud.hpp"
#include "kernels/kernels.hpp"
#include "sparse/csr.hpp"

/// \file synthetic_front.hpp
/// Synthetic stand-in for large multifrontal root fronts. The root front of
/// a 3D Poisson problem is the Schur complement of the top separator plane —
/// a dense discretization of a Dirichlet-to-Neumann-type boundary operator,
/// whose admissible blocks have the same smooth-kernel rank structure as a
/// 1/r kernel on the plane. For front sizes whose parent grids would be too
/// expensive to factor exactly, we substitute that kernel matrix on the
/// separator geometry (see DESIGN.md substitution table); small fronts are
/// produced exactly by multifrontal_root_front and validate the substitute's
/// rank behaviour in tests.

namespace h2sketch::sparse {

struct SyntheticFront {
  geo::PointCloud points; ///< nx x ny separator-plane grid points (3D coords)
  real_t diagonal;        ///< self term, scaled like the DtN diagonal ~ 2/h
};

/// Build the synthetic separator plane with nx x ny points.
SyntheticFront make_synthetic_front(index_t nx, index_t ny);

/// The kernel to evaluate entries of the synthetic front.
kern::Laplace3dKernel synthetic_front_kernel(const SyntheticFront& f);

} // namespace h2sketch::sparse
