#include "sparse/csr.hpp"

#include <algorithm>
#include <tuple>

namespace h2sketch::sparse {

void CsrMatrix::spmv(const_real_span x, real_span y) const {
  H2S_CHECK(static_cast<index_t>(x.size()) == n && static_cast<index_t>(y.size()) == n,
            "spmv: size mismatch");
  for (index_t i = 0; i < n; ++i) {
    real_t s = 0.0;
    for (index_t e = row_ptr[static_cast<size_t>(i)]; e < row_ptr[static_cast<size_t>(i + 1)]; ++e)
      s += val[static_cast<size_t>(e)] * x[static_cast<size_t>(col[static_cast<size_t>(e)])];
    y[static_cast<size_t>(i)] = s;
  }
}

real_t CsrMatrix::at(index_t i, index_t j) const {
  const auto lo = col.begin() + row_ptr[static_cast<size_t>(i)];
  const auto hi = col.begin() + row_ptr[static_cast<size_t>(i + 1)];
  const auto it = std::lower_bound(lo, hi, j);
  if (it != hi && *it == j) return val[static_cast<size_t>(it - col.begin())];
  return 0.0;
}

Matrix CsrMatrix::densify() const {
  Matrix d(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t e = row_ptr[static_cast<size_t>(i)]; e < row_ptr[static_cast<size_t>(i + 1)]; ++e)
      d(i, col[static_cast<size_t>(e)]) += val[static_cast<size_t>(e)];
  return d;
}

bool CsrMatrix::is_symmetric() const {
  for (index_t i = 0; i < n; ++i)
    for (index_t e = row_ptr[static_cast<size_t>(i)]; e < row_ptr[static_cast<size_t>(i + 1)]; ++e)
      if (at(col[static_cast<size_t>(e)], i) != val[static_cast<size_t>(e)]) return false;
  return true;
}

CsrMatrix CsrMatrix::from_triplets(index_t n,
                                   std::vector<std::tuple<index_t, index_t, real_t>> triplets) {
  std::sort(triplets.begin(), triplets.end(), [](const auto& a, const auto& b) {
    return std::tie(std::get<0>(a), std::get<1>(a)) < std::tie(std::get<0>(b), std::get<1>(b));
  });
  CsrMatrix m;
  m.n = n;
  m.row_ptr.assign(static_cast<size_t>(n + 1), 0);
  for (size_t k = 0; k < triplets.size();) {
    const auto [i, j, v0] = triplets[k];
    H2S_CHECK(i >= 0 && i < n && j >= 0 && j < n, "triplet out of range");
    real_t v = 0.0;
    size_t k2 = k;
    while (k2 < triplets.size() && std::get<0>(triplets[k2]) == i &&
           std::get<1>(triplets[k2]) == j) {
      v += std::get<2>(triplets[k2]);
      ++k2;
    }
    m.col.push_back(j);
    m.val.push_back(v);
    ++m.row_ptr[static_cast<size_t>(i + 1)];
    k = k2;
  }
  for (index_t i = 0; i < n; ++i)
    m.row_ptr[static_cast<size_t>(i + 1)] += m.row_ptr[static_cast<size_t>(i)];
  return m;
}

} // namespace h2sketch::sparse
