#include "sparse/synthetic_front.hpp"

namespace h2sketch::sparse {

SyntheticFront make_synthetic_front(index_t nx, index_t ny) {
  SyntheticFront f{geo::plane_grid(nx, ny, 0.5), 0.0};
  // Diagonal ~ 2/h keeps the diagonal dominant at the grid scale, like the
  // discrete DtN operator.
  f.diagonal = 2.0 * static_cast<real_t>(std::max(nx, ny));
  return f;
}

kern::Laplace3dKernel synthetic_front_kernel(const SyntheticFront& f) {
  return kern::Laplace3dKernel(f.diagonal);
}

} // namespace h2sketch::sparse
