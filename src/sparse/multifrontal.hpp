#pragma once

#include <memory>

#include "core/stats.hpp"
#include "solver/hss_construction.hpp"
#include "solver/ulv.hpp"
#include "sparse/nested_dissection.hpp"

/// \file multifrontal.hpp
/// Dense-front multifrontal partial Cholesky over a nested-dissection tree.
/// Each front assembles the original entries of its eliminated variables
/// plus the children's update (Schur) matrices via extend-add, eliminates
/// its variables, and passes the update up. The fully-assembled *root*
/// frontal matrix — the Schur complement of the top separator — is the
/// dense matrix the paper's frontal-matrix experiments compress.
///
/// With `compress_root` the root front is not factored densely: it is
/// HSS-compressed (solver/hss_construction.hpp) over the separator geometry
/// and ULV-factored (solver/ulv.hpp), and solve() routes the root block
/// through the ULV sweeps — the end-to-end Fig. 6(b) story, where the
/// compressed front actually serves a solver instead of only a memory
/// comparison.

namespace h2sketch::sparse {

struct Front {
  std::vector<index_t> sep; ///< variables eliminated at this front
  std::vector<index_t> bd;  ///< boundary variables (stay in the parent)
};

struct MultifrontalOptions {
  index_t max_leaf = 64; ///< nested-dissection subdomain size
  /// Keep every front's factor panels so the result supports solve().
  bool keep_factors = false;
  /// HSS-compress + ULV-factor the root front instead of dense partial
  /// Cholesky (requires keep_factors for the solve path to be useful).
  bool compress_root = false;
  real_t root_tol = 1e-9;      ///< HSS compression tolerance for the root
  index_t root_leaf_size = 32; ///< cluster-tree leaf size over the separator
};

/// The compressed-root state: the HSS form, its ULV factorization, and the
/// separator-geometry permutation tying them to root_vars order.
struct RootCompression {
  solver::HssMatrix hss;
  solver::UlvCholesky ulv;
  /// permuted position -> index into root_vars (the cluster tree's perm).
  std::vector<index_t> perm;
  core::ConstructionStats stats; ///< HSS construction statistics
};

struct MultifrontalResult {
  NdTree tree;
  std::vector<Front> fronts; ///< parallel to tree.nodes

  /// Assembled root frontal matrix (original entries + all extend-adds),
  /// i.e. the Schur complement of the root separator onto itself, before
  /// elimination.
  Matrix root_front;
  /// Grid indices of the root separator (row/col order of root_front).
  std::vector<index_t> root_vars;

  /// Factor panels per front (only with keep_factors): the partially
  /// factored front [L11 0; L21 I] with the root fully factored. With
  /// compress_root the root entry stays empty and root_ulv holds the
  /// factorization instead.
  std::vector<Matrix> factors;

  /// Set when compress_root was requested (and keep_factors).
  std::unique_ptr<RootCompression> root_ulv;

  /// Solve A x = b using the stored factors (requires keep_factors).
  /// Forward substitution walks fronts bottom-up, backward top-down; a
  /// compressed root solves through the ULV sweeps.
  void solve(const_real_span b, real_span x) const;
};

/// Run nested dissection + numeric multifrontal partial factorization.
/// The matrix must be SPD on the grid (the Poisson operators are).
MultifrontalResult multifrontal_root_front(const CsrMatrix& a, const Grid& g,
                                           const MultifrontalOptions& opts);

} // namespace h2sketch::sparse
