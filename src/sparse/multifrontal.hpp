#pragma once

#include "sparse/nested_dissection.hpp"

/// \file multifrontal.hpp
/// Dense-front multifrontal partial Cholesky over a nested-dissection tree.
/// Each front assembles the original entries of its eliminated variables
/// plus the children's update (Schur) matrices via extend-add, eliminates
/// its variables, and passes the update up. The fully-assembled *root*
/// frontal matrix — the Schur complement of the top separator — is the
/// dense matrix the paper's frontal-matrix experiments compress.

namespace h2sketch::sparse {

struct Front {
  std::vector<index_t> sep; ///< variables eliminated at this front
  std::vector<index_t> bd;  ///< boundary variables (stay in the parent)
};

struct MultifrontalOptions {
  index_t max_leaf = 64; ///< nested-dissection subdomain size
  /// Keep every front's factor panels so the result supports solve().
  bool keep_factors = false;
};

struct MultifrontalResult {
  NdTree tree;
  std::vector<Front> fronts; ///< parallel to tree.nodes

  /// Assembled root frontal matrix (original entries + all extend-adds),
  /// i.e. the Schur complement of the root separator onto itself, before
  /// elimination.
  Matrix root_front;
  /// Grid indices of the root separator (row/col order of root_front).
  std::vector<index_t> root_vars;

  /// Factor panels per front (only with keep_factors): the partially
  /// factored front [L11 0; L21 I] with the root fully factored.
  std::vector<Matrix> factors;

  /// Solve A x = b using the stored factors (requires keep_factors).
  /// Forward substitution walks fronts bottom-up, backward top-down.
  void solve(const_real_span b, real_span x) const;
};

/// Run nested dissection + numeric multifrontal partial factorization.
/// The matrix must be SPD on the grid (the Poisson operators are).
MultifrontalResult multifrontal_root_front(const CsrMatrix& a, const Grid& g,
                                           const MultifrontalOptions& opts);

} // namespace h2sketch::sparse
