#include "sparse/multifrontal.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/dense_sampler.hpp"
#include "la/blas.hpp"

namespace h2sketch::sparse {

namespace {

/// Partial right-looking Cholesky: eliminate the leading ns variables of F;
/// on exit the trailing block holds the Schur complement (symmetric).
void partial_cholesky(MatrixView f, index_t ns) {
  const index_t nf = f.rows;
  for (index_t k = 0; k < ns; ++k) {
    const real_t d = f(k, k);
    H2S_CHECK(d > 0.0, "multifrontal: non-positive pivot");
    const real_t inv = 1.0 / std::sqrt(d);
    for (index_t i = k; i < nf; ++i) f(i, k) *= inv;
    for (index_t j = k + 1; j < nf; ++j) {
      const real_t ljk = f(j, k);
      if (ljk == 0.0) continue;
      for (index_t i = j; i < nf; ++i) f(i, j) -= f(i, k) * ljk;
    }
  }
  // Symmetrize the trailing block (only the lower half was updated).
  for (index_t j = ns; j < nf; ++j)
    for (index_t i = j + 1; i < nf; ++i) f(j, i) = f(i, j);
}

/// HSS-compress + ULV-factor the assembled root front over the separator's
/// grid geometry (the compressed-front serving path of Fig. 6(b)).
std::unique_ptr<RootCompression> compress_root_front(const Matrix& root_front,
                                                     const std::vector<index_t>& root_vars,
                                                     const Grid& g,
                                                     const MultifrontalOptions& opts) {
  const index_t nv = static_cast<index_t>(root_vars.size());
  auto tr = std::make_shared<tree::ClusterTree>(
      tree::ClusterTree::build(grid_points(g, root_vars), opts.root_leaf_size));

  // The construction operates in tree-permuted position space: permute the
  // front once, then hand it to the dense sampler/entry-generator pair.
  auto out = std::make_unique<RootCompression>();
  out->perm = tr->perm();
  Matrix permuted(nv, nv);
  gather_block(root_front.view(), out->perm, out->perm, permuted.view());

  kern::DenseMatrixSampler sampler(permuted.view());
  kern::DenseEntryGenerator gen(permuted.view());
  core::ConstructionOptions copts;
  copts.tol = opts.root_tol;
  copts.sample_block = 32;
  copts.initial_samples = 64;
  auto res = solver::build_hss(tr, sampler, gen, copts);
  out->ulv = solver::ulv_factor(res.matrix);
  out->stats = std::move(res.stats);
  out->hss = std::move(res.matrix);
  return out;
}

} // namespace

MultifrontalResult multifrontal_root_front(const CsrMatrix& a, const Grid& g,
                                           const MultifrontalOptions& opts) {
  MultifrontalResult out;
  out.tree = nested_dissection(g, opts.max_leaf);
  H2S_CHECK(out.tree.total_vars() == a.n, "dissection must cover all variables");
  const index_t nnodes = static_cast<index_t>(out.tree.nodes.size());
  out.fronts.resize(static_cast<size_t>(nnodes));

  // Subtree variable sets (for boundary computation), bottom-up.
  std::vector<std::vector<index_t>> subtree(static_cast<size_t>(nnodes));
  for (index_t id : out.tree.postorder) {
    const NdNode& node = out.tree.nodes[static_cast<size_t>(id)];
    auto& sv = subtree[static_cast<size_t>(id)];
    sv = node.vars;
    if (!node.is_leaf()) {
      const auto& l = subtree[static_cast<size_t>(node.left)];
      const auto& r = subtree[static_cast<size_t>(node.right)];
      sv.insert(sv.end(), l.begin(), l.end());
      sv.insert(sv.end(), r.begin(), r.end());
    }
    std::sort(sv.begin(), sv.end());
  }

  // Boundary of each node: neighbours of its subtree outside the subtree.
  std::vector<uint8_t> in_subtree(static_cast<size_t>(a.n), 0);
  for (index_t id = 0; id < nnodes; ++id) {
    const auto& sv = subtree[static_cast<size_t>(id)];
    for (index_t v : sv) in_subtree[static_cast<size_t>(v)] = 1;
    std::vector<index_t> bd;
    for (index_t v : sv)
      for (index_t e = a.row_ptr[static_cast<size_t>(v)]; e < a.row_ptr[static_cast<size_t>(v + 1)];
           ++e) {
        const index_t u = a.col[static_cast<size_t>(e)];
        if (!in_subtree[static_cast<size_t>(u)]) bd.push_back(u);
      }
    std::sort(bd.begin(), bd.end());
    bd.erase(std::unique(bd.begin(), bd.end()), bd.end());
    out.fronts[static_cast<size_t>(id)].sep = out.tree.nodes[static_cast<size_t>(id)].vars;
    out.fronts[static_cast<size_t>(id)].bd = std::move(bd);
    for (index_t v : sv) in_subtree[static_cast<size_t>(v)] = 0;
  }

  // Numeric sweep. updates[id] holds the child's Schur matrix until consumed.
  std::vector<Matrix> updates(static_cast<size_t>(nnodes));
  std::vector<index_t> local(static_cast<size_t>(a.n), -1);
  if (opts.keep_factors) out.factors.resize(static_cast<size_t>(nnodes));

  for (index_t id : out.tree.postorder) {
    const Front& fr = out.fronts[static_cast<size_t>(id)];
    const index_t ns = static_cast<index_t>(fr.sep.size());
    const index_t nb = static_cast<index_t>(fr.bd.size());
    const index_t nf = ns + nb;
    std::vector<index_t> fvars = fr.sep;
    fvars.insert(fvars.end(), fr.bd.begin(), fr.bd.end());
    for (index_t i = 0; i < nf; ++i) local[static_cast<size_t>(fvars[static_cast<size_t>(i)])] = i;

    Matrix f(nf, nf);
    // Original entries involving an eliminated variable.
    for (index_t i = 0; i < ns; ++i) {
      const index_t v = fvars[static_cast<size_t>(i)];
      for (index_t e = a.row_ptr[static_cast<size_t>(v)]; e < a.row_ptr[static_cast<size_t>(v + 1)];
           ++e) {
        const index_t u = a.col[static_cast<size_t>(e)];
        const index_t lu = local[static_cast<size_t>(u)];
        if (lu < 0) continue;
        f(i, lu) = a.val[static_cast<size_t>(e)];
        f(lu, i) = a.val[static_cast<size_t>(e)];
      }
    }
    // Extend-add children updates.
    const NdNode& node = out.tree.nodes[static_cast<size_t>(id)];
    if (!node.is_leaf()) {
      for (index_t child : {node.left, node.right}) {
        const Front& cf = out.fronts[static_cast<size_t>(child)];
        Matrix& up = updates[static_cast<size_t>(child)];
        for (size_t j = 0; j < cf.bd.size(); ++j) {
          const index_t lj = local[static_cast<size_t>(cf.bd[j])];
          H2S_CHECK(lj >= 0, "extend-add target missing from parent front");
          for (size_t i = 0; i < cf.bd.size(); ++i) {
            const index_t li = local[static_cast<size_t>(cf.bd[i])];
            f(li, lj) += up(static_cast<index_t>(i), static_cast<index_t>(j));
          }
        }
        up = Matrix(); // release
      }
    }

    if (id == out.tree.root) {
      H2S_CHECK(nb == 0, "root front must have empty boundary");
      out.root_front = to_matrix(f.view());
      out.root_vars = fr.sep;
      if (opts.keep_factors) {
        if (opts.compress_root) {
          out.root_ulv = compress_root_front(out.root_front, out.root_vars, g, opts);
        } else {
          partial_cholesky(f.view(), ns);
          out.factors[static_cast<size_t>(id)] = std::move(f);
        }
      }
    } else {
      partial_cholesky(f.view(), ns);
      updates[static_cast<size_t>(id)] = to_matrix(f.view().block(ns, ns, nb, nb));
      if (opts.keep_factors) out.factors[static_cast<size_t>(id)] = std::move(f);
    }
    for (index_t i = 0; i < nf; ++i) local[static_cast<size_t>(fvars[static_cast<size_t>(i)])] = -1;
  }
  return out;
}

void MultifrontalResult::solve(const_real_span b, real_span x) const {
  H2S_CHECK(!factors.empty() &&
                (root_ulv != nullptr || !factors[static_cast<size_t>(tree.root)].empty()),
            "solve requires keep_factors = true at factorization time");
  H2S_CHECK(b.size() == x.size(), "solve: size mismatch");
  std::vector<real_t> w(b.begin(), b.end());

  // Forward: L z = b, fronts bottom-up. Each front solves its L11 block and
  // pushes the L21 contribution onto its boundary variables. A compressed
  // root is not eliminated here: its fully-assembled system solves in one
  // ULV sweep during the backward pass below.
  for (index_t id : tree.postorder) {
    if (id == tree.root && root_ulv) continue;
    const Front& fr = fronts[static_cast<size_t>(id)];
    const Matrix& f = factors[static_cast<size_t>(id)];
    const index_t ns = static_cast<index_t>(fr.sep.size());
    const index_t nb = static_cast<index_t>(fr.bd.size());
    std::vector<real_t> y(static_cast<size_t>(ns));
    for (index_t k = 0; k < ns; ++k) {
      real_t s = w[static_cast<size_t>(fr.sep[static_cast<size_t>(k)])];
      for (index_t p = 0; p < k; ++p) s -= f(k, p) * y[static_cast<size_t>(p)];
      y[static_cast<size_t>(k)] = s / f(k, k);
    }
    for (index_t k = 0; k < ns; ++k)
      w[static_cast<size_t>(fr.sep[static_cast<size_t>(k)])] = y[static_cast<size_t>(k)];
    for (index_t i = 0; i < nb; ++i) {
      real_t s = 0.0;
      for (index_t k = 0; k < ns; ++k) s += f(ns + i, k) * y[static_cast<size_t>(k)];
      w[static_cast<size_t>(fr.bd[static_cast<size_t>(i)])] -= s;
    }
  }

  // Backward: L^T x = z, fronts top-down (ancestor variables solve first).
  for (auto it = tree.postorder.rbegin(); it != tree.postorder.rend(); ++it) {
    const index_t id = *it;
    if (id == tree.root && root_ulv) {
      // Root system F_root x_root = w_root through the ULV factorization of
      // the HSS-compressed front, in separator-permuted order.
      const auto& rc = *root_ulv;
      const size_t nv = root_vars.size();
      std::vector<real_t> bp(nv), xp(nv);
      for (size_t p = 0; p < nv; ++p)
        bp[p] = w[static_cast<size_t>(root_vars[static_cast<size_t>(rc.perm[p])])];
      rc.ulv.solve(bp, xp);
      for (size_t p = 0; p < nv; ++p)
        x[static_cast<size_t>(root_vars[static_cast<size_t>(rc.perm[p])])] = xp[p];
      continue;
    }
    const Front& fr = fronts[static_cast<size_t>(id)];
    const Matrix& f = factors[static_cast<size_t>(id)];
    const index_t ns = static_cast<index_t>(fr.sep.size());
    const index_t nb = static_cast<index_t>(fr.bd.size());
    std::vector<real_t> rhs(static_cast<size_t>(ns));
    for (index_t k = 0; k < ns; ++k) {
      real_t s = w[static_cast<size_t>(fr.sep[static_cast<size_t>(k)])];
      for (index_t i = 0; i < nb; ++i)
        s -= f(ns + i, k) * x[static_cast<size_t>(fr.bd[static_cast<size_t>(i)])];
      rhs[static_cast<size_t>(k)] = s;
    }
    for (index_t k = ns - 1; k >= 0; --k) {
      real_t s = rhs[static_cast<size_t>(k)];
      for (index_t p = k + 1; p < ns; ++p)
        s -= f(p, k) * x[static_cast<size_t>(fr.sep[static_cast<size_t>(p)])];
      x[static_cast<size_t>(fr.sep[static_cast<size_t>(k)])] = s / f(k, k);
    }
  }
}

} // namespace h2sketch::sparse
