#pragma once

#include <tuple>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file csr.hpp
/// Compressed-sparse-row matrices: the substrate for the paper's third test
/// problem (frontal matrices of a multifrontal factorization of a uniform-
/// grid 3D Poisson problem).

namespace h2sketch::sparse {

/// Square CSR matrix with sorted column indices per row.
struct CsrMatrix {
  index_t n = 0;
  std::vector<index_t> row_ptr; ///< size n+1
  std::vector<index_t> col;
  std::vector<real_t> val;

  index_t nnz() const { return static_cast<index_t>(col.size()); }

  /// y = A x.
  void spmv(const_real_span x, real_span y) const;

  /// Entry (i, j) or 0 if absent (binary search over the sorted row).
  real_t at(index_t i, index_t j) const;

  /// Dense copy (tests, small n).
  Matrix densify() const;

  /// Structural + value symmetry check (exact equality).
  bool is_symmetric() const;

  /// Build from (i, j, v) triplets; duplicate entries are summed.
  static CsrMatrix from_triplets(index_t n,
                                 std::vector<std::tuple<index_t, index_t, real_t>> triplets);
};

} // namespace h2sketch::sparse
