#include "sparse/poisson.hpp"

namespace h2sketch::sparse {

void Grid::coords(index_t p, real_t* xyz) const {
  const index_t i = p % nx;
  const index_t j = (p / nx) % ny;
  const index_t k = p / (nx * ny);
  xyz[0] = nx > 1 ? static_cast<real_t>(i) / static_cast<real_t>(nx - 1) : 0.0;
  xyz[1] = ny > 1 ? static_cast<real_t>(j) / static_cast<real_t>(ny - 1) : 0.0;
  xyz[2] = nz > 1 ? static_cast<real_t>(k) / static_cast<real_t>(nz - 1) : 0.0;
}

CsrMatrix poisson_matrix(const Grid& g) {
  const index_t dim = g.is_3d() ? 3 : 2;
  std::vector<std::tuple<index_t, index_t, real_t>> trip;
  trip.reserve(static_cast<size_t>(g.size() * (2 * dim + 1)));
  for (index_t k = 0; k < g.nz; ++k) {
    for (index_t j = 0; j < g.ny; ++j) {
      for (index_t i = 0; i < g.nx; ++i) {
        const index_t p = i + j * g.nx + k * g.nx * g.ny;
        trip.emplace_back(p, p, 2.0 * static_cast<real_t>(dim));
        if (i > 0) trip.emplace_back(p, p - 1, -1.0);
        if (i + 1 < g.nx) trip.emplace_back(p, p + 1, -1.0);
        if (j > 0) trip.emplace_back(p, p - g.nx, -1.0);
        if (j + 1 < g.ny) trip.emplace_back(p, p + g.nx, -1.0);
        if (k > 0) trip.emplace_back(p, p - g.nx * g.ny, -1.0);
        if (k + 1 < g.nz) trip.emplace_back(p, p + g.nx * g.ny, -1.0);
      }
    }
  }
  return CsrMatrix::from_triplets(g.size(), std::move(trip));
}

geo::PointCloud grid_points(const Grid& g, const_index_span subset) {
  const index_t dim = g.is_3d() ? 3 : 2;
  geo::PointCloud pc(static_cast<index_t>(subset.size()), dim);
  for (size_t s = 0; s < subset.size(); ++s) {
    real_t xyz[3];
    g.coords(subset[s], xyz);
    for (index_t d = 0; d < dim; ++d) pc.coord(static_cast<index_t>(s), d) = xyz[d];
  }
  return pc;
}

} // namespace h2sketch::sparse
