#include "sparse/nested_dissection.hpp"

namespace h2sketch::sparse {

namespace {

struct Box {
  index_t lo[3];
  index_t hi[3]; ///< exclusive
  index_t volume() const { return (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]); }
  index_t widest() const {
    index_t best = 0, w = hi[0] - lo[0];
    for (index_t d = 1; d < 3; ++d)
      if (hi[d] - lo[d] > w) {
        w = hi[d] - lo[d];
        best = d;
      }
    return best;
  }
};

std::vector<index_t> box_vars(const Grid& g, const Box& b) {
  std::vector<index_t> v;
  v.reserve(static_cast<size_t>(b.volume()));
  for (index_t k = b.lo[2]; k < b.hi[2]; ++k)
    for (index_t j = b.lo[1]; j < b.hi[1]; ++j)
      for (index_t i = b.lo[0]; i < b.hi[0]; ++i) v.push_back(i + j * g.nx + k * g.nx * g.ny);
  return v;
}

index_t build(const Grid& g, const Box& box, index_t max_leaf, index_t parent, NdTree& t) {
  const index_t id = static_cast<index_t>(t.nodes.size());
  t.nodes.emplace_back();
  t.nodes[static_cast<size_t>(id)].parent = parent;

  const index_t axis = box.widest();
  if (box.volume() <= max_leaf || box.hi[axis] - box.lo[axis] < 3) {
    t.nodes[static_cast<size_t>(id)].vars = box_vars(g, box);
    t.postorder.push_back(id);
    return id;
  }
  const index_t mid = (box.lo[axis] + box.hi[axis]) / 2;
  Box sep = box, left = box, right = box;
  sep.lo[axis] = mid;
  sep.hi[axis] = mid + 1;
  left.hi[axis] = mid;
  right.lo[axis] = mid + 1;

  const index_t lid = build(g, left, max_leaf, id, t);
  const index_t rid = build(g, right, max_leaf, id, t);
  NdNode& node = t.nodes[static_cast<size_t>(id)];
  node.left = lid;
  node.right = rid;
  node.vars = box_vars(g, sep);
  t.postorder.push_back(id);
  return id;
}

} // namespace

index_t NdTree::total_vars() const {
  index_t n = 0;
  for (const auto& node : nodes) n += static_cast<index_t>(node.vars.size());
  return n;
}

NdTree nested_dissection(const Grid& g, index_t max_leaf) {
  H2S_CHECK(g.size() > 0, "empty grid");
  NdTree t;
  Box whole{{0, 0, 0}, {g.nx, g.ny, g.nz}};
  t.root = build(g, whole, max_leaf, -1, t);
  return t;
}

} // namespace h2sketch::sparse
