#pragma once

#include <mutex>

#include "common/timer.hpp"

/// \file clock.hpp
/// Injectable monotonic time for the serving layer. The coalescer's flush
/// and request deadlines and the operator cache's failure cooldown both
/// read time through this interface, so tests drive every time-dependent
/// policy with a ManualClock instead of real sleeps.

namespace h2sketch::serve {

/// Injectable time source (seconds, monotonic).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const = 0;
};

/// Real time (common/timer.hpp steady clock).
class SteadyClock final : public Clock {
 public:
  double now() const override { return wall_seconds(); }
};

/// Hand-cranked clock for deterministic tests. Pair it with manual_pump —
/// threaded lanes convert deadlines to real waits.
class ManualClock final : public Clock {
 public:
  double now() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return t_;
  }
  void advance(double dt) {
    std::lock_guard<std::mutex> lk(mu_);
    t_ += dt;
  }
  void set(double t) {
    std::lock_guard<std::mutex> lk(mu_);
    t_ = t;
  }

 private:
  mutable std::mutex mu_;
  double t_ = 0.0;
};

} // namespace h2sketch::serve
