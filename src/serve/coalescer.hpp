#pragma once

#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/errors.hpp"
#include "common/types.hpp"
#include "serve/clock.hpp"
#include "serve/operator_cache.hpp"

/// \file coalescer.hpp
/// The serve-many half of the serving story: a bounded submission queue
/// that coalesces concurrent single-RHS matvec/solve requests against a
/// cached operator into one blocked launch (`HssMatrix::matvec` /
/// `UlvCholesky::solve_many`) per tick. Requests are grouped by
/// (operator, kind); a group flushes when it reaches `max_batch` RHS
/// (flush-on-full) or when its oldest request has waited `max_delay`
/// (flush-on-timeout). Dispatch fans across `lanes` threads, each owning a
/// private ExecutionContext per backend — the coalesced launches themselves
/// then spread over the context's internal streams.
///
/// Two drive modes:
///  * threaded (default): `lanes` dispatcher threads tick on a steady
///    clock; `submit` applies backpressure by blocking while the queue is
///    at capacity.
///  * manual_pump: no threads; tests call `pump()`/`drain()` themselves
///    with an injected ManualClock, so flush-on-timeout is exercised
///    deterministically with no real sleeps.

namespace h2sketch::serve {

enum class RequestKind { Matvec, Solve };

struct CoalescerOptions {
  index_t max_batch = 16;          ///< flush a group at this many queued RHS
  double max_delay_seconds = 1e-3; ///< flush a group when its oldest request is this late
  std::size_t queue_capacity = 4096; ///< total queued requests before backpressure
  int lanes = 1;                   ///< dispatcher threads (ignored under manual_pump)
  bool manual_pump = false;        ///< no threads; caller drives pump()/drain()
  /// Per-request deadline: a request still queued this long after submit
  /// fails with `DeadlineExceededError` instead of dispatching (load
  /// shedding — a client long past its own timeout should not consume a
  /// launch slot). 0 (default) disables deadlines.
  double request_deadline_seconds = 0.0;
};

/// Request coalescer. `submit` is thread-safe from any number of client
/// threads. The x/y buffers behind a request must stay valid until its
/// future resolves; results land in y in the operator tree's permuted
/// position order (like solve/h2_matvec).
class Coalescer {
 public:
  explicit Coalescer(CoalescerOptions opts, std::shared_ptr<const Clock> clock = nullptr);
  ~Coalescer();
  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Enqueue one single-RHS request (x, y length-N). The returned future
  /// resolves when y is written (or carries the launch's exception). Blocks
  /// while the queue is at capacity (throws `QueueFullError` — carrying the
  /// observed depth — instead under manual_pump, where nothing would ever
  /// drain the queue while the caller blocks).
  std::future<void> submit(OperatorHandle op, RequestKind kind, const_real_span x, real_span y);

  /// Dispatch every group that is ready (full or expired) on the caller's
  /// thread; returns requests completed. Manual mode's tick — call from one
  /// thread at a time.
  index_t pump();

  /// Dispatch everything queued regardless of readiness.
  index_t drain();

  /// Flush remaining work and join the lanes (idempotent; the destructor
  /// calls it). After stop(), submit throws.
  void stop();

  /// Requests currently queued (not yet dispatched).
  index_t pending() const;

 private:
  struct Request {
    OperatorHandle op; ///< pins the operator while the request is in flight
    RequestKind kind;
    const_real_span x;
    real_span y;
    double enqueue_time = 0.0;
    std::promise<void> done;
  };
  struct Group {
    std::vector<Request> reqs; ///< FIFO: front is the oldest
  };
  /// (cache-entry identity, request kind) — one group per coalescable launch.
  using GroupKey = std::pair<const void*, int>;
  struct Batch {
    std::vector<Request> reqs;
    RequestKind kind;
    bool full = false; ///< flushed on max_batch (else timeout/forced)
  };
  using ContextMap =
      std::unordered_map<std::string, std::unique_ptr<batched::ExecutionContext>>;

  std::optional<Batch> take_ready_locked(double now, bool force);
  void take_expired_locked(double now, std::vector<Request>& expired);
  index_t fail_expired(std::vector<Request> expired, double now);
  double earliest_deadline_locked() const;
  void launch_batch(Batch& batch, ContextMap& ctxs, ConstMatrixView b, MatrixView y,
                    const std::string& backend_name);
  index_t execute_batch(Batch batch, ContextMap& ctxs);
  index_t run_ready(bool force, ContextMap& ctxs);
  void lane_loop();

  const CoalescerOptions opts_;
  std::shared_ptr<const Clock> clock_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< lanes: work may be ready
  std::condition_variable space_cv_; ///< submitters: queue may have room
  std::map<GroupKey, Group> groups_;
  std::size_t queue_size_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> lanes_;
  ContextMap pump_ctxs_; ///< contexts for manual pump()/drain() (single driver)
};

} // namespace h2sketch::serve
