#include "serve/telemetry.hpp"

#include <algorithm>
#include <cmath>

namespace h2sketch::serve {

int LatencyHistogram::bucket_of(double seconds) {
  const double ns = seconds * 1e9;
  if (!(ns > 1.0)) return 0;
  const int b = static_cast<int>(std::log2(ns) * kBucketsPerOctave);
  return std::clamp(b, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_mid_seconds(int b) {
  const double mid_ns = std::exp2((b + 0.5) / static_cast<double>(kBucketsPerOctave));
  return mid_ns * 1e-9;
}

void LatencyHistogram::record(double seconds) {
  counts_[static_cast<size_t>(bucket_of(seconds))].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    snap[static_cast<size_t>(b)] = counts_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    total += snap[static_cast<size_t>(b)];
  }
  // Guard the empty histogram (and a NaN q, which std::clamp would pass
  // through) before any rank arithmetic: reporters poll snapshots from the
  // moment an operator is cached, long before the first request completes.
  if (total == 0 || std::isnan(q)) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among `total` ordered samples.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += snap[static_cast<size_t>(b)];
    if (seen > rank) return bucket_mid_seconds(b);
  }
  return bucket_mid_seconds(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

MetricsSnapshot OperatorMetrics::snapshot() const {
  MetricsSnapshot s;
  s.requests = requests.load(std::memory_order_relaxed);
  s.matvecs = matvecs.load(std::memory_order_relaxed);
  s.solves = solves.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.coalesced_rhs = coalesced_rhs.load(std::memory_order_relaxed);
  s.flush_full = flush_full.load(std::memory_order_relaxed);
  s.flush_timeout = flush_timeout.load(std::memory_order_relaxed);
  s.launch_failures = launch_failures.load(std::memory_order_relaxed);
  s.degraded_launches = degraded_launches.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired.load(std::memory_order_relaxed);
  s.p50_seconds = latency.quantile(0.50);
  s.p99_seconds = latency.quantile(0.99);
  const obs::QuantileSketch sk = latency_sketch.snapshot();
  if (!sk.empty()) {
    s.sketch_p50_seconds = sk.quantile(0.50);
    s.sketch_p99_seconds = sk.quantile(0.99);
  }
  return s;
}

} // namespace h2sketch::serve
