#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/errors.hpp"
#include "core/config.hpp"
#include "core/stats.hpp"
#include "geometry/point_cloud.hpp"
#include "kernels/kernel.hpp"
#include "serve/clock.hpp"
#include "serve/telemetry.hpp"
#include "solver/hss_matrix.hpp"
#include "solver/ulv.hpp"

/// \file operator_cache.hpp
/// The construct/factor-once half of the serving story (H2Opus phase
/// separation): compressed+factored operators are cached under a key of
/// (kernel, geometry fingerprint, tolerance, backend) and handed out as
/// pin-counted handles. Eviction is byte-budgeted LRU and never evicts an
/// operator that still has live handles (in-flight requests pin the
/// operator for their whole lifetime). Concurrent misses on the same key
/// coalesce into a single build — the other callers block on the builder's
/// future instead of compressing the same operator twice.

namespace h2sketch::serve {

/// Cache key. Two requests share an operator iff every field matches: the
/// kernel identity string (name; fold parameters in if they vary), the
/// geometry fingerprint (point coordinates + clustering leaf size), the
/// compression tolerance, and the backend configuration the operator's
/// panels live on.
struct OperatorKey {
  std::string kernel;
  std::uint64_t geometry = 0;
  real_t tol = 0;
  std::string backend;

  bool operator==(const OperatorKey&) const = default;
};

struct OperatorKeyHash {
  std::size_t operator()(const OperatorKey& k) const;
};

/// FNV-1a over the raw coordinates, point count, dimension and leaf size —
/// the clustering is deterministic in those, so equal fingerprints mean the
/// same permuted operator.
std::uint64_t geometry_fingerprint(const geo::PointCloud& points, index_t leaf_size);

/// One cached, factored, read-only operator: the compressed HSS matrix (for
/// matvec requests), its ULV Cholesky factor (for solve requests), and the
/// per-operator serving counters every handle shares.
struct ServedOperator {
  std::shared_ptr<const tree::ClusterTree> tree;
  solver::HssMatrix matrix;
  solver::UlvCholesky factor;
  std::string backend;    ///< backend config name the panels were built on
  std::size_t bytes = 0;  ///< device-resident matrix + factor arena bytes (the LRU budget unit)
  core::ConstructionStats build_stats;
  /// Shared serving counters (behind a pointer so the operator stays
  /// movable; atomics pin their address).
  std::unique_ptr<OperatorMetrics> metrics = std::make_unique<OperatorMetrics>();

  index_t size() const { return matrix.size(); }
};

namespace detail {
struct CacheEntry {
  ServedOperator op;
  std::atomic<std::uint64_t> pins{0}; ///< live handles; >0 blocks eviction
  std::uint64_t last_use = 0;         ///< LRU stamp, guarded by the cache mutex
};
} // namespace detail

/// Pin-counted reference to a cached operator. Copyable (each copy is a
/// pin); the operator cannot be evicted while any handle exists, and stays
/// alive (shared_ptr) even if the cache drops it. Default-constructed
/// handles are empty.
class OperatorHandle {
 public:
  OperatorHandle() = default;
  OperatorHandle(const OperatorHandle& o) : entry_(o.entry_) { pin(); }
  OperatorHandle(OperatorHandle&& o) noexcept : entry_(std::move(o.entry_)) { o.entry_.reset(); }
  OperatorHandle& operator=(OperatorHandle o) noexcept {
    std::swap(entry_, o.entry_);
    return *this;
  }
  ~OperatorHandle() { unpin(); }

  explicit operator bool() const { return entry_ != nullptr; }
  ServedOperator& operator*() const { return entry_->op; }
  ServedOperator* operator->() const { return &entry_->op; }
  /// Stable identity of the cached entry (coalescer group key).
  const void* id() const { return entry_.get(); }

 private:
  friend class OperatorCache;
  explicit OperatorHandle(std::shared_ptr<detail::CacheEntry> e) : entry_(std::move(e)) {
    pin();
  }
  void pin() {
    if (entry_) entry_->pins.fetch_add(1, std::memory_order_relaxed);
  }
  void unpin() {
    if (entry_) entry_->pins.fetch_sub(1, std::memory_order_relaxed);
  }

  std::shared_ptr<detail::CacheEntry> entry_;
};

struct CacheStats {
  std::uint64_t hits = 0;           ///< acquire() found a completed entry
  std::uint64_t misses = 0;         ///< acquire() had to build or join a build
  std::uint64_t builds = 0;         ///< builder invocations (misses minus joins)
  std::uint64_t evictions = 0;      ///< entries dropped by the LRU sweep
  std::uint64_t eviction_skips = 0; ///< pinned entries the sweep had to pass over
  std::uint64_t build_retries = 0;  ///< builder re-invocations after a retryable Error
  std::uint64_t build_failures = 0; ///< builds that failed after all retries
  std::uint64_t cooldown_rejects = 0; ///< acquires rejected from the failure cooldown cache
  std::uint64_t oom_evictions = 0;  ///< entries evicted to satisfy a DeviceOomError retry
  std::size_t bytes_cached = 0;     ///< current resident operator bytes
};

/// Cache policy, including the build-failure recovery knobs.
struct CacheOptions {
  std::size_t byte_budget = 0; ///< 0 = unbounded (never evicts)

  /// Builder re-invocations after a retryable `Error` (taxonomy only —
  /// exceptions outside `h2sketch::Error` propagate immediately, since the
  /// cache cannot judge whether retrying an unknown failure is safe).
  int max_build_retries = 2;
  double backoff_initial_seconds = 0.05; ///< first retry delay; doubles per retry
  double backoff_max_seconds = 1.0;      ///< backoff cap

  /// Negative-result cooldown: after a build fails all retries, re-acquires
  /// of that key within this window rethrow the stored failure instead of
  /// re-running the expensive build. 0 (default) disables the cooldown — a
  /// failed key may rebuild immediately.
  double failure_cooldown_seconds = 0.0;

  std::shared_ptr<const Clock> clock;    ///< cooldown time source (default SteadyClock)
  std::function<void(double)> sleep_fn;  ///< backoff sleep (default real sleep); tests no-op it
};

/// Byte-budgeted LRU cache of factored operators. All public methods are
/// thread-safe; builds run outside the cache lock so unrelated keys are
/// served while an operator compresses.
class OperatorCache {
 public:
  using Builder = std::function<ServedOperator()>;

  explicit OperatorCache(CacheOptions opts);
  /// byte_budget 0 = unbounded (never evicts).
  explicit OperatorCache(std::size_t byte_budget = 0)
      : OperatorCache(CacheOptions{.byte_budget = byte_budget}) {}
  ~OperatorCache();
  OperatorCache(const OperatorCache&) = delete;
  OperatorCache& operator=(const OperatorCache&) = delete;

  /// Return a handle for `key`, invoking `build` on a miss. Concurrent
  /// misses on one key run a single build; a build that throws propagates
  /// to every waiter and leaves no cache entry behind. After inserting, the
  /// LRU sweep runs — the freshly returned handle pins its own entry, so
  /// the new operator is never its own victim.
  ///
  /// Recovery (see CacheOptions): retryable `Error`s re-invoke the builder
  /// under capped exponential backoff; a `DeviceOomError` first evicts
  /// unpinned LRU entries to cover the failed allocation and retries
  /// without consuming an attempt while eviction makes progress. A key
  /// whose build failed terminally rethrows from the cooldown cache for
  /// `failure_cooldown_seconds` before the builder runs again.
  OperatorHandle acquire(const OperatorKey& key, const Builder& build);

  /// Lookup without building: empty handle on miss (does not count as a
  /// hit/miss and does not join pending builds).
  OperatorHandle find(const OperatorKey& key);

  CacheStats stats() const;
  std::size_t bytes_cached() const;
  std::size_t byte_budget() const { return opts_.byte_budget; }

 private:
  using EntryPtr = std::shared_ptr<detail::CacheEntry>;
  struct FailedBuild {
    double expires_at = 0.0;
    std::exception_ptr error;
  };

  void touch_locked(const EntryPtr& e) { e->last_use = ++use_clock_; }
  void evict_locked();
  /// Drop unpinned LRU entries until at least `requested` bytes are freed
  /// (or nothing evictable remains). True if any entry was evicted.
  bool free_bytes_for_oom(std::size_t requested);
  ServedOperator build_with_recovery(const Builder& build);

  const CacheOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<OperatorKey, EntryPtr, OperatorKeyHash> map_;
  std::unordered_map<OperatorKey, std::shared_future<EntryPtr>, OperatorKeyHash> pending_;
  std::unordered_map<OperatorKey, FailedBuild, OperatorKeyHash> failed_;
  std::uint64_t use_clock_ = 0;
  CacheStats stats_;
  std::uint64_t collector_id_ = 0; ///< metrics-registry pull collector
};

/// Build inputs for the stock kernel-matrix serving operator.
struct ServeBuildOptions {
  index_t leaf_size = 64;
  core::ConstructionOptions construction; ///< tol, sampling knobs, seed
};

/// Cache key for a kernel-matrix operator (geometry fingerprint includes
/// the leaf size; tol comes from the construction options).
OperatorKey make_operator_key(const geo::PointCloud& points, const kern::KernelFunction& kernel,
                              const ServeBuildOptions& opts, std::string_view backend_name);

/// The standard build: cluster, sketch-compress to HSS, ULV-factor — all on
/// the process-wide shared device of `backend_name`, so any context made
/// from the registry can apply the result. The kernel must be SPD on the
/// points (e.g. RidgeKernel) for the factorization to succeed.
ServedOperator build_served_operator(const geo::PointCloud& points,
                                     const kern::KernelFunction& kernel,
                                     const ServeBuildOptions& opts,
                                     std::string_view backend_name);

} // namespace h2sketch::serve
