#include "serve/operator_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "backend/registry.hpp"
#include "batched/device.hpp"
#include "common/check.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/hss_construction.hpp"
#include "tree/cluster_tree.hpp"

namespace h2sketch::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) { return fnv1a(h, &v, sizeof(v)); }

} // namespace

std::uint64_t geometry_fingerprint(const geo::PointCloud& points, index_t leaf_size) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u64(h, static_cast<std::uint64_t>(points.size()));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(points.dim()));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(leaf_size));
  const auto& raw = points.raw();
  h = fnv1a(h, raw.data(), raw.size() * sizeof(real_t));
  return h;
}

std::size_t OperatorKeyHash::operator()(const OperatorKey& k) const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, k.kernel.data(), k.kernel.size());
  h = fnv1a_u64(h, k.geometry);
  h = fnv1a(h, &k.tol, sizeof(k.tol));
  h = fnv1a(h, k.backend.data(), k.backend.size());
  return static_cast<std::size_t>(h);
}

OperatorCache::OperatorCache(CacheOptions opts) : opts_([&] {
  if (!opts.clock) opts.clock = std::make_shared<SteadyClock>();
  return std::move(opts);
}()) {
  // Pull collector: fold this cache's stats (and the resident operators'
  // serving counters) into the process-wide snapshot. Counters from
  // multiple caches sum in the builder; resident aggregates shrink when an
  // operator is evicted, so they are scoped to what is currently cached.
  collector_id_ = obs::MetricsRegistry::global().add_collector([this](obs::SnapshotBuilder& b) {
    std::lock_guard<std::mutex> lk(mu_);
    b.counter("serve_cache_hits", stats_.hits);
    b.counter("serve_cache_misses", stats_.misses);
    b.counter("serve_cache_builds", stats_.builds);
    b.counter("serve_cache_evictions", stats_.evictions);
    b.counter("serve_cache_eviction_skips", stats_.eviction_skips);
    b.counter("serve_cache_build_retries", stats_.build_retries);
    b.counter("serve_cache_build_failures", stats_.build_failures);
    b.counter("serve_cache_cooldown_rejects", stats_.cooldown_rejects);
    b.counter("serve_cache_oom_evictions", stats_.oom_evictions);
    b.gauge("serve_cache_bytes", static_cast<double>(stats_.bytes_cached));
    b.gauge("serve_cache_operators", static_cast<double>(map_.size()));
    std::uint64_t requests = 0, batches = 0, rhs = 0, failures = 0, degraded = 0, expired = 0,
                  launches = 0;
    std::size_t device_bytes = 0;
    for (const auto& [key, e] : map_) {
      const OperatorMetrics& m = *e->op.metrics;
      requests += m.requests.load(std::memory_order_relaxed);
      batches += m.batches.load(std::memory_order_relaxed);
      rhs += m.coalesced_rhs.load(std::memory_order_relaxed);
      failures += m.launch_failures.load(std::memory_order_relaxed);
      degraded += m.degraded_launches.load(std::memory_order_relaxed);
      expired += m.deadline_expired.load(std::memory_order_relaxed);
      launches += static_cast<std::uint64_t>(e->op.build_stats.kernel_launches);
      device_bytes += e->op.matrix.device_bytes() + e->op.factor.device_bytes();
    }
    // Real device memory held by the resident operators' arenas (alignment
    // padding included) — the footprint eviction actually frees.
    b.gauge("serve_cache_device_bytes", static_cast<double>(device_bytes));
    b.counter("serve_requests", requests);
    b.counter("serve_batches", batches);
    b.counter("serve_coalesced_rhs", rhs);
    b.counter("serve_launch_failures", failures);
    b.counter("serve_degraded_launches", degraded);
    b.counter("serve_deadline_expired", expired);
    b.counter("serve_resident_build_launches", launches);
  });
}

OperatorCache::~OperatorCache() {
  obs::MetricsRegistry::global().remove_collector(collector_id_);
}

ServedOperator OperatorCache::build_with_recovery(const Builder& build) {
  int attempt = 0;
  for (;;) {
    try {
      return build();
    } catch (const DeviceOomError& e) {
      // Evict first: while freeing unpinned LRU entries makes progress the
      // retry is free (it does not consume an attempt), because each
      // eviction strictly shrinks the cache the loop terminates.
      if (free_bytes_for_oom(e.requested_bytes())) continue;
      if (attempt >= opts_.max_build_retries) throw;
      ++attempt;
    } catch (const Error& e) {
      // Only the typed taxonomy is retried: an unknown exception gives the
      // cache no basis to judge whether re-running the builder is safe.
      if (!e.retryable() || attempt >= opts_.max_build_retries) throw;
      ++attempt;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.build_retries;
    }
    obs::trace_instant("serve", "build_retry", "attempt", static_cast<std::uint64_t>(attempt));
    const double delay = std::min(opts_.backoff_max_seconds,
                                  opts_.backoff_initial_seconds * std::exp2(attempt - 1));
    if (opts_.sleep_fn)
      opts_.sleep_fn(delay);
    else
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

OperatorHandle OperatorCache::acquire(const OperatorKey& key, const Builder& build) {
  std::shared_future<EntryPtr> fut;
  std::promise<EntryPtr> prom;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (auto it = map_.find(key); it != map_.end()) {
      ++stats_.hits;
      touch_locked(it->second);
      return OperatorHandle(it->second);
    }
    if (auto f = failed_.find(key); f != failed_.end()) {
      // Negative-result cooldown: the key failed terminally moments ago;
      // rethrow the stored failure instead of paying for the build again.
      if (opts_.clock->now() < f->second.expires_at) {
        ++stats_.cooldown_rejects;
        std::rethrow_exception(f->second.error);
      }
      failed_.erase(f);
    }
    ++stats_.misses;
    if (auto p = pending_.find(key); p != pending_.end()) {
      fut = p->second; // join the in-flight build instead of duplicating it
    } else {
      builder = true;
      ++stats_.builds;
      fut = prom.get_future().share();
      pending_.emplace(key, fut);
    }
  }

  if (!builder) {
    EntryPtr e = fut.get(); // rethrows the builder's failure, if any
    std::lock_guard<std::mutex> lk(mu_);
    touch_locked(e);
    return OperatorHandle(e);
  }

  EntryPtr entry;
  try {
    obs::TraceSpan build_span("serve", "operator_build");
    entry = std::make_shared<detail::CacheEntry>();
    entry->op = build_with_recovery(build);
    if (entry->op.bytes == 0)
      entry->op.bytes = entry->op.matrix.device_bytes() + entry->op.factor.device_bytes();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.build_failures;
      if (opts_.failure_cooldown_seconds > 0.0)
        failed_[key] = {opts_.clock->now() + opts_.failure_cooldown_seconds,
                        std::current_exception()};
      pending_.erase(key);
    }
    prom.set_exception(std::current_exception());
    throw;
  }

  OperatorHandle h(entry); // pin before the sweep: never our own victim
  {
    std::lock_guard<std::mutex> lk(mu_);
    map_.emplace(key, entry);
    stats_.bytes_cached += entry->op.bytes;
    touch_locked(entry);
    pending_.erase(key);
  }
  prom.set_value(entry);
  {
    std::lock_guard<std::mutex> lk(mu_);
    evict_locked();
  }
  return h;
}

OperatorHandle OperatorCache::find(const OperatorKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return OperatorHandle();
  touch_locked(it->second);
  return OperatorHandle(it->second);
}

void OperatorCache::evict_locked() {
  if (opts_.byte_budget == 0) return;
  while (stats_.bytes_cached > opts_.byte_budget) {
    auto victim = map_.end();
    std::uint64_t skipped = 0;
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second->pins.load(std::memory_order_acquire) > 0) {
        ++skipped; // in-flight requests pin their operator: not evictable
        continue;
      }
      if (victim == map_.end() || it->second->last_use < victim->second->last_use) victim = it;
    }
    stats_.eviction_skips += skipped;
    if (victim == map_.end()) return; // everything resident is pinned; stay over budget
    stats_.bytes_cached -= victim->second->op.bytes;
    ++stats_.evictions;
    obs::trace_instant("serve", "evict", "bytes",
                       static_cast<std::uint64_t>(victim->second->op.bytes));
    map_.erase(victim);
  }
}

bool OperatorCache::free_bytes_for_oom(std::size_t requested) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t want = std::max<std::size_t>(requested, 1);
  std::size_t freed = 0;
  while (freed < want) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second->pins.load(std::memory_order_acquire) > 0) continue;
      if (victim == map_.end() || it->second->last_use < victim->second->last_use) victim = it;
    }
    if (victim == map_.end()) break; // everything resident is pinned
    freed += victim->second->op.bytes;
    stats_.bytes_cached -= victim->second->op.bytes;
    ++stats_.evictions;
    ++stats_.oom_evictions;
    obs::trace_instant("serve", "oom_evict", "bytes",
                       static_cast<std::uint64_t>(victim->second->op.bytes));
    map_.erase(victim);
  }
  return freed > 0;
}

CacheStats OperatorCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t OperatorCache::bytes_cached() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_.bytes_cached;
}

OperatorKey make_operator_key(const geo::PointCloud& points, const kern::KernelFunction& kernel,
                              const ServeBuildOptions& opts, std::string_view backend_name) {
  OperatorKey key;
  key.kernel = kernel.name();
  key.geometry = geometry_fingerprint(points, opts.leaf_size);
  key.tol = opts.construction.tol;
  key.backend = std::string(backend_name);
  return key;
}

ServedOperator build_served_operator(const geo::PointCloud& points,
                                     const kern::KernelFunction& kernel,
                                     const ServeBuildOptions& opts,
                                     std::string_view backend_name) {
  auto tree = std::make_shared<tree::ClusterTree>(tree::ClusterTree::build(points, opts.leaf_size));
  kern::KernelMatVecSampler sampler(*tree, kernel);
  kern::KernelEntryGenerator gen(*tree, kernel);
  batched::ExecutionContext ctx(backend::shared_backend(backend_name));

  ServedOperator op;
  auto result = solver::build_hss(tree, sampler, gen, opts.construction, ctx);
  op.tree = std::move(tree);
  op.factor = solver::ulv_factor(result.matrix, ctx);
  op.matrix = std::move(result.matrix);
  op.build_stats = std::move(result.stats);
  op.backend = std::string(backend_name);
  op.bytes = op.matrix.device_bytes() + op.factor.device_bytes();
  return op;
}

} // namespace h2sketch::serve
