#include "serve/coalescer.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "backend/registry.hpp"
#include "batched/device.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace h2sketch::serve {

Coalescer::Coalescer(CoalescerOptions opts, std::shared_ptr<const Clock> clock)
    : opts_(opts), clock_(clock ? std::move(clock) : std::make_shared<SteadyClock>()) {
  H2S_CHECK(opts_.max_batch > 0, "coalescer: max_batch must be positive");
  H2S_CHECK(opts_.queue_capacity > 0, "coalescer: queue_capacity must be positive");
  if (!opts_.manual_pump) {
    const int lanes = std::max(1, opts_.lanes);
    lanes_.reserve(static_cast<size_t>(lanes));
    for (int i = 0; i < lanes; ++i) lanes_.emplace_back([this] { lane_loop(); });
  }
}

Coalescer::~Coalescer() { stop(); }

std::future<void> Coalescer::submit(OperatorHandle op, RequestKind kind, const_real_span x,
                                    real_span y) {
  H2S_CHECK(op, "coalescer submit: empty operator handle");
  const auto n = static_cast<std::size_t>(op->size());
  H2S_CHECK(x.size() == n && y.size() == n,
            "coalescer submit: x/y must be length " << n << " (got " << x.size() << ", "
                                                    << y.size() << ")");
  Request r;
  r.kind = kind;
  r.x = x;
  r.y = y;

  std::unique_lock<std::mutex> lk(mu_);
  if (opts_.manual_pump) {
    if (queue_size_ >= opts_.queue_capacity)
      throw QueueFullError("coalescer submit: queue full (" + std::to_string(queue_size_) + "/" +
                               std::to_string(opts_.queue_capacity) +
                               " requests) in manual_pump mode",
                           queue_size_, opts_.queue_capacity);
  } else {
    space_cv_.wait(lk, [&] { return queue_size_ < opts_.queue_capacity || stopping_; });
  }
  H2S_CHECK(!stopping_, "coalescer submit: coalescer is stopped");

  r.enqueue_time = clock_->now();
  op->metrics->requests.fetch_add(1, std::memory_order_relaxed);
  obs::trace_instant("serve", "admit", "op",
                     static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(op.id())), "kind",
                     static_cast<std::uint64_t>(kind));
  auto fut = r.done.get_future();
  const GroupKey key{op.id(), static_cast<int>(kind)};
  r.op = std::move(op);
  groups_[key].reqs.push_back(std::move(r));
  ++queue_size_;
  lk.unlock();
  work_cv_.notify_one();
  return fut;
}

std::optional<Coalescer::Batch> Coalescer::take_ready_locked(double now, bool force) {
  auto chosen = groups_.end();
  bool full = false;
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (it->second.reqs.empty()) continue;
    if (static_cast<index_t>(it->second.reqs.size()) >= opts_.max_batch) {
      chosen = it;
      full = true;
      break; // full groups take priority: they amortize best
    }
    if (chosen == groups_.end() &&
        (force || now - it->second.reqs.front().enqueue_time >= opts_.max_delay_seconds))
      chosen = it;
  }
  if (chosen == groups_.end()) return std::nullopt;

  auto& reqs = chosen->second.reqs;
  const auto take = std::min<std::size_t>(reqs.size(), static_cast<std::size_t>(opts_.max_batch));
  Batch b;
  b.kind = reqs.front().kind;
  b.full = full;
  b.reqs.reserve(take);
  std::move(reqs.begin(), reqs.begin() + static_cast<std::ptrdiff_t>(take),
            std::back_inserter(b.reqs));
  reqs.erase(reqs.begin(), reqs.begin() + static_cast<std::ptrdiff_t>(take));
  if (reqs.empty()) groups_.erase(chosen);
  queue_size_ -= take;
  return b;
}

/// Remove every request that has outlived its deadline. Groups are FIFO, so
/// scanning from the front of each finds all expired entries.
void Coalescer::take_expired_locked(double now, std::vector<Request>& expired) {
  if (opts_.request_deadline_seconds <= 0.0) return;
  for (auto it = groups_.begin(); it != groups_.end();) {
    auto& reqs = it->second.reqs;
    std::size_t n = 0;
    while (n < reqs.size() && now - reqs[n].enqueue_time > opts_.request_deadline_seconds) ++n;
    if (n > 0) {
      std::move(reqs.begin(), reqs.begin() + static_cast<std::ptrdiff_t>(n),
                std::back_inserter(expired));
      reqs.erase(reqs.begin(), reqs.begin() + static_cast<std::ptrdiff_t>(n));
      queue_size_ -= n;
    }
    it = reqs.empty() ? groups_.erase(it) : std::next(it);
  }
}

/// Resolve expired requests with DeadlineExceededError (outside the queue
/// lock — promise continuations can run arbitrary client code).
index_t Coalescer::fail_expired(std::vector<Request> expired, double now) {
  for (auto& r : expired) {
    const double waited = now - r.enqueue_time;
    r.op->metrics->deadline_expired.fetch_add(1, std::memory_order_relaxed);
    r.done.set_exception(std::make_exception_ptr(DeadlineExceededError(
        "coalescer: request waited " + std::to_string(waited) + "s, past its " +
            std::to_string(opts_.request_deadline_seconds) + "s deadline",
        waited)));
  }
  return static_cast<index_t>(expired.size());
}

double Coalescer::earliest_deadline_locked() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [key, g] : groups_) {
    if (g.reqs.empty()) continue;
    double d = g.reqs.front().enqueue_time + opts_.max_delay_seconds;
    if (opts_.request_deadline_seconds > 0.0)
      d = std::min(d, g.reqs.front().enqueue_time + opts_.request_deadline_seconds);
    earliest = std::min(earliest, d);
  }
  return earliest;
}

/// One coalesced launch on `backend_name`, creating (and caching) the
/// lane-local context on first use. The assignment into the map happens
/// after the context constructs, so a failed construction leaves no null
/// half-made entry behind.
void Coalescer::launch_batch(Batch& batch, ContextMap& ctxs, ConstMatrixView b, MatrixView y,
                             const std::string& backend_name) {
  auto& ctx = ctxs[backend_name];
  if (!ctx)
    ctx = std::make_unique<batched::ExecutionContext>(backend::shared_backend(backend_name));
  ServedOperator& op = *batch.reqs.front().op;
  if (batch.kind == RequestKind::Matvec)
    op.matrix.matvec(*ctx, b, y);
  else
    op.factor.solve_many(b, y, *ctx);
}

index_t Coalescer::execute_batch(Batch batch, ContextMap& ctxs) {
  const auto k = static_cast<index_t>(batch.reqs.size());
  ServedOperator& op = *batch.reqs.front().op;
  const index_t n = op.size();

  try {
    obs::TraceSpan flush_span("serve", "flush", "rhs", static_cast<std::uint64_t>(k), "full",
                              batch.full ? 1 : 0);
    // Marshal the single-RHS payloads into one N x k block...
    Matrix b(n, k), y(n, k);
    for (index_t j = 0; j < k; ++j)
      std::memcpy(b.data() + j * n, batch.reqs[static_cast<size_t>(j)].x.data(),
                  static_cast<std::size_t>(n) * sizeof(real_t));

    // ...one blocked launch for the whole tick, degrading once on a
    // retryable failure: the fallback config shares the original's device
    // heap (registry::degraded_backend_name), and both matvec and
    // solve_many rewrite y in full, so a half-finished failed launch leaves
    // nothing stale behind...
    try {
      launch_batch(batch, ctxs, b.view(), y.view(), op.backend);
    } catch (const Error& e) {
      const std::string degraded{backend::degraded_backend_name(op.backend)};
      if (!e.retryable() || degraded == op.backend) throw;
      op.metrics->launch_failures.fetch_add(1, std::memory_order_relaxed);
      obs::trace_instant("serve", "degraded_retry", "rhs", static_cast<std::uint64_t>(k));
      launch_batch(batch, ctxs, b.view(), y.view(), degraded);
      op.metrics->degraded_launches.fetch_add(1, std::memory_order_relaxed);
    }

    // ...and scatter back out.
    obs::TraceSpan scatter_span("serve", "scatter", "rhs", static_cast<std::uint64_t>(k));
    for (index_t j = 0; j < k; ++j)
      std::memcpy(batch.reqs[static_cast<size_t>(j)].y.data(), y.data() + j * n,
                  static_cast<std::size_t>(n) * sizeof(real_t));
  } catch (...) {
    auto e = std::current_exception();
    for (auto& r : batch.reqs) r.done.set_exception(e);
    return k;
  }

  op.metrics->batches.fetch_add(1, std::memory_order_relaxed);
  op.metrics->coalesced_rhs.fetch_add(static_cast<std::uint64_t>(k), std::memory_order_relaxed);
  (batch.full ? op.metrics->flush_full : op.metrics->flush_timeout)
      .fetch_add(1, std::memory_order_relaxed);
  auto& kind_counter = batch.kind == RequestKind::Matvec ? op.metrics->matvecs : op.metrics->solves;
  kind_counter.fetch_add(static_cast<std::uint64_t>(k), std::memory_order_relaxed);

  const double now = clock_->now();
  // Request latencies feed both recorders: the lock-free histogram (cheap,
  // 19% bucket error) and the KLL sketches (per-op + process-wide, ~1% rank
  // error) that back MetricsSnapshot::sketch_p50/p99.
  obs::SketchMetric& global_latency =
      obs::MetricsRegistry::global().sketch("serve_request_latency_seconds");
  for (auto& r : batch.reqs) {
    const double latency = now - r.enqueue_time;
    op.metrics->latency.record(latency);
    op.metrics->latency_sketch.record(latency);
    global_latency.record(latency);
    r.done.set_value();
  }
  return k;
}

index_t Coalescer::run_ready(bool force, ContextMap& ctxs) {
  index_t completed = 0;
  for (;;) {
    std::vector<Request> expired;
    std::unique_lock<std::mutex> lk(mu_);
    const double now = clock_->now();
    take_expired_locked(now, expired);
    auto batch = take_ready_locked(now, force);
    lk.unlock();
    completed += fail_expired(std::move(expired), now);
    if (!batch) {
      if (completed > 0) space_cv_.notify_all();
      break;
    }
    completed += execute_batch(std::move(*batch), ctxs);
    space_cv_.notify_all();
  }
  return completed;
}

index_t Coalescer::pump() { return run_ready(/*force=*/false, pump_ctxs_); }

index_t Coalescer::drain() { return run_ready(/*force=*/true, pump_ctxs_); }

void Coalescer::lane_loop() {
  ContextMap ctxs;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::vector<Request> expired;
    const double now = clock_->now();
    take_expired_locked(now, expired);
    auto batch = take_ready_locked(now, stopping_);
    if (batch || !expired.empty()) {
      lk.unlock();
      fail_expired(std::move(expired), now);
      if (batch) execute_batch(std::move(*batch), ctxs);
      space_cv_.notify_all();
      lk.lock();
      continue;
    }
    if (stopping_) return; // stopping and nothing left to flush
    const double deadline = earliest_deadline_locked();
    if (deadline == std::numeric_limits<double>::infinity()) {
      work_cv_.wait(lk);
    } else {
      // Sleep until the earliest group expires (plus a hair so the wake-up
      // observes it expired). Steady clock and Clock::now agree in the
      // threaded configuration.
      const double wait_s = std::max(0.0, deadline - clock_->now()) + 50e-6;
      work_cv_.wait_for(lk, std::chrono::duration<double>(wait_s));
    }
  }
}

void Coalescer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& t : lanes_)
    if (t.joinable()) t.join();
  lanes_.clear();
  if (opts_.manual_pump) drain(); // flush what tests left queued
}

index_t Coalescer::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<index_t>(queue_size_);
}

} // namespace h2sketch::serve
