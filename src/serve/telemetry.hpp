#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/types.hpp"
#include "obs/metrics.hpp"

/// \file telemetry.hpp
/// Serving-side observability: per-operator request counters plus a
/// log-bucketed latency histogram that reports p50/p99 without storing
/// samples. Everything here is lock-free atomics — request threads record
/// concurrently while a reporter thread snapshots.

namespace h2sketch::serve {

/// Latency histogram over logarithmically spaced buckets (4 sub-buckets per
/// octave covering ~1 ns .. ~64 s). A quantile query walks the cumulative
/// counts and returns the geometric midpoint of the bucket holding the
/// requested rank, so the estimate's relative error is bounded by the bucket
/// width (2^(1/4), ~19%) regardless of how many samples were recorded —
/// and no sample is ever stored.
class LatencyHistogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kOctaves = 36; ///< 2^36 ns ~= 69 s
  static constexpr int kBuckets = kOctaves * kBucketsPerOctave;

  /// Record one latency observation (seconds). Thread-safe, lock-free.
  void record(double seconds);

  /// Total observations recorded.
  std::uint64_t count() const;

  /// Quantile estimate in seconds, q in [0, 1] (0.5 = p50, 0.99 = p99).
  /// Returns 0 when no samples have been recorded. Thread-safe with respect
  /// to concurrent record()s (the snapshot is per-bucket atomic).
  double quantile(double q) const;

  void reset();

 private:
  static int bucket_of(double seconds);
  static double bucket_mid_seconds(int b);

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

/// Plain-value snapshot of one operator's serving counters.
struct MetricsSnapshot {
  std::uint64_t requests = 0;      ///< requests submitted
  std::uint64_t matvecs = 0;       ///< single-RHS matvec requests completed
  std::uint64_t solves = 0;        ///< single-RHS solve requests completed
  std::uint64_t batches = 0;       ///< coalesced launches issued
  std::uint64_t coalesced_rhs = 0; ///< total RHS columns across batches
  std::uint64_t flush_full = 0;    ///< batches flushed because max_batch was reached
  std::uint64_t flush_timeout = 0; ///< batches flushed because max_delay expired
  std::uint64_t launch_failures = 0;  ///< coalesced launches that raised a retryable error
  std::uint64_t degraded_launches = 0;///< launches re-run successfully on the fallback backend
  std::uint64_t deadline_expired = 0; ///< requests failed with DeadlineExceededError
  double p50_seconds = 0.0;        ///< request latency p50 (submit -> complete)
  double p99_seconds = 0.0;        ///< request latency p99
  /// Sketch-backed quantiles of the same latency stream: the KLL sketch
  /// holds ~1% rank error vs the histogram's 19% bucket error, at the cost
  /// of a short mutex hold per record.
  double sketch_p50_seconds = 0.0;
  double sketch_p99_seconds = 0.0;

  /// Mean RHS per coalesced launch — the batching win over one-launch-per-request.
  double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(coalesced_rhs) / static_cast<double>(batches);
  }
};

/// Per-operator serving counters. Lives with the cache entry so every handle
/// to an operator shares one set of counters.
class OperatorMetrics {
 public:
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> matvecs{0};
  std::atomic<std::uint64_t> solves{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> coalesced_rhs{0};
  std::atomic<std::uint64_t> flush_full{0};
  std::atomic<std::uint64_t> flush_timeout{0};
  std::atomic<std::uint64_t> launch_failures{0};
  std::atomic<std::uint64_t> degraded_launches{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  LatencyHistogram latency;
  /// Same stream as `latency`, recorded per completed batch (one short
  /// critical section per tick, not per request) for tight quantiles.
  obs::SketchMetric latency_sketch;

  MetricsSnapshot snapshot() const;
};

} // namespace h2sketch::serve
