#include "backend/device_matrix.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace h2sketch::backend {

void DeviceMatrix::resize(DeviceBackend& b, index_t m, index_t n) {
  resize_uninitialized(b, m, n);
  if (!buf_.empty()) b.fill_zero(buf_.data(), buf_.bytes());
}

void DeviceMatrix::resize_uninitialized(DeviceBackend& b, index_t m, index_t n) {
  H2S_CHECK(m >= 0 && n >= 0, "negative dimension");
  const auto bytes = static_cast<std::size_t>(m) * static_cast<std::size_t>(n) * sizeof(real_t);
  if (bytes != buf_.bytes() || buf_.backend() != &b) buf_ = b.allocate(bytes);
  rows_ = m;
  cols_ = n;
}

void DeviceMatrix::append_cols(DeviceBackend& b, index_t extra) {
  H2S_CHECK(extra >= 0, "negative column count");
  if (extra == 0) return;
  const index_t m = rows_, n = cols_;
  const auto old_bytes = static_cast<std::size_t>(m) * static_cast<std::size_t>(n) * sizeof(real_t);
  const auto new_bytes =
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n + extra) * sizeof(real_t);
  if (new_bytes <= buf_.bytes() && buf_.backend() == &b) {
    // Slack left by a previous geometric grow: the old columns are already
    // in place, only the appended tail needs the zero fill.
    b.fill_zero(static_cast<std::byte*>(buf_.data()) + old_bytes, new_bytes - old_bytes);
    cols_ = n + extra;
    return;
  }
  // Grow geometrically so a sequence of block appends (the adaptive
  // sampling loop) copies each element O(1) amortized times instead of
  // once per round.
  DeviceBuffer grown = b.allocate(std::max(new_bytes, 2 * buf_.bytes()));
  if (new_bytes != 0) {
    // Contiguous column-major storage: the old columns are one block and
    // only the appended tail needs the zero fill.
    if (old_bytes != 0) b.copy_on_device(grown.data(), buf_.data(), old_bytes);
    b.fill_zero(static_cast<std::byte*>(grown.data()) + old_bytes, new_bytes - old_bytes);
  }
  buf_ = std::move(grown);
  cols_ = n + extra;
}

void DeviceMatrix::upload_from(ConstMatrixView host) {
  DeviceBackend* b = buf_.backend();
  H2S_CHECK(b != nullptr && host.rows == rows_ && host.cols == cols_,
            "upload_from: unallocated target or shape mismatch");
  b->upload(host, view());
}

Matrix DeviceMatrix::to_host() const {
  Matrix out(rows_, cols_);
  if (DeviceBackend* b = buf_.backend(); b != nullptr && !empty())
    b->download(view(), out.view());
  return out;
}

} // namespace h2sketch::backend
