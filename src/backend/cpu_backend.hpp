#pragma once

#include "backend/device_backend.hpp"

/// \file cpu_backend.hpp
/// The host-pool backend: the batched primitive set executed on the
/// persistent work-stealing pool through ExecutionContext's cost-chunked
/// stream launches (this is the implementation that used to live as free
/// functions in src/batched/). Device memory is host memory — allocation
/// is a 64-byte-aligned heap allocation and every copy is a memcpy.

namespace h2sketch::backend {

class CpuBackend : public DeviceBackend {
 public:
  std::string_view name() const override { return "cpu"; }
  bool is_device() const override { return false; }

  void gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
            std::vector<ConstMatrixView> a, la::Op op_a, std::vector<ConstMatrixView> b,
            la::Op op_b, real_t beta, std::vector<MatrixView> c) override;

  void gather_rows(batched::ExecutionContext& ctx, batched::StreamId stream,
                   std::vector<ConstMatrixView> src, std::vector<std::vector<index_t>> rows,
                   std::vector<MatrixView> dst) override;

  index_t bsr_gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
                   std::vector<index_t> row_ptr, std::vector<index_t> col,
                   std::vector<ConstMatrixView> blocks, std::vector<ConstMatrixView> x,
                   std::vector<MatrixView> y) override;

  void min_r_diag(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                  std::span<real_t> out) override;

  void min_r_diag_update(batched::ExecutionContext& ctx, std::span<const MatrixView> work,
                         std::span<const index_t> factored, std::span<std::vector<real_t>> tau,
                         std::span<real_t> out) override;

  void row_id(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
              index_t max_rank, std::span<la::RowID> out) override;

  void fill_gaussian(batched::ExecutionContext& ctx, MatrixView a, const GaussianStream& stream,
                     std::uint64_t offset) override;

  void fill_gaussian_blocks(batched::ExecutionContext& ctx, std::span<const MatrixView> blocks,
                            const GaussianStream& stream,
                            std::span<const std::uint64_t> offsets) override;

  void transpose(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                 std::span<const MatrixView> out) override;

  void potrf(batched::ExecutionContext& ctx, batched::StreamId stream,
             std::vector<MatrixView> a) override;

  void trsm_lower(batched::ExecutionContext& ctx, batched::StreamId stream, TrsmSide side,
                  la::Op op, std::vector<ConstMatrixView> l, std::vector<MatrixView> b) override;

  void generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                const kern::EntryGenerator& gen,
                std::vector<kern::BlockRequest> requests) override;

 protected:
  CpuBackend() = default;

  void* do_allocate(std::size_t bytes) override;
  void do_deallocate(void* ptr, std::size_t bytes) override;

  friend std::shared_ptr<CpuBackend> make_cpu_backend();
};

/// Create a CpuBackend (backends are always shared: DeviceBuffers keep
/// their backend alive).
std::shared_ptr<CpuBackend> make_cpu_backend();

} // namespace h2sketch::backend
