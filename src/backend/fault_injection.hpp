#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "backend/device_backend.hpp"
#include "common/errors.hpp"

/// \file fault_injection.hpp
/// `FaultInjectingDevice`: a decorator over any `DeviceBackend` that
/// injects typed failures at the three places a real accelerator fails —
/// allocation (`DeviceOomError`), explicit copies (`LaunchError`), and
/// per-op kernel launches (`LaunchError`) — under a deterministic,
/// seedable schedule. Everything else (memory, poisoning, arithmetic) is
/// forwarded to the wrapped backend unchanged, so post-recovery results
/// are bitwise identical to a fault-free run on the base backend.
///
/// Faults fire *synchronously at dispatch time* on the calling thread (the
/// cudaLaunchKernel-returned-an-error model, not an async-completion
/// model): every injection point is visited in the deterministic order the
/// algorithm issues work in, which is what lets the fault-sweep chaos test
/// (tests/test_faults.cpp) walk a one-shot fault across every index of a
/// build+serve cycle.
///
/// Schedules (programmatic via `set_schedule`, or the
/// `H2SKETCH_FAULT_SCHEDULE` environment variable read when the registry
/// singleton is first created):
///
///   off                      no injection (points are still counted)
///   oneshot:K[:SITE]         fail the K-th (0-based) matching point, once
///   every:N[:SITE]           fail every N-th matching point
///   prob:P[:SEED[:SITE]]     fail each matching point with probability P,
///                            deterministically derived from (SEED, index)
///
/// SITE is one of `alloc`, `copy`, `launch`, or `any` (default): which
/// class of injection point the schedule counts and fails.

namespace h2sketch::backend {

/// Class of injection point.
enum class FaultSite { Alloc, Copy, Launch };

std::string_view fault_site_name(FaultSite site);

/// Deterministic injection schedule. `site == nullopt` matches any site.
struct FaultSchedule {
  enum class Kind { Off, OneShot, EveryNth, Probability };

  Kind kind = Kind::Off;
  std::uint64_t index = 0;      ///< OneShot: 0-based index of the point that fails
  std::uint64_t period = 0;     ///< EveryNth: fail points index % period == period-1
  double probability = 0.0;     ///< Probability: per-point failure chance
  std::uint64_t seed = 0;       ///< Probability: hash seed
  std::optional<FaultSite> site;///< restrict to one site class (nullopt = any)

  static FaultSchedule off() { return {}; }
  static FaultSchedule one_shot_at(std::uint64_t k, std::optional<FaultSite> s = std::nullopt);
  static FaultSchedule every_nth(std::uint64_t n, std::optional<FaultSite> s = std::nullopt);
  static FaultSchedule with_probability(double p, std::uint64_t seed = 0,
                                        std::optional<FaultSite> s = std::nullopt);

  /// Parse the H2SKETCH_FAULT_SCHEDULE syntax documented above. Throws
  /// (std::runtime_error) on malformed specs.
  static FaultSchedule parse(std::string_view spec);
};

/// Injection-point counters. Points are counted whether or not a schedule
/// is active, so a fault-free probe run measures the index space a sweep
/// then walks.
struct FaultStats {
  std::uint64_t alloc_points = 0;  ///< allocation points visited
  std::uint64_t copy_points = 0;   ///< copy/fill points visited
  std::uint64_t launch_points = 0; ///< per-op launch points visited
  std::uint64_t considered = 0;    ///< points matching the active schedule's site filter
  std::uint64_t injected = 0;      ///< faults actually thrown

  std::uint64_t points() const { return alloc_points + copy_points + launch_points; }
};

/// Decorator backend injecting scheduled failures. Thread-safe: points may
/// be visited concurrently from client/lane threads; the schedule state is
/// mutex-guarded.
class FaultInjectingDevice final : public DeviceBackend {
 public:
  std::string_view name() const override { return name_; }
  bool is_device() const override { return inner_->is_device(); }
  const DeviceBackend* memory_owner() const override { return inner_->memory_owner(); }

  /// The wrapped backend (the graceful-degradation target).
  const std::shared_ptr<DeviceBackend>& inner() const { return inner_; }

  /// Install a schedule. Resets the injection-point counters and the
  /// one-shot state, so `index` is relative to this call.
  void set_schedule(FaultSchedule schedule);
  FaultSchedule schedule() const;

  /// Zero the counters and re-arm a one-shot schedule without changing it.
  void reset_fault_state();

  FaultStats fault_stats() const;

  // --- forwarded primitive table ------------------------------------------

  bool supports(OpKind kind) const override { return inner_->supports(kind); }

  void gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
            std::vector<ConstMatrixView> a, la::Op op_a, std::vector<ConstMatrixView> b,
            la::Op op_b, real_t beta, std::vector<MatrixView> c) override;

  void gather_rows(batched::ExecutionContext& ctx, batched::StreamId stream,
                   std::vector<ConstMatrixView> src, std::vector<std::vector<index_t>> rows,
                   std::vector<MatrixView> dst) override;

  index_t bsr_gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
                   std::vector<index_t> row_ptr, std::vector<index_t> col,
                   std::vector<ConstMatrixView> blocks, std::vector<ConstMatrixView> x,
                   std::vector<MatrixView> y) override;

  void min_r_diag(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                  std::span<real_t> out) override;

  void min_r_diag_update(batched::ExecutionContext& ctx, std::span<const MatrixView> work,
                         std::span<const index_t> factored, std::span<std::vector<real_t>> tau,
                         std::span<real_t> out) override;

  void row_id(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
              index_t max_rank, std::span<la::RowID> out) override;

  void fill_gaussian(batched::ExecutionContext& ctx, MatrixView a, const GaussianStream& stream,
                     std::uint64_t offset) override;

  void fill_gaussian_blocks(batched::ExecutionContext& ctx, std::span<const MatrixView> blocks,
                            const GaussianStream& stream,
                            std::span<const std::uint64_t> offsets) override;

  void transpose(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                 std::span<const MatrixView> out) override;

  void potrf(batched::ExecutionContext& ctx, batched::StreamId stream,
             std::vector<MatrixView> a) override;

  void trsm_lower(batched::ExecutionContext& ctx, batched::StreamId stream, TrsmSide side,
                  la::Op op, std::vector<ConstMatrixView> l, std::vector<MatrixView> b) override;

  void generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                const kern::EntryGenerator& gen,
                std::vector<kern::BlockRequest> requests) override;

 protected:
  // Never inject on deallocate or scope transitions: RAII teardown and
  // poison accounting must stay exception-free.
  void* do_allocate(std::size_t bytes) override;
  void do_deallocate(void* ptr, std::size_t bytes) override;
  void kernel_enter() const override { forward_kernel_enter(*inner_); }
  void kernel_exit() const override { forward_kernel_exit(*inner_); }
  void on_transfer(std::size_t bytes) const override;

 private:
  FaultInjectingDevice(std::string name, std::shared_ptr<DeviceBackend> inner,
                       FaultSchedule schedule);
  friend std::shared_ptr<FaultInjectingDevice> make_fault_injecting_device(
      std::shared_ptr<DeviceBackend> inner, std::string name,
      std::optional<FaultSchedule> schedule);

  /// Count one injection point at `site`; throw the site's typed error if
  /// the schedule selects it. `what` names the failing operation.
  void visit_point(FaultSite site, std::string_view what, std::size_t bytes) const;

  std::string name_;
  std::shared_ptr<DeviceBackend> inner_;

  mutable std::mutex mu_;
  FaultSchedule schedule_;
  mutable FaultStats stats_;
  mutable bool one_shot_fired_ = false;
};

/// Wrap `inner` in a fault injector. With no explicit schedule, the
/// H2SKETCH_FAULT_SCHEDULE environment variable is parsed (once, here);
/// unset means `off`. An empty name defaults to "faulty-<inner name>".
std::shared_ptr<FaultInjectingDevice> make_fault_injecting_device(
    std::shared_ptr<DeviceBackend> inner, std::string name = {},
    std::optional<FaultSchedule> schedule = std::nullopt);

} // namespace h2sketch::backend
