#include "backend/registry.hpp"

#include <array>
#include <cstdlib>
#include <mutex>

#include "backend/cpu_backend.hpp"
#include "backend/sim_device.hpp"
#include "common/check.hpp"

namespace h2sketch::backend {

namespace {

constexpr std::array<std::string_view, 3> kNames = {"naive", "cpu", "simdevice"};

std::shared_ptr<DeviceBackend> shared_device(std::string_view name) {
  // One device instance per kind for the whole process: contexts created
  // per call (convenience overloads, samplers) must share the device heap,
  // and mixing construction-time and solve-time contexts must see the same
  // address space.
  static std::mutex mu;
  static std::shared_ptr<DeviceBackend> cpu, sim;
  std::lock_guard<std::mutex> lk(mu);
  if (name == "simdevice") {
    if (!sim) sim = make_sim_device();
    return sim;
  }
  if (!cpu) cpu = make_cpu_backend();
  return cpu;
}

} // namespace

std::span<const std::string_view> registered_backends() { return kNames; }

ExecutionConfig make_backend(std::string_view name) {
  if (name == "naive") return {make_cpu_backend(), LaunchMode::Naive};
  if (name == "cpu") return {make_cpu_backend(), LaunchMode::Batched};
  if (name == "simdevice") return {make_sim_device(), LaunchMode::Batched};
  H2S_CHECK(false, "unknown backend '" << std::string(name)
                                       << "' (registered: naive, cpu, simdevice)");
  return {};
}

ExecutionConfig shared_backend(std::string_view name) {
  if (name == "naive") return {shared_device("cpu"), LaunchMode::Naive};
  if (name == "cpu") return {shared_device("cpu"), LaunchMode::Batched};
  if (name == "simdevice") return {shared_device("simdevice"), LaunchMode::Batched};
  H2S_CHECK(false, "unknown backend '" << std::string(name)
                                       << "' (registered: naive, cpu, simdevice)");
  return {};
}

const std::string& default_backend_name() {
  static const std::string name = [] {
    if (const char* s = std::getenv("H2SKETCH_BACKEND")) {
      const std::string v(s);
      for (std::string_view n : kNames)
        if (v == n) return v;
      H2S_CHECK(false, "H2SKETCH_BACKEND='" << v << "' is not a registered backend "
                                            << "(naive, cpu, simdevice)");
    }
    return std::string("cpu");
  }();
  return name;
}

ExecutionConfig default_backend() { return shared_backend(default_backend_name()); }

} // namespace h2sketch::backend
