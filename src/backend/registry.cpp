#include "backend/registry.hpp"

#include <array>
#include <cstdlib>
#include <mutex>

#include "backend/cpu_backend.hpp"
#include "backend/fault_injection.hpp"
#include "backend/sim_device.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace h2sketch::backend {

namespace {

constexpr std::array<std::string_view, 5> kNames = {"naive", "cpu", "simdevice", "faulty-cpu",
                                                    "faulty-simdevice"};

/// The process-wide device singletons. Hoisted out of shared_device so the
/// metrics collector can walk whatever backends exist at snapshot time.
/// Leaked: instrument collectors may outlive static destruction order.
struct DeviceSingletons {
  std::mutex mu;
  std::shared_ptr<DeviceBackend> cpu, sim;
  std::shared_ptr<FaultInjectingDevice> faulty_cpu, faulty_sim;
};

DeviceSingletons& singletons() {
  static DeviceSingletons* s = new DeviceSingletons;
  return *s;
}

void emit_device_metrics(obs::SnapshotBuilder& b, std::string_view name,
                         const DeviceBackend& dev) {
  const DeviceStatsSnapshot s = dev.stats();
  const std::string prefix = "backend_" + std::string(name) + "_";
  b.counter(prefix + "bytes_to_device", s.bytes_to_device);
  b.counter(prefix + "bytes_to_host", s.bytes_to_host);
  b.counter(prefix + "bytes_on_device", s.bytes_on_device);
  b.counter(prefix + "allocations", s.allocations);
  b.counter(prefix + "deallocations", s.deallocations);
  b.gauge(prefix + "live_bytes", static_cast<double>(s.live_bytes));
  b.gauge(prefix + "peak_bytes", static_cast<double>(s.peak_bytes));
}

void emit_fault_metrics(obs::SnapshotBuilder& b, std::string_view name,
                        const FaultInjectingDevice& dev) {
  const FaultStats f = dev.fault_stats();
  const std::string prefix = "backend_" + std::string(name) + "_fault_";
  b.counter(prefix + "points", f.points());
  b.counter(prefix + "considered", f.considered);
  b.counter(prefix + "injected", f.injected);
}

/// One pull collector folds every live backend's DeviceStatsSnapshot (and
/// the fault injectors' counters) into the global registry snapshot.
void register_device_collector() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::MetricsRegistry::global().add_collector([](obs::SnapshotBuilder& b) {
      DeviceSingletons& s = singletons();
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.cpu) emit_device_metrics(b, "cpu", *s.cpu);
      if (s.sim) emit_device_metrics(b, "simdevice", *s.sim);
      if (s.faulty_cpu) emit_fault_metrics(b, "faulty-cpu", *s.faulty_cpu);
      if (s.faulty_sim) emit_fault_metrics(b, "faulty-simdevice", *s.faulty_sim);
    });
  });
}

std::shared_ptr<DeviceBackend> shared_device(std::string_view name) {
  // One device instance per kind for the whole process: contexts created
  // per call (convenience overloads, samplers) must share the device heap,
  // and mixing construction-time and solve-time contexts must see the same
  // address space. The faulty-* wrappers are likewise singletons, wrapping
  // the shared base device — their allocations live in the base heap, so a
  // degraded retry on the base config can touch them.
  register_device_collector();
  DeviceSingletons& sg = singletons();
  std::lock_guard<std::mutex> lk(sg.mu);
  if (name == "simdevice" || name == "faulty-simdevice") {
    if (!sg.sim) sg.sim = make_sim_device();
    if (name == "simdevice") return sg.sim;
    if (!sg.faulty_sim) sg.faulty_sim = make_fault_injecting_device(sg.sim, "faulty-simdevice");
    return sg.faulty_sim;
  }
  if (!sg.cpu) sg.cpu = make_cpu_backend();
  if (name == "faulty-cpu") {
    if (!sg.faulty_cpu) sg.faulty_cpu = make_fault_injecting_device(sg.cpu, "faulty-cpu");
    return sg.faulty_cpu;
  }
  return sg.cpu;
}

bool is_registered(std::string_view name) {
  for (std::string_view n : kNames)
    if (name == n) return true;
  return false;
}

std::mutex& default_name_mutex() {
  static std::mutex mu;
  return mu;
}

/// Explicit override installed by set_default_backend(); empty = read the
/// environment on each call. Guarded by default_name_mutex().
std::string& default_name_override() {
  static std::string name;
  return name;
}

} // namespace

std::span<const std::string_view> registered_backends() { return kNames; }

ExecutionConfig make_backend(std::string_view name) {
  // Deliberately identical to shared_backend: an operator built under one
  // configuration and applied under a per-call convenience context must
  // dereference buffers from the same device heap. Handing out a private
  // SimulatedDevice here once meant the two configs addressed different
  // mmap regions — and each convenience call leaked a whole reserved heap.
  return shared_backend(name);
}

ExecutionConfig shared_backend(std::string_view name) {
  if (name == "naive") return {shared_device("cpu"), LaunchMode::Naive};
  if (is_registered(name)) return {shared_device(name), LaunchMode::Batched};
  H2S_CHECK(false, "unknown backend '" << std::string(name) << "' (registered: naive, cpu, "
                                       << "simdevice, faulty-cpu, faulty-simdevice)");
  return {};
}

std::string default_backend_name() {
  {
    std::lock_guard<std::mutex> lk(default_name_mutex());
    if (!default_name_override().empty()) return default_name_override();
  }
  if (const char* s = std::getenv("H2SKETCH_BACKEND")) {
    const std::string v(s);
    H2S_CHECK(is_registered(v), "H2SKETCH_BACKEND='"
                                    << v << "' is not a registered backend "
                                    << "(naive, cpu, simdevice, faulty-cpu, faulty-simdevice)");
    return v;
  }
  return std::string("cpu");
}

void set_default_backend(std::string_view name) {
  H2S_CHECK(is_registered(name), "set_default_backend('"
                                     << std::string(name) << "'): not a registered backend "
                                     << "(naive, cpu, simdevice, faulty-cpu, faulty-simdevice)");
  std::lock_guard<std::mutex> lk(default_name_mutex());
  default_name_override() = std::string(name);
}

void reset_default_backend() {
  std::lock_guard<std::mutex> lk(default_name_mutex());
  default_name_override().clear();
}

ExecutionConfig default_backend() { return shared_backend(default_backend_name()); }

std::string_view degraded_backend_name(std::string_view name) {
  if (name == "faulty-cpu") return "cpu";
  if (name == "faulty-simdevice") return "simdevice";
  return name;
}

std::shared_ptr<FaultInjectingDevice> fault_injector(std::string_view name) {
  H2S_CHECK(name == "faulty-cpu" || name == "faulty-simdevice",
            "fault_injector('" << std::string(name) << "'): not a fault-injecting backend "
                               << "(faulty-cpu, faulty-simdevice)");
  auto dev = std::dynamic_pointer_cast<FaultInjectingDevice>(shared_device(name));
  H2S_CHECK(dev != nullptr, "fault_injector: registry did not produce a FaultInjectingDevice");
  return dev;
}

} // namespace h2sketch::backend
