#pragma once

#include "backend/device_backend.hpp"

/// \file device_matrix.hpp
/// Owning column-major matrix whose storage is a backend DeviceBuffer —
/// the device-resident counterpart of `Matrix`. Views over it are ordinary
/// MatrixViews (POD pointer + dims), so the batched primitives work on
/// host and device operands alike; the difference is that on a poisoning
/// backend the view's data may only be touched inside kernel scopes or
/// through the backend's explicit copy calls.
///
/// Semantics mirror `Matrix` where the construction algorithm relies on
/// them: `resize` zero-fills (adaptive beta=0 skips depend on zeroed
/// targets) and `append_cols` grows by zeroed columns preserving content
/// (a device-to-device copy).

namespace h2sketch::backend {

class DeviceMatrix {
 public:
  DeviceMatrix() = default;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Device-address views (contiguous, ld == rows).
  MatrixView view() {
    return MatrixView(static_cast<real_t*>(buf_.data()), rows_, cols_, std::max<index_t>(rows_, 1));
  }
  ConstMatrixView view() const {
    return ConstMatrixView(static_cast<const real_t*>(buf_.data()), rows_, cols_,
                           std::max<index_t>(rows_, 1));
  }

  /// Resize to m x n on `b`, discarding contents (entries zeroed).
  void resize(DeviceBackend& b, index_t m, index_t n);

  /// Resize without the zero fill, for panels whose every entry the next
  /// kernel overwrites (e.g. the ULV factor panels) — skips a full write
  /// pass over device memory.
  void resize_uninitialized(DeviceBackend& b, index_t m, index_t n);

  /// Append `extra` zero columns, preserving contents (device-side copy).
  void append_cols(DeviceBackend& b, index_t extra);

  /// Marshal a whole matrix across the boundary.
  void upload_from(ConstMatrixView host);
  Matrix to_host() const;

  DeviceBackend* backend() const { return buf_.backend(); }
  const std::shared_ptr<DeviceBackend>& backend_ptr() const { return buf_.backend_ptr(); }

 private:
  DeviceBuffer buf_;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

} // namespace h2sketch::backend
