#include "backend/block_arena.hpp"

#include <utility>

#include "common/check.hpp"

namespace h2sketch::backend {

namespace {
constexpr std::size_t kSlotAlign = 64;

std::size_t aligned_bytes(index_t rows, index_t cols) {
  const std::size_t raw = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
                          sizeof(real_t);
  return (raw + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
}
} // namespace

void BlockArena::reset(index_t count) {
  buf_.release();
  slots_.assign(static_cast<size_t>(count), Slot{});
  std::lock_guard<std::mutex> lk(mirror_mu_);
  mirror_.assign(static_cast<size_t>(count), Matrix());
  mirror_valid_.assign(static_cast<size_t>(count), 0);
}

void BlockArena::set_shape(index_t i, index_t r, index_t c) {
  H2S_CHECK(buf_.empty(), "BlockArena: set_shape after allocate");
  Slot& s = slots_[static_cast<size_t>(i)];
  s.rows = r;
  s.cols = c;
}

void BlockArena::allocate(DeviceBackend& dev) {
  H2S_CHECK(buf_.empty(), "BlockArena: already allocated");
  std::size_t off = 0;
  for (Slot& s : slots_) {
    s.offset = off;
    off += aligned_bytes(s.rows, s.cols);
  }
  if (off > 0) buf_ = dev.allocate(off);
  std::lock_guard<std::mutex> lk(mirror_mu_);
  mirror_valid_.assign(slots_.size(), 0);
}

void BlockArena::upload(index_t i, ConstMatrixView h) {
  const Slot& s = slots_[static_cast<size_t>(i)];
  H2S_CHECK(h.rows == s.rows && h.cols == s.cols, "BlockArena: upload shape mismatch");
  if (s.rows == 0 || s.cols == 0) return;
  backend()->upload(h, dev(i));
  std::lock_guard<std::mutex> lk(mirror_mu_);
  mirror_valid_[static_cast<size_t>(i)] = 0;
  mirror_[static_cast<size_t>(i)] = Matrix();
}

void BlockArena::stage(index_t i, Matrix m) {
  H2S_CHECK(buf_.empty(), "BlockArena: stage after allocate");
  Slot& s = slots_[static_cast<size_t>(i)];
  s.rows = m.rows();
  s.cols = m.cols();
  std::lock_guard<std::mutex> lk(mirror_mu_);
  mirror_[static_cast<size_t>(i)] = std::move(m);
  mirror_valid_[static_cast<size_t>(i)] = 1;
}

void BlockArena::commit(DeviceBackend& dev) {
  H2S_CHECK(buf_.empty(), "BlockArena: already allocated");
  std::size_t off = 0;
  for (Slot& s : slots_) {
    s.offset = off;
    off += aligned_bytes(s.rows, s.cols);
  }
  if (off > 0) buf_ = dev.allocate(off);
  // Upload every staged block; the mirror stays warm (it *is* the block).
  std::lock_guard<std::mutex> lk(mirror_mu_);
  for (index_t i = 0; i < count(); ++i) {
    const Slot& s = slots_[static_cast<size_t>(i)];
    if (s.rows == 0 || s.cols == 0) continue;
    const Matrix& m = mirror_[static_cast<size_t>(i)];
    H2S_CHECK(mirror_valid_[static_cast<size_t>(i)] != 0 && m.rows() == s.rows &&
                  m.cols() == s.cols,
              "BlockArena: commit with unstaged nonempty slot " << i);
    dev.upload(m.view(), this->dev(i));
  }
}

const Matrix& BlockArena::host(index_t i) const {
  std::lock_guard<std::mutex> lk(mirror_mu_);
  Matrix& m = mirror_[static_cast<size_t>(i)];
  if (mirror_valid_[static_cast<size_t>(i)] == 0) {
    const Slot& s = slots_[static_cast<size_t>(i)];
    m = Matrix(s.rows, s.cols);
    if (s.rows > 0 && s.cols > 0) backend()->download(dev(i), m.view());
    mirror_valid_[static_cast<size_t>(i)] = 1;
  }
  return m;
}

void BlockArena::fill_zero(index_t first, index_t n) {
  if (n <= 0 || buf_.empty()) return;
  const Slot& a = slots_[static_cast<size_t>(first)];
  const Slot& b = slots_[static_cast<size_t>(first + n - 1)];
  const std::size_t end = b.offset + aligned_bytes(b.rows, b.cols);
  if (end <= a.offset) return;
  backend()->fill_zero(static_cast<char*>(buf_.data()) + a.offset, end - a.offset);
  std::lock_guard<std::mutex> lk(mirror_mu_);
  for (index_t i = first; i < first + n; ++i) {
    mirror_valid_[static_cast<size_t>(i)] = 0;
    mirror_[static_cast<size_t>(i)] = Matrix();
  }
}

std::size_t BlockArena::payload_bytes() const {
  std::size_t bytes = 0;
  for (const Slot& s : slots_)
    bytes += static_cast<std::size_t>(s.rows) * static_cast<std::size_t>(s.cols) * sizeof(real_t);
  return bytes;
}

void BlockArena::move_from(BlockArena&& o) {
  std::scoped_lock lk(mirror_mu_, o.mirror_mu_);
  buf_ = std::move(o.buf_);
  slots_ = std::move(o.slots_);
  mirror_ = std::move(o.mirror_);
  mirror_valid_ = std::move(o.mirror_valid_);
  o.slots_.clear();
  o.mirror_.clear();
  o.mirror_valid_.clear();
}

} // namespace h2sketch::backend
