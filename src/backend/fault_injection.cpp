#include "backend/fault_injection.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace h2sketch::backend {

namespace {

/// splitmix64: a fast, well-mixed hash making probability-mode decisions a
/// pure function of (seed, point index) — reruns fail at the same points.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t parse_u64(std::string_view s, std::string_view spec) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  H2S_CHECK(ec == std::errc() && p == s.data() + s.size(),
            "fault schedule '" << std::string(spec) << "': bad integer field '" << std::string(s)
                               << "'");
  return v;
}

std::optional<FaultSite> parse_site(std::string_view s, std::string_view spec) {
  if (s == "any") return std::nullopt;
  if (s == "alloc") return FaultSite::Alloc;
  if (s == "copy") return FaultSite::Copy;
  if (s == "launch") return FaultSite::Launch;
  H2S_CHECK(false, "fault schedule '" << std::string(spec) << "': unknown site '" << std::string(s)
                                      << "' (alloc, copy, launch, any)");
  return std::nullopt;
}

std::vector<std::string_view> split_colons(std::string_view s) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = s.find(':');
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

} // namespace

std::string_view fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::Alloc: return "alloc";
    case FaultSite::Copy: return "copy";
    case FaultSite::Launch: return "launch";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::one_shot_at(std::uint64_t k, std::optional<FaultSite> s) {
  FaultSchedule f;
  f.kind = Kind::OneShot;
  f.index = k;
  f.site = s;
  return f;
}

FaultSchedule FaultSchedule::every_nth(std::uint64_t n, std::optional<FaultSite> s) {
  H2S_CHECK(n > 0, "fault schedule: every-nth period must be positive");
  FaultSchedule f;
  f.kind = Kind::EveryNth;
  f.period = n;
  f.site = s;
  return f;
}

FaultSchedule FaultSchedule::with_probability(double p, std::uint64_t seed,
                                              std::optional<FaultSite> s) {
  H2S_CHECK(p >= 0.0 && p <= 1.0, "fault schedule: probability must be in [0, 1]");
  FaultSchedule f;
  f.kind = Kind::Probability;
  f.probability = p;
  f.seed = seed;
  f.site = s;
  return f;
}

FaultSchedule FaultSchedule::parse(std::string_view spec) {
  const auto fields = split_colons(spec);
  const std::string_view head = fields[0];
  if (head.empty() || head == "off") {
    H2S_CHECK(fields.size() == 1, "fault schedule '" << std::string(spec)
                                                     << "': 'off' takes no fields");
    return off();
  }
  if (head == "oneshot") {
    H2S_CHECK(fields.size() >= 2 && fields.size() <= 3,
              "fault schedule '" << std::string(spec) << "': want oneshot:K[:SITE]");
    return one_shot_at(parse_u64(fields[1], spec),
                       fields.size() == 3 ? parse_site(fields[2], spec) : std::nullopt);
  }
  if (head == "every") {
    H2S_CHECK(fields.size() >= 2 && fields.size() <= 3,
              "fault schedule '" << std::string(spec) << "': want every:N[:SITE]");
    return every_nth(parse_u64(fields[1], spec),
                     fields.size() == 3 ? parse_site(fields[2], spec) : std::nullopt);
  }
  if (head == "prob") {
    H2S_CHECK(fields.size() >= 2 && fields.size() <= 4,
              "fault schedule '" << std::string(spec) << "': want prob:P[:SEED[:SITE]]");
    char* end = nullptr;
    const std::string pstr(fields[1]);
    const double p = std::strtod(pstr.c_str(), &end);
    H2S_CHECK(end == pstr.c_str() + pstr.size() && p >= 0.0 && p <= 1.0,
              "fault schedule '" << std::string(spec) << "': bad probability '" << pstr << "'");
    return with_probability(p, fields.size() >= 3 ? parse_u64(fields[2], spec) : 0,
                            fields.size() == 4 ? parse_site(fields[3], spec) : std::nullopt);
  }
  H2S_CHECK(false, "fault schedule '" << std::string(spec)
                                      << "': unknown kind (off, oneshot, every, prob)");
  return off();
}

FaultInjectingDevice::FaultInjectingDevice(std::string name, std::shared_ptr<DeviceBackend> inner,
                                           FaultSchedule schedule)
    : name_(std::move(name)), inner_(std::move(inner)), schedule_(schedule) {}

void FaultInjectingDevice::set_schedule(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lk(mu_);
  schedule_ = schedule;
  stats_ = FaultStats{};
  one_shot_fired_ = false;
}

FaultSchedule FaultInjectingDevice::schedule() const {
  std::lock_guard<std::mutex> lk(mu_);
  return schedule_;
}

void FaultInjectingDevice::reset_fault_state() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = FaultStats{};
  one_shot_fired_ = false;
}

FaultStats FaultInjectingDevice::fault_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void FaultInjectingDevice::visit_point(FaultSite site, std::string_view what,
                                       std::size_t bytes) const {
  std::uint64_t idx = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (site) {
      case FaultSite::Alloc: ++stats_.alloc_points; break;
      case FaultSite::Copy: ++stats_.copy_points; break;
      case FaultSite::Launch: ++stats_.launch_points; break;
    }
    if (schedule_.kind == FaultSchedule::Kind::Off) return;
    if (schedule_.site && *schedule_.site != site) return;
    idx = stats_.considered++;
    switch (schedule_.kind) {
      case FaultSchedule::Kind::Off: break;
      case FaultSchedule::Kind::OneShot:
        fire = !one_shot_fired_ && idx == schedule_.index;
        if (fire) one_shot_fired_ = true;
        break;
      case FaultSchedule::Kind::EveryNth:
        fire = (idx + 1) % schedule_.period == 0;
        break;
      case FaultSchedule::Kind::Probability:
        fire = unit_double(splitmix64(schedule_.seed ^ (idx + 1))) < schedule_.probability;
        break;
    }
    if (fire) ++stats_.injected;
  }
  if (!fire) return;

  std::ostringstream os;
  os << "injected fault [" << name_ << "] at " << fault_site_name(site) << " point #" << idx
     << " (" << what << ", " << bytes << " bytes)";
  if (site == FaultSite::Alloc) throw DeviceOomError(os.str(), bytes);
  throw LaunchError(os.str());
}

void* FaultInjectingDevice::do_allocate(std::size_t bytes) {
  visit_point(FaultSite::Alloc, "allocate", bytes);
  return forward_allocate(*inner_, bytes);
}

void FaultInjectingDevice::do_deallocate(void* ptr, std::size_t bytes) {
  forward_deallocate(*inner_, ptr, bytes);
}

void FaultInjectingDevice::on_transfer(std::size_t bytes) const {
  visit_point(FaultSite::Copy, "transfer", bytes);
}

void FaultInjectingDevice::gemm(batched::ExecutionContext& ctx, batched::StreamId stream,
                                real_t alpha, std::vector<ConstMatrixView> a, la::Op op_a,
                                std::vector<ConstMatrixView> b, la::Op op_b, real_t beta,
                                std::vector<MatrixView> c) {
  visit_point(FaultSite::Launch, op_name(OpKind::Gemm), 0);
  inner_->gemm(ctx, stream, alpha, std::move(a), op_a, std::move(b), op_b, beta, std::move(c));
}

void FaultInjectingDevice::gather_rows(batched::ExecutionContext& ctx, batched::StreamId stream,
                                       std::vector<ConstMatrixView> src,
                                       std::vector<std::vector<index_t>> rows,
                                       std::vector<MatrixView> dst) {
  visit_point(FaultSite::Launch, op_name(OpKind::GatherRows), 0);
  inner_->gather_rows(ctx, stream, std::move(src), std::move(rows), std::move(dst));
}

index_t FaultInjectingDevice::bsr_gemm(batched::ExecutionContext& ctx, batched::StreamId stream,
                                       real_t alpha, std::vector<index_t> row_ptr,
                                       std::vector<index_t> col,
                                       std::vector<ConstMatrixView> blocks,
                                       std::vector<ConstMatrixView> x,
                                       std::vector<MatrixView> y) {
  visit_point(FaultSite::Launch, op_name(OpKind::BsrGemm), 0);
  return inner_->bsr_gemm(ctx, stream, alpha, std::move(row_ptr), std::move(col),
                          std::move(blocks), std::move(x), std::move(y));
}

void FaultInjectingDevice::min_r_diag(batched::ExecutionContext& ctx,
                                      std::span<const ConstMatrixView> a, std::span<real_t> out) {
  visit_point(FaultSite::Launch, op_name(OpKind::MinRDiag), 0);
  inner_->min_r_diag(ctx, a, out);
}

void FaultInjectingDevice::min_r_diag_update(batched::ExecutionContext& ctx,
                                             std::span<const MatrixView> work,
                                             std::span<const index_t> factored,
                                             std::span<std::vector<real_t>> tau,
                                             std::span<real_t> out) {
  visit_point(FaultSite::Launch, op_name(OpKind::MinRDiagUpdate), 0);
  inner_->min_r_diag_update(ctx, work, factored, tau, out);
}

void FaultInjectingDevice::row_id(batched::ExecutionContext& ctx,
                                  std::span<const ConstMatrixView> y, real_t abs_tol,
                                  index_t max_rank, std::span<la::RowID> out) {
  visit_point(FaultSite::Launch, op_name(OpKind::RowId), 0);
  inner_->row_id(ctx, y, abs_tol, max_rank, out);
}

void FaultInjectingDevice::fill_gaussian(batched::ExecutionContext& ctx, MatrixView a,
                                         const GaussianStream& stream, std::uint64_t offset) {
  visit_point(FaultSite::Launch, op_name(OpKind::FillGaussian), 0);
  inner_->fill_gaussian(ctx, a, stream, offset);
}

void FaultInjectingDevice::fill_gaussian_blocks(batched::ExecutionContext& ctx,
                                                std::span<const MatrixView> blocks,
                                                const GaussianStream& stream,
                                                std::span<const std::uint64_t> offsets) {
  visit_point(FaultSite::Launch, op_name(OpKind::FillGaussian), 0);
  inner_->fill_gaussian_blocks(ctx, blocks, stream, offsets);
}

void FaultInjectingDevice::transpose(batched::ExecutionContext& ctx,
                                     std::span<const ConstMatrixView> in,
                                     std::span<const MatrixView> out) {
  visit_point(FaultSite::Launch, op_name(OpKind::Transpose), 0);
  inner_->transpose(ctx, in, out);
}

void FaultInjectingDevice::potrf(batched::ExecutionContext& ctx, batched::StreamId stream,
                                 std::vector<MatrixView> a) {
  visit_point(FaultSite::Launch, op_name(OpKind::Potrf), 0);
  inner_->potrf(ctx, stream, std::move(a));
}

void FaultInjectingDevice::trsm_lower(batched::ExecutionContext& ctx, batched::StreamId stream,
                                      TrsmSide side, la::Op op, std::vector<ConstMatrixView> l,
                                      std::vector<MatrixView> b) {
  visit_point(FaultSite::Launch, op_name(OpKind::TrsmLower), 0);
  inner_->trsm_lower(ctx, stream, side, op, std::move(l), std::move(b));
}

void FaultInjectingDevice::generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                                    const kern::EntryGenerator& gen,
                                    std::vector<kern::BlockRequest> requests) {
  visit_point(FaultSite::Launch, op_name(OpKind::EntryGen), 0);
  inner_->generate(ctx, stream, gen, std::move(requests));
}

std::shared_ptr<FaultInjectingDevice> make_fault_injecting_device(
    std::shared_ptr<DeviceBackend> inner, std::string name,
    std::optional<FaultSchedule> schedule) {
  H2S_CHECK(inner != nullptr, "fault injector: inner backend required");
  if (name.empty()) name = "faulty-" + std::string(inner->name());
  FaultSchedule sched = FaultSchedule::off();
  if (schedule) {
    sched = *schedule;
  } else if (const char* env = std::getenv("H2SKETCH_FAULT_SCHEDULE")) {
    sched = FaultSchedule::parse(env);
  }
  return std::shared_ptr<FaultInjectingDevice>(
      new FaultInjectingDevice(std::move(name), std::move(inner), sched));
}

} // namespace h2sketch::backend
