#include "backend/cpu_backend.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <new>
#include <utility>

#include "batched/device.hpp"
#include "la/qr.hpp"

namespace h2sketch::backend {

namespace {

/// Owned marshaled operands of an in-flight launch (the stream API moves
/// the caller's view vectors here so the caller's stack can unwind before
/// the launch runs).
struct GemmLaunch {
  std::vector<ConstMatrixView> a, b;
  std::vector<MatrixView> c;
};

struct GatherLaunch {
  std::vector<ConstMatrixView> src;
  std::vector<std::vector<index_t>> rows;
  std::vector<MatrixView> dst;
};

struct BsrLaunch {
  std::vector<index_t> row_ptr, col;
  std::vector<ConstMatrixView> blocks, x;
  std::vector<MatrixView> y;
};

struct SolveLaunch {
  std::vector<ConstMatrixView> l;
  std::vector<MatrixView> b;
};

} // namespace

void* CpuBackend::do_allocate(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{64});
}

void CpuBackend::do_deallocate(void* ptr, std::size_t bytes) {
  ::operator delete(ptr, bytes, std::align_val_t{64});
}

std::shared_ptr<CpuBackend> make_cpu_backend() {
  return std::shared_ptr<CpuBackend>(new CpuBackend());
}

void CpuBackend::gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
                      std::vector<ConstMatrixView> a, la::Op op_a,
                      std::vector<ConstMatrixView> b, la::Op op_b, real_t beta,
                      std::vector<MatrixView> c) {
  H2S_CHECK(a.size() == b.size() && a.size() == c.size(), "batched_gemm: batch size mismatch");
  auto st = std::make_shared<GemmLaunch>(GemmLaunch{std::move(a), std::move(b), std::move(c)});
  const auto batch = static_cast<index_t>(st->c.size());
  // Per-entry cost: the m x n x k flop product. Each entry goes through
  // la::gemm's shape dispatch, so large entries hit the blocked
  // pack-and-compute engine while sketching-sized ones stay on the naive
  // kernels — per-entry kernel selection as in the paper's CPU path.
  ctx.run_batch(
      stream, batch,
      [&g = *st, op_a](index_t i) {
        const auto ui = static_cast<size_t>(i);
        return g.c[ui].rows * g.c[ui].cols * la::op_cols(g.a[ui], op_a);
      },
      [st, alpha, op_a, op_b, beta](index_t i) {
        const auto ui = static_cast<size_t>(i);
        if (st->c[ui].empty()) return;
        la::gemm(alpha, st->a[ui], op_a, st->b[ui], op_b, beta, st->c[ui]);
      });
}

void CpuBackend::gather_rows(batched::ExecutionContext& ctx, batched::StreamId stream,
                             std::vector<ConstMatrixView> src,
                             std::vector<std::vector<index_t>> rows,
                             std::vector<MatrixView> dst) {
  H2S_CHECK(src.size() == rows.size() && src.size() == dst.size(),
            "batched_gather_rows: batch size mismatch");
  auto st = std::make_shared<GatherLaunch>(
      GatherLaunch{std::move(src), std::move(rows), std::move(dst)});
  const auto batch = static_cast<index_t>(st->dst.size());
  ctx.run_batch(
      stream, batch,
      [&g = *st](index_t i) {
        const auto ui = static_cast<size_t>(i);
        return g.dst[ui].rows * g.dst[ui].cols;
      },
      [st](index_t i) {
        const auto ui = static_cast<size_t>(i);
        if (st->dst[ui].empty()) return;
        h2sketch::gather_rows(st->src[ui], st->rows[ui], st->dst[ui]);
      });
}

index_t CpuBackend::bsr_gemm(batched::ExecutionContext& ctx, batched::StreamId stream,
                             real_t alpha, std::vector<index_t> row_ptr,
                             std::vector<index_t> col, std::vector<ConstMatrixView> blocks,
                             std::vector<ConstMatrixView> x, std::vector<MatrixView> y) {
  H2S_CHECK(!row_ptr.empty(), "bsr_gemm: row_ptr must have at least one entry");
  const index_t rows = static_cast<index_t>(row_ptr.size()) - 1;
  H2S_CHECK(static_cast<index_t>(y.size()) == rows, "bsr_gemm: output count mismatch");
  H2S_CHECK(col.size() == blocks.size(), "bsr_gemm: block count mismatch");

  index_t max_per_row = 0;
  for (index_t r = 0; r < rows; ++r)
    max_per_row = std::max(max_per_row,
                           row_ptr[static_cast<size_t>(r + 1)] - row_ptr[static_cast<size_t>(r)]);

  auto st = std::make_shared<BsrLaunch>(BsrLaunch{std::move(row_ptr), std::move(col),
                                                  std::move(blocks), std::move(x), std::move(y)});

  // Sub-launch k: the k-th block of each row (rows with fewer blocks skip).
  // Each y[r] is touched by exactly one batch entry per sub-launch, and the
  // sub-launches run FIFO on `stream`. The per-block products route through
  // la::gemm's engine dispatch, so wide sample blocks are computed by the
  // blocked GEMM engine.
  for (index_t k = 0; k < max_per_row; ++k) {
    ctx.run_batch(
        stream, rows,
        [&g = *st, k](index_t r) -> index_t {
          const index_t base = g.row_ptr[static_cast<size_t>(r)];
          if (base + k >= g.row_ptr[static_cast<size_t>(r + 1)]) return 0;
          const auto e = static_cast<size_t>(base + k);
          return g.blocks[e].rows * g.blocks[e].cols * g.x[static_cast<size_t>(g.col[e])].cols;
        },
        [st, alpha, k](index_t r) {
          const index_t base = st->row_ptr[static_cast<size_t>(r)];
          if (base + k >= st->row_ptr[static_cast<size_t>(r + 1)]) return;
          const auto e = static_cast<size_t>(base + k);
          const index_t c = st->col[e];
          if (st->y[static_cast<size_t>(r)].empty() || st->blocks[e].empty()) return;
          la::gemm(alpha, st->blocks[e], la::Op::None, st->x[static_cast<size_t>(c)],
                   la::Op::None, 1.0, st->y[static_cast<size_t>(r)]);
        });
  }
  return max_per_row;
}

void CpuBackend::min_r_diag(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                            std::span<real_t> out) {
  H2S_CHECK(a.size() == out.size(), "batched_min_r_diag: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(a.size()), [&](index_t i) {
    const auto ui = static_cast<size_t>(i);
    out[ui] = la::min_abs_r_diag(a[ui]);
  });
}

void CpuBackend::min_r_diag_update(batched::ExecutionContext& ctx,
                                   std::span<const MatrixView> work,
                                   std::span<const index_t> factored,
                                   std::span<std::vector<real_t>> tau, std::span<real_t> out) {
  H2S_CHECK(work.size() == out.size() && work.size() == factored.size() &&
                work.size() == tau.size(),
            "batched_min_r_diag_update: batch size mismatch");
  // Synchronous (the probe gates the adaptive loop) and cost-chunked: per
  // entry the continuation replays k reflectors over dn appended columns and
  // factors them, O(m k dn + m dn^2) — the dominant m-range spans orders of
  // magnitude across a level.
  ctx.run_batch(
      batched::kSampleStream, static_cast<index_t>(work.size()),
      [&](index_t i) {
        const auto& v = work[static_cast<size_t>(i)];
        const index_t dn = v.cols - factored[static_cast<size_t>(i)];
        return v.rows * dn * (std::min(v.rows, v.cols) + dn);
      },
      [&](index_t i) {
        const auto ui = static_cast<size_t>(i);
        const MatrixView& v = work[ui];
        if (v.rows == 0 || v.cols == 0) {
          out[ui] = 0.0;
          return;
        }
        la::householder_qr_continue(v, tau[ui], factored[ui]);
        const index_t kmax = std::min(v.rows, v.cols);
        real_t mn = std::abs(v(0, 0));
        for (index_t d = 1; d < kmax; ++d) mn = std::min(mn, std::abs(v(d, d)));
        out[ui] = mn;
      });
  ctx.sync(batched::kSampleStream);
}

void CpuBackend::row_id(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> y,
                        real_t abs_tol, index_t max_rank, std::span<la::RowID> out) {
  H2S_CHECK(y.size() == out.size(), "batched_row_id: batch size mismatch");
  // Synchronous (the IDs gate the level sweep), but cost-chunked: a level's
  // sample blocks differ in row count by orders of magnitude, and the ID is
  // O(m * n * min(m, n)) per entry.
  ctx.run_batch(
      batched::kSampleStream, static_cast<index_t>(y.size()),
      [&y](index_t i) {
        const auto& v = y[static_cast<size_t>(i)];
        return v.rows * v.cols * std::min(v.rows, v.cols);
      },
      [&](index_t i) {
        const auto ui = static_cast<size_t>(i);
        out[ui] = la::row_id(y[ui], abs_tol, max_rank);
      });
  ctx.sync(batched::kSampleStream);
}

void CpuBackend::fill_gaussian(batched::ExecutionContext& ctx, MatrixView a,
                               const GaussianStream& stream, std::uint64_t offset) {
  // An empty fill is no launch — mirrors run_batch's uniform batch <= 0
  // early-return so empty levels cost zero launches in either launch mode.
  if (a.empty()) return;
  // Parallelize across columns; element addressing keeps the result
  // order-independent. The caller's thread holds a kernel scope for the
  // whole monolithic launch (the pool workers inherit the process-wide
  // unlock).
  ctx.count_launch(1);
  KernelScope ks(this);
  parallel_for(a.cols, [&](index_t j) {
    for (index_t i = 0; i < a.rows; ++i)
      a(i, j) = stream(offset + static_cast<std::uint64_t>(j) * a.rows + i);
  });
}

void CpuBackend::fill_gaussian_blocks(batched::ExecutionContext& ctx,
                                      std::span<const MatrixView> blocks,
                                      const GaussianStream& stream,
                                      std::span<const std::uint64_t> offsets) {
  H2S_CHECK(blocks.size() == offsets.size(), "batched_fill_gaussian: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(blocks.size()), [&](index_t i) {
    const auto u = static_cast<size_t>(i);
    h2sketch::fill_gaussian(blocks[u], stream, offsets[u]);
  });
}

void CpuBackend::transpose(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                           std::span<const MatrixView> out) {
  H2S_CHECK(in.size() == out.size(), "batched_transpose: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(in.size()), [&](index_t idx) {
    const auto u = static_cast<size_t>(idx);
    const ConstMatrixView& a = in[u];
    const MatrixView& b = out[u];
    H2S_CHECK(a.rows == b.cols && a.cols == b.rows, "batched_transpose: shape mismatch");
    for (index_t j = 0; j < a.cols; ++j)
      for (index_t i = 0; i < a.rows; ++i) b(j, i) = a(i, j);
  });
}

void CpuBackend::potrf(batched::ExecutionContext& ctx, batched::StreamId stream,
                       std::vector<MatrixView> a) {
  const auto batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  auto st = std::make_shared<std::vector<MatrixView>>(std::move(a));
  ctx.run_batch(
      stream, batch,
      [&v = *st](index_t i) {
        const index_t n = v[static_cast<size_t>(i)].rows;
        return n * n * n / 3 + 1;
      },
      [st](index_t i) {
        MatrixView& v = (*st)[static_cast<size_t>(i)];
        if (v.empty()) return;
        la::cholesky(v);
      });
}

void CpuBackend::trsm_lower(batched::ExecutionContext& ctx, batched::StreamId stream,
                            TrsmSide side, la::Op op, std::vector<ConstMatrixView> l,
                            std::vector<MatrixView> b) {
  H2S_CHECK(l.size() == b.size(), "batched_trsm_lower: batch size mismatch");
  const auto batch = static_cast<index_t>(l.size());
  if (batch == 0) return;
  auto st = std::make_shared<SolveLaunch>(SolveLaunch{std::move(l), std::move(b)});
  ctx.run_batch(
      stream, batch,
      [&g = *st](index_t i) {
        const auto ui = static_cast<size_t>(i);
        const index_t n = g.l[ui].rows;
        const index_t nrhs = std::max(g.b[ui].rows, g.b[ui].cols);
        return n * n * nrhs + 1;
      },
      [st, side, op](index_t i) {
        const auto ui = static_cast<size_t>(i);
        if (st->l[ui].empty() || st->b[ui].empty()) return;
        if (side == TrsmSide::Left)
          la::trsm_lower_left(st->l[ui], op, st->b[ui]);
        else
          la::trsm_lower_right(st->l[ui], op, st->b[ui]);
      });
}

void CpuBackend::generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                          const kern::EntryGenerator& gen,
                          std::vector<kern::BlockRequest> requests) {
  auto st = std::make_shared<std::vector<kern::BlockRequest>>(std::move(requests));
  const auto batch = static_cast<index_t>(st->size());
  // Cost = entries evaluated; kernel evaluations dominate this launch.
  ctx.run_batch(
      stream, batch,
      [&reqs = *st](index_t i) {
        const auto& r = reqs[static_cast<size_t>(i)];
        return r.out.rows * r.out.cols;
      },
      [st, &gen](index_t i) {
        const auto& r = (*st)[static_cast<size_t>(i)];
        if (r.out.empty()) return;
        gen.generate_block(r.rows, r.cols, r.out);
      });
}

} // namespace h2sketch::backend
