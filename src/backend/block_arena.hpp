#pragma once

#include <mutex>
#include <vector>

#include "backend/device_backend.hpp"

/// \file block_arena.hpp
/// Packed per-level arena of device-resident matrix blocks — the storage
/// unit behind the device-resident `H2Matrix` / `HssMatrix` / ULV factor.
///
/// One arena holds every block of one kind at one level (all leaf bases,
/// all transfers, all coupling blocks, ...) in a single `DeviceBuffer`,
/// with 64-byte aligned slots carved out per block. Builders either
///
///  * **write through**: `reset` + `set_shape` each slot, `allocate` once,
///    then target `dev(i)` views from kernel launches / explicit uploads —
///    the steady-state path, where operands are born on the device and
///    never cross the boundary again; or
///  * **stage**: `stage(i, Matrix)` host blocks as they are produced and
///    `commit` once at the end — the compatibility path for single-pass
///    host-side writers (Chebyshev construction, io load), costing one
///    upload per block and leaving the host mirror warm.
///
/// Consumers that genuinely need host-side elements (densify, io save,
/// entry evaluation) read the lazy mirror via `host(i)`: the block is
/// downloaded on first access and cached, so diagnostic paths stay cheap
/// without ever putting host copies on the apply path. The mirror is
/// guarded by a mutex; `dev(i)` views and slot dims are lock-free and safe
/// for concurrent readers once the arena is built.
///
/// On `CpuBackend` the "device" buffer is host memory and the packing is
/// still a win: one allocation per level and contiguous operands in the
/// batched gemm sweeps. On a poisoning backend `dev(i)` data may only be
/// touched inside kernel scopes or through the backend's explicit copies.

namespace h2sketch::backend {

class BlockArena {
 public:
  BlockArena() = default;
  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;
  BlockArena(BlockArena&& o) noexcept { move_from(std::move(o)); }
  BlockArena& operator=(BlockArena&& o) noexcept {
    if (this != &o) move_from(std::move(o));
    return *this;
  }

  /// Drop all storage and start over with `count` empty (0 x 0) slots.
  void reset(index_t count);

  index_t count() const { return static_cast<index_t>(slots_.size()); }
  bool allocated() const { return !buf_.empty(); }
  index_t rows(index_t i) const { return slots_[static_cast<size_t>(i)].rows; }
  index_t cols(index_t i) const { return slots_[static_cast<size_t>(i)].cols; }

  /// Declare slot `i`'s dims ahead of `allocate`. Only valid before the
  /// arena is allocated.
  void set_shape(index_t i, index_t r, index_t c);

  /// Lay out all declared slots (64-byte aligned) and grab one DeviceBuffer
  /// for the level. Contents are uninitialized: the builder's launches or
  /// uploads are expected to cover every slot. Invalidates the host mirror.
  void allocate(DeviceBackend& dev);

  /// Device-address view of slot `i` (contiguous, ld == rows). Empty slots
  /// yield empty views.
  MatrixView dev(index_t i) {
    const Slot& s = slots_[static_cast<size_t>(i)];
    return MatrixView(slot_ptr(s), s.rows, s.cols, std::max<index_t>(s.rows, 1));
  }
  ConstMatrixView dev(index_t i) const {
    const Slot& s = slots_[static_cast<size_t>(i)];
    return ConstMatrixView(slot_ptr(s), s.rows, s.cols, std::max<index_t>(s.rows, 1));
  }

  /// Explicit host -> device copy into slot `i` (dims must match the
  /// declared shape). Invalidates that slot's mirror entry.
  void upload(index_t i, ConstMatrixView host);

  /// Host-staging path: park a host block in slot `i`. `commit` derives
  /// every slot's shape from its staged block (unstaged slots stay empty),
  /// allocates the arena, uploads all staged blocks and keeps the mirror
  /// warm — one upload per block, zero downloads later.
  void stage(index_t i, Matrix m);
  void commit(DeviceBackend& dev);

  /// Lazy host mirror of slot `i`: downloaded on first access, cached until
  /// the device copy is rewritten (allocate/upload). Thread-safe.
  const Matrix& host(index_t i) const;

  /// Device memset-to-zero over the contiguous slot range [first, first+n)
  /// including alignment padding — one fill instead of n.
  void fill_zero(index_t first, index_t n);

  /// Real bytes held in the device buffer (alignment padding included) —
  /// what eviction frees.
  std::size_t device_bytes() const { return buf_.bytes(); }
  /// Sum of rows*cols*sizeof(real_t) over all slots (the logical payload).
  std::size_t payload_bytes() const;

  DeviceBackend* backend() const { return buf_.backend(); }
  const std::shared_ptr<DeviceBackend>& backend_ptr() const { return buf_.backend_ptr(); }

 private:
  struct Slot {
    index_t rows = 0;
    index_t cols = 0;
    std::size_t offset = 0; ///< byte offset into buf_
  };

  real_t* slot_ptr(const Slot& s) const {
    if (s.rows == 0 || s.cols == 0 || buf_.empty()) return nullptr;
    return reinterpret_cast<real_t*>(static_cast<char*>(buf_.data()) + s.offset);
  }
  void move_from(BlockArena&& o);

  DeviceBuffer buf_;
  std::vector<Slot> slots_;
  mutable std::mutex mirror_mu_;
  mutable std::vector<Matrix> mirror_;
  mutable std::vector<char> mirror_valid_;
};

} // namespace h2sketch::backend
