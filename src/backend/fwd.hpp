#pragma once

/// \file fwd.hpp
/// Forward declarations shared between the backend layer and the batched
/// execution layer, so that op signatures can mention the execution context
/// without creating an include cycle (device.hpp owns the full definition).

namespace h2sketch::batched {

class ExecutionContext;

/// Logical stream handle (mirrors CUDA stream handles). The full stream API
/// lives in batched/device.hpp; the alias is re-declared here so backend op
/// signatures can name it.
using StreamId = int;

} // namespace h2sketch::batched
