#pragma once

#include <map>
#include <mutex>

#include "backend/cpu_backend.hpp"

/// \file sim_device.hpp
/// SimulatedDevice: a backend that behaves like a discrete accelerator
/// attached to the host, minus the actual accelerator.
///
///  * Device buffers come from a **separate heap** — a reserved virtual
///    address range distinct from the host allocator — so device pointers
///    and host pointers are never interchangeable by accident.
///  * Data crosses the boundary only through the explicit
///    `copy_to_device` / `copy_to_host` calls of the backend memory model,
///    whose byte counts the ablation benchmark reports as PCIe-equivalent
///    traffic.
///  * With **poisoning** enabled (the default; `H2SKETCH_DEVICE_POISON=0`
///    disables), device pages are mapped `PROT_NONE` whenever no kernel
///    scope is active: a host-side dereference of marshaled device data
///    faults immediately instead of silently reading through, which is
///    exactly the bug class a real `cudaMalloc` pointer would produce.
///
/// Compute itself is inherited unchanged from CpuBackend — the simulated
/// device executes the same arithmetic in the same order, which is what
/// makes `CpuBackend` vs `SimulatedDevice` bitwise-identical by
/// construction and isolates the *memory discipline* as the thing under
/// test.

namespace h2sketch::backend {

struct SimDeviceOptions {
  /// Reserved device-heap size. 0 → $H2SKETCH_SIMDEVICE_HEAP_MB or 4 GiB.
  std::size_t heap_bytes = 0;
  /// Poison device pages against host dereference outside kernel scopes:
  /// 1 = on, 0 = off, -1 → $H2SKETCH_DEVICE_POISON, default on. Poisoning
  /// requires mmap/mprotect; on platforms without them it is forced off.
  int poison = -1;
};

class SimulatedDevice final : public CpuBackend {
 public:
  ~SimulatedDevice() override;

  std::string_view name() const override { return "simdevice"; }
  bool is_device() const override { return true; }

  /// Whether host-dereference poisoning is actually active.
  bool poison_active() const { return poison_; }

  /// True if p points into this device's heap (test/diagnostic helper).
  bool owns(const void* p) const;

  std::size_t heap_bytes() const { return heap_bytes_; }

 protected:
  void* do_allocate(std::size_t bytes) override;
  void do_deallocate(void* ptr, std::size_t bytes) override;
  void kernel_enter() const override;
  void kernel_exit() const override;

 private:
  explicit SimulatedDevice(const SimDeviceOptions& opts);
  friend std::shared_ptr<SimulatedDevice> make_sim_device(SimDeviceOptions opts);

  /// mprotect [base_, high_water_) to `prot`; requires mu_ held.
  void protect_all(int prot) const;

  std::byte* base_ = nullptr;      ///< reserved device address range
  std::size_t heap_bytes_ = 0;     ///< size of the reservation
  bool poison_ = false;
  bool mapped_ = false;            ///< base_ came from mmap (vs new[])

  mutable std::mutex mu_;          ///< guards the allocator and scope depth
  std::size_t high_water_ = 0;     ///< top of the ever-touched region
  std::size_t unlocked_limit_ = 0; ///< pages currently mapped readable (no-poison mode)
  std::map<std::size_t, std::size_t> free_blocks_; ///< offset -> size, page granular
  mutable int scope_depth_ = 0;    ///< live kernel scopes (process-wide unlock)
};

/// Create a SimulatedDevice. The heap is reserved up front (lazily
/// committed); creation fails loudly if the reservation cannot be made.
std::shared_ptr<SimulatedDevice> make_sim_device(SimDeviceOptions opts = {});

} // namespace h2sketch::backend
