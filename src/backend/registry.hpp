#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "backend/device_backend.hpp"

/// \file registry.hpp
/// Named backend configurations. A configuration pairs a device backend
/// (who owns memory and the primitive implementations) with a launch mode
/// (how many launches a batch costs), which is what `H2SKETCH_BACKEND`
/// selects process-wide:
///
///   * `cpu`       — CpuBackend, batched launches (the default)
///   * `naive`     — CpuBackend, one launch per batch entry (ablation)
///   * `simdevice` — SimulatedDevice, batched launches (the GPU-shaped
///                   path with a separate, poisoned device heap)
///
/// `registered_backends()` lets tests and benches iterate every
/// configuration; `shared_backend()` returns process-wide singletons so
/// that short-lived ExecutionContexts (convenience overloads create one
/// per call) share a device heap instead of re-reserving one each time.

namespace h2sketch::backend {

/// Names of every registered backend configuration.
std::span<const std::string_view> registered_backends();

/// Create a configuration with a *fresh* device backend instance (its
/// stats counters start at zero). Throws on unknown names.
ExecutionConfig make_backend(std::string_view name);

/// Configuration backed by the process-wide shared device instance for
/// `name` ("cpu" and "naive" share one CpuBackend). Throws on unknown
/// names.
ExecutionConfig shared_backend(std::string_view name);

/// $H2SKETCH_BACKEND, validated, defaulting to "cpu".
const std::string& default_backend_name();

/// shared_backend(default_backend_name()) — what a default-constructed
/// ExecutionContext uses.
ExecutionConfig default_backend();

} // namespace h2sketch::backend
