#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "backend/device_backend.hpp"

/// \file registry.hpp
/// Named backend configurations. A configuration pairs a device backend
/// (who owns memory and the primitive implementations) with a launch mode
/// (how many launches a batch costs), which is what `H2SKETCH_BACKEND`
/// selects process-wide:
///
///   * `cpu`       — CpuBackend, batched launches (the default)
///   * `naive`     — CpuBackend, one launch per batch entry (ablation)
///   * `simdevice` — SimulatedDevice, batched launches (the GPU-shaped
///                   path with a separate, poisoned device heap)
///   * `faulty-cpu`, `faulty-simdevice` — the same devices wrapped in a
///                   `FaultInjectingDevice` (backend/fault_injection.hpp):
///                   scheduled allocation/copy/launch failures for
///                   fault-tolerance testing. The wrapper shares the base
///                   device's heap, so `degraded_backend_name()` gives a
///                   fault-free config that can still touch its buffers.
///
/// `registered_backends()` lets tests and benches iterate every
/// configuration; `shared_backend()` returns process-wide singletons so
/// that short-lived ExecutionContexts (convenience overloads create one
/// per call) share a device heap instead of re-reserving one each time.

namespace h2sketch::backend {

/// Names of every registered backend configuration.
std::span<const std::string_view> registered_backends();

/// Create a configuration for `name`. Identical to `shared_backend`: every
/// configuration is backed by the process-wide device instance, so operators
/// built under one config and applied under another always share a device
/// heap. (This used to hand out a fresh device per call; mixing it with
/// `shared_backend` then dereferenced buffers from a different address
/// space.) Throws on unknown names. Tests that need a private device with
/// zeroed stats counters should use the device factories directly
/// (`make_cpu_backend()`, `make_sim_device()`).
ExecutionConfig make_backend(std::string_view name);

/// Configuration backed by the process-wide shared device instance for
/// `name` ("cpu" and "naive" share one CpuBackend). Throws on unknown
/// names.
ExecutionConfig shared_backend(std::string_view name);

/// The backend name default-constructed ExecutionContexts use: the
/// `set_default_backend()` override if one is installed, else
/// $H2SKETCH_BACKEND (validated), else "cpu". The environment is re-read on
/// every call — nothing is frozen at first use, so tests and servers that
/// stage the environment late are served correctly.
std::string default_backend_name();

/// Install an explicit process-wide default backend, overriding
/// $H2SKETCH_BACKEND. Throws on unknown names. Thread-safe.
void set_default_backend(std::string_view name);

/// Remove the override installed by `set_default_backend()`; the default
/// reverts to $H2SKETCH_BACKEND / "cpu".
void reset_default_backend();

/// shared_backend(default_backend_name()) — what a default-constructed
/// ExecutionContext uses.
ExecutionConfig default_backend();

class FaultInjectingDevice;

/// The fault-free configuration a degraded retry should fall back to:
/// "faulty-cpu" → "cpu", "faulty-simdevice" → "simdevice"; names that are
/// already fault-free map to themselves. The mapped configuration's device
/// is always the memory owner of the original's buffers, so operators
/// built under the faulty config remain applicable under the fallback.
std::string_view degraded_backend_name(std::string_view name);

/// The process-wide FaultInjectingDevice behind a "faulty-*" configuration
/// (tests and benches program schedules through this). Throws for names
/// without an injector.
std::shared_ptr<FaultInjectingDevice> fault_injector(std::string_view name);

} // namespace h2sketch::backend
