#include "backend/device_backend.hpp"

#include "obs/trace.hpp"

#include <array>
#include <cstring>

#include "common/check.hpp"

namespace h2sketch::backend {

namespace {

constexpr std::array<OpKind, 11> kAllOps = {
    OpKind::Gemm,      OpKind::GatherRows,   OpKind::BsrGemm,   OpKind::MinRDiag,
    OpKind::MinRDiagUpdate, OpKind::RowId,   OpKind::FillGaussian, OpKind::Transpose,
    OpKind::Potrf,     OpKind::TrsmLower,    OpKind::EntryGen,
};

} // namespace

std::string_view op_name(OpKind kind) {
  switch (kind) {
    case OpKind::Gemm: return "batched_gemm";
    case OpKind::GatherRows: return "batched_gather_rows";
    case OpKind::BsrGemm: return "bsr_gemm";
    case OpKind::MinRDiag: return "batched_min_r_diag";
    case OpKind::MinRDiagUpdate: return "batched_min_r_diag_update";
    case OpKind::RowId: return "batched_row_id";
    case OpKind::FillGaussian: return "batched_fill_gaussian";
    case OpKind::Transpose: return "batched_transpose";
    case OpKind::Potrf: return "batched_potrf";
    case OpKind::TrsmLower: return "batched_trsm_lower";
    case OpKind::EntryGen: return "batched_generate";
  }
  return "unknown";
}

std::span<const OpKind> all_ops() { return kAllOps; }

void DeviceBuffer::release() {
  if (ptr_ != nullptr && backend_ != nullptr) {
    backend_->deallocations_.fetch_add(1, std::memory_order_relaxed);
    backend_->live_bytes_.fetch_sub(bytes_, std::memory_order_relaxed);
    backend_->do_deallocate(ptr_, bytes_);
  }
  backend_.reset();
  ptr_ = nullptr;
  bytes_ = 0;
}

KernelScope::KernelScope(const DeviceBackend* b) : b_(b) {
  if (b_ != nullptr) b_->kernel_enter();
}

KernelScope::~KernelScope() {
  if (b_ != nullptr) b_->kernel_exit();
}

DeviceBuffer DeviceBackend::allocate(std::size_t bytes) {
  if (bytes == 0) return DeviceBuffer();
  void* p = do_allocate(bytes);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  const auto live = live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  auto peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak && !peak_bytes_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
  return DeviceBuffer(shared_from_this(), p, bytes);
}

void DeviceBackend::copy_to_device(void* dst_dev, const void* src_host, std::size_t bytes) {
  if (bytes == 0) return;
  obs::TraceSpan span("backend", "copy_to_device", "bytes", bytes);
  on_transfer(bytes);
  bytes_to_device_.fetch_add(bytes, std::memory_order_relaxed);
  KernelScope ks(this);
  std::memcpy(dst_dev, src_host, bytes);
}

void DeviceBackend::copy_to_host(void* dst_host, const void* src_dev, std::size_t bytes) {
  if (bytes == 0) return;
  obs::TraceSpan span("backend", "copy_to_host", "bytes", bytes);
  on_transfer(bytes);
  bytes_to_host_.fetch_add(bytes, std::memory_order_relaxed);
  KernelScope ks(this);
  std::memcpy(dst_host, src_dev, bytes);
}

void DeviceBackend::copy_on_device(void* dst_dev, const void* src_dev, std::size_t bytes) {
  if (bytes == 0) return;
  obs::TraceSpan span("backend", "copy_on_device", "bytes", bytes);
  on_transfer(bytes);
  bytes_on_device_.fetch_add(bytes, std::memory_order_relaxed);
  KernelScope ks(this);
  std::memcpy(dst_dev, src_dev, bytes);
}

void DeviceBackend::fill_zero(void* dst_dev, std::size_t bytes) {
  if (bytes == 0) return;
  obs::TraceSpan span("backend", "fill_zero", "bytes", bytes);
  on_transfer(bytes);
  bytes_on_device_.fetch_add(bytes, std::memory_order_relaxed);
  KernelScope ks(this);
  std::memset(dst_dev, 0, bytes);
}

namespace {

/// One scope + one byte-counter update for a whole strided-view copy; the
/// column loop itself is a plain memcpy per column.
void copy_columns(ConstMatrixView src, MatrixView dst) {
  H2S_CHECK(src.rows == dst.rows && src.cols == dst.cols, "backend copy: shape mismatch");
  const std::size_t col_bytes = static_cast<std::size_t>(src.rows) * sizeof(real_t);
  if (src.ld == src.rows && dst.ld == dst.rows) {
    std::memcpy(dst.data, src.data, col_bytes * static_cast<std::size_t>(src.cols));
    return;
  }
  for (index_t j = 0; j < src.cols; ++j)
    std::memcpy(dst.data + j * dst.ld, src.data + j * src.ld, col_bytes);
}

std::size_t view_bytes(ConstMatrixView v) {
  return static_cast<std::size_t>(v.rows) * static_cast<std::size_t>(v.cols) * sizeof(real_t);
}

} // namespace

void DeviceBackend::upload(ConstMatrixView host, MatrixView dev) {
  if (host.empty()) return;
  obs::TraceSpan span("backend", "upload", "bytes", view_bytes(host));
  on_transfer(view_bytes(host));
  bytes_to_device_.fetch_add(view_bytes(host), std::memory_order_relaxed);
  KernelScope ks(this);
  copy_columns(host, dev);
}

void DeviceBackend::download(ConstMatrixView dev, MatrixView host) {
  if (dev.empty()) return;
  obs::TraceSpan span("backend", "download", "bytes", view_bytes(dev));
  on_transfer(view_bytes(dev));
  bytes_to_host_.fetch_add(view_bytes(dev), std::memory_order_relaxed);
  KernelScope ks(this);
  copy_columns(dev, host);
}

void DeviceBackend::copy_device(ConstMatrixView src, MatrixView dst) {
  if (src.empty()) return;
  obs::TraceSpan span("backend", "copy_device", "bytes", view_bytes(src));
  on_transfer(view_bytes(src));
  bytes_on_device_.fetch_add(view_bytes(src), std::memory_order_relaxed);
  KernelScope ks(this);
  copy_columns(src, dst);
}

void DeviceBackend::fill_zero(MatrixView dev) {
  if (dev.empty()) return;
  obs::TraceSpan span("backend", "fill_zero", "bytes", view_bytes(dev));
  on_transfer(view_bytes(dev));
  bytes_on_device_.fetch_add(view_bytes(dev), std::memory_order_relaxed);
  KernelScope ks(this);
  const std::size_t col_bytes = static_cast<std::size_t>(dev.rows) * sizeof(real_t);
  if (dev.ld == dev.rows) {
    std::memset(dev.data, 0, col_bytes * static_cast<std::size_t>(dev.cols));
    return;
  }
  for (index_t j = 0; j < dev.cols; ++j) std::memset(dev.data + j * dev.ld, 0, col_bytes);
}

DeviceStatsSnapshot DeviceBackend::stats() const {
  DeviceStatsSnapshot s;
  s.bytes_to_device = bytes_to_device_.load(std::memory_order_relaxed);
  s.bytes_to_host = bytes_to_host_.load(std::memory_order_relaxed);
  s.bytes_on_device = bytes_on_device_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.deallocations = deallocations_.load(std::memory_order_relaxed);
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  return s;
}

} // namespace h2sketch::backend
