#include "backend/sim_device.hpp"

#include <cstdlib>

#include "common/check.hpp"

#if defined(__linux__) || defined(__APPLE__)
#define H2SKETCH_SIMDEVICE_MMAP 1
#include <sys/mman.h>
#else
#define H2SKETCH_SIMDEVICE_MMAP 0
#endif

namespace h2sketch::backend {

namespace {

constexpr std::size_t kPage = 4096;
constexpr std::size_t kDefaultHeapBytes = std::size_t{4} << 30; // 4 GiB of VA

std::size_t round_up_page(std::size_t n) { return (n + kPage - 1) & ~(kPage - 1); }

std::size_t env_heap_bytes() {
  if (const char* s = std::getenv("H2SKETCH_SIMDEVICE_HEAP_MB")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v) << 20;
  }
  return kDefaultHeapBytes;
}

bool env_poison_default() {
  if (const char* s = std::getenv("H2SKETCH_DEVICE_POISON")) return std::atoi(s) != 0;
  return true;
}

} // namespace

SimulatedDevice::SimulatedDevice(const SimDeviceOptions& opts) {
  heap_bytes_ = round_up_page(opts.heap_bytes != 0 ? opts.heap_bytes : env_heap_bytes());
  poison_ = opts.poison >= 0 ? opts.poison != 0 : env_poison_default();
#if H2SKETCH_SIMDEVICE_MMAP
  void* p = ::mmap(nullptr, heap_bytes_, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  H2S_CHECK(p != MAP_FAILED, "SimulatedDevice: cannot reserve device heap of "
                                 << heap_bytes_ << " bytes");
  base_ = static_cast<std::byte*>(p);
  mapped_ = true;
#else
  // No mmap/mprotect on this platform: fall back to a plain separate heap
  // with poisoning disabled (the seam still exercises explicit copies).
  base_ = new std::byte[heap_bytes_];
  mapped_ = false;
  poison_ = false;
#endif
}

SimulatedDevice::~SimulatedDevice() {
#if H2SKETCH_SIMDEVICE_MMAP
  if (mapped_ && base_ != nullptr) ::munmap(base_, heap_bytes_);
#else
  delete[] base_;
#endif
}

std::shared_ptr<SimulatedDevice> make_sim_device(SimDeviceOptions opts) {
  return std::shared_ptr<SimulatedDevice>(new SimulatedDevice(opts));
}

bool SimulatedDevice::owns(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= base_ && b < base_ + heap_bytes_;
}

void SimulatedDevice::protect_all(int prot) const {
#if H2SKETCH_SIMDEVICE_MMAP
  if (high_water_ == 0) return;
  const int rc = ::mprotect(base_, high_water_, prot);
  H2S_CHECK(rc == 0, "SimulatedDevice: mprotect failed");
#else
  (void)prot;
#endif
}

void* SimulatedDevice::do_allocate(std::size_t bytes) {
  const std::size_t need = round_up_page(bytes);
  std::lock_guard<std::mutex> lk(mu_);
  // First fit over the page-granular free list.
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second >= need) {
      const std::size_t off = it->first;
      const std::size_t remain = it->second - need;
      free_blocks_.erase(it);
      if (remain > 0) free_blocks_.emplace(off + need, remain);
      return base_ + off;
    }
  }
  // Carve fresh pages from the top of the reservation.
  H2S_CHECK(high_water_ + need <= heap_bytes_,
            "SimulatedDevice: device heap exhausted (" << heap_bytes_ << " bytes reserved; set "
                                                       << "H2SKETCH_SIMDEVICE_HEAP_MB higher)");
  const std::size_t off = high_water_;
  high_water_ += need;
#if H2SKETCH_SIMDEVICE_MMAP
  if (poison_) {
    // Fresh pages are PROT_NONE; if a kernel scope is currently active they
    // must join the process-wide unlock until the last scope exits
    // (everything below them is already readable/writable).
    if (scope_depth_ > 0) {
      const int rc = ::mprotect(base_ + off, need, PROT_READ | PROT_WRITE);
      H2S_CHECK(rc == 0, "SimulatedDevice: mprotect failed");
    }
  } else if (high_water_ > unlocked_limit_) {
    const int rc = ::mprotect(base_ + unlocked_limit_, high_water_ - unlocked_limit_,
                              PROT_READ | PROT_WRITE);
    H2S_CHECK(rc == 0, "SimulatedDevice: mprotect failed");
    unlocked_limit_ = high_water_;
  }
#endif
  return base_ + off;
}

void SimulatedDevice::do_deallocate(void* ptr, std::size_t bytes) {
  const std::size_t need = round_up_page(bytes);
  const auto off = static_cast<std::size_t>(static_cast<std::byte*>(ptr) - base_);
  std::lock_guard<std::mutex> lk(mu_);
#if H2SKETCH_SIMDEVICE_MMAP
  // Decommit freed pages so long-running processes do not accumulate RSS
  // for dead device buffers; the VA range stays reserved for reuse.
  ::madvise(ptr, need, MADV_DONTNEED);
#endif
  auto it = free_blocks_.emplace(off, need).first;
  // Coalesce with the next and previous free blocks.
  auto next = std::next(it);
  if (next != free_blocks_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_blocks_.erase(next);
  }
  if (it != free_blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_blocks_.erase(it);
    }
  }
}

void SimulatedDevice::kernel_enter() const {
  if (!poison_) return;
  std::lock_guard<std::mutex> lk(mu_);
#if H2SKETCH_SIMDEVICE_MMAP
  if (scope_depth_++ == 0) protect_all(PROT_READ | PROT_WRITE);
#endif
}

void SimulatedDevice::kernel_exit() const {
  if (!poison_) return;
  std::lock_guard<std::mutex> lk(mu_);
#if H2SKETCH_SIMDEVICE_MMAP
  if (--scope_depth_ == 0) protect_all(PROT_NONE);
#endif
}

} // namespace h2sketch::backend
