#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "backend/fwd.hpp"
#include "common/matrix.hpp"
#include "common/random.hpp"
#include "kernels/entry_gen.hpp"
#include "la/blas.hpp"
#include "la/id.hpp"

/// \file device_backend.hpp
/// The pluggable device-backend seam of the library (paper §IV-A).
///
/// A `DeviceBackend` owns the two halves of what a GPU runtime provides:
///
///  1. **A device memory model** — `DeviceBuffer` allocation from a
///     backend-owned heap, explicit host↔device and device↔device copies,
///     and a zero-fill primitive (the cudaMalloc / cudaMemcpy / cudaMemset
///     analogues). On `CpuBackend` device memory *is* host memory; on
///     `SimulatedDevice` it is a separate heap that host code must not
///     dereference directly.
///
///  2. **The batched primitive set** — every batched operation the H2
///     construction, matvec and ULV solver launch (gemm, gather_rows,
///     bsr_gemm, min-R-diag QR probe, row ID, Gaussian fill, transpose,
///     potrf, trsm, kernel entry generation) as named, dispatchable virtual
///     ops. The free functions in src/batched/ are thin wrappers that
///     dispatch through this table, so a CUDA/HIP backend drops in by
///     overriding ops without touching any call site.
///
/// Compute that touches device memory may only run inside a **kernel
/// scope** (`kernel_scope()`): the RAII handle brackets the body of a
/// launch, a monolithic sampler product, or an internal copy. On
/// `SimulatedDevice` with poisoning enabled, device pages are inaccessible
/// outside kernel scopes, so a stray host-side dereference of marshaled
/// device data faults instead of silently working — "a GPU could run
/// behind this API" becomes a tested invariant.

namespace h2sketch::backend {

/// Launch granularity: one launch per batch entry (the per-block code path
/// a non-batched implementation would use) vs one launch per batch (the
/// GPU-shaped path). Historically named `Backend`; batched/device.hpp
/// aliases it back under that name for existing call sites.
enum class LaunchMode {
  Naive,  ///< per-block execution: O(#blocks) kernel launches
  Batched ///< one launch per level per operation: O(Csp log N) launches
};

/// Which side of the unknown the triangular matrix sits on in a trsm.
enum class TrsmSide { Left, Right };

/// The named batched primitives a backend dispatches. One entry per virtual
/// op on DeviceBackend; `op_name` / `all_ops` let tests and tools iterate
/// the dispatch table without knowing the ops ahead of time.
enum class OpKind {
  Gemm,         ///< non-uniform batched C = alpha op(A) op(B) + beta C
  GatherRows,   ///< dst[i] = src[i](rows[i], :) — the paper's batchedShrink
  BsrGemm,      ///< block-sparse-row accumulation, <= Csp sub-launches
  MinRDiag,       ///< min |diag(R)| QR probe (adaptive convergence test)
  MinRDiagUpdate, ///< incremental MinRDiag over appended sample columns
  RowId,        ///< batched row interpolative decomposition
  FillGaussian, ///< counter-based batched Gaussian generation
  Transpose,    ///< batched out[i] = in[i]^T
  Potrf,        ///< batched in-place lower Cholesky
  TrsmLower,    ///< batched lower-triangular solve (left/right)
  EntryGen,     ///< batched kernel entry generation (batchedGen)
};

/// Stable primitive name for logs, benches and registry-driven tests.
std::string_view op_name(OpKind kind);

/// Every op in the dispatch table, in declaration order.
std::span<const OpKind> all_ops();

/// Monotonic counters a backend records about its memory traffic. All
/// byte counts are cumulative since construction.
struct DeviceStatsSnapshot {
  std::uint64_t bytes_to_device = 0; ///< explicit host → device copies
  std::uint64_t bytes_to_host = 0;   ///< explicit device → host copies
  std::uint64_t bytes_on_device = 0; ///< device → device copies + zero fills
  std::uint64_t allocations = 0;     ///< DeviceBuffer allocations served
  std::uint64_t deallocations = 0;
  std::uint64_t live_bytes = 0; ///< currently allocated device bytes
  std::uint64_t peak_bytes = 0; ///< high-water mark of live_bytes
};

class DeviceBackend;

/// A runnable backend configuration: the device backend that owns memory
/// and primitive implementations, plus the launch-granularity mode. The
/// registry (backend/registry.hpp) maps names ("cpu", "naive",
/// "simdevice") to these.
struct ExecutionConfig {
  std::shared_ptr<DeviceBackend> device;
  LaunchMode mode = LaunchMode::Batched;
};

/// Move-only RAII handle to one device allocation. Holds shared ownership
/// of its backend, so buffers may outlive the ExecutionContext that
/// allocated them (e.g. ULV factors stored in solver objects).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::shared_ptr<DeviceBackend> backend, void* ptr, std::size_t bytes)
      : backend_(std::move(backend)), ptr_(ptr), bytes_(bytes) {}
  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& o) noexcept
      : backend_(std::move(o.backend_)), ptr_(std::exchange(o.ptr_, nullptr)),
        bytes_(std::exchange(o.bytes_, 0)) {}
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      backend_ = std::move(o.backend_);
      ptr_ = std::exchange(o.ptr_, nullptr);
      bytes_ = std::exchange(o.bytes_, 0);
    }
    return *this;
  }

  /// Device address. On SimulatedDevice this pointer must not be
  /// dereferenced by host code outside a kernel scope.
  void* data() const { return ptr_; }
  std::size_t bytes() const { return bytes_; }
  bool empty() const { return ptr_ == nullptr; }
  DeviceBackend* backend() const { return backend_.get(); }
  const std::shared_ptr<DeviceBackend>& backend_ptr() const { return backend_; }

  void release();

 private:
  std::shared_ptr<DeviceBackend> backend_;
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

/// RAII bracket around compute that touches device memory (the body of a
/// kernel launch, a monolithic sampler product, an internal copy). On
/// backends with poisoning, device pages are accessible exactly while at
/// least one scope is alive.
class KernelScope {
 public:
  explicit KernelScope(const DeviceBackend* b);
  ~KernelScope();
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  const DeviceBackend* b_;
};

/// Abstract device backend: memory model + batched-primitive dispatch
/// table. Always create concrete backends through their factory functions
/// (make_cpu_backend / make_sim_device) or the registry — DeviceBuffers
/// keep their backend alive through shared ownership.
class DeviceBackend : public std::enable_shared_from_this<DeviceBackend> {
 public:
  virtual ~DeviceBackend() = default;

  virtual std::string_view name() const = 0;
  /// True when device buffers live in a separate address space (host code
  /// must marshal through explicit copies).
  virtual bool is_device() const = 0;

  /// The backend whose heap this backend's allocations physically live in.
  /// Identity for concrete backends; decorators (FaultInjectingDevice)
  /// forward to the wrapped backend, so affinity checks ("may this context
  /// touch these panels?") compare memory owners instead of raw backend
  /// pointers — a factor built through a decorator stays solvable through
  /// the undecorated base (the graceful-degradation path).
  virtual const DeviceBackend* memory_owner() const { return this; }

  // --- memory model -------------------------------------------------------

  /// Allocate `bytes` of device memory (64-byte aligned).
  DeviceBuffer allocate(std::size_t bytes);

  /// Explicit copies across the marshaling boundary. Byte counts feed the
  /// ablation benchmark; SimulatedDevice additionally unlocks its heap for
  /// the duration of the copy.
  void copy_to_device(void* dst_dev, const void* src_host, std::size_t bytes);
  void copy_to_host(void* dst_host, const void* src_dev, std::size_t bytes);
  void copy_on_device(void* dst_dev, const void* src_dev, std::size_t bytes);
  /// Device memset-to-zero (cudaMemset analogue).
  void fill_zero(void* dst_dev, std::size_t bytes);

  /// Column-wise strided-view forms of the copies above.
  void upload(ConstMatrixView host, MatrixView dev);
  void download(ConstMatrixView dev, MatrixView host);
  void copy_device(ConstMatrixView src, MatrixView dst);
  void fill_zero(MatrixView dev);

  /// Enter/leave compute that touches device memory.
  KernelScope kernel_scope() const { return KernelScope(this); }

  DeviceStatsSnapshot stats() const;

  // --- batched primitive dispatch table -----------------------------------

  /// Whether the backend implements a primitive (all built-ins implement
  /// the full table; a partial accelerator backend may not).
  virtual bool supports(OpKind) const { return true; }

  virtual void gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
                    std::vector<ConstMatrixView> a, la::Op op_a, std::vector<ConstMatrixView> b,
                    la::Op op_b, real_t beta, std::vector<MatrixView> c) = 0;

  virtual void gather_rows(batched::ExecutionContext& ctx, batched::StreamId stream,
                           std::vector<ConstMatrixView> src,
                           std::vector<std::vector<index_t>> rows,
                           std::vector<MatrixView> dst) = 0;

  virtual index_t bsr_gemm(batched::ExecutionContext& ctx, batched::StreamId stream, real_t alpha,
                           std::vector<index_t> row_ptr, std::vector<index_t> col,
                           std::vector<ConstMatrixView> blocks, std::vector<ConstMatrixView> x,
                           std::vector<MatrixView> y) = 0;

  virtual void min_r_diag(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                          std::span<real_t> out) = 0;

  /// Incremental MinRDiag: work[i] holds a Householder-factored prefix of
  /// factored[i] columns (reflector scalars in tau[i]) followed by freshly
  /// appended sample columns. Extends the factorization in place over the
  /// new columns (tau[i] grows) and writes min |diag(R)| to out[i] —
  /// bitwise identical to min_r_diag of the full panel, at
  /// O(m k dn + m dn^2) instead of O(m d^2) per probe.
  virtual void min_r_diag_update(batched::ExecutionContext& ctx, std::span<const MatrixView> work,
                                 std::span<const index_t> factored,
                                 std::span<std::vector<real_t>> tau, std::span<real_t> out) = 0;

  virtual void row_id(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> y,
                      real_t abs_tol, index_t max_rank, std::span<la::RowID> out) = 0;

  virtual void fill_gaussian(batched::ExecutionContext& ctx, MatrixView a,
                             const GaussianStream& stream, std::uint64_t offset) = 0;

  virtual void fill_gaussian_blocks(batched::ExecutionContext& ctx,
                                    std::span<const MatrixView> blocks,
                                    const GaussianStream& stream,
                                    std::span<const std::uint64_t> offsets) = 0;

  virtual void transpose(batched::ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                         std::span<const MatrixView> out) = 0;

  virtual void potrf(batched::ExecutionContext& ctx, batched::StreamId stream,
                     std::vector<MatrixView> a) = 0;

  virtual void trsm_lower(batched::ExecutionContext& ctx, batched::StreamId stream, TrsmSide side,
                          la::Op op, std::vector<ConstMatrixView> l,
                          std::vector<MatrixView> b) = 0;

  virtual void generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                        const kern::EntryGenerator& gen,
                        std::vector<kern::BlockRequest> requests) = 0;

 protected:
  DeviceBackend() = default;

  // Byte-level hooks a concrete backend implements. The public wrappers
  // above add stats accounting (and, via kernel scopes, poisoning).
  virtual void* do_allocate(std::size_t bytes) = 0;
  virtual void do_deallocate(void* ptr, std::size_t bytes) = 0;

  /// Called by every public copy/fill entry point before the transfer runs
  /// — the injection point a decorator overrides to simulate failed
  /// cudaMemcpy/cudaMemset calls. No-op by default.
  virtual void on_transfer(std::size_t bytes) const { (void)bytes; }

  // Protected-member passthroughs for decorator backends: a sibling
  // subclass cannot call another instance's protected virtuals directly,
  // but any DeviceBackend subclass can route through these statics.
  static void* forward_allocate(DeviceBackend& b, std::size_t bytes) {
    return b.do_allocate(bytes);
  }
  static void forward_deallocate(DeviceBackend& b, void* ptr, std::size_t bytes) {
    b.do_deallocate(ptr, bytes);
  }
  static void forward_kernel_enter(const DeviceBackend& b) { b.kernel_enter(); }
  static void forward_kernel_exit(const DeviceBackend& b) { b.kernel_exit(); }

  friend class KernelScope;
  friend class DeviceBuffer;
  /// Poisoning hooks; no-ops by default.
  virtual void kernel_enter() const {}
  virtual void kernel_exit() const {}

 private:
  mutable std::atomic<std::uint64_t> bytes_to_device_{0};
  mutable std::atomic<std::uint64_t> bytes_to_host_{0};
  mutable std::atomic<std::uint64_t> bytes_on_device_{0};
  mutable std::atomic<std::uint64_t> allocations_{0};
  mutable std::atomic<std::uint64_t> deallocations_{0};
  mutable std::atomic<std::uint64_t> live_bytes_{0};
  mutable std::atomic<std::uint64_t> peak_bytes_{0};
};

} // namespace h2sketch::backend
