#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "solver/ulv.hpp"

/// \file pcg.hpp
/// Preconditioned conjugate gradients with the HSS-ULV factorization as the
/// preconditioner: the serving pattern the solver subsystem targets — a
/// cheap coarse-tolerance HSS compression is ULV-factored once, then every
/// application of M^{-1} is an O(N r) solve, while the operator itself is
/// applied through the fast (strong-admissibility) H2 matvec.

namespace h2sketch::solver {

/// y = A * x on length-N spans (permuted position order, like h2_matvec).
using ApplyFn = std::function<void(const_real_span, real_span)>;

struct PcgOptions {
  real_t tol = 1e-10;      ///< relative residual ||r|| / ||b|| target
  index_t max_iters = 500; ///< iteration cap
};

struct PcgResult {
  index_t iterations = 0;
  real_t rel_residual = 0.0;
  bool converged = false;
  /// ||r_k|| / ||b|| per iteration (entry 0 = initial residual).
  std::vector<real_t> history;
};

/// Solve A x = b by CG; `precond` (M^{-1} apply) may be null for plain CG.
/// x is used as the initial guess and overwritten with the solution.
PcgResult pcg(const ApplyFn& apply_a, const_real_span b, real_span x, const PcgOptions& opts,
              const ApplyFn& precond = nullptr);

/// HSS-ULV preconditioned CG: wraps `ulv.solve` as M^{-1}.
PcgResult pcg(const ApplyFn& apply_a, const_real_span b, real_span x, const PcgOptions& opts,
              const UlvCholesky& ulv);

} // namespace h2sketch::solver
