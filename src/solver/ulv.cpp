#include "solver/ulv.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "backend/registry.hpp"
#include "common/errors.hpp"
#include "batched/batched_gemm.hpp"
#include "batched/batched_solve.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace h2sketch::solver {

namespace {

/// Right-multiply B := B Q for the packed Householder Q of `qr`:
/// B Q = (Q^T B^T)^T, materialized through an explicit transpose.
void apply_q_right(ConstMatrixView qr, const std::vector<real_t>& tau, MatrixView b) {
  Matrix bt(b.cols, b.rows);
  for (index_t j = 0; j < b.cols; ++j)
    for (index_t i = 0; i < b.rows; ++i) bt(j, i) = b(i, j);
  la::apply_q_transpose(qr, tau, bt.view());
  for (index_t j = 0; j < b.cols; ++j)
    for (index_t i = 0; i < b.rows; ++i) b(i, j) = bt(j, i);
}

/// Merge a sibling pair into the parent-local (or root) diagonal:
/// dst = [S_1, R_1 B R_2^T; (.)^T, S_2] from the children's Schur
/// complements, reduced generators and the pair's coupling block. Operates
/// on views so the same routine serves the in-kernel level merge (device
/// panels) and the host-side root merge (downloaded staging copies).
void merge_siblings(ConstMatrixView s1, ConstMatrixView u1, index_t r1, ConstMatrixView s2,
                    ConstMatrixView u2, index_t r2, ConstMatrixView b, MatrixView dst) {
  copy(s1, dst.block(0, 0, r1, r1));
  copy(s2, dst.block(r1, r1, r2, r2));
  if (r1 > 0 && r2 > 0) {
    Matrix rb(r1, r2);
    la::gemm(1.0, u1, la::Op::None, b, la::Op::None, 0.0, rb.view());
    MatrixView off = dst.block(0, r1, r1, r2);
    la::gemm(1.0, rb.view(), la::Op::None, u2, la::Op::Trans, 0.0, off);
    MatrixView off_t = dst.block(r1, 0, r2, r1);
    for (index_t jj = 0; jj < r2; ++jj)
      for (index_t ii = 0; ii < r1; ++ii) off_t(jj, ii) = off(ii, jj);
  }
}

/// Assemble the node-local diagonal D and merged generator G for one node,
/// then rotate: qr <- QR(G), utilde <- R, dhat <- Q^T D Q. The panels are
/// slots of the factor's per-level device arenas (layout
/// [qr x nodes][dhat x nodes][utilde x nodes]); the body runs inside a
/// batched launch, so it may touch device views directly.
void assemble_and_rotate(const HssMatrix& a, const std::vector<std::vector<UlvNode>>& nodes,
                         std::vector<backend::BlockArena>& panels, index_t level, index_t i,
                         real_t ridge, UlvNode& nd) {
  const index_t leaf = a.leaf_level();
  const auto ul = static_cast<size_t>(level);
  const index_t n = nd.n_loc;
  const index_t r = nd.rank;
  const index_t nnodes = a.tree->nodes_at(level);
  backend::BlockArena& pa = panels[ul];
  MatrixView qr = pa.dev(i);
  MatrixView dhat = pa.dev(nnodes + i);

  // Local diagonal block. The ridge enters the factorization only here, at
  // the leaf diagonals: bumping every leaf block by ridge*I is exactly
  // A + ridge*I, and the Schur complements propagate it upward.
  if (level == leaf) {
    copy(a.leaf_diag.dev(i), dhat);
    if (ridge != real_t{0})
      for (index_t k = 0; k < n; ++k) dhat(k, k) += ridge;
  } else {
    const index_t cn = a.tree->nodes_at(level + 1);
    const backend::BlockArena& cp = panels[ul + 1];
    const UlvNode& c1 = nodes[ul + 1][static_cast<size_t>(2 * i)];
    const UlvNode& c2 = nodes[ul + 1][static_cast<size_t>(2 * i + 1)];
    merge_siblings(cp.dev(cn + 2 * i).block(0, 0, c1.rank, c1.rank), cp.dev(2 * cn + 2 * i),
                   c1.rank, cp.dev(cn + 2 * i + 1).block(0, 0, c2.rank, c2.rank),
                   cp.dev(2 * cn + 2 * i + 1), c2.rank, a.coupling[ul + 1].dev(i), dhat);
  }

  // Merged generator: U at the leaf, [R_1 E_1; R_2 E_2] above. The root
  // (level 0) never reaches this function.
  if (level == leaf) {
    copy(a.generators[ul].dev(i), qr);
  } else {
    const index_t cn = a.tree->nodes_at(level + 1);
    const backend::BlockArena& cp = panels[ul + 1];
    const auto& c1 = nodes[ul + 1][static_cast<size_t>(2 * i)];
    const auto& c2 = nodes[ul + 1][static_cast<size_t>(2 * i + 1)];
    ConstMatrixView e = a.generators[ul].dev(i);
    if (c1.rank > 0 && r > 0)
      la::gemm(1.0, cp.dev(2 * cn + 2 * i), la::Op::None, e.row_range(0, c1.rank), la::Op::None,
               0.0, qr.row_range(0, c1.rank));
    if (c2.rank > 0 && r > 0)
      la::gemm(1.0, cp.dev(2 * cn + 2 * i + 1), la::Op::None, e.row_range(c1.rank, c2.rank),
               la::Op::None, 0.0, qr.row_range(c1.rank, c2.rank));
  }

  // Rotate: G = Q [R; 0]; Dh = Q^T D Q; R becomes the reduced generator.
  la::householder_qr(qr, nd.tau);
  la::apply_q_transpose(qr, nd.tau, dhat);
  apply_q_right(qr, nd.tau, dhat);
  MatrixView ut = pa.dev(2 * nnodes + i);
  for (index_t jj = 0; jj < r; ++jj)
    for (index_t ii = 0; ii <= jj && ii < r; ++ii) ut(ii, jj) = qr(ii, jj);
}

/// Largest |diagonal entry| of A, read off the device-resident leaf
/// diagonal arena in place (inside a kernel scope, so no mirror downloads):
/// the scale the ridge-retry ladder is relative to.
real_t max_abs_diag(const HssMatrix& a, backend::DeviceBackend& dev) {
  real_t scale = 0.0;
  backend::KernelScope ks(&dev);
  for (index_t i = 0; i < a.leaf_diag.count(); ++i) {
    ConstMatrixView v = a.leaf_diag.dev(i);
    const index_t n = std::min(v.rows, v.cols);
    for (index_t k = 0; k < n; ++k) scale = std::max(scale, std::abs(v(k, k)));
  }
  return scale;
}

} // namespace

UlvCholesky ulv_factor(const HssMatrix& a, batched::ExecutionContext& ctx,
                       const UlvOptions& opts) {
  a.validate();
  if (auto own = a.storage_backend())
    H2S_CHECK(own->memory_owner() == ctx.device().memory_owner(),
              "ulv_factor: context device does not own this matrix's device arenas (built on "
                  << own->name() << ", factored on " << ctx.device().name() << ")");

  // One full factorization attempt of A + ridge*I. A lambda local to this
  // friend function, so it can populate UlvCholesky's private panels.
  auto factor_once = [&a, &ctx](real_t ridge) {
  UlvCholesky f;
  // Pending launches hold views into f's node panels; if an attempt unwinds
  // (an injected launch fault, or a NumericalError surfacing at a sync
  // point) the fence drains every stream before f's panels are freed.
  batched::StreamFence fence(ctx);
  f.tree_ = a.tree;
  const index_t levels = a.num_levels();
  const index_t leaf = a.leaf_level();
  f.nodes_.resize(static_cast<size_t>(levels));
  f.panels_ = std::vector<backend::BlockArena>(static_cast<size_t>(levels));

  if (levels == 1) {
    // Degenerate single-node tree: the HSS matrix is one dense block,
    // factored host-side off the arena's lazy mirror.
    f.root_factor_ = a.leaf_diag.host(0);
    if (ridge != real_t{0}) {
      MatrixView rv = f.root_factor_.view();
      for (index_t k = 0; k < rv.rows; ++k) rv(k, k) += ridge;
    }
    la::cholesky(f.root_factor_.view());
    return f;
  }

  const auto stream = batched::kSampleStream;
  for (index_t l = leaf; l >= 1; --l) {
    const index_t nodes = a.tree->nodes_at(l);
    // Covers the marshal + launch-issue phase of this level; the batched
    // work itself shows up on the stream track (FIFO on kSampleStream).
    obs::TraceSpan level_span("solver", "ulv_level", "level", static_cast<std::uint64_t>(l),
                              "nodes", static_cast<std::uint64_t>(nodes));
    const auto ul = static_cast<size_t>(l);
    auto& lvl = f.nodes_[ul];
    lvl.resize(static_cast<size_t>(nodes));

    // Host-side marshaling: sizes depend only on ranks/cluster sizes, so the
    // level's packed panel arena can be laid out and allocated before any
    // launch of this level runs (the kernels only ever touch it through
    // views).
    backend::BlockArena& pa = f.panels_[ul];
    pa.reset(3 * nodes);
    for (index_t i = 0; i < nodes; ++i) {
      UlvNode& nd = lvl[static_cast<size_t>(i)];
      nd.rank = a.rank(l, i);
      nd.n_loc = l == leaf ? a.tree->size(l, i)
                           : a.rank(l + 1, 2 * i) + a.rank(l + 1, 2 * i + 1);
      H2S_CHECK(nd.rank <= nd.n_loc, "ulv_factor: rank exceeds local dimension");
      pa.set_shape(i, nd.n_loc, nd.rank);              // qr
      pa.set_shape(nodes + i, nd.n_loc, nd.n_loc);     // dhat
      pa.set_shape(2 * nodes + i, nd.rank, nd.rank);   // utilde
    }
    pa.allocate(ctx.device());
    // qr and dhat are fully written by the assemble launch; the utilde
    // panels must start zeroed (only their upper triangles are written, and
    // merge reads the full matrix) — one fill over the contiguous span.
    pa.fill_zero(2 * nodes, nodes);

    // Launch 1: assemble + QR + two-sided rotation (compress). Reads the
    // children's S/R panels, written by the previous level's launches on the
    // same stream — FIFO order is the level barrier.
    UlvNode* nodes_ptr = lvl.data();
    ctx.run_batch(
        stream, nodes,
        [nodes_ptr](index_t i) {
          const index_t n = nodes_ptr[i].n_loc;
          return n * n * n + 1;
        },
        [&a, &f, l, ridge, nodes_ptr](index_t i) {
          assemble_and_rotate(a, f.nodes_, f.panels_, l, i, ridge, nodes_ptr[i]);
        });

    // Launches 2-4: eliminate the interior blocks — batched potrf on Dh_zz,
    // batched right-side trsm for W = Dh_sz Lz^{-T}, batched gemm for the
    // Schur complement S = Dh_ss - W W^T. Same stream, FIFO.
    std::vector<MatrixView> dzz;
    std::vector<ConstMatrixView> lz, wc;
    std::vector<MatrixView> dsz, dss;
    for (index_t i = 0; i < nodes; ++i) {
      UlvNode& nd = lvl[static_cast<size_t>(i)];
      const index_t r = nd.rank, z = nd.nz();
      MatrixView dh = pa.dev(nodes + i);
      dzz.push_back(z > 0 ? dh.block(r, r, z, z) : MatrixView());
      lz.push_back(z > 0 ? ConstMatrixView(dh.block(r, r, z, z)) : ConstMatrixView());
      dsz.push_back(r > 0 && z > 0 ? dh.block(0, r, r, z) : MatrixView());
      wc.push_back(r > 0 && z > 0 ? ConstMatrixView(dh.block(0, r, r, z)) : ConstMatrixView());
      // S only changes when there is an interior block to eliminate; an
      // empty entry skips the (beta = 1) no-op launch body.
      dss.push_back(r > 0 && z > 0 ? dh.block(0, 0, r, r) : MatrixView());
    }
    std::vector<ConstMatrixView> wt = wc; // both gemm operands are W
    batched::batched_potrf(ctx, stream, std::move(dzz));
    batched::batched_trsm_lower(ctx, stream, batched::TrsmSide::Right, la::Op::Trans,
                                std::move(lz), std::move(dsz));
    batched::batched_gemm(ctx, stream, -1.0, std::move(wc), la::Op::None, std::move(wt),
                          la::Op::Trans, 1.0, std::move(dss));
  }

  // Root: marshal the level-1 Schur complements and reduced generators back
  // to the host (four explicit device → host copies), merge and factor the
  // reduced root system densely host-side — the classic small-root-on-host
  // pattern of GPU multilevel factorizations.
  obs::TraceSpan root_span("solver", "ulv_root");
  ctx.sync(stream);
  const UlvNode& c1 = f.nodes_[1][0];
  const UlvNode& c2 = f.nodes_[1][1];
  const backend::BlockArena& p1 = f.panels_[1]; // 2 nodes: dhat at 2+i, utilde at 4+i
  backend::DeviceBackend& dev = ctx.device();
  Matrix s1(c1.rank, c1.rank), u1(c1.rank, c1.rank);
  Matrix s2(c2.rank, c2.rank), u2(c2.rank, c2.rank);
  dev.download(p1.dev(2).block(0, 0, c1.rank, c1.rank), s1.view());
  dev.download(p1.dev(4), u1.view());
  dev.download(p1.dev(3).block(0, 0, c2.rank, c2.rank), s2.view());
  dev.download(p1.dev(5), u2.view());
  f.root_factor_.resize(c1.rank + c2.rank, c1.rank + c2.rank);
  merge_siblings(s1.view(), u1.view(), c1.rank, s2.view(), u2.view(), c2.rank,
                 a.coupling[1].host(0).view(), f.root_factor_.view());
  la::cholesky(f.root_factor_.view());
  // Keep the factor device-resident too (uploaded once, here): solve sweeps
  // read it in place instead of marshaling the root block every solve.
  f.root_arena_.reset(1);
  f.root_arena_.set_shape(0, f.root_factor_.rows(), f.root_factor_.cols());
  f.root_arena_.allocate(dev);
  f.root_arena_.upload(0, f.root_factor_.view());
  return f;
  };

  const real_t scale0 = max_abs_diag(a, ctx.device());
  const real_t scale = scale0 > real_t{0} ? scale0 : real_t{1};
  real_t ridge = 0.0;
  for (int attempt = 0;; ++attempt) {
    try {
      obs::TraceSpan attempt_span("solver", "ulv_factor", "attempt",
                                  static_cast<std::uint64_t>(attempt), "ridged",
                                  ridge != real_t{0} ? 1 : 0);
      UlvCholesky f = factor_once(ridge);
      f.ridge_ = ridge;
      // Fault-recovery visibility (ROADMAP item 4): ridge escalations land
      // in the same registry snapshot as the serve failure counters.
      auto& reg = obs::MetricsRegistry::global();
      reg.counter("ulv_factorizations").add();
      if (ridge != real_t{0}) {
        reg.counter("ulv_ridge_applied").add();
        reg.gauge("ulv_last_ridge").set(static_cast<double>(ridge));
      }
      return f;
    } catch (const NumericalError&) {
      // A non-positive pivot is deterministic -- only escalation (a larger
      // ridge) can change the outcome. The ladder caps at
      // ridge_rel * growth^(retries-1) of the diagonal scale (1e-6 by
      // default), far too small to mask genuine indefiniteness: those
      // matrices still fail the last attempt and the error surfaces.
      if (attempt >= opts.max_ridge_retries) throw;
      obs::MetricsRegistry::global().counter("ulv_ridge_retries").add();
      ridge = ridge == real_t{0} ? opts.ridge_rel * scale : ridge * opts.ridge_growth;
    }
  }
}

UlvCholesky ulv_factor(const HssMatrix& a, batched::ExecutionContext& ctx) {
  return ulv_factor(a, ctx, UlvOptions{});
}

UlvCholesky ulv_factor(const HssMatrix& a) {
  batched::ExecutionContext ctx(a.execution_config());
  return ulv_factor(a, ctx);
}

namespace {

/// Device backend owning the factor's panel arenas, or null for a root-only
/// factor (which holds no device memory).
backend::DeviceBackend* panel_backend(const std::vector<backend::BlockArena>& panels) {
  for (const auto& pa : panels)
    if (pa.allocated()) return pa.backend();
  return nullptr;
}

} // namespace

backend::ExecutionConfig UlvCholesky::execution_config() const {
  if (backend::DeviceBackend* b = panel_backend(panels_))
    return {b->shared_from_this(), backend::LaunchMode::Batched};
  return backend::default_backend();
}

void UlvCholesky::solve_many(ConstMatrixView b, MatrixView x,
                             batched::ExecutionContext& ctx) const {
  const index_t n = size();
  const index_t nrhs = b.cols;
  H2S_CHECK(b.rows == n && x.rows == n && x.cols == nrhs, "ulv solve: shape mismatch");
  backend::DeviceBackend* own = panel_backend(panels_);
  // Compare memory owners, not backend identities: a FaultInjectingDevice
  // shares its inner device's heap, so a factor built under "faulty-cpu"
  // stays solvable through a degraded "cpu" context (and vice versa).
  H2S_CHECK(own == nullptr || own->memory_owner() == ctx.device().memory_owner(),
            "ulv solve: context device '" << ctx.device().name()
                                          << "' does not own the factor panels (factored on '"
                                          << own->name()
                                          << "'); solve with a context on the same backend");
  const index_t levels = tree_->num_levels();
  const index_t leaf = tree_->leaf_level();

  if (levels == 1) {
    copy(b, x);
    la::cholesky_solve(root_factor_.view(), x);
    return;
  }

  // One workspace reservation per solve: the marshaled B/X panels, every
  // node's local right-hand-side/solution panel, and the root block
  // (prefix-sum single-allocation pattern, like HssMatrix::matvec).
  // Everything the sweeps touch is device-resident; the host boundary is
  // crossed exactly twice — the b upload and the x download.
  backend::DeviceBackend& dev = ctx.device();
  const index_t root_rows = nodes_[1][0].rank + nodes_[1][1].rank;
  Workspace& ws = ctx.workspace();
  ws.reset();
  {
    std::size_t total =
        2 * Workspace::panel_bytes(n, nrhs) + Workspace::panel_bytes(root_rows, nrhs) + 64;
    for (index_t l = 1; l < levels; ++l)
      for (index_t i = 0; i < tree_->nodes_at(l); ++i)
        total +=
            Workspace::panel_bytes(nodes_[static_cast<size_t>(l)][static_cast<size_t>(i)].n_loc,
                                   nrhs);
    ws.reserve_bytes(total);
  }
  MatrixView bd = ws.panel(n, nrhs);
  MatrixView xd = ws.panel(n, nrhs);
  MatrixView rootw = ws.panel(root_rows, nrhs);
  std::vector<std::vector<MatrixView>> work(static_cast<size_t>(levels));
  for (index_t l = 1; l < levels; ++l) {
    const index_t cnt = tree_->nodes_at(l);
    work[static_cast<size_t>(l)].resize(static_cast<size_t>(cnt));
    for (index_t i = 0; i < cnt; ++i)
      work[static_cast<size_t>(l)][static_cast<size_t>(i)] =
          ws.panel(nodes_[static_cast<size_t>(l)][static_cast<size_t>(i)].n_loc, nrhs);
  }
  // Sweep launches reference the workspace panels; drain them before the
  // arena is reused if a launch fault surfaces mid-solve.
  batched::StreamFence fence(ctx);
  dev.upload(b, bd);

  const auto stream = batched::kSampleStream;

  // Forward sweep, leaves up: rotate the local rhs, solve the interior
  // block, push the skeleton part to the parent. FIFO on one stream stands
  // in for level barriers.
  for (index_t l = leaf; l >= 1; --l) {
    const index_t cnt = tree_->nodes_at(l);
    const auto ul = static_cast<size_t>(l);
    auto* lvl_nodes = &nodes_[ul][0];
    auto* lvl_work = &work[ul][0];
    const backend::BlockArena* lvl_panels = &panels_[ul];
    auto* child_work = l == leaf ? nullptr : &work[ul + 1][0];
    const UlvNode* child_nodes = l == leaf ? nullptr : &nodes_[ul + 1][0];
    ctx.run_batch(
        stream, cnt,
        [lvl_nodes, nrhs](index_t i) {
          const index_t m = lvl_nodes[i].n_loc;
          return m * m * nrhs + 1;
        },
        [this, bd, l, leaf, cnt, lvl_nodes, lvl_work, lvl_panels, child_work, child_nodes,
         nrhs](index_t i) {
          const UlvNode& nd = lvl_nodes[i];
          MatrixView w = lvl_work[i];
          if (nd.n_loc == 0) return;
          if (l == leaf) {
            copy(bd.block(tree_->begin(l, i), 0, nd.n_loc, nrhs), w);
          } else {
            const UlvNode& c1 = child_nodes[2 * i];
            const UlvNode& c2 = child_nodes[2 * i + 1];
            if (c1.rank > 0)
              copy(child_work[2 * i].row_range(0, c1.rank), w.row_range(0, c1.rank));
            if (c2.rank > 0)
              copy(child_work[2 * i + 1].row_range(0, c2.rank),
                   w.row_range(c1.rank, c2.rank));
          }
          ConstMatrixView qr = lvl_panels->dev(i);
          ConstMatrixView dh = lvl_panels->dev(cnt + i);
          la::apply_q_transpose(qr, nd.tau, w);
          const index_t r = nd.rank, z = nd.nz();
          if (z > 0) {
            MatrixView wz = w.row_range(r, z);
            la::trsm_lower_left(dh.block(r, r, z, z), la::Op::None, wz);
            if (r > 0)
              la::gemm(-1.0, dh.block(0, r, r, z), la::Op::None, wz, la::Op::None, 1.0,
                       w.row_range(0, r));
          }
        });
  }
  // Root system: gather the reduced right-hand side into the root workspace
  // panel and solve in place against the device-resident root factor — no
  // host round-trip. One single-item launch keeps the FIFO stream order
  // (runs after the forward sweep, before the backward one).
  const index_t r1 = nodes_[1][0].rank, r2 = nodes_[1][1].rank;
  const MatrixView w10 = work[1][0], w11 = work[1][1];
  ctx.run_batch(
      stream, 1,
      [r1, r2, nrhs](index_t) { return (r1 + r2) * (r1 + r2) * nrhs + 1; },
      [this, rootw, w10, w11, r1, r2](index_t) {
        if (r1 > 0) copy(w10.row_range(0, r1), rootw.row_range(0, r1));
        if (r2 > 0) copy(w11.row_range(0, r2), rootw.row_range(r1, r2));
        la::cholesky_solve(root_arena_.dev(0), rootw);
        if (r1 > 0) copy(rootw.row_range(0, r1), w10.row_range(0, r1));
        if (r2 > 0) copy(rootw.row_range(r1, r2), w11.row_range(0, r2));
      });

  // Backward sweep, top down: recover the interior unknowns, rotate back,
  // scatter to the children (or to x at the leaves).
  for (index_t l = 1; l < levels; ++l) {
    const index_t cnt = tree_->nodes_at(l);
    const auto ul = static_cast<size_t>(l);
    auto* lvl_nodes = &nodes_[ul][0];
    auto* lvl_work = &work[ul][0];
    const backend::BlockArena* lvl_panels = &panels_[ul];
    auto* child_work = l == leaf ? nullptr : &work[ul + 1][0];
    const UlvNode* child_nodes = l == leaf ? nullptr : &nodes_[ul + 1][0];
    ctx.run_batch(
        stream, cnt,
        [lvl_nodes, nrhs](index_t i) {
          const index_t m = lvl_nodes[i].n_loc;
          return m * m * nrhs + 1;
        },
        [this, xd, l, leaf, cnt, lvl_nodes, lvl_work, lvl_panels, child_work, child_nodes,
         nrhs](index_t i) {
          const UlvNode& nd = lvl_nodes[i];
          MatrixView w = lvl_work[i];
          if (nd.n_loc == 0) return;
          ConstMatrixView qr = lvl_panels->dev(i);
          ConstMatrixView dh = lvl_panels->dev(cnt + i);
          const index_t r = nd.rank, z = nd.nz();
          if (z > 0) {
            MatrixView wz = w.row_range(r, z);
            if (r > 0)
              la::gemm(-1.0, dh.block(0, r, r, z), la::Op::Trans, w.row_range(0, r),
                       la::Op::None, 1.0, wz);
            la::trsm_lower_left(dh.block(r, r, z, z), la::Op::Trans, wz);
          }
          la::apply_q(qr, nd.tau, w);
          if (l == leaf) {
            copy(w, xd.block(tree_->begin(l, i), 0, nd.n_loc, nrhs));
          } else {
            const UlvNode& c1 = child_nodes[2 * i];
            const UlvNode& c2 = child_nodes[2 * i + 1];
            if (c1.rank > 0)
              copy(w.row_range(0, c1.rank), child_work[2 * i].row_range(0, c1.rank));
            if (c2.rank > 0)
              copy(w.row_range(c1.rank, c2.rank),
                   child_work[2 * i + 1].row_range(0, c2.rank));
          }
        });
  }
  ctx.sync(stream);
  dev.download(xd, x);
}

void UlvCholesky::solve_many(ConstMatrixView b, MatrixView x) const {
  batched::ExecutionContext ctx(execution_config());
  solve_many(b, x, ctx);
}

void UlvCholesky::solve(const_real_span b, real_span x, batched::ExecutionContext& ctx) const {
  const index_t n = size();
  H2S_CHECK(static_cast<index_t>(b.size()) == n && static_cast<index_t>(x.size()) == n,
            "ulv solve: size mismatch");
  ConstMatrixView bv(b.data(), n, 1, n == 0 ? 1 : n);
  MatrixView xv(x.data(), n, 1, n == 0 ? 1 : n);
  solve_many(bv, xv, ctx);
}

void UlvCholesky::solve(const_real_span b, real_span x) const {
  batched::ExecutionContext ctx(execution_config());
  solve(b, x, ctx);
}

std::size_t UlvCholesky::memory_bytes() const {
  std::size_t bytes = static_cast<std::size_t>(root_factor_.size()) * sizeof(real_t);
  for (const auto& pa : panels_) bytes += pa.payload_bytes();
  for (const auto& lvl : nodes_)
    for (const UlvNode& nd : lvl) bytes += nd.tau.size() * sizeof(real_t);
  return bytes;
}

std::size_t UlvCholesky::device_bytes() const {
  std::size_t bytes = root_arena_.device_bytes();
  for (const auto& pa : panels_) bytes += pa.device_bytes();
  return bytes;
}

} // namespace h2sketch::solver
