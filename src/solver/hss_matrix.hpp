#pragma once

#include <memory>
#include <vector>

#include "backend/block_arena.hpp"
#include "common/matrix.hpp"
#include "tree/cluster_tree.hpp"

/// \file hss_matrix.hpp
/// Dedicated HSS storage: the weak-admissibility special case of H2 kept in
/// its own generator layout instead of borrowing the H2 structures. An HSS
/// matrix on a perfect binary cluster tree is fully described by
///
///  * leaf generators U_i (cluster_size x r_i) and leaf diagonal blocks D_i,
///  * inner-node transfer generators [E_left; E_right]
///    ((r_left + r_right) x r_i) defining the nested bases, and
///  * one coupling block B_p per sibling pair (2p, 2p+1) at every level:
///    the whole off-diagonal block row of a node is carried by its sibling
///    pair (coupling sparsity constant 1).
///
/// The matrix is symmetric (V = U and the (2p+1, 2p) block is B_p^T),
/// matching the symmetric-kernel convention of the rest of the library. All
/// blocks are indexed in the cluster tree's permuted position space. This is
/// the structure the ULV factorization (ulv.hpp) consumes: per-node
/// generators are exactly the panels its QL/compress-eliminate-merge sweep
/// transforms level by level.
///
/// Storage is **device-resident** (see block_arena.hpp): generators,
/// coupling blocks and leaf diagonals live packed in per-level
/// `backend::BlockArena`s, so matvec reads operands in place — steady-state
/// per-apply traffic is the x upload and y download only. Host consumers
/// (densify, expand_generator) read the lazy `host(i)` mirrors. The matrix
/// is move-only and pinned to the backend it was built on
/// (`execution_config()`).

namespace h2sketch::solver {

class HssMatrix {
 public:
  std::shared_ptr<const tree::ClusterTree> tree; ///< cluster geometry

  /// ranks[l][i]: basis rank of node i at level l (level 0 = root carries no
  /// basis; its entry stays 0).
  std::vector<std::vector<index_t>> ranks;

  /// generators[l], slot i: at the leaf level, U_i (cluster_size x rank).
  /// At inner levels >= 1, the stacked transfer [E_left; E_right]
  /// ((rank(l+1,2i) + rank(l+1,2i+1)) x rank(l,i)). Level 0 is empty.
  std::vector<backend::BlockArena> generators;

  /// coupling[l], slot p: B for the sibling pair (2p, 2p+1) at level l >= 1,
  /// i.e. K(skeleton(l,2p), skeleton(l,2p+1)). The mirrored block is B^T.
  std::vector<backend::BlockArena> coupling;

  /// Slot i: dense diagonal block D_i of leaf node i.
  backend::BlockArena leaf_diag;

  /// skeleton[l][i]: permuted positions selected as skeleton indices for
  /// node i at level l (size == ranks[l][i]).
  std::vector<std::vector<std::vector<index_t>>> skeleton;

  index_t size() const { return tree ? tree->num_points() : 0; }
  index_t num_levels() const { return tree ? tree->num_levels() : 0; }
  index_t leaf_level() const { return tree->leaf_level(); }

  index_t rank(index_t level, index_t node) const {
    return ranks[static_cast<size_t>(level)][static_cast<size_t>(node)];
  }

  /// Allocate empty per-level containers sized to the tree.
  void init_structure();

  /// Smallest/largest rank over all nodes at levels >= 1.
  index_t min_rank() const;
  index_t max_rank() const;

  /// Logical payload bytes of U/E/B/D blocks plus skeleton index lists.
  std::size_t memory_bytes() const;

  /// Real device-resident bytes across all arenas (alignment padding
  /// included) — what the serving cache budgets and eviction frees.
  std::size_t device_bytes() const;

  /// Backend the arenas live on; null when nothing is allocated yet.
  std::shared_ptr<backend::DeviceBackend> storage_backend() const;

  /// Execution configuration bound to the arenas' backend (the process
  /// default if nothing is allocated yet). Contexts applying this matrix
  /// must share its device heap.
  backend::ExecutionConfig execution_config() const;

  /// Fast O(N) matvec through the U/E/B generators: upward pass along the
  /// transfer tree, one sibling-pair coupling launch per level (B and B^T
  /// half-launches), downward pass, leaf diagonal. y = A * x with x, y
  /// (N x d) in permuted position order; all batched products dispatch
  /// through the context's device backend with device-resident
  /// coefficient panels, exactly like h2_matvec.
  void matvec(batched::ExecutionContext& ctx, ConstMatrixView x, MatrixView y) const;

  /// Convenience overload with an internal context bound to the device the
  /// arenas live on (execution_config()).
  void matvec(ConstMatrixView x, MatrixView y) const;

  /// Expanded (non-nested) basis U_tau for one node: cluster_size x rank.
  Matrix expand_generator(index_t level, index_t node) const;

  /// Full dense representation in permuted position space. O(N^2) memory;
  /// tests and error oracles only.
  Matrix densify() const;

  /// Structural consistency: every dimension implied by ranks, cluster
  /// sizes, pair lists and skeletons must match. Throws on violation.
  void validate() const;
};

} // namespace h2sketch::solver
