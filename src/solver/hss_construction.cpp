#include "solver/hss_construction.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "backend/device_matrix.hpp"
#include "batched/batched_gemm.hpp"
#include "batched/batched_id.hpp"
#include "batched/batched_qr.hpp"
#include "batched/batched_rand.hpp"
#include "common/random.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

namespace h2sketch::solver {

namespace {

using core::ConstructionOptions;
using core::ConstructionStats;

/// Internal state machine mirroring core::detail::H2SketchBuilder, with the
/// weak-admissibility structure hard-wired and HssMatrix as the output.
class HssBuilder {
 public:
  HssBuilder(std::shared_ptr<const tree::ClusterTree> tree, kern::MatVecSampler& sampler,
             const kern::EntryGenerator& gen, const ConstructionOptions& opts,
             batched::ExecutionContext& ctx)
      : tree_(std::move(tree)), sampler_(sampler), gen_(gen), opts_(opts), ctx_(ctx),
        stream_(opts.seed) {
    H2S_CHECK(sampler_.size() == tree_->num_points(), "sampler size != tree size");
    out_.tree = tree_;
    out_.init_structure();

    const index_t levels = tree_->num_levels();
    yloc_.resize(static_cast<size_t>(levels));
    y_up_.resize(static_cast<size_t>(levels));
    omega_up_.resize(static_cast<size_t>(levels));
    jlocal_.resize(static_cast<size_t>(levels));
    for (index_t l = 0; l < levels; ++l)
      jlocal_[static_cast<size_t>(l)].resize(static_cast<size_t>(tree_->nodes_at(l)));

    const index_t leaf = tree_->leaf_level();
    leaf_positions_.resize(static_cast<size_t>(tree_->nodes_at(leaf)));
    for (index_t i = 0; i < tree_->nodes_at(leaf); ++i) {
      auto& pos = leaf_positions_[static_cast<size_t>(i)];
      pos.resize(static_cast<size_t>(tree_->size(leaf, i)));
      std::iota(pos.begin(), pos.end(), tree_->begin(leaf, i));
    }
  }

  HssResult run() {
    const double t0 = wall_seconds();
    const index_t leaf = tree_->leaf_level();

    // Leaf diagonals generate on the entry-gen stream while the initial
    // sketch round runs the monolithic sampler product.
    generate_leaf_diag();

    if (leaf >= 1) {
      sample_columns(opts_.effective_initial_samples());
      for (index_t l = leaf; l >= 1; --l) {
        extend_yloc(l, 0, d_total_);
        if (opts_.adaptive) {
          while (!level_converged(l)) {
            if (d_total_ + opts_.sample_block > opts_.max_samples) {
              ++stats_.nonconverged_nodes;
              break;
            }
            add_sample_round(l);
          }
        }
        skeletonize_level(l);
        generate_coupling(l);
      }
    }

    ctx_.sync_all();
    finalize_stats(t0);
    out_.validate();
    return HssResult{std::move(out_), stats_};
  }

 private:
  real_t eps_abs() const { return opts_.tol * stats_.norm_estimate; }

  void generate_leaf_diag() {
    PhaseScope scope(stats_.phases, Phase::EntryGen);
    const index_t leaf = tree_->leaf_level();
    std::vector<kern::BlockRequest> reqs;
    reqs.reserve(static_cast<size_t>(tree_->nodes_at(leaf)));
    for (index_t i = 0; i < tree_->nodes_at(leaf); ++i)
      out_.leaf_diag.set_shape(i, tree_->size(leaf, i), tree_->size(leaf, i));
    out_.leaf_diag.allocate(ctx_.device());
    for (index_t i = 0; i < tree_->nodes_at(leaf); ++i)
      reqs.push_back({leaf_positions_[static_cast<size_t>(i)],
                      leaf_positions_[static_cast<size_t>(i)], out_.leaf_diag.dev(i)});
    kern::batched_generate(ctx_, batched::kEntryGenStream, gen_, std::move(reqs));
  }

  void sample_columns(index_t d_new) {
    PhaseScope scope(stats_.phases, Phase::Sampling);
    // Appending columns reallocates (Omega, Y); in-flight launches may still
    // hold views into them, so this is a barrier — except for the initial
    // round, which overlaps the asynchronous leaf-diagonal generation.
    if (d_total_ > 0) ctx_.sync_all();
    const index_t n = tree_->num_points();
    const index_t c0 = d_total_;
    backend::DeviceBackend& dev = ctx_.device();
    if (omega_global_.rows() == 0) {
      omega_global_.resize(dev, n, c0 + d_new);
      y_global_.resize(dev, n, c0 + d_new);
    } else {
      omega_global_.append_cols(dev, d_new);
      y_global_.append_cols(dev, d_new);
    }
    MatrixView new_omega = omega_global_.view().col_range(c0, d_new);
    batched::batched_fill_gaussian(ctx_, new_omega, stream_, rand_offset_);
    rand_offset_ += static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(d_new);
    MatrixView new_y = y_global_.view().col_range(c0, d_new);
    {
      // Monolithic Kblk product over the device-resident (Omega, Y) pair.
      backend::KernelScope ks(&dev);
      sampler_.sample(new_omega, new_y);
    }
    d_total_ += d_new;
    ++stats_.sample_rounds;

    if (stats_.sample_rounds == 1) {
      backend::KernelScope ks(&dev);
      stats_.norm_estimate = opts_.norm_est == core::NormEstimate::Given
                                 ? opts_.given_norm
                                 : la::norm_f(new_y) / std::sqrt(static_cast<real_t>(d_new));
      H2S_CHECK(stats_.norm_estimate > 0.0, "norm estimate must be positive");
    }
  }

  /// Assemble (or extend by columns [c0, c0+dn)) the local samples at a
  /// level: Y(I) minus the leaf diagonal contribution at the leaves, stacked
  /// child upsweeps minus the child pair coupling above.
  void extend_yloc(index_t level, index_t c0, index_t dn) {
    // Consumer of the sample, basis and entry-gen pipelines.
    ctx_.sync_all();
    const index_t leaf = tree_->leaf_level();
    const index_t nodes = tree_->nodes_at(level);
    const auto ul = static_cast<size_t>(level);
    auto& yl = yloc_[ul];

    auto yloc_rows = [&](index_t i) {
      if (level == leaf) return tree_->size(level, i);
      return out_.ranks[ul + 1][static_cast<size_t>(2 * i)] +
             out_.ranks[ul + 1][static_cast<size_t>(2 * i + 1)];
    };

    {
      PhaseScope scope(stats_.phases, Phase::Misc);
      if (yl.empty()) {
        H2S_ASSERT(c0 == 0, "first Y_loc build must start at column 0");
        yl.resize(static_cast<size_t>(nodes));
        for (index_t i = 0; i < nodes; ++i)
          yl[static_cast<size_t>(i)].resize(ctx_.device(), yloc_rows(i), dn);
      } else {
        for (index_t i = 0; i < nodes; ++i)
          yl[static_cast<size_t>(i)].append_cols(ctx_.device(), dn);
      }
    }

    if (level == leaf) {
      // Y_loc = Y(I_tau, cols) - D_tau Omega(I_tau, cols): the only near
      // block of a leaf under weak admissibility is its own diagonal.
      {
        PhaseScope scope(stats_.phases, Phase::Misc);
        for (index_t i = 0; i < nodes; ++i)
          ctx_.device().copy_device(
              y_global_.view().block(tree_->begin(level, i), c0, tree_->size(level, i), dn),
              yl[static_cast<size_t>(i)].view().col_range(c0, dn));
      }
      PhaseScope scope(stats_.phases, Phase::BsrGemm);
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < nodes; ++i) {
        av.push_back(out_.leaf_diag.dev(i));
        bv.push_back(
            omega_global_.view().block(tree_->begin(level, i), c0, tree_->size(level, i), dn));
        cv.push_back(yl[static_cast<size_t>(i)].view().col_range(c0, dn));
      }
      // Later consumers of Y_loc launch on the sample stream too; FIFO order
      // stands in for a barrier.
      batched::batched_gemm(ctx_, batched::kSampleStream, -1.0, std::move(av), la::Op::None,
                            std::move(bv), la::Op::None, 1.0, std::move(cv));
      return;
    }

    // Inner level: stack the children's upswept samples, then subtract the
    // child-level sibling coupling B_i omega_up / B_i^T omega_up.
    const index_t child_level = level + 1;
    const auto uc = static_cast<size_t>(child_level);
    {
      PhaseScope scope(stats_.phases, Phase::Misc);
      for (index_t i = 0; i < nodes; ++i) {
        const index_t r1 = out_.ranks[uc][static_cast<size_t>(2 * i)];
        const index_t r2 = out_.ranks[uc][static_cast<size_t>(2 * i + 1)];
        MatrixView dst = yl[static_cast<size_t>(i)].view();
        if (r1 > 0)
          ctx_.device().copy_device(
              y_up_[uc][static_cast<size_t>(2 * i)].view().col_range(c0, dn),
              dst.block(0, c0, r1, dn));
        if (r2 > 0)
          ctx_.device().copy_device(
              y_up_[uc][static_cast<size_t>(2 * i + 1)].view().col_range(c0, dn),
              dst.block(r1, c0, r2, dn));
      }
    }
    PhaseScope scope(stats_.phases, Phase::BsrGemm);
    // Child pair p = i at the child level couples children (2i, 2i+1) of
    // node i: subtract B_i omega_up(2i+1) from the top rows and
    // B_i^T omega_up(2i) from the bottom rows. Two half-launches on the
    // sample stream (FIFO after the stacking copy above is host-side done).
    for (int side = 0; side < 2; ++side) {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < nodes; ++i) {
        const index_t r1 = out_.ranks[uc][static_cast<size_t>(2 * i)];
        const index_t r2 = out_.ranks[uc][static_cast<size_t>(2 * i + 1)];
        const index_t rows = side == 0 ? r1 : r2;
        if (rows == 0 || (side == 0 ? r2 : r1) == 0) {
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(out_.coupling[uc].dev(i));
        bv.push_back(omega_up_[uc][static_cast<size_t>(2 * i + (side == 0 ? 1 : 0))]
                         .view()
                         .col_range(c0, dn));
        cv.push_back(yl[static_cast<size_t>(i)].view().block(side == 0 ? 0 : r1, c0, rows, dn));
      }
      batched::batched_gemm(ctx_, batched::kSampleStream, -1.0, std::move(av),
                            side == 0 ? la::Op::None : la::Op::Trans, std::move(bv), la::Op::None,
                            1.0, std::move(cv));
    }
  }

  /// Row-ID the level's samples into generators/skeletons, then sweep the
  /// samples and random vectors up.
  void skeletonize_level(index_t level) {
    const index_t nodes = tree_->nodes_at(level);
    const index_t leaf = tree_->leaf_level();
    const auto ul = static_cast<size_t>(level);

    std::vector<la::RowID> ids(static_cast<size_t>(nodes));
    {
      PhaseScope scope(stats_.phases, Phase::ID);
      std::vector<ConstMatrixView> ys;
      ys.reserve(static_cast<size_t>(nodes));
      for (index_t i = 0; i < nodes; ++i)
        ys.push_back(yloc_[ul][static_cast<size_t>(i)].view());
      batched::batched_row_id(ctx_, ys, opts_.id_tol_factor * eps_abs(), /*max_rank=*/-1, ids);
    }

    {
      PhaseScope scope(stats_.phases, Phase::Misc);
      obs::SketchMetric& rank_sketch =
          obs::MetricsRegistry::global().sketch("construction_block_rank");
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        la::RowID& id = ids[ui];
        const index_t k = static_cast<index_t>(id.skeleton.size());
        out_.ranks[ul][ui] = k;
        rank_sketch.record(static_cast<double>(k));
        out_.generators[ul].set_shape(i, id.interp.rows(), id.interp.cols());
        jlocal_[ul][ui] = id.skeleton;

        auto& skel = out_.skeleton[ul][ui];
        skel.resize(static_cast<size_t>(k));
        if (level == leaf) {
          const index_t b = tree_->begin(level, i);
          for (index_t s = 0; s < k; ++s)
            skel[static_cast<size_t>(s)] = b + id.skeleton[static_cast<size_t>(s)];
        } else {
          const auto& s1 = out_.skeleton[ul + 1][static_cast<size_t>(2 * i)];
          const auto& s2 = out_.skeleton[ul + 1][static_cast<size_t>(2 * i + 1)];
          const index_t r1 = static_cast<index_t>(s1.size());
          for (index_t s = 0; s < k; ++s) {
            const index_t j = id.skeleton[static_cast<size_t>(s)];
            skel[static_cast<size_t>(s)] =
                j < r1 ? s1[static_cast<size_t>(j)] : s2[static_cast<size_t>(j - r1)];
          }
        }
      }
    }

    // One packed upload per level: the generators land in the device arena
    // once at build time and never cross the boundary again.
    out_.generators[ul].allocate(ctx_.device());
    for (index_t i = 0; i < nodes; ++i)
      out_.generators[ul].upload(i, ids[static_cast<size_t>(i)].interp.view());

    // Upsweep: y_up = Y_loc(J, :) on the sample stream, omega_up on the
    // basis stream (disjoint state; next level's extend_yloc syncs first).
    PhaseScope scope(stats_.phases, Phase::Upsweep);
    auto& yup = y_up_[ul];
    yup.resize(static_cast<size_t>(nodes));
    {
      std::vector<ConstMatrixView> src;
      std::vector<MatrixView> dst;
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        yup[ui].resize(ctx_.device(), out_.ranks[ul][ui], d_total_);
        src.push_back(yloc_[ul][ui].view());
        dst.push_back(yup[ui].view());
      }
      batched::batched_gather_rows(ctx_, batched::kSampleStream, std::move(src), jlocal_[ul],
                                   std::move(dst));
    }

    auto& oup = omega_up_[ul];
    oup.resize(static_cast<size_t>(nodes));
    for (index_t i = 0; i < nodes; ++i)
      oup[static_cast<size_t>(i)].resize(ctx_.device(), out_.ranks[ul][static_cast<size_t>(i)],
                                         d_total_);
    upsweep_omega(level, 0, d_total_);
  }

  /// omega_up(:, [c0, c0+dn)) for a level whose generators exist: U^T Omega
  /// at the leaf, transfer products above. Launches on the basis stream.
  void upsweep_omega(index_t level, index_t c0, index_t dn) {
    const index_t leaf = tree_->leaf_level();
    const index_t nodes = tree_->nodes_at(level);
    const auto ul = static_cast<size_t>(level);
    if (level == leaf) {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        av.push_back(out_.generators[ul].dev(i));
        bv.push_back(
            omega_global_.view().block(tree_->begin(level, i), c0, tree_->size(level, i), dn));
        cv.push_back(omega_up_[ul][ui].view().col_range(c0, dn));
      }
      batched::batched_gemm(ctx_, batched::kBasisStream, 1.0, std::move(av), la::Op::Trans,
                            std::move(bv), la::Op::None, 0.0, std::move(cv));
      return;
    }
    for (int side = 0; side < 2; ++side) {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        const index_t k = out_.ranks[ul][ui];
        const index_t r1 = out_.ranks[ul + 1][static_cast<size_t>(2 * i)];
        const index_t rs = side == 0 ? r1 : out_.ranks[ul + 1][static_cast<size_t>(2 * i + 1)];
        const index_t row0 = side == 0 ? 0 : r1;
        if (k == 0 || rs == 0) {
          // The target columns start zeroed; skipping equals beta=0.
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(out_.generators[ul].dev(i).block(row0, 0, rs, k));
        bv.push_back(omega_up_[ul + 1][static_cast<size_t>(2 * i + side)].view().col_range(c0, dn));
        cv.push_back(omega_up_[ul][ui].view().col_range(c0, dn));
      }
      batched::batched_gemm(ctx_, batched::kBasisStream, 1.0, std::move(av), la::Op::Trans,
                            std::move(bv), la::Op::None, side == 0 ? 0.0 : 1.0, std::move(cv));
    }
  }

  /// Extend the upswept (y_up, omega_up) of a skeletonized level for new
  /// sample columns [c0, c0+dn).
  void extend_upswept(index_t level, index_t c0, index_t dn) {
    PhaseScope scope(stats_.phases, Phase::Upsweep);
    const index_t nodes = tree_->nodes_at(level);
    const auto ul = static_cast<size_t>(level);
    for (index_t i = 0; i < nodes; ++i) {
      y_up_[ul][static_cast<size_t>(i)].append_cols(ctx_.device(), dn);
      omega_up_[ul][static_cast<size_t>(i)].append_cols(ctx_.device(), dn);
    }
    {
      std::vector<ConstMatrixView> src;
      std::vector<MatrixView> dst;
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        src.push_back(yloc_[ul][ui].view().col_range(c0, dn));
        dst.push_back(y_up_[ul][ui].view().col_range(c0, dn));
      }
      batched::batched_gather_rows(ctx_, batched::kSampleStream, std::move(src), jlocal_[ul],
                                   std::move(dst));
    }
    upsweep_omega(level, c0, dn);
  }

  void add_sample_round(index_t level) {
    const index_t c0 = d_total_;
    const index_t dn = opts_.sample_block;
    sample_columns(dn);
    for (index_t l = tree_->leaf_level(); l > level; --l) {
      extend_yloc(l, c0, dn);
      extend_upswept(l, c0, dn);
    }
    extend_yloc(level, c0, dn);
  }

  bool level_converged(index_t level) {
    PhaseScope scope(stats_.phases, Phase::Convergence);
    const index_t nodes = tree_->nodes_at(level);
    const auto ul = static_cast<size_t>(level);
    // Probe on a working copy of Y_loc whose factorization persists across
    // adaptive rounds: each probe ingests only the appended sample columns
    // (bitwise identical to a from-scratch QR of the full panel), so a
    // level's probes cost O(m d^2) total instead of O(rounds m d^2).
    ctx_.sync(batched::kSampleStream); // Y_loc writers are FIFO on this stream
    if (probe_level_ != level) {
      probe_level_ = level;
      probe_cols_ = 0;
      probe_work_.clear();
      probe_work_.resize(static_cast<size_t>(nodes));
      probe_tau_.assign(static_cast<size_t>(nodes), {});
      for (index_t i = 0; i < nodes; ++i)
        probe_work_[static_cast<size_t>(i)].resize(ctx_.device(),
                                                   yloc_[ul][static_cast<size_t>(i)].rows(), 0);
    }
    const index_t c0 = probe_cols_;
    const index_t dn = d_total_ - c0;
    std::vector<MatrixView> work(static_cast<size_t>(nodes));
    std::vector<index_t> factored(static_cast<size_t>(nodes), c0);
    for (index_t i = 0; i < nodes; ++i) {
      const auto ui = static_cast<size_t>(i);
      probe_work_[ui].append_cols(ctx_.device(), dn);
      ctx_.device().copy_device(yloc_[ul][ui].view().col_range(c0, dn),
                                probe_work_[ui].view().col_range(c0, dn));
      work[ui] = probe_work_[ui].view();
    }
    std::vector<real_t> mins(static_cast<size_t>(nodes));
    batched::batched_min_r_diag_update(ctx_, work, factored, probe_tau_, mins);
    probe_cols_ = d_total_;
    obs::SketchMetric& residual_sketch =
        obs::MetricsRegistry::global().sketch("construction_probe_residual");
    for (index_t i = 0; i < nodes; ++i) residual_sketch.record(mins[static_cast<size_t>(i)]);
    const real_t eps = eps_abs();
    for (index_t i = 0; i < nodes; ++i) {
      const index_t m = yloc_[ul][static_cast<size_t>(i)].rows();
      if (d_total_ >= m) continue;
      if (mins[static_cast<size_t>(i)] >= eps) return false;
    }
    return true;
  }

  /// Generate the sibling-pair coupling blocks for a skeletonized level on
  /// the entry-gen stream (asynchronous; skeleton lists are stable members).
  void generate_coupling(index_t level) {
    PhaseScope scope(stats_.phases, Phase::EntryGen);
    const auto ul = static_cast<size_t>(level);
    std::vector<kern::BlockRequest> reqs;
    reqs.reserve(static_cast<size_t>(tree_->nodes_at(level) / 2));
    for (index_t p = 0; p < tree_->nodes_at(level) / 2; ++p) {
      const auto& rs = out_.skeleton[ul][static_cast<size_t>(2 * p)];
      const auto& cs = out_.skeleton[ul][static_cast<size_t>(2 * p + 1)];
      out_.coupling[ul].set_shape(p, static_cast<index_t>(rs.size()),
                                  static_cast<index_t>(cs.size()));
    }
    out_.coupling[ul].allocate(ctx_.device());
    for (index_t p = 0; p < tree_->nodes_at(level) / 2; ++p)
      reqs.push_back({out_.skeleton[ul][static_cast<size_t>(2 * p)],
                      out_.skeleton[ul][static_cast<size_t>(2 * p + 1)],
                      out_.coupling[ul].dev(p)});
    kern::batched_generate(ctx_, batched::kEntryGenStream, gen_, std::move(reqs));
  }

  void finalize_stats(double t0) {
    stats_.total_seconds = wall_seconds() - t0;
    stats_.total_samples = d_total_;
    stats_.kernel_launches = ctx_.kernel_launches();
    stats_.entries_generated = gen_.entries_generated();
    stats_.min_rank = out_.min_rank();
    stats_.max_rank = out_.max_rank();
    stats_.levels = tree_->num_levels();
    stats_.max_rank_per_level.assign(static_cast<size_t>(tree_->num_levels()), 0);
    for (index_t l = 1; l < tree_->num_levels(); ++l)
      for (index_t i = 0; i < tree_->nodes_at(l); ++i)
        stats_.max_rank_per_level[static_cast<size_t>(l)] =
            std::max(stats_.max_rank_per_level[static_cast<size_t>(l)], out_.rank(l, i));
    stats_.memory_bytes = out_.memory_bytes();
    stats_.csp = 1; // weak admissibility: one coupling block per node

    // Same registry feed as the H2 builder (core/construction.cpp).
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("construction_runs").add();
    reg.counter("construction_kernel_launches")
        .add(static_cast<std::uint64_t>(stats_.kernel_launches));
    reg.counter("construction_samples").add(static_cast<std::uint64_t>(stats_.total_samples));
    reg.counter("construction_nonconverged_nodes")
        .add(static_cast<std::uint64_t>(stats_.nonconverged_nodes));
  }

  std::shared_ptr<const tree::ClusterTree> tree_;
  kern::MatVecSampler& sampler_;
  const kern::EntryGenerator& gen_;
  ConstructionOptions opts_;
  batched::ExecutionContext& ctx_;

  HssMatrix out_;
  ConstructionStats stats_;

  GaussianStream stream_;
  std::uint64_t rand_offset_ = 0;
  backend::DeviceMatrix omega_global_; ///< N x d_total, device-resident
  backend::DeviceMatrix y_global_;     ///< N x d_total, device-resident
  index_t d_total_ = 0;

  std::vector<std::vector<backend::DeviceMatrix>> yloc_;
  std::vector<std::vector<backend::DeviceMatrix>> y_up_, omega_up_;
  std::vector<std::vector<std::vector<index_t>>> jlocal_;
  std::vector<std::vector<index_t>> leaf_positions_;

  // Incremental convergence-probe state, valid for probe_level_ only: per
  // node a copy of Y_loc whose first probe_cols_ columns hold their
  // Householder factorization in place (scalars in probe_tau_).
  index_t probe_level_ = -1;
  index_t probe_cols_ = 0;
  std::vector<backend::DeviceMatrix> probe_work_;
  std::vector<std::vector<real_t>> probe_tau_;
};

} // namespace

HssResult build_hss(std::shared_ptr<const tree::ClusterTree> tree, kern::MatVecSampler& sampler,
                    const kern::EntryGenerator& gen, const core::ConstructionOptions& opts,
                    batched::ExecutionContext& ctx) {
  HssBuilder builder(std::move(tree), sampler, gen, opts, ctx);
  // The builder's launches reference its sampling panels; if construction
  // unwinds (e.g. an injected device fault), drain the streams before the
  // builder -- declared above the fence -- is destroyed.
  batched::StreamFence fence(ctx);
  return builder.run();
}

HssResult build_hss(std::shared_ptr<const tree::ClusterTree> tree, kern::MatVecSampler& sampler,
                    const kern::EntryGenerator& gen, const core::ConstructionOptions& opts) {
  batched::ExecutionContext ctx(batched::Backend::Batched);
  return build_hss(std::move(tree), sampler, gen, opts, ctx);
}

HssResult build_hss(std::shared_ptr<const tree::ClusterTree> tree,
                    const kern::KernelFunction& kernel, const core::ConstructionOptions& opts,
                    kern::SamplerKind kind, kern::ProxySamplerOptions proxy_opts) {
  if (proxy_opts.tol <= 0) proxy_opts.tol = opts.tol;
  const kern::KernelEntryGenerator gen(*tree, kernel);
  auto sampler =
      kern::make_kernel_sampler(kern::sampler_kind_from_env(kind), tree, kernel, proxy_opts);
  return build_hss(std::move(tree), *sampler, gen, opts);
}

} // namespace h2sketch::solver
