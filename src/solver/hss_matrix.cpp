#include "solver/hss_matrix.hpp"

#include <algorithm>

#include "backend/registry.hpp"
#include "batched/batched_gemm.hpp"
#include "la/blas.hpp"

namespace h2sketch::solver {

void HssMatrix::init_structure() {
  const index_t levels = num_levels();
  ranks.assign(static_cast<size_t>(levels), {});
  generators = std::vector<backend::BlockArena>(static_cast<size_t>(levels));
  coupling = std::vector<backend::BlockArena>(static_cast<size_t>(levels));
  skeleton.assign(static_cast<size_t>(levels), {});
  for (index_t l = 0; l < levels; ++l) {
    const index_t nodes = tree->nodes_at(l);
    ranks[static_cast<size_t>(l)].assign(static_cast<size_t>(nodes), 0);
    generators[static_cast<size_t>(l)].reset(nodes);
    skeleton[static_cast<size_t>(l)].assign(static_cast<size_t>(nodes), {});
    coupling[static_cast<size_t>(l)].reset(l >= 1 ? nodes / 2 : 0);
  }
  leaf_diag.reset(tree->nodes_at(leaf_level()));
}

index_t HssMatrix::min_rank() const {
  index_t mn = size();
  for (index_t l = 1; l < num_levels(); ++l)
    for (index_t r : ranks[static_cast<size_t>(l)]) mn = std::min(mn, r);
  return num_levels() > 1 ? mn : 0;
}

index_t HssMatrix::max_rank() const {
  index_t mx = 0;
  for (index_t l = 1; l < num_levels(); ++l)
    for (index_t r : ranks[static_cast<size_t>(l)]) mx = std::max(mx, r);
  return mx;
}

std::size_t HssMatrix::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lvl : generators) bytes += lvl.payload_bytes();
  for (const auto& lvl : coupling) bytes += lvl.payload_bytes();
  bytes += leaf_diag.payload_bytes();
  for (const auto& lvl : skeleton)
    for (const auto& s : lvl) bytes += s.size() * sizeof(index_t);
  return bytes;
}

std::size_t HssMatrix::device_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lvl : generators) bytes += lvl.device_bytes();
  for (const auto& lvl : coupling) bytes += lvl.device_bytes();
  bytes += leaf_diag.device_bytes();
  return bytes;
}

std::shared_ptr<backend::DeviceBackend> HssMatrix::storage_backend() const {
  if (leaf_diag.allocated()) return leaf_diag.backend_ptr();
  for (const auto& lvl : generators)
    if (lvl.allocated()) return lvl.backend_ptr();
  for (const auto& lvl : coupling)
    if (lvl.allocated()) return lvl.backend_ptr();
  return nullptr;
}

backend::ExecutionConfig HssMatrix::execution_config() const {
  if (auto dev = storage_backend()) return {std::move(dev), backend::LaunchMode::Batched};
  return backend::default_backend();
}

Matrix HssMatrix::expand_generator(index_t level, index_t node) const {
  const auto ul = static_cast<size_t>(level);
  const auto un = static_cast<size_t>(node);
  if (level == leaf_level()) return generators[ul].host(node);
  const Matrix u1 = expand_generator(level + 1, 2 * node);
  const Matrix u2 = expand_generator(level + 1, 2 * node + 1);
  const Matrix& e = generators[ul].host(node);
  const index_t k = ranks[ul][un];
  Matrix out(u1.rows() + u2.rows(), k);
  if (u1.cols() > 0)
    la::gemm(1.0, u1.view(), la::Op::None, e.view().row_range(0, u1.cols()), la::Op::None, 0.0,
             out.view().row_range(0, u1.rows()));
  if (u2.cols() > 0)
    la::gemm(1.0, u2.view(), la::Op::None, e.view().row_range(u1.cols(), u2.cols()), la::Op::None,
             0.0, out.view().row_range(u1.rows(), u2.rows()));
  return out;
}

Matrix HssMatrix::densify() const {
  const index_t n = size();
  Matrix a(n, n);
  const index_t leaf = leaf_level();
  // Dense leaf diagonals.
  for (index_t i = 0; i < tree->nodes_at(leaf); ++i) {
    const index_t b = tree->begin(leaf, i);
    const Matrix& d = leaf_diag.host(i);
    copy(d.view(), a.view().block(b, b, d.rows(), d.cols()));
  }
  // Off-diagonal sibling pairs: U_s B U_t^T and the mirrored transpose.
  for (index_t l = 1; l < num_levels(); ++l) {
    for (index_t p = 0; p < tree->nodes_at(l) / 2; ++p) {
      const index_t s = 2 * p, t = 2 * p + 1;
      const auto& lvl = coupling[static_cast<size_t>(l)];
      if (lvl.rows(p) == 0 || lvl.cols(p) == 0) continue;
      const Matrix& b = lvl.host(p);
      const Matrix us = expand_generator(l, s);
      const Matrix ut = expand_generator(l, t);
      Matrix ub(us.rows(), b.cols());
      la::gemm(1.0, us.view(), la::Op::None, b.view(), la::Op::None, 0.0, ub.view());
      MatrixView blk =
          a.view().block(tree->begin(l, s), tree->begin(l, t), us.rows(), ut.rows());
      la::gemm(1.0, ub.view(), la::Op::None, ut.view(), la::Op::Trans, 0.0, blk);
      // Symmetric mirror.
      MatrixView blk_t =
          a.view().block(tree->begin(l, t), tree->begin(l, s), ut.rows(), us.rows());
      for (index_t j = 0; j < blk.cols; ++j)
        for (index_t i = 0; i < blk.rows; ++i) blk_t(j, i) = blk(i, j);
    }
  }
  return a;
}

void HssMatrix::matvec(batched::ExecutionContext& ctx, ConstMatrixView x, MatrixView y) const {
  const index_t n = size();
  const index_t d = x.cols;
  H2S_CHECK(x.rows == n && y.rows == n && y.cols == d, "HssMatrix::matvec: shape mismatch");
  const tree::ClusterTree& t = *tree;
  const index_t levels = num_levels();
  const index_t leaf = leaf_level();
  const auto stream = batched::kSampleStream;
  const auto diag_stream = batched::kBasisStream;

  backend::DeviceBackend& dev = ctx.device();
  if (auto own = storage_backend())
    H2S_CHECK(own->memory_owner() == dev.memory_owner(),
              "HssMatrix::matvec: context device does not own this matrix's device arenas "
              "(built on "
                  << own->name() << ", applied on " << dev.name() << ")");

  // One arena reservation per matvec for the marshaled input/output panels
  // and the per-node coefficient blocks (the prefix-sum single-allocation
  // pattern; see h2_matvec).
  Workspace& ws = ctx.workspace();
  ws.reset();
  {
    std::size_t total = 2 * Workspace::panel_bytes(n, d) + 64;
    for (index_t l = 1; l < levels; ++l)
      for (index_t i = 0; i < t.nodes_at(l); ++i)
        total += 2 * Workspace::panel_bytes(rank(l, i), d);
    ws.reserve_bytes(total);
  }

  MatrixView xd = ws.panel(n, d);
  MatrixView yd = ws.panel(n, d);

  std::vector<std::vector<MatrixView>> xhat(static_cast<size_t>(levels)),
      yhat(static_cast<size_t>(levels));
  for (index_t l = 1; l < levels; ++l) {
    const index_t nodes = t.nodes_at(l);
    xhat[static_cast<size_t>(l)].resize(static_cast<size_t>(nodes));
    yhat[static_cast<size_t>(l)].resize(static_cast<size_t>(nodes));
    for (index_t i = 0; i < nodes; ++i) {
      xhat[static_cast<size_t>(l)][static_cast<size_t>(i)] = ws.panel(rank(l, i), d);
      yhat[static_cast<size_t>(l)][static_cast<size_t>(i)] = ws.panel(rank(l, i), d);
    }
  }
  // Pending launches write into the workspace arena; if a launch fault
  // unwinds this call, drain them before the caller can reset/reuse ws.
  batched::StreamFence fence(ctx);
  // One bulk zero fill from yd through the last coefficient panel (yd and
  // the panels must start zeroed); xd sits before the span and is filled
  // by the upload instead.
  const auto skip = static_cast<std::size_t>(reinterpret_cast<std::byte*>(yd.data) -
                                             static_cast<std::byte*>(ws.arena_data()));
  dev.fill_zero(yd.data, ws.used_bytes() - skip);
  dev.upload(x, xd);

  // Leaf diagonal phase yd(I_tau) += D_tau xd(I_tau): one launch on its own
  // stream, overlapping the whole low-rank chain; joined before the leaf
  // expansion (the only other writer of yd).
  {
    std::vector<ConstMatrixView> av, bv;
    std::vector<MatrixView> cv;
    for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
      av.push_back(leaf_diag.dev(i));
      bv.push_back(xd.row_range(t.begin(leaf, i), t.size(leaf, i)));
      cv.push_back(yd.row_range(t.begin(leaf, i), t.size(leaf, i)));
    }
    batched::batched_gemm(ctx, diag_stream, 1.0, std::move(av), la::Op::None, std::move(bv),
                          la::Op::None, 1.0, std::move(cv));
  }

  if (levels > 1) {
    // Upward pass, leaf: xhat = U^T xd(I_tau, :).
    {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
        if (rank(leaf, i) == 0) {
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(generators[static_cast<size_t>(leaf)].dev(i));
        bv.push_back(xd.row_range(t.begin(leaf, i), t.size(leaf, i)));
        cv.push_back(xhat[static_cast<size_t>(leaf)][static_cast<size_t>(i)]);
      }
      batched::batched_gemm(ctx, stream, 1.0, std::move(av), la::Op::Trans, std::move(bv),
                            la::Op::None, 0.0, std::move(cv));
    }

    // Upward pass, inner: xhat_tau = E_1^T xhat_l + E_2^T xhat_r (two
    // half-launches; FIFO order is the level barrier).
    for (index_t l = leaf - 1; l >= 1; --l) {
      for (int side = 0; side < 2; ++side) {
        std::vector<ConstMatrixView> av, bv;
        std::vector<MatrixView> cv;
        for (index_t i = 0; i < t.nodes_at(l); ++i) {
          const index_t r_left = rank(l + 1, 2 * i);
          const index_t r_side = side == 0 ? r_left : rank(l + 1, 2 * i + 1);
          const index_t row0 = side == 0 ? 0 : r_left;
          const index_t r_tau = rank(l, i);
          if (r_tau == 0 || r_side == 0) {
            av.push_back(ConstMatrixView());
            bv.push_back(ConstMatrixView());
            cv.push_back(MatrixView());
            continue;
          }
          av.push_back(generators[static_cast<size_t>(l)].dev(i).block(row0, 0, r_side, r_tau));
          bv.push_back(xhat[static_cast<size_t>(l + 1)][static_cast<size_t>(2 * i + side)]);
          cv.push_back(xhat[static_cast<size_t>(l)][static_cast<size_t>(i)]);
        }
        batched::batched_gemm(ctx, stream, 1.0, std::move(av), la::Op::Trans, std::move(bv),
                              la::Op::None, side == 0 ? 0.0 : 1.0, std::move(cv));
      }
    }

    // Coupling phase, one sibling-pair batch per level: yhat_{2p} += B_p
    // xhat_{2p+1} and yhat_{2p+1} += B_p^T xhat_{2p}, as two half-launches
    // so each yhat block has a single writer per launch.
    for (index_t l = 1; l < levels; ++l) {
      const auto ul = static_cast<size_t>(l);
      for (int side = 0; side < 2; ++side) {
        std::vector<ConstMatrixView> av, bv;
        std::vector<MatrixView> cv;
        for (index_t p = 0; p < t.nodes_at(l) / 2; ++p) {
          if (coupling[ul].rows(p) == 0 || coupling[ul].cols(p) == 0) {
            av.push_back(ConstMatrixView());
            bv.push_back(ConstMatrixView());
            cv.push_back(MatrixView());
            continue;
          }
          av.push_back(coupling[ul].dev(p));
          bv.push_back(xhat[ul][static_cast<size_t>(2 * p + (side == 0 ? 1 : 0))]);
          cv.push_back(yhat[ul][static_cast<size_t>(2 * p + side)]);
        }
        batched::batched_gemm(ctx, stream, 1.0, std::move(av),
                              side == 0 ? la::Op::None : la::Op::Trans, std::move(bv),
                              la::Op::None, 1.0, std::move(cv));
      }
    }

    // Downward pass: children accumulate E_side * yhat_parent.
    for (index_t l = 1; l < leaf; ++l) {
      for (int side = 0; side < 2; ++side) {
        std::vector<ConstMatrixView> av, bv;
        std::vector<MatrixView> cv;
        for (index_t i = 0; i < t.nodes_at(l); ++i) {
          const index_t r_left = rank(l + 1, 2 * i);
          const index_t r_side = side == 0 ? r_left : rank(l + 1, 2 * i + 1);
          const index_t row0 = side == 0 ? 0 : r_left;
          const index_t r_tau = rank(l, i);
          if (r_tau == 0 || r_side == 0) {
            av.push_back(ConstMatrixView());
            bv.push_back(ConstMatrixView());
            cv.push_back(MatrixView());
            continue;
          }
          av.push_back(generators[static_cast<size_t>(l)].dev(i).block(row0, 0, r_side, r_tau));
          bv.push_back(yhat[static_cast<size_t>(l)][static_cast<size_t>(i)]);
          cv.push_back(yhat[static_cast<size_t>(l + 1)][static_cast<size_t>(2 * i + side)]);
        }
        batched::batched_gemm(ctx, stream, 1.0, std::move(av), la::Op::None, std::move(bv),
                              la::Op::None, 1.0, std::move(cv));
      }
    }

    // Leaf expansion yd(I_tau) += U yhat_leaf: joins the diagonal stream
    // first (the only concurrent writer of yd).
    ctx.sync(diag_stream);
    {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
        if (rank(leaf, i) == 0) {
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(generators[static_cast<size_t>(leaf)].dev(i));
        bv.push_back(yhat[static_cast<size_t>(leaf)][static_cast<size_t>(i)]);
        cv.push_back(yd.row_range(t.begin(leaf, i), t.size(leaf, i)));
      }
      batched::batched_gemm(ctx, stream, 1.0, std::move(av), la::Op::None, std::move(bv),
                            la::Op::None, 1.0, std::move(cv));
    }
  }

  // Arena panels must outlive every launch; then marshal the result back.
  ctx.sync_all();
  dev.download(yd, y);
}

void HssMatrix::matvec(ConstMatrixView x, MatrixView y) const {
  batched::ExecutionContext ctx(execution_config());
  matvec(ctx, x, y);
}

void HssMatrix::validate() const {
  H2S_CHECK(tree != nullptr, "HssMatrix: missing cluster tree");
  const index_t levels = num_levels();
  const index_t leaf = leaf_level();
  H2S_CHECK(static_cast<index_t>(ranks.size()) == levels &&
                static_cast<index_t>(generators.size()) == levels &&
                static_cast<index_t>(coupling.size()) == levels &&
                static_cast<index_t>(skeleton.size()) == levels,
            "HssMatrix: per-level container count mismatch");
  H2S_CHECK(leaf_diag.count() == tree->nodes_at(leaf),
            "HssMatrix: leaf diagonal count mismatch");
  for (index_t i = 0; i < tree->nodes_at(leaf); ++i)
    H2S_CHECK(leaf_diag.rows(i) == tree->size(leaf, i) && leaf_diag.cols(i) == tree->size(leaf, i),
              "HssMatrix: leaf diagonal dimension mismatch at node " << i);
  for (index_t l = 1; l < levels; ++l) {
    const auto ul = static_cast<size_t>(l);
    H2S_CHECK(static_cast<index_t>(ranks[ul].size()) == tree->nodes_at(l),
              "HssMatrix: rank count mismatch at level " << l);
    H2S_CHECK(coupling[ul].count() == tree->nodes_at(l) / 2,
              "HssMatrix: coupling pair count mismatch at level " << l);
    for (index_t i = 0; i < tree->nodes_at(l); ++i) {
      const auto ui = static_cast<size_t>(i);
      const index_t k = ranks[ul][ui];
      if (l == leaf) {
        H2S_CHECK(generators[ul].rows(i) == tree->size(l, i) && generators[ul].cols(i) == k,
                  "HssMatrix: leaf generator dimension mismatch at node " << i);
      } else {
        const index_t rsum = ranks[ul + 1][static_cast<size_t>(2 * i)] +
                             ranks[ul + 1][static_cast<size_t>(2 * i + 1)];
        H2S_CHECK(generators[ul].rows(i) == rsum && generators[ul].cols(i) == k,
                  "HssMatrix: transfer dimension mismatch at level " << l << " node " << i);
      }
      H2S_CHECK(static_cast<index_t>(skeleton[ul][ui].size()) == k,
                "HssMatrix: skeleton size != rank at level " << l << " node " << i);
      for (index_t pos : skeleton[ul][ui])
        H2S_CHECK(pos >= tree->begin(l, i) && pos < tree->end(l, i),
                  "HssMatrix: skeleton index outside node range at level " << l);
    }
    for (index_t p = 0; p < tree->nodes_at(l) / 2; ++p)
      H2S_CHECK(coupling[ul].rows(p) == ranks[ul][static_cast<size_t>(2 * p)] &&
                    coupling[ul].cols(p) == ranks[ul][static_cast<size_t>(2 * p + 1)],
                "HssMatrix: coupling dimension mismatch at level " << l << " pair " << p);
  }
}

} // namespace h2sketch::solver
