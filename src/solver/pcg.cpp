#include "solver/pcg.hpp"

#include <cmath>

#include "common/check.hpp"
#include "la/blas.hpp"

namespace h2sketch::solver {

PcgResult pcg(const ApplyFn& apply_a, const_real_span b, real_span x, const PcgOptions& opts,
              const ApplyFn& precond) {
  const auto n = b.size();
  H2S_CHECK(x.size() == n, "pcg: size mismatch");
  PcgResult out;

  std::vector<real_t> r(n), z(n), p(n), ap(n);
  // r = b - A x.
  apply_a(x, r);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const real_t bnorm = la::norm2(b);
  if (bnorm == 0.0) {
    for (size_t i = 0; i < n; ++i) x[i] = 0.0;
    out.converged = true;
    out.history.push_back(0.0);
    return out;
  }

  auto apply_m = [&](const_real_span in, real_span outv) {
    if (precond)
      precond(in, outv);
    else
      for (size_t i = 0; i < n; ++i) outv[i] = in[i];
  };

  out.history.push_back(la::norm2(r) / bnorm);
  if (out.history.back() <= opts.tol) {
    // Warm start already solves the system; entering the loop would divide
    // by p^T A p = 0.
    out.converged = true;
    out.rel_residual = out.history.back();
    return out;
  }
  apply_m(r, z);
  for (size_t i = 0; i < n; ++i) p[i] = z[i];
  real_t rz = la::dot(r, z);

  for (index_t it = 0; it < opts.max_iters; ++it) {
    apply_a(p, ap);
    const real_t pap = la::dot(p, ap);
    H2S_CHECK(pap > 0.0, "pcg: operator is not positive definite (p^T A p = " << pap << ")");
    const real_t alpha = rz / pap;
    la::axpy(alpha, p, x);
    la::axpy(-alpha, ap, r);
    ++out.iterations;
    const real_t rel = la::norm2(r) / bnorm;
    out.history.push_back(rel);
    if (rel <= opts.tol) {
      out.converged = true;
      out.rel_residual = rel;
      return out;
    }
    apply_m(r, z);
    const real_t rz_new = la::dot(r, z);
    const real_t beta = rz_new / rz;
    rz = rz_new;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  out.rel_residual = out.history.back();
  return out;
}

PcgResult pcg(const ApplyFn& apply_a, const_real_span b, real_span x, const PcgOptions& opts,
              const UlvCholesky& ulv) {
  // One execution context serves every M^{-1} application of the run
  // instead of constructing and tearing one down per iteration; it runs on
  // the device backend that owns the factor panels.
  batched::ExecutionContext ctx(ulv.execution_config());
  return pcg(apply_a, b, x, opts, ApplyFn([&ulv, &ctx](const_real_span in, real_span outv) {
               ulv.solve(in, outv, ctx);
             }));
}

} // namespace h2sketch::solver
