#pragma once

#include <memory>
#include <vector>

#include "backend/block_arena.hpp"
#include "batched/device.hpp"
#include "solver/hss_matrix.hpp"

/// \file ulv.hpp
/// ULV Cholesky factorization of a symmetric positive definite HssMatrix and
/// the forward/backward solve sweeps (the missing piece the compressed
/// frontal matrices of Fig. 6(b) feed into).
///
/// Per node, bottom-up (compress - eliminate - merge):
///   1. QR the node's (merged) generator G = Q [R; 0]: after rotating the
///      local variables by Q^T, only the leading `rank` rows still couple to
///      the rest of the matrix (their off-diagonal block row is R B ...);
///      the trailing n_loc - rank rows are interior.
///   2. Transform the local diagonal Dh = Q^T D Q, Cholesky-eliminate the
///      interior block: Dh_zz = Lz Lz^T, W = Dh_sz Lz^{-T}, leaving the
///      Schur complement S = Dh_ss - W W^T on the skeleton variables.
///   3. Merge siblings at the parent: D_p = [S_1, R_1 B R_2^T; ., S_2] and
///      G_p = [R_1 E_1; R_2 E_2], and recurse; the root system is factored
///      densely.
///
/// The level sweep is executed as cost-annotated batches on one
/// ExecutionContext stream (assemble+QR+transform, then batched potrf /
/// trsm / gemm from batched_solve.hpp); FIFO stream order replaces explicit
/// level barriers, so independent nodes overlap while the numerics stay
/// bitwise identical for every thread count.

namespace h2sketch::solver {

/// Recovery knobs for `ulv_factor`. A non-positive pivot (`NumericalError`)
/// is deterministic — retrying the identical factorization cannot help — so
/// recovery escalates instead: each retry factors A + ridge*I with a ridge
/// of `ridge_rel * growth^k * scale` (scale = largest |diagonal entry|).
/// The default ladder (1e-10, 1e-8, 1e-6 of the diagonal scale) rescues
/// matrices that are SPD up to rounding but is far too small to mask a
/// genuinely indefinite matrix, which still throws after the last attempt.
struct UlvOptions {
  int max_ridge_retries = 3;       ///< extra attempts after the ridge-free one
  real_t ridge_rel = real_t{1e-10};///< first ridge, relative to the diagonal scale
  real_t ridge_growth = real_t{100};///< ridge multiplier per subsequent retry
};

/// Per-node factor metadata. The actual panels (qr, dhat, utilde) live
/// packed in the factor's per-level device arenas (`UlvCholesky::panels_`,
/// slot layout [qr x nodes][dhat x nodes][utilde x nodes]) — written and
/// read only inside the factor/solve kernel launches, with the root system
/// marshaled back to the host through explicit copies; `tau` is small
/// per-node pivot metadata kept host-side.
struct UlvNode {
  index_t n_loc = 0; ///< local dimension at elimination time
  index_t rank = 0;  ///< rows surviving to the parent (HSS rank)
  std::vector<real_t> tau; ///< Householder scalars of the qr panel

  index_t nz() const { return n_loc - rank; }
};

/// The factored form: per-level node panels plus the dense root factor.
/// Self-contained (shares tree ownership), movable, independent of the
/// HssMatrix it was factored from.
class UlvCholesky {
 public:
  /// Solve A x = b for one right-hand side; b and x are length-N vectors in
  /// the cluster tree's permuted position order (like h2_matvec).
  void solve(const_real_span b, real_span x) const;

  /// Same, on a caller-provided context — the serving form: one context
  /// reused across many solves (e.g. every pcg iteration).
  void solve(const_real_span b, real_span x, batched::ExecutionContext& ctx) const;

  /// Multi-RHS solve: B and X are N x nrhs, permuted order. Level sweeps run
  /// as batched launches on the context's streams.
  void solve_many(ConstMatrixView b, MatrixView x, batched::ExecutionContext& ctx) const;

  /// Convenience overload with an internal Batched context.
  void solve_many(ConstMatrixView b, MatrixView x) const;

  index_t size() const { return tree_ ? tree_->num_points() : 0; }
  const tree::ClusterTree& tree() const { return *tree_; }

  /// Factor panel bytes (per-node QR/Dh/R plus the root factor).
  std::size_t memory_bytes() const;

  /// Real device-resident bytes of the factor's panel arenas (alignment
  /// padding included) — what the serving cache budgets and eviction frees.
  std::size_t device_bytes() const;

  /// A context configuration bound to the device backend that owns the
  /// factor panels (the process default when the factor is root-only).
  /// The convenience solve overloads and pcg use this, so a factor built
  /// on one device is never solved through a context on another — the
  /// explicit-context overloads check the same affinity.
  backend::ExecutionConfig execution_config() const;

  /// The ridge actually folded into the factorization: 0 when the first
  /// (exact) attempt succeeded, else the A + ridge*I bump that did.
  real_t ridge_applied() const { return ridge_; }

  /// The dense factor of the final reduced root system (tests/bench).
  const Matrix& root_factor() const { return root_factor_; }
  const UlvNode& node(index_t level, index_t i) const {
    return nodes_[static_cast<size_t>(level)][static_cast<size_t>(i)];
  }

 private:
  friend UlvCholesky ulv_factor(const HssMatrix& a, batched::ExecutionContext& ctx,
                                const UlvOptions& opts);

  std::shared_ptr<const tree::ClusterTree> tree_;
  /// nodes_[l][i] for levels 1..leaf; levels 0 stays empty (the root system
  /// is root_factor_).
  std::vector<std::vector<UlvNode>> nodes_;
  /// panels_[l]: one packed device arena per level holding every node's
  /// qr / dhat / utilde panel (slots [qr x nodes][dhat x nodes]
  /// [utilde x nodes]); level 0 stays empty.
  std::vector<backend::BlockArena> panels_;
  /// Single-slot arena: the dense root factor resident on the panels'
  /// device, uploaded once at factor time so solves never round-trip the
  /// root block through the host. Empty for root-only factors.
  backend::BlockArena root_arena_;
  Matrix root_factor_; ///< lower Cholesky of the merged root system (host copy)
  real_t ridge_ = 0.0; ///< diagonal bump the successful attempt used
};

/// ULV-factor an SPD HssMatrix, retrying failed pivots with an escalating
/// ridge per `opts` (see UlvOptions). Throws `NumericalError` when the
/// compressed matrix is not numerically SPD even after the last ridge.
UlvCholesky ulv_factor(const HssMatrix& a, batched::ExecutionContext& ctx,
                       const UlvOptions& opts);

/// Same under default recovery options.
UlvCholesky ulv_factor(const HssMatrix& a, batched::ExecutionContext& ctx);

/// Convenience overload with an internal Batched context.
UlvCholesky ulv_factor(const HssMatrix& a);

} // namespace h2sketch::solver
