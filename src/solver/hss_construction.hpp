#pragma once

#include <memory>

#include "batched/device.hpp"
#include "core/config.hpp"
#include "core/stats.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/proxy_sampler.hpp"
#include "kernels/sampler.hpp"
#include "solver/hss_matrix.hpp"

/// \file hss_construction.hpp
/// Genuine bottom-up sketching-based HSS construction (Martinsson 2011, the
/// paper's reference [29]) producing the dedicated HssMatrix storage — the
/// weak-admissibility algorithm the paper extends to strongly-admissible H2.
///
/// Same black-box inputs as Algorithm 1 (a sketching operator Y = K Omega
/// and a batched entry generator), same adaptive sampling loop, but the
/// weak-admissibility structure is hard-wired: the only near-field blocks
/// are the leaf diagonals and every level carries exactly one coupling block
/// per sibling pair. Processing runs level by level from the leaves on
/// ExecutionContext streams:
///   1. assemble local samples Y_loc (subtract the leaf diagonal at the
///      leaves, the child pair coupling above);
///   2. adaptively add sample rounds until every node passes the
///      min |diag R| convergence probe, replaying new columns through the
///      completed levels;
///   3. batched row-ID the samples into generators (U at leaves, stacked
///      transfers above) and skeleton indices;
///   4. sweep samples and random vectors up;
///   5. evaluate the sibling-pair coupling blocks at the skeletons.

namespace h2sketch::solver {

struct HssResult {
  HssMatrix matrix;
  core::ConstructionStats stats;
};

/// Run the bottom-up HSS construction under the given execution context.
HssResult build_hss(std::shared_ptr<const tree::ClusterTree> tree, kern::MatVecSampler& sampler,
                    const kern::EntryGenerator& gen, const core::ConstructionOptions& opts,
                    batched::ExecutionContext& ctx);

/// Convenience overload with an internal Batched context.
HssResult build_hss(std::shared_ptr<const tree::ClusterTree> tree, kern::MatVecSampler& sampler,
                    const kern::EntryGenerator& gen, const core::ConstructionOptions& opts);

/// Kernel-matrix entry point with selectable sampling: instantiates the
/// entry generator and a sampler of the requested kind internally
/// (H2SKETCH_SAMPLER=exact|proxy overrides `kind`). The proxy surrogate is
/// always strongly admissible even though the HSS structure is weak — proxy
/// surfaces need a separated far field; the HSS sketches then run against
/// the surrogate's O(N d) matvec. proxy_opts.tol <= 0 inherits opts.tol.
HssResult build_hss(std::shared_ptr<const tree::ClusterTree> tree,
                    const kern::KernelFunction& kernel, const core::ConstructionOptions& opts,
                    kern::SamplerKind kind = kern::SamplerKind::Exact,
                    kern::ProxySamplerOptions proxy_opts = {});

} // namespace h2sketch::solver
