#include "batched/batched_id.hpp"

namespace h2sketch::batched {

void batched_row_id(ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
                    index_t max_rank, std::span<la::RowID> out) {
  ctx.device().row_id(ctx, y, abs_tol, max_rank, out);
}

} // namespace h2sketch::batched
