#include "batched/batched_id.hpp"

namespace h2sketch::batched {

void batched_row_id(ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
                    index_t max_rank, std::span<la::RowID> out) {
  H2S_CHECK(y.size() == out.size(), "batched_row_id: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(y.size()), [&](index_t i) {
    const auto ui = static_cast<size_t>(i);
    out[ui] = la::row_id(y[ui], abs_tol, max_rank);
  });
}

} // namespace h2sketch::batched
