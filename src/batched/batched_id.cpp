#include "batched/batched_id.hpp"

namespace h2sketch::batched {

void batched_row_id(ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
                    index_t max_rank, std::span<la::RowID> out) {
  H2S_CHECK(y.size() == out.size(), "batched_row_id: batch size mismatch");
  // Synchronous (the IDs gate the level sweep), but cost-chunked: a level's
  // sample blocks differ in row count by orders of magnitude, and the ID is
  // O(m * n * min(m, n)) per entry.
  ctx.run_batch(
      kSampleStream, static_cast<index_t>(y.size()),
      [&y](index_t i) {
        const auto& v = y[static_cast<size_t>(i)];
        return v.rows * v.cols * std::min(v.rows, v.cols);
      },
      [&](index_t i) {
        const auto ui = static_cast<size_t>(i);
        out[ui] = la::row_id(y[ui], abs_tol, max_rank);
      });
  ctx.sync(kSampleStream);
}

} // namespace h2sketch::batched
