#include "batched/batched_id.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

void batched_row_id(ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
                    index_t max_rank, std::span<la::RowID> out) {
  obs::ScopedLaunchLabel label("batched_row_id");
  obs::TraceSpan span("backend", "batched_row_id", "batch", y.size());
  ctx.device().row_id(ctx, y, abs_tol, max_rank, out);
}

} // namespace h2sketch::batched
