#include "batched/batched_solve.hpp"

#include <memory>
#include <utility>

namespace h2sketch::batched {

namespace {

/// Owned marshaled operands of an in-flight solve launch (moved off the
/// caller's stack, same lifetime pattern as the gemm launches).
struct SolveLaunch {
  std::vector<ConstMatrixView> l;
  std::vector<MatrixView> b;
};

} // namespace

void batched_potrf(ExecutionContext& ctx, StreamId stream, std::vector<MatrixView> a) {
  const auto batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  auto st = std::make_shared<std::vector<MatrixView>>(std::move(a));
  ctx.run_batch(
      stream, batch,
      [&v = *st](index_t i) {
        const index_t n = v[static_cast<size_t>(i)].rows;
        return n * n * n / 3 + 1;
      },
      [st](index_t i) {
        MatrixView& v = (*st)[static_cast<size_t>(i)];
        if (v.empty()) return;
        la::cholesky(v);
      });
}

void batched_trsm_lower(ExecutionContext& ctx, StreamId stream, TrsmSide side, la::Op op,
                        std::vector<ConstMatrixView> l, std::vector<MatrixView> b) {
  H2S_CHECK(l.size() == b.size(), "batched_trsm_lower: batch size mismatch");
  const auto batch = static_cast<index_t>(l.size());
  if (batch == 0) return;
  auto st = std::make_shared<SolveLaunch>(SolveLaunch{std::move(l), std::move(b)});
  ctx.run_batch(
      stream, batch,
      [&g = *st](index_t i) {
        const auto ui = static_cast<size_t>(i);
        const index_t n = g.l[ui].rows;
        const index_t nrhs = std::max(g.b[ui].rows, g.b[ui].cols);
        return n * n * nrhs + 1;
      },
      [st, side, op](index_t i) {
        const auto ui = static_cast<size_t>(i);
        if (st->l[ui].empty() || st->b[ui].empty()) return;
        if (side == TrsmSide::Left)
          la::trsm_lower_left(st->l[ui], op, st->b[ui]);
        else
          la::trsm_lower_right(st->l[ui], op, st->b[ui]);
      });
}

} // namespace h2sketch::batched
