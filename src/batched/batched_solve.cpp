#include "batched/batched_solve.hpp"

namespace h2sketch::batched {

void batched_potrf(ExecutionContext& ctx, StreamId stream, std::vector<MatrixView> a) {
  ctx.device().potrf(ctx, stream, std::move(a));
}

void batched_trsm_lower(ExecutionContext& ctx, StreamId stream, TrsmSide side, la::Op op,
                        std::vector<ConstMatrixView> l, std::vector<MatrixView> b) {
  ctx.device().trsm_lower(ctx, stream, side, op, std::move(l), std::move(b));
}

} // namespace h2sketch::batched
