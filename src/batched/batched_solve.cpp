#include "batched/batched_solve.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

void batched_potrf(ExecutionContext& ctx, StreamId stream, std::vector<MatrixView> a) {
  obs::ScopedLaunchLabel label("batched_potrf");
  obs::TraceSpan span("backend", "batched_potrf", "batch", a.size());
  ctx.device().potrf(ctx, stream, std::move(a));
}

void batched_trsm_lower(ExecutionContext& ctx, StreamId stream, TrsmSide side, la::Op op,
                        std::vector<ConstMatrixView> l, std::vector<MatrixView> b) {
  obs::ScopedLaunchLabel label("batched_trsm_lower");
  obs::TraceSpan span("backend", "batched_trsm_lower", "batch", b.size());
  ctx.device().trsm_lower(ctx, stream, side, op, std::move(l), std::move(b));
}

} // namespace h2sketch::batched
