#include "batched/batched_rand.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

void batched_fill_gaussian(ExecutionContext& ctx, MatrixView a, const GaussianStream& stream,
                           std::uint64_t offset) {
  obs::ScopedLaunchLabel label("batched_fill_gaussian");
  obs::TraceSpan span("backend", "batched_fill_gaussian");
  ctx.device().fill_gaussian(ctx, a, stream, offset);
}

void batched_fill_gaussian(ExecutionContext& ctx, std::span<const MatrixView> blocks,
                           const GaussianStream& stream, std::span<const std::uint64_t> offsets) {
  obs::ScopedLaunchLabel label("batched_fill_gaussian");
  obs::TraceSpan span("backend", "batched_fill_gaussian", "batch", blocks.size());
  ctx.device().fill_gaussian_blocks(ctx, blocks, stream, offsets);
}

} // namespace h2sketch::batched
