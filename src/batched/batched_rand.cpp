#include "batched/batched_rand.hpp"

namespace h2sketch::batched {

void batched_fill_gaussian(ExecutionContext& ctx, MatrixView a, const GaussianStream& stream,
                           std::uint64_t offset) {
  ctx.device().fill_gaussian(ctx, a, stream, offset);
}

void batched_fill_gaussian(ExecutionContext& ctx, std::span<const MatrixView> blocks,
                           const GaussianStream& stream, std::span<const std::uint64_t> offsets) {
  ctx.device().fill_gaussian_blocks(ctx, blocks, stream, offsets);
}

} // namespace h2sketch::batched
