#include "batched/batched_rand.hpp"

namespace h2sketch::batched {

void batched_fill_gaussian(ExecutionContext& ctx, MatrixView a, const GaussianStream& stream,
                           std::uint64_t offset) {
  // An empty fill is no launch — mirrors run_batch's uniform batch <= 0
  // early-return so empty levels cost zero launches in both backends.
  if (a.empty()) return;
  // Parallelize across columns; element addressing keeps the result
  // order-independent.
  ctx.count_launch(1);
  parallel_for(a.cols, [&](index_t j) {
    for (index_t i = 0; i < a.rows; ++i)
      a(i, j) = stream(offset + static_cast<std::uint64_t>(j) * a.rows + i);
  });
}

void batched_fill_gaussian(ExecutionContext& ctx, std::span<const MatrixView> blocks,
                           const GaussianStream& stream, std::span<const std::uint64_t> offsets) {
  H2S_CHECK(blocks.size() == offsets.size(), "batched_fill_gaussian: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(blocks.size()), [&](index_t i) {
    const auto u = static_cast<size_t>(i);
    fill_gaussian(blocks[u], stream, offsets[u]);
  });
}

} // namespace h2sketch::batched
