#pragma once

#include <vector>

#include "batched/device.hpp"
#include "la/blas.hpp"

/// \file batched_solve.hpp
/// Non-uniform batched triangular solves and Cholesky factorizations — the
/// MAGMA/KBLAS vbatched trsm/potrf stand-ins the ULV factorization launches
/// level by level. Every entry may have different dimensions; empty entries
/// are skipped. One kernel launch per call in Batched mode, cost-chunked by
/// per-entry flop estimates so a level mixing a few large nodes with many
/// small ones load-balances.
///
/// Stream forms only: view vectors are moved into the launch and the
/// underlying buffers must stay alive until the stream is synced. Launches
/// on one stream run FIFO, so a potrf -> trsm -> gemm pipeline on the same
/// stream needs no intermediate barriers.

namespace h2sketch::batched {

/// Which side of the unknown the triangular matrix sits on (defined with
/// the backend dispatch table; aliased here for the original call sites).
using TrsmSide = backend::TrsmSide;

/// In-place lower Cholesky a[i] = L_i L_i^T for each batch entry (the strict
/// upper triangle is left untouched). Throws (at sync) on a non-positive
/// pivot in any entry.
void batched_potrf(ExecutionContext& ctx, StreamId stream, std::vector<MatrixView> a);

/// Solve op(L_i) X_i = B_i (Left) or X_i op(L_i) = B_i (Right) in place for
/// each batch entry, lower-triangular L_i.
void batched_trsm_lower(ExecutionContext& ctx, StreamId stream, TrsmSide side, la::Op op,
                        std::vector<ConstMatrixView> l, std::vector<MatrixView> b);

} // namespace h2sketch::batched
