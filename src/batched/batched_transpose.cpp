#include "batched/batched_transpose.hpp"

namespace h2sketch::batched {

void batched_transpose(ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                       std::span<const MatrixView> out) {
  ctx.device().transpose(ctx, in, out);
}

} // namespace h2sketch::batched
