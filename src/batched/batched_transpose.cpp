#include "batched/batched_transpose.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

void batched_transpose(ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                       std::span<const MatrixView> out) {
  obs::ScopedLaunchLabel label("batched_transpose");
  obs::TraceSpan span("backend", "batched_transpose", "batch", in.size());
  ctx.device().transpose(ctx, in, out);
}

} // namespace h2sketch::batched
