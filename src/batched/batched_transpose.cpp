#include "batched/batched_transpose.hpp"

namespace h2sketch::batched {

void batched_transpose(ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                       std::span<const MatrixView> out) {
  H2S_CHECK(in.size() == out.size(), "batched_transpose: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(in.size()), [&](index_t idx) {
    const auto u = static_cast<size_t>(idx);
    const ConstMatrixView& a = in[u];
    const MatrixView& b = out[u];
    H2S_CHECK(a.rows == b.cols && a.cols == b.rows, "batched_transpose: shape mismatch");
    for (index_t j = 0; j < a.cols; ++j)
      for (index_t i = 0; i < a.rows; ++i) b(j, i) = a(i, j);
  });
}

} // namespace h2sketch::batched
