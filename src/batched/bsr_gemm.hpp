#pragma once

#include <span>

#include "batched/device.hpp"
#include "la/blas.hpp"

/// \file bsr_gemm.hpp
/// Non-uniform batched block-sparse-row matrix multiplication — the paper's
/// batchedBSRGemm (§IV-A). Given a CSR block pattern over the nodes of a
/// level, computes
///     y[r] += alpha * sum_j  blocks[ptr(r)+j] * x[col(ptr(r)+j)]
/// by splitting the work into at most Csp sub-launches: sub-launch k handles
/// the k-th block of every row, so each output row is written by at most one
/// batch entry per launch — no atomics needed. Since Csp is a constant, the
/// total launch count per level is O(Csp).

namespace h2sketch::batched {

/// BSR product accumulating into y (see file comment). `row_ptr` has one
/// entry per row plus one; `blocks` holds one view per CSR entry; `x` one
/// view per column node; `y` one view per row node. Returns the number of
/// sub-launches used (== max blocks per row).
index_t bsr_gemm(ExecutionContext& ctx, real_t alpha, const_index_span row_ptr,
                 const_index_span col, std::span<const ConstMatrixView> blocks,
                 std::span<const ConstMatrixView> x, std::span<const MatrixView> y);

} // namespace h2sketch::batched
