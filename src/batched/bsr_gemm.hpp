#pragma once

#include <span>
#include <vector>

#include "batched/device.hpp"
#include "la/blas.hpp"

/// \file bsr_gemm.hpp
/// Non-uniform batched block-sparse-row matrix multiplication — the paper's
/// batchedBSRGemm (§IV-A). Given a CSR block pattern over the nodes of a
/// level, computes
///     y[r] += alpha * sum_j  blocks[ptr(r)+j] * x[col(ptr(r)+j)]
/// by splitting the work into at most Csp sub-launches: sub-launch k handles
/// the k-th block of every row, so each output row is written by at most one
/// batch entry per launch — no atomics needed. Since Csp is a constant, the
/// total launch count per level is O(Csp).
///
/// The sub-launches all land on the same stream: stream FIFO ordering makes
/// their accumulation into y race-free without an internal barrier, and the
/// whole product still overlaps with work on other streams.

namespace h2sketch::batched {

/// Stream form: the CSR pattern and view vectors are moved into the
/// launches; underlying buffers must stay alive until the stream is synced.
/// Returns the number of sub-launches used (== max blocks per row).
index_t bsr_gemm(ExecutionContext& ctx, StreamId stream, real_t alpha,
                 std::vector<index_t> row_ptr, std::vector<index_t> col,
                 std::vector<ConstMatrixView> blocks, std::vector<ConstMatrixView> x,
                 std::vector<MatrixView> y);

/// Synchronous form: completed on return.
index_t bsr_gemm(ExecutionContext& ctx, real_t alpha, const_index_span row_ptr,
                 const_index_span col, std::span<const ConstMatrixView> blocks,
                 std::span<const ConstMatrixView> x, std::span<const MatrixView> y);

} // namespace h2sketch::batched
