#pragma once

#include <span>

#include "batched/device.hpp"
#include "common/random.hpp"

/// \file batched_rand.hpp
/// Batched Gaussian generation (paper's batchedRand): the random matrices Ω
/// are produced in a single kernel launch from a counter-based generator, so
/// results are independent of the parallelization and identical across
/// backends.

namespace h2sketch::batched {

/// Fill one (possibly large) matrix from the stream starting at `offset`;
/// a single launch regardless of size.
void batched_fill_gaussian(ExecutionContext& ctx, MatrixView a, const GaussianStream& stream,
                           std::uint64_t offset);

/// Fill each block from the stream at its own offset; one launch total.
void batched_fill_gaussian(ExecutionContext& ctx, std::span<const MatrixView> blocks,
                           const GaussianStream& stream, std::span<const std::uint64_t> offsets);

} // namespace h2sketch::batched
