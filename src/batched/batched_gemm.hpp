#pragma once

#include <span>
#include <vector>

#include "batched/device.hpp"
#include "la/blas.hpp"

/// \file batched_gemm.hpp
/// Non-uniform batched matrix-matrix products: the MAGMA vbatched gemm
/// stand-in. Every entry may have different dimensions; empty entries are
/// skipped. One kernel launch in Batched mode.
///
/// Each operation has two forms:
///  * a synchronous span form (views borrowed from the caller, completed on
///    return) — the drop-in legacy API, and
///  * an asynchronous stream form (view vectors *moved into the launch*,
///    completed at `sync(stream)`) — the paper-shaped path where
///    independent pipelines overlap. Views are POD handles; only the
///    underlying matrix buffers must outlive the sync.
/// Both chunk the batch by per-entry flop estimates, so a launch mixing a
/// handful of huge root blocks with hundreds of leaf blocks load-balances
/// instead of serializing behind one static chunk.

namespace h2sketch::batched {

/// C[i] = alpha * op(A[i]) * op(B[i]) + beta * C[i] for each batch entry,
/// enqueued as one launch on `stream`.
void batched_gemm(ExecutionContext& ctx, StreamId stream, real_t alpha,
                  std::vector<ConstMatrixView> a, la::Op op_a, std::vector<ConstMatrixView> b,
                  la::Op op_b, real_t beta, std::vector<MatrixView> c);

/// Synchronous form: completed on return.
void batched_gemm(ExecutionContext& ctx, real_t alpha, std::span<const ConstMatrixView> a,
                  la::Op op_a, std::span<const ConstMatrixView> b, la::Op op_b, real_t beta,
                  std::span<const MatrixView> c);

/// Gather rows per entry: dst[i] = src[i](rows[i], :) — the paper's
/// batchedShrink, which restricts samples to the skeleton rows selected by
/// the ID when sweeping to the next level. Stream form.
void batched_gather_rows(ExecutionContext& ctx, StreamId stream,
                         std::vector<ConstMatrixView> src,
                         std::vector<std::vector<index_t>> rows, std::vector<MatrixView> dst);

/// Synchronous form: completed on return.
void batched_gather_rows(ExecutionContext& ctx, std::span<const ConstMatrixView> src,
                         const std::vector<std::vector<index_t>>& rows,
                         std::span<const MatrixView> dst);

} // namespace h2sketch::batched
