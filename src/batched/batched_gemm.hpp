#pragma once

#include <span>
#include <vector>

#include "batched/device.hpp"
#include "la/blas.hpp"

/// \file batched_gemm.hpp
/// Non-uniform batched matrix-matrix products: the MAGMA vbatched gemm
/// stand-in. Every entry may have different dimensions; empty entries are
/// skipped. One kernel launch in Batched mode.

namespace h2sketch::batched {

/// C[i] = alpha * op(A[i]) * op(B[i]) + beta * C[i] for each batch entry.
void batched_gemm(ExecutionContext& ctx, real_t alpha, std::span<const ConstMatrixView> a,
                  la::Op op_a, std::span<const ConstMatrixView> b, la::Op op_b, real_t beta,
                  std::span<const MatrixView> c);

/// Gather rows per entry: dst[i] = src[i](rows[i], :) — the paper's
/// batchedShrink, which restricts samples to the skeleton rows selected by
/// the ID when sweeping to the next level.
void batched_gather_rows(ExecutionContext& ctx, std::span<const ConstMatrixView> src,
                         const std::vector<std::vector<index_t>>& rows,
                         std::span<const MatrixView> dst);

} // namespace h2sketch::batched
