#include "batched/batched_gemm.hpp"

namespace h2sketch::batched {

void batched_gemm(ExecutionContext& ctx, real_t alpha, std::span<const ConstMatrixView> a,
                  la::Op op_a, std::span<const ConstMatrixView> b, la::Op op_b, real_t beta,
                  std::span<const MatrixView> c) {
  H2S_CHECK(a.size() == b.size() && a.size() == c.size(), "batched_gemm: batch size mismatch");
  // Each entry goes through la::gemm's shape dispatch, so large entries hit
  // the blocked pack-and-compute engine while sketching-sized ones stay on
  // the naive kernels — the paper's CPU path (OpenMP loop around fast
  // single-threaded BLAS) with per-entry kernel selection.
  ctx.run_batch(static_cast<index_t>(a.size()), [&](index_t i) {
    const auto ui = static_cast<size_t>(i);
    if (c[ui].empty()) return;
    la::gemm(alpha, a[ui], op_a, b[ui], op_b, beta, c[ui]);
  });
}

void batched_gather_rows(ExecutionContext& ctx, std::span<const ConstMatrixView> src,
                         const std::vector<std::vector<index_t>>& rows,
                         std::span<const MatrixView> dst) {
  H2S_CHECK(src.size() == rows.size() && src.size() == dst.size(),
            "batched_gather_rows: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(src.size()), [&](index_t i) {
    const auto ui = static_cast<size_t>(i);
    if (dst[ui].empty()) return;
    gather_rows(src[ui], rows[ui], dst[ui]);
  });
}

} // namespace h2sketch::batched
