#include "batched/batched_gemm.hpp"

#include <memory>

namespace h2sketch::batched {

namespace {

/// Owned marshaled operands of an in-flight gemm launch (the stream API
/// moves the caller's view vectors here so the caller's stack can unwind
/// before the launch runs).
struct GemmLaunch {
  std::vector<ConstMatrixView> a, b;
  std::vector<MatrixView> c;
};

struct GatherLaunch {
  std::vector<ConstMatrixView> src;
  std::vector<std::vector<index_t>> rows;
  std::vector<MatrixView> dst;
};

} // namespace

void batched_gemm(ExecutionContext& ctx, StreamId stream, real_t alpha,
                  std::vector<ConstMatrixView> a, la::Op op_a, std::vector<ConstMatrixView> b,
                  la::Op op_b, real_t beta, std::vector<MatrixView> c) {
  H2S_CHECK(a.size() == b.size() && a.size() == c.size(), "batched_gemm: batch size mismatch");
  auto st = std::make_shared<GemmLaunch>(GemmLaunch{std::move(a), std::move(b), std::move(c)});
  const auto batch = static_cast<index_t>(st->c.size());
  // Per-entry cost: the m x n x k flop product. Each entry goes through
  // la::gemm's shape dispatch, so large entries hit the blocked
  // pack-and-compute engine while sketching-sized ones stay on the naive
  // kernels — per-entry kernel selection as in the paper's CPU path.
  ctx.run_batch(
      stream, batch,
      [&g = *st, op_a](index_t i) {
        const auto ui = static_cast<size_t>(i);
        return g.c[ui].rows * g.c[ui].cols * la::op_cols(g.a[ui], op_a);
      },
      [st, alpha, op_a, op_b, beta](index_t i) {
        const auto ui = static_cast<size_t>(i);
        if (st->c[ui].empty()) return;
        la::gemm(alpha, st->a[ui], op_a, st->b[ui], op_b, beta, st->c[ui]);
      });
}

void batched_gemm(ExecutionContext& ctx, real_t alpha, std::span<const ConstMatrixView> a,
                  la::Op op_a, std::span<const ConstMatrixView> b, la::Op op_b, real_t beta,
                  std::span<const MatrixView> c) {
  batched_gemm(ctx, kSampleStream, alpha, {a.begin(), a.end()}, op_a, {b.begin(), b.end()}, op_b,
               beta, {c.begin(), c.end()});
  ctx.sync(kSampleStream);
}

void batched_gather_rows(ExecutionContext& ctx, StreamId stream,
                         std::vector<ConstMatrixView> src,
                         std::vector<std::vector<index_t>> rows, std::vector<MatrixView> dst) {
  H2S_CHECK(src.size() == rows.size() && src.size() == dst.size(),
            "batched_gather_rows: batch size mismatch");
  auto st = std::make_shared<GatherLaunch>(
      GatherLaunch{std::move(src), std::move(rows), std::move(dst)});
  const auto batch = static_cast<index_t>(st->dst.size());
  ctx.run_batch(
      stream, batch,
      [&g = *st](index_t i) {
        const auto ui = static_cast<size_t>(i);
        return g.dst[ui].rows * g.dst[ui].cols;
      },
      [st](index_t i) {
        const auto ui = static_cast<size_t>(i);
        if (st->dst[ui].empty()) return;
        gather_rows(st->src[ui], st->rows[ui], st->dst[ui]);
      });
}

void batched_gather_rows(ExecutionContext& ctx, std::span<const ConstMatrixView> src,
                         const std::vector<std::vector<index_t>>& rows,
                         std::span<const MatrixView> dst) {
  batched_gather_rows(ctx, kSampleStream, {src.begin(), src.end()}, rows,
                      {dst.begin(), dst.end()});
  ctx.sync(kSampleStream);
}

} // namespace h2sketch::batched
