#include "batched/batched_gemm.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

// The implementations live in the backend dispatch table
// (backend::DeviceBackend::gemm / gather_rows, with the host-pool bodies in
// backend/cpu_backend.cpp); these wrappers keep the original call-site API.

void batched_gemm(ExecutionContext& ctx, StreamId stream, real_t alpha,
                  std::vector<ConstMatrixView> a, la::Op op_a, std::vector<ConstMatrixView> b,
                  la::Op op_b, real_t beta, std::vector<MatrixView> c) {
  obs::ScopedLaunchLabel label("batched_gemm");
  obs::TraceSpan span("backend", "batched_gemm", "batch", c.size());
  ctx.device().gemm(ctx, stream, alpha, std::move(a), op_a, std::move(b), op_b, beta,
                    std::move(c));
}

void batched_gemm(ExecutionContext& ctx, real_t alpha, std::span<const ConstMatrixView> a,
                  la::Op op_a, std::span<const ConstMatrixView> b, la::Op op_b, real_t beta,
                  std::span<const MatrixView> c) {
  batched_gemm(ctx, kSampleStream, alpha, {a.begin(), a.end()}, op_a, {b.begin(), b.end()}, op_b,
               beta, {c.begin(), c.end()});
  ctx.sync(kSampleStream);
}

void batched_gather_rows(ExecutionContext& ctx, StreamId stream,
                         std::vector<ConstMatrixView> src,
                         std::vector<std::vector<index_t>> rows, std::vector<MatrixView> dst) {
  obs::ScopedLaunchLabel label("batched_gather_rows");
  obs::TraceSpan span("backend", "batched_gather_rows", "batch", dst.size());
  ctx.device().gather_rows(ctx, stream, std::move(src), std::move(rows), std::move(dst));
}

void batched_gather_rows(ExecutionContext& ctx, std::span<const ConstMatrixView> src,
                         const std::vector<std::vector<index_t>>& rows,
                         std::span<const MatrixView> dst) {
  batched_gather_rows(ctx, kSampleStream, {src.begin(), src.end()}, rows,
                      {dst.begin(), dst.end()});
  ctx.sync(kSampleStream);
}

} // namespace h2sketch::batched
