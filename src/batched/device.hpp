#pragma once

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "common/workspace.hpp"

/// \file device.hpp
/// The execution model underlying the paper's GPU implementation (§IV-A):
/// operations are split into a *marshaling* phase (gather views/dimensions
/// from the level-flattened trees) and a *batched execution* phase in which
/// a single kernel launch processes every node of a level.
///
/// Two backends share all call sites:
///  * Batched — one launch per batch (the GPU-shaped path). The batch body
///    runs as an OpenMP loop, exactly the paper's CPU realization of its
///    batched routines ("OpenMP parallel loops around single threaded BLAS
///    and LAPACK routines"), and the launch counter advances by 1.
///  * Naive — one launch per batch *entry* (the per-block implementation a
///    non-batched code would use). Same results; the launch counter advances
///    by the batch size. The Naive-vs-Batched launch-count ratio is the
///    mechanism behind the paper's GPU speedups, and is what the ablation
///    benchmark reports.

namespace h2sketch::batched {

enum class Backend {
  Naive,  ///< per-block execution: O(#blocks) kernel launches
  Batched ///< one launch per level per operation: O(Csp log N) launches
};

/// Execution context: backend selection, kernel-launch accounting, and the
/// per-level arena workspace.
class ExecutionContext {
 public:
  explicit ExecutionContext(Backend backend = Backend::Batched) : backend_(backend) {}

  Backend backend() const { return backend_; }

  /// Total kernel launches recorded since construction / reset.
  index_t kernel_launches() const { return launches_; }

  /// Record `n` launches performed outside run_batch (e.g. a single
  /// monolithic fill).
  void count_launch(index_t n = 1) { launches_ += n; }

  /// Execute f(i) for each batch entry i in [0, batch). In Batched mode this
  /// is one launch executing the whole batch in parallel; in Naive mode each
  /// entry is its own launch and runs sequentially.
  template <typename F>
  void run_batch(index_t batch, F&& f) {
    if (batch <= 0) return;
    if (backend_ == Backend::Batched) {
      count_launch(1);
      parallel_for(batch, f);
    } else {
      count_launch(batch);
      serial_for(batch, f);
    }
  }

  /// Arena for per-level batched temporaries (one allocation per level).
  Workspace& workspace() { return workspace_; }

  void reset_counters() { launches_ = 0; }

 private:
  Backend backend_;
  index_t launches_ = 0;
  Workspace workspace_;
};

} // namespace h2sketch::batched
