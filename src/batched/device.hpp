#pragma once

#include <atomic>
#include <array>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "backend/device_backend.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "common/workspace.hpp"
#include "obs/trace.hpp"

/// \file device.hpp
/// The execution model underlying the paper's GPU implementation (§IV-A):
/// operations are split into a *marshaling* phase (gather views/dimensions
/// from the level-flattened trees) and a *batched execution* phase in which
/// a single kernel launch processes every node of a level.
///
/// Two backends share all call sites:
///  * Batched — one launch per batch (the GPU-shaped path), and the launch
///    counter advances by 1.
///  * Naive — one launch per batch *entry* (the per-block implementation a
///    non-batched code would use). Same results; the launch counter advances
///    by the batch size. The Naive-vs-Batched launch-count ratio is the
///    mechanism behind the paper's GPU speedups, and is what the ablation
///    benchmark reports.
///
/// Launches are issued on logical **streams**, mirroring CUDA stream
/// semantics so a GPU backend can drop in behind the same API:
///  * launches on the same stream execute in FIFO order (read-after-write
///    within a pipeline needs no explicit barrier),
///  * launches on different streams may execute concurrently on the
///    persistent work-stealing pool,
///  * `sync(stream)` / `sync_all()` are the explicit barriers; a thread
///    waiting in a sync helps drain the pool rather than idling.
///
/// Within a launch, batch entries are grouped into tasks by a per-entry
/// *cost estimate* (e.g. rows*cols*k flops for a gemm) instead of uniform
/// chunks — H2 batches mix node sizes spanning orders of magnitude, and
/// uniform `schedule(static)` chunking left whole threads idle behind one
/// big entry. Chunk boundaries are derived from the costs alone (never the
/// worker count), so results stay bitwise identical for any thread count.

namespace h2sketch::batched {

/// Launch granularity (legacy name kept for the original call sites; the
/// enum itself now lives in the backend layer as LaunchMode, alongside the
/// device backends that pair with it — see backend/registry.hpp).
using Backend = backend::LaunchMode;

/// Logical stream handle. Streams are small fixed resources (like CUDA
/// stream handles); call sites use the named constants below.
using StreamId = int;

/// Number of logical streams per context. Independent pipelines of the
/// construction/matvec map onto these; more would add bookkeeping with no
/// extra concurrency to exploit.
inline constexpr StreamId kNumStreams = 4;

/// Conventional roles used by the library's call sites (any launch may use
/// any stream; these names only document the pipelines).
inline constexpr StreamId kSampleStream = 0;   ///< sketch/sample pipeline (default)
inline constexpr StreamId kBasisStream = 1;    ///< basis/transfer (omega) pipeline
inline constexpr StreamId kEntryGenStream = 2; ///< kernel entry generation
inline constexpr StreamId kAuxStream = 3;      ///< spill stream for level fan-out

/// Fixed fan-out of a launch: entries are greedily packed into at most ~this
/// many cost-balanced tasks. A constant (not the thread count) keeps chunk
/// boundaries deterministic.
inline constexpr index_t kLaunchFanout = 64;

/// Execution context: backend selection, stream scheduling, kernel-launch
/// accounting, and the per-level arena workspace.
///
/// A context pairs a **device backend** (who owns device memory and the
/// batched-primitive implementations — see backend/device_backend.hpp)
/// with a **launch mode** (Naive vs Batched accounting). The
/// default-constructed context uses the process-wide configuration from
/// $H2SKETCH_BACKEND; passing only a launch mode keeps the configured
/// device. Launch bodies execute inside the backend's kernel scopes, so on
/// SimulatedDevice the device heap is accessible exactly while launches
/// (or explicit copies) run.
class ExecutionContext {
 public:
  /// Process-default configuration ($H2SKETCH_BACKEND, default cpu/Batched).
  ExecutionContext();
  /// Explicit launch mode on the process-default device backend.
  explicit ExecutionContext(Backend backend);
  /// Fully explicit configuration (registry- or factory-created).
  explicit ExecutionContext(backend::ExecutionConfig config);
  ~ExecutionContext();
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Backend backend() const { return backend_; }

  /// The device backend this context dispatches batched primitives to.
  backend::DeviceBackend& device() const { return *device_; }
  const std::shared_ptr<backend::DeviceBackend>& device_ptr() const { return device_; }

  /// Total kernel launches recorded since construction / reset, across all
  /// streams. Safe to call concurrently with launch recording.
  index_t kernel_launches() const { return launches_.load(std::memory_order_acquire); }

  /// Launches recorded on one stream.
  index_t stream_launches(StreamId s) const;

  /// Record `n` launches performed outside run_batch (e.g. a single
  /// monolithic fill). Attributed to the default stream. Atomic: safe under
  /// concurrent recording from overlapping launches.
  void count_launch(index_t n = 1) { count_stream_launch(kSampleStream, n); }

  /// Execute f(i) for each batch entry i in [0, batch) as one launch on
  /// `stream`, with entries grouped into tasks by cost(i) (an approximate
  /// flop count; any monotone work estimate works). Batched mode: the launch
  /// is asynchronous — it runs FIFO with respect to earlier launches on the
  /// same stream and concurrently with other streams; everything captured by
  /// f (and f itself, which is copied into the launch) must stay valid until
  /// the stream is synced. Naive mode: each entry is its own launch, run
  /// serially inline. An empty batch records no launch in either backend.
  template <typename Cost, typename F>
  void run_batch(StreamId stream, index_t batch, Cost&& cost, F&& f) {
    if (batch <= 0) return;
    // Launch labels come from the dispatch wrappers' ScopedLaunchLabel
    // (op names); a non-null label also means "tracing was on at issue
    // time" — synchronous paths time the work inline, the queued path
    // stamps the LaunchState and reports at completion.
    const char* label = obs::trace_enabled() ? launch_trace_label() : nullptr;
    if (backend_ == Backend::Naive) {
      count_stream_launch(stream, batch);
      const std::int64_t t0 = label ? obs::trace_now_ns() : 0;
      {
        backend::KernelScope ks(device_.get());
        serial_for(batch, f);
      }
      if (label) record_launch_event(stream, label, t0, batch, batch);
      return;
    }
    count_stream_launch(stream, 1);
    if (runtime_mode() == RuntimeMode::FlatOpenMP) {
      // Baseline mode: the pre-stream fork/join launch, synchronous. The
      // calling thread holds the kernel scope; the process-wide unlock
      // covers the forked workers.
      const std::int64_t t0 = label ? obs::trace_now_ns() : 0;
      {
        backend::KernelScope ks(device_.get());
        h2sketch::parallel_for(batch, f);
      }
      if (label) record_launch_event(stream, label, t0, batch, 1);
      return;
    }
    if (ThreadPool::global().width() <= 1 && stream_idle(stream)) {
      // Single lane and nothing queued ahead: run in place, zero overhead.
      const std::int64_t t0 = label ? obs::trace_now_ns() : 0;
      {
        backend::KernelScope ks(device_.get());
        serial_for(batch, f);
      }
      if (label) record_launch_event(stream, label, t0, batch, 1);
      return;
    }
    enqueue_launch(stream, std::function<void(index_t)>(std::forward<F>(f)),
                   cost_chunks(batch, cost), label);
  }

  /// Uniform-cost stream launch.
  template <typename F>
  void run_batch(StreamId stream, index_t batch, F&& f) {
    run_batch(stream, batch, [](index_t) { return index_t{1}; }, std::forward<F>(f));
  }

  /// Legacy synchronous batch: one uniform-cost launch on the default
  /// stream, completed on return.
  template <typename F>
  void run_batch(index_t batch, F&& f) {
    run_batch(kSampleStream, batch, std::forward<F>(f));
    sync(kSampleStream);
  }

  /// Barrier for one stream: returns when every launch issued on it has
  /// completed; rethrows the first exception any of its launches raised.
  /// The calling thread executes pending pool tasks while it waits.
  void sync(StreamId stream);

  /// Barrier for every stream.
  void sync_all();

  /// Arena for per-level batched temporaries (one allocation per level).
  Workspace& workspace() { return workspace_; }

  void reset_counters();

 private:
  struct LaunchState {
    std::function<void(index_t)> body;
    std::vector<std::pair<index_t, index_t>> chunks; ///< [begin, end) entry ranges
    std::atomic<index_t> remaining{0};
    const char* label = nullptr;  ///< trace name (literal); null = not traced
    std::int64_t start_ns = 0;    ///< dispatch time, stamped in dispatch_front
  };
  struct Stream {
    mutable std::mutex mu;
    std::deque<std::shared_ptr<LaunchState>> queue; ///< front = active launch
    bool active = false;                            ///< under mu
    std::exception_ptr error;                       ///< under mu; first failure
    std::atomic<index_t> launches{0};
  };

  void count_stream_launch(StreamId s, index_t n);
  bool stream_idle(StreamId s) const;
  void enqueue_launch(StreamId s, std::function<void(index_t)> body,
                      std::vector<std::pair<index_t, index_t>> chunks, const char* label);
  void dispatch_front(StreamId s);
  void launch_complete(StreamId s);
  void record_stream_error(StreamId s, std::exception_ptr e);

  /// Trace track for (this context, stream s): GPU-timeline-style lanes in
  /// the exported trace. The exporter decomposes the tid back into
  /// ctx/stream, so the strides must agree.
  static_assert(kNumStreams == obs::kStreamsPerContext,
                "trace exporter stream-track naming is out of sync with kNumStreams");
  std::int32_t stream_track(StreamId s) const {
    return obs::kStreamTrackBase + trace_ctx_id_ * kNumStreams + s;
  }
  static const char* launch_trace_label() {
    const char* l = obs::launch_label();
    return l ? l : "launch";
  }
  /// Emit one completed-launch span on the stream track.
  void record_launch_event(StreamId s, const char* label, std::int64_t start_ns, index_t batch,
                           index_t chunks);

  /// Greedy cost-balanced chunking: pack entries in order until a chunk
  /// reaches the target cost — total/kLaunchFanout, floored at 4x the mean
  /// entry cost so small batches produce ~batch/4 chunks instead of
  /// degenerating to one task per entry. Boundaries depend only on the
  /// costs and the batch size, never the thread count.
  template <typename Cost>
  static std::vector<std::pair<index_t, index_t>> cost_chunks(index_t batch, Cost&& cost) {
    std::uint64_t total = 0;
    std::vector<std::uint64_t> c(static_cast<size_t>(batch));
    for (index_t i = 0; i < batch; ++i) {
      const auto ci = static_cast<std::uint64_t>(std::max<index_t>(1, cost(i)));
      c[static_cast<size_t>(i)] = ci;
      total += ci;
    }
    const std::uint64_t target =
        std::max<std::uint64_t>({1, total / static_cast<std::uint64_t>(kLaunchFanout),
                                 (4 * total) / static_cast<std::uint64_t>(batch)});
    std::vector<std::pair<index_t, index_t>> chunks;
    index_t begin = 0;
    std::uint64_t acc = 0;
    for (index_t i = 0; i < batch; ++i) {
      acc += c[static_cast<size_t>(i)];
      if (acc >= target) {
        chunks.emplace_back(begin, i + 1);
        begin = i + 1;
        acc = 0;
      }
    }
    if (begin < batch) chunks.emplace_back(begin, batch);
    return chunks;
  }

  std::shared_ptr<backend::DeviceBackend> device_;
  Backend backend_;
  std::int32_t trace_ctx_id_ = obs::next_trace_ctx_id();
  std::atomic<index_t> launches_{0};
  std::array<Stream, static_cast<size_t>(kNumStreams)> streams_;
  Workspace workspace_;
};

/// Exception-safety fence for async stream launches. Launch bodies capture
/// views of buffers owned by stack frames; if an exception (e.g. an injected
/// `LaunchError`) unwinds a frame while launches are still queued, the pool
/// would execute them against freed memory. Declare a StreamFence *after*
/// the operands the pending launches reference and *before* issuing
/// launches: on normal return it is a no-op, but on unwind it drains every
/// stream (swallowing their errors — the in-flight exception wins) before
/// the operands are destroyed.
class StreamFence {
 public:
  explicit StreamFence(ExecutionContext& ctx)
      : ctx_(ctx), exceptions_at_entry_(std::uncaught_exceptions()) {}
  StreamFence(const StreamFence&) = delete;
  StreamFence& operator=(const StreamFence&) = delete;
  ~StreamFence() {
    if (std::uncaught_exceptions() <= exceptions_at_entry_) return;
    for (StreamId s = 0; s < kNumStreams; ++s) {
      try {
        ctx_.sync(s);
      } catch (...) {
        // The exception already unwinding takes precedence.
      }
    }
  }

 private:
  ExecutionContext& ctx_;
  int exceptions_at_entry_;
};

} // namespace h2sketch::batched
