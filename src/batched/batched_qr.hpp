#pragma once

#include <span>

#include "batched/device.hpp"
#include "la/qr.hpp"

/// \file batched_qr.hpp
/// Batched QR probes (the KBLAS batched-QR stand-in). The adaptive
/// construction only needs the smallest |diag(R)| per node to decide
/// convergence (paper §III-B), so that is what the batch computes.

namespace h2sketch::batched {

/// out[i] = min |diag(R)| of the unpivoted QR of a[i]. One launch.
void batched_min_r_diag(ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                        std::span<real_t> out);

} // namespace h2sketch::batched
