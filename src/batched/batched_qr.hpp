#pragma once

#include <span>

#include "batched/device.hpp"
#include "la/qr.hpp"

/// \file batched_qr.hpp
/// Batched QR probes (the KBLAS batched-QR stand-in). The adaptive
/// construction only needs the smallest |diag(R)| per node to decide
/// convergence (paper §III-B), so that is what the batch computes.

namespace h2sketch::batched {

/// out[i] = min |diag(R)| of the unpivoted QR of a[i]. One launch.
void batched_min_r_diag(ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                        std::span<real_t> out);

/// Incremental probe: work[i] holds la::householder_qr output in its first
/// factored[i] columns (scalars in tau[i]) and fresh sample columns after;
/// extends each factorization in place over the appended columns and writes
/// min |diag(R)| to out[i]. Bitwise identical to batched_min_r_diag of the
/// full panels, but each adaptive round only pays for the new columns.
void batched_min_r_diag_update(ExecutionContext& ctx, std::span<const MatrixView> work,
                               std::span<const index_t> factored,
                               std::span<std::vector<real_t>> tau, std::span<real_t> out);

} // namespace h2sketch::batched
