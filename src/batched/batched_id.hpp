#pragma once

#include <span>
#include <vector>

#include "batched/device.hpp"
#include "la/id.hpp"

/// \file batched_id.hpp
/// Batched row interpolative decompositions (paper's batchedID). The GPU
/// implementation transposes each sample block and runs a batched column-
/// pivoted QR; here each batch entry runs the same transpose + CPQR path
/// inside one launch.

namespace h2sketch::batched {

/// out[i] = row ID of y[i] at absolute tolerance abs_tol (optionally rank
/// capped). One launch for the whole level.
void batched_row_id(ExecutionContext& ctx, std::span<const ConstMatrixView> y, real_t abs_tol,
                    index_t max_rank, std::span<la::RowID> out);

} // namespace h2sketch::batched
