#pragma once

#include <span>

#include "batched/device.hpp"
#include "common/matrix.hpp"

/// \file batched_transpose.hpp
/// Batched transposes. The GPU path transposes sample blocks before the
/// column-pivoted QR for coalesced memory access (paper §IV-A); the same
/// routine implements the untranspose in batchedShrink.

namespace h2sketch::batched {

/// out[i] = in[i]^T for each entry (out[i] must be cols x rows). One launch.
void batched_transpose(ExecutionContext& ctx, std::span<const ConstMatrixView> in,
                       std::span<const MatrixView> out);

} // namespace h2sketch::batched
