#include "batched/device.hpp"

// ExecutionContext is header-only; this anchors the object file.
namespace h2sketch::batched::detail {
void device_anchor() {}
} // namespace h2sketch::batched::detail
