#include "batched/device.hpp"

#include <iostream>

#include "backend/registry.hpp"

namespace h2sketch::batched {

ExecutionContext::ExecutionContext() : ExecutionContext(backend::default_backend()) {}

ExecutionContext::ExecutionContext(Backend backend)
    : ExecutionContext(backend::ExecutionConfig{backend::default_backend().device, backend}) {}

ExecutionContext::ExecutionContext(backend::ExecutionConfig config)
    : device_(std::move(config.device)), backend_(config.mode), workspace_(device_) {
  H2S_CHECK(device_ != nullptr, "ExecutionContext: null device backend");
}

ExecutionContext::~ExecutionContext() {
  try {
    sync_all();
  } catch (const std::exception& e) {
    // A launch failed and nobody synced: surfaced here as a last resort.
    std::cerr << "ExecutionContext: unsynced launch failed: " << e.what() << "\n";
  } catch (...) {
    std::cerr << "ExecutionContext: unsynced launch failed\n";
  }
}

index_t ExecutionContext::stream_launches(StreamId s) const {
  H2S_ASSERT(s >= 0 && s < kNumStreams, "invalid stream id");
  return streams_[static_cast<size_t>(s)].launches.load(std::memory_order_acquire);
}

void ExecutionContext::count_stream_launch(StreamId s, index_t n) {
  H2S_ASSERT(s >= 0 && s < kNumStreams, "invalid stream id");
  streams_[static_cast<size_t>(s)].launches.fetch_add(n, std::memory_order_acq_rel);
  launches_.fetch_add(n, std::memory_order_acq_rel);
}

void ExecutionContext::reset_counters() {
  sync_all();
  launches_.store(0, std::memory_order_release);
  for (auto& st : streams_) st.launches.store(0, std::memory_order_release);
}

bool ExecutionContext::stream_idle(StreamId s) const {
  const Stream& st = streams_[static_cast<size_t>(s)];
  std::lock_guard<std::mutex> lk(st.mu);
  return !st.active && st.queue.empty();
}

void ExecutionContext::record_stream_error(StreamId s, std::exception_ptr e) {
  Stream& st = streams_[static_cast<size_t>(s)];
  std::lock_guard<std::mutex> lk(st.mu);
  if (!st.error) st.error = std::move(e);
}

void ExecutionContext::record_launch_event(StreamId s, const char* label, std::int64_t start_ns,
                                           index_t batch, index_t chunks) {
  obs::TraceEvent ev;
  ev.cat = "runtime";
  ev.name = label;
  ev.ts_ns = start_ns;
  ev.dur_ns = obs::trace_now_ns() - start_ns;
  ev.tid = stream_track(s);
  ev.arg_key[0] = "batch";
  ev.arg_val[0] = static_cast<std::uint64_t>(batch);
  ev.arg_key[1] = "chunks";
  ev.arg_val[1] = static_cast<std::uint64_t>(chunks);
  obs::record_event(ev);
}

void ExecutionContext::enqueue_launch(StreamId s, std::function<void(index_t)> body,
                                      std::vector<std::pair<index_t, index_t>> chunks,
                                      const char* label) {
  auto launch = std::make_shared<LaunchState>();
  launch->body = std::move(body);
  launch->chunks = std::move(chunks);
  launch->label = label;

  Stream& st = streams_[static_cast<size_t>(s)];
  bool dispatch_now = false;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    st.queue.push_back(std::move(launch));
    if (!st.active) {
      st.active = true;
      dispatch_now = true;
    }
    // Otherwise the running launch's completion will dispatch us (FIFO).
  }
  if (dispatch_now) dispatch_front(s);
}

void ExecutionContext::dispatch_front(StreamId s) {
  Stream& st = streams_[static_cast<size_t>(s)];
  std::shared_ptr<LaunchState> launch;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    H2S_ASSERT(!st.queue.empty(), "dispatch on empty stream");
    launch = st.queue.front();
  }
  // remaining is set before any chunk is submitted, so the completion count
  // cannot reach zero until every chunk has actually run.
  launch->remaining.store(static_cast<index_t>(launch->chunks.size()),
                          std::memory_order_release);
  if (launch->label) launch->start_ns = obs::trace_now_ns();
  ThreadPool& pool = ThreadPool::global();
  for (const auto& [begin, end] : launch->chunks) {
    pool.submit_detached([this, s, launch, begin = begin, end = end] {
      try {
        // Per-chunk span on the worker's own track; the whole launch also
        // gets a span on the stream track at completion.
        obs::TraceSpan chunk_span("runtime", launch->label ? launch->label : "chunk", "begin",
                                  static_cast<std::uint64_t>(begin), "end",
                                  static_cast<std::uint64_t>(end));
        // Chunk bodies are kernel code: unlock the device heap while they
        // run (no-op on host backends).
        backend::KernelScope ks(device_.get());
        for (index_t i = begin; i < end; ++i) launch->body(i);
      } catch (...) {
        record_stream_error(s, std::current_exception());
      }
      if (launch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) launch_complete(s);
    });
  }
}

void ExecutionContext::launch_complete(StreamId s) {
  Stream& st = streams_[static_cast<size_t>(s)];
  std::shared_ptr<LaunchState> finished;
  bool more;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    finished = std::move(st.queue.front());
    st.queue.pop_front();
    more = !st.queue.empty();
    if (!more) st.active = false;
  }
  if (finished->label && !finished->chunks.empty())
    record_launch_event(s, finished->label, finished->start_ns, finished->chunks.back().second,
                        static_cast<index_t>(finished->chunks.size()));
  if (more)
    dispatch_front(s); // FIFO: next launch starts only now
  else
    ThreadPool::global().notify_waiters(); // wake any sync()
}

void ExecutionContext::sync(StreamId s) {
  H2S_ASSERT(s >= 0 && s < kNumStreams, "invalid stream id");
  Stream& st = streams_[static_cast<size_t>(s)];
  ThreadPool::global().wait_until([this, s] { return stream_idle(s); });
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    e = std::exchange(st.error, nullptr);
  }
  if (e) std::rethrow_exception(e);
}

void ExecutionContext::sync_all() {
  // Drain everything first, then surface the first error found (streams are
  // independent; later streams must still finish before we throw).
  ThreadPool::global().wait_until([this] {
    for (StreamId s = 0; s < kNumStreams; ++s)
      if (!stream_idle(s)) return false;
    return true;
  });
  for (StreamId s = 0; s < kNumStreams; ++s) sync(s);
}

} // namespace h2sketch::batched
