#include "batched/bsr_gemm.hpp"

#include <memory>

namespace h2sketch::batched {

namespace {

struct BsrLaunch {
  std::vector<index_t> row_ptr, col;
  std::vector<ConstMatrixView> blocks, x;
  std::vector<MatrixView> y;
};

} // namespace

index_t bsr_gemm(ExecutionContext& ctx, StreamId stream, real_t alpha,
                 std::vector<index_t> row_ptr, std::vector<index_t> col,
                 std::vector<ConstMatrixView> blocks, std::vector<ConstMatrixView> x,
                 std::vector<MatrixView> y) {
  H2S_CHECK(!row_ptr.empty(), "bsr_gemm: row_ptr must have at least one entry");
  const index_t rows = static_cast<index_t>(row_ptr.size()) - 1;
  H2S_CHECK(static_cast<index_t>(y.size()) == rows, "bsr_gemm: output count mismatch");
  H2S_CHECK(col.size() == blocks.size(), "bsr_gemm: block count mismatch");

  index_t max_per_row = 0;
  for (index_t r = 0; r < rows; ++r)
    max_per_row = std::max(max_per_row,
                           row_ptr[static_cast<size_t>(r + 1)] - row_ptr[static_cast<size_t>(r)]);

  auto st = std::make_shared<BsrLaunch>(BsrLaunch{std::move(row_ptr), std::move(col),
                                                  std::move(blocks), std::move(x), std::move(y)});

  // Sub-launch k: the k-th block of each row (rows with fewer blocks skip).
  // Each y[r] is touched by exactly one batch entry per sub-launch, and the
  // sub-launches run FIFO on `stream`. The per-block products route through
  // la::gemm's engine dispatch, so wide sample blocks are computed by the
  // blocked GEMM engine.
  for (index_t k = 0; k < max_per_row; ++k) {
    ctx.run_batch(
        stream, rows,
        [&g = *st, k](index_t r) -> index_t {
          const index_t base = g.row_ptr[static_cast<size_t>(r)];
          if (base + k >= g.row_ptr[static_cast<size_t>(r + 1)]) return 0;
          const auto e = static_cast<size_t>(base + k);
          return g.blocks[e].rows * g.blocks[e].cols * g.x[static_cast<size_t>(g.col[e])].cols;
        },
        [st, alpha, k](index_t r) {
          const index_t base = st->row_ptr[static_cast<size_t>(r)];
          if (base + k >= st->row_ptr[static_cast<size_t>(r + 1)]) return;
          const auto e = static_cast<size_t>(base + k);
          const index_t c = st->col[e];
          if (st->y[static_cast<size_t>(r)].empty() || st->blocks[e].empty()) return;
          la::gemm(alpha, st->blocks[e], la::Op::None, st->x[static_cast<size_t>(c)],
                   la::Op::None, 1.0, st->y[static_cast<size_t>(r)]);
        });
  }
  return max_per_row;
}

index_t bsr_gemm(ExecutionContext& ctx, real_t alpha, const_index_span row_ptr,
                 const_index_span col, std::span<const ConstMatrixView> blocks,
                 std::span<const ConstMatrixView> x, std::span<const MatrixView> y) {
  const index_t n = bsr_gemm(ctx, kSampleStream, alpha, {row_ptr.begin(), row_ptr.end()},
                             {col.begin(), col.end()}, {blocks.begin(), blocks.end()},
                             {x.begin(), x.end()}, {y.begin(), y.end()});
  ctx.sync(kSampleStream);
  return n;
}

} // namespace h2sketch::batched
