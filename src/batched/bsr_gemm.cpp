#include "batched/bsr_gemm.hpp"

namespace h2sketch::batched {

index_t bsr_gemm(ExecutionContext& ctx, real_t alpha, const_index_span row_ptr,
                 const_index_span col, std::span<const ConstMatrixView> blocks,
                 std::span<const ConstMatrixView> x, std::span<const MatrixView> y) {
  H2S_CHECK(!row_ptr.empty(), "bsr_gemm: row_ptr must have at least one entry");
  const index_t rows = static_cast<index_t>(row_ptr.size()) - 1;
  H2S_CHECK(static_cast<index_t>(y.size()) == rows, "bsr_gemm: output count mismatch");
  H2S_CHECK(col.size() == blocks.size(), "bsr_gemm: block count mismatch");

  index_t max_per_row = 0;
  for (index_t r = 0; r < rows; ++r)
    max_per_row =
        std::max(max_per_row, row_ptr[static_cast<size_t>(r + 1)] - row_ptr[static_cast<size_t>(r)]);

  // Sub-launch k: the k-th block of each row (rows with fewer blocks skip).
  // Each y[r] is touched by exactly one batch entry per sub-launch. The
  // per-block products route through la::gemm's engine dispatch, so wide
  // sample blocks are computed by the blocked GEMM engine.
  for (index_t k = 0; k < max_per_row; ++k) {
    ctx.run_batch(rows, [&](index_t r) {
      const index_t base = row_ptr[static_cast<size_t>(r)];
      if (base + k >= row_ptr[static_cast<size_t>(r + 1)]) return;
      const auto e = static_cast<size_t>(base + k);
      const index_t c = col[e];
      if (y[static_cast<size_t>(r)].empty() || blocks[e].empty()) return;
      la::gemm(alpha, blocks[e], la::Op::None, x[static_cast<size_t>(c)], la::Op::None, 1.0,
               y[static_cast<size_t>(r)]);
    });
  }
  return max_per_row;
}

} // namespace h2sketch::batched
