#include "batched/bsr_gemm.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

index_t bsr_gemm(ExecutionContext& ctx, StreamId stream, real_t alpha,
                 std::vector<index_t> row_ptr, std::vector<index_t> col,
                 std::vector<ConstMatrixView> blocks, std::vector<ConstMatrixView> x,
                 std::vector<MatrixView> y) {
  obs::ScopedLaunchLabel label("bsr_gemm");
  obs::TraceSpan span("backend", "bsr_gemm", "blocks", blocks.size());
  return ctx.device().bsr_gemm(ctx, stream, alpha, std::move(row_ptr), std::move(col),
                               std::move(blocks), std::move(x), std::move(y));
}

index_t bsr_gemm(ExecutionContext& ctx, real_t alpha, const_index_span row_ptr,
                 const_index_span col, std::span<const ConstMatrixView> blocks,
                 std::span<const ConstMatrixView> x, std::span<const MatrixView> y) {
  const index_t n = bsr_gemm(ctx, kSampleStream, alpha, {row_ptr.begin(), row_ptr.end()},
                             {col.begin(), col.end()}, {blocks.begin(), blocks.end()},
                             {x.begin(), x.end()}, {y.begin(), y.end()});
  ctx.sync(kSampleStream);
  return n;
}

} // namespace h2sketch::batched
