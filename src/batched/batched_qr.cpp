#include "batched/batched_qr.hpp"

namespace h2sketch::batched {

void batched_min_r_diag(ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                        std::span<real_t> out) {
  ctx.device().min_r_diag(ctx, a, out);
}

} // namespace h2sketch::batched
