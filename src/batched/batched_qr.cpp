#include "batched/batched_qr.hpp"

#include "obs/trace.hpp"

namespace h2sketch::batched {

void batched_min_r_diag(ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                        std::span<real_t> out) {
  obs::ScopedLaunchLabel label("batched_min_r_diag");
  obs::TraceSpan span("backend", "batched_min_r_diag", "batch", a.size());
  ctx.device().min_r_diag(ctx, a, out);
}

void batched_min_r_diag_update(ExecutionContext& ctx, std::span<const MatrixView> work,
                               std::span<const index_t> factored,
                               std::span<std::vector<real_t>> tau, std::span<real_t> out) {
  obs::ScopedLaunchLabel label("batched_min_r_diag_update");
  obs::TraceSpan span("backend", "batched_min_r_diag_update", "batch", work.size());
  ctx.device().min_r_diag_update(ctx, work, factored, tau, out);
}

} // namespace h2sketch::batched
