#include "batched/batched_qr.hpp"

namespace h2sketch::batched {

void batched_min_r_diag(ExecutionContext& ctx, std::span<const ConstMatrixView> a,
                        std::span<real_t> out) {
  H2S_CHECK(a.size() == out.size(), "batched_min_r_diag: batch size mismatch");
  ctx.run_batch(static_cast<index_t>(a.size()), [&](index_t i) {
    const auto ui = static_cast<size_t>(i);
    out[ui] = la::min_abs_r_diag(a[ui]);
  });
}

} // namespace h2sketch::batched
