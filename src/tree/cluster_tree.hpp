#pragma once

#include <utility>
#include <vector>

#include "geometry/kdtree.hpp"
#include "geometry/point_cloud.hpp"

/// \file cluster_tree.hpp
/// The cluster tree I (paper §II-A, Fig. 1): a perfect binary hierarchy of
/// index clusters, each a contiguous range of the KD-permuted point order.
/// All construction, matvec and entry-generation code operates in permuted
/// index space; `perm()` maps back to the caller's original point indices.

namespace h2sketch::tree {

using geo::BoundingBox;
using geo::PointCloud;

class ClusterTree {
 public:
  /// Build from a point cloud via median-split KD clustering.
  static ClusterTree build(PointCloud points, index_t leaf_size);

  /// Reassemble from previously built parts (deserialization): the
  /// clustering must describe exactly the given points.
  static ClusterTree from_parts(PointCloud points, geo::KdClustering clustering);

  /// The raw clustering (serialization).
  const geo::KdClustering& clustering() const { return clustering_; }

  index_t num_points() const { return static_cast<index_t>(clustering_.perm.size()); }
  index_t dim() const { return points_.dim(); }

  /// Total levels; root is level 0, leaves are level num_levels()-1.
  index_t num_levels() const { return clustering_.num_levels; }
  index_t leaf_level() const { return clustering_.num_levels - 1; }

  /// Number of clusters at a level (2^level).
  index_t nodes_at(index_t level) const { return index_t{1} << level; }

  /// Permuted index range [begin, end) of cluster i at `level`.
  index_t begin(index_t level, index_t i) const { return node(level, i).begin; }
  index_t end(index_t level, index_t i) const { return node(level, i).end; }
  index_t size(index_t level, index_t i) const { return node(level, i).size(); }

  /// Tight bounding box of cluster i at `level`.
  const BoundingBox& box(index_t level, index_t i) const { return node(level, i).box; }

  /// Largest leaf cluster size (the effective leaf size).
  index_t max_leaf_size() const;

  /// Permuted position -> original point index.
  const std::vector<index_t>& perm() const { return clustering_.perm; }
  index_t original_index(index_t pos) const {
    return clustering_.perm[static_cast<size_t>(pos)];
  }

  /// The clustered geometry (original point order).
  const PointCloud& points() const { return points_; }

  /// Coordinate of the point at *permuted* position pos.
  real_t coord_permuted(index_t pos, index_t d) const {
    return points_.coord(original_index(pos), d);
  }

 private:
  const geo::KdNode& node(index_t level, index_t i) const {
    return clustering_.nodes[static_cast<size_t>((index_t{1} << level) - 1 + i)];
  }

  PointCloud points_;
  geo::KdClustering clustering_;
};

} // namespace h2sketch::tree
