#pragma once

#include "geometry/bounding_box.hpp"

/// \file admissibility.hpp
/// The general admissibility condition (paper Eq. (1)):
///   adm(s, t) = 1  iff  (D(s) + D(t)) / 2 <= eta * Dist(s, t).
/// eta <= 0.5 is "strong" admissibility (H2 with separated interaction
/// lists); the Weak variant admits every distinct same-level pair, which
/// turns Algorithm 1 into Martinsson's HSS construction (used as the
/// STRUMPACK-HSS baseline).

namespace h2sketch::tree {

enum class AdmissibilityType {
  General, ///< Eq. (1) with parameter eta
  Weak     ///< every off-diagonal same-level pair is admissible (HODLR/HSS)
};

struct Admissibility {
  AdmissibilityType type = AdmissibilityType::General;
  real_t eta = 0.7;

  /// Decide compressibility of the block (s, t). `same_node` marks the
  /// diagonal pair, which is never admissible.
  bool admissible(const geo::BoundingBox& s, const geo::BoundingBox& t, bool same_node) const {
    if (same_node) return false;
    if (type == AdmissibilityType::Weak) return true;
    return 0.5 * (s.diameter() + t.diameter()) <= eta * s.distance(t);
  }

  /// Convenience factories.
  static Admissibility general(real_t eta) { return {AdmissibilityType::General, eta}; }
  static Admissibility weak() { return {AdmissibilityType::Weak, 0.0}; }
};

} // namespace h2sketch::tree
