#include "tree/admissibility.hpp"

// Admissibility is header-only; this anchors the object file.
namespace h2sketch::tree::detail {
void admissibility_anchor() {}
} // namespace h2sketch::tree::detail
