#pragma once

#include <vector>

#include "tree/admissibility.hpp"
#include "tree/cluster_tree.hpp"

/// \file matrix_tree.hpp
/// The matrix tree (paper §II-A, Fig. 2): the block partitioning produced by
/// a dual traversal of the cluster tree under an admissibility condition.
/// Per level we keep the admissible (far-field, B-coupled) pairs; at the
/// leaf level also the inadmissible (near-field, dense D) pairs. Each level's
/// pair list is a block-sparse-row (BSR) structure over the level's nodes —
/// the object batchedBSRGemm operates on.

namespace h2sketch::tree {

/// CSR-like list of (row node, col node) pairs at one level, sorted by row
/// then column. Rows index nodes within the level (0 .. 2^level-1).
struct LevelBlockList {
  std::vector<index_t> row_ptr; ///< size nodes_at_level + 1
  std::vector<index_t> col;     ///< column node ids, grouped by row

  index_t count() const { return static_cast<index_t>(col.size()); }
  index_t row_count(index_t r) const {
    return row_ptr[static_cast<size_t>(r + 1)] - row_ptr[static_cast<size_t>(r)];
  }
  /// Largest number of blocks in any row: this level's sparsity constant.
  index_t max_row_count() const;
  /// The j-th column in row r (j < row_count(r)).
  index_t col_at(index_t r, index_t j) const {
    return col[static_cast<size_t>(row_ptr[static_cast<size_t>(r)] + j)];
  }
  bool empty() const { return col.empty(); }
};

/// The full block partitioning: far lists per level plus the leaf-level
/// near list.
struct MatrixTree {
  index_t num_levels = 0;
  std::vector<LevelBlockList> far; ///< far[l]: admissible pairs formed at level l
  /// near[l]: *inadmissible* pairs visited at level l by the dual traversal
  /// (recursed further, or stored dense at the leaf). Top-down peeling
  /// constructions need these to know which columns pollute a block row.
  std::vector<LevelBlockList> near;
  LevelBlockList near_leaf; ///< == near[leaf level]: the dense blocks

  /// Build by dual tree traversal of `tree` under `adm`.
  static MatrixTree build(const ClusterTree& tree, const Admissibility& adm);

  /// Measured sparsity constant Csp: max blocks per row over all levels
  /// (far lists) and the leaf near list.
  index_t csp() const;

  /// Total number of admissible blocks across levels.
  index_t total_far_blocks() const;

  /// True if any admissible block exists (false for single-node trees or
  /// tiny problems that stay fully dense).
  bool has_any_far() const;
};

} // namespace h2sketch::tree
