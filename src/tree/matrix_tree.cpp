#include "tree/matrix_tree.hpp"

#include <algorithm>

namespace h2sketch::tree {

namespace {

/// Collect (row, col) pairs per level, then freeze them into CSR lists.
struct PairCollector {
  std::vector<std::vector<std::pair<index_t, index_t>>> far_pairs;
  std::vector<std::vector<std::pair<index_t, index_t>>> near_pairs_at;
};

LevelBlockList freeze(std::vector<std::pair<index_t, index_t>>& pairs, index_t nodes) {
  std::sort(pairs.begin(), pairs.end());
  LevelBlockList list;
  list.row_ptr.assign(static_cast<size_t>(nodes + 1), 0);
  list.col.reserve(pairs.size());
  for (const auto& [r, c] : pairs) {
    ++list.row_ptr[static_cast<size_t>(r + 1)];
    list.col.push_back(c);
  }
  for (index_t r = 0; r < nodes; ++r)
    list.row_ptr[static_cast<size_t>(r + 1)] += list.row_ptr[static_cast<size_t>(r)];
  return list;
}

void dual_traverse(const ClusterTree& tree, const Admissibility& adm, index_t level, index_t s,
                   index_t t, PairCollector& out) {
  const bool leaf = level == tree.leaf_level();
  if (adm.admissible(tree.box(level, s), tree.box(level, t), s == t)) {
    out.far_pairs[static_cast<size_t>(level)].emplace_back(s, t);
    return;
  }
  out.near_pairs_at[static_cast<size_t>(level)].emplace_back(s, t);
  if (leaf) return;
  for (index_t cs = 0; cs < 2; ++cs)
    for (index_t ct = 0; ct < 2; ++ct)
      dual_traverse(tree, adm, level + 1, 2 * s + cs, 2 * t + ct, out);
}

} // namespace

index_t LevelBlockList::max_row_count() const {
  index_t mx = 0;
  for (size_t r = 0; r + 1 < row_ptr.size(); ++r)
    mx = std::max(mx, row_ptr[r + 1] - row_ptr[r]);
  return mx;
}

MatrixTree MatrixTree::build(const ClusterTree& tree, const Admissibility& adm) {
  MatrixTree mt;
  mt.num_levels = tree.num_levels();
  PairCollector pc;
  pc.far_pairs.resize(static_cast<size_t>(mt.num_levels));
  pc.near_pairs_at.resize(static_cast<size_t>(mt.num_levels));
  dual_traverse(tree, adm, 0, 0, 0, pc);

  mt.far.resize(static_cast<size_t>(mt.num_levels));
  mt.near.resize(static_cast<size_t>(mt.num_levels));
  for (index_t l = 0; l < mt.num_levels; ++l) {
    mt.far[static_cast<size_t>(l)] = freeze(pc.far_pairs[static_cast<size_t>(l)], tree.nodes_at(l));
    mt.near[static_cast<size_t>(l)] =
        freeze(pc.near_pairs_at[static_cast<size_t>(l)], tree.nodes_at(l));
  }
  mt.near_leaf = mt.near[static_cast<size_t>(tree.leaf_level())];
  return mt;
}

index_t MatrixTree::csp() const {
  index_t mx = near_leaf.max_row_count();
  for (const auto& f : far) mx = std::max(mx, f.max_row_count());
  return mx;
}

index_t MatrixTree::total_far_blocks() const {
  index_t n = 0;
  for (const auto& f : far) n += f.count();
  return n;
}

bool MatrixTree::has_any_far() const { return total_far_blocks() > 0; }

} // namespace h2sketch::tree
