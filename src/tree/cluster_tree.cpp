#include "tree/cluster_tree.hpp"

namespace h2sketch::tree {

ClusterTree ClusterTree::build(PointCloud points, index_t leaf_size) {
  ClusterTree t;
  t.clustering_ = geo::build_kd_clustering(points, leaf_size);
  t.points_ = std::move(points);
  return t;
}

ClusterTree ClusterTree::from_parts(PointCloud points, geo::KdClustering clustering) {
  H2S_CHECK(static_cast<index_t>(clustering.perm.size()) == points.size(),
            "from_parts: clustering does not match point count");
  ClusterTree t;
  t.clustering_ = std::move(clustering);
  t.points_ = std::move(points);
  return t;
}

index_t ClusterTree::max_leaf_size() const {
  const index_t l = leaf_level();
  index_t mx = 0;
  for (index_t i = 0; i < nodes_at(l); ++i) mx = std::max(mx, size(l, i));
  return mx;
}

} // namespace h2sketch::tree
