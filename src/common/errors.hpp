#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

/// \file errors.hpp
/// The typed error taxonomy of the library. Every failure a caller might
/// want to *handle* (rather than just report) derives from `Error`, which
/// itself derives `std::runtime_error` so existing catch sites and tests
/// keep working unchanged.
///
/// The one bit that matters operationally is `retryable()`:
///
///  * **retryable** — a transient operational condition (device OOM, a
///    failed launch, a full queue, a missed deadline). Retrying the same
///    work, possibly after freeing resources or on a degraded backend, has
///    a real chance of succeeding. The serving layer's recovery policies
///    (OperatorCache build retry/backoff, coalescer CPU-degrade retry) key
///    off this.
///  * **not retryable** — a deterministic property of the inputs
///    (`NumericalError`: the matrix is not numerically SPD). Re-running the
///    identical computation reproduces the failure; recovery needs to
///    *change* something (ulv_factor's escalating ridge bump) or give up.

namespace h2sketch {

/// Base of the taxonomy. `retryable()` distinguishes transient operational
/// failures from deterministic ones.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what, bool retryable)
      : std::runtime_error(what), retryable_(retryable) {}
  bool retryable() const { return retryable_; }

 private:
  bool retryable_;
};

/// A device allocation failed (the cudaErrorMemoryAllocation analogue).
/// Carries the requested byte count so a cache can evict at least that much
/// before retrying. Retryable: freeing device memory may make it succeed.
class DeviceOomError : public Error {
 public:
  explicit DeviceOomError(const std::string& what, std::size_t requested_bytes = 0)
      : Error(what, /*retryable=*/true), requested_bytes_(requested_bytes) {}
  std::size_t requested_bytes() const { return requested_bytes_; }

 private:
  std::size_t requested_bytes_;
};

/// A kernel launch or an explicit device copy failed (the cudaErrorLaunch*
/// analogue). Retryable: launch failures on real devices are routinely
/// transient, and a degraded (CPU) backend can re-run the same batch.
class LaunchError : public Error {
 public:
  explicit LaunchError(const std::string& what) : Error(what, /*retryable=*/true) {}
};

/// The computation is numerically invalid for the given inputs — e.g. a
/// non-positive Cholesky pivot on a matrix that is not numerically SPD.
/// Not retryable: the identical computation fails the identical way.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what, /*retryable=*/false) {}
};

/// A bounded admission queue rejected a request. Carries the queue depth at
/// rejection time and the configured capacity. Retryable: load drains.
class QueueFullError : public Error {
 public:
  QueueFullError(const std::string& what, std::size_t depth, std::size_t capacity)
      : Error(what, /*retryable=*/true), depth_(depth), capacity_(capacity) {}
  std::size_t depth() const { return depth_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t depth_;
  std::size_t capacity_;
};

/// A request waited past its deadline without being dispatched. Carries the
/// observed wait. Retryable: the caller may resubmit under a fresh deadline.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what, double waited_seconds = 0.0)
      : Error(what, /*retryable=*/true), waited_seconds_(waited_seconds) {}
  double waited_seconds() const { return waited_seconds_; }

 private:
  double waited_seconds_;
};

} // namespace h2sketch
