#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

/// \file thread_pool.hpp
/// Persistent work-stealing thread pool: the CPU realization of the stream
/// runtime (the GPU analogue is a set of CUDA streams feeding one device).
///
/// The previous batched backend paid one OpenMP fork/join per launch with
/// `schedule(static)` over batch entries whose costs vary by orders of
/// magnitude. This pool replaces that with:
///  * persistent workers — created once, reused by every launch, sleeping on
///    a condition variable when idle (no per-launch thread management),
///  * per-worker deques with stealing — owners push/pop LIFO at the bottom,
///    idle workers steal FIFO from the top of a victim, so uneven chunk
///    costs rebalance automatically,
///  * cooperative waiting — a thread blocked in TaskGroup::wait() (or a
///    stream sync) executes pending tasks instead of idling, which also
///    makes nested submission (a task spawning subtasks and waiting on
///    them) deadlock-free.
///
/// Determinism contract: the pool never decides *what* is computed, only
/// *where*. Chunk boundaries are always derived from the work itself (entry
/// counts / cost estimates), never from the worker count, and every task
/// writes disjoint outputs, so results are bitwise identical for any number
/// of threads — the property test_determinism pins.
///
/// The pool's width follows `h2sketch::num_threads()` (OMP_NUM_THREADS /
/// omp_set_num_threads when built with OpenMP, `H2SKETCH_NUM_THREADS` in
/// OpenMP-free builds) at every parallel region, so existing thread-count
/// knobs keep working in both directions: a width increase spawns workers
/// lazily; a decrease parks the surplus workers (their queued tasks are
/// stolen by the remaining lanes, and width 1 bypasses the pool
/// entirely). Workers never exit until the pool is destroyed.

namespace h2sketch {

/// Execution policy toggle used for A/B benchmarking: `Streams` is the
/// pool-backed runtime; `FlatOpenMP` restores the pre-stream behavior
/// (fork/join `#pragma omp parallel for schedule(static)` per launch,
/// serial GEMM inside samplers) so bench_construction can measure the
/// speedup of the runtime against its own baseline in one binary.
enum class RuntimeMode { Streams, FlatOpenMP };

RuntimeMode runtime_mode();
void set_runtime_mode(RuntimeMode mode);

class ThreadPool;

/// Tracks completion and the first exception of a set of submitted tasks.
/// wait() participates in execution (helps drain the pool) and rethrows the
/// first captured exception once every task of the group has finished.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Destruction with unfinished tasks would leave dangling group pointers
  /// in the pool; wait (dropping any exception — wait() explicitly to see it).
  ~TaskGroup();

  /// Submit fn as a task of this group.
  void run(std::function<void()> fn);

  /// Block until every task of the group has finished, executing pending
  /// pool tasks while waiting. Rethrows the group's first exception.
  void wait();

  bool done() const { return pending_.load(std::memory_order_acquire) == 0; }

 private:
  friend class ThreadPool;
  void record_error(std::exception_ptr e);

  ThreadPool& pool_;
  std::atomic<index_t> pending_{0};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

class ThreadPool {
 public:
  /// Process-wide pool used by the stream runtime and gemm_parallel. Its
  /// width tracks num_threads() dynamically; workers are spawned lazily.
  static ThreadPool& global();

  /// A pool with a forced width (tests / benchmarks). width <= 0 means
  /// "track num_threads() dynamically" like the global pool.
  explicit ThreadPool(int forced_width = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current parallel width (participating threads incl. the caller).
  int width() const;

  /// Submit a task on behalf of `group`. Never runs inline: tasks execute on
  /// workers or inside a cooperative wait. Worker threads push to their own
  /// deque (LIFO); external threads round-robin across deques.
  void submit(TaskGroup& group, std::function<void()> fn);

  /// Submit a task with no completion group. The task owns its own
  /// accounting and must not throw (the stream runtime's launch chunks
  /// catch into per-stream error slots).
  void submit_detached(std::function<void()> fn);

  /// Execute one pending task if any is available. Returns false when every
  /// deque is empty. Public so stream syncs can help drain the pool.
  bool try_run_one();

  /// Block the calling thread until idle() returns true, executing pending
  /// tasks while waiting. idle() is evaluated under the pool's wake lock, so
  /// any state it reads must be updated before notify_waiters().
  void wait_until(const std::function<bool()>& idle);

  /// Wake every sleeping worker/waiter (call after externally changing state
  /// observed by a wait_until predicate).
  void notify_waiters();

  /// Chunked parallel loop over [0, n): f(i) for every i, chunk boundaries
  /// derived from n only (never from the width), caller participates.
  /// In FlatOpenMP mode falls back to the legacy OpenMP fork/join loop.
  template <typename F>
  void parallel_for(index_t n, F&& f);

  /// Total tasks executed since construction (telemetry for tests/bench).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };
  struct WorkerSlot {
    std::mutex mu;
    std::deque<Task> deque;
    std::thread thread;
  };

  void ensure_workers(int target);
  void submit_impl(TaskGroup* group, std::function<void()> fn);
  void worker_loop(size_t slot);
  bool pop_task(size_t preferred, Task& out);
  void run_task(Task& task);

  bool worker_eligible(size_t slot) const;

  const int forced_width_;
  std::atomic<bool> stop_{false};
  std::atomic<index_t> queued_{0};
  std::atomic<int> sleepers_{0}; ///< threads parked on wake_cv_
  /// Last width observed by an external thread; what workers consult
  /// (OpenMP's nthreads ICV is invisible from foreign threads).
  mutable std::atomic<int> active_width_{1};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> round_robin_{0};

  mutable std::mutex workers_mu_;
  std::vector<std::unique_ptr<WorkerSlot>> workers_; ///< grows, never shrinks

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

/// Fixed fan-out for uniform chunking: a loop is split into at most this
/// many tasks. A constant (not the thread count) keeps chunk boundaries —
/// and therefore any conceivable rounding behavior — identical for every
/// width.
inline constexpr index_t kParallelForFanout = 64;

template <typename F>
void ThreadPool::parallel_for(index_t n, F&& f) {
  if (n <= 0) return;
  const int w = width();
  if (w <= 1 || n == 1 || runtime_mode() == RuntimeMode::FlatOpenMP) {
    if (runtime_mode() == RuntimeMode::FlatOpenMP && w > 1) {
      // Legacy flat path, preserved verbatim for baseline measurements.
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
      for (index_t i = 0; i < n; ++i) f(i);
      return;
#endif
    }
    for (index_t i = 0; i < n; ++i) f(i);
    return;
  }
  const index_t chunks = std::min(n, kParallelForFanout);
  TaskGroup group(*this);
  // Chunk c covers [c*n/chunks, (c+1)*n/chunks): boundaries depend on n only.
  for (index_t c = 1; c < chunks; ++c) {
    const index_t b = c * n / chunks, e = (c + 1) * n / chunks;
    group.run([&f, b, e] {
      for (index_t i = b; i < e; ++i) f(i);
    });
  }
  const index_t e0 = n / chunks;
  for (index_t i = 0; i < e0; ++i) f(i); // caller takes the first chunk
  group.wait();
}

} // namespace h2sketch
