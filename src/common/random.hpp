#pragma once

#include <array>
#include <cstdint>

#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file random.hpp
/// Counter-based random number generation (Philox-4x32-10).
///
/// GPU batched-random kernels (cuRAND's Philox) generate element (i) of a
/// stream purely from (seed, counter) with no sequential state, so every
/// batch entry can be filled independently and the result is identical for
/// any parallelization or generation order. We reproduce that model: the
/// construction algorithm's `batchedRand` fills Ω(i, j) from a global column
/// counter, making adaptive sample rounds reproducible across backends.

namespace h2sketch {

/// Philox-4x32-10 counter-based RNG (Salmon et al., SC'11).
/// Produces four 32-bit words per 128-bit counter under a 64-bit key.
struct Philox4x32 {
  /// One 128-bit counter block -> four uniform 32-bit words.
  static std::array<std::uint32_t, 4> block(std::uint64_t key, std::uint64_t ctr_hi,
                                            std::uint64_t ctr_lo);
};

/// Deterministic stream of N(0,1) variates addressed by (seed, index).
/// Thread-safe by construction: no mutable state.
class GaussianStream {
 public:
  explicit GaussianStream(std::uint64_t seed) : seed_(seed) {}

  /// The idx-th standard normal variate of this stream.
  real_t operator()(std::uint64_t idx) const;

  /// idx-th uniform variate in (0,1).
  real_t uniform(std::uint64_t idx) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Fill a matrix view with N(0,1) entries: a(i,j) = stream(offset + j*rows + i).
/// `offset` lets successive sample rounds continue the same logical stream.
void fill_gaussian(MatrixView a, const GaussianStream& stream, std::uint64_t offset = 0);

/// Fill with uniform (0,1) entries using the same addressing.
void fill_uniform(MatrixView a, const GaussianStream& stream, std::uint64_t offset = 0);

/// Small sequential PRNG for non-reproducibility-critical uses
/// (test data, point jitter). splitmix64-based.
class SmallRng {
 public:
  explicit SmallRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  real_t next_real();
  /// Uniform integer in [0, n).
  index_t next_index(index_t n);
  /// Standard normal via Box-Muller.
  real_t next_gaussian();

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  real_t spare_ = 0.0;
};

} // namespace h2sketch
