#pragma once

#include <vector>

#include "common/types.hpp"

/// \file scan.hpp
/// Prefix sums. The GPU implementation sizes each level's workspace with a
/// Thrust prefix sum over per-node block dimensions and performs one
/// allocation per operation; the same offsets drive our arena allocation
/// and batch marshaling.

namespace h2sketch {

/// Exclusive prefix sum of `counts`; returns offsets of size counts.size()+1,
/// where offsets.back() is the total.
inline std::vector<index_t> exclusive_scan(const std::vector<index_t>& counts) {
  std::vector<index_t> offsets(counts.size() + 1, 0);
  for (size_t i = 0; i < counts.size(); ++i) offsets[i + 1] = offsets[i] + counts[i];
  return offsets;
}

} // namespace h2sketch
