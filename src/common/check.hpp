#pragma once

#include <sstream>
#include <stdexcept>

/// \file check.hpp
/// Error-checking macros. H2S_CHECK is always on (argument validation on
/// public entry points); H2S_ASSERT compiles out in release internals.

namespace h2sketch::detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "h2sketch check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

} // namespace h2sketch::detail

/// Validate a condition on a public API boundary; throws std::runtime_error.
#define H2S_CHECK(cond, msg)                                                        \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::h2sketch::detail::throw_check_failure(#cond, __FILE__, __LINE__,            \
                                              (std::ostringstream{} << msg).str()); \
    }                                                                               \
  } while (0)

/// Internal invariant; enabled unless NDEBUG-and-H2S_NO_ASSERT.
#if defined(NDEBUG) && defined(H2S_NO_ASSERT)
#define H2S_ASSERT(cond, msg) ((void)0)
#else
#define H2S_ASSERT(cond, msg) H2S_CHECK(cond, msg)
#endif
