#include "common/random.hpp"

#include <cmath>
#include <numbers>

namespace h2sketch {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

inline void philox_round(std::array<std::uint32_t, 4>& ctr, std::uint32_t k0, std::uint32_t k1) {
  const std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxM0) * ctr[0];
  const std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxM1) * ctr[2];
  const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
  const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ k0, lo1, hi0 ^ ctr[3] ^ k1, lo0};
}

inline real_t u32_to_open01(std::uint32_t x) {
  // (x + 0.5) / 2^32 in (0, 1), never exactly 0 or 1: safe for log().
  return (static_cast<real_t>(x) + 0.5) * 0x1.0p-32;
}

} // namespace

std::array<std::uint32_t, 4> Philox4x32::block(std::uint64_t key, std::uint64_t ctr_hi,
                                               std::uint64_t ctr_lo) {
  std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(ctr_lo), static_cast<std::uint32_t>(ctr_lo >> 32),
      static_cast<std::uint32_t>(ctr_hi), static_cast<std::uint32_t>(ctr_hi >> 32)};
  std::uint32_t k0 = static_cast<std::uint32_t>(key);
  std::uint32_t k1 = static_cast<std::uint32_t>(key >> 32);
  for (int round = 0; round < 10; ++round) {
    philox_round(ctr, k0, k1);
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  return ctr;
}

real_t GaussianStream::operator()(std::uint64_t idx) const {
  // Each counter block yields two Box-Muller pairs; index selects within.
  const std::uint64_t blk = idx / 2;
  const auto w = Philox4x32::block(seed_, /*ctr_hi=*/0x9e3779b97f4a7c15ull, blk);
  const real_t u1 = u32_to_open01(w[0]);
  const real_t u2 = u32_to_open01(w[1]);
  const real_t u3 = u32_to_open01(w[2]);
  const real_t u4 = u32_to_open01(w[3]);
  const real_t r0 = std::sqrt(-2.0 * std::log(u1));
  if (idx % 2 == 0) return r0 * std::cos(2.0 * std::numbers::pi * u2);
  const real_t r1 = std::sqrt(-2.0 * std::log(u3));
  return r1 * std::cos(2.0 * std::numbers::pi * u4);
}

real_t GaussianStream::uniform(std::uint64_t idx) const {
  const auto w = Philox4x32::block(seed_, /*ctr_hi=*/0xbf58476d1ce4e5b9ull, idx / 4);
  return u32_to_open01(w[idx % 4]);
}

void fill_gaussian(MatrixView a, const GaussianStream& stream, std::uint64_t offset) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i)
      a(i, j) = stream(offset + static_cast<std::uint64_t>(j) * a.rows + i);
}

void fill_uniform(MatrixView a, const GaussianStream& stream, std::uint64_t offset) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i)
      a(i, j) = stream.uniform(offset + static_cast<std::uint64_t>(j) * a.rows + i);
}

std::uint64_t SmallRng::next_u64() {
  // splitmix64
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

real_t SmallRng::next_real() { return static_cast<real_t>(next_u64() >> 11) * 0x1.0p-53; }

index_t SmallRng::next_index(index_t n) {
  H2S_ASSERT(n > 0, "next_index needs positive bound");
  return static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
}

real_t SmallRng::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  real_t u1 = 0.0;
  while (u1 <= 1e-300) u1 = next_real();
  const real_t u2 = next_real();
  const real_t r = std::sqrt(-2.0 * std::log(u1));
  spare_ = r * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_ = true;
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

} // namespace h2sketch
