#pragma once

#include <cstdint>

#include "common/types.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

/// \file parallel.hpp
/// Shared-memory parallel loop wrappers. The batched "GPU-model" backend
/// maps each batch entry to one loop iteration — exactly the paper's CPU
/// path (OpenMP parallel loops around single-threaded kernels).

namespace h2sketch {

/// Number of hardware threads OpenMP will use (1 when built without OpenMP).
inline int num_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Apply f(i) for i in [0, n) with OpenMP when available.
/// f must be safe to run concurrently for distinct i.
template <typename F>
void parallel_for(index_t n, F&& f) {
#if defined(_OPENMP)
  // Static scheduling: batch entries are small; per-iteration dispatch
  // overhead dominates any imbalance win from dynamic scheduling.
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) f(i);
#else
  for (index_t i = 0; i < n; ++i) f(i);
#endif
}

/// Serial loop with the same shape (the Naive backend uses this so both
/// backends share call sites).
template <typename F>
void serial_for(index_t n, F&& f) {
  for (index_t i = 0; i < n; ++i) f(i);
}

} // namespace h2sketch
