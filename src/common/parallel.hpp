#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/thread_pool.hpp"
#include "common/types.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

/// \file parallel.hpp
/// Shared-memory parallel loop wrappers. `parallel_for` is a thin shim over
/// the persistent work-stealing pool (thread_pool.hpp): no per-launch
/// fork/join, cooperative waiting, chunk boundaries derived from the trip
/// count only (bitwise-deterministic for any thread count). In
/// RuntimeMode::FlatOpenMP the pool reverts to the legacy
/// `#pragma omp parallel for schedule(static)` fork/join so benchmarks can
/// measure the runtime against its own pre-stream baseline.

namespace h2sketch {

/// Requested parallel width. OpenMP builds: OMP_NUM_THREADS /
/// omp_set_num_threads, the user-facing knob, re-read at every parallel
/// region so mid-process changes take effect (the thread-count-varying
/// determinism and scaling tests depend on this never being overridden).
/// OpenMP-free builds (e.g. the TSan configuration, where libgomp's lack
/// of instrumentation forces OpenMP off): H2SKETCH_NUM_THREADS, else 1.
inline int num_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  static const int env_width = [] {
    if (const char* s = std::getenv("H2SKETCH_NUM_THREADS")) {
      const int v = std::atoi(s);
      if (v > 0) return v;
    }
    return 0;
  }();
  return env_width > 0 ? env_width : 1;
#endif
}

/// Apply f(i) for i in [0, n) on the persistent pool.
/// f must be safe to run concurrently for distinct i.
template <typename F>
void parallel_for(index_t n, F&& f) {
  ThreadPool::global().parallel_for(n, std::forward<F>(f));
}

/// Serial loop with the same shape (the Naive backend uses this so both
/// backends share call sites).
template <typename F>
void serial_for(index_t n, F&& f) {
  for (index_t i = 0; i < n; ++i) f(i);
}

} // namespace h2sketch
