#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

/// \file matrix.hpp
/// Column-major dense matrix (owning) and strided views (non-owning).
/// All of h2sketch's dense linear algebra operates on these views, so the
/// same kernels serve owning matrices, sub-blocks, and arena-allocated
/// batch entries.

namespace h2sketch {

class Matrix;

/// Non-owning mutable view of a column-major matrix block.
struct MatrixView {
  real_t* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0; ///< leading dimension (stride between columns), ld >= rows

  MatrixView() = default;
  MatrixView(real_t* p, index_t m, index_t n, index_t lda) : data(p), rows(m), cols(n), ld(lda) {
    H2S_ASSERT(lda >= m, "leading dimension must cover rows");
  }

  real_t& operator()(index_t i, index_t j) const { return data[i + j * ld]; }

  /// Sub-block view [r0, r0+m) x [c0, c0+n).
  MatrixView block(index_t r0, index_t c0, index_t m, index_t n) const {
    H2S_ASSERT(r0 >= 0 && c0 >= 0 && r0 + m <= rows && c0 + n <= cols, "block out of range");
    return MatrixView(data + r0 + c0 * ld, m, n, ld);
  }
  MatrixView col_range(index_t c0, index_t n) const { return block(0, c0, rows, n); }
  MatrixView row_range(index_t r0, index_t m) const { return block(r0, 0, m, cols); }

  bool empty() const { return rows == 0 || cols == 0; }
};

/// Non-owning const view of a column-major matrix block.
struct ConstMatrixView {
  const real_t* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const real_t* p, index_t m, index_t n, index_t lda)
      : data(p), rows(m), cols(n), ld(lda) {
    H2S_ASSERT(lda >= m, "leading dimension must cover rows");
  }
  /*implicit*/ ConstMatrixView(const MatrixView& v) : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  const real_t& operator()(index_t i, index_t j) const { return data[i + j * ld]; }

  ConstMatrixView block(index_t r0, index_t c0, index_t m, index_t n) const {
    H2S_ASSERT(r0 >= 0 && c0 >= 0 && r0 + m <= rows && c0 + n <= cols, "block out of range");
    return ConstMatrixView(data + r0 + c0 * ld, m, n, ld);
  }
  ConstMatrixView col_range(index_t c0, index_t n) const { return block(0, c0, rows, n); }
  ConstMatrixView row_range(index_t r0, index_t m) const { return block(r0, 0, m, cols); }

  bool empty() const { return rows == 0 || cols == 0; }
};

/// Owning column-major dense matrix with contiguous storage (ld == rows).
class Matrix {
 public:
  Matrix() = default;
  /// Allocate an m x n matrix, zero-initialized.
  Matrix(index_t m, index_t n) : rows_(m), cols_(n), data_(static_cast<size_t>(m * n), 0.0) {
    H2S_CHECK(m >= 0 && n >= 0, "negative dimension");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  real_t& operator()(index_t i, index_t j) { return data_[static_cast<size_t>(i + j * rows_)]; }
  const real_t& operator()(index_t i, index_t j) const {
    return data_[static_cast<size_t>(i + j * rows_)];
  }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  /// Whole-matrix views.
  MatrixView view() { return MatrixView(data_.data(), rows_, cols_, rows_); }
  ConstMatrixView view() const { return ConstMatrixView(data_.data(), rows_, cols_, rows_); }
  operator MatrixView() { return view(); }
  operator ConstMatrixView() const { return view(); }

  /// Sub-block views.
  MatrixView block(index_t r0, index_t c0, index_t m, index_t n) {
    return view().block(r0, c0, m, n);
  }
  ConstMatrixView block(index_t r0, index_t c0, index_t m, index_t n) const {
    return view().block(r0, c0, m, n);
  }

  /// Fill every entry with a constant.
  void fill(real_t v) { std::fill(data_.begin(), data_.end(), v); }

  /// Resize to m x n, discarding contents (entries zeroed).
  void resize(index_t m, index_t n) {
    rows_ = m;
    cols_ = n;
    data_.assign(static_cast<size_t>(m * n), 0.0);
  }

  /// n x n identity.
  static Matrix identity(index_t n) {
    Matrix I(n, n);
    for (index_t i = 0; i < n; ++i) I(i, i) = 1.0;
    return I;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

/// Deep-copy a view into an owning matrix.
Matrix to_matrix(ConstMatrixView a);

/// Copy src into dst (dimensions must match).
void copy(ConstMatrixView src, MatrixView dst);

/// Set every entry of the view to a constant.
void set_all(MatrixView a, real_t v);

/// Gather rows: dst(i, :) = src(rows[i], :).
void gather_rows(ConstMatrixView src, const_index_span rows, MatrixView dst);

/// Gather a general sub-block: dst(i, j) = src(rows[i], cols[j]).
void gather_block(ConstMatrixView src, const_index_span rows, const_index_span cols,
                  MatrixView dst);

/// Max absolute entry difference between two equal-sized matrices.
real_t max_abs_diff(ConstMatrixView a, ConstMatrixView b);

} // namespace h2sketch
