#pragma once

#include <array>
#include <chrono>
#include <string>

#include "common/types.hpp"
#include "obs/trace.hpp"

/// \file timer.hpp
/// Wall-clock timing and the per-phase profiler used to reproduce the
/// paper's Fig. 7 construction-time breakdown.

namespace h2sketch {

/// Seconds since an arbitrary epoch, monotonic.
inline double wall_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Simple start/elapsed stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(wall_seconds()) {}
  void reset() { start_ = wall_seconds(); }
  double elapsed() const { return wall_seconds() - start_; }

 private:
  double start_;
};

/// Construction phases, matching the components profiled in the paper's
/// Fig. 7 (sampling, BSR gemm, convergence test, ID, entry generation,
/// miscellaneous marshaling/allocation).
enum class Phase : int {
  Sampling = 0,   ///< batchedRand + Kblk black-box products
  EntryGen,       ///< batchedGen dense/coupling entry evaluation
  BsrGemm,        ///< batchedBSRGemm sample subtraction
  Convergence,    ///< batched QR convergence test
  ID,             ///< batched interpolative decompositions
  Upsweep,        ///< batchedShrink + batchedGemm sample/vector upsweep
  Misc,           ///< marshaling, workspace allocation, bookkeeping
  kCount
};

/// Human-readable phase name.
inline const char* phase_name(Phase p) {
  static constexpr std::array<const char*, static_cast<int>(Phase::kCount)> names = {
      "sampling", "entry_gen", "bsr_gemm", "convergence", "id", "upsweep", "misc"};
  return names[static_cast<size_t>(static_cast<int>(p))];
}

/// Accumulates wall time per phase. Scoped measurement via PhaseScope.
class PhaseProfiler {
 public:
  void add(Phase p, double seconds) { acc_[static_cast<size_t>(p)] += seconds; }
  double seconds(Phase p) const { return acc_[static_cast<size_t>(p)]; }
  double total() const {
    double t = 0;
    for (double v : acc_) t += v;
    return t;
  }
  void reset() { acc_.fill(0.0); }

 private:
  std::array<double, static_cast<size_t>(Phase::kCount)> acc_{};
};

/// RAII phase timer: adds the scope's wall time to the profiler on exit,
/// and doubles as a trace span (category "construction", named by phase) so
/// Fig. 7-style breakdowns can be read straight off a captured trace.
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler& prof, Phase p)
      : prof_(prof), phase_(p), span_("construction", phase_name(p)), start_(wall_seconds()) {}
  ~PhaseScope() { prof_.add(phase_, wall_seconds() - start_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler& prof_;
  Phase phase_;
  obs::TraceSpan span_;
  double start_;
};

} // namespace h2sketch
