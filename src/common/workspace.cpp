#include "common/workspace.hpp"

// Workspace is header-only today; this translation unit pins the module's
// object file so the library always has at least one symbol.
namespace h2sketch::detail {
void workspace_anchor() {}
} // namespace h2sketch::detail
