#pragma once

#include <cstdint>
#include <span>

/// \file types.hpp
/// Fundamental scalar and index types used throughout h2sketch.

namespace h2sketch {

/// Floating-point scalar used for all matrix data.
using real_t = double;

/// Signed index type for matrix dimensions, point counts and tree nodes.
/// Signed so that reverse loops and differences are safe.
using index_t = std::int64_t;

/// Non-owning contiguous range of scalars.
using real_span = std::span<real_t>;
using const_real_span = std::span<const real_t>;

/// Non-owning contiguous range of indices.
using index_span = std::span<index_t>;
using const_index_span = std::span<const index_t>;

} // namespace h2sketch
