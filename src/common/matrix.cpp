#include "common/matrix.hpp"

#include <cmath>

namespace h2sketch {

Matrix to_matrix(ConstMatrixView a) {
  Matrix m(a.rows, a.cols);
  copy(a, m.view());
  return m;
}

void copy(ConstMatrixView src, MatrixView dst) {
  H2S_CHECK(src.rows == dst.rows && src.cols == dst.cols, "copy: shape mismatch");
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < src.rows; ++i) dst(i, j) = src(i, j);
}

void set_all(MatrixView a, real_t v) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) = v;
}

void gather_rows(ConstMatrixView src, const_index_span rows, MatrixView dst) {
  H2S_CHECK(dst.rows == static_cast<index_t>(rows.size()) && dst.cols == src.cols,
            "gather_rows: shape mismatch");
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < dst.rows; ++i) dst(i, j) = src(rows[static_cast<size_t>(i)], j);
}

void gather_block(ConstMatrixView src, const_index_span rows, const_index_span cols,
                  MatrixView dst) {
  H2S_CHECK(dst.rows == static_cast<index_t>(rows.size()) &&
                dst.cols == static_cast<index_t>(cols.size()),
            "gather_block: shape mismatch");
  for (index_t j = 0; j < dst.cols; ++j)
    for (index_t i = 0; i < dst.rows; ++i)
      dst(i, j) = src(rows[static_cast<size_t>(i)], cols[static_cast<size_t>(j)]);
}

real_t max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  H2S_CHECK(a.rows == b.rows && a.cols == b.cols, "max_abs_diff: shape mismatch");
  real_t d = 0.0;
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

} // namespace h2sketch
