#include "common/thread_pool.hpp"

#include <utility>

#include "common/parallel.hpp"

namespace h2sketch {

namespace {

std::atomic<RuntimeMode> g_runtime_mode{RuntimeMode::Streams};

/// Worker slot index of the calling thread (SIZE_MAX for external threads).
/// Used so nested submissions land on the submitting worker's own deque.
thread_local size_t t_worker_slot = static_cast<size_t>(-1);
thread_local ThreadPool* t_worker_pool = nullptr;

/// Hard cap on workers: far above any sane OMP_NUM_THREADS, low enough that
/// a pathological setting cannot exhaust process resources.
constexpr int kMaxWorkers = 256;

} // namespace

RuntimeMode runtime_mode() { return g_runtime_mode.load(std::memory_order_relaxed); }

void set_runtime_mode(RuntimeMode mode) {
  g_runtime_mode.store(mode, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TaskGroup::~TaskGroup() {
  if (!done()) {
    try {
      wait();
    } catch (...) {
      // The error was only observable through wait(); dropping it here is
      // the least-bad option for a destructor.
    }
  }
}

void TaskGroup::run(std::function<void()> fn) { pool_.submit(*this, std::move(fn)); }

void TaskGroup::record_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lk(error_mu_);
  if (!error_) error_ = std::move(e);
}

void TaskGroup::wait() {
  pool_.wait_until([this] { return done(); });
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    e = std::exchange(error_, nullptr);
  }
  if (e) std::rethrow_exception(e);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool& ThreadPool::global() {
  static ThreadPool pool; // intentionally leaked-on-exit-free static
  return pool;
}

ThreadPool::ThreadPool(int forced_width) : forced_width_(forced_width) {
  // The worker array never reallocates: slots are indexed outside
  // workers_mu_ once their existence has been published under it (elements
  // are pointers to heap slots, stable for the pool's lifetime), which is
  // only sound if push_back never moves the buffer.
  workers_.reserve(static_cast<size_t>(kMaxWorkers));
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  notify_waiters();
  // Join without holding workers_mu_: a waking worker takes it inside
  // pop_task on its way out, so joining under the lock deadlocks.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (auto& w : workers_)
      if (w->thread.joinable()) threads.push_back(std::move(w->thread));
  }
  for (auto& t : threads) t.join();
}

int ThreadPool::width() const {
  if (forced_width_ > 0) return std::max(1, std::min(forced_width_, kMaxWorkers));
  // OpenMP's nthreads ICV is per *thread*: omp_set_num_threads on the app
  // thread is invisible from pool workers (they would read the env
  // default). External threads therefore read the knob and publish it;
  // workers consume the cached value (worker eligibility, nested widths).
  if (t_worker_pool == this) return active_width_.load(std::memory_order_relaxed);
  const int w = std::max(1, std::min(num_threads(), kMaxWorkers));
  active_width_.store(w, std::memory_order_relaxed);
  return w;
}

bool ThreadPool::worker_eligible(size_t slot) const {
  // The submitting/waiting thread is one lane; workers fill the rest. On a
  // width decrease, surplus workers park (their queued tasks are stolen by
  // the remaining lanes), so execution honors the new width.
  return static_cast<int>(slot) + 1 < width();
}

void ThreadPool::ensure_workers(int target) {
  std::lock_guard<std::mutex> lk(workers_mu_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.push_back(std::make_unique<WorkerSlot>());
    const size_t slot = workers_.size() - 1;
    workers_[slot]->thread = std::thread([this, slot] { worker_loop(slot); });
  }
}

void ThreadPool::submit(TaskGroup& group, std::function<void()> fn) {
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  submit_impl(&group, std::move(fn));
}

void ThreadPool::submit_detached(std::function<void()> fn) { submit_impl(nullptr, std::move(fn)); }

void ThreadPool::submit_impl(TaskGroup* group, std::function<void()> fn) {
  // Width - 1 workers: the submitting/waiting thread is the remaining lane
  // (but always at least one worker, so a submit that races a width change
  // to 1 still has somewhere to go).
  ensure_workers(std::max(1, width() - 1));

  size_t n;
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    n = workers_.size();
  }
  // Target only the slots the current width activates (stealing still
  // drains stragglers parked on surplus slots after a width decrease).
  const size_t active = std::min(n, static_cast<size_t>(std::max(1, width() - 1)));
  size_t slot;
  // A worker pushes to its own deque (LIFO locality for nested subtasks);
  // external threads spread round-robin.
  if (t_worker_pool == this && t_worker_slot < active)
    slot = t_worker_slot;
  else
    slot = static_cast<size_t>(round_robin_.fetch_add(1, std::memory_order_relaxed)) % active;
  {
    std::lock_guard<std::mutex> lk(workers_[slot]->mu);
    workers_[slot]->deque.push_back(Task{std::move(fn), group});
  }
  queued_.fetch_add(1, std::memory_order_seq_cst);
  // Eventcount-style gate: skip the notify syscall when nobody sleeps.
  // seq_cst on queued_/sleepers_ makes "sleeper missed the queued_ bump but
  // we missed its sleepers_ bump" impossible (a sleeper increments
  // sleepers_ before re-checking queued_ under the wake lock).
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lk(wake_mu_);
    }
    // notify_all, not notify_one: a parked surplus worker (ineligible at
    // the current width) waking first would swallow the only notification.
    wake_cv_.notify_all();
  }
}

bool ThreadPool::pop_task(size_t preferred, Task& out) {
  size_t n;
  {
    std::lock_guard<std::mutex> lk(workers_mu_);
    n = workers_.size();
  }
  if (n == 0) return false;
  // Own deque first, from the bottom (LIFO: most recently pushed, hottest).
  if (preferred < n) {
    std::lock_guard<std::mutex> lk(workers_[preferred]->mu);
    if (!workers_[preferred]->deque.empty()) {
      out = std::move(workers_[preferred]->deque.back());
      workers_[preferred]->deque.pop_back();
      return true;
    }
  }
  // Steal from the top (FIFO: the oldest, largest-granularity task).
  for (size_t k = 0; k < n; ++k) {
    const size_t v = (preferred + 1 + k) % n;
    std::lock_guard<std::mutex> lk(workers_[v]->mu);
    if (!workers_[v]->deque.empty()) {
      out = std::move(workers_[v]->deque.front());
      workers_[v]->deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  try {
    task.fn();
  } catch (...) {
    // Detached tasks (stream launch chunks) do their own catching; an
    // escape here means a bug, but dropping beats terminating the process.
    if (task.group) task.group->record_error(std::current_exception());
  }
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (task.group && task.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the group: wake any thread blocked in wait().
    notify_waiters();
  }
}

bool ThreadPool::try_run_one() {
  const size_t preferred = t_worker_pool == this ? t_worker_slot : static_cast<size_t>(-1);
  Task task;
  if (!pop_task(preferred, task)) return false;
  run_task(task);
  return true;
}

void ThreadPool::wait_until(const std::function<bool()>& idle) {
  for (;;) {
    if (idle()) return;
    if (try_run_one()) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    wake_cv_.wait(lk, [&] {
      return idle() || queued_.load(std::memory_order_seq_cst) > 0 ||
             stop_.load(std::memory_order_acquire);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (idle() || stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::notify_waiters() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
}

void ThreadPool::worker_loop(size_t slot) {
  t_worker_slot = slot;
  t_worker_pool = this;
  while (!stop_.load(std::memory_order_acquire)) {
    if (worker_eligible(slot) && try_run_one()) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    wake_cv_.wait(lk, [&] {
      return (queued_.load(std::memory_order_seq_cst) > 0 && worker_eligible(slot)) ||
             stop_.load(std::memory_order_acquire);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  t_worker_pool = nullptr;
  t_worker_slot = static_cast<size_t>(-1);
}

} // namespace h2sketch
