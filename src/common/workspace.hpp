#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "backend/device_backend.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/types.hpp"

/// \file workspace.hpp
/// Arena allocator for per-level batched workspaces.
///
/// The paper avoids "large amounts of small memory allocations" by computing
/// each level's total size with a prefix sum and performing a single
/// allocation per operation. Workspace mirrors that: reserve once, hand out
/// aligned sub-ranges, reset between levels. Counters let benchmarks report
/// allocation traffic for the naive-vs-batched comparison.
///
/// The arena's backing store is **backend-allocated**: a Workspace created
/// with a DeviceBackend hands out *device* addresses (one DeviceBuffer per
/// backing allocation), so batch temporaries suballocated here live in
/// device memory and obey the backend's poisoning discipline. A
/// default-constructed Workspace falls back to a host vector (standalone
/// uses and tests).

namespace h2sketch {

class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(std::shared_ptr<backend::DeviceBackend> b) : backend_(std::move(b)) {}

  backend::DeviceBackend* device() const { return backend_.get(); }

  /// Ensure capacity of at least `bytes`; counts one backing allocation if
  /// the arena grows (live contents are preserved). Invalidates previously
  /// returned pointers.
  void reserve_bytes(std::size_t bytes) {
    if (bytes <= capacity_bytes()) return;
    if (backend_) {
      backend::DeviceBuffer grown = backend_->allocate(bytes);
      // Growth with live suballocations only happens via an explicit
      // reserve; the common reset-then-reserve cycle skips the copy.
      if (!dev_buf_.empty() && used_bytes() != 0)
        backend_->copy_on_device(grown.data(), dev_buf_.data(), dev_buf_.bytes());
      dev_buf_ = std::move(grown);
    } else {
      host_buf_.resize(bytes);
    }
    ++backing_allocs_;
  }

  /// Allocate `count` elements of T (64-byte aligned). Grows if needed.
  template <typename T>
  T* allocate(index_t count) {
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    std::size_t aligned_off = aligned_offset();
    if (aligned_off + bytes > capacity_bytes()) {
      // Growing invalidates earlier pointers; callers reserve up front via
      // prefix sums, so this path only triggers on first use per level.
      H2S_CHECK(offset_ == 0, "Workspace grew after suballocation; reserve up front");
      reserve_bytes(aligned_off + bytes + 64); // slack for the alignment shift
      aligned_off = aligned_offset();          // the base may have moved
    }
    T* p = reinterpret_cast<T*>(base() + aligned_off);
    offset_ = aligned_off + bytes;
    ++suballocs_;
    return p;
  }

  /// Arena bytes one m x n panel consumes, including the 64-byte
  /// suballocation grain — the term callers sum when pre-reserving via a
  /// prefix sum.
  static std::size_t panel_bytes(index_t m, index_t n) {
    const auto b = static_cast<std::size_t>(m) * static_cast<std::size_t>(n) * sizeof(real_t);
    return (b + 63) & ~std::size_t{63};
  }

  /// Carve an m x n column-major panel (ld == max(m, 1)) from the arena.
  MatrixView panel(index_t m, index_t n) {
    return MatrixView(allocate<real_t>(m * n), m, n, std::max<index_t>(m, index_t{1}));
  }

  /// Base address of the arena's backing store; with used_bytes() it
  /// delimits the currently carved region (e.g. for one bulk zero fill
  /// instead of per-panel fills). Valid until the next growth.
  void* arena_data() { return base(); }

  /// Recycle the arena for the next level (capacity retained).
  void reset() { offset_ = 0; }

  std::size_t capacity_bytes() const { return backend_ ? dev_buf_.bytes() : host_buf_.size(); }
  std::size_t used_bytes() const { return offset_; }
  /// Number of times the backing buffer had to be (re)allocated.
  index_t backing_allocations() const { return backing_allocs_; }
  /// Number of suballocations served (cheap pointer bumps).
  index_t suballocations() const { return suballocs_; }

 private:
  std::byte* base() const {
    return backend_ ? static_cast<std::byte*>(dev_buf_.data()) : const_cast<std::byte*>(host_buf_.data());
  }

  /// Offset of the next 64-byte-aligned *address* within the buffer.
  std::size_t aligned_offset() const {
    const auto b = reinterpret_cast<std::uintptr_t>(base());
    const std::uintptr_t next = (b + offset_ + 63) & ~std::uintptr_t{63};
    return static_cast<std::size_t>(next - b);
  }

  std::shared_ptr<backend::DeviceBackend> backend_;
  backend::DeviceBuffer dev_buf_; ///< backing store when backend-allocated
  std::vector<std::byte> host_buf_;
  std::size_t offset_ = 0;
  index_t backing_allocs_ = 0;
  index_t suballocs_ = 0;
};

} // namespace h2sketch
