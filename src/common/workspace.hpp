#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

/// \file workspace.hpp
/// Arena allocator for per-level batched workspaces.
///
/// The paper avoids "large amounts of small memory allocations" by computing
/// each level's total size with a prefix sum and performing a single
/// allocation per operation. Workspace mirrors that: reserve once, hand out
/// aligned sub-ranges, reset between levels. Counters let benchmarks report
/// allocation traffic for the naive-vs-batched comparison.

namespace h2sketch {

class Workspace {
 public:
  Workspace() = default;

  /// Ensure capacity of at least `bytes`; counts one backing allocation if
  /// the arena grows. Invalidates previously returned pointers.
  void reserve_bytes(std::size_t bytes) {
    if (bytes > buffer_.size()) {
      buffer_.resize(bytes);
      ++backing_allocs_;
    }
  }

  /// Allocate `count` elements of T (64-byte aligned). Grows if needed.
  template <typename T>
  T* allocate(index_t count) {
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    std::size_t aligned_off = aligned_offset();
    if (aligned_off + bytes > buffer_.size()) {
      // Growing invalidates earlier pointers; callers reserve up front via
      // prefix sums, so this path only triggers on first use per level.
      H2S_CHECK(offset_ == 0, "Workspace grew after suballocation; reserve up front");
      reserve_bytes(aligned_off + bytes + 64); // slack for the alignment shift
      aligned_off = aligned_offset();          // the base may have moved
    }
    T* p = reinterpret_cast<T*>(buffer_.data() + aligned_off);
    offset_ = aligned_off + bytes;
    ++suballocs_;
    return p;
  }

  /// Recycle the arena for the next level (capacity retained).
  void reset() { offset_ = 0; }

  std::size_t capacity_bytes() const { return buffer_.size(); }
  std::size_t used_bytes() const { return offset_; }
  /// Number of times the backing buffer had to be (re)allocated.
  index_t backing_allocations() const { return backing_allocs_; }
  /// Number of suballocations served (cheap pointer bumps).
  index_t suballocations() const { return suballocs_; }

 private:
  /// Offset of the next 64-byte-aligned *address* within the buffer.
  std::size_t aligned_offset() const {
    const auto base = reinterpret_cast<std::uintptr_t>(buffer_.data());
    const std::uintptr_t next = (base + offset_ + 63) & ~std::uintptr_t{63};
    return static_cast<std::size_t>(next - base);
  }

  std::vector<std::byte> buffer_;
  std::size_t offset_ = 0;
  index_t backing_allocs_ = 0;
  index_t suballocs_ = 0;
};

} // namespace h2sketch
