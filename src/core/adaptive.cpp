#include <cmath>

#include "batched/batched_gemm.hpp"
#include "batched/batched_qr.hpp"
#include "batched/batched_rand.hpp"
#include "batched/bsr_gemm.hpp"
#include "core/builder.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

/// \file adaptive.cpp
/// Sampling, the updateSamples upsweep, and the convergence test of
/// Algorithm 1 (paper §III-B): new samples arrive in blocks of d columns and
/// are replayed through the transforms of every already-skeletonized level
/// (dense subtraction + skeleton-row restriction at the leaves, coupling
/// subtraction + transfer products above) until they reach the level being
/// processed.

namespace h2sketch::core::detail {

real_t H2SketchBuilder::eps_abs() const { return opts_.tol * stats_.norm_estimate; }

void H2SketchBuilder::sample_columns(index_t d_new) {
  PhaseScope scope(stats_.phases, Phase::Sampling);
  // Appending columns reallocates (Omega, Y); any in-flight launch from the
  // previous round may still hold views into them, so this is a barrier.
  // The initial round (d_total_ == 0) skips it: nothing references the
  // still-empty matrices, which lets the first sampler product overlap the
  // asynchronous near-field generation.
  if (d_total_ > 0) ctx_.sync_all();
  const index_t n = tree_->num_points();
  const index_t c0 = d_total_;
  backend::DeviceBackend& dev = ctx_.device();
  if (omega_global_.rows() == 0) {
    omega_global_.resize(dev, n, c0 + d_new);
    y_global_.resize(dev, n, c0 + d_new);
  } else {
    omega_global_.append_cols(dev, d_new);
    y_global_.append_cols(dev, d_new);
  }
  MatrixView new_omega = omega_global_.view().col_range(c0, d_new);
  batched::batched_fill_gaussian(ctx_, new_omega, stream_, rand_offset_);
  rand_offset_ += static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(d_new);
  MatrixView new_y = y_global_.view().col_range(c0, d_new);
  {
    // The monolithic Kblk product is itself a kernel launch over the
    // device-resident (Omega, Y) pair; the scope keeps the device heap
    // accessible for whatever engine the sampler runs.
    backend::KernelScope ks(&dev);
    sampler_.sample(new_omega, new_y);
  }
  d_total_ += d_new;
  ++stats_.sample_rounds;

  if (stats_.sample_rounds == 1) {
    // Norm estimate for the absolute threshold eps_abs = tol * ||K||: a
    // reduction kernel over the device-resident samples.
    backend::KernelScope ks(&dev);
    stats_.norm_estimate = opts_.norm_est == NormEstimate::Given
                               ? opts_.given_norm
                               : la::norm_f(new_y) / std::sqrt(static_cast<real_t>(d_new));
    H2S_CHECK(stats_.norm_estimate > 0.0, "norm estimate must be positive");
  }
}

void H2SketchBuilder::extend_yloc(index_t level, index_t c0, index_t dn) {
  // Consumer of all three pipelines: the near-field / coupling blocks
  // (entry-gen stream), the upswept samples (sample stream) and the upswept
  // random vectors (basis stream) all feed the local sample assembly below.
  ctx_.sync_all();
  const index_t leaf = tree_->leaf_level();
  const index_t nodes = tree_->nodes_at(level);
  const auto ul = static_cast<size_t>(level);
  auto& yl = yloc_[ul];

  // Row count of a node's local sample block.
  auto yloc_rows = [&](index_t i) {
    if (level == leaf) return tree_->size(level, i);
    return out_.ranks[ul + 1][static_cast<size_t>(2 * i)] +
           out_.ranks[ul + 1][static_cast<size_t>(2 * i + 1)];
  };

  {
    PhaseScope scope(stats_.phases, Phase::Misc);
    if (yl.empty()) {
      H2S_ASSERT(c0 == 0, "first Y_loc build must start at column 0");
      yl.resize(static_cast<size_t>(nodes));
      for (index_t i = 0; i < nodes; ++i)
        yl[static_cast<size_t>(i)].resize(ctx_.device(), yloc_rows(i), dn);
    } else {
      for (index_t i = 0; i < nodes; ++i)
        yl[static_cast<size_t>(i)].append_cols(ctx_.device(), dn);
    }
  }

  if (level == leaf) {
    // Y_loc = Y(I_tau, cols) - sum_b D_{tau,b} Omega(I_b, cols)   (Line 9).
    {
      PhaseScope scope(stats_.phases, Phase::Misc);
      for (index_t i = 0; i < nodes; ++i)
        ctx_.device().copy_device(
            y_global_.view().block(tree_->begin(level, i), c0, tree_->size(level, i), dn),
            yl[static_cast<size_t>(i)].view().col_range(c0, dn));
    }
    PhaseScope scope(stats_.phases, Phase::BsrGemm);
    const auto& near = out_.mtree.near_leaf;
    if (!near.empty()) {
      std::vector<ConstMatrixView> blocks, xv;
      std::vector<MatrixView> yv;
      for (index_t e = 0; e < out_.dense.count(); ++e) blocks.push_back(out_.dense.dev(e));
      for (index_t i = 0; i < nodes; ++i) {
        xv.push_back(
            omega_global_.view().block(tree_->begin(level, i), c0, tree_->size(level, i), dn));
        yv.push_back(yl[static_cast<size_t>(i)].view().col_range(c0, dn));
      }
      // Asynchronous on the sample stream: every later consumer of Y_loc
      // (min-diag probe, row ID, shrink) launches on the same stream, so
      // FIFO order stands in for a barrier.
      batched::bsr_gemm(ctx_, batched::kSampleStream, -1.0,
                        {near.row_ptr.begin(), near.row_ptr.end()},
                        {near.col.begin(), near.col.end()}, std::move(blocks), std::move(xv),
                        std::move(yv));
    }
    return;
  }

  // Inner level: stack the children's upswept samples, then subtract the
  // child-level coupling contributions (Lines 24 / 27).
  const index_t child_level = level + 1;
  const auto uc = static_cast<size_t>(child_level);
  {
    PhaseScope scope(stats_.phases, Phase::Misc);
    for (index_t i = 0; i < nodes; ++i) {
      const index_t r1 = out_.ranks[uc][static_cast<size_t>(2 * i)];
      const index_t r2 = out_.ranks[uc][static_cast<size_t>(2 * i + 1)];
      MatrixView dst = yl[static_cast<size_t>(i)].view();
      if (r1 > 0)
        ctx_.device().copy_device(y_up_[uc][static_cast<size_t>(2 * i)].view().col_range(c0, dn),
                                  dst.block(0, c0, r1, dn));
      if (r2 > 0)
        ctx_.device().copy_device(
            y_up_[uc][static_cast<size_t>(2 * i + 1)].view().col_range(c0, dn),
            dst.block(r1, c0, r2, dn));
    }
  }
  PhaseScope scope(stats_.phases, Phase::BsrGemm);
  const auto& far_child = out_.mtree.far[uc];
  if (!far_child.empty()) {
    std::vector<ConstMatrixView> blocks, xv;
    std::vector<MatrixView> yv;
    for (index_t e = 0; e < out_.coupling[uc].count(); ++e)
      blocks.push_back(out_.coupling[uc].dev(e));
    for (index_t nu = 0; nu < tree_->nodes_at(child_level); ++nu) {
      const auto un = static_cast<size_t>(nu);
      xv.push_back(omega_up_[uc][un].view().col_range(c0, dn));
      const index_t parent = nu / 2;
      const index_t r1 = out_.ranks[uc][static_cast<size_t>(2 * parent)];
      const index_t row0 = (nu % 2 == 0) ? 0 : r1;
      const index_t rn = out_.ranks[uc][un];
      yv.push_back(yl[static_cast<size_t>(parent)].view().block(row0, c0, rn, dn));
    }
    batched::bsr_gemm(ctx_, batched::kSampleStream, -1.0,
                      {far_child.row_ptr.begin(), far_child.row_ptr.end()},
                      {far_child.col.begin(), far_child.col.end()}, std::move(blocks),
                      std::move(xv), std::move(yv));
  }
}

void H2SketchBuilder::extend_upswept(index_t level, index_t c0, index_t dn) {
  PhaseScope scope(stats_.phases, Phase::Upsweep);
  const index_t leaf = tree_->leaf_level();
  const index_t nodes = tree_->nodes_at(level);
  const auto ul = static_cast<size_t>(level);

  for (index_t i = 0; i < nodes; ++i) {
    y_up_[ul][static_cast<size_t>(i)].append_cols(ctx_.device(), dn);
    omega_up_[ul][static_cast<size_t>(i)].append_cols(ctx_.device(), dn);
  }

  // y_up(:, new) = Y_loc(J, new) — batchedShrink on the new columns, on the
  // sample stream (FIFO after the Y_loc assembly), concurrent with the
  // omega_up extension on the basis stream below.
  {
    std::vector<ConstMatrixView> src;
    std::vector<MatrixView> dst;
    for (index_t i = 0; i < nodes; ++i) {
      const auto ui = static_cast<size_t>(i);
      src.push_back(yloc_[ul][ui].view().col_range(c0, dn));
      dst.push_back(y_up_[ul][ui].view().col_range(c0, dn));
    }
    batched::batched_gather_rows(ctx_, batched::kSampleStream, std::move(src), jlocal_[ul],
                                 std::move(dst));
  }

  // omega_up(:, new): U^T Omega(I, new) at the leaf, transfer products above.
  if (level == leaf) {
    std::vector<ConstMatrixView> av, bv;
    std::vector<MatrixView> cv;
    for (index_t i = 0; i < nodes; ++i) {
      const auto ui = static_cast<size_t>(i);
      av.push_back(out_.basis[ul].dev(i));
      bv.push_back(
          omega_global_.view().block(tree_->begin(level, i), c0, tree_->size(level, i), dn));
      cv.push_back(omega_up_[ul][ui].view().col_range(c0, dn));
    }
    batched::batched_gemm(ctx_, batched::kBasisStream, 1.0, std::move(av), la::Op::Trans,
                          std::move(bv), la::Op::None, 0.0, std::move(cv));
  } else {
    for (int side = 0; side < 2; ++side) {
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        const index_t k = out_.ranks[ul][ui];
        const index_t r1 = out_.ranks[ul + 1][static_cast<size_t>(2 * i)];
        const index_t rs = side == 0 ? r1 : out_.ranks[ul + 1][static_cast<size_t>(2 * i + 1)];
        const index_t row0 = side == 0 ? 0 : r1;
        if (k == 0 || rs == 0) {
          // Appended columns start zeroed; skipping equals the beta=0 case.
          av.push_back(ConstMatrixView());
          bv.push_back(ConstMatrixView());
          cv.push_back(MatrixView());
          continue;
        }
        av.push_back(out_.basis[ul].dev(i).block(row0, 0, rs, k));
        bv.push_back(omega_up_[ul + 1][static_cast<size_t>(2 * i + side)].view().col_range(c0, dn));
        cv.push_back(omega_up_[ul][ui].view().col_range(c0, dn));
      }
      batched::batched_gemm(ctx_, batched::kBasisStream, 1.0, std::move(av), la::Op::Trans,
                            std::move(bv), la::Op::None, side == 0 ? 0.0 : 1.0, std::move(cv));
    }
  }
}

void H2SketchBuilder::add_sample_round(index_t level) {
  const index_t c0 = d_total_;
  const index_t dn = opts_.sample_block;
  sample_columns(dn);
  // updateSamples (Lines 13 / 31): replay the new columns through every
  // completed level, then extend the current level's local samples.
  for (index_t l = tree_->leaf_level(); l > level; --l) {
    extend_yloc(l, c0, dn);
    extend_upswept(l, c0, dn);
  }
  extend_yloc(level, c0, dn);
}

bool H2SketchBuilder::level_converged(index_t level) {
  PhaseScope scope(stats_.phases, Phase::Convergence);
  const index_t nodes = tree_->nodes_at(level);
  const auto ul = static_cast<size_t>(level);
  // Probe on a working copy of Y_loc whose factorization persists across
  // adaptive rounds: each probe ingests only the appended sample columns
  // (bitwise identical to a from-scratch QR of the full panel), so a
  // level's probes cost O(m d^2) total instead of O(rounds m d^2).
  ctx_.sync(batched::kSampleStream); // Y_loc writers are FIFO on this stream
  if (probe_level_ != level) {
    probe_level_ = level;
    probe_cols_ = 0;
    probe_work_.clear();
    probe_work_.resize(static_cast<size_t>(nodes));
    probe_tau_.assign(static_cast<size_t>(nodes), {});
    for (index_t i = 0; i < nodes; ++i)
      probe_work_[static_cast<size_t>(i)].resize(ctx_.device(),
                                                 yloc_[ul][static_cast<size_t>(i)].rows(), 0);
  }
  const index_t c0 = probe_cols_;
  const index_t dn = d_total_ - c0;
  std::vector<MatrixView> work(static_cast<size_t>(nodes));
  std::vector<index_t> factored(static_cast<size_t>(nodes), c0);
  for (index_t i = 0; i < nodes; ++i) {
    const auto ui = static_cast<size_t>(i);
    probe_work_[ui].append_cols(ctx_.device(), dn);
    ctx_.device().copy_device(yloc_[ul][ui].view().col_range(c0, dn),
                              probe_work_[ui].view().col_range(c0, dn));
    work[ui] = probe_work_[ui].view();
  }
  std::vector<real_t> mins(static_cast<size_t>(nodes));
  batched::batched_min_r_diag_update(ctx_, work, factored, probe_tau_, mins);
  probe_cols_ = d_total_;
  // The adaptive loop's residual estimates (per-node min |R_ii| of the
  // probe) feed the process-wide sketch: long-running builders report
  // residual quantiles without storing per-node samples.
  obs::SketchMetric& residual_sketch =
      obs::MetricsRegistry::global().sketch("construction_probe_residual");
  for (index_t i = 0; i < nodes; ++i) residual_sketch.record(mins[static_cast<size_t>(i)]);
  const real_t eps = eps_abs();
  for (index_t i = 0; i < nodes; ++i) {
    const index_t m = yloc_[ul][static_cast<size_t>(i)].rows();
    // A node whose sample count reaches its row count cannot learn more.
    if (d_total_ >= m) continue;
    if (mins[static_cast<size_t>(i)] >= eps) return false;
  }
  return true;
}

} // namespace h2sketch::core::detail
