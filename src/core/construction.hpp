#pragma once

#include <memory>

#include "batched/device.hpp"
#include "core/config.hpp"
#include "core/stats.hpp"
#include "h2/h2_matrix.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/proxy_sampler.hpp"
#include "kernels/sampler.hpp"

/// \file construction.hpp
/// The paper's Algorithm 1: bottom-up, partially black-box, sketching-based
/// construction of a strongly-admissible H2 matrix, with adaptive sampling.
///
/// Inputs: a black-box sketching operator Y = Kblk(Omega), a batched entry
/// generator for sub-blocks K(I, J), and a hierarchical block partitioning
/// (cluster tree + admissibility). Output: the H2 matrix (U/E/B/D and
/// skeleton index sets) plus run statistics.
///
/// Processing runs level by level from the leaves. Per level:
///   1. form the local samples Y_loc by subtracting the already-explicit
///      blocks (dense near field at the leaves, child-level coupling above)
///      via batched BSR products;
///   2. adaptively add sample rounds until every node's Y_loc passes the
///      QR convergence probe (min |diag R| < eps_abs), sweeping new samples
///      up through the completed levels (updateSamples);
///   3. batched row-ID the samples to get the basis (U at leaves, stacked
///      transfer [E1; E2] above) and skeleton indices;
///   4. sweep samples and random vectors up (batchedShrink / batchedGemm);
///   5. evaluate the level's coupling blocks B at the skeleton indices
///      (batchedGen).

namespace h2sketch::core {

struct ConstructionResult {
  h2::H2Matrix matrix;
  ConstructionStats stats;
};

/// Run Algorithm 1 under the given execution context (Batched = GPU-shaped
/// path, Naive = per-block path; identical results either way).
ConstructionResult construct_h2(std::shared_ptr<const tree::ClusterTree> tree,
                                const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                const kern::EntryGenerator& gen, const ConstructionOptions& opts,
                                batched::ExecutionContext& ctx);

/// Convenience overload with an internal Batched context.
ConstructionResult construct_h2(std::shared_ptr<const tree::ClusterTree> tree,
                                const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                const kern::EntryGenerator& gen, const ConstructionOptions& opts);

/// Kernel-matrix entry point with selectable sampling: instantiates the
/// entry generator and a sampler of the requested kind internally
/// (H2SKETCH_SAMPLER=exact|proxy overrides `kind`). Exact is the O(N^2 d)
/// oracle; Proxy evaluates sketches at O(N d) through a proxy-point
/// surrogate. proxy_opts.tol <= 0 inherits opts.tol.
ConstructionResult construct_h2(std::shared_ptr<const tree::ClusterTree> tree,
                                const tree::Admissibility& adm,
                                const kern::KernelFunction& kernel, const ConstructionOptions& opts,
                                kern::SamplerKind kind = kern::SamplerKind::Exact,
                                kern::ProxySamplerOptions proxy_opts = {});

} // namespace h2sketch::core
