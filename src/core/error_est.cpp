#include "core/error_est.hpp"

#include <cmath>

#include "common/random.hpp"
#include "la/blas.hpp"

namespace h2sketch::core {

namespace {

/// Power iteration on v -> op(v); returns the last Rayleigh-style norm ratio.
template <typename ApplyFn>
real_t power_norm(index_t n, ApplyFn&& apply, int iters, std::uint64_t seed) {
  Matrix v(n, 1), w(n, 1);
  fill_gaussian(v.view(), GaussianStream(seed));
  real_t nv = la::norm_f(v.view());
  if (nv == 0.0) return 0.0;
  for (index_t i = 0; i < n; ++i) v(i, 0) /= nv;
  real_t lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    apply(v.view(), w.view());
    lambda = la::norm_f(w.view());
    if (lambda == 0.0) return 0.0;
    for (index_t i = 0; i < n; ++i) v(i, 0) = w(i, 0) / lambda;
  }
  return lambda;
}

} // namespace

real_t norm2_estimate(kern::MatVecSampler& a, int iters, std::uint64_t seed) {
  return power_norm(
      a.size(), [&](ConstMatrixView x, MatrixView y) { a.sample(x, y); }, iters, seed);
}

real_t relative_error_2norm(kern::MatVecSampler& a, kern::MatVecSampler& b, int iters,
                            std::uint64_t seed) {
  H2S_CHECK(a.size() == b.size(), "relative_error_2norm: size mismatch");
  const index_t n = a.size();
  Matrix tmp(n, 1);
  const real_t diff = power_norm(
      n,
      [&](ConstMatrixView x, MatrixView y) {
        a.sample(x, y);
        b.sample(x, tmp.view());
        for (index_t i = 0; i < n; ++i) y(i, 0) -= tmp(i, 0);
      },
      iters, seed);
  const real_t na = norm2_estimate(a, iters, seed + 1);
  return na == 0.0 ? diff : diff / na;
}

} // namespace h2sketch::core
