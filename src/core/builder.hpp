#pragma once

#include <vector>

#include "backend/device_matrix.hpp"
#include "common/random.hpp"
#include "core/construction.hpp"

/// \file builder.hpp
/// Internal state machine for Algorithm 1. Split across construction.cpp
/// (driver, skeletonization, entry generation) and adaptive.cpp (sampling,
/// updateSamples sweep, convergence). Not part of the public API surface,
/// but exposed for white-box tests.

namespace h2sketch::core::detail {

class H2SketchBuilder {
 public:
  H2SketchBuilder(std::shared_ptr<const tree::ClusterTree> tree, const tree::Admissibility& adm,
                  kern::MatVecSampler& sampler, const kern::EntryGenerator& gen,
                  const ConstructionOptions& opts, batched::ExecutionContext& ctx);

  ConstructionResult run();

 private:
  // --- driver phases (construction.cpp) ---
  void generate_dense_blocks();
  void skeletonize_level(index_t level);
  void generate_coupling(index_t level);
  void finalize_stats(double t0);

  // --- sampling & adaptivity (adaptive.cpp) ---
  /// Append d_new fresh columns to the global (Omega, Y) pair.
  void sample_columns(index_t d_new);
  /// Allocate/extend Y_loc at `level` and fill columns [c0, c0 + dn).
  void extend_yloc(index_t level, index_t c0, index_t dn);
  /// Extend the upswept (y_up, omega_up) of a *skeletonized* level for the
  /// new columns [c0, c0 + dn).
  void extend_upswept(index_t level, index_t c0, index_t dn);
  /// One adaptive round while processing `level`: sample, sweep through the
  /// completed levels below, extend the current level's Y_loc.
  void add_sample_round(index_t level);
  /// True iff every node at `level` passes the convergence probe.
  bool level_converged(index_t level);
  real_t eps_abs() const;

  // --- inputs ---
  std::shared_ptr<const tree::ClusterTree> tree_;
  kern::MatVecSampler& sampler_;
  const kern::EntryGenerator& gen_;
  ConstructionOptions opts_;
  batched::ExecutionContext& ctx_;

  // --- output under construction ---
  h2::H2Matrix out_;
  ConstructionStats stats_;

  // --- sketching state (device-resident: the paper keeps the sample
  // matrices on the GPU for the whole construction; host code reaches them
  // only through backend copies or inside kernel launches) ---
  GaussianStream stream_;
  std::uint64_t rand_offset_ = 0;
  backend::DeviceMatrix omega_global_; ///< N x d_total
  backend::DeviceMatrix y_global_;     ///< N x d_total
  index_t d_total_ = 0;

  /// Y_loc per level (allocated when the level is reached, retained so new
  /// sample columns can be appended at every level).
  std::vector<std::vector<backend::DeviceMatrix>> yloc_;
  /// Upswept samples/vectors per skeletonized level: rank x d_total.
  std::vector<std::vector<backend::DeviceMatrix>> y_up_, omega_up_;
  /// Skeleton row indices *local to Y_loc's rows*, per node.
  std::vector<std::vector<std::vector<index_t>>> jlocal_;
  /// Permuted position lists of each leaf cluster (iota over its range).
  std::vector<std::vector<index_t>> leaf_positions_;

  /// Incremental convergence-probe state, valid for probe_level_ only: per
  /// node a copy of Y_loc whose first probe_cols_ columns hold their
  /// Householder factorization in place (scalars in probe_tau_).
  index_t probe_level_ = -1;
  index_t probe_cols_ = 0;
  std::vector<backend::DeviceMatrix> probe_work_;
  std::vector<std::vector<real_t>> probe_tau_;

  friend class BuilderTestPeer;
};

} // namespace h2sketch::core::detail
