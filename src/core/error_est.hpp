#pragma once

#include "kernels/sampler.hpp"

/// \file error_est.hpp
/// Randomized 2-norm estimation via power iteration on black-box operators
/// (paper §V-A: "we measure the approximation relative error
/// |Kcomp - K| / |K| using a few iterations of the power method").
/// Operators are assumed symmetric, as in the paper.

namespace h2sketch::core {

/// ||A||_2 estimate by `iters` power iterations from a random start.
real_t norm2_estimate(kern::MatVecSampler& a, int iters = 20, std::uint64_t seed = 0x901);

/// ||A - B||_2 / ||A||_2 for two samplers of the same size.
real_t relative_error_2norm(kern::MatVecSampler& a, kern::MatVecSampler& b, int iters = 20,
                            std::uint64_t seed = 0x902);

} // namespace h2sketch::core
