#pragma once

#include <cstdint>

#include "common/types.hpp"

/// \file config.hpp
/// Options for the sketching-based H2 construction (Algorithm 1).

namespace h2sketch::core {

/// How the construction derives the absolute convergence/ID threshold
/// eps_abs = tol * ||K|| from the relative tolerance.
enum class NormEstimate {
  /// ||K||_F estimated from the first sketch round as ||Y||_F / sqrt(d):
  /// free (no extra matvecs) and slightly conservative.
  SketchFrobenius,
  /// Caller supplies the norm (e.g. a power-method 2-norm estimate).
  Given
};

struct ConstructionOptions {
  /// Relative compression tolerance epsilon (paper: 1e-6).
  real_t tol = 1e-6;

  /// Sample block size d: columns added per sampling round (paper Table II:
  /// equal to the leaf size, or fixed at 32).
  index_t sample_block = 64;

  /// Columns of the initial round; 0 means sample_block. The paper's Fig. 5
  /// experiments start with 256.
  index_t initial_samples = 0;

  /// Adaptive sampling on/off. When off, exactly the initial round is taken
  /// and the convergence test is skipped (the paper's fixed-sample variant,
  /// which presumes d >= r + p).
  bool adaptive = true;

  /// Hard cap on total samples (safety; the algorithm also stops adding
  /// samples for a node once d reaches the node's row count).
  index_t max_samples = 4096;

  /// Seed for the counter-based Gaussian stream.
  std::uint64_t seed = 0x5eed2025;

  NormEstimate norm_est = NormEstimate::SketchFrobenius;
  /// ||K|| when norm_est == Given.
  real_t given_norm = 0.0;

  /// Multiplier on eps_abs for the per-level ID truncation eps_l — the
  /// "simple error compensation scheme" knob discussed with Table II.
  real_t id_tol_factor = 1.0;

  index_t effective_initial_samples() const {
    return initial_samples > 0 ? initial_samples : sample_block;
  }
};

} // namespace h2sketch::core
