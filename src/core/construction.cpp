#include "core/construction.hpp"

#include <numeric>

#include "batched/batched_gemm.hpp"
#include "batched/batched_id.hpp"
#include "core/builder.hpp"
#include "la/blas.hpp"
#include "obs/metrics.hpp"

namespace h2sketch::core {

namespace detail {

H2SketchBuilder::H2SketchBuilder(std::shared_ptr<const tree::ClusterTree> tree,
                                 const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                 const kern::EntryGenerator& gen, const ConstructionOptions& opts,
                                 batched::ExecutionContext& ctx)
    : tree_(std::move(tree)), sampler_(sampler), gen_(gen), opts_(opts), ctx_(ctx),
      stream_(opts.seed) {
  H2S_CHECK(sampler_.size() == tree_->num_points(), "sampler size != tree size");
  out_.tree = tree_;
  out_.mtree = tree::MatrixTree::build(*tree_, adm);
  out_.init_structure();

  const index_t levels = tree_->num_levels();
  yloc_.resize(static_cast<size_t>(levels));
  y_up_.resize(static_cast<size_t>(levels));
  omega_up_.resize(static_cast<size_t>(levels));
  jlocal_.resize(static_cast<size_t>(levels));
  for (index_t l = 0; l < levels; ++l)
    jlocal_[static_cast<size_t>(l)].resize(static_cast<size_t>(tree_->nodes_at(l)));

  const index_t leaf = tree_->leaf_level();
  leaf_positions_.resize(static_cast<size_t>(tree_->nodes_at(leaf)));
  for (index_t i = 0; i < tree_->nodes_at(leaf); ++i) {
    auto& pos = leaf_positions_[static_cast<size_t>(i)];
    pos.resize(static_cast<size_t>(tree_->size(leaf, i)));
    std::iota(pos.begin(), pos.end(), tree_->begin(leaf, i));
  }
}

ConstructionResult H2SketchBuilder::run() {
  const double t0 = wall_seconds();
  const index_t leaf = tree_->leaf_level();

  // Enqueued on the entry-gen stream: the near-field blocks generate while
  // the initial sketch round below runs the monolithic sampler product —
  // the two inputs of Algorithm 1 are independent until the leaf sweep.
  generate_dense_blocks();

  if (out_.mtree.has_any_far()) {
    // Initial sketch round (Line 1 of Algorithm 1).
    sample_columns(opts_.effective_initial_samples());

    // Bottom-up level sweep (leaf = index L-1 ... level 1; the root carries
    // no admissible blocks). Within a level, the sample pipeline (stream 0),
    // the basis/omega pipeline (stream 1) and coupling entry generation
    // (stream 2) overlap; extend_yloc is the consumer of all three and
    // starts with the barrier.
    for (index_t l = leaf; l >= 1; --l) {
      extend_yloc(l, 0, d_total_);
      if (opts_.adaptive) {
        while (!level_converged(l)) {
          if (d_total_ + opts_.sample_block > opts_.max_samples) {
            // Cap reached: count offenders and proceed with what we have.
            ++stats_.nonconverged_nodes;
            break;
          }
          add_sample_round(l);
        }
      }
      skeletonize_level(l);
      generate_coupling(l);
    }
  }

  ctx_.sync_all();
  finalize_stats(t0);
  out_.validate();
  return ConstructionResult{std::move(out_), stats_};
}

void H2SketchBuilder::generate_dense_blocks() {
  // Marshal on this thread, generate asynchronously: the phase scope times
  // only the marshaling; the generation itself overlaps the initial
  // sampling and is charged to wall time, not the EntryGen phase.
  PhaseScope scope(stats_.phases, Phase::EntryGen);
  const index_t leaf = tree_->leaf_level();
  const auto& near = out_.mtree.near_leaf;
  // Shapes first, one device allocation for the whole near field, then the
  // generation launches write straight into the arena slots — the blocks
  // are born on the device and never cross the marshaling boundary.
  for (index_t r = 0; r < tree_->nodes_at(leaf); ++r)
    for (index_t j = 0; j < near.row_count(r); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(r)] + j;
      const index_t c = near.col[static_cast<size_t>(e)];
      out_.dense.set_shape(e, tree_->size(leaf, r), tree_->size(leaf, c));
    }
  out_.dense.allocate(ctx_.device());
  std::vector<kern::BlockRequest> reqs;
  reqs.reserve(static_cast<size_t>(near.count()));
  for (index_t r = 0; r < tree_->nodes_at(leaf); ++r)
    for (index_t j = 0; j < near.row_count(r); ++j) {
      const index_t e = near.row_ptr[static_cast<size_t>(r)] + j;
      const index_t c = near.col[static_cast<size_t>(e)];
      reqs.push_back({leaf_positions_[static_cast<size_t>(r)],
                      leaf_positions_[static_cast<size_t>(c)], out_.dense.dev(e)});
    }
  kern::batched_generate(ctx_, batched::kEntryGenStream, gen_, std::move(reqs));
}

void H2SketchBuilder::skeletonize_level(index_t level) {
  const index_t nodes = tree_->nodes_at(level);
  const index_t leaf = tree_->leaf_level();
  const auto ul = static_cast<size_t>(level);

  // Batched row ID of the level's samples (Lines 16 / 34).
  std::vector<la::RowID> ids(static_cast<size_t>(nodes));
  {
    PhaseScope scope(stats_.phases, Phase::ID);
    std::vector<ConstMatrixView> ys;
    ys.reserve(static_cast<size_t>(nodes));
    for (index_t i = 0; i < nodes; ++i)
      ys.push_back(yloc_[ul][static_cast<size_t>(i)].view());
    batched::batched_row_id(ctx_, ys, opts_.id_tol_factor * eps_abs(), /*max_rank=*/-1, ids);
  }

  // Store bases / transfers, ranks, skeleton index sets.
  {
    PhaseScope scope(stats_.phases, Phase::Misc);
    obs::SketchMetric& rank_sketch =
        obs::MetricsRegistry::global().sketch("construction_block_rank");
    for (index_t i = 0; i < nodes; ++i) {
      const auto ui = static_cast<size_t>(i);
      la::RowID& id = ids[ui];
      const index_t k = static_cast<index_t>(id.skeleton.size());
      out_.ranks[ul][ui] = k;
      rank_sketch.record(static_cast<double>(k));
      out_.basis[ul].set_shape(i, id.interp.rows(), id.interp.cols());
      jlocal_[ul][ui] = id.skeleton;

      auto& skel = out_.skeleton[ul][ui];
      skel.resize(static_cast<size_t>(k));
      if (level == leaf) {
        const index_t b = tree_->begin(level, i);
        for (index_t s = 0; s < k; ++s) skel[static_cast<size_t>(s)] = b + id.skeleton[static_cast<size_t>(s)];
      } else {
        // Stacked child skeletons [I_nu1, I_nu2]; J selects rows of the stack.
        const auto& s1 = out_.skeleton[ul + 1][static_cast<size_t>(2 * i)];
        const auto& s2 = out_.skeleton[ul + 1][static_cast<size_t>(2 * i + 1)];
        const index_t r1 = static_cast<index_t>(s1.size());
        for (index_t s = 0; s < k; ++s) {
          const index_t j = id.skeleton[static_cast<size_t>(s)];
          skel[static_cast<size_t>(s)] =
              j < r1 ? s1[static_cast<size_t>(j)] : s2[static_cast<size_t>(j - r1)];
        }
      }
    }
    // One packed device allocation for the level's bases/transfers; the ID
    // interpolants are the only operands produced host-side, so this upload
    // is the once-per-build operand traffic the steady state amortizes.
    out_.basis[ul].allocate(ctx_.device());
    for (index_t i = 0; i < nodes; ++i)
      out_.basis[ul].upload(i, ids[static_cast<size_t>(i)].interp.view());
  }

  // Upsweep samples (batchedShrink, Lines 17 / 35): y_up = Y_loc(J, :), on
  // the sample stream — and, concurrently on the basis stream, the upsweep
  // of the random vectors (batchedGemm, Lines 18 / 36). The two pipelines
  // touch disjoint state (y_up vs omega_up); extend_yloc of the next level
  // is their common consumer and syncs before reading.
  {
    PhaseScope scope(stats_.phases, Phase::Upsweep);
    auto& yup = y_up_[ul];
    yup.resize(static_cast<size_t>(nodes));
    std::vector<ConstMatrixView> src;
    std::vector<MatrixView> dst;
    for (index_t i = 0; i < nodes; ++i) {
      const auto ui = static_cast<size_t>(i);
      yup[ui].resize(ctx_.device(), out_.ranks[ul][ui], d_total_);
      src.push_back(yloc_[ul][ui].view());
      dst.push_back(yup[ui].view());
    }
    batched::batched_gather_rows(ctx_, batched::kSampleStream, std::move(src), jlocal_[ul],
                                 std::move(dst));

    auto& oup = omega_up_[ul];
    oup.resize(static_cast<size_t>(nodes));
    for (index_t i = 0; i < nodes; ++i)
      oup[static_cast<size_t>(i)].resize(ctx_.device(), out_.ranks[ul][static_cast<size_t>(i)],
                                         d_total_);
    if (level == leaf) {
      // omega_up = U^T Omega(I_tau, :).
      std::vector<ConstMatrixView> av, bv;
      std::vector<MatrixView> cv;
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        av.push_back(out_.basis[ul].dev(i));
        bv.push_back(omega_global_.view().row_range(tree_->begin(level, i), tree_->size(level, i)));
        cv.push_back(oup[ui].view());
      }
      batched::batched_gemm(ctx_, batched::kBasisStream, 1.0, std::move(av), la::Op::Trans,
                            std::move(bv), la::Op::None, 0.0, std::move(cv));
    } else {
      // omega_up = E1^T omega_up_nu1 + E2^T omega_up_nu2. Both half-launches
      // go to the basis stream: FIFO order makes the side-1 accumulation
      // (beta = 1) safe without a barrier.
      for (int side = 0; side < 2; ++side) {
        std::vector<ConstMatrixView> av, bv;
        std::vector<MatrixView> cv;
        for (index_t i = 0; i < nodes; ++i) {
          const auto ui = static_cast<size_t>(i);
          const index_t k = out_.ranks[ul][ui];
          const index_t r1 = out_.ranks[ul + 1][static_cast<size_t>(2 * i)];
          const index_t rs = side == 0 ? r1 : out_.ranks[ul + 1][static_cast<size_t>(2 * i + 1)];
          const index_t row0 = side == 0 ? 0 : r1;
          if (k == 0 || rs == 0) {
            // No contribution from this side; omega_up starts zeroed, so
            // skipping is equivalent to the beta=0 overwrite.
            av.push_back(ConstMatrixView());
            bv.push_back(ConstMatrixView());
            cv.push_back(MatrixView());
            continue;
          }
          av.push_back(out_.basis[ul].dev(i).block(row0, 0, rs, k));
          bv.push_back(omega_up_[ul + 1][static_cast<size_t>(2 * i + side)].view());
          cv.push_back(oup[ui].view());
        }
        batched::batched_gemm(ctx_, batched::kBasisStream, 1.0, std::move(av), la::Op::Trans,
                              std::move(bv), la::Op::None, side == 0 ? 0.0 : 1.0, std::move(cv));
      }
    }
  }
}

void H2SketchBuilder::generate_coupling(index_t level) {
  PhaseScope scope(stats_.phases, Phase::EntryGen);
  const auto ul = static_cast<size_t>(level);
  const auto& far = out_.mtree.far[ul];
  if (far.empty()) return;
  // Coupling blocks are generated directly into the level's packed arena.
  for (index_t r = 0; r < tree_->nodes_at(level); ++r)
    for (index_t j = 0; j < far.row_count(r); ++j) {
      const index_t e = far.row_ptr[static_cast<size_t>(r)] + j;
      const index_t c = far.col[static_cast<size_t>(e)];
      out_.coupling[ul].set_shape(
          e, static_cast<index_t>(out_.skeleton[ul][static_cast<size_t>(r)].size()),
          static_cast<index_t>(out_.skeleton[ul][static_cast<size_t>(c)].size()));
    }
  out_.coupling[ul].allocate(ctx_.device());
  std::vector<kern::BlockRequest> reqs;
  reqs.reserve(static_cast<size_t>(far.count()));
  for (index_t r = 0; r < tree_->nodes_at(level); ++r) {
    for (index_t j = 0; j < far.row_count(r); ++j) {
      const index_t e = far.row_ptr[static_cast<size_t>(r)] + j;
      const index_t c = far.col[static_cast<size_t>(e)];
      const auto& rs = out_.skeleton[ul][static_cast<size_t>(r)];
      const auto& cs = out_.skeleton[ul][static_cast<size_t>(c)];
      reqs.push_back({rs, cs, out_.coupling[ul].dev(e)});
    }
  }
  // Asynchronous: coupling generation overlaps the level's upsweep launches
  // (and, for the last level, nothing waits until the final sync_all). The
  // skeleton index sets referenced by the requests are stable members.
  kern::batched_generate(ctx_, batched::kEntryGenStream, gen_, std::move(reqs));
}

void H2SketchBuilder::finalize_stats(double t0) {
  stats_.total_seconds = wall_seconds() - t0;
  stats_.total_samples = d_total_;
  stats_.kernel_launches = ctx_.kernel_launches();
  stats_.entries_generated = gen_.entries_generated();
  stats_.min_rank = out_.min_rank();
  stats_.max_rank = out_.max_rank();
  stats_.levels = tree_->num_levels();
  stats_.max_rank_per_level.assign(static_cast<size_t>(tree_->num_levels()), 0);
  for (index_t l = 0; l < tree_->num_levels(); ++l)
    for (index_t i = 0; i < tree_->nodes_at(l); ++i)
      stats_.max_rank_per_level[static_cast<size_t>(l)] =
          std::max(stats_.max_rank_per_level[static_cast<size_t>(l)], out_.rank(l, i));
  stats_.memory_bytes = out_.memory_bytes();
  stats_.csp = out_.mtree.csp();

  // Construction stats join the process-wide snapshot (ROADMAP item 4):
  // launch counts sit next to the serve/fault counters, and the rank and
  // residual sketches recorded along the way summarize per-block behavior.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("construction_runs").add();
  reg.counter("construction_kernel_launches").add(
      static_cast<std::uint64_t>(stats_.kernel_launches));
  reg.counter("construction_samples").add(static_cast<std::uint64_t>(stats_.total_samples));
  reg.counter("construction_nonconverged_nodes")
      .add(static_cast<std::uint64_t>(stats_.nonconverged_nodes));
}

} // namespace detail

ConstructionResult construct_h2(std::shared_ptr<const tree::ClusterTree> tree,
                                const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                const kern::EntryGenerator& gen, const ConstructionOptions& opts,
                                batched::ExecutionContext& ctx) {
  detail::H2SketchBuilder builder(std::move(tree), adm, sampler, gen, opts, ctx);
  return builder.run();
}

ConstructionResult construct_h2(std::shared_ptr<const tree::ClusterTree> tree,
                                const tree::Admissibility& adm, kern::MatVecSampler& sampler,
                                const kern::EntryGenerator& gen, const ConstructionOptions& opts) {
  batched::ExecutionContext ctx(batched::Backend::Batched);
  return construct_h2(std::move(tree), adm, sampler, gen, opts, ctx);
}

ConstructionResult construct_h2(std::shared_ptr<const tree::ClusterTree> tree,
                                const tree::Admissibility& adm,
                                const kern::KernelFunction& kernel, const ConstructionOptions& opts,
                                kern::SamplerKind kind, kern::ProxySamplerOptions proxy_opts) {
  if (proxy_opts.tol <= 0) proxy_opts.tol = opts.tol;
  const kern::KernelEntryGenerator gen(*tree, kernel);
  auto sampler =
      kern::make_kernel_sampler(kern::sampler_kind_from_env(kind), tree, kernel, proxy_opts);
  return construct_h2(std::move(tree), adm, *sampler, gen, opts);
}

} // namespace h2sketch::core
