#include "core/stats.hpp"

#include <sstream>

namespace h2sketch::core {

std::string ConstructionStats::summary() const {
  std::ostringstream os;
  os << "time " << total_seconds << " s, samples " << total_samples << " (" << sample_rounds
     << " rounds), ranks [" << min_rank << ", " << max_rank << "], memory "
     << static_cast<double>(memory_bytes) / (1024.0 * 1024.0) << " MiB, launches "
     << kernel_launches << ", entries " << entries_generated << ", Csp " << csp << ", levels "
     << levels;
  if (nonconverged_nodes > 0) os << ", NONCONVERGED nodes " << nonconverged_nodes;
  os << "\nphases:";
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p)
    os << " " << phase_name(static_cast<Phase>(p)) << "=" << phases.seconds(static_cast<Phase>(p))
       << "s";
  return os.str();
}

} // namespace h2sketch::core
