#pragma once

#include <string>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"

/// \file stats.hpp
/// Statistics gathered during a construction run: everything the paper's
/// evaluation section reports (time, phase breakdown for Fig. 7, total
/// samples for Fig. 5's annotations, rank range and memory for Table II,
/// kernel-launch counts for the batching analysis in §IV-B).

namespace h2sketch::core {

struct ConstructionStats {
  double total_seconds = 0.0;
  PhaseProfiler phases;

  index_t total_samples = 0;  ///< columns pushed through Kblk
  index_t sample_rounds = 0;  ///< sampling rounds (1 = fixed-sample behaviour)
  index_t kernel_launches = 0;
  index_t entries_generated = 0; ///< matrix entries evaluated by batchedGen

  index_t min_rank = 0;
  index_t max_rank = 0;
  std::vector<index_t> max_rank_per_level;

  std::size_t memory_bytes = 0;
  real_t norm_estimate = 0.0;
  index_t csp = 0;
  index_t levels = 0;
  /// Nodes that hit the sample cap before meeting the tolerance (0 in a
  /// healthy run).
  index_t nonconverged_nodes = 0;

  /// Multi-line human-readable summary.
  std::string summary() const;
};

} // namespace h2sketch::core
