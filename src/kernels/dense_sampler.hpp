#pragma once

#include "kernels/entry_gen.hpp"
#include "kernels/sampler.hpp"

/// \file dense_sampler.hpp
/// O(N^2)-cost samplers: an explicit dense matrix (the paper's frontal-
/// matrix setting, where "the sketching operator is a full N x N matrix")
/// and an on-the-fly kernel-matrix product that avoids N^2 storage. Both
/// serve as ground-truth oracles in tests.

namespace h2sketch::kern {

/// Sampler over an explicit dense (permuted) matrix.
class DenseMatrixSampler final : public MatVecSampler {
 public:
  /// The view must outlive the sampler.
  explicit DenseMatrixSampler(ConstMatrixView a) : a_(a) {
    H2S_CHECK(a.rows == a.cols, "DenseMatrixSampler expects a square matrix");
  }

  index_t size() const override { return a_.rows; }
  void sample(ConstMatrixView omega, MatrixView y) override;

 private:
  ConstMatrixView a_;
};

/// Sampler that evaluates kernel rows on the fly: O(N^2 d) time, O(N) extra
/// memory. Useful as an exact oracle at sizes where storing K is wasteful.
class KernelMatVecSampler final : public MatVecSampler {
 public:
  KernelMatVecSampler(const tree::ClusterTree& tree, const KernelFunction& kernel);

  index_t size() const override { return n_; }
  void sample(ConstMatrixView omega, MatrixView y) override;

 private:
  KernelEntryGenerator gen_;
  index_t n_;
  /// 0..n_-1, built once: the full span is the column set of every strip and
  /// sub-spans of it are the row sets, so no strip rebuilds an iota vector.
  std::vector<index_t> iota_;
};

} // namespace h2sketch::kern
