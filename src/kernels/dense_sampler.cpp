#include "kernels/dense_sampler.hpp"

#include <memory>
#include <numeric>

#include "common/parallel.hpp"
#include "la/blas.hpp"

namespace h2sketch::kern {

void DenseMatrixSampler::sample(ConstMatrixView omega, MatrixView y) {
  H2S_CHECK(omega.rows == a_.rows && y.rows == a_.rows && omega.cols == y.cols,
            "DenseMatrixSampler: shape mismatch");
  // The single biggest serial hotspot of a construction run: one monolithic
  // N x N by N x d product per sample round. Batched launches cannot
  // subdivide it, so it takes the intra-op parallel engine path.
  la::gemm_parallel(1.0, a_, la::Op::None, omega, la::Op::None, 0.0, y);
  record_samples(omega.cols);
}

KernelMatVecSampler::KernelMatVecSampler(const tree::ClusterTree& tree,
                                         const KernelFunction& kernel)
    : gen_(tree, kernel), n_(tree.num_points()), iota_(static_cast<size_t>(n_)) {
  std::iota(iota_.begin(), iota_.end(), index_t{0});
}

void KernelMatVecSampler::sample(ConstMatrixView omega, MatrixView y) {
  H2S_CHECK(omega.rows == n_ && y.rows == n_ && omega.cols == y.cols,
            "KernelMatVecSampler: shape mismatch");
  // Evaluate one block-row strip at a time to bound extra memory. Row and
  // column index sets are sub-spans of the precomputed iota_.
  const index_t strip = 256;
  const const_index_span all_cols(iota_);
  const index_t num_strips = (n_ + strip - 1) / strip;

  if (runtime_mode() == RuntimeMode::FlatOpenMP || ThreadPool::global().width() <= 1) {
    // Baseline / single-lane path: serial strip loop, one reused buffer
    // sized to the widest strip actually taken.
    Matrix row_block(std::min(strip, n_), n_);
    for (index_t r0 = 0; r0 < n_; r0 += strip) {
      const index_t m = std::min(strip, n_ - r0);
      MatrixView rb = row_block.view().block(0, 0, m, n_);
      gen_.generate_block(all_cols.subspan(static_cast<size_t>(r0), static_cast<size_t>(m)),
                          all_cols, rb);
      la::gemm(1.0, rb, la::Op::None, omega, la::Op::None, 0.0, y.row_range(r0, m));
    }
  } else {
    // Strips are independent (disjoint y rows) and each does identical
    // per-strip arithmetic, so running them on the pool keeps the result
    // bitwise equal to the serial loop while both the kernel evaluation
    // and the per-strip gemm scale with cores.
    ThreadPool::global().parallel_for(num_strips, [&](index_t s) {
      const index_t r0 = s * strip;
      const index_t m = std::min(strip, n_ - r0);
      // Uninitialized scratch: generate_block overwrites every entry, and a
      // zeroing Matrix here would memset strip*N doubles per strip per
      // round — measurable against the generation itself.
      std::unique_ptr<real_t[]> buf(new real_t[static_cast<size_t>(m) * static_cast<size_t>(n_)]);
      MatrixView rb(buf.get(), m, n_, m);
      gen_.generate_block(all_cols.subspan(static_cast<size_t>(r0), static_cast<size_t>(m)),
                          all_cols, rb);
      la::gemm(1.0, rb, la::Op::None, omega, la::Op::None, 0.0, y.row_range(r0, m));
    });
  }
  record_samples(omega.cols);
}

} // namespace h2sketch::kern
