#include "kernels/dense_sampler.hpp"

#include <numeric>

#include "la/blas.hpp"

namespace h2sketch::kern {

void DenseMatrixSampler::sample(ConstMatrixView omega, MatrixView y) {
  H2S_CHECK(omega.rows == a_.rows && y.rows == a_.rows && omega.cols == y.cols,
            "DenseMatrixSampler: shape mismatch");
  la::gemm(1.0, a_, la::Op::None, omega, la::Op::None, 0.0, y);
  record_samples(omega.cols);
}

void KernelMatVecSampler::sample(ConstMatrixView omega, MatrixView y) {
  H2S_CHECK(omega.rows == n_ && y.rows == n_ && omega.cols == y.cols,
            "KernelMatVecSampler: shape mismatch");
  // Evaluate one block-row strip at a time to bound extra memory.
  const index_t strip = 256;
  std::vector<index_t> all_cols(static_cast<size_t>(n_));
  std::iota(all_cols.begin(), all_cols.end(), index_t{0});
  Matrix row_block(strip, n_);
  for (index_t r0 = 0; r0 < n_; r0 += strip) {
    const index_t m = std::min(strip, n_ - r0);
    std::vector<index_t> rows(static_cast<size_t>(m));
    std::iota(rows.begin(), rows.end(), r0);
    MatrixView rb = row_block.view().block(0, 0, m, n_);
    gen_.generate_block(rows, all_cols, rb);
    la::gemm(1.0, rb, la::Op::None, omega, la::Op::None, 0.0, y.row_range(r0, m));
  }
  record_samples(omega.cols);
}

} // namespace h2sketch::kern
