#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"

/// \file kernel.hpp
/// Kernel function interface: K(x, y) for point pairs. Implementations back
/// the paper's test problems (exponential covariance Eq. (8), Helmholtz
/// volume-IE Eq. (9)) plus extras used by tests and the synthetic frontal
/// matrices.

namespace h2sketch::kern {

/// A translation-invariant (or general) kernel evaluated on coordinate
/// tuples of dimension `dim`.
class KernelFunction {
 public:
  virtual ~KernelFunction() = default;

  /// K(x, y); x and y point to `dim` coordinates each.
  virtual real_t evaluate(const real_t* x, const real_t* y, index_t dim) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

} // namespace h2sketch::kern
