#pragma once

#include <memory>

#include "batched/device.hpp"
#include "h2/h2_matrix.hpp"
#include "kernels/kernel.hpp"
#include "kernels/sampler.hpp"

/// \file proxy_sampler.hpp
/// Proxy-point sketching operator: an O(N)-per-column replacement for the
/// O(N^2)-per-column exact samplers (`DenseMatrixSampler`,
/// `KernelMatVecSampler`) feeding Algorithm 1.
///
/// At setup, a deterministic surrogate H2 representation K~ of the kernel
/// matrix is built without ever sampling K: per cluster-tree node, proxy
/// points are laid out on concentric shells of an annulus enclosing the node
/// (inner radius just inside the admissibility gap of Eq. (1), outer radius
/// covering the domain — the proxy-surface idea of H2Pack and nested cross
/// approximation), the kernel-to-proxy panel K(I, P) is generated through
/// the batched entry generator on ExecutionContext streams, and a batched
/// row ID of the panel yields the node basis and skeleton. Transfers nest
/// through stacked child skeletons exactly as in the sketching construction;
/// coupling and near-field blocks are exact kernel entries. `sample` then
/// evaluates Y = K~ * Omega through the O(N) H2 matvec: near field exact,
/// far field proxy-compressed.
///
/// The surrogate is an approximation, so the construction driven by it
/// inherits its error floor — the exact samplers remain the oracle; the
/// accuracy contract is validated by the proxy-vs-exact agreement suite.

namespace h2sketch::kern {

/// Geometry/compression knobs for the surrogate build.
struct ProxySamplerOptions {
  /// Surrogate compression tolerance. <= 0 means "inherit": the kernel-
  /// convenience construction entry points substitute their own tol; a
  /// standalone ProxyMatVecSampler falls back to 1e-6.
  real_t tol = 0.0;

  /// Admissibility parameter of the *surrogate's* block structure (always
  /// the general condition — proxy surfaces require separated far fields,
  /// so even an HSS outer build sketches a strongly-admissible surrogate).
  /// 1.0 balances the uncompressed near field (the dominant sample() cost:
  /// at 0.7 a 2D leaf keeps ~28 near neighbors vs ~12 at 1.0, tripling the
  /// matvec) against proxy rank; beyond ~1.4 the closer annuli push the
  /// surrogate error past the tolerance scale and the adaptive loop pays
  /// it back in extra sample rounds.
  real_t eta = 1.0;

  /// Proxy points per shell; 0 derives it from tol and dimension
  /// (3D: 6 q^2 points on a Fibonacci sphere with q = ceil(-log10 tol)
  /// clamped to [4, 10]; 2D: max(8 q, 24) on a circle; 1D: 2).
  index_t points_per_shell = 0;

  /// Concentric shells per node between the inner annulus radius and the
  /// enclosing-domain radius. Three shells hold the surrogate error at the
  /// tolerance scale; two halve the setup cost at ~10x the error.
  index_t num_shells = 3;

  /// Inner shell radius = node half-diameter + this fraction of the
  /// admissibility gap diameter/eta; < 1 keeps the first shell strictly
  /// inside the buffer zone no admissible source can enter.
  real_t inner_gap_fraction = 0.5;

  /// Rank cap per node ID (-1 unbounded).
  index_t max_rank = -1;

  /// Multiplier on the ID truncation threshold, mirroring
  /// ConstructionOptions::id_tol_factor. The default leaves headroom below
  /// tol so per-level ID truncation does not accumulate past it.
  real_t id_tol_factor = 0.1;
};

/// Black-box sampler whose sample() costs O(N d) instead of O(N^2 d).
class ProxyMatVecSampler final : public MatVecSampler {
 public:
  /// Build the surrogate under an internal batched context. The tree and
  /// kernel must outlive the sampler.
  ProxyMatVecSampler(std::shared_ptr<const tree::ClusterTree> tree, const KernelFunction& kernel,
                     const ProxySamplerOptions& opts = {});

  /// Build the surrogate under the caller's context (sampling still runs on
  /// the sampler's own context, like H2Sampler).
  ProxyMatVecSampler(std::shared_ptr<const tree::ClusterTree> tree, const KernelFunction& kernel,
                     const ProxySamplerOptions& opts, batched::ExecutionContext& build_ctx);

  index_t size() const override;
  void sample(ConstMatrixView omega, MatrixView y) override;

  /// The surrogate operator (inspection/tests).
  const h2::H2Matrix& surrogate() const { return surrogate_; }

  /// Setup cost accounting.
  double build_seconds() const { return build_seconds_; }
  index_t proxy_points_used() const { return proxy_points_; }
  index_t entries_generated() const { return entries_generated_; }

 private:
  void build(const KernelFunction& kernel, ProxySamplerOptions opts,
             batched::ExecutionContext& ctx);

  std::shared_ptr<const tree::ClusterTree> tree_;
  h2::H2Matrix surrogate_;
  /// Matvec context for sample(), created after the build so it binds to
  /// the device the surrogate's arenas actually live on (the build
  /// context's backend, which may differ from the process default).
  std::unique_ptr<batched::ExecutionContext> ctx_;
  double build_seconds_ = 0.0;
  index_t proxy_points_ = 0;
  index_t entries_generated_ = 0;
};

/// Which sampler the kernel-convenience construction entry points build.
enum class SamplerKind {
  Exact, ///< KernelMatVecSampler: O(N^2 d), the oracle
  Proxy  ///< ProxyMatVecSampler: O(N d) via the surrogate
};

/// Sampler selection from the environment: H2SKETCH_SAMPLER = "exact" or
/// "proxy" overrides `fallback`; unset or unrecognized keeps it.
SamplerKind sampler_kind_from_env(SamplerKind fallback = SamplerKind::Exact);

/// Factory for a kernel-matrix sampler of the requested kind. `proxy_opts`
/// is consulted only for SamplerKind::Proxy.
std::unique_ptr<MatVecSampler> make_kernel_sampler(
    SamplerKind kind, std::shared_ptr<const tree::ClusterTree> tree, const KernelFunction& kernel,
    const ProxySamplerOptions& proxy_opts = {});

} // namespace h2sketch::kern
