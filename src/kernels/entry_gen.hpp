#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "backend/fwd.hpp"
#include "common/matrix.hpp"
#include "kernels/kernel.hpp"
#include "tree/cluster_tree.hpp"

/// \file entry_gen.hpp
/// Batched entry generation (the paper's batchedGen, §IV-A): the second
/// input to the construction algorithm, a function that evaluates a *batch*
/// of sub-blocks K(I, J) with a single kernel launch. All index sets are in
/// the cluster tree's permuted position space.

namespace h2sketch::kern {

/// One block to evaluate: out = K(rows, cols).
struct BlockRequest {
  const_index_span rows;
  const_index_span cols;
  MatrixView out;
};

/// Interface for evaluating arbitrary sub-blocks of the (permuted) matrix.
class EntryGenerator {
 public:
  virtual ~EntryGenerator() = default;

  /// Fill out(i, j) = K(rows[i], cols[j]).
  virtual void generate_block(const_index_span rows, const_index_span cols,
                              MatrixView out) const = 0;

  /// Number of entries generated so far (for cost reporting). Thread-safe:
  /// blocks are generated concurrently inside batched launches.
  index_t entries_generated() const { return entries_.load(std::memory_order_relaxed); }

 protected:
  void record_entries(index_t n) const { entries_.fetch_add(n, std::memory_order_relaxed); }
  mutable std::atomic<index_t> entries_{0};
};

/// Evaluate all requested blocks in one launch (the batched mode) or one
/// launch per block (naive mode), per the context's backend. Stream form:
/// the request vector is moved into the launch; the index sets and output
/// buffers it references must stay alive until the stream is synced.
void batched_generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                      const EntryGenerator& gen, std::vector<BlockRequest> requests);

/// Synchronous form: completed on return.
void batched_generate(batched::ExecutionContext& ctx, const EntryGenerator& gen,
                      std::span<const BlockRequest> requests);

/// Entry generator for a kernel matrix on clustered geometry:
/// K(i, j) = kernel(points[perm[i]], points[perm[j]]).
/// Caches permuted coordinates contiguously for locality.
class KernelEntryGenerator final : public EntryGenerator {
 public:
  KernelEntryGenerator(const tree::ClusterTree& tree, const KernelFunction& kernel);

  void generate_block(const_index_span rows, const_index_span cols, MatrixView out) const override;

 private:
  const KernelFunction* kernel_;
  index_t dim_;
  std::vector<real_t> coords_; ///< permuted-position-major coordinates
};

/// Entry generator reading from an explicit dense matrix (already permuted):
/// used for frontal matrices and as a test oracle.
class DenseEntryGenerator final : public EntryGenerator {
 public:
  explicit DenseEntryGenerator(ConstMatrixView a) : a_(a) {}

  void generate_block(const_index_span rows, const_index_span cols, MatrixView out) const override;

 private:
  ConstMatrixView a_;
};

} // namespace h2sketch::kern
