#pragma once

#include <atomic>

#include "common/matrix.hpp"

/// \file sampler.hpp
/// The black-box sketching operator interface (the paper's Kblk): given a
/// random matrix Omega (N x d), produce Y = K * Omega. The construction
/// algorithm sees nothing of K beyond this and the entry generator.

namespace h2sketch::kern {

class MatVecSampler {
 public:
  virtual ~MatVecSampler() = default;

  /// Matrix dimension N.
  virtual index_t size() const = 0;

  /// y = K * omega (omega is N x d, y is N x d). Implementations must accept
  /// any d >= 1; repeated calls accumulate the sample count.
  virtual void sample(ConstMatrixView omega, MatrixView y) = 0;

  /// Total random vectors pushed through the operator so far — the
  /// "total samples" statistic the paper annotates in Fig. 5. Thread-safe:
  /// samplers are invoked from stream launches and pool workers, so
  /// concurrent sketch rounds may record at once.
  index_t samples_taken() const { return samples_.load(std::memory_order_relaxed); }
  void reset_sample_count() { samples_.store(0, std::memory_order_relaxed); }

 protected:
  void record_samples(index_t d) { samples_.fetch_add(d, std::memory_order_relaxed); }
  std::atomic<index_t> samples_{0};
};

} // namespace h2sketch::kern
