#include "kernels/entry_gen.hpp"

#include "batched/device.hpp"
#include "obs/trace.hpp"

namespace h2sketch::kern {

void batched_generate(batched::ExecutionContext& ctx, batched::StreamId stream,
                      const EntryGenerator& gen, std::vector<BlockRequest> requests) {
  obs::ScopedLaunchLabel label("batched_generate");
  obs::TraceSpan span("backend", "batched_generate", "batch", requests.size());
  ctx.device().generate(ctx, stream, gen, std::move(requests));
}

void batched_generate(batched::ExecutionContext& ctx, const EntryGenerator& gen,
                      std::span<const BlockRequest> requests) {
  batched_generate(ctx, batched::kSampleStream, gen, {requests.begin(), requests.end()});
  ctx.sync(batched::kSampleStream);
}

KernelEntryGenerator::KernelEntryGenerator(const tree::ClusterTree& tree,
                                           const KernelFunction& kernel)
    : kernel_(&kernel), dim_(tree.dim()) {
  const index_t n = tree.num_points();
  coords_.resize(static_cast<size_t>(n * dim_));
  for (index_t p = 0; p < n; ++p)
    for (index_t d = 0; d < dim_; ++d)
      coords_[static_cast<size_t>(p * dim_ + d)] = tree.coord_permuted(p, d);
}

void KernelEntryGenerator::generate_block(const_index_span rows, const_index_span cols,
                                          MatrixView out) const {
  H2S_CHECK(out.rows == static_cast<index_t>(rows.size()) &&
                out.cols == static_cast<index_t>(cols.size()),
            "generate_block: shape mismatch");
  for (index_t j = 0; j < out.cols; ++j) {
    const real_t* yc = &coords_[static_cast<size_t>(cols[static_cast<size_t>(j)] * dim_)];
    for (index_t i = 0; i < out.rows; ++i) {
      const real_t* xc = &coords_[static_cast<size_t>(rows[static_cast<size_t>(i)] * dim_)];
      out(i, j) = kernel_->evaluate(xc, yc, dim_);
    }
  }
  record_entries(out.rows * out.cols);
}

void DenseEntryGenerator::generate_block(const_index_span rows, const_index_span cols,
                                         MatrixView out) const {
  H2S_CHECK(out.rows == static_cast<index_t>(rows.size()) &&
                out.cols == static_cast<index_t>(cols.size()),
            "generate_block: shape mismatch");
  gather_block(a_, rows, cols, out);
  record_entries(out.rows * out.cols);
}

} // namespace h2sketch::kern
