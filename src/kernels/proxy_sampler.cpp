#include "kernels/proxy_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <numeric>
#include <vector>

#include "backend/device_matrix.hpp"
#include "batched/batched_id.hpp"
#include "common/timer.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "la/blas.hpp"
#include "tree/admissibility.hpp"

namespace h2sketch::kern {

namespace {

/// Entry generator over the cluster points *extended by proxy points*:
/// indices < N address permuted cluster positions (so skeleton/leaf index
/// sets work unchanged), indices >= N address proxy points appended with
/// add_point. All proxy points are appended before the first generate call,
/// so the coordinate table is stable across launches.
class ProxyEntryGenerator final : public EntryGenerator {
 public:
  ProxyEntryGenerator(const tree::ClusterTree& tree, const KernelFunction& kernel)
      : kernel_(&kernel), dim_(tree.dim()), n_(tree.num_points()) {
    coords_.resize(static_cast<size_t>(n_ * dim_));
    for (index_t p = 0; p < n_; ++p)
      for (index_t d = 0; d < dim_; ++d)
        coords_[static_cast<size_t>(p * dim_ + d)] = tree.coord_permuted(p, d);
  }

  /// Append a proxy point; returns its extended index (>= N).
  index_t add_point(const real_t* x) {
    for (index_t d = 0; d < dim_; ++d) coords_.push_back(x[d]);
    return n_ + num_proxy_++;
  }

  index_t num_proxy() const { return num_proxy_; }

  void generate_block(const_index_span rows, const_index_span cols,
                      MatrixView out) const override {
    H2S_CHECK(out.rows == static_cast<index_t>(rows.size()) &&
                  out.cols == static_cast<index_t>(cols.size()),
              "generate_block: shape mismatch");
    for (index_t j = 0; j < out.cols; ++j) {
      const real_t* yc = &coords_[static_cast<size_t>(cols[static_cast<size_t>(j)] * dim_)];
      for (index_t i = 0; i < out.rows; ++i) {
        const real_t* xc = &coords_[static_cast<size_t>(rows[static_cast<size_t>(i)] * dim_)];
        out(i, j) = kernel_->evaluate(xc, yc, dim_);
      }
    }
    record_entries(out.rows * out.cols);
  }

 private:
  const KernelFunction* kernel_;
  index_t dim_;
  index_t n_;
  index_t num_proxy_ = 0;
  std::vector<real_t> coords_; ///< cluster coords then proxy coords, point-major
};

/// Proxy count per shell for a given tolerance and dimension: H2Pack's
/// surface-density heuristic (6 q^2 on a sphere with q decimal digits of
/// tolerance), reduced for lower dimensions.
index_t auto_points_per_shell(real_t tol, index_t dim) {
  const real_t digits = -std::log10(std::max(tol, real_t(1e-15)));
  const index_t q = std::clamp<index_t>(static_cast<index_t>(std::ceil(digits)), 4, 10);
  if (dim >= 3) return 6 * q * q;
  if (dim == 2) return std::max<index_t>(8 * q, 24);
  return 2;
}

/// Append one shell of radius r around center c to the generator; collects
/// the extended indices. Shell s gets a deterministic angular offset so
/// consecutive shells don't stack points along the same rays.
void add_shell(ProxyEntryGenerator& pgen, const real_t* c, real_t r, index_t m, index_t dim,
               index_t shell, std::vector<index_t>& out) {
  const real_t ga = std::numbers::pi * (3.0 - std::sqrt(5.0)); // golden angle
  real_t x[3] = {0, 0, 0};
  if (dim >= 3) {
    // Fibonacci sphere: near-uniform coverage at any m.
    for (index_t i = 0; i < m; ++i) {
      const real_t z = 1.0 - 2.0 * (static_cast<real_t>(i) + 0.5) / static_cast<real_t>(m);
      const real_t rho = std::sqrt(std::max(real_t(0), 1.0 - z * z));
      const real_t phi = ga * static_cast<real_t>(i) + 0.5 * ga * static_cast<real_t>(shell);
      x[0] = c[0] + r * rho * std::cos(phi);
      x[1] = c[1] + r * rho * std::sin(phi);
      x[2] = c[2] + r * z;
      out.push_back(pgen.add_point(x));
    }
  } else if (dim == 2) {
    for (index_t i = 0; i < m; ++i) {
      const real_t phi = 2.0 * std::numbers::pi * (static_cast<real_t>(i) + 0.5) /
                             static_cast<real_t>(m) +
                         ga * static_cast<real_t>(shell);
      x[0] = c[0] + r * std::cos(phi);
      x[1] = c[1] + r * std::sin(phi);
      out.push_back(pgen.add_point(x));
    }
  } else {
    x[0] = c[0] - r;
    out.push_back(pgen.add_point(x));
    x[0] = c[0] + r;
    out.push_back(pgen.add_point(x));
  }
}

} // namespace

ProxyMatVecSampler::ProxyMatVecSampler(std::shared_ptr<const tree::ClusterTree> tree,
                                       const KernelFunction& kernel,
                                       const ProxySamplerOptions& opts)
    : tree_(std::move(tree)) {
  batched::ExecutionContext build_ctx;
  build(kernel, opts, build_ctx);
  ctx_ = std::make_unique<batched::ExecutionContext>(surrogate_.execution_config());
}

ProxyMatVecSampler::ProxyMatVecSampler(std::shared_ptr<const tree::ClusterTree> tree,
                                       const KernelFunction& kernel,
                                       const ProxySamplerOptions& opts,
                                       batched::ExecutionContext& build_ctx)
    : tree_(std::move(tree)) {
  build(kernel, opts, build_ctx);
  ctx_ = std::make_unique<batched::ExecutionContext>(surrogate_.execution_config());
}

index_t ProxyMatVecSampler::size() const { return tree_->num_points(); }

void ProxyMatVecSampler::sample(ConstMatrixView omega, MatrixView y) {
  h2::h2_matvec(*ctx_, surrogate_, omega, y);
  record_samples(omega.cols);
}

void ProxyMatVecSampler::build(const KernelFunction& kernel, ProxySamplerOptions opts,
                               batched::ExecutionContext& ctx) {
  const double t0 = wall_seconds();
  if (opts.tol <= 0) opts.tol = 1e-6;
  H2S_CHECK(opts.eta > 0, "proxy sampler needs a positive admissibility eta");
  H2S_CHECK(opts.num_shells >= 1, "proxy sampler needs at least one shell");

  const tree::ClusterTree& t = *tree_;
  const index_t dim = t.dim();
  const index_t leaf = t.leaf_level();

  surrogate_.tree = tree_;
  surrogate_.mtree = tree::MatrixTree::build(t, tree::Admissibility::general(opts.eta));
  surrogate_.init_structure();

  ProxyEntryGenerator pgen(t, kernel);

  // Exact near field, enqueued first: it generates while the proxy geometry
  // below is laid out, and its Frobenius mass anchors the ID threshold.
  std::vector<std::vector<index_t>> leaf_positions(static_cast<size_t>(t.nodes_at(leaf)));
  {
    const auto& near = surrogate_.mtree.near_leaf;
    std::vector<BlockRequest> reqs;
    reqs.reserve(static_cast<size_t>(near.count()));
    for (index_t i = 0; i < t.nodes_at(leaf); ++i) {
      auto& pos = leaf_positions[static_cast<size_t>(i)];
      pos.resize(static_cast<size_t>(t.size(leaf, i)));
      std::iota(pos.begin(), pos.end(), t.begin(leaf, i));
    }
    for (index_t r = 0; r < t.nodes_at(leaf); ++r)
      for (index_t j = 0; j < near.row_count(r); ++j) {
        const index_t e = near.row_ptr[static_cast<size_t>(r)] + j;
        const index_t c = near.col[static_cast<size_t>(e)];
        surrogate_.dense.set_shape(e, t.size(leaf, r), t.size(leaf, c));
      }
    surrogate_.dense.allocate(ctx.device());
    for (index_t r = 0; r < t.nodes_at(leaf); ++r)
      for (index_t j = 0; j < near.row_count(r); ++j) {
        const index_t e = near.row_ptr[static_cast<size_t>(r)] + j;
        reqs.push_back({leaf_positions[static_cast<size_t>(r)],
                        leaf_positions[static_cast<size_t>(
                            near.col[static_cast<size_t>(e)])],
                        surrogate_.dense.dev(e)});
      }
    batched_generate(ctx, batched::kEntryGenStream, pgen, std::move(reqs));
  }

  if (!surrogate_.mtree.has_any_far()) {
    ctx.sync_all();
    entries_generated_ = pgen.entries_generated();
    surrogate_.validate();
    build_seconds_ = wall_seconds() - t0;
    return;
  }

  // Proxy geometry for every node that carries a basis (levels leaf..1):
  // num_shells concentric shells from just inside the admissibility buffer
  // (no admissible source can be closer than ~diameter/(2 eta) to the box)
  // out to the radius enclosing the whole domain. Pure geometry — laid out
  // for all levels up front so the coordinate table is frozen before the
  // first proxy-panel launch.
  const index_t per_shell =
      opts.points_per_shell > 0 ? opts.points_per_shell : auto_points_per_shell(opts.tol, dim);
  const geo::BoundingBox& root_box = t.box(0, 0);
  std::vector<std::vector<std::vector<index_t>>> proxy_idx(static_cast<size_t>(leaf + 1));
  for (index_t l = 1; l <= leaf; ++l) {
    proxy_idx[static_cast<size_t>(l)].resize(static_cast<size_t>(t.nodes_at(l)));
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      const geo::BoundingBox& b = t.box(l, i);
      real_t c[3] = {0, 0, 0};
      for (index_t d = 0; d < dim; ++d) c[d] = b.center(d);
      const real_t diam = b.diameter();
      const real_t scale = 1.0 + std::abs(c[0]) + std::abs(c[1]) + std::abs(c[2]);
      // Guard degenerate boxes (duplicate points) with a tiny radius floor.
      const real_t r_inner = std::max(0.5 * diam + opts.inner_gap_fraction * diam / opts.eta,
                                      real_t(1e-8) * scale);
      const real_t r_outer = std::max(root_box.max_corner_distance(c), 1.5 * r_inner);
      auto& idx = proxy_idx[static_cast<size_t>(l)][static_cast<size_t>(i)];
      idx.reserve(static_cast<size_t>(opts.num_shells * per_shell));
      for (index_t s = 0; s < opts.num_shells; ++s) {
        const real_t f = opts.num_shells > 1
                             ? static_cast<real_t>(s) / static_cast<real_t>(opts.num_shells - 1)
                             : real_t(0);
        const real_t r = r_inner * std::pow(r_outer / r_inner, f);
        add_shell(pgen, c, r, per_shell, dim, s, idx);
      }
    }
  }
  proxy_points_ = pgen.num_proxy();

  // ID threshold: like the construction's eps_abs = tol * ||K||, with the
  // near-field Frobenius mass as the (conservative, under-estimating) norm
  // anchor — available for free once the dense blocks land.
  ctx.sync(batched::kEntryGenStream);
  real_t near_sq = 0.0;
  {
    // The dense blocks just landed in the device arena; accumulate their
    // Frobenius mass in place rather than pulling host mirrors down.
    backend::KernelScope scope(&ctx.device());
    for (index_t e = 0; e < surrogate_.dense.count(); ++e) {
      const real_t f = la::norm_f(surrogate_.dense.dev(e));
      near_sq += f * f;
    }
  }
  const real_t norm_anchor = near_sq > 0 ? std::sqrt(near_sq) : real_t(1);
  const real_t abs_tol = opts.tol * opts.id_tol_factor * norm_anchor;

  // Bottom-up nested proxy ID (the deterministic mirror of Algorithm 1's
  // skeletonization): leaf panels K(I_tau, P_tau) give U and the skeleton;
  // inner panels K([skel(nu1); skel(nu2)], P_tau) give the stacked transfer.
  for (index_t l = leaf; l >= 1; --l) {
    const auto ul = static_cast<size_t>(l);
    const index_t nodes = t.nodes_at(l);
    std::vector<std::vector<index_t>> stacked_rows;
    if (l != leaf) {
      stacked_rows.resize(static_cast<size_t>(nodes));
      for (index_t i = 0; i < nodes; ++i) {
        const auto& s1 = surrogate_.skeleton[ul + 1][static_cast<size_t>(2 * i)];
        const auto& s2 = surrogate_.skeleton[ul + 1][static_cast<size_t>(2 * i + 1)];
        auto& rows = stacked_rows[static_cast<size_t>(i)];
        rows.reserve(s1.size() + s2.size());
        rows.insert(rows.end(), s1.begin(), s1.end());
        rows.insert(rows.end(), s2.begin(), s2.end());
      }
    }

    std::vector<backend::DeviceMatrix> panels(static_cast<size_t>(nodes));
    {
      std::vector<BlockRequest> reqs;
      reqs.reserve(static_cast<size_t>(nodes));
      for (index_t i = 0; i < nodes; ++i) {
        const auto ui = static_cast<size_t>(i);
        const_index_span rows = l == leaf ? const_index_span(leaf_positions[ui])
                                          : const_index_span(stacked_rows[ui]);
        const auto& cols = proxy_idx[ul][ui];
        panels[ui].resize_uninitialized(ctx.device(), static_cast<index_t>(rows.size()),
                                        static_cast<index_t>(cols.size()));
        reqs.push_back({rows, cols, panels[ui].view()});
      }
      batched_generate(ctx, batched::kEntryGenStream, pgen, std::move(reqs));
      ctx.sync(batched::kEntryGenStream);
    }

    std::vector<la::RowID> ids(static_cast<size_t>(nodes));
    {
      std::vector<ConstMatrixView> ys;
      ys.reserve(static_cast<size_t>(nodes));
      for (index_t i = 0; i < nodes; ++i) ys.push_back(panels[static_cast<size_t>(i)].view());
      batched::batched_row_id(ctx, ys, abs_tol, opts.max_rank, ids);
    }

    for (index_t i = 0; i < nodes; ++i) {
      const auto ui = static_cast<size_t>(i);
      la::RowID& id = ids[ui];
      const index_t k = static_cast<index_t>(id.skeleton.size());
      surrogate_.ranks[ul][ui] = k;
      surrogate_.basis[ul].stage(i, std::move(id.interp));
      auto& skel = surrogate_.skeleton[ul][ui];
      skel.resize(static_cast<size_t>(k));
      if (l == leaf) {
        const index_t b = t.begin(l, i);
        for (index_t s = 0; s < k; ++s)
          skel[static_cast<size_t>(s)] = b + id.skeleton[static_cast<size_t>(s)];
      } else {
        const auto& rows = stacked_rows[ui];
        for (index_t s = 0; s < k; ++s)
          skel[static_cast<size_t>(s)] = rows[static_cast<size_t>(id.skeleton[static_cast<size_t>(s)])];
      }
    }
    surrogate_.basis[ul].commit(ctx.device());
  }

  // Exact coupling at the selected skeletons, all levels in one batch.
  {
    std::vector<BlockRequest> reqs;
    reqs.reserve(static_cast<size_t>(surrogate_.mtree.total_far_blocks()));
    for (index_t l = 0; l < t.num_levels(); ++l) {
      const auto ul = static_cast<size_t>(l);
      const auto& far = surrogate_.mtree.far[ul];
      for (index_t r = 0; r < t.nodes_at(l); ++r)
        for (index_t j = 0; j < far.row_count(r); ++j) {
          const index_t e = far.row_ptr[static_cast<size_t>(r)] + j;
          const index_t c = far.col[static_cast<size_t>(e)];
          const auto& rs = surrogate_.skeleton[ul][static_cast<size_t>(r)];
          const auto& cs = surrogate_.skeleton[ul][static_cast<size_t>(c)];
          surrogate_.coupling[ul].set_shape(e, static_cast<index_t>(rs.size()),
                                            static_cast<index_t>(cs.size()));
        }
      surrogate_.coupling[ul].allocate(ctx.device());
      for (index_t r = 0; r < t.nodes_at(l); ++r)
        for (index_t j = 0; j < far.row_count(r); ++j) {
          const index_t e = far.row_ptr[static_cast<size_t>(r)] + j;
          const index_t c = far.col[static_cast<size_t>(e)];
          reqs.push_back({surrogate_.skeleton[ul][static_cast<size_t>(r)],
                          surrogate_.skeleton[ul][static_cast<size_t>(c)],
                          surrogate_.coupling[ul].dev(e)});
        }
    }
    batched_generate(ctx, batched::kEntryGenStream, pgen, std::move(reqs));
  }

  ctx.sync_all();
  entries_generated_ = pgen.entries_generated();
  surrogate_.validate();
  build_seconds_ = wall_seconds() - t0;
}

SamplerKind sampler_kind_from_env(SamplerKind fallback) {
  const char* v = std::getenv("H2SKETCH_SAMPLER");
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "proxy") == 0) return SamplerKind::Proxy;
  if (std::strcmp(v, "exact") == 0) return SamplerKind::Exact;
  return fallback;
}

std::unique_ptr<MatVecSampler> make_kernel_sampler(SamplerKind kind,
                                                   std::shared_ptr<const tree::ClusterTree> tree,
                                                   const KernelFunction& kernel,
                                                   const ProxySamplerOptions& proxy_opts) {
  if (kind == SamplerKind::Proxy)
    return std::make_unique<ProxyMatVecSampler>(std::move(tree), kernel, proxy_opts);
  return std::make_unique<KernelMatVecSampler>(*tree, kernel);
}

} // namespace h2sketch::kern
