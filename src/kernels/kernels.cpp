#include "kernels/kernels.hpp"

#include <cmath>

namespace h2sketch::kern {

namespace {
inline real_t dist(const real_t* x, const real_t* y, index_t dim) {
  real_t s = 0.0;
  for (index_t d = 0; d < dim; ++d) {
    const real_t e = x[d] - y[d];
    s += e * e;
  }
  return std::sqrt(s);
}
} // namespace

real_t ExponentialKernel::evaluate(const real_t* x, const real_t* y, index_t dim) const {
  return std::exp(-dist(x, y, dim) / l_);
}

HelmholtzCosKernel::HelmholtzCosKernel(real_t k, real_t diagonal) : k_(k), diagonal_(diagonal) {
  // Default self term: comparable magnitude to the nearest-neighbour
  // interaction so the diagonal neither dominates nor vanishes.
  if (diagonal_ == 0.0) diagonal_ = 2.0 * k_;
}

real_t HelmholtzCosKernel::evaluate(const real_t* x, const real_t* y, index_t dim) const {
  const real_t r = dist(x, y, dim);
  if (r == 0.0) return diagonal_;
  return std::cos(k_ * r) / r;
}

real_t GaussianKernel::evaluate(const real_t* x, const real_t* y, index_t dim) const {
  const real_t r = dist(x, y, dim);
  return std::exp(-0.5 * r * r / (l_ * l_));
}

real_t Matern32Kernel::evaluate(const real_t* x, const real_t* y, index_t dim) const {
  const real_t a = std::sqrt(3.0) * dist(x, y, dim) / l_;
  return (1.0 + a) * std::exp(-a);
}

real_t RidgeKernel::evaluate(const real_t* x, const real_t* y, index_t dim) const {
  real_t v = base_->evaluate(x, y, dim);
  bool same = true;
  for (index_t d = 0; d < dim; ++d)
    if (x[d] != y[d]) {
      same = false;
      break;
    }
  return same ? v + sigma_ : v;
}

real_t Laplace3dKernel::evaluate(const real_t* x, const real_t* y, index_t dim) const {
  const real_t r = dist(x, y, dim);
  if (r == 0.0) return diagonal_;
  return 1.0 / r;
}

} // namespace h2sketch::kern
