#pragma once

#include "kernels/kernel.hpp"

/// \file kernels.hpp
/// Concrete kernels. The first two are the paper's §V-A test problems.

namespace h2sketch::kern {

/// Exponential covariance kernel (paper Eq. (8)):
///   K(x, y) = exp(-|x - y| / l),
/// a 3D Gaussian-process covariance with correlation length l (paper: 0.2).
class ExponentialKernel final : public KernelFunction {
 public:
  explicit ExponentialKernel(real_t correlation_length = 0.2) : l_(correlation_length) {}
  real_t evaluate(const real_t* x, const real_t* y, index_t dim) const override;
  std::string name() const override { return "exponential"; }

 private:
  real_t l_;
};

/// Helmholtz volume integral-equation kernel (paper Eq. (9)):
///   K(x, y) = cos(k |x - y|) / |x - y|,  x != y,
/// with wavenumber k (paper: 3). The diagonal (x == y) takes a finite
/// self-interaction value standing in for the quadrature self term.
class HelmholtzCosKernel final : public KernelFunction {
 public:
  explicit HelmholtzCosKernel(real_t k = 3.0, real_t diagonal = 0.0);
  real_t evaluate(const real_t* x, const real_t* y, index_t dim) const override;
  std::string name() const override { return "helmholtz_cos"; }

 private:
  real_t k_;
  real_t diagonal_;
};

/// Gaussian (squared-exponential) covariance: exp(-|x-y|^2 / (2 l^2)).
class GaussianKernel final : public KernelFunction {
 public:
  explicit GaussianKernel(real_t correlation_length = 0.2) : l_(correlation_length) {}
  real_t evaluate(const real_t* x, const real_t* y, index_t dim) const override;
  std::string name() const override { return "gaussian"; }

 private:
  real_t l_;
};

/// Matern-3/2 covariance: (1 + sqrt(3) r / l) exp(-sqrt(3) r / l).
class Matern32Kernel final : public KernelFunction {
 public:
  explicit Matern32Kernel(real_t correlation_length = 0.2) : l_(correlation_length) {}
  real_t evaluate(const real_t* x, const real_t* y, index_t dim) const override;
  std::string name() const override { return "matern32"; }

 private:
  real_t l_;
};

/// Diagonal-ridge decorator: base(x, y) + sigma * [x == y]. Turns any
/// positive-semidefinite covariance kernel into a well-conditioned SPD
/// operator (K + sigma I on distinct points) — the solver subsystem's test
/// and benchmark workload.
class RidgeKernel final : public KernelFunction {
 public:
  /// The base kernel must outlive the decorator.
  RidgeKernel(const KernelFunction& base, real_t sigma) : base_(&base), sigma_(sigma) {}
  real_t evaluate(const real_t* x, const real_t* y, index_t dim) const override;
  std::string name() const override { return base_->name() + "+ridge"; }

 private:
  const KernelFunction* base_;
  real_t sigma_;
};

/// 3D Laplace single-layer kernel 1 / |x - y| with a diagonal value. With a
/// positive diagonal shift this mimics the dense Schur complement (DtN
/// operator) of a 3D Poisson separator plane — the synthetic frontal matrix.
class Laplace3dKernel final : public KernelFunction {
 public:
  explicit Laplace3dKernel(real_t diagonal) : diagonal_(diagonal) {}
  real_t evaluate(const real_t* x, const real_t* y, index_t dim) const override;
  std::string name() const override { return "laplace_3d"; }

 private:
  real_t diagonal_;
};

} // namespace h2sketch::kern
