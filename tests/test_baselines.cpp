#include <gtest/gtest.h>

#include "baselines/hss.hpp"
#include "baselines/peeling_hodlr.hpp"
#include "baselines/topdown.hpp"
#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/h2_dense.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::baselines {
namespace {

using tree::Admissibility;
using tree::ClusterTree;
using test_util::dense_kernel_matrix;
using test_util::rel_fro_error;

TEST(TopDownHMatrix, StrongAdmissibilityReconstruction) {
  auto tr = test_util::build_cube_tree(500, 2, 41, 32);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  TopDownOptions opts;
  opts.tol = 1e-6;
  auto res = build_topdown_hmatrix(tr, Admissibility::general(0.7), sampler, opts);
  ASSERT_TRUE(res.matrix.mtree.has_any_far());
  EXPECT_LT(rel_fro_error(res.matrix.densify().view(), kd.view()), 1e-4);
  EXPECT_FALSE(res.stats.rank_cap_hit);
  EXPECT_GT(res.stats.total_samples, 0);
  EXPECT_EQ(res.stats.total_samples, sampler.samples_taken());
}

TEST(TopDownHMatrix, MatvecMatchesDensify) {
  auto tr = test_util::build_cube_tree(400, 2, 42, 32);
  kern::Matern32Kernel k(0.3);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  TopDownOptions opts;
  opts.tol = 1e-8;
  auto res = build_topdown_hmatrix(tr, Admissibility::general(0.7), sampler, opts);
  const Matrix hd = res.matrix.densify();
  Matrix x(400, 3), y(400, 3), ref(400, 3);
  fill_gaussian(x.view(), GaussianStream(43));
  res.matrix.matvec(x.view(), y.view());
  la::gemm(1.0, hd.view(), la::Op::None, x.view(), la::Op::None, 0.0, ref.view());
  EXPECT_LT(max_abs_diff(y.view(), ref.view()), 1e-10 * la::norm_f(hd.view()));
}

TEST(PeelingHodlr, WeakAdmissibilityReconstruction1D) {
  auto tr = test_util::build_cube_tree(512, 1, 44, 32);
  kern::ExponentialKernel k(0.5);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  TopDownOptions opts;
  opts.tol = 1e-7;
  auto res = build_peeling_hodlr(tr, sampler, opts);
  EXPECT_LT(rel_fro_error(res.matrix.densify().view(), kd.view()), 1e-5);
  // HODLR coloring needs exactly two colors for the off-diagonal levels.
  EXPECT_LE(res.stats.max_colors, 2);
}

TEST(PeelingHodlr, SampleCountGrowsWithNFor3DKernels) {
  // The H2Opus-failure mechanism: HODLR ranks of a 3D kernel grow with N,
  // so the top-down sample count grows while Algorithm 1 stays flat.
  kern::ExponentialKernel k(0.2);
  index_t prev_samples = 0;
  for (index_t n : {256, 512, 1024}) {
    auto tr = test_util::build_cube_tree(n, 3, 45, 32);
    const Matrix kd = dense_kernel_matrix(*tr, k);
    kern::DenseMatrixSampler sampler(kd.view());
    TopDownOptions opts;
    opts.tol = 1e-6;
    auto res = build_peeling_hodlr(tr, sampler, opts);
    EXPECT_GE(res.stats.total_samples, prev_samples);
    prev_samples = res.stats.total_samples;
  }
  EXPECT_GT(prev_samples, 256); // already above Algorithm 1's flat budget
}

TEST(TopDownHMatrix, RankCapFlagsNonConvergence) {
  auto tr = test_util::build_cube_tree(512, 3, 46, 32);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  TopDownOptions opts;
  opts.tol = 1e-10;
  opts.max_block_rank = 8; // absurdly small cap
  auto res = build_peeling_hodlr(tr, sampler, opts);
  EXPECT_TRUE(res.stats.rank_cap_hit);
}

TEST(Hss, WeakAdmissibilityViaAlgorithmOne) {
  auto tr = test_util::build_cube_tree(512, 1, 47, 32);
  kern::ExponentialKernel k(0.5);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto res = construct_hss(tr, sampler, gen, opts);
  EXPECT_LT(rel_fro_error(res.matrix.densify().view(), kd.view()), 1e-6);
  EXPECT_EQ(res.stats.csp, 1);
}

TEST(Hss, MatchesWeakAdmissibilityConstructH2ToTolerance) {
  // The explicit behavioral diff ROADMAP promised: construct_hss is no
  // longer the thin construct_h2(Admissibility::weak()) wrapper pinned by
  // the retired Hss.IsExactlyWeakAdmissibilityConstructH2 test — it now
  // builds dedicated HSS generator storage (solver::HssMatrix) through the
  // solver subsystem. Both constructions compress the same operator with
  // the same tolerance, so their densified matrices must agree to that
  // tolerance (relative to ||K||), but not bitwise.
  auto tr = test_util::build_cube_tree(512, 1, 47, 32);
  kern::ExponentialKernel k(0.5);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  // Separate generators: entries_generated is cumulative per generator.
  kern::KernelEntryGenerator gen_hss(*tr, k), gen_h2(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;

  kern::DenseMatrixSampler s_hss(kd.view()), s_h2(kd.view());
  auto r_hss = construct_hss(tr, s_hss, gen_hss, opts);
  auto r_h2 = core::construct_h2(tr, Admissibility::weak(), s_h2, gen_h2, opts);

  const Matrix d_hss = r_hss.matrix.densify();
  const Matrix d_h2 = h2::densify(r_h2.matrix);
  // Each approximates K to ~tol; they agree with each other to the same
  // order. A structural regression in either shows up orders above this.
  EXPECT_LT(rel_fro_error(d_hss.view(), d_h2.view()), 100 * opts.tol);
  EXPECT_LT(rel_fro_error(d_hss.view(), kd.view()), 100 * opts.tol);
  // Weak admissibility == HSS structure: coupling sparsity constant 1.
  EXPECT_EQ(r_hss.stats.csp, 1);
  // Same adaptive machinery on the same operator: ranks land in the same
  // ballpark (identical convergence probe, identical tolerance).
  EXPECT_NEAR(static_cast<double>(r_hss.stats.max_rank),
              static_cast<double>(r_h2.stats.max_rank),
              0.5 * static_cast<double>(r_h2.stats.max_rank));
}

TEST(Hss, BottomUpNeedsFarFewerSamplesThanTopDownPeeling) {
  // Same operator, same weak-admissibility format: Algorithm 1 (bottom-up)
  // vs the top-down peeling construction. Bottom-up samples once for all
  // levels; peeling pays per level.
  auto tr = test_util::build_cube_tree(1024, 1, 48, 32);
  kern::ExponentialKernel k(0.5);
  const Matrix kd = dense_kernel_matrix(*tr, k);

  kern::DenseMatrixSampler s_bu(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions bu;
  bu.tol = 1e-6;
  bu.sample_block = 16;
  bu.initial_samples = 32;
  auto r_bu = construct_hss(tr, s_bu, gen, bu);

  kern::DenseMatrixSampler s_td(kd.view());
  TopDownOptions td;
  td.tol = 1e-6;
  td.sample_block = 16;
  auto r_td = build_peeling_hodlr(tr, s_td, td);

  EXPECT_LT(r_bu.stats.total_samples, r_td.stats.total_samples);
}

} // namespace
} // namespace h2sketch::baselines
