#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "la/gemm_engine.hpp"
#include "test_common.hpp"

/// \file test_blas_fuzz.cpp
/// Property/fuzz suite for the blocked GEMM engine and the blocked
/// triangular solves, against the retained naive reference kernels.
///
/// The engine's failure modes are all shape-dependent (packing edge tiles,
/// zero padding, sliver indexing, cache-block boundaries, strided views), so
/// the suite draws dimensions from a pool biased toward the danger zone:
/// 0, 1, primes, and every register/cache block size +- 1. Every case runs
/// `gemm_blocked` directly — not through the dispatch — so small shapes
/// exercise the packed path too, and checks that entries of the backing
/// buffer outside the C view are never touched (the ld-correctness
/// property).

namespace h2sketch::la {
namespace {

using test_util::random_matrix;

/// Dimension pool biased toward engine boundaries: the register tile
/// (MR = 4, NR = 8), the cache blocks (MC = 128, KC = 256, NC = 2048 is too
/// big to fuzz densely; its edge handling is identical to KC's), primes, and
/// the degenerate sizes 0 and 1.
index_t draw_dim(SmallRng& rng) {
  static const std::vector<index_t> pool = {
      0,  1,  2,  3,  kGemmMR - 1, kGemmMR, kGemmMR + 1, 7,  kGemmNR - 1, kGemmNR,
      kGemmNR + 1, 13, 17, 31, 32, 33, 61, 97, kGemmMC - 1, kGemmMC, kGemmMC + 1,
      kGemmKC - 1, kGemmKC, kGemmKC + 1};
  if (rng.next_real() < 0.7) return pool[static_cast<size_t>(rng.next_index(
      static_cast<index_t>(pool.size())))];
  return rng.next_index(300);
}

real_t draw_scalar(SmallRng& rng) {
  switch (rng.next_index(4)) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return -1.0;
    default: return 2.0 * rng.next_real() - 1.0;
  }
}

Op draw_op(SmallRng& rng) { return rng.next_index(2) == 0 ? Op::None : Op::Trans; }

/// A view of shape m x n with leading dimension rows(backing) >= m, placed
/// at a random row/col offset inside `backing` so ld != m most of the time.
struct EmbeddedView {
  Matrix backing;
  index_t r0 = 0, c0 = 0, m = 0, n = 0;

  EmbeddedView(index_t m_, index_t n_, SmallRng& rng, std::uint64_t seed) : m(m_), n(n_) {
    const index_t pad_r = rng.next_index(5);
    const index_t pad_c = rng.next_index(3);
    backing = random_matrix(m + pad_r, n + pad_c, seed);
    r0 = pad_r > 0 ? rng.next_index(pad_r + 1) : 0;
    c0 = pad_c > 0 ? rng.next_index(pad_c + 1) : 0;
  }
  MatrixView view() { return backing.block(r0, c0, m, n); }
  ConstMatrixView cview() const { return backing.block(r0, c0, m, n); }
};

TEST(BlasFuzz, BlockedGemmMatchesNaiveReference) {
  SmallRng rng(20250728);
  int blocked_dispatch_cases = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const index_t m = draw_dim(rng), n = draw_dim(rng), k = draw_dim(rng);
    const Op oa = draw_op(rng), ob = draw_op(rng);
    const real_t alpha = draw_scalar(rng), beta = draw_scalar(rng);

    const std::uint64_t s = 1000 + static_cast<std::uint64_t>(iter) * 7;
    EmbeddedView a(oa == Op::None ? m : k, oa == Op::None ? k : m, rng, s);
    EmbeddedView b(ob == Op::None ? k : n, ob == Op::None ? n : k, rng, s + 1);
    EmbeddedView c_blocked(m, n, rng, s + 2);
    // Same C contents (and same backing) for the reference run.
    Matrix c_ref_backing = to_matrix(c_blocked.backing.view());
    MatrixView c_ref =
        c_ref_backing.block(c_blocked.r0, c_blocked.c0, m, n);
    const Matrix before = to_matrix(c_blocked.backing.view());

    gemm_blocked(alpha, a.cview(), oa, b.cview(), ob, beta, c_blocked.view());
    gemm_naive(alpha, a.cview(), oa, b.cview(), ob, beta, c_ref);

    // Reordered/FMA summation differs from the scalar order by O(k * eps *
    // |A||B|); an indexing or padding bug shows up as O(1).
    const real_t tol = 1e-12 * static_cast<real_t>(k + 1);
    EXPECT_LT(max_abs_diff(c_blocked.view(), c_ref), tol)
        << "m=" << m << " n=" << n << " k=" << k << " oa=" << static_cast<int>(oa)
        << " ob=" << static_cast<int>(ob) << " alpha=" << alpha << " beta=" << beta;

    // The ld property: nothing outside the C view may change.
    for (index_t j = 0; j < c_blocked.backing.cols(); ++j)
      for (index_t i = 0; i < c_blocked.backing.rows(); ++i) {
        const bool inside = i >= c_blocked.r0 && i < c_blocked.r0 + m && j >= c_blocked.c0 &&
                            j < c_blocked.c0 + n;
        if (!inside)
          ASSERT_EQ(c_blocked.backing(i, j), before(i, j))
              << "engine wrote outside the view at (" << i << "," << j << ")";
      }

    if (gemm_use_blocked(m, n, k)) ++blocked_dispatch_cases;
  }
  // Sanity: the pool must exercise both sides of the dispatch cutover.
  EXPECT_GT(blocked_dispatch_cases, 20);
  EXPECT_LT(blocked_dispatch_cases, 380);
}

TEST(BlasFuzz, PublicGemmDispatchAgreesWithNaive) {
  // The user-facing entry point (whatever path it picks) must match the
  // reference for the same mixed bag of shapes.
  SmallRng rng(77);
  for (int iter = 0; iter < 150; ++iter) {
    const index_t m = draw_dim(rng), n = draw_dim(rng), k = draw_dim(rng);
    const Op oa = draw_op(rng), ob = draw_op(rng);
    const real_t alpha = draw_scalar(rng), beta = draw_scalar(rng);
    const Matrix a = random_matrix(oa == Op::None ? m : k, oa == Op::None ? k : m, 10 + iter);
    const Matrix b = random_matrix(ob == Op::None ? k : n, ob == Op::None ? n : k, 20 + iter);
    Matrix c1 = random_matrix(m, n, 30 + iter);
    Matrix c2 = to_matrix(c1.view());
    gemm(alpha, a.view(), oa, b.view(), ob, beta, c1.view());
    gemm_naive(alpha, a.view(), oa, b.view(), ob, beta, c2.view());
    EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-12 * static_cast<real_t>(k + 1))
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(BlasFuzz, BlockedGemmExactBlockBoundaries) {
  // Deterministic sweep of every (m, n, k) within +-1 of a register or
  // cache-block boundary in at least one dimension.
  const std::vector<index_t> edges = {kGemmMR - 1,  kGemmMR,  kGemmMR + 1,  kGemmNR - 1,
                                      kGemmNR,      kGemmNR + 1, kGemmMC - 1, kGemmMC + 1,
                                      kGemmKC - 1,  kGemmKC + 1};
  for (index_t m : edges)
    for (index_t n : {kGemmNR - 1, kGemmNR + 1, index_t{33}})
      for (index_t k : {index_t{1}, kGemmKC - 1, kGemmKC + 1}) {
        const Matrix a = random_matrix(m, k, static_cast<std::uint64_t>(m * 31 + k));
        const Matrix b = random_matrix(k, n, static_cast<std::uint64_t>(n * 17 + k));
        Matrix c1(m, n), c2(m, n);
        gemm_blocked(1.0, a.view(), Op::None, b.view(), Op::None, 0.0, c1.view());
        gemm_naive(1.0, a.view(), Op::None, b.view(), Op::None, 0.0, c2.view());
        EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-12 * static_cast<real_t>(k + 1))
            << "m=" << m << " n=" << n << " k=" << k;
      }
}

TEST(BlasFuzz, BlockedTrsmSolvesWhatItClaims) {
  // Property check: after trsm, op(R) X == B_original. Sizes chosen to cross
  // the blocked-substitution threshold in both directions.
  SmallRng rng(909);
  for (int iter = 0; iter < 40; ++iter) {
    const index_t n = 1 + rng.next_index(180);
    const index_t nrhs = 1 + rng.next_index(48);
    const bool unit = rng.next_index(2) == 0;
    const Op op = draw_op(rng);
    Matrix r(n, n);
    // Off-diagonal magnitude 0.1 keeps even the implicit-unit-diagonal
    // system well conditioned (a unit triangular matrix with N(0,1)
    // off-diagonals is exponentially ill-conditioned in n, which would turn
    // this into a conditioning test rather than a solver test).
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= j; ++i)
        r(i, j) = 0.1 * rng.next_gaussian() + (i == j ? 6.0 : 0.0);
    const Matrix x = random_matrix(n, nrhs, 4000 + static_cast<std::uint64_t>(iter));
    Matrix b(n, nrhs);
    if (unit) {
      // op(R) with implicit unit diagonal: form B with the diagonal forced
      // to one, using a copy.
      Matrix r1 = to_matrix(r.view());
      for (index_t i = 0; i < n; ++i) r1(i, i) = 1.0;
      gemm_naive(1.0, r1.view(), op, x.view(), Op::None, 0.0, b.view());
    } else {
      gemm_naive(1.0, r.view(), op, x.view(), Op::None, 0.0, b.view());
    }
    trsm_upper_left(r.view(), op, b.view(), unit);
    EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-9)
        << "n=" << n << " nrhs=" << nrhs << " unit=" << unit << " op=" << static_cast<int>(op);
  }
}

TEST(BlasFuzz, LowerLeftTrsmSolvesWhatItClaims) {
  // Same property as the upper-left suite for the new ULV-facing variant:
  // after trsm_lower_left, op(L) X == B_original. Sizes cross the blocked
  // threshold in both directions.
  SmallRng rng(911);
  for (int iter = 0; iter < 40; ++iter) {
    const index_t n = 1 + rng.next_index(180);
    const index_t nrhs = 1 + rng.next_index(48);
    const bool unit = rng.next_index(2) == 0;
    const Op op = draw_op(rng);
    Matrix l(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j; i < n; ++i)
        l(i, j) = 0.1 * rng.next_gaussian() + (i == j ? 6.0 : 0.0);
    const Matrix x = random_matrix(n, nrhs, 5000 + static_cast<std::uint64_t>(iter));
    Matrix b(n, nrhs);
    Matrix l1 = to_matrix(l.view());
    if (unit)
      for (index_t i = 0; i < n; ++i) l1(i, i) = 1.0;
    gemm_naive(1.0, l1.view(), op, x.view(), Op::None, 0.0, b.view());
    trsm_lower_left(l.view(), op, b.view(), unit);
    EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-9)
        << "n=" << n << " nrhs=" << nrhs << " unit=" << unit << " op=" << static_cast<int>(op);
  }
}

TEST(BlasFuzz, LowerRightTrsmSolvesWhatItClaims) {
  // Right-side solve X op(L) = B. B is built as X op(L) with a naive gemm,
  // the solve must recover X.
  SmallRng rng(913);
  for (int iter = 0; iter < 40; ++iter) {
    const index_t n = 1 + rng.next_index(180);
    const index_t m = 1 + rng.next_index(48);
    const bool unit = rng.next_index(2) == 0;
    const Op op = draw_op(rng);
    Matrix l(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j; i < n; ++i)
        l(i, j) = 0.1 * rng.next_gaussian() + (i == j ? 6.0 : 0.0);
    const Matrix x = random_matrix(m, n, 5500 + static_cast<std::uint64_t>(iter));
    Matrix b(m, n);
    Matrix l1 = to_matrix(l.view());
    if (unit)
      for (index_t i = 0; i < n; ++i) l1(i, i) = 1.0;
    gemm_naive(1.0, x.view(), Op::None, l1.view(), op, 0.0, b.view());
    trsm_lower_right(l.view(), op, b.view(), unit);
    EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-9)
        << "n=" << n << " m=" << m << " unit=" << unit << " op=" << static_cast<int>(op);
  }
}

TEST(BlasFuzz, TrsmVariantsAgreeWithNaiveOracleOnStridedViews) {
  // All four triangular solves against a naive dense oracle (solve via
  // explicit inverse-free substitution on a copied matrix), on views with
  // ld > rows so the blocked paths see non-contiguous storage.
  SmallRng rng(917);
  for (int iter = 0; iter < 60; ++iter) {
    const index_t n = 1 + rng.next_index(130);
    const index_t nrhs = 1 + rng.next_index(40);
    const Op op = draw_op(rng);
    const int which = static_cast<int>(rng.next_index(3));
    Matrix t(n, n);
    const bool lower = which != 0;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        if ((lower && i >= j) || (!lower && i <= j))
          t(i, j) = 0.1 * rng.next_gaussian() + (i == j ? 4.0 : 0.0);
    const bool right = which == 2;
    EmbeddedView b(right ? nrhs : n, right ? n : nrhs, rng, 8000 + static_cast<std::uint64_t>(iter));
    Matrix b_ref = to_matrix(b.cview());
    // Naive oracle: scalar substitution on a contiguous copy.
    Matrix tt(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) tt(i, j) = op == Op::None ? t(i, j) : t(j, i);
    if (!right) {
      // Solve op(T) X = B by scalar substitution on tt (general triangular
      // after the transpose fold: tt is upper iff (!lower) == (op==None)).
      const bool tt_lower = lower == (op == Op::None);
      for (index_t j = 0; j < nrhs; ++j) {
        if (tt_lower) {
          for (index_t i = 0; i < n; ++i) {
            real_t s = b_ref(i, j);
            for (index_t p = 0; p < i; ++p) s -= tt(i, p) * b_ref(p, j);
            b_ref(i, j) = s / tt(i, i);
          }
        } else {
          for (index_t i = n - 1; i >= 0; --i) {
            real_t s = b_ref(i, j);
            for (index_t p = i + 1; p < n; ++p) s -= tt(i, p) * b_ref(p, j);
            b_ref(i, j) = s / tt(i, i);
          }
        }
      }
    } else {
      // Solve X op(T) = B columnwise: op(T) is tt; X tt = B.
      const bool tt_lower = op == Op::None; // t is lower here (which == 2)
      if (tt_lower) {
        for (index_t i = n - 1; i >= 0; --i)
          for (index_t r = 0; r < nrhs; ++r) {
            real_t s = b_ref(r, i);
            for (index_t k = i + 1; k < n; ++k) s -= b_ref(r, k) * tt(k, i);
            b_ref(r, i) = s / tt(i, i);
          }
      } else {
        for (index_t i = 0; i < n; ++i)
          for (index_t r = 0; r < nrhs; ++r) {
            real_t s = b_ref(r, i);
            for (index_t k = 0; k < i; ++k) s -= b_ref(r, k) * tt(k, i);
            b_ref(r, i) = s / tt(i, i);
          }
      }
    }
    if (which == 0)
      trsm_upper_left(t.view(), op, b.view());
    else if (which == 1)
      trsm_lower_left(t.view(), op, b.view());
    else
      trsm_lower_right(t.view(), op, b.view());
    EXPECT_LT(max_abs_diff(b.view(), b_ref.view()), 1e-10)
        << "which=" << which << " n=" << n << " nrhs=" << nrhs << " op=" << static_cast<int>(op);
  }
}

TEST(BlasFuzz, BlockedCholeskyMatchesScalarOnLargeSystems) {
  // The blocked right-looking factorization (n > 256) against the scalar
  // kernel reached through sub-views, plus the untouched-upper contract.
  for (index_t n : {index_t{257}, index_t{300}, index_t{385}}) {
    const Matrix g = random_matrix(n, n, 5200 + static_cast<std::uint64_t>(n));
    Matrix a(n, n);
    la::gemm(1.0, g.view(), la::Op::None, g.view(), la::Op::Trans, 0.0, a.view());
    for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<real_t>(n);
    const Matrix a_orig = to_matrix(a.view());
    cholesky(a.view());
    // L L^T must reproduce A to factorization accuracy.
    Matrix l(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j; i < n; ++i) l(i, j) = a(i, j);
    Matrix llt(n, n);
    la::gemm(1.0, l.view(), la::Op::None, l.view(), la::Op::Trans, 0.0, llt.view());
    real_t rel = 0.0;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j; i < n; ++i)
        rel = std::max(rel, std::abs(llt(i, j) - a_orig(i, j)));
    EXPECT_LT(rel / static_cast<real_t>(n), 1e-12) << "n=" << n;
    // Strict upper triangle untouched.
    for (index_t j = 1; j < n; ++j)
      for (index_t i = 0; i < j; ++i)
        ASSERT_EQ(a(i, j), a_orig(i, j)) << "upper entry touched at (" << i << "," << j << ")";
  }
}

TEST(BlasFuzz, BlockedCholeskySolveSatisfiesResidual) {
  SmallRng rng(4242);
  for (int iter = 0; iter < 20; ++iter) {
    const index_t n = 1 + rng.next_index(330);
    const index_t nrhs = 1 + rng.next_index(40);
    // SPD: G G^T + n I.
    const Matrix g = random_matrix(n, n, 6000 + static_cast<std::uint64_t>(iter));
    Matrix a(n, n);
    gemm_naive(1.0, g.view(), Op::None, g.view(), Op::Trans, 0.0, a.view());
    for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<real_t>(n);
    const Matrix a_orig = to_matrix(a.view());
    cholesky(a.view());
    const Matrix x = random_matrix(n, nrhs, 7000 + static_cast<std::uint64_t>(iter));
    Matrix b(n, nrhs);
    gemm_naive(1.0, a_orig.view(), Op::None, x.view(), Op::None, 0.0, b.view());
    cholesky_solve(a.view(), b.view());
    EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-8) << "n=" << n << " nrhs=" << nrhs;
  }
}

TEST(BlasFuzz, EmptyAndDegenerateShapes) {
  // k == 0 must still apply beta; m == 0 / n == 0 must be no-ops that don't
  // touch memory.
  Matrix a(4, 0), b(0, 3), c(4, 3);
  c.fill(2.0);
  gemm_blocked(1.0, a.view(), Op::None, b.view(), Op::None, 0.5, c.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_EQ(c(i, j), 1.0);

  Matrix e0(0, 0);
  EXPECT_NO_THROW(
      gemm_blocked(1.0, e0.view(), Op::None, e0.view(), Op::None, 0.0, e0.view()));
  EXPECT_NO_THROW(trsm_upper_left(e0.view(), Op::None, e0.view()));
  EXPECT_NO_THROW(cholesky_solve(e0.view(), e0.view()));

  Matrix r1(1, 1), b1(1, 5);
  r1(0, 0) = 2.0;
  b1.fill(4.0);
  trsm_upper_left(r1.view(), Op::None, b1.view());
  for (index_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(b1(0, j), 2.0);
}

TEST(BlasFuzz, BlockedGemmShapeMismatchThrows) {
  Matrix a(4, 3), b(4, 5), c(4, 5);
  EXPECT_THROW(gemm_blocked(1.0, a.view(), Op::None, b.view(), Op::None, 0.0, c.view()),
               std::runtime_error);
  EXPECT_THROW(gemm_naive(1.0, a.view(), Op::None, b.view(), Op::None, 0.0, c.view()),
               std::runtime_error);
}

} // namespace
} // namespace h2sketch::la
