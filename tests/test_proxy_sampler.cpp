#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "core/construction.hpp"
#include "h2/h2_dense.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "kernels/proxy_sampler.hpp"
#include "solver/hss_construction.hpp"
#include "test_common.hpp"

/// \file test_proxy_sampler.cpp
/// The proxy-point sampler (O(N d) sketching): surrogate accuracy against
/// the dense kernel matrix, proxy-vs-exact construction agreement at the
/// same tolerance, the HSS build path, sampler selection (factory + env),
/// and the MatVecSampler accounting contract under repeated and concurrent
/// sample calls.

namespace h2sketch {
namespace {

using test_util::cube_tree;
using test_util::dense_kernel_matrix;
using test_util::random_matrix;
using test_util::rel_fro_error;

TEST(ProxySurrogate, ApproximatesTheDenseKernelMatrix) {
  auto tr = test_util::build_cube_tree(1200, 2, 77, 32);
  kern::ExponentialKernel k(0.2);
  kern::ProxySamplerOptions popts;
  popts.tol = 1e-6;
  kern::ProxyMatVecSampler sampler(tr, k, popts);

  EXPECT_EQ(sampler.size(), 1200);
  EXPECT_GT(sampler.proxy_points_used(), 0);
  EXPECT_GT(sampler.build_seconds(), 0.0);

  const Matrix kd = dense_kernel_matrix(*tr, k);
  const Matrix sd = h2::densify(sampler.surrogate());
  // The surrogate carries the proxy-ID error floor; well inside the
  // envelope the construction tolerance budgets for it.
  EXPECT_LT(rel_fro_error(sd.view(), kd.view()), 1e-4);
}

TEST(ProxySurrogate, SampleMatchesExactOracleToSurrogateAccuracy) {
  const index_t n = 900;
  auto tr = test_util::build_cube_tree(n, 2, 3, 32);
  kern::ExponentialKernel k(0.2);
  kern::ProxySamplerOptions popts;
  popts.tol = 1e-6;
  kern::ProxyMatVecSampler proxy(tr, k, popts);
  kern::KernelMatVecSampler exact(*tr, k);

  const index_t d = 5;
  const Matrix omega = random_matrix(n, d, 99);
  Matrix yp(n, d), ye(n, d);
  proxy.sample(omega.view(), yp.view());
  exact.sample(omega.view(), ye.view());

  EXPECT_EQ(proxy.samples_taken(), d);
  EXPECT_EQ(exact.samples_taken(), d);
  EXPECT_LT(rel_fro_error(yp.view(), ye.view()), 1e-4);
}

TEST(ProxyVsExact, ConstructionErrorStaysWithinTheToleranceEnvelope) {
  const index_t n = 1200;
  auto tr = test_util::build_cube_tree(n, 2, 5, 32);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);

  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 32;
  opts.sample_block = 32;
  const auto adm = tree::Admissibility::general(0.7);

  auto exact = core::construct_h2(tr, adm, k, opts, kern::SamplerKind::Exact);
  auto proxy = core::construct_h2(tr, adm, k, opts, kern::SamplerKind::Proxy);
  ASSERT_TRUE(exact.matrix.mtree.has_any_far());

  const real_t err_exact = rel_fro_error(h2::densify(exact.matrix).view(), kd.view());
  const real_t err_proxy = rel_fro_error(h2::densify(proxy.matrix).view(), kd.view());
  // Acceptance contract: proxy within 10x of the exact-sampler build at the
  // same tolerance (floored by the tolerance itself, which both meet).
  EXPECT_LT(err_proxy, std::max<real_t>(10 * err_exact, 10 * opts.tol));
  EXPECT_GT(proxy.stats.total_samples, 0);
  EXPECT_GT(exact.stats.total_samples, 0);
}

TEST(ProxyVsExact, HssBuildAgreesWithTheExactSamplerBuild) {
  const index_t n = 1024;
  auto tr = test_util::build_cube_tree(n, 2, 11, 64);
  kern::ExponentialKernel base(0.2);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);

  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 64;
  opts.sample_block = 32;

  auto exact = solver::build_hss(tr, k, opts, kern::SamplerKind::Exact);
  auto proxy = solver::build_hss(tr, k, opts, kern::SamplerKind::Proxy);

  const real_t err_exact = rel_fro_error(exact.matrix.densify().view(), kd.view());
  const real_t err_proxy = rel_fro_error(proxy.matrix.densify().view(), kd.view());
  EXPECT_LT(err_proxy, std::max<real_t>(10 * err_exact, 10 * opts.tol));
}

TEST(SamplerSelection, FactoryBuildsTheRequestedKind) {
  auto tr = test_util::build_cube_tree(300, 2, 21, 32);
  kern::ExponentialKernel k(0.2);
  kern::ProxySamplerOptions popts;
  popts.tol = 1e-4;

  auto exact = kern::make_kernel_sampler(kern::SamplerKind::Exact, tr, k, popts);
  auto proxy = kern::make_kernel_sampler(kern::SamplerKind::Proxy, tr, k, popts);
  EXPECT_NE(dynamic_cast<kern::KernelMatVecSampler*>(exact.get()), nullptr);
  EXPECT_NE(dynamic_cast<kern::ProxyMatVecSampler*>(proxy.get()), nullptr);
  EXPECT_EQ(exact->size(), 300);
  EXPECT_EQ(proxy->size(), 300);
}

TEST(SamplerSelection, EnvironmentOverridesTheFallback) {
  ASSERT_EQ(unsetenv("H2SKETCH_SAMPLER"), 0);
  EXPECT_EQ(kern::sampler_kind_from_env(kern::SamplerKind::Exact), kern::SamplerKind::Exact);
  EXPECT_EQ(kern::sampler_kind_from_env(kern::SamplerKind::Proxy), kern::SamplerKind::Proxy);

  ASSERT_EQ(setenv("H2SKETCH_SAMPLER", "proxy", 1), 0);
  EXPECT_EQ(kern::sampler_kind_from_env(kern::SamplerKind::Exact), kern::SamplerKind::Proxy);
  ASSERT_EQ(setenv("H2SKETCH_SAMPLER", "exact", 1), 0);
  EXPECT_EQ(kern::sampler_kind_from_env(kern::SamplerKind::Proxy), kern::SamplerKind::Exact);
  // Unknown values keep the fallback rather than failing the run.
  ASSERT_EQ(setenv("H2SKETCH_SAMPLER", "warp-drive", 1), 0);
  EXPECT_EQ(kern::sampler_kind_from_env(kern::SamplerKind::Proxy), kern::SamplerKind::Proxy);
  ASSERT_EQ(unsetenv("H2SKETCH_SAMPLER"), 0);
}

TEST(SamplerAccounting, RepeatedCallsAccumulateAndResetClears) {
  auto tr = test_util::build_cube_tree(200, 2, 31, 32);
  kern::ExponentialKernel k(0.2);
  kern::KernelMatVecSampler sampler(*tr, k);

  const Matrix omega = random_matrix(200, 3, 7);
  Matrix y(200, 3);
  for (int r = 0; r < 4; ++r) sampler.sample(omega.view(), y.view());
  EXPECT_EQ(sampler.samples_taken(), 12);
  sampler.reset_sample_count();
  EXPECT_EQ(sampler.samples_taken(), 0);
  sampler.sample(omega.view().col_range(0, 2), y.view().col_range(0, 2));
  EXPECT_EQ(sampler.samples_taken(), 2);
}

/// Minimal sampler that exercises only the accounting path, so the
/// concurrency test races record_samples itself rather than any
/// implementation's scratch buffers.
class CountingSampler final : public kern::MatVecSampler {
 public:
  index_t size() const override { return 1; }
  void sample(ConstMatrixView omega, MatrixView) override { record_samples(omega.cols); }
};

TEST(SamplerAccounting, ConcurrentRecordsLoseNothing) {
  // Regression for the unsynchronized samples_ counter: concurrent sketch
  // rounds (stream launches / pool workers) must not drop increments.
  CountingSampler sampler;
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 2000;
  constexpr index_t kColsPerCall = 3;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&sampler] {
      Matrix omega(1, kColsPerCall);
      for (int c = 0; c < kCallsPerThread; ++c) sampler.sample(omega.view(), MatrixView());
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(sampler.samples_taken(), index_t{kThreads} * kCallsPerThread * kColsPerCall);
}

} // namespace
} // namespace h2sketch
