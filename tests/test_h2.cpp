#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "h2/update_sampler.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::h2 {
namespace {

using test_util::dense_kernel_matrix;
using test_util::rel_fro_error;

struct ChebCase {
  index_t n;
  index_t dim;
  index_t leaf;
  index_t q;
  real_t eta;
  real_t expected_err; ///< loose bound on relative Frobenius error
  std::uint64_t seed;
};

class ChebH2 : public ::testing::TestWithParam<ChebCase> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    tree_ = test_util::build_cube_tree(p.n, p.dim, p.seed, p.leaf);
    kernel_ = std::make_unique<kern::ExponentialKernel>(0.2);
    a_ = build_cheb_h2(tree_, tree::Admissibility::general(p.eta), *kernel_, p.q);
  }
  std::shared_ptr<tree::ClusterTree> tree_;
  std::unique_ptr<kern::ExponentialKernel> kernel_;
  H2Matrix a_;
};

TEST_P(ChebH2, DensifyApproximatesKernelMatrix) {
  const Matrix kd = dense_kernel_matrix(*tree_, *kernel_);
  const Matrix ad = densify(a_);
  EXPECT_LT(rel_fro_error(ad.view(), kd.view()), GetParam().expected_err);
}

TEST_P(ChebH2, MatvecMatchesDensify) {
  const Matrix ad = densify(a_);
  const index_t n = tree_->num_points();
  Matrix x(n, 3), y(n, 3), ref(n, 3);
  fill_gaussian(x.view(), GaussianStream(11));
  h2_matvec(a_, x.view(), y.view());
  la::gemm(1.0, ad.view(), la::Op::None, x.view(), la::Op::None, 0.0, ref.view());
  EXPECT_LT(max_abs_diff(y.view(), ref.view()), test_util::kMatvecRelTol * la::norm_f(ad.view()));
}

TEST_P(ChebH2, EntryEvalMatchesDensify) {
  const Matrix ad = densify(a_);
  const H2EntryGenerator gen(a_);
  const index_t n = tree_->num_points();
  SmallRng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const index_t i = rng.next_index(n), j = rng.next_index(n);
    EXPECT_NEAR(gen.entry(i, j), ad(i, j), test_util::kEntryTol) << "(" << i << "," << j << ")";
  }
}

TEST_P(ChebH2, BlockEntryEvalMatchesDensify) {
  const Matrix ad = densify(a_);
  const H2EntryGenerator gen(a_);
  const index_t n = tree_->num_points();
  SmallRng rng(17);
  std::vector<index_t> rows, cols;
  for (int i = 0; i < 7; ++i) rows.push_back(rng.next_index(n));
  for (int j = 0; j < 5; ++j) cols.push_back(rng.next_index(n));
  Matrix out(7, 5);
  gen.generate_block(rows, cols, out.view());
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(out(i, j), ad(rows[static_cast<size_t>(i)], cols[static_cast<size_t>(j)]), test_util::kEntryTol);
}

TEST_P(ChebH2, ValidatePassesAndMemoryIsAccounted) {
  a_.validate();
  EXPECT_GT(a_.memory_bytes(), 0u);
  EXPECT_EQ(a_.max_rank(), static_cast<index_t>(std::pow(GetParam().q, GetParam().dim)));
}

INSTANTIATE_TEST_SUITE_P(
    KernelsEtaDims, ChebH2,
    ::testing::Values(ChebCase{256, 3, 32, 4, 0.7, 2e-3, 1}, ChebCase{256, 3, 32, 5, 0.7, 5e-4, 2},
                      ChebCase{300, 2, 32, 5, 0.7, 1e-4, 3}, ChebCase{200, 3, 32, 4, 0.5, 1e-3, 4},
                      ChebCase{128, 1, 16, 6, 0.7, 1e-7, 5}));

TEST(ChebH2Single, HelmholtzKernelAlsoCompresses) {
  auto tr = test_util::build_cube_tree(256, 3, 21, 32);
  kern::HelmholtzCosKernel k(3.0);
  const H2Matrix a = build_cheb_h2(tr, tree::Admissibility::general(0.7), k, 5);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  EXPECT_LT(rel_fro_error(densify(a).view(), kd.view()), 5e-3);
}

TEST(H2Sampler, CountsSamplesAndMatchesMatvec) {
  auto tr = test_util::build_cube_tree(200, 3, 22, 32);
  kern::ExponentialKernel k(0.2);
  const H2Matrix a = build_cheb_h2(tr, tree::Admissibility::general(0.7), k, 4);
  H2Sampler s(a);
  EXPECT_EQ(s.size(), 200);
  Matrix omega(200, 5), y(200, 5), ref(200, 5);
  fill_gaussian(omega.view(), GaussianStream(23));
  s.sample(omega.view(), y.view());
  h2_matvec(a, omega.view(), ref.view());
  EXPECT_EQ(max_abs_diff(y.view(), ref.view()), 0.0);
  EXPECT_EQ(s.samples_taken(), 5);
}

TEST(UpdatedH2, SamplerAndEntryGenAreConsistent) {
  auto tr = test_util::build_cube_tree(150, 3, 24, 32);
  kern::ExponentialKernel k(0.2);
  const H2Matrix a = build_cheb_h2(tr, tree::Admissibility::general(0.7), k, 4);
  const la::LowRank lr = la::random_lowrank(150, 150, 8, 0.5, 99);

  UpdatedH2Sampler sampler(a, lr);
  UpdatedH2EntryGenerator gen(a, lr);

  // Dense reference: densify(a) + lr.
  Matrix ref = densify(a);
  const Matrix lrd = lr.densify();
  for (index_t j = 0; j < 150; ++j)
    for (index_t i = 0; i < 150; ++i) ref(i, j) += lrd(i, j);

  Matrix omega(150, 3), y(150, 3), yref(150, 3);
  fill_gaussian(omega.view(), GaussianStream(25));
  sampler.sample(omega.view(), y.view());
  la::gemm(1.0, ref.view(), la::Op::None, omega.view(), la::Op::None, 0.0, yref.view());
  EXPECT_LT(max_abs_diff(y.view(), yref.view()), 1e-10);

  SmallRng rng(26);
  for (int trial = 0; trial < 100; ++trial) {
    const index_t i = rng.next_index(150), j = rng.next_index(150);
    Matrix out(1, 1);
    std::vector<index_t> ri = {i}, cj = {j};
    gen.generate_block(ri, cj, out.view());
    EXPECT_NEAR(out(0, 0), ref(i, j), test_util::kEntryTol);
  }
}

TEST(H2Matrix, SingleLevelDenseOnlyMatrixWorks) {
  // N small enough that the tree is a single node: everything is dense.
  auto tr = test_util::build_cube_tree(40, 3, 27, 64);
  kern::ExponentialKernel k(0.2);
  const H2Matrix a = build_cheb_h2(tr, tree::Admissibility::general(0.7), k, 3);
  EXPECT_FALSE(a.mtree.has_any_far());
  const Matrix kd = dense_kernel_matrix(*tr, k);
  const Matrix ad = densify(a);
  EXPECT_LT(max_abs_diff(ad.view(), kd.view()), test_util::kExactTol);
  Matrix x(40, 2), y(40, 2), ref(40, 2);
  fill_gaussian(x.view(), GaussianStream(28));
  h2_matvec(a, x.view(), y.view());
  la::gemm(1.0, kd.view(), la::Op::None, x.view(), la::Op::None, 0.0, ref.view());
  EXPECT_LT(max_abs_diff(y.view(), ref.view()), 1e-12);
}

TEST(H2Matrix, MemoryGrowsWithProblemSize) {
  kern::ExponentialKernel k(0.2);
  std::size_t prev = 0;
  for (index_t n : {256, 512, 1024}) {
    auto tr = test_util::build_cube_tree(n, 3, 29, 32);
    const H2Matrix a = build_cheb_h2(tr, tree::Admissibility::general(0.7), k, 3);
    EXPECT_GT(a.memory_bytes(), prev);
    prev = a.memory_bytes();
  }
}

} // namespace
} // namespace h2sketch::h2
