#include "la/id.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::la {
namespace {

using test_util::random_matrix;
using test_util::rank_r_matrix;

struct IdCase {
  index_t m, n, r;
  std::uint64_t seed;
};

class IdRank : public ::testing::TestWithParam<IdCase> {};

TEST_P(IdRank, ColumnIdRecoversExactRank) {
  const auto p = GetParam();
  const Matrix a = rank_r_matrix(p.m, p.n, p.r, p.seed);
  const ColumnID id = column_id(a.view(), 1e-10 * norm_f(a.view()));
  EXPECT_EQ(static_cast<index_t>(id.skeleton.size()), std::min({p.m, p.n, p.r}));
  EXPECT_LT(column_id_rel_error(a.view(), id), 1e-9);
}

TEST_P(IdRank, RowIdRecoversExactRank) {
  const auto p = GetParam();
  const Matrix a = rank_r_matrix(p.m, p.n, p.r, p.seed + 100);
  const RowID id = row_id(a.view(), 1e-10 * norm_f(a.view()));
  EXPECT_EQ(static_cast<index_t>(id.skeleton.size()), std::min({p.m, p.n, p.r}));
  EXPECT_LT(row_id_rel_error(a.view(), id), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, IdRank,
                         ::testing::Values(IdCase{20, 15, 4, 1}, IdCase{15, 20, 4, 2},
                                           IdCase{30, 30, 10, 3}, IdCase{8, 50, 3, 4},
                                           IdCase{50, 8, 8, 5}, IdCase{10, 10, 1, 6}));

TEST(ColumnId, InterpolationIsIdentityOnSkeleton) {
  const Matrix a = rank_r_matrix(12, 9, 4, 7);
  const ColumnID id = column_id(a.view(), 1e-12 * norm_f(a.view()));
  for (size_t j = 0; j < id.skeleton.size(); ++j) {
    for (size_t i = 0; i < id.skeleton.size(); ++i) {
      const real_t expect = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(id.interp(static_cast<index_t>(i), id.skeleton[j]), expect, 1e-12);
    }
  }
}

TEST(RowId, InterpolationIsIdentityOnSkeleton) {
  const Matrix a = rank_r_matrix(14, 10, 5, 8);
  const RowID id = row_id(a.view(), 1e-12 * norm_f(a.view()));
  for (size_t i = 0; i < id.skeleton.size(); ++i)
    for (size_t j = 0; j < id.skeleton.size(); ++j)
      EXPECT_NEAR(id.interp(id.skeleton[i], static_cast<index_t>(j)), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Id, SkeletonIndicesAreValidAndDistinct) {
  const Matrix a = random_matrix(25, 18, 9);
  const RowID id = row_id(a.view(), 1e-6 * norm_f(a.view()));
  std::vector<index_t> sk = id.skeleton;
  std::sort(sk.begin(), sk.end());
  EXPECT_TRUE(std::adjacent_find(sk.begin(), sk.end()) == sk.end());
  for (index_t i : sk) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 25);
  }
}

TEST(Id, ToleranceControlsReconstructionError) {
  // Geometrically decaying singular values: looser tol -> smaller rank,
  // error within a modest multiple of the tolerance.
  const index_t n = 40;
  Matrix a(n, n);
  SmallRng rng(10);
  Matrix u = random_matrix(n, n, 11), v = random_matrix(n, n, 12);
  for (index_t k = 0; k < n; ++k) {
    const real_t s = std::pow(10.0, -0.25 * static_cast<real_t>(k));
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) a(i, j) += s * u(i, k) * v(j, k);
  }
  const real_t nf = norm_f(a.view());
  const ColumnID loose = column_id(a.view(), 1e-3 * nf);
  const ColumnID tight = column_id(a.view(), 1e-9 * nf);
  EXPECT_LT(loose.skeleton.size(), tight.skeleton.size());
  EXPECT_LT(column_id_rel_error(a.view(), loose), 1e-2);
  EXPECT_LT(column_id_rel_error(a.view(), tight), 1e-7);
}

TEST(Id, MaxRankIsEnforced) {
  const Matrix a = random_matrix(20, 20, 13);
  const RowID id = row_id(a.view(), 0.0, /*max_rank=*/6);
  EXPECT_EQ(id.skeleton.size(), 6u);
  EXPECT_EQ(id.interp.cols(), 6);
  EXPECT_EQ(id.interp.rows(), 20);
}

TEST(Id, ZeroMatrixGivesRankZero) {
  Matrix z(10, 6);
  const RowID id = row_id(z.view(), 1e-14);
  EXPECT_TRUE(id.skeleton.empty());
  EXPECT_EQ(id.interp.rows(), 10);
  EXPECT_EQ(id.interp.cols(), 0);
}

TEST(Id, SingleRowAndSingleColumn) {
  Matrix row(1, 7);
  for (index_t j = 0; j < 7; ++j) row(0, j) = static_cast<real_t>(j + 1);
  const RowID rid = row_id(row.view(), 1e-12);
  EXPECT_EQ(rid.skeleton.size(), 1u);
  EXPECT_LT(row_id_rel_error(row.view(), rid), 1e-12);

  Matrix col(7, 1);
  for (index_t i = 0; i < 7; ++i) col(i, 0) = static_cast<real_t>(i + 1);
  const ColumnID cid = column_id(col.view(), 1e-12);
  EXPECT_EQ(cid.skeleton.size(), 1u);
  EXPECT_LT(column_id_rel_error(col.view(), cid), 1e-12);
}

} // namespace
} // namespace h2sketch::la
