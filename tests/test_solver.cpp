#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "batched/batched_solve.hpp"
#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "solver/hss_construction.hpp"
#include "solver/pcg.hpp"
#include "solver/ulv.hpp"
#include "test_common.hpp"

/// \file test_solver.cpp
/// The HSS/ULV solver subsystem: genuine bottom-up HSS construction into the
/// dedicated generator storage, ULV Cholesky factorization + solve sweeps,
/// the batched potrf/trsm primitives they launch, and the pcg driver that
/// uses a coarse HSS-ULV factorization to precondition the H2 matvec.

namespace h2sketch::solver {
namespace {

using test_util::dense_kernel_matrix;
using test_util::random_matrix;
using test_util::rel_fro_error;

/// Relative residual ||A x - b||_2 / ||b||_2 with dense A.
real_t dense_rel_residual(ConstMatrixView a, const std::vector<real_t>& x,
                          const std::vector<real_t>& b) {
  std::vector<real_t> r(b.size(), 0.0);
  la::gemv(1.0, a, la::Op::None, x, 0.0, r);
  real_t num = 0.0, den = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    num += (r[i] - b[i]) * (r[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / den);
}

TEST(HssConstruction, DensifiedMatrixMatchesKernelMatrix) {
  auto tr = test_util::build_cube_tree(512, 2, 71, 32);
  kern::ExponentialKernel k(0.3);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto res = build_hss(tr, sampler, gen, opts);
  res.matrix.validate();
  EXPECT_LT(rel_fro_error(res.matrix.densify().view(), kd.view()), 1e-5);
  EXPECT_EQ(res.stats.csp, 1);
  EXPECT_GT(res.stats.total_samples, 0);
  EXPECT_EQ(res.stats.total_samples, sampler.samples_taken());
  EXPECT_GT(res.stats.max_rank, 0);
  EXPECT_EQ(res.stats.nonconverged_nodes, 0);
}

TEST(HssConstruction, AdaptiveSamplingAddsRoundsWhenInitialBlockIsSmall) {
  auto tr = test_util::build_cube_tree(512, 3, 72, 32);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = 8;
  opts.initial_samples = 8; // far below the 3D ranks: must adapt
  auto res = build_hss(tr, sampler, gen, opts);
  EXPECT_GT(res.stats.sample_rounds, 1);
  EXPECT_LT(rel_fro_error(res.matrix.densify().view(), kd.view()), 5e-4);
}

TEST(BatchedSolve, PotrfAndTrsmMatchReferenceInBothBackends) {
  // The new batched primitives against la:: applied per entry, Batched vs
  // Naive backend parity included.
  SmallRng rng(515);
  const index_t batch = 12;
  std::vector<Matrix> spd(batch), rhs(batch), spd_ref(batch), rhs_ref(batch);
  for (index_t e = 0; e < batch; ++e) {
    const index_t n = 1 + rng.next_index(40);
    const index_t m = 1 + rng.next_index(12);
    const Matrix g = random_matrix(n, n, 900 + static_cast<std::uint64_t>(e));
    Matrix a(n, n);
    la::gemm(1.0, g.view(), la::Op::None, g.view(), la::Op::Trans, 0.0, a.view());
    for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<real_t>(n);
    spd[static_cast<size_t>(e)] = to_matrix(a.view());
    spd_ref[static_cast<size_t>(e)] = to_matrix(a.view());
    rhs[static_cast<size_t>(e)] = random_matrix(m, n, 1900 + static_cast<std::uint64_t>(e));
    rhs_ref[static_cast<size_t>(e)] = to_matrix(rhs[static_cast<size_t>(e)].view());
  }
  for (auto backend : {batched::Backend::Batched, batched::Backend::Naive}) {
    std::vector<Matrix> a_run(batch), b_run(batch);
    for (index_t e = 0; e < batch; ++e) {
      a_run[static_cast<size_t>(e)] = to_matrix(spd[static_cast<size_t>(e)].view());
      b_run[static_cast<size_t>(e)] = to_matrix(rhs[static_cast<size_t>(e)].view());
    }
    batched::ExecutionContext ctx(backend);
    std::vector<MatrixView> av;
    for (auto& m : a_run) av.push_back(m.view());
    batched::batched_potrf(ctx, batched::kSampleStream, std::move(av));
    std::vector<ConstMatrixView> lv;
    std::vector<MatrixView> bv;
    for (index_t e = 0; e < batch; ++e) {
      lv.push_back(a_run[static_cast<size_t>(e)].view());
      bv.push_back(b_run[static_cast<size_t>(e)].view());
    }
    batched::batched_trsm_lower(ctx, batched::kSampleStream, batched::TrsmSide::Right,
                                la::Op::Trans, std::move(lv), std::move(bv));
    ctx.sync_all();
    for (index_t e = 0; e < batch; ++e) {
      Matrix ref_l = to_matrix(spd_ref[static_cast<size_t>(e)].view());
      la::cholesky(ref_l.view());
      Matrix ref_b = to_matrix(rhs_ref[static_cast<size_t>(e)].view());
      la::trsm_lower_right(ref_l.view(), la::Op::Trans, ref_b.view());
      EXPECT_EQ(max_abs_diff(a_run[static_cast<size_t>(e)].view(), ref_l.view()), 0.0)
          << "entry " << e;
      EXPECT_EQ(max_abs_diff(b_run[static_cast<size_t>(e)].view(), ref_b.view()), 0.0)
          << "entry " << e;
    }
  }
}

TEST(Ulv, SolveResidualTracksConstructionTolerance) {
  const index_t n = 600;
  auto tr = test_util::build_cube_tree(n, 2, 73, 32);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0); // SPD with a healthy margin
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto res = build_hss(tr, sampler, gen, opts);
  UlvCholesky f = ulv_factor(res.matrix);
  EXPECT_GT(f.memory_bytes(), 0u);

  const std::vector<real_t> b = test_util::random_vector(n, 77);
  std::vector<real_t> x(static_cast<size_t>(n));
  f.solve(b, x);
  // Acceptance shape: relative residual within 100x the construction tol.
  EXPECT_LT(dense_rel_residual(kd.view(), x, b), 100 * opts.tol);
}

TEST(Ulv, MatchesDenseCholeskyAtTightTolerance) {
  const index_t n = 320;
  auto tr = test_util::build_cube_tree(n, 2, 74, 16);
  kern::ExponentialKernel base(0.5);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-12;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  auto res = build_hss(tr, sampler, gen, opts);
  UlvCholesky f = ulv_factor(res.matrix);

  const std::vector<real_t> b = test_util::random_vector(n, 78);
  std::vector<real_t> x(static_cast<size_t>(n));
  f.solve(b, x);

  Matrix dense = to_matrix(kd.view());
  la::cholesky(dense.view());
  Matrix rhs(n, 1);
  for (index_t i = 0; i < n; ++i) rhs(i, 0) = b[static_cast<size_t>(i)];
  la::cholesky_solve(dense.view(), rhs.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<size_t>(i)], rhs(i, 0), 1e-8);
}

TEST(Ulv, SolveManyMatchesColumnwiseSolves) {
  const index_t n = 450, nrhs = 5;
  auto tr = test_util::build_cube_tree(n, 2, 75, 32);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto res = build_hss(tr, sampler, gen, opts);
  UlvCholesky f = ulv_factor(res.matrix);

  Matrix b(n, nrhs), x_many(n, nrhs);
  fill_gaussian(b.view(), GaussianStream(79));
  f.solve_many(b.view(), x_many.view());
  for (index_t j = 0; j < nrhs; ++j) {
    std::vector<real_t> bj(static_cast<size_t>(n)), xj(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) bj[static_cast<size_t>(i)] = b(i, j);
    f.solve(bj, xj);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x_many(i, j), xj[static_cast<size_t>(i)], 1e-11) << "rhs " << j;
  }
}

TEST(Ulv, ThrowsOnIndefiniteMatrix) {
  // A kernel matrix shifted far negative on the diagonal is not SPD; the
  // factorization must refuse it instead of producing garbage.
  const index_t n = 256;
  auto tr = test_util::build_cube_tree(n, 2, 76, 32);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, -2.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto res = build_hss(tr, sampler, gen, opts);
  EXPECT_THROW(ulv_factor(res.matrix), std::runtime_error);
}

TEST(Ulv, SingleLevelTreeFallsBackToDenseCholesky) {
  const index_t n = 24;
  auto tr = test_util::build_cube_tree(n, 2, 80, 32); // one cluster: no hierarchy
  ASSERT_EQ(tr->num_levels(), 1);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  auto res = build_hss(tr, sampler, gen, opts);
  UlvCholesky f = ulv_factor(res.matrix);
  const std::vector<real_t> b = test_util::random_vector(n, 81);
  std::vector<real_t> x(static_cast<size_t>(n));
  f.solve(b, x);
  EXPECT_LT(dense_rel_residual(kd.view(), x, b), 1e-12);
}

TEST(Pcg, HssUlvPreconditionerCutsIterationsByThreeOrMore) {
  // The serving pattern: operator applied through the strong-admissibility
  // H2 matvec; preconditioner is the ULV factorization of a coarse
  // (loose-tolerance) HSS compression of the same operator.
  const index_t n = 900;
  auto tr = test_util::build_cube_tree(n, 2, 82, 32);
  kern::ExponentialKernel base(0.5);
  kern::RidgeKernel k(base, 0.02); // small ridge: ill-conditioned enough
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);

  // Fine operator (the "A" of the linear system).
  kern::DenseMatrixSampler s_h2(kd.view());
  core::ConstructionOptions fine;
  fine.tol = 1e-9;
  fine.sample_block = 32;
  fine.initial_samples = 64;
  auto a_h2 =
      core::construct_h2(tr, tree::Admissibility::general(0.7), s_h2, gen, fine);
  batched::ExecutionContext ctx;
  ApplyFn apply_a = [&](const_real_span in, real_span out) {
    ConstMatrixView xi(in.data(), n, 1, n);
    MatrixView yo(out.data(), n, 1, n);
    h2::h2_matvec(ctx, a_h2.matrix, xi, yo);
    ctx.sync_all();
  };

  // Coarse preconditioner.
  kern::DenseMatrixSampler s_hss(kd.view());
  core::ConstructionOptions coarse;
  coarse.tol = 1e-4;
  coarse.sample_block = 16;
  coarse.initial_samples = 32;
  auto m_hss = build_hss(tr, s_hss, gen, coarse);
  UlvCholesky f = ulv_factor(m_hss.matrix);

  const std::vector<real_t> b = test_util::random_vector(n, 83);
  PcgOptions popts;
  popts.tol = 1e-8;
  popts.max_iters = 2000;

  std::vector<real_t> x_plain(static_cast<size_t>(n), 0.0);
  PcgResult plain = pcg(apply_a, b, x_plain, popts);
  ASSERT_TRUE(plain.converged);

  std::vector<real_t> x_pre(static_cast<size_t>(n), 0.0);
  PcgResult pre = pcg(apply_a, b, x_pre, popts, f);
  ASSERT_TRUE(pre.converged);

  // The acceptance bar: <= 1/3 the unpreconditioned iterations.
  EXPECT_LE(3 * pre.iterations, plain.iterations)
      << "plain " << plain.iterations << " vs preconditioned " << pre.iterations;
  // Both converged to the same solution of the H2 operator.
  real_t diff = 0.0;
  for (index_t i = 0; i < n; ++i)
    diff = std::max(diff, std::abs(x_plain[static_cast<size_t>(i)] -
                                   x_pre[static_cast<size_t>(i)]));
  EXPECT_LT(diff, 1e-5);
}

} // namespace
} // namespace h2sketch::solver
