#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

/// \file test_thread_pool.cpp
/// The persistent work-stealing pool behind the stream runtime: reuse across
/// parallel regions (no fork/join), exception propagation through
/// TaskGroup::wait and parallel_for, nested submission from inside tasks,
/// and the determinism contract (identical visit sets for any width).
/// Forced-width pools make the suite independent of the host's core count
/// and of OpenMP availability.

namespace h2sketch {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexOnceAnyWidth) {
  for (int width : {1, 2, 4, 7}) {
    ThreadPool pool(width);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(257, [&](index_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "width " << width;
  }
}

TEST(ThreadPool, PersistsAcrossManyParallelRegions) {
  // The whole point of the pool: one set of workers serves every launch.
  // 200 back-to-back regions on one pool must all complete correctly —
  // with a fork/join model this is 200 thread-team spawns; here the
  // telemetry shows tasks flowing through the same pool.
  ThreadPool pool(4);
  std::atomic<index_t> total{0};
  for (int r = 0; r < 200; ++r)
    pool.parallel_for(64, [&](index_t) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 200 * 64);
  EXPECT_GT(pool.tasks_executed(), std::uint64_t{0});
}

TEST(ThreadPool, TaskGroupWaitRethrowsFirstException) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int t = 0; t < 16; ++t) {
    group.run([&ran, t] {
      ran.fetch_add(1);
      if (t == 5) throw std::runtime_error("task 5 failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // Every task still ran — one failure does not cancel its siblings.
  EXPECT_EQ(ran.load(), 16);
  // The group is reusable after the error was consumed.
  group.run([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(ran.load(), 17);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(128,
                                 [](index_t i) {
                                   if (i == 77) throw std::logic_error("bad entry");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, NestedSubmitFromWorkerDoesNotDeadlock) {
  // A task that spawns subtasks and waits for them: the waiting worker must
  // help execute instead of sleeping (cooperative wait), or a pool narrower
  // than the nesting depth deadlocks.
  ThreadPool pool(2);
  std::atomic<index_t> inner_total{0};
  pool.parallel_for(8, [&](index_t) {
    TaskGroup sub(pool);
    for (int k = 0; k < 8; ++k)
      sub.run([&inner_total] { inner_total.fetch_add(1, std::memory_order_relaxed); });
    sub.wait();
  });
  EXPECT_EQ(inner_total.load(), 8 * 8);
}

TEST(ThreadPool, NestedParallelForComputesCorrectly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(40 * 25);
  pool.parallel_for(40, [&](index_t i) {
    pool.parallel_for(25, [&, i](index_t j) {
      hits[static_cast<size_t>(i * 25 + j)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, UnevenWorkIsStolenNotSerialized) {
  // One entry carries ~all the cost; with stealing, the other entries do
  // not queue behind it on the same worker. Correctness check (exact visit
  // set) plus a coarse liveness check that the cheap entries complete even
  // while the expensive one is still running.
  ThreadPool pool(4);
  std::atomic<bool> big_done{false};
  std::atomic<int> cheap_done{0};
  pool.parallel_for(64, [&](index_t i) {
    if (i == 0) {
      // Spin until every cheap entry finished (they can, since they are
      // stolen by the other workers); a serializing pool would livelock
      // here, caught by the test timeout.
      while (cheap_done.load(std::memory_order_acquire) < 63) std::this_thread::yield();
      big_done.store(true, std::memory_order_release);
    } else {
      cheap_done.fetch_add(1, std::memory_order_acq_rel);
    }
  });
  EXPECT_TRUE(big_done.load());
  EXPECT_EQ(cheap_done.load(), 63);
}

TEST(ThreadPool, ExternalWaitersHelpExecute) {
  // A TaskGroup waiter that is not a pool worker must drain tasks too:
  // submit from the main thread on a width-2 pool and wait — observed
  // externally as completion even when the single worker is busy.
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int t = 0; t < 32; ++t) group.run([&done] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, GlobalPoolFollowsNumThreads) {
  // The global pool's width is the num_threads() knob, re-read per region.
  EXPECT_EQ(ThreadPool::global().width(), std::max(1, num_threads()));
}

TEST(ThreadPool, RuntimeModeToggleRoundTrips) {
  ASSERT_EQ(runtime_mode(), RuntimeMode::Streams);
  set_runtime_mode(RuntimeMode::FlatOpenMP);
  EXPECT_EQ(runtime_mode(), RuntimeMode::FlatOpenMP);
  // Flat mode must still compute correctly through the same entry point.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](index_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  set_runtime_mode(RuntimeMode::Streams);
}

} // namespace
} // namespace h2sketch
