#include "la/qr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::la {
namespace {

using test_util::random_matrix;
using test_util::rank_r_matrix;

Matrix upper_triangle(ConstMatrixView qr) {
  Matrix r(std::min(qr.rows, qr.cols), qr.cols);
  for (index_t j = 0; j < qr.cols; ++j)
    for (index_t i = 0; i <= std::min(j, r.rows() - 1); ++i) r(i, j) = qr(i, j);
  return r;
}

class QrShapes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(QrShapes, ReconstructsA) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 42);
  Matrix f = to_matrix(a.view());
  std::vector<real_t> tau;
  householder_qr(f.view(), tau);
  const Matrix r = upper_triangle(f.view());
  const Matrix q = form_q(f.view(), tau, std::min(m, n));
  Matrix qr_prod(m, n);
  gemm(1.0, q.view(), Op::None, r.view(), Op::None, 0.0, qr_prod.view());
  EXPECT_LT(max_abs_diff(qr_prod.view(), a.view()), 1e-12);
}

TEST_P(QrShapes, QHasOrthonormalColumns) {
  const auto [m, n] = GetParam();
  const index_t k = std::min(m, n);
  Matrix f = random_matrix(m, n, 17);
  std::vector<real_t> tau;
  householder_qr(f.view(), tau);
  const Matrix q = form_q(f.view(), tau, k);
  Matrix qtq(k, k);
  gemm(1.0, q.view(), Op::Trans, q.view(), Op::None, 0.0, qtq.view());
  EXPECT_LT(max_abs_diff(qtq.view(), Matrix::identity(k).view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(TallSquareWide, QrShapes,
                         ::testing::Values(std::make_pair<index_t, index_t>(12, 5),
                                           std::make_pair<index_t, index_t>(7, 7),
                                           std::make_pair<index_t, index_t>(4, 9),
                                           std::make_pair<index_t, index_t>(1, 1),
                                           std::make_pair<index_t, index_t>(20, 3)));

TEST(Qr, ApplyQTransposeInvertsApplyQ) {
  Matrix f = random_matrix(9, 4, 3);
  std::vector<real_t> tau;
  householder_qr(f.view(), tau);
  const Matrix b = random_matrix(9, 2, 4);
  Matrix w = to_matrix(b.view());
  apply_q(f.view(), tau, w.view());
  apply_q_transpose(f.view(), tau, w.view());
  EXPECT_LT(max_abs_diff(w.view(), b.view()), 1e-12);
}

TEST(Qr, QTransposeTimesAGivesR) {
  const Matrix a = random_matrix(8, 5, 5);
  Matrix f = to_matrix(a.view());
  std::vector<real_t> tau;
  householder_qr(f.view(), tau);
  Matrix w = to_matrix(a.view());
  apply_q_transpose(f.view(), tau, w.view());
  // Below-diagonal entries of Q^T A must vanish.
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = j + 1; i < 8; ++i) EXPECT_NEAR(w(i, j), 0.0, 1e-12);
}

TEST(MinAbsRDiag, DetectsRankDeficiency) {
  // Rank-3 matrix with 6 columns: some R diagonal must be ~0.
  const Matrix a = rank_r_matrix(20, 6, 3, 7);
  EXPECT_LT(min_abs_r_diag(a.view()), 1e-10);
  // Full-rank Gaussian: diagonal bounded away from zero.
  const Matrix b = random_matrix(20, 6, 8);
  EXPECT_GT(min_abs_r_diag(b.view()), 1e-3);
}

TEST(MinAbsRDiag, EmptyAndZeroMatrices) {
  Matrix z(5, 3);
  EXPECT_EQ(min_abs_r_diag(z.view()), 0.0);
  Matrix e(0, 0);
  EXPECT_EQ(min_abs_r_diag(e.view()), 0.0);
}

TEST(Cpqr, PivotsAreAPermutation) {
  Matrix a = random_matrix(10, 8, 9);
  std::vector<real_t> tau;
  const Cpqr f = cpqr(a.view(), tau, 0.0);
  std::vector<index_t> sorted = f.piv;
  std::sort(sorted.begin(), sorted.end());
  for (index_t j = 0; j < 8; ++j) EXPECT_EQ(sorted[static_cast<size_t>(j)], j);
  EXPECT_EQ(f.rank, 8);
}

TEST(Cpqr, DiagonalMagnitudesNonIncreasing) {
  Matrix a = random_matrix(16, 10, 10);
  std::vector<real_t> tau;
  const Cpqr f = cpqr(a.view(), tau, 0.0);
  for (index_t i = 0; i + 1 < f.rank; ++i)
    EXPECT_GE(std::abs(a(i, i)) * (1 + 1e-12), std::abs(a(i + 1, i + 1)));
}

TEST(Cpqr, DetectsNumericalRank) {
  const Matrix a = rank_r_matrix(30, 20, 5, 11);
  Matrix f = to_matrix(a.view());
  std::vector<real_t> tau;
  const Cpqr res = cpqr(f.view(), tau, 1e-10 * norm_f(a.view()));
  EXPECT_EQ(res.rank, 5);
}

TEST(Cpqr, MaxRankCapsFactorization) {
  Matrix a = random_matrix(12, 12, 12);
  std::vector<real_t> tau;
  const Cpqr res = cpqr(a.view(), tau, 0.0, /*max_rank=*/4);
  EXPECT_EQ(res.rank, 4);
}

TEST(Cpqr, ReconstructsPermutedMatrix) {
  const Matrix a = random_matrix(9, 6, 13);
  Matrix f = to_matrix(a.view());
  std::vector<real_t> tau;
  const Cpqr res = cpqr(f.view(), tau, 0.0);
  const Matrix q = form_q(f.view(), tau, 6);
  const Matrix r = upper_triangle(f.view());
  Matrix qr_prod(9, 6);
  gemm(1.0, q.view(), Op::None, r.view(), Op::None, 0.0, qr_prod.view());
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 9; ++i)
      EXPECT_NEAR(qr_prod(i, j), a(i, res.piv[static_cast<size_t>(j)]), 1e-12);
}

TEST(Cpqr, ZeroMatrixHasRankZero) {
  Matrix z(6, 4);
  std::vector<real_t> tau;
  const Cpqr res = cpqr(z.view(), tau, 1e-14);
  EXPECT_EQ(res.rank, 0);
}

} // namespace
} // namespace h2sketch::la
