#include "batched/device.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "batched/batched_rand.hpp"
#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/h2_dense.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "test_common.hpp"

/// ExecutionContext Naive-vs-Batched parity: the paper's §IV-A ablation
/// mechanism. Both backends must produce bit-identical construction output;
/// only the kernel-launch accounting differs (one launch per batch vs one
/// launch per batch entry), which is what the ablation benchmarks report.

namespace h2sketch::batched {
namespace {

using tree::Admissibility;

TEST(ExecutionContext, RunBatchLaunchAccountingIsExact) {
  const std::vector<index_t> batch_sizes = {7, 1, 0, 12, 3};
  index_t expected_naive = 0, expected_batched = 0;
  for (index_t b : batch_sizes) {
    expected_naive += b;
    if (b > 0) ++expected_batched;
  }

  for (Backend backend : {Backend::Naive, Backend::Batched}) {
    ExecutionContext ctx(backend);
    std::atomic<index_t> visits{0};
    for (index_t b : batch_sizes)
      ctx.run_batch(b, [&](index_t) { visits.fetch_add(1, std::memory_order_relaxed); });
    // Every entry executes exactly once regardless of backend.
    EXPECT_EQ(visits.load(), expected_naive);
    EXPECT_EQ(ctx.kernel_launches(),
              backend == Backend::Naive ? expected_naive : expected_batched);
  }
}

TEST(ExecutionContext, RunBatchVisitsEveryIndexOnce) {
  for (Backend backend : {Backend::Naive, Backend::Batched}) {
    ExecutionContext ctx(backend);
    std::vector<std::atomic<int>> hits(64);
    ctx.run_batch(64, [&](index_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ExecutionContext, EmptyLaunchesRecordNoLaunchInEitherBackend) {
  // Regression for the empty-level accounting: a batch of size 0 (an empty
  // level, an empty near/far list) must cost zero launches uniformly —
  // Naive counting per entry and Batched counting per launch agree at 0.
  for (Backend backend : {Backend::Naive, Backend::Batched}) {
    ExecutionContext ctx(backend);
    ctx.run_batch(0, [](index_t) { FAIL() << "empty batch must not execute"; });
    ctx.run_batch(kSampleStream, 0, [](index_t) { FAIL(); });
    ctx.run_batch(
        kBasisStream, 0, [](index_t) { return index_t{1}; }, [](index_t) { FAIL(); });
    ctx.run_batch(-3, [](index_t) { FAIL(); });
    ctx.sync_all();
    EXPECT_EQ(ctx.kernel_launches(), 0) << (backend == Backend::Naive ? "naive" : "batched");
  }
}

TEST(ExecutionContext, EmptyGaussianFillRecordsNoLaunch) {
  ExecutionContext ctx(Backend::Batched);
  Matrix empty;
  GaussianStream stream(7);
  batched_fill_gaussian(ctx, empty.view(), stream, 0);
  EXPECT_EQ(ctx.kernel_launches(), 0);
  Matrix some(3, 2);
  batched_fill_gaussian(ctx, some.view(), stream, 0);
  EXPECT_EQ(ctx.kernel_launches(), 1);
}

TEST(ExecutionContext, SameStreamLaunchesRunInFifoOrder) {
  // The stream contract replacing implicit launch barriers: launch k+1 on a
  // stream must observe every write of launch k. Chain 50 dependent
  // launches; any reordering or overlap corrupts the running sum (recorded
  // in a flag — launch bodies may run off the main thread, so no gtest
  // assertions inside).
  ExecutionContext ctx(Backend::Batched);
  std::vector<index_t> acc(8, 0);
  std::atomic<bool> order_violated{false};
  for (int k = 0; k < 50; ++k)
    ctx.run_batch(kSampleStream, 8, [&acc, &order_violated, k](index_t i) {
      if (acc[static_cast<size_t>(i)] != k) order_violated.store(true); // launch k-1 unfinished
      ++acc[static_cast<size_t>(i)];
    });
  ctx.sync(kSampleStream);
  EXPECT_FALSE(order_violated.load());
  for (index_t v : acc) EXPECT_EQ(v, 50);
  EXPECT_EQ(ctx.stream_launches(kSampleStream), 50);
  EXPECT_EQ(ctx.kernel_launches(), 50);
}

TEST(ExecutionContext, IndependentStreamsAllCompleteAtSyncAll) {
  ExecutionContext ctx(Backend::Batched);
  std::array<std::atomic<index_t>, static_cast<size_t>(kNumStreams)> per_stream{};
  for (StreamId s = 0; s < kNumStreams; ++s)
    for (int k = 0; k < 5; ++k)
      ctx.run_batch(s, 16, [&per_stream, s](index_t) {
        per_stream[static_cast<size_t>(s)].fetch_add(1, std::memory_order_relaxed);
      });
  ctx.sync_all();
  for (StreamId s = 0; s < kNumStreams; ++s) {
    EXPECT_EQ(per_stream[static_cast<size_t>(s)].load(), 5 * 16);
    EXPECT_EQ(ctx.stream_launches(s), 5);
  }
  EXPECT_EQ(ctx.kernel_launches(), 5 * kNumStreams);
}

TEST(ExecutionContext, LaunchExceptionSurfacesNoLaterThanSync) {
  ExecutionContext ctx(Backend::Batched);
  auto issue_and_sync = [&ctx] {
    ctx.run_batch(kSampleStream, 32, [](index_t i) {
      if (i == 13) throw std::runtime_error("entry 13 failed");
    });
    ctx.sync(kSampleStream);
  };
  EXPECT_THROW(issue_and_sync(), std::runtime_error);
  // The stream is usable again after the error is consumed.
  std::atomic<int> ran{0};
  ctx.run_batch(kSampleStream, 4, [&ran](index_t) { ran.fetch_add(1); });
  ctx.sync(kSampleStream);
  EXPECT_EQ(ran.load(), 4);
}

TEST(ExecutionContext, CostChunkedLaunchExecutesEveryEntryOnce) {
  // Wildly skewed per-entry costs (every 10th entry pretends to be 1000x
  // the rest) must not drop, duplicate, or reorder entry effects.
  ExecutionContext ctx(Backend::Batched);
  std::vector<index_t> out(100, 0);
  ctx.run_batch(
      kSampleStream, 100, [](index_t i) { return (i % 10 == 0) ? index_t{1000} : index_t{1}; },
      [&out](index_t i) { out[static_cast<size_t>(i)] += i * i; });
  ctx.sync(kSampleStream);
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

/// A construction whose tree has levels with no admissible blocks must not
/// charge launches for them: pin the exact launch count of a near-field-only
/// problem (two leaves, everything inadmissible) in both backends.
TEST(ExecutionContext, NearFieldOnlyConstructionLaunchCountsArePinned) {
  auto tr = test_util::build_cube_tree(32, 1, 5, 16); // 2 leaves, 1D line
  kern::ExponentialKernel k(0.2);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;

  // eta = 0 admissibility: nothing is admissible, every level is "empty".
  for (Backend backend : {Backend::Naive, Backend::Batched}) {
    kern::DenseMatrixSampler sampler(kd.view());
    ExecutionContext ctx(backend);
    auto res = core::construct_h2(tr, Admissibility::general(0.0), sampler, gen, opts, ctx);
    ASSERT_FALSE(res.matrix.mtree.has_any_far());
    const index_t near_blocks = res.matrix.mtree.near_leaf.count();
    // Exactly one operation runs: the near-field entry generation. Batched:
    // one launch total. Naive: one launch per near block. Empty far levels
    // contribute zero in both backends.
    EXPECT_EQ(res.stats.kernel_launches, backend == Backend::Batched ? 1 : near_blocks);
  }
}

/// Full-construction parity on a 3D adaptive build (multiple sample rounds):
/// the counter-based RNG and identical per-entry arithmetic make the two
/// backends bit-identical end to end.
TEST(ExecutionContext, ConstructionParityNaiveVsBatched3D) {
  auto tr = test_util::build_cube_tree(512, 3, 77, 16);
  kern::Matern32Kernel k(0.3);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;

  kern::DenseMatrixSampler sn(kd.view()), sb(kd.view());
  ExecutionContext cn(Backend::Naive), cb(Backend::Batched);
  auto rn = core::construct_h2(tr, Admissibility::general(0.7), sn, gen, opts, cn);
  auto rb = core::construct_h2(tr, Admissibility::general(0.7), sb, gen, opts, cb);

  EXPECT_EQ(max_abs_diff(h2::densify(rn.matrix).view(), h2::densify(rb.matrix).view()), 0.0);
  EXPECT_EQ(rn.stats.total_samples, rb.stats.total_samples);
  EXPECT_EQ(rn.stats.sample_rounds, rb.stats.sample_rounds);
  EXPECT_GT(rn.stats.kernel_launches, rb.stats.kernel_launches);
}

/// The mechanism behind the paper's GPU speedups: naive launches scale with
/// the number of blocks (so roughly linearly in N), batched launches with
/// levels x operations (logarithmically). Growing N must widen the gap.
TEST(ExecutionContext, LaunchGapWidensWithProblemSize) {
  kern::ExponentialKernel k(0.2);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;

  auto launches = [&](index_t n, Backend backend) {
    auto tr = test_util::build_cube_tree(n, 2, 78, 16);
    const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
    kern::DenseMatrixSampler sampler(kd.view());
    kern::KernelEntryGenerator gen(*tr, k);
    ExecutionContext ctx(backend);
    auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts, ctx);
    return res.stats.kernel_launches;
  };

  const index_t naive_small = launches(256, Backend::Naive);
  const index_t naive_big = launches(1024, Backend::Naive);
  const index_t batched_small = launches(256, Backend::Batched);
  const index_t batched_big = launches(1024, Backend::Batched);

  ASSERT_GT(batched_small, 0);
  ASSERT_GT(naive_small, batched_small);
  // Naive launch count grows much faster than the batched one (O(N) blocks
  // vs O(levels) batches): compare growth factors at 4x the points.
  const double naive_growth = static_cast<double>(naive_big) / static_cast<double>(naive_small);
  const double batched_growth =
      static_cast<double>(batched_big) / static_cast<double>(batched_small);
  EXPECT_GT(naive_growth, 2.0);
  EXPECT_LT(batched_growth, naive_growth);
}

} // namespace
} // namespace h2sketch::batched
