#include "batched/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/construction.hpp"
#include "h2/h2_dense.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "test_common.hpp"

/// ExecutionContext Naive-vs-Batched parity: the paper's §IV-A ablation
/// mechanism. Both backends must produce bit-identical construction output;
/// only the kernel-launch accounting differs (one launch per batch vs one
/// launch per batch entry), which is what the ablation benchmarks report.

namespace h2sketch::batched {
namespace {

using tree::Admissibility;

TEST(ExecutionContext, RunBatchLaunchAccountingIsExact) {
  const std::vector<index_t> batch_sizes = {7, 1, 0, 12, 3};
  index_t expected_naive = 0, expected_batched = 0;
  for (index_t b : batch_sizes) {
    expected_naive += b;
    if (b > 0) ++expected_batched;
  }

  for (Backend backend : {Backend::Naive, Backend::Batched}) {
    ExecutionContext ctx(backend);
    std::atomic<index_t> visits{0};
    for (index_t b : batch_sizes)
      ctx.run_batch(b, [&](index_t) { visits.fetch_add(1, std::memory_order_relaxed); });
    // Every entry executes exactly once regardless of backend.
    EXPECT_EQ(visits.load(), expected_naive);
    EXPECT_EQ(ctx.kernel_launches(),
              backend == Backend::Naive ? expected_naive : expected_batched);
  }
}

TEST(ExecutionContext, RunBatchVisitsEveryIndexOnce) {
  for (Backend backend : {Backend::Naive, Backend::Batched}) {
    ExecutionContext ctx(backend);
    std::vector<std::atomic<int>> hits(64);
    ctx.run_batch(64, [&](index_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

/// Full-construction parity on a 3D adaptive build (multiple sample rounds):
/// the counter-based RNG and identical per-entry arithmetic make the two
/// backends bit-identical end to end.
TEST(ExecutionContext, ConstructionParityNaiveVsBatched3D) {
  auto tr = test_util::build_cube_tree(512, 3, 77, 16);
  kern::Matern32Kernel k(0.3);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;

  kern::DenseMatrixSampler sn(kd.view()), sb(kd.view());
  ExecutionContext cn(Backend::Naive), cb(Backend::Batched);
  auto rn = core::construct_h2(tr, Admissibility::general(0.7), sn, gen, opts, cn);
  auto rb = core::construct_h2(tr, Admissibility::general(0.7), sb, gen, opts, cb);

  EXPECT_EQ(max_abs_diff(h2::densify(rn.matrix).view(), h2::densify(rb.matrix).view()), 0.0);
  EXPECT_EQ(rn.stats.total_samples, rb.stats.total_samples);
  EXPECT_EQ(rn.stats.sample_rounds, rb.stats.sample_rounds);
  EXPECT_GT(rn.stats.kernel_launches, rb.stats.kernel_launches);
}

/// The mechanism behind the paper's GPU speedups: naive launches scale with
/// the number of blocks (so roughly linearly in N), batched launches with
/// levels x operations (logarithmically). Growing N must widen the gap.
TEST(ExecutionContext, LaunchGapWidensWithProblemSize) {
  kern::ExponentialKernel k(0.2);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;

  auto launches = [&](index_t n, Backend backend) {
    auto tr = test_util::build_cube_tree(n, 2, 78, 16);
    const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
    kern::DenseMatrixSampler sampler(kd.view());
    kern::KernelEntryGenerator gen(*tr, k);
    ExecutionContext ctx(backend);
    auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts, ctx);
    return res.stats.kernel_launches;
  };

  const index_t naive_small = launches(256, Backend::Naive);
  const index_t naive_big = launches(1024, Backend::Naive);
  const index_t batched_small = launches(256, Backend::Batched);
  const index_t batched_big = launches(1024, Backend::Batched);

  ASSERT_GT(batched_small, 0);
  ASSERT_GT(naive_small, batched_small);
  // Naive launch count grows much faster than the batched one (O(N) blocks
  // vs O(levels) batches): compare growth factors at 4x the points.
  const double naive_growth = static_cast<double>(naive_big) / static_cast<double>(naive_small);
  const double batched_growth =
      static_cast<double>(batched_big) / static_cast<double>(batched_small);
  EXPECT_GT(naive_growth, 2.0);
  EXPECT_LT(batched_growth, naive_growth);
}

} // namespace
} // namespace h2sketch::batched
