#include "la/lowrank.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::la {
namespace {

TEST(LowRank, ApplyMatchesDensify) {
  const LowRank lr = random_lowrank(12, 9, 3, 1.0, 77);
  const Matrix d = lr.densify();
  const Matrix x = test_util::random_matrix(9, 4, 1);
  Matrix y1(12, 4), y2(12, 4);
  lr.apply(2.0, x.view(), y1.view());
  gemm(2.0, d.view(), Op::None, x.view(), Op::None, 1.0, y2.view());
  EXPECT_LT(max_abs_diff(y1.view(), y2.view()), 1e-12);
}

TEST(LowRank, EntryMatchesDensify) {
  const LowRank lr = random_lowrank(8, 7, 2, 0.5, 78);
  const Matrix d = lr.densify();
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 7; ++j) EXPECT_NEAR(lr.entry(i, j), d(i, j), 1e-14);
}

TEST(LowRank, RandomFactorShapes) {
  const LowRank lr = random_lowrank(10, 6, 4, 1.0, 79);
  EXPECT_EQ(lr.rows(), 10);
  EXPECT_EQ(lr.cols(), 6);
  EXPECT_EQ(lr.rank(), 4);
}

TEST(LowRank, TruncateRecoversLowRankMatrix) {
  const LowRank gen = random_lowrank(20, 16, 5, 1.0, 80);
  const Matrix d = gen.densify();
  const LowRank tr = truncate_to_lowrank(d.view(), 1e-10);
  EXPECT_EQ(tr.rank(), 5);
  EXPECT_LT(max_abs_diff(tr.densify().view(), d.view()), 1e-9);
}

TEST(LowRank, TruncateHonorsMaxRank) {
  const LowRank gen = random_lowrank(15, 15, 8, 1.0, 81);
  const LowRank tr = truncate_to_lowrank(gen.densify().view(), 1e-14, /*max_rank=*/3);
  EXPECT_EQ(tr.rank(), 3);
}

TEST(LowRank, RankZeroIsUsable) {
  LowRank lr;
  lr.u.resize(5, 0);
  lr.v.resize(4, 0);
  Matrix x(4, 2), y(5, 2);
  lr.apply(1.0, x.view(), y.view());
  EXPECT_EQ(norm_f(y.view()), 0.0);
  EXPECT_EQ(lr.entry(0, 0), 0.0);
}

} // namespace
} // namespace h2sketch::la
