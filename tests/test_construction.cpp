#include "core/construction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/error_est.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "la/svd.hpp"
#include "test_common.hpp"

namespace h2sketch::core {
namespace {

using tree::Admissibility;
using tree::ClusterTree;
using test_util::dense_kernel_matrix;
using test_util::rel_fro_error;

struct BuildCase {
  index_t n;
  index_t dim;
  index_t leaf;
  real_t eta;
  int kernel; ///< 0 = exponential, 1 = helmholtz, 2 = matern
  real_t tol;
  std::uint64_t seed;
};

std::unique_ptr<kern::KernelFunction> make_kernel(int id) {
  switch (id) {
    case 1: return std::make_unique<kern::HelmholtzCosKernel>(3.0);
    case 2: return std::make_unique<kern::Matern32Kernel>(0.3);
    default: return std::make_unique<kern::ExponentialKernel>(0.2);
  }
}

class SketchBuild : public ::testing::TestWithParam<BuildCase> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    tree_ = test_util::build_cube_tree(p.n, p.dim, p.seed, p.leaf);
    kernel_ = make_kernel(p.kernel);
    kd_ = dense_kernel_matrix(*tree_, *kernel_);
  }
  std::shared_ptr<ClusterTree> tree_;
  std::unique_ptr<kern::KernelFunction> kernel_;
  Matrix kd_;
};

TEST_P(SketchBuild, ReachesToleranceAgainstDenseTruth) {
  const auto p = GetParam();
  kern::DenseMatrixSampler sampler(kd_.view());
  kern::KernelEntryGenerator gen(*tree_, *kernel_);
  ConstructionOptions opts;
  opts.tol = p.tol;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  auto res = construct_h2(tree_, Admissibility::general(p.eta), sampler, gen, opts);
  res.matrix.validate();
  ASSERT_TRUE(res.matrix.mtree.has_any_far()) << "test config exercises nothing";
  const Matrix ad = h2::densify(res.matrix);
  const real_t err = rel_fro_error(ad.view(), kd_.view());
  EXPECT_LT(err, 30.0 * p.tol) << res.stats.summary();
  EXPECT_EQ(res.stats.total_samples, sampler.samples_taken());
  EXPECT_EQ(res.stats.nonconverged_nodes, 0);
}

TEST_P(SketchBuild, SkeletonIndicesLieInTheirClusters) {
  const auto p = GetParam();
  kern::DenseMatrixSampler sampler(kd_.view());
  kern::KernelEntryGenerator gen(*tree_, *kernel_);
  ConstructionOptions opts;
  opts.tol = p.tol;
  auto res = construct_h2(tree_, Admissibility::general(p.eta), sampler, gen, opts);
  const auto& a = res.matrix;
  for (index_t l = 0; l < a.num_levels(); ++l)
    for (index_t i = 0; i < tree_->nodes_at(l); ++i)
      for (index_t s : a.skeleton[static_cast<size_t>(l)][static_cast<size_t>(i)]) {
        EXPECT_GE(s, tree_->begin(l, i));
        EXPECT_LT(s, tree_->end(l, i));
      }
}

TEST_P(SketchBuild, CouplingBlocksAreExactKernelEntries) {
  const auto p = GetParam();
  kern::DenseMatrixSampler sampler(kd_.view());
  kern::KernelEntryGenerator gen(*tree_, *kernel_);
  ConstructionOptions opts;
  opts.tol = p.tol;
  auto res = construct_h2(tree_, Admissibility::general(p.eta), sampler, gen, opts);
  const auto& a = res.matrix;
  for (index_t l = 0; l < a.num_levels(); ++l) {
    const auto& far = a.mtree.far[static_cast<size_t>(l)];
    for (index_t r = 0; r < tree_->nodes_at(l); ++r)
      for (index_t j = 0; j < far.row_count(r); ++j) {
        const index_t e = far.row_ptr[static_cast<size_t>(r)] + j;
        const index_t c = far.col_at(r, j);
        const Matrix& b = a.coupling[static_cast<size_t>(l)].host(e);
        const auto& rs = a.skeleton[static_cast<size_t>(l)][static_cast<size_t>(r)];
        const auto& cs = a.skeleton[static_cast<size_t>(l)][static_cast<size_t>(c)];
        for (index_t jj = 0; jj < b.cols(); ++jj)
          for (index_t ii = 0; ii < b.rows(); ++ii)
            EXPECT_DOUBLE_EQ(b(ii, jj),
                             kd_(rs[static_cast<size_t>(ii)], cs[static_cast<size_t>(jj)]));
      }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsEtaSizes, SketchBuild,
    ::testing::Values(BuildCase{400, 2, 16, 0.7, 0, 1e-6, 1},
                      BuildCase{400, 2, 16, 0.7, 1, 1e-6, 2},
                      BuildCase{512, 3, 8, 0.9, 0, 1e-6, 3},
                      BuildCase{300, 2, 16, 0.7, 2, 1e-8, 4},
                      BuildCase{700, 3, 32, 0.9, 0, 1e-4, 5},
                      BuildCase{513, 2, 32, 0.9, 0, 1e-6, 6}));

TEST(SketchConstruction, BackendsProduceIdenticalMatrices) {
  auto tr = test_util::build_cube_tree(300, 2, 11, 16);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-6;

  kern::DenseMatrixSampler s1(kd.view()), s2(kd.view());
  batched::ExecutionContext cb(batched::Backend::Batched), cn(batched::Backend::Naive);
  auto rb = construct_h2(tr, Admissibility::general(0.7), s1, gen, opts, cb);
  auto rn = construct_h2(tr, Admissibility::general(0.7), s2, gen, opts, cn);

  // The counter-based RNG and identical arithmetic order inside each batch
  // entry make the two backends bit-identical.
  const Matrix db = h2::densify(rb.matrix), dn = h2::densify(rn.matrix);
  EXPECT_EQ(max_abs_diff(db.view(), dn.view()), 0.0);
  // The batched backend needs far fewer kernel launches.
  EXPECT_LT(rb.stats.kernel_launches * 5, rn.stats.kernel_launches);
}

TEST(SketchConstruction, FixedSampleModeMatchesPaperVariant) {
  auto tr = test_util::build_cube_tree(400, 2, 12, 16);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.adaptive = false;
  opts.initial_samples = 128;
  auto res = construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  ASSERT_TRUE(res.matrix.mtree.has_any_far());
  EXPECT_EQ(res.stats.total_samples, 128);
  EXPECT_EQ(res.stats.sample_rounds, 1);
  EXPECT_LT(rel_fro_error(h2::densify(res.matrix).view(), kd.view()), 1e-5);
}

TEST(SketchConstruction, AdaptiveAddsRoundsWhenBlockIsSmall) {
  auto tr = test_util::build_cube_tree(800, 2, 64, 32);
  kern::ExponentialKernel k(0.3);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 8;
  opts.initial_samples = 8;
  auto res = construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  ASSERT_TRUE(res.matrix.mtree.has_any_far());
  EXPECT_GT(res.stats.sample_rounds, 1);
  EXPECT_GT(res.stats.total_samples, 8);
  EXPECT_LT(rel_fro_error(h2::densify(res.matrix).view(), kd.view()), 1e-6);
}

TEST(SketchConstruction, WeakAdmissibilityGivesHssBehaviour) {
  // Algorithm 1 under weak admissibility is Martinsson's HSS construction;
  // 1D geometry keeps HSS ranks small.
  auto tr = test_util::build_cube_tree(512, 1, 13, 32);
  kern::ExponentialKernel k(0.5);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto res = construct_h2(tr, Admissibility::weak(), sampler, gen, opts);
  EXPECT_LT(rel_fro_error(h2::densify(res.matrix).view(), kd.view()), 1e-6);
  EXPECT_EQ(res.matrix.mtree.csp(), 1);
}

TEST(SketchConstruction, FullyDenseTinyProblemNeedsNoSamples) {
  auto tr = test_util::build_cube_tree(50, 3, 14, 64);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  auto res = construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  EXPECT_EQ(sampler.samples_taken(), 0); // nothing to sketch
  EXPECT_LT(max_abs_diff(h2::densify(res.matrix).view(), kd.view()), 1e-14);
}

TEST(SketchConstruction, ReconstructsAnH2OperatorThroughItsOwnSampler) {
  // The paper's actual pipeline: the black box is a fast H2 matvec (here the
  // Chebyshev-built operator) and entries come from the same representation;
  // the sketched reconstruction must match that operator, with much smaller
  // adaptive ranks than the uniform Chebyshev rank.
  auto tr = test_util::build_cube_tree(800, 2, 15, 32);
  kern::ExponentialKernel k(0.2);
  const h2::H2Matrix cheb =
      h2::build_cheb_h2(tr, Admissibility::general(0.7), k, /*q=*/5); // rank 25
  h2::H2Sampler sampler(cheb);
  h2::H2EntryGenerator gen(cheb);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.initial_samples = 96;
  opts.sample_block = 32;
  auto res = construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts);
  ASSERT_TRUE(res.matrix.mtree.has_any_far());

  const Matrix cd = h2::densify(cheb);
  const Matrix rd = h2::densify(res.matrix);
  EXPECT_LT(rel_fro_error(rd.view(), cd.view()), 1e-4);
  EXPECT_LE(res.matrix.max_rank(), 25); // adaptive ranks <= Chebyshev rank
}

TEST(ErrorEstimator, PowerMethodMatchesSvdNorm) {
  Matrix a(60, 60);
  SmallRng rng(16);
  for (index_t j = 0; j < 60; ++j)
    for (index_t i = 0; i <= j; ++i) {
      a(i, j) = rng.next_gaussian();
      a(j, i) = a(i, j);
    }
  kern::DenseMatrixSampler sa(a.view());
  const real_t est = norm2_estimate(sa, 60);
  // Symmetric matrix: 2-norm = max |eigenvalue|; compare against Jacobi SVD.
  const auto svd = la::jacobi_svd(a.view());
  EXPECT_NEAR(est, svd.sigma[0], 0.05 * svd.sigma[0]);
}

TEST(ErrorEstimator, IdenticalOperatorsHaveZeroError) {
  Matrix a(30, 30);
  SmallRng rng(17);
  for (index_t j = 0; j < 30; ++j)
    for (index_t i = 0; i <= j; ++i) {
      a(i, j) = rng.next_gaussian();
      a(j, i) = a(i, j);
    }
  kern::DenseMatrixSampler s1(a.view()), s2(a.view());
  EXPECT_LT(relative_error_2norm(s1, s2, 10), 1e-14);
}

} // namespace
} // namespace h2sketch::core
