#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_entry_eval.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/kernels.hpp"
#include "test_common.hpp"

/// \file test_flat_budget.cpp
/// Large-N regression guard for the paper's flat-budget claim (`ctest -L
/// slow`): the number of samples the adaptive construction draws depends on
/// the operator's numerical ranks, not on N, so growing the problem to
/// N = 8192 must not inflate the sampling budget. The envelopes below were
/// recorded from the current implementation; if future perf work (kernel
/// reordering, convergence-probe changes, ID tweaks) silently makes the
/// construction sample more, this suite is the tripwire.

namespace h2sketch {
namespace {

using core::ConstructionOptions;
using tree::Admissibility;

struct FlatBudgetRun {
  core::ConstructionStats stats;
  real_t matvec_rel_err = 0.0;
};

FlatBudgetRun run_construction(index_t n, index_t initial, index_t block) {
  auto tr = test_util::build_cube_tree(n, 3, 404, 32);
  kern::ExponentialKernel k(0.2);
  const h2::H2Matrix input = h2::build_cheb_h2(tr, Admissibility::general(0.9), k, /*q=*/3);
  h2::H2Sampler sampler(input);
  h2::H2EntryGenerator gen(input);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = block;
  opts.initial_samples = initial;
  auto res = core::construct_h2(tr, Admissibility::general(0.9), sampler, gen, opts);

  Matrix x(n, 2), y1(n, 2), y2(n, 2);
  fill_gaussian(x.view(), GaussianStream(7));
  h2::h2_matvec(input, x.view(), y1.view());
  h2::h2_matvec(res.matrix, x.view(), y2.view());
  real_t diff = 0, ref = 0;
  for (index_t j = 0; j < y1.cols(); ++j)
    for (index_t i = 0; i < n; ++i) {
      diff += (y1(i, j) - y2(i, j)) * (y1(i, j) - y2(i, j));
      ref += y1(i, j) * y1(i, j);
    }
  return {res.stats, std::sqrt(diff / ref)};
}

TEST(FlatBudget, PaperConfigSampleCountIsFlatInN) {
  // The paper's operating point: sample block d >= rank + oversampling.
  // Recorded behavior: one 64-column round converges everywhere at both
  // sizes. Envelopes rather than exact pins: convergence probes sit on
  // floating-point thresholds and the per-process microkernel selection
  // (base/AVX2+FMA/AVX-512) can legitimately shift a node by one round on
  // other hardware — the guard is against growth *in N*, not ISA jitter.
  const FlatBudgetRun small = run_construction(2048, /*initial=*/64, /*block=*/32);
  const FlatBudgetRun large = run_construction(8192, /*initial=*/64, /*block=*/32);
  for (const auto* run : {&small, &large}) {
    EXPECT_LE(run->stats.total_samples, 96);
    EXPECT_LE(run->stats.sample_rounds, 2);
    EXPECT_EQ(run->stats.nonconverged_nodes, 0);
    EXPECT_LT(run->matvec_rel_err, 1e-4);
  }
  // Flatness: 4x the points may cost at most one extra sample block.
  EXPECT_LE(large.stats.total_samples, small.stats.total_samples + 32);
}

TEST(FlatBudget, AdaptiveRampUpStaysWithinRecordedEnvelope) {
  // Undersized initial round: the adaptive loop must ramp up, but the total
  // it settles on is a property of the operator's ranks. Recorded values at
  // tol 1e-6, d = 16: 32 samples at N = 2048, 80 at N = 8192. The upper
  // bounds allow one extra round of drift (convergence probes sit on
  // floating-point thresholds; FMA vs non-FMA kernels can shift a node);
  // anything beyond that is a sampling regression.
  const FlatBudgetRun small = run_construction(2048, /*initial=*/16, /*block=*/16);
  EXPECT_GE(small.stats.sample_rounds, 2); // adaptivity actually engaged
  EXPECT_LE(small.stats.total_samples, 48);
  EXPECT_EQ(small.stats.nonconverged_nodes, 0);

  const FlatBudgetRun large = run_construction(8192, /*initial=*/16, /*block=*/16);
  EXPECT_GE(large.stats.sample_rounds, 2);
  EXPECT_LE(large.stats.total_samples, 96);
  EXPECT_EQ(large.stats.nonconverged_nodes, 0);
  EXPECT_LT(large.matvec_rel_err, 1e-4);

  // 4x the points may cost at most one extra ramp-up round's worth of
  // samples relative to the recorded 2.5x — not a multiplicative blow-up.
  EXPECT_LE(large.stats.total_samples, 3 * small.stats.total_samples);
}

} // namespace
} // namespace h2sketch
