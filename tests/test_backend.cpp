#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "backend/cpu_backend.hpp"
#include "backend/device_matrix.hpp"
#include "backend/registry.hpp"
#include "backend/sim_device.hpp"
#include "batched/device.hpp"
#include "core/construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "solver/hss_construction.hpp"
#include "solver/ulv.hpp"
#include "test_common.hpp"

/// \file test_backend.cpp
/// The device-backend seam: the DeviceBuffer memory model and its explicit
/// marshaling copies, the SimulatedDevice separate heap with host-deref
/// poisoning, the backend-allocated Workspace arena, and the end-to-end
/// guarantee of the refactor — construction, H2 matvec and ULV
/// factor/solve produce bitwise-identical results with unchanged launch
/// counts on CpuBackend vs SimulatedDevice.

namespace h2sketch::backend {
namespace {

using test_util::dense_kernel_matrix;
using test_util::random_matrix;

std::shared_ptr<SimulatedDevice> small_sim(bool poison = true) {
  SimDeviceOptions opts;
  opts.heap_bytes = std::size_t{256} << 20;
  opts.poison = poison ? 1 : 0;
  return make_sim_device(opts);
}

TEST(DeviceBuffer, AllocateCopyRoundTripAndStats) {
  // Fresh device instances (stats start at zero): registry configs now all
  // share the process-wide devices, so exact-count tests use the factories.
  const std::shared_ptr<DeviceBackend> devices[] = {make_cpu_backend(), small_sim(false)};
  for (const auto& dev : devices) {
    const std::string_view name = dev->name();
    const std::size_t n = 1000;
    DeviceBuffer buf = dev->allocate(n * sizeof(real_t));
    ASSERT_FALSE(buf.empty());
    EXPECT_EQ(buf.bytes(), n * sizeof(real_t));

    std::vector<real_t> host(n), back(n);
    for (std::size_t i = 0; i < n; ++i) host[i] = static_cast<real_t>(i) * 0.5;
    dev->copy_to_device(buf.data(), host.data(), n * sizeof(real_t));
    dev->copy_to_host(back.data(), buf.data(), n * sizeof(real_t));
    EXPECT_EQ(std::memcmp(host.data(), back.data(), n * sizeof(real_t)), 0) << name;

    const DeviceStatsSnapshot s = dev->stats();
    EXPECT_EQ(s.allocations, 1u);
    EXPECT_EQ(s.bytes_to_device, n * sizeof(real_t));
    EXPECT_EQ(s.bytes_to_host, n * sizeof(real_t));
    EXPECT_EQ(s.live_bytes, n * sizeof(real_t));
    buf.release();
    EXPECT_EQ(dev->stats().live_bytes, 0u);
    EXPECT_EQ(dev->stats().deallocations, 1u);
  }
}

TEST(SimulatedDevice, KeepsASeparateHeap) {
  auto sim = small_sim(false);
  EXPECT_TRUE(sim->is_device());
  EXPECT_EQ(sim->name(), "simdevice");
  DeviceBuffer buf = sim->allocate(128);
  EXPECT_TRUE(sim->owns(buf.data()));
  int on_host_stack = 0;
  EXPECT_FALSE(sim->owns(&on_host_stack));
  std::vector<real_t> host_heap(4);
  EXPECT_FALSE(sim->owns(host_heap.data()));
  // CpuBackend pointers are host pointers, not device-heap pointers.
  auto cpu = make_cpu_backend();
  DeviceBuffer hb = cpu->allocate(128);
  EXPECT_FALSE(sim->owns(hb.data()));
}

TEST(SimulatedDevice, FreeListReusesAndCoalesces) {
  auto sim = small_sim(false);
  DeviceBuffer a = sim->allocate(4096);
  DeviceBuffer b = sim->allocate(4096);
  void* pa = a.data();
  void* pb = b.data();
  a.release();
  b.release();
  // The coalesced block serves a request spanning both.
  DeviceBuffer c = sim->allocate(8192);
  EXPECT_EQ(c.data(), pa);
  (void)pb;
}

TEST(SimulatedDevice, PoisonBlocksHostDereferenceOutsideKernelScopes) {
  auto sim = small_sim(true);
  if (!sim->poison_active()) GTEST_SKIP() << "poisoning unavailable on this platform";
  DeviceBuffer buf = sim->allocate(64);
  auto* p = static_cast<volatile real_t*>(buf.data());
  {
    // Inside a kernel scope the page is mapped and reads/writes succeed.
    KernelScope ks(sim.get());
    p[0] = 42.0;
    EXPECT_EQ(p[0], 42.0);
  }
  // Outside any scope a host dereference of device memory must die.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH({ p[0] = 1.0; }, "");
}

TEST(SimulatedDevice, KernelScopesNestAcrossThreadsProcessWide) {
  auto sim = small_sim(true);
  if (!sim->poison_active()) GTEST_SKIP() << "poisoning unavailable on this platform";
  DeviceBuffer buf = sim->allocate(64);
  auto* p = static_cast<real_t*>(buf.data());
  KernelScope outer(sim.get());
  {
    KernelScope inner(sim.get());
    p[0] = 1.0;
  }
  // The outer scope is still live: access must keep working.
  EXPECT_EQ(p[0], 1.0);
}

TEST(DeviceMatrix, ResizeZeroesAndAppendColsPreserves) {
  for (std::string_view name : {std::string_view("cpu"), std::string_view("simdevice")}) {
    auto dev = make_backend(name).device;
    DeviceMatrix m;
    m.resize(*dev, 3, 2);
    EXPECT_EQ(la::norm_f(m.to_host().view()), 0.0) << name;
    const Matrix h = random_matrix(3, 2, 5);
    m.upload_from(h.view());
    m.append_cols(*dev, 2);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    const Matrix back = m.to_host();
    EXPECT_EQ(max_abs_diff(back.view().col_range(0, 2), h.view()), 0.0);
    EXPECT_EQ(la::norm_f(back.view().col_range(2, 2)), 0.0);
  }
}

TEST(WorkspaceBackend, ArenaIsBackendAllocated) {
  auto sim = small_sim(false);
  Workspace ws(sim);
  ws.reserve_bytes(1 << 12);
  real_t* a = ws.allocate<real_t>(100);
  real_t* b = ws.allocate<real_t>(100);
  EXPECT_TRUE(sim->owns(a));
  EXPECT_TRUE(sim->owns(b));
  EXPECT_NE(a, b);
  EXPECT_EQ(ws.backing_allocations(), 1);
  ws.reset();
  EXPECT_EQ(ws.allocate<real_t>(100), a); // arena recycled in place
  // A context's workspace uses the context's device backend.
  batched::ExecutionContext ctx(ExecutionConfig{sim, LaunchMode::Batched});
  ctx.workspace().reserve_bytes(256);
  EXPECT_TRUE(sim->owns(ctx.workspace().allocate<real_t>(8)));
}

/// Fixture running the acceptance guarantee end to end: identical
/// workloads on a fresh CpuBackend and a fresh SimulatedDevice.
struct TwoBackendWorkload {
  std::shared_ptr<tree::ClusterTree> tr;
  kern::ExponentialKernel k{0.3};
  Matrix kd;
  core::ConstructionOptions opts;

  TwoBackendWorkload() {
    tr = test_util::build_cube_tree(256, 2, 33, 16);
    kd = dense_kernel_matrix(*tr, k);
    opts.tol = 1e-6;
    opts.sample_block = 16;
    opts.initial_samples = 32;
  }
};

TEST(BackendParity, ConstructionIsBitwiseIdenticalWithPinnedLaunches) {
  TwoBackendWorkload w;
  auto run = [&](std::string_view name) {
    batched::ExecutionContext ctx(make_backend(name));
    kern::DenseMatrixSampler sampler(w.kd.view());
    kern::KernelEntryGenerator gen(*w.tr, w.k);
    return core::construct_h2(w.tr, tree::Admissibility::general(0.7), sampler, gen, w.opts, ctx);
  };
  const auto cpu = run("cpu");
  const auto sim = run("simdevice");
  EXPECT_EQ(cpu.stats.kernel_launches, sim.stats.kernel_launches);
  EXPECT_EQ(cpu.stats.total_samples, sim.stats.total_samples);
  EXPECT_EQ(cpu.stats.max_rank, sim.stats.max_rank);
  EXPECT_EQ(max_abs_diff(h2::densify(cpu.matrix).view(), h2::densify(sim.matrix).view()), 0.0);
}

TEST(BackendParity, MatvecIsBitwiseIdentical) {
  // Operators are device-resident, so each backend builds (bitwise
  // identically — pinned above) and applies its own copy; the products must
  // still agree bitwise with identical launch counts.
  TwoBackendWorkload w;
  const Matrix x = random_matrix(w.tr->num_points(), 3, 7);
  auto apply_on = [&](std::string_view name) {
    batched::ExecutionContext ctx(make_backend(name));
    kern::DenseMatrixSampler sampler(w.kd.view());
    kern::KernelEntryGenerator gen(*w.tr, w.k);
    const auto res =
        core::construct_h2(w.tr, tree::Admissibility::general(0.7), sampler, gen, w.opts, ctx);
    Matrix y(res.matrix.size(), 3);
    const index_t before = ctx.kernel_launches();
    h2::h2_matvec(ctx, res.matrix, x.view(), y.view());
    return std::pair<Matrix, index_t>(std::move(y), ctx.kernel_launches() - before);
  };
  const auto [y_cpu, launches_cpu] = apply_on("cpu");
  const auto [y_sim, launches_sim] = apply_on("simdevice");
  EXPECT_EQ(max_abs_diff(y_cpu.view(), y_sim.view()), 0.0);
  EXPECT_EQ(launches_cpu, launches_sim);
}

TEST(BackendParity, ForeignContextIsRejectedForResidentOperators) {
  // The arenas of a cpu-built operator live on the cpu heap: applying it
  // through a simdevice context must throw instead of mixing heaps.
  TwoBackendWorkload w;
  kern::DenseMatrixSampler sampler(w.kd.view());
  kern::KernelEntryGenerator gen(*w.tr, w.k);
  batched::ExecutionContext build_ctx(make_backend("cpu"));
  const auto res =
      core::construct_h2(w.tr, tree::Admissibility::general(0.7), sampler, gen, w.opts, build_ctx);
  const Matrix x = random_matrix(res.matrix.size(), 2, 7);
  Matrix y(res.matrix.size(), 2);
  batched::ExecutionContext foreign(make_backend("simdevice"));
  EXPECT_THROW(h2::h2_matvec(foreign, res.matrix, x.view(), y.view()), std::runtime_error);

  kern::RidgeKernel rk(w.k, 1.0);
  const Matrix rkd = dense_kernel_matrix(*w.tr, rk);
  kern::DenseMatrixSampler rsampler(rkd.view());
  kern::KernelEntryGenerator rgen(*w.tr, rk);
  auto hss = solver::build_hss(w.tr, rsampler, rgen, w.opts, build_ctx);
  EXPECT_THROW(hss.matrix.matvec(foreign, x.view(), y.view()), std::runtime_error);
}

TEST(BackendParity, SteadyStateMatvecUploadsOnlyX) {
  // The acceptance pin of the device-resident refactor: operand panels cross
  // the boundary once at build; from then on every h2_matvec moves exactly
  // the x panel to the device and the y panel back. A fresh SimulatedDevice
  // heap makes the byte deltas exact.
  TwoBackendWorkload w;
  auto sim = small_sim(false);
  batched::ExecutionContext ctx(ExecutionConfig{sim, LaunchMode::Batched});
  kern::DenseMatrixSampler sampler(w.kd.view());
  kern::KernelEntryGenerator gen(*w.tr, w.k);
  const auto res =
      core::construct_h2(w.tr, tree::Admissibility::general(0.7), sampler, gen, w.opts, ctx);

  // Operand arenas are resident on the sim heap — mostly written in place
  // by the build's kernel launches rather than uploaded, so the transfer
  // counters stay small while live_bytes covers the whole operator.
  EXPECT_GT(res.matrix.device_bytes(), 0u);
  EXPECT_GE(sim->stats().live_bytes, res.matrix.device_bytes());
  const auto build_uploads = sim->stats().bytes_to_device;

  const index_t n = res.matrix.size();
  const index_t d = 3;
  const Matrix x = random_matrix(n, d, 7);
  Matrix y(n, d);
  // Warmup apply grows the context workspace arena once.
  h2::h2_matvec(ctx, res.matrix, x.view(), y.view());
  const auto panel = static_cast<std::uint64_t>(n) * d * sizeof(real_t);
  for (int rep = 0; rep < 3; ++rep) {
    const auto before = sim->stats();
    h2::h2_matvec(ctx, res.matrix, x.view(), y.view());
    const auto after = sim->stats();
    EXPECT_EQ(after.bytes_to_device - before.bytes_to_device, panel) << "apply " << rep;
    EXPECT_EQ(after.bytes_to_host - before.bytes_to_host, panel) << "apply " << rep;
  }
  // Operand bytes never recross the boundary after build: total upload
  // traffic is the build's plus exactly one x panel per apply (4 applies
  // counting the warmup).
  EXPECT_EQ(sim->stats().bytes_to_device, build_uploads + 4 * panel);
}

TEST(BackendParity, SteadyStateHssSolveUploadsOnlyB) {
  // Same pin for the HSS matvec and the ULV solve: after the warmup apply,
  // per-apply traffic is exactly the input panel over and the output panel
  // back — generators, couplings, leaf diagonals and factor panels never
  // recross the boundary.
  auto tr = test_util::build_cube_tree(256, 2, 91, 16);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  auto sim = small_sim(false);
  batched::ExecutionContext ctx(ExecutionConfig{sim, LaunchMode::Batched});
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
  auto f = solver::ulv_factor(res.matrix, ctx);
  EXPECT_GT(res.matrix.device_bytes(), 0u);
  EXPECT_GT(f.device_bytes(), 0u);
  EXPECT_GE(sim->stats().live_bytes, res.matrix.device_bytes() + f.device_bytes());

  const index_t n = res.matrix.size();
  const index_t d = 2;
  const Matrix x = random_matrix(n, d, 5);
  Matrix y(n, d), s(n, d);
  res.matrix.matvec(ctx, x.view(), y.view()); // warmup
  f.solve_many(x.view(), s.view(), ctx);      // warmup
  const auto panel = static_cast<std::uint64_t>(n) * d * sizeof(real_t);
  for (int rep = 0; rep < 3; ++rep) {
    auto before = sim->stats();
    res.matrix.matvec(ctx, x.view(), y.view());
    auto after = sim->stats();
    EXPECT_EQ(after.bytes_to_device - before.bytes_to_device, panel) << "matvec " << rep;
    EXPECT_EQ(after.bytes_to_host - before.bytes_to_host, panel) << "matvec " << rep;
    before = sim->stats();
    f.solve_many(x.view(), s.view(), ctx);
    after = sim->stats();
    EXPECT_EQ(after.bytes_to_device - before.bytes_to_device, panel) << "solve " << rep;
    EXPECT_EQ(after.bytes_to_host - before.bytes_to_host, panel) << "solve " << rep;
  }
}

TEST(BackendParity, UlvFactorAndSolveAreBitwiseIdentical) {
  auto tr = test_util::build_cube_tree(256, 2, 44, 16);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;

  auto solve_with = [&](std::string_view name) {
    batched::ExecutionContext ctx(make_backend(name));
    kern::DenseMatrixSampler sampler(kd.view());
    kern::KernelEntryGenerator gen(*tr, k);
    auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
    auto f = solver::ulv_factor(res.matrix, ctx);
    std::vector<real_t> b = test_util::random_vector(tr->num_points(), 21);
    std::vector<real_t> x(b.size(), 0.0);
    f.solve(b, x, ctx);
    return std::pair<std::vector<real_t>, index_t>(std::move(x), ctx.kernel_launches());
  };
  const auto [x_cpu, launches_cpu] = solve_with("cpu");
  const auto [x_sim, launches_sim] = solve_with("simdevice");
  EXPECT_EQ(launches_cpu, launches_sim);
  ASSERT_EQ(x_cpu.size(), x_sim.size());
  for (size_t i = 0; i < x_cpu.size(); ++i) EXPECT_EQ(x_cpu[i], x_sim[i]) << "entry " << i;
}

TEST(BackendParity, ConvenienceSolveFollowsTheFactorsDevice) {
  // A factor built on a non-default device must be solvable through the
  // convenience overload (it binds to the owning device), while an
  // explicit context on a different device is rejected instead of
  // dereferencing a foreign poisoned heap.
  auto tr = test_util::build_cube_tree(128, 2, 66, 16);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext ctx(make_backend("simdevice"));
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
  auto f = solver::ulv_factor(res.matrix, ctx);

  const std::vector<real_t> b = test_util::random_vector(tr->num_points(), 9);
  std::vector<real_t> x_conv(b.size(), 0.0), x_ctx(b.size(), 0.0);
  f.solve(b, x_conv); // convenience: must bind to the factor's simdevice
  f.solve(b, x_ctx, ctx);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(x_conv[i], x_ctx[i]);

  batched::ExecutionContext other(make_backend("cpu"));
  std::vector<real_t> x_bad(b.size(), 0.0);
  EXPECT_THROW(f.solve(b, x_bad, other), std::runtime_error);
}

TEST(BackendParity, HssMatvecIsBitwiseIdenticalAndMatchesDensify) {
  // Device-resident storage: each backend builds and applies its own
  // operator; the results stay bitwise identical and match the dense
  // reference (densify reads the lazy host mirrors).
  auto tr = test_util::build_cube_tree(256, 2, 55, 16);
  kern::ExponentialKernel k(0.3);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  const index_t n = tr->num_points();
  const Matrix x = random_matrix(n, 2, 77);

  auto apply_on = [&](std::string_view name, Matrix* dense_out) {
    batched::ExecutionContext ctx(make_backend(name));
    kern::DenseMatrixSampler sampler(kd.view());
    kern::KernelEntryGenerator gen(*tr, k);
    auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
    Matrix y(n, 2);
    const index_t before = ctx.kernel_launches();
    res.matrix.matvec(ctx, x.view(), y.view());
    if (dense_out) *dense_out = res.matrix.densify();
    return std::pair<Matrix, index_t>(std::move(y), ctx.kernel_launches() - before);
  };
  Matrix dense;
  const auto [y_cpu, launches_cpu] = apply_on("cpu", &dense);
  const auto [y_sim, launches_sim] = apply_on("simdevice", nullptr);
  Matrix y_ref(n, 2);
  la::gemm(1.0, dense.view(), la::Op::None, x.view(), la::Op::None, 0.0, y_ref.view());
  EXPECT_EQ(max_abs_diff(y_cpu.view(), y_sim.view()), 0.0);
  EXPECT_EQ(launches_cpu, launches_sim);
  EXPECT_LT(test_util::rel_fro_error(y_cpu.view(), y_ref.view()), test_util::kMatvecRelTol);
}

TEST(Registry, MakeBackendSharesTheProcessWideDevice) {
  // Regression: make_backend("simdevice") used to construct a private
  // SimulatedDevice heap per call while shared_backend returned the
  // process-wide one — an operator built under one and applied under the
  // other dereferenced buffers from a different address space.
  for (std::string_view name : registered_backends()) {
    EXPECT_EQ(make_backend(name).device.get(), shared_backend(name).device.get()) << name;
    EXPECT_EQ(make_backend(name).device.get(), make_backend(name).device.get()) << name;
  }
}

TEST(Registry, OperatorBuiltSharedAppliesUnderMakeBackend) {
  // Build + factor under shared_backend("simdevice"), then matvec and solve
  // through a make_backend("simdevice") convenience context: same device
  // heap, so both must work and agree bitwise with the build context.
  auto tr = test_util::build_cube_tree(128, 2, 17, 16);
  kern::ExponentialKernel base(0.3);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = dense_kernel_matrix(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-8;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext build_ctx(shared_backend("simdevice"));
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  auto res = solver::build_hss(tr, sampler, gen, opts, build_ctx);
  auto f = solver::ulv_factor(res.matrix, build_ctx);

  const index_t n = res.matrix.size();
  const Matrix x = random_matrix(n, 2, 31);
  Matrix y_build(n, 2), y_conv(n, 2);
  res.matrix.matvec(build_ctx, x.view(), y_build.view());
  batched::ExecutionContext conv_ctx(make_backend("simdevice"));
  res.matrix.matvec(conv_ctx, x.view(), y_conv.view());
  EXPECT_EQ(max_abs_diff(y_build.view(), y_conv.view()), 0.0);

  const std::vector<real_t> b = test_util::random_vector(tr->num_points(), 13);
  std::vector<real_t> s_build(b.size(), 0.0), s_conv(b.size(), 0.0);
  f.solve(b, s_build, build_ctx);
  f.solve(b, s_conv, conv_ctx); // used to throw: foreign device heap
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(s_build[i], s_conv[i]) << "entry " << i;
}

TEST(Registry, DefaultBackendOverrideAndReset) {
  // The default is no longer frozen at first call: an explicit override
  // wins, and resetting reverts to the environment.
  const std::string before = default_backend_name();
  set_default_backend("naive");
  EXPECT_EQ(default_backend_name(), "naive");
  EXPECT_EQ(default_backend().mode, LaunchMode::Naive);
  set_default_backend("cpu"); // override replaces override
  EXPECT_EQ(default_backend_name(), "cpu");
  reset_default_backend();
  EXPECT_EQ(default_backend_name(), before);
  const char* env = std::getenv("H2SKETCH_BACKEND");
  EXPECT_EQ(default_backend_name(), env != nullptr ? std::string(env) : std::string("cpu"));
  EXPECT_THROW(set_default_backend("warpdrive"), std::runtime_error);
  EXPECT_EQ(default_backend_name(), before); // failed override changes nothing
}

} // namespace
} // namespace h2sketch::backend
