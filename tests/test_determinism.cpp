#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "solver/hss_construction.hpp"
#include "solver/ulv.hpp"
#include "test_common.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

/// \file test_determinism.cpp
/// Thread-count determinism suite: the ROADMAP claims the counter-based RNG
/// (Philox addressed by (seed, column counter)) plus fixed per-batch-entry
/// arithmetic order make the construction bitwise reproducible under any
/// OMP_NUM_THREADS. This suite makes that claim an explicit test: the same
/// H2 matrix is built with 1, 2 and 4 threads and every output that could
/// betray a scheduling dependence — sample counts, rounds, per-level ranks,
/// the densified matrix, and matvec results — must be bitwise identical.
///
/// Without OpenMP the builds trivially agree; the suite still runs so the
/// serial configuration keeps the same coverage surface.

namespace h2sketch {
namespace {

using core::ConstructionOptions;
using tree::Admissibility;

struct BuildOutput {
  Matrix dense;
  Matrix matvec;
  index_t total_samples = 0;
  index_t sample_rounds = 0;
  index_t min_rank = 0;
  index_t max_rank = 0;
  std::vector<index_t> ranks_per_level;
};

BuildOutput build_with_threads(int threads) {
#if defined(_OPENMP)
  const int prev = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
  auto tr = test_util::build_cube_tree(600, 2, 404, 16);
  kern::ExponentialKernel k(0.2);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext ctx(batched::Backend::Batched);
  auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts, ctx);

  BuildOutput out;
  out.dense = h2::densify(res.matrix);
  Matrix x(600, 3), y(600, 3);
  fill_gaussian(x.view(), GaussianStream(99));
  h2::h2_matvec(res.matrix, x.view(), y.view());
  out.matvec = std::move(y);
  out.total_samples = res.stats.total_samples;
  out.sample_rounds = res.stats.sample_rounds;
  out.min_rank = res.stats.min_rank;
  out.max_rank = res.stats.max_rank;
  out.ranks_per_level = res.stats.max_rank_per_level;
#if defined(_OPENMP)
  omp_set_num_threads(prev);
#endif
  return out;
}

TEST(Determinism, ConstructionIsBitwiseIdenticalAcrossThreadCounts) {
  const BuildOutput ref = build_with_threads(1);
  ASSERT_GT(ref.total_samples, 0);
  for (int threads : {2, 4}) {
    const BuildOutput got = build_with_threads(threads);
    // Adaptive control flow: identical sample counts and rounds mean every
    // node made the same convergence decisions in the same order.
    EXPECT_EQ(got.total_samples, ref.total_samples) << threads << " threads";
    EXPECT_EQ(got.sample_rounds, ref.sample_rounds) << threads << " threads";
    EXPECT_EQ(got.min_rank, ref.min_rank) << threads << " threads";
    EXPECT_EQ(got.max_rank, ref.max_rank) << threads << " threads";
    EXPECT_EQ(got.ranks_per_level, ref.ranks_per_level) << threads << " threads";
    // Bitwise: zero tolerance, not "close".
    EXPECT_EQ(max_abs_diff(got.dense.view(), ref.dense.view()), 0.0) << threads << " threads";
    EXPECT_EQ(max_abs_diff(got.matvec.view(), ref.matvec.view()), 0.0) << threads << " threads";
  }
}

TEST(Determinism, BatchedRandIsScheduleInvariant) {
  // The counter-based fill itself (parallel_for over columns) must give the
  // same matrix for any thread count.
  auto fill_with = [](int threads) {
#if defined(_OPENMP)
    const int prev = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    Matrix m(257, 33);
    fill_gaussian(m.view(), GaussianStream(1234), 17);
#if defined(_OPENMP)
    omp_set_num_threads(prev);
#endif
    return m;
  };
  const Matrix a = fill_with(1), b = fill_with(2), c = fill_with(4);
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
  EXPECT_EQ(max_abs_diff(a.view(), c.view()), 0.0);
}

TEST(Determinism, FlatAndStreamRuntimesAgreeBitwise) {
  // The stream runtime (async launches, cost-aware chunking, parallel GEMM
  // panels) must be a pure scheduling change: building in FlatOpenMP
  // baseline mode and in Streams mode gives bitwise-identical output.
  set_runtime_mode(RuntimeMode::FlatOpenMP);
  const BuildOutput flat = build_with_threads(2);
  set_runtime_mode(RuntimeMode::Streams);
  const BuildOutput streams = build_with_threads(2);
  EXPECT_EQ(flat.total_samples, streams.total_samples);
  EXPECT_EQ(flat.sample_rounds, streams.sample_rounds);
  EXPECT_EQ(flat.ranks_per_level, streams.ranks_per_level);
  EXPECT_EQ(max_abs_diff(flat.dense.view(), streams.dense.view()), 0.0);
  EXPECT_EQ(max_abs_diff(flat.matvec.view(), streams.matvec.view()), 0.0);
}

/// Outputs of one HSS-ULV build + solve that could betray a scheduling
/// dependence in the solver subsystem.
struct UlvOutput {
  Matrix dense;      ///< densified HSS
  Matrix root;       ///< dense root factor of the ULV form
  Matrix solve_one;  ///< single-RHS solve result
  Matrix solve_many; ///< 3-RHS batched solve result
};

UlvOutput build_ulv_with_threads(int threads) {
#if defined(_OPENMP)
  const int prev = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
  auto tr = test_util::build_cube_tree(600, 2, 505, 16);
  kern::ExponentialKernel base(0.25);
  kern::RidgeKernel k(base, 1.0);
  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-7;
  opts.sample_block = 16;
  opts.initial_samples = 32;
  batched::ExecutionContext ctx(batched::Backend::Batched);
  auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
  solver::UlvCholesky f = solver::ulv_factor(res.matrix, ctx);

  UlvOutput out;
  out.dense = res.matrix.densify();
  out.root = to_matrix(f.root_factor().view());
  Matrix b1(600, 1), bn(600, 3);
  fill_gaussian(b1.view(), GaussianStream(606));
  fill_gaussian(bn.view(), GaussianStream(607));
  out.solve_one.resize(600, 1);
  out.solve_many.resize(600, 3);
  f.solve_many(b1.view(), out.solve_one.view(), ctx);
  f.solve_many(bn.view(), out.solve_many.view(), ctx);
#if defined(_OPENMP)
  omp_set_num_threads(prev);
#endif
  return out;
}

TEST(UlvDeterminism, FactorsAndSolvesAreBitwiseIdenticalAcrossThreadCounts) {
  // The solver subsystem rides the same stream runtime as the construction:
  // cost-derived chunk boundaries, per-node arithmetic order fixed. ULV
  // factor panels and solve outputs must be bitwise identical at any pool
  // width, with streams enabled (Batched backend).
  const UlvOutput ref = build_ulv_with_threads(1);
  ASSERT_GT(ref.root.rows(), 0);
  for (int threads : {2, 4}) {
    const UlvOutput got = build_ulv_with_threads(threads);
    EXPECT_EQ(max_abs_diff(got.dense.view(), ref.dense.view()), 0.0) << threads << " threads";
    EXPECT_EQ(max_abs_diff(got.root.view(), ref.root.view()), 0.0) << threads << " threads";
    EXPECT_EQ(max_abs_diff(got.solve_one.view(), ref.solve_one.view()), 0.0)
        << threads << " threads";
    EXPECT_EQ(max_abs_diff(got.solve_many.view(), ref.solve_many.view()), 0.0)
        << threads << " threads";
  }
}

/// Slow-label guard (see tests/CMakeLists.txt): the ULV solve residual at
/// N = 8192 must track the construction tolerance — the acceptance bar for
/// the solver workload at scale, using the O(N) on-the-fly kernel sampler
/// so no N^2 matrix is ever stored.
TEST(UlvSlowGuard, SolveResidualAtN8192TracksTolerance) {
  const index_t n = 8192;
  auto tr = test_util::build_cube_tree(n, 2, 808, 64);
  kern::ExponentialKernel base(0.2);
  // Regularized GP covariance K + sigma^2 I: the ridge bounds the smallest
  // eigenvalue, so the relative residual of the approximate solve is
  // ~ tol * ||K||_F / sigma^2 — well inside the 100x-tol acceptance bar.
  kern::RidgeKernel k(base, 10.0);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  auto res = solver::build_hss(tr, sampler, gen, opts);
  EXPECT_EQ(res.stats.nonconverged_nodes, 0);
  solver::UlvCholesky f = solver::ulv_factor(res.matrix);

  Matrix b(n, 1), x(n, 1), ax(n, 1);
  fill_gaussian(b.view(), GaussianStream(809));
  f.solve_many(b.view(), x.view());
  kern::KernelMatVecSampler applier(*tr, k);
  applier.sample(x.view(), ax.view());
  real_t num = 0, den = 0;
  for (index_t i = 0; i < n; ++i) {
    num += (ax(i, 0) - b(i, 0)) * (ax(i, 0) - b(i, 0));
    den += b(i, 0) * b(i, 0);
  }
  // Acceptance shape: relative residual within 100x the construction tol.
  EXPECT_LT(std::sqrt(num / den), 100 * opts.tol);
}

#if defined(_OPENMP)
/// The ROADMAP's open "speedup assertion": with the stream runtime, the same
/// N = 2048 construction must get ≥ 1.3x faster from 1 to 4 threads on
/// hardware that actually has 4 cores. Registered under the slow label (see
/// tests/CMakeLists.txt); skips loudly on narrower machines where the
/// threads would be time-sliced onto the same core.
TEST(DeterminismScaling, FourThreadsBeatOneByThirtyPercent) {
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "only " << std::thread::hardware_concurrency()
                 << " hardware threads; 1-vs-4 timing would measure time-slicing, not scaling";

  auto build_timed = [](int threads) {
    const int prev = omp_get_max_threads();
    omp_set_num_threads(threads);
    auto tr = test_util::build_cube_tree(2048, 3, 811, 32);
    kern::ExponentialKernel k(0.2);
    const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
    kern::DenseMatrixSampler sampler(kd.view());
    kern::KernelEntryGenerator gen(*tr, k);
    ConstructionOptions opts;
    opts.tol = 1e-6;
    opts.sample_block = 32;
    opts.initial_samples = 64;
    batched::ExecutionContext ctx(batched::Backend::Batched);
    const double t0 = wall_seconds();
    auto res = core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts, ctx);
    const double dt = wall_seconds() - t0;
    omp_set_num_threads(prev);
    return std::pair<double, index_t>(dt, res.stats.total_samples);
  };

  // Warm up the pool and page in the kernel matrix, then take the best of
  // two runs per width to damp scheduler noise.
  (void)build_timed(1);
  const auto [t1a, s1] = build_timed(1);
  const auto [t4a, s4] = build_timed(4);
  const auto [t1b, s1b] = build_timed(1);
  const auto [t4b, s4b] = build_timed(4);
  ASSERT_EQ(s1, s4) << "thread count changed the adaptive control flow";
  ASSERT_EQ(s1, s1b);
  ASSERT_EQ(s4, s4b);
  const double t1 = std::min(t1a, t1b), t4 = std::min(t4a, t4b);
  EXPECT_GE(t1 / t4, 1.3) << "1-thread " << t1 << " s vs 4-thread " << t4 << " s";
}

TEST(Determinism, SuiteActuallyVariesThreadCount) {
  // Guard against the suite silently degenerating to single-threaded runs:
  // after requesting 4 threads, a parallel region must actually get 4
  // (OpenMP creates them regardless of core count). If the environment
  // forbids it (OMP_THREAD_LIMIT), skip loudly instead of passing vacuously.
  if (omp_get_thread_limit() < 4)
    GTEST_SKIP() << "OMP_THREAD_LIMIT=" << omp_get_thread_limit()
                 << " pins the runtime below 4 threads; the bitwise "
                    "comparison above degenerated to same-thread-count runs";
  omp_set_dynamic(0);
  omp_set_num_threads(4);
  int seen = 0;
#pragma omp parallel
  {
#pragma omp atomic
    ++seen;
  }
  EXPECT_EQ(seen, 4);
}
#endif

} // namespace
} // namespace h2sketch
