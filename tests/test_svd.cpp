#include "la/svd.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::la {
namespace {

using test_util::random_matrix;

Matrix reconstruct(const Svd& s) {
  const index_t m = s.u.rows(), n = s.v.rows(), r = s.u.cols();
  Matrix us(m, r);
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < m; ++i) us(i, j) = s.u(i, j) * s.sigma[static_cast<size_t>(j)];
  Matrix a(m, n);
  gemm(1.0, us.view(), Op::None, s.v.view(), Op::Trans, 0.0, a.view());
  return a;
}

class SvdShapes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(SvdShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 21);
  const Svd s = jacobi_svd(a.view());
  EXPECT_LT(max_abs_diff(reconstruct(s).view(), a.view()), 1e-11);
}

TEST_P(SvdShapes, FactorsAreOrthonormal) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 22);
  const Svd s = jacobi_svd(a.view());
  const index_t r = s.u.cols();
  Matrix utu(r, r), vtv(r, r);
  gemm(1.0, s.u.view(), Op::Trans, s.u.view(), Op::None, 0.0, utu.view());
  gemm(1.0, s.v.view(), Op::Trans, s.v.view(), Op::None, 0.0, vtv.view());
  EXPECT_LT(max_abs_diff(utu.view(), Matrix::identity(r).view()), 1e-11);
  EXPECT_LT(max_abs_diff(vtv.view(), Matrix::identity(r).view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::make_pair<index_t, index_t>(10, 10),
                                           std::make_pair<index_t, index_t>(15, 6),
                                           std::make_pair<index_t, index_t>(6, 15),
                                           std::make_pair<index_t, index_t>(1, 8),
                                           std::make_pair<index_t, index_t>(8, 1)));

TEST(Svd, SingularValuesSortedDescending) {
  const Matrix a = random_matrix(12, 9, 23);
  const Svd s = jacobi_svd(a.view());
  for (size_t i = 0; i + 1 < s.sigma.size(); ++i) EXPECT_GE(s.sigma[i], s.sigma[i + 1]);
}

TEST(Svd, KnownDiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = -5.0;
  a(2, 2) = 1.0;
  const Svd s = jacobi_svd(a.view());
  ASSERT_EQ(s.sigma.size(), 3u);
  EXPECT_NEAR(s.sigma[0], 5.0, 1e-12);
  EXPECT_NEAR(s.sigma[1], 2.0, 1e-12);
  EXPECT_NEAR(s.sigma[2], 1.0, 1e-12);
}

TEST(Svd, RankDetection) {
  const Matrix u = random_matrix(20, 4, 24);
  const Matrix v = random_matrix(15, 4, 25);
  Matrix a(20, 15);
  gemm(1.0, u.view(), Op::None, v.view(), Op::Trans, 0.0, a.view());
  const Svd s = jacobi_svd(a.view());
  EXPECT_EQ(svd_rank(s, 1e-10), 4);
}

TEST(Svd, ZeroMatrixRankZero) {
  Matrix z(5, 4);
  const Svd s = jacobi_svd(z.view());
  EXPECT_EQ(svd_rank(s, 1e-10), 0);
}

} // namespace
} // namespace h2sketch::la
