#include "h2/h2_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"

namespace h2sketch::h2 {
namespace {

using tree::Admissibility;
using tree::ClusterTree;

H2Matrix make_cheb(index_t n, std::uint64_t seed) {
  auto tr = std::make_shared<ClusterTree>(
      ClusterTree::build(geo::uniform_random_cube(n, 2, seed), 16));
  kern::ExponentialKernel k(0.2);
  return build_cheb_h2(tr, Admissibility::general(0.7), k, 3);
}

H2Matrix make_sketched(index_t n, std::uint64_t seed) {
  auto tr = std::make_shared<ClusterTree>(
      ClusterTree::build(geo::uniform_random_cube(n, 2, seed), 16));
  kern::Matern32Kernel k(0.3);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  return core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts).matrix;
}

TEST(H2Io, RoundTripPreservesChebMatrixExactly) {
  const H2Matrix a = make_cheb(300, 81);
  std::stringstream ss;
  save_h2(ss, a);
  const H2Matrix b = load_h2(ss);
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  EXPECT_EQ(max_abs_diff(densify(a).view(), densify(b).view()), 0.0);
}

TEST(H2Io, RoundTripPreservesSketchBuiltMatrixAndMatvec) {
  const H2Matrix a = make_sketched(400, 82);
  std::stringstream ss;
  save_h2(ss, a);
  const H2Matrix b = load_h2(ss);
  b.validate();
  // Skeleton index sets survive.
  EXPECT_EQ(a.skeleton, b.skeleton);
  // Matvec is bit-identical.
  Matrix x(400, 2), ya(400, 2), yb(400, 2);
  fill_gaussian(x.view(), GaussianStream(83));
  h2_matvec(a, x.view(), ya.view());
  h2_matvec(b, x.view(), yb.view());
  EXPECT_EQ(max_abs_diff(ya.view(), yb.view()), 0.0);
}

TEST(H2Io, FileRoundTrip) {
  const H2Matrix a = make_cheb(200, 84);
  const std::string path = "h2io_test.bin";
  save_h2_file(path, a);
  const H2Matrix b = load_h2_file(path);
  EXPECT_EQ(max_abs_diff(densify(a).view(), densify(b).view()), 0.0);
  std::remove(path.c_str());
}

TEST(H2Io, BadMagicThrows) {
  std::stringstream ss;
  ss << "this is not an h2 matrix";
  EXPECT_THROW(load_h2(ss), std::runtime_error);
}

TEST(H2Io, TruncatedStreamThrows) {
  const H2Matrix a = make_cheb(200, 85);
  std::stringstream ss;
  save_h2(ss, a);
  std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_h2(cut), std::runtime_error);
}

TEST(H2Io, MissingFileThrows) {
  EXPECT_THROW(load_h2_file("/nonexistent/path/matrix.bin"), std::runtime_error);
}

} // namespace
} // namespace h2sketch::h2
