#include "h2/h2_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hpp"
#include "core/construction.hpp"
#include "h2/cheb_construction.hpp"
#include "h2/h2_dense.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::h2 {
namespace {

using tree::Admissibility;
using tree::ClusterTree;

H2Matrix make_cheb(index_t n, std::uint64_t seed) {
  auto tr = test_util::build_cube_tree(n, 2, seed, 16);
  kern::ExponentialKernel k(0.2);
  return build_cheb_h2(tr, Admissibility::general(0.7), k, 3);
}

H2Matrix make_sketched(index_t n, std::uint64_t seed) {
  auto tr = test_util::build_cube_tree(n, 2, seed, 16);
  kern::Matern32Kernel k(0.3);
  kern::KernelMatVecSampler sampler(*tr, k);
  kern::KernelEntryGenerator gen(*tr, k);
  core::ConstructionOptions opts;
  opts.tol = 1e-7;
  return core::construct_h2(tr, Admissibility::general(0.7), sampler, gen, opts).matrix;
}

TEST(H2Io, RoundTripPreservesChebMatrixExactly) {
  const H2Matrix a = make_cheb(300, 81);
  std::stringstream ss;
  save_h2(ss, a);
  const H2Matrix b = load_h2(ss);
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  EXPECT_EQ(max_abs_diff(densify(a).view(), densify(b).view()), 0.0);
}

TEST(H2Io, RoundTripPreservesSketchBuiltMatrixAndMatvec) {
  const H2Matrix a = make_sketched(400, 82);
  std::stringstream ss;
  save_h2(ss, a);
  const H2Matrix b = load_h2(ss);
  b.validate();
  // Skeleton index sets survive.
  EXPECT_EQ(a.skeleton, b.skeleton);
  // Matvec is bit-identical.
  Matrix x(400, 2), ya(400, 2), yb(400, 2);
  fill_gaussian(x.view(), GaussianStream(83));
  h2_matvec(a, x.view(), ya.view());
  h2_matvec(b, x.view(), yb.view());
  EXPECT_EQ(max_abs_diff(ya.view(), yb.view()), 0.0);
}

TEST(H2Io, FileRoundTrip) {
  const H2Matrix a = make_cheb(200, 84);
  const std::string path = "h2io_test.bin";
  save_h2_file(path, a);
  const H2Matrix b = load_h2_file(path);
  EXPECT_EQ(max_abs_diff(densify(a).view(), densify(b).view()), 0.0);
  std::remove(path.c_str());
}

TEST(H2Io, FileRoundTripThenMatvecMatchesDenseTruth) {
  // Save/load must preserve the operator itself, not just the bytes: the
  // loaded matrix's matvec is checked against the dense kernel ground truth.
  auto tr = test_util::build_cube_tree(300, 2, 86, 16);
  kern::ExponentialKernel k(0.2);
  const H2Matrix a = build_cheb_h2(tr, Admissibility::general(0.7), k, 4);
  const std::string path = "h2io_matvec_test.bin";
  save_h2_file(path, a);
  const H2Matrix b = load_h2_file(path);
  std::remove(path.c_str());
  b.validate();

  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  const index_t n = tr->num_points();
  Matrix x(n, 3), y(n, 3), ref(n, 3);
  fill_gaussian(x.view(), GaussianStream(87));
  h2_matvec(b, x.view(), y.view());
  la::gemm(1.0, kd.view(), la::Op::None, x.view(), la::Op::None, 0.0, ref.view());
  // Loaded operator approximates the kernel exactly as well as the saved one.
  EXPECT_LT(test_util::rel_fro_error(y.view(), ref.view()), 1e-3);
  Matrix ya(n, 3);
  h2_matvec(a, x.view(), ya.view());
  EXPECT_EQ(max_abs_diff(y.view(), ya.view()), 0.0);
}

TEST(H2Io, BadMagicThrows) {
  std::stringstream ss;
  ss << "this is not an h2 matrix";
  EXPECT_THROW(load_h2(ss), std::runtime_error);
}

TEST(H2Io, TruncatedStreamThrows) {
  const H2Matrix a = make_cheb(200, 85);
  std::stringstream ss;
  save_h2(ss, a);
  std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_h2(cut), std::runtime_error);
}

TEST(H2Io, MissingFileThrows) {
  EXPECT_THROW(load_h2_file("/nonexistent/path/matrix.bin"), std::runtime_error);
}

} // namespace
} // namespace h2sketch::h2
