#include "common/random.hpp"
#include "test_common.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace h2sketch {
namespace {

TEST(Philox, DeterministicByCounter) {
  const auto a = Philox4x32::block(42, 7, 1000);
  const auto b = Philox4x32::block(42, 7, 1000);
  EXPECT_EQ(a, b);
  const auto c = Philox4x32::block(42, 7, 1001);
  EXPECT_NE(a, c);
  const auto d = Philox4x32::block(43, 7, 1000);
  EXPECT_NE(a, d);
}

TEST(GaussianStream, IndexAddressedAndReproducible) {
  GaussianStream g(123);
  const real_t v0 = g(0), v1 = g(1), v5000 = g(5000);
  EXPECT_EQ(v0, GaussianStream(123)(0));
  EXPECT_EQ(v1, GaussianStream(123)(1));
  EXPECT_EQ(v5000, GaussianStream(123)(5000));
  EXPECT_NE(v0, v1);
}

TEST(GaussianStream, MomentsApproximatelyStandardNormal) {
  GaussianStream g(7);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = g(static_cast<std::uint64_t>(i));
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, test_util::kMeanTol);
  EXPECT_NEAR(var, 1.0, test_util::kVarTol);
}

TEST(GaussianStream, UniformInOpenUnitInterval) {
  GaussianStream g(99);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const real_t u = g.uniform(i);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(FillGaussian, MatchesElementwiseAddressing) {
  GaussianStream g(5);
  Matrix a(13, 7);
  fill_gaussian(a.view(), g, /*offset=*/100);
  EXPECT_EQ(a(3, 2), g(100 + 2 * 13 + 3));
  EXPECT_EQ(a(0, 0), g(100));
}

TEST(FillGaussian, OffsetContinuesStreamWithoutOverlap) {
  // Adaptive rounds append columns; offsets must produce fresh variates.
  GaussianStream g(5);
  Matrix a(8, 2), b(8, 2);
  fill_gaussian(a.view(), g, 0);
  fill_gaussian(b.view(), g, 16);
  EXPECT_GT(max_abs_diff(a.view(), b.view()), 0.0);
  // b's first element continues exactly where a stopped.
  EXPECT_EQ(b(0, 0), g(16));
}

TEST(FillGaussian, SubviewFillRespectsLeadingDimension) {
  GaussianStream g(11);
  Matrix a(6, 6);
  a.fill(-1.0);
  fill_gaussian(a.block(2, 2, 3, 2), g, 0);
  EXPECT_EQ(a(0, 0), -1.0);  // untouched outside the block
  EXPECT_EQ(a(2, 2), g(0));
  EXPECT_EQ(a(4, 3), g(5));
}

TEST(SmallRng, RangesAndDeterminism) {
  SmallRng r1(3), r2(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(r1.next_u64(), r2.next_u64());
  }
  SmallRng r(4);
  for (int i = 0; i < 1000; ++i) {
    const real_t v = r.next_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    const index_t k = r.next_index(17);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 17);
  }
}

TEST(SmallRng, GaussianMoments) {
  SmallRng r(10);
  const int n = 100000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_gaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, test_util::kMeanTol);
  EXPECT_NEAR(sumsq / n, 1.0, test_util::kVarTol);
}

} // namespace
} // namespace h2sketch
