#include "common/workspace.hpp"

#include <gtest/gtest.h>

#include "common/scan.hpp"
#include "test_common.hpp"

namespace h2sketch {
namespace {

TEST(Workspace, ReserveThenSuballocate) {
  Workspace w;
  w.reserve_bytes(1 << 12);
  double* a = w.allocate<double>(100);
  double* b = w.allocate<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(w.backing_allocations(), 1);
  EXPECT_EQ(w.suballocations(), 2);
}

TEST(Workspace, SuballocationsAreAligned) {
  Workspace w;
  w.reserve_bytes(1 << 12);
  char* a = w.allocate<char>(3);
  double* b = w.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
}

TEST(Workspace, ResetRecyclesWithoutReallocating) {
  Workspace w;
  w.reserve_bytes(1024);
  (void)w.allocate<double>(64);
  w.reset();
  EXPECT_EQ(w.used_bytes(), 0u);
  (void)w.allocate<double>(64);
  EXPECT_EQ(w.backing_allocations(), 1);  // capacity reused
}

TEST(Workspace, GrowthAfterSuballocationIsAnError) {
  Workspace w;
  w.reserve_bytes(128);
  (void)w.allocate<double>(8);
  EXPECT_THROW((void)w.allocate<double>(1 << 20), std::runtime_error);
}

TEST(Workspace, FirstAllocationMayGrowLazily) {
  Workspace w;
  double* p = w.allocate<double>(256);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(w.capacity_bytes(), 256 * sizeof(double));
}

TEST(Workspace, ArenaReuseAcrossManyResetCycles) {
  // The per-level pattern of the batched backend: reserve once, then
  // allocate/reset per level. The backing buffer must be handed out again
  // unchanged every cycle with no further backing allocations.
  Workspace w;
  w.reserve_bytes(1 << 12);
  double* first = nullptr;
  for (int cycle = 0; cycle < 16; ++cycle) {
    double* p = w.allocate<double>(256);
    if (cycle == 0) first = p;
    EXPECT_EQ(p, first);
    // The handed-out range is writable storage for batch temporaries.
    MatrixView v(p, 16, 16, 16);
    copy(test_util::random_matrix(16, 16, static_cast<std::uint64_t>(cycle)).view(), v);
    w.reset();
  }
  EXPECT_EQ(w.backing_allocations(), 1);
  EXPECT_EQ(w.suballocations(), 16);
}

TEST(Workspace, ResetPreservesCapacityAndCounters) {
  Workspace w;
  w.reserve_bytes(2048);
  (void)w.allocate<double>(32);
  (void)w.allocate<double>(32);
  const std::size_t cap = w.capacity_bytes();
  w.reset();
  EXPECT_EQ(w.used_bytes(), 0u);
  EXPECT_EQ(w.capacity_bytes(), cap); // reset never shrinks the arena
  EXPECT_EQ(w.suballocations(), 2);   // counters survive reset for reporting
}

TEST(Scan, ExclusiveScanOffsets) {
  std::vector<index_t> counts = {3, 0, 5, 2};
  const auto off = exclusive_scan(counts);
  ASSERT_EQ(off.size(), 5u);
  EXPECT_EQ(off[0], 0);
  EXPECT_EQ(off[1], 3);
  EXPECT_EQ(off[2], 3);
  EXPECT_EQ(off[3], 8);
  EXPECT_EQ(off[4], 10);
}

TEST(Scan, EmptyInput) {
  const auto off = exclusive_scan({});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], 0);
}

} // namespace
} // namespace h2sketch
