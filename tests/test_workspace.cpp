#include "common/workspace.hpp"

#include <gtest/gtest.h>

#include "common/scan.hpp"

namespace h2sketch {
namespace {

TEST(Workspace, ReserveThenSuballocate) {
  Workspace w;
  w.reserve_bytes(1 << 12);
  double* a = w.allocate<double>(100);
  double* b = w.allocate<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(w.backing_allocations(), 1);
  EXPECT_EQ(w.suballocations(), 2);
}

TEST(Workspace, SuballocationsAreAligned) {
  Workspace w;
  w.reserve_bytes(1 << 12);
  char* a = w.allocate<char>(3);
  double* b = w.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
}

TEST(Workspace, ResetRecyclesWithoutReallocating) {
  Workspace w;
  w.reserve_bytes(1024);
  (void)w.allocate<double>(64);
  w.reset();
  EXPECT_EQ(w.used_bytes(), 0u);
  (void)w.allocate<double>(64);
  EXPECT_EQ(w.backing_allocations(), 1);  // capacity reused
}

TEST(Workspace, GrowthAfterSuballocationIsAnError) {
  Workspace w;
  w.reserve_bytes(128);
  (void)w.allocate<double>(8);
  EXPECT_THROW((void)w.allocate<double>(1 << 20), std::runtime_error);
}

TEST(Workspace, FirstAllocationMayGrowLazily) {
  Workspace w;
  double* p = w.allocate<double>(256);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(w.capacity_bytes(), 256 * sizeof(double));
}

TEST(Scan, ExclusiveScanOffsets) {
  std::vector<index_t> counts = {3, 0, 5, 2};
  const auto off = exclusive_scan(counts);
  ASSERT_EQ(off.size(), 5u);
  EXPECT_EQ(off[0], 0);
  EXPECT_EQ(off[1], 3);
  EXPECT_EQ(off[2], 3);
  EXPECT_EQ(off[3], 8);
  EXPECT_EQ(off[4], 10);
}

TEST(Scan, EmptyInput) {
  const auto off = exclusive_scan({});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], 0);
}

} // namespace
} // namespace h2sketch
