#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "batched/device.hpp"
#include "common/thread_pool.hpp"
#include "core/construction.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile_sketch.hpp"
#include "test_common.hpp"

/// \file test_obs.cpp
/// The observability layer: KLL quantile sketch error/merge/determinism
/// contracts, trace span collection (nesting, per-thread and per-stream
/// track assignment, JSON export shape), the metrics registry under
/// concurrent writers, and the zero-overhead-when-disabled pin.

namespace h2sketch::obs {
namespace {

// ---------------------------------------------------------------------------
// Disabled-tracing pin. MUST run first in this binary: it asserts that no
// ring buffer has ever been allocated, which is only true before any test
// enables tracing. (A TraceSpan with tracing off must not touch the rings.)
// ---------------------------------------------------------------------------

TEST(TraceDisabledPin, NoAllocationNoSpansWhenOff) {
  if (trace_enabled()) GTEST_SKIP() << "H2SKETCH_TRACE is set; pin needs a quiet process";
  const TraceStats before = trace_stats();
  EXPECT_EQ(before.buffers, 0u) << "a ring buffer existed before any trace started";

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        TraceSpan span("test", "noop", "i", static_cast<std::uint64_t>(i));
        trace_instant("test", "marker");
      }
    });
  for (auto& th : threads) th.join();

  const TraceStats after = trace_stats();
  EXPECT_EQ(after.buffers, 0u);
  EXPECT_EQ(after.events, 0u);
  EXPECT_EQ(after.dropped, 0u);
}

// ---------------------------------------------------------------------------
// Quantile sketch.
// ---------------------------------------------------------------------------

/// Exact normalized rank of v in a sorted sample.
double exact_rank(const std::vector<double>& sorted, double v) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), v);
  return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

/// Max |rank(estimate(q)) - q| over a grid of quantiles.
double max_rank_error(const QuantileSketch& sk, std::vector<double> data) {
  std::sort(data.begin(), data.end());
  double worst = 0.0;
  for (double q : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99})
    worst = std::max(worst, std::abs(exact_rank(data, sk.quantile(q)) - q));
  return worst;
}

TEST(QuantileSketch, RankErrorBoundOnKnownDistributions) {
  const index_t n = 50000;
  // Uniform-ish Gaussian stream and a heavy-tailed one (exp of Gaussian):
  // the sketch bound is distribution-free, so both must land within ~1.7/k.
  for (int dist = 0; dist < 2; ++dist) {
    std::vector<double> data = test_util::random_vector(n, 1234 + dist);
    if (dist == 1)
      for (auto& v : data) v = std::exp(v);
    QuantileSketch sk(200);
    for (double v : data) sk.update(v);
    EXPECT_EQ(sk.count(), static_cast<std::uint64_t>(n));
    EXPECT_LT(max_rank_error(sk, data), 0.025) << "dist " << dist;
  }
}

TEST(QuantileSketch, ExactOnSmallStreamsAndExtrema) {
  QuantileSketch sk(200);
  EXPECT_TRUE(sk.empty());
  EXPECT_TRUE(std::isnan(sk.quantile(0.5)));
  for (int i = 1; i <= 100; ++i) sk.update(static_cast<double>(i));
  // 100 items fit entirely in level 0: quantiles are exact.
  EXPECT_EQ(sk.min(), 1.0);
  EXPECT_EQ(sk.max(), 100.0);
  EXPECT_NEAR(sk.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(sk.rank(25.0), 0.25, 0.01);
  EXPECT_EQ(sk.quantile(0.0), 1.0);
  EXPECT_EQ(sk.quantile(1.0), 100.0);
}

TEST(QuantileSketch, RetainedMemoryStaysBounded) {
  QuantileSketch sk(200);
  std::vector<double> data = test_util::random_vector(200000, 7);
  for (double v : data) sk.update(v);
  // O(k log(n/k)) with k=200, n=2e5: generous ceiling well under the stream.
  EXPECT_LT(sk.retained(), 4000u);
}

TEST(QuantileSketch, DeterministicInSeedAndSequence) {
  std::vector<double> data = test_util::random_vector(30000, 99);
  QuantileSketch a(200, 42), b(200, 42);
  for (double v : data) a.update(v);
  for (double v : data) b.update(v);
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "same seed+stream must be bitwise identical";
  EXPECT_EQ(a.retained(), b.retained());
}

TEST(QuantileSketch, MergeKeepsErrorBoundEitherAssociation) {
  const index_t part = 20000;
  std::vector<double> all;
  std::vector<QuantileSketch> parts;
  for (int p = 0; p < 3; ++p) {
    std::vector<double> data = test_util::random_vector(part, 500 + p);
    QuantileSketch sk(200, 1000 + static_cast<std::uint64_t>(p));
    for (double v : data) sk.update(v);
    parts.push_back(std::move(sk));
    all.insert(all.end(), data.begin(), data.end());
  }
  // (a + b) + c
  QuantileSketch left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  // a + (b + c)
  QuantileSketch bc = parts[1];
  bc.merge(parts[2]);
  QuantileSketch right = parts[0];
  right.merge(bc);

  for (const QuantileSketch* m : {&left, &right}) {
    EXPECT_EQ(m->count(), static_cast<std::uint64_t>(3 * part));
    EXPECT_EQ(m->min(), *std::min_element(all.begin(), all.end()));
    EXPECT_EQ(m->max(), *std::max_element(all.begin(), all.end()));
    EXPECT_LT(max_rank_error(*m, all), 0.03);
  }

  // Determinism: replaying the same merge program reproduces it bitwise.
  QuantileSketch replay = parts[0];
  replay.merge(parts[1]);
  replay.merge(parts[2]);
  for (double q : {0.1, 0.5, 0.9, 0.99}) EXPECT_EQ(left.quantile(q), replay.quantile(q));
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

/// Check every brace/bracket balances outside of string literals.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_str = false;
      continue;
    }
    if (c == '"')
      in_str = true;
    else if (c == '{' || c == '[')
      ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

TEST(Trace, SpansNestAndThreadsGetDistinctTracks) {
  start_trace();
  ThreadPool pool(4);
  pool.parallel_for(64, [](index_t i) {
    TraceSpan outer("test", "outer", "i", static_cast<std::uint64_t>(i));
    TraceSpan inner("test", "inner");
    trace_instant("test", "tick");
  });
  TraceData data = stop_trace();
  ASSERT_EQ(data.dropped, 0u);

  std::vector<const TraceData::Event*> outers, inners;
  for (const auto& e : data.events) {
    if (e.name == "outer") outers.push_back(&e);
    if (e.name == "inner") inners.push_back(&e);
  }
  ASSERT_EQ(outers.size(), 64u);
  ASSERT_EQ(inners.size(), 64u);

  // Every inner span lies within an outer span on the same thread track.
  for (const auto* in : inners) {
    bool contained = false;
    for (const auto* out : outers)
      if (out->tid == in->tid && out->ts_ns <= in->ts_ns &&
          in->ts_ns + in->dur_ns <= out->ts_ns + out->dur_ns) {
        contained = true;
        break;
      }
    EXPECT_TRUE(contained) << "inner span escapes its outer scope";
    EXPECT_LT(in->tid, kStreamTrackBase) << "plain spans stay off stream tracks";
    EXPECT_GE(in->tid, 0);
  }
}

TEST(Trace, CrossLayerSpansLandOnStreamTracks) {
  // A real (small) construction through the batched runtime: runtime spans
  // must appear on per-(context, stream) tracks, backend op spans on thread
  // tracks, construction phase spans around them.
  auto tree = test_util::build_cube_tree(1024, 3, 11, 16);
  const kern::ExponentialKernel kernel(0.2);
  const Matrix kd = test_util::dense_kernel_matrix(*tree, kernel);
  kern::DenseMatrixSampler sampler(kd.view());
  kern::KernelEntryGenerator gen(*tree, kernel);
  core::ConstructionOptions opts;
  opts.tol = 1e-6;
  opts.sample_block = 32;
  opts.initial_samples = 64;
  batched::ExecutionContext ctx(batched::Backend::Batched);

  start_trace();
  auto res = core::construct_h2(tree, tree::Admissibility::general(0.7), sampler, gen, opts, ctx);
  ctx.sync_all();
  TraceData data = stop_trace();
  ASSERT_TRUE(res.matrix.mtree.has_any_far()) << "test config exercises no far field";

  bool saw_stream_track = false, saw_backend = false, saw_construction = false;
  for (const auto& e : data.events) {
    if (e.cat == "runtime" && e.tid >= kStreamTrackBase) saw_stream_track = true;
    if (e.cat == "backend") saw_backend = true;
    if (e.cat == "construction") saw_construction = true;
  }
  EXPECT_TRUE(saw_stream_track) << "no batched launch reached a stream track";
  EXPECT_TRUE(saw_backend);
  EXPECT_TRUE(saw_construction);

  const std::string json = data.to_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("stream"), std::string::npos) << "stream tracks must be named";
}

TEST(Trace, JsonCarriesArgsAndInstants) {
  start_trace();
  {
    TraceSpan span("test", "with_args", "alpha", 7, "beta", 9);
    trace_instant("test", "pin", "gamma", 11);
  }
  TraceData data = stop_trace();
  ASSERT_EQ(data.events.size(), 2u);
  const std::string json = data.to_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "span must export as a complete event";
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "instant must export as an instant";
}

TEST(Trace, StopResetsAndRestartCollectsFresh) {
  start_trace();
  trace_instant("test", "first");
  TraceData one = stop_trace();
  EXPECT_EQ(one.events.size(), 1u);
  EXPECT_FALSE(trace_enabled());

  start_trace();
  trace_instant("test", "second");
  TraceData two = stop_trace();
  ASSERT_EQ(two.events.size(), 1u);
  EXPECT_EQ(two.events[0].name, "second");
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(Metrics, ConsistentUnderConcurrentWriters) {
  MetricsRegistry reg;
  const int threads = 8, per_thread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t)
    pool.emplace_back([&reg, t] {
      Counter& c = reg.counter("obs_test_hits");
      Gauge& g = reg.gauge("obs_test_depth");
      SketchMetric& sk = reg.sketch("obs_test_latency");
      for (int i = 0; i < per_thread; ++i) {
        c.add();
        g.set(static_cast<double>(t));
        sk.record(static_cast<double>(i));
      }
    });
  for (auto& th : pool) th.join();

  const RegistrySnapshot snap = reg.snapshot();
  const std::uint64_t* hits = snap.counter("obs_test_hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, static_cast<std::uint64_t>(threads) * per_thread);
  const double* depth = snap.gauge("obs_test_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GE(*depth, 0.0);
  EXPECT_LT(*depth, static_cast<double>(threads));
  const SketchSummary* lat = snap.sketch("obs_test_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, static_cast<std::uint64_t>(threads) * per_thread);
  EXPECT_EQ(lat->min, 0.0);
  EXPECT_EQ(lat->max, static_cast<double>(per_thread - 1));
  EXPECT_NEAR(lat->p50, per_thread / 2.0, per_thread * 0.05);
}

TEST(Metrics, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  Counter& first = reg.counter("stable");
  // Force rehash/growth pressure: many distinct instruments.
  for (int i = 0; i < 200; ++i) reg.counter("filler_" + std::to_string(i));
  Counter& again = reg.counter("stable");
  EXPECT_EQ(&first, &again);
  first.add(5);
  EXPECT_EQ(again.value(), 5u);
}

TEST(Metrics, CollectorMergeSemantics) {
  MetricsRegistry reg;
  QuantileSketch sk_a(200), sk_b(200);
  for (int i = 0; i < 100; ++i) sk_a.update(static_cast<double>(i));
  for (int i = 100; i < 200; ++i) sk_b.update(static_cast<double>(i));
  // Two independent subsystems reporting the same names: counters must sum,
  // gauges keep the last value, sketches merge.
  reg.add_collector([&](SnapshotBuilder& b) {
    b.counter("dup_hits", 10);
    b.gauge("dup_level", 1.0);
    b.sketch("dup_lat", sk_a);
  });
  const std::uint64_t second = reg.add_collector([&](SnapshotBuilder& b) {
    b.counter("dup_hits", 32);
    b.gauge("dup_level", 2.0);
    b.sketch("dup_lat", sk_b);
  });

  RegistrySnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("dup_hits"), nullptr);
  EXPECT_EQ(*snap.counter("dup_hits"), 42u);
  const SketchSummary* lat = snap.sketch("dup_lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 200u);
  EXPECT_EQ(lat->min, 0.0);
  EXPECT_EQ(lat->max, 199.0);

  reg.remove_collector(second);
  snap = reg.snapshot();
  EXPECT_EQ(*snap.counter("dup_hits"), 10u);
  EXPECT_EQ(snap.sketch("dup_lat")->count, 100u);
}

TEST(Metrics, ExportersCarryEveryMetric) {
  MetricsRegistry reg;
  reg.counter("requests_total").add(3);
  reg.gauge("cache_bytes").set(1024.0);
  SketchMetric& sk = reg.sketch("latency_seconds");
  for (int i = 1; i <= 50; ++i) sk.record(i * 0.001);

  const RegistrySnapshot snap = reg.snapshot();
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("requests_total 3"), std::string::npos);
  EXPECT_NE(prom.find("cache_bytes"), std::string::npos);
  EXPECT_NE(prom.find("latency_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_count 50"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_seconds\""), std::string::npos);
}

TEST(Metrics, PeriodicReporterEmitsFinalSnapshotOnStop) {
  MetricsRegistry reg;
  reg.counter("beats").add(7);
  std::atomic<int> reports{0};
  std::atomic<std::uint64_t> last_beats{0};
  {
    PeriodicReporter rep(reg, 3600.0 /* never fires on its own */, [&](const RegistrySnapshot& s) {
      reports.fetch_add(1);
      if (const std::uint64_t* b = s.counter("beats")) last_beats.store(*b);
    });
    rep.stop();
    rep.stop(); // idempotent
  }
  EXPECT_GE(reports.load(), 1);
  EXPECT_EQ(last_beats.load(), 7u);
}

TEST(Metrics, GlobalRegistrySeesConstructionSketches) {
  // The builders feed block ranks and probe residuals into the global
  // registry; after any construction ran in this process the snapshot must
  // expose them. (CrossLayerSpansLandOnStreamTracks above built one.)
  const RegistrySnapshot snap = MetricsRegistry::global().snapshot();
  const SketchSummary* ranks = snap.sketch("construction_block_rank");
  ASSERT_NE(ranks, nullptr);
  EXPECT_GT(ranks->count, 0u);
  const std::uint64_t* runs = snap.counter("construction_runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_GE(*runs, 1u);
}

} // namespace
} // namespace h2sketch::obs
