#include <gtest/gtest.h>

#include "batched/batched_gemm.hpp"
#include "batched/batched_id.hpp"
#include "batched/batched_qr.hpp"
#include "batched/batched_rand.hpp"
#include "batched/batched_transpose.hpp"
#include "batched/bsr_gemm.hpp"
#include "common/random.hpp"
#include "test_common.hpp"

namespace h2sketch::batched {
namespace {

using test_util::random_matrix;

class BackendTest : public ::testing::TestWithParam<Backend> {};

TEST(ExecutionContext, LaunchAccountingPerBackend) {
  ExecutionContext batched(Backend::Batched);
  batched.run_batch(10, [](index_t) {});
  EXPECT_EQ(batched.kernel_launches(), 1);

  ExecutionContext naive(Backend::Naive);
  naive.run_batch(10, [](index_t) {});
  EXPECT_EQ(naive.kernel_launches(), 10);

  batched.run_batch(0, [](index_t) {});
  EXPECT_EQ(batched.kernel_launches(), 1); // empty batch: no launch
  batched.reset_counters();
  EXPECT_EQ(batched.kernel_launches(), 0);
}

TEST_P(BackendTest, BatchedGemmMatchesPerEntryGemm) {
  ExecutionContext ctx(GetParam());
  // Variable sizes, including an empty entry.
  const std::vector<std::array<index_t, 3>> dims = {{4, 5, 3}, {7, 2, 6}, {0, 3, 2}, {1, 1, 1}};
  std::vector<Matrix> as, bs, cs, refs;
  for (size_t i = 0; i < dims.size(); ++i) {
    as.push_back(random_matrix(dims[i][0], dims[i][2], 10 + i));
    bs.push_back(random_matrix(dims[i][2], dims[i][1], 20 + i));
    cs.push_back(random_matrix(dims[i][0], dims[i][1], 30 + i));
    refs.push_back(to_matrix(cs.back().view()));
  }
  std::vector<ConstMatrixView> av, bv;
  std::vector<MatrixView> cv;
  for (size_t i = 0; i < dims.size(); ++i) {
    av.push_back(as[i].view());
    bv.push_back(bs[i].view());
    cv.push_back(cs[i].view());
  }
  batched_gemm(ctx, 2.0, av, la::Op::None, bv, la::Op::None, 1.0, cv);
  for (size_t i = 0; i < dims.size(); ++i) {
    la::gemm(2.0, as[i].view(), la::Op::None, bs[i].view(), la::Op::None, 1.0, refs[i].view());
    EXPECT_LT(max_abs_diff(cs[i].view(), refs[i].view()), 1e-13);
  }
}

TEST_P(BackendTest, BatchedMinRDiagMatchesSingle) {
  ExecutionContext ctx(GetParam());
  std::vector<Matrix> mats;
  mats.push_back(random_matrix(10, 4, 1));
  mats.push_back(random_matrix(3, 8, 2));
  mats.push_back(Matrix(5, 5)); // zero matrix
  std::vector<ConstMatrixView> views;
  for (auto& m : mats) views.push_back(m.view());
  std::vector<real_t> out(mats.size());
  batched_min_r_diag(ctx, views, out);
  for (size_t i = 0; i < mats.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], la::min_abs_r_diag(mats[i].view()));
}

TEST_P(BackendTest, BatchedRowIdMatchesSingle) {
  ExecutionContext ctx(GetParam());
  std::vector<Matrix> mats;
  mats.push_back(random_matrix(12, 6, 3));
  mats.push_back(random_matrix(5, 9, 4));
  std::vector<ConstMatrixView> views;
  for (auto& m : mats) views.push_back(m.view());
  std::vector<la::RowID> out(mats.size());
  batched_row_id(ctx, views, 1e-10, -1, out);
  for (size_t i = 0; i < mats.size(); ++i) {
    const la::RowID ref = la::row_id(mats[i].view(), 1e-10, -1);
    EXPECT_EQ(out[i].skeleton, ref.skeleton);
    EXPECT_LT(max_abs_diff(out[i].interp.view(), ref.interp.view()), 1e-14);
  }
}

TEST_P(BackendTest, BatchedTranspose) {
  ExecutionContext ctx(GetParam());
  Matrix a = random_matrix(4, 7, 5);
  Matrix b = random_matrix(3, 2, 6);
  Matrix at(7, 4), bt(2, 3);
  std::vector<ConstMatrixView> in = {a.view(), b.view()};
  std::vector<MatrixView> out = {at.view(), bt.view()};
  batched_transpose(ctx, in, out);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 7; ++j) EXPECT_EQ(at(j, i), a(i, j));
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j) EXPECT_EQ(bt(j, i), b(i, j));
}

TEST_P(BackendTest, BatchedGatherRows) {
  ExecutionContext ctx(GetParam());
  Matrix a = random_matrix(6, 3, 7);
  Matrix out(2, 3);
  std::vector<std::vector<index_t>> rows = {{5, 0}};
  std::vector<ConstMatrixView> in = {a.view()};
  std::vector<MatrixView> dst = {out.view()};
  batched_gather_rows(ctx, in, rows, dst);
  for (index_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out(0, j), a(5, j));
    EXPECT_EQ(out(1, j), a(0, j));
  }
}

TEST_P(BackendTest, FillGaussianIdenticalAcrossBackends) {
  // Counter-based RNG: the backend (and hence parallelization) must not
  // change the generated values.
  ExecutionContext ctx(GetParam());
  GaussianStream stream(99);
  Matrix a(64, 8);
  batched_fill_gaussian(ctx, a.view(), stream, 1234);
  Matrix ref(64, 8);
  fill_gaussian(ref.view(), stream, 1234);
  EXPECT_EQ(max_abs_diff(a.view(), ref.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, BackendTest,
                         ::testing::Values(Backend::Naive, Backend::Batched));

/// Random CSR block pattern over `rows` x `cols` nodes with uniform block
/// dims; reference result computed densely.
struct BsrFixture {
  std::vector<index_t> row_ptr, col;
  std::vector<Matrix> block_store;
  std::vector<Matrix> x_store, y_store, y_ref;
  std::vector<ConstMatrixView> blocks, xv;
  std::vector<MatrixView> yv;

  BsrFixture(index_t rows, index_t cols, index_t bm, index_t bn, index_t ncols,
             real_t density, std::uint64_t seed) {
    SmallRng rng(seed);
    row_ptr.push_back(0);
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c = 0; c < cols; ++c)
        if (rng.next_real() < density) col.push_back(c);
      row_ptr.push_back(static_cast<index_t>(col.size()));
    }
    for (size_t e = 0; e < col.size(); ++e)
      block_store.push_back(random_matrix(bm, bn, seed + 100 + e));
    for (index_t c = 0; c < cols; ++c) x_store.push_back(random_matrix(bn, ncols, seed + 500 + c));
    for (index_t r = 0; r < rows; ++r) {
      y_store.push_back(random_matrix(bm, ncols, seed + 900 + r));
      y_ref.push_back(to_matrix(y_store.back().view()));
    }
    for (auto& b : block_store) blocks.push_back(b.view());
    for (auto& x : x_store) xv.push_back(x.view());
    for (auto& y : y_store) yv.push_back(y.view());
  }

  void reference(real_t alpha) {
    for (size_t r = 0; r + 1 < row_ptr.size(); ++r)
      for (index_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e)
        la::gemm(alpha, block_store[static_cast<size_t>(e)].view(), la::Op::None,
                 x_store[static_cast<size_t>(col[static_cast<size_t>(e)])].view(), la::Op::None,
                 1.0, y_ref[r].view());
  }
};

TEST_P(BackendTest, BsrGemmMatchesDenseReference) {
  ExecutionContext ctx(GetParam());
  BsrFixture f(6, 5, 4, 3, 2, 0.5, 42);
  f.reference(-1.0);
  bsr_gemm(ctx, -1.0, f.row_ptr, f.col, f.blocks, f.xv, f.yv);
  for (size_t r = 0; r < f.y_store.size(); ++r)
    EXPECT_LT(max_abs_diff(f.y_store[r].view(), f.y_ref[r].view()), 1e-12);
}

TEST(BsrGemm, LaunchCountIsMaxBlocksPerRow) {
  ExecutionContext ctx(Backend::Batched);
  BsrFixture f(8, 8, 3, 3, 2, 0.4, 7);
  index_t max_row = 0;
  for (size_t r = 0; r + 1 < f.row_ptr.size(); ++r)
    max_row = std::max(max_row, f.row_ptr[r + 1] - f.row_ptr[r]);
  const index_t sub = bsr_gemm(ctx, 1.0, f.row_ptr, f.col, f.blocks, f.xv, f.yv);
  EXPECT_EQ(sub, max_row);
  EXPECT_EQ(ctx.kernel_launches(), max_row); // one launch per sub-batch
}

TEST(BsrGemm, EmptyPatternIsNoop) {
  ExecutionContext ctx(Backend::Batched);
  std::vector<index_t> row_ptr = {0, 0, 0};
  Matrix y0(3, 2), y1(3, 2);
  std::vector<MatrixView> yv = {y0.view(), y1.view()};
  const index_t sub = bsr_gemm(ctx, 1.0, row_ptr, {}, {}, {}, yv);
  EXPECT_EQ(sub, 0);
  EXPECT_EQ(ctx.kernel_launches(), 0);
}

TEST(BsrGemm, RaggedRowsHandled) {
  // Rows with 0, 1 and 3 blocks; block dims vary per entry.
  ExecutionContext ctx(Backend::Batched);
  std::vector<index_t> row_ptr = {0, 0, 1, 4};
  std::vector<index_t> col = {2, 0, 1, 2};
  // Row block heights: y0 2x2, y1 3x2, y2 4x2. Column widths: x0 2, x1 3, x2 5.
  std::vector<index_t> row_m = {2, 3, 4}, col_n = {2, 3, 5};
  std::vector<Matrix> bl;
  bl.push_back(random_matrix(3, 5, 1)); // (1,2)
  bl.push_back(random_matrix(4, 2, 2)); // (2,0)
  bl.push_back(random_matrix(4, 3, 3)); // (2,1)
  bl.push_back(random_matrix(4, 5, 4)); // (2,2)
  std::vector<Matrix> xs, ys, yr;
  for (index_t c = 0; c < 3; ++c) xs.push_back(random_matrix(col_n[static_cast<size_t>(c)], 2, 5 + c));
  for (index_t r = 0; r < 3; ++r) {
    ys.push_back(Matrix(row_m[static_cast<size_t>(r)], 2));
    yr.push_back(Matrix(row_m[static_cast<size_t>(r)], 2));
  }
  std::vector<ConstMatrixView> bv, xv;
  std::vector<MatrixView> yv;
  for (auto& b : bl) bv.push_back(b.view());
  for (auto& x : xs) xv.push_back(x.view());
  for (auto& y : ys) yv.push_back(y.view());
  bsr_gemm(ctx, 1.0, row_ptr, col, bv, xv, yv);
  la::gemm(1.0, bl[0].view(), la::Op::None, xs[2].view(), la::Op::None, 1.0, yr[1].view());
  la::gemm(1.0, bl[1].view(), la::Op::None, xs[0].view(), la::Op::None, 1.0, yr[2].view());
  la::gemm(1.0, bl[2].view(), la::Op::None, xs[1].view(), la::Op::None, 1.0, yr[2].view());
  la::gemm(1.0, bl[3].view(), la::Op::None, xs[2].view(), la::Op::None, 1.0, yr[2].view());
  for (size_t r = 0; r < 3; ++r)
    EXPECT_LT(max_abs_diff(ys[r].view(), yr[r].view()), 1e-12);
  EXPECT_EQ(la::norm_f(ys[0].view()), 0.0);
}

TEST(BsrGemm, NaiveAndBatchedProduceIdenticalResults) {
  BsrFixture f1(5, 4, 3, 3, 2, 0.6, 9);
  BsrFixture f2(5, 4, 3, 3, 2, 0.6, 9);
  ExecutionContext cb(Backend::Batched), cn(Backend::Naive);
  bsr_gemm(cb, 1.0, f1.row_ptr, f1.col, f1.blocks, f1.xv, f1.yv);
  bsr_gemm(cn, 1.0, f2.row_ptr, f2.col, f2.blocks, f2.xv, f2.yv);
  for (size_t r = 0; r < f1.y_store.size(); ++r)
    EXPECT_EQ(max_abs_diff(f1.y_store[r].view(), f2.y_store[r].view()), 0.0);
  EXPECT_GE(cn.kernel_launches(), cb.kernel_launches());
}

} // namespace
} // namespace h2sketch::batched
