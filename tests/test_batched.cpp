#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>

#include "backend/device_matrix.hpp"
#include "backend/registry.hpp"
#include "batched/batched_gemm.hpp"
#include "batched/batched_id.hpp"
#include "batched/batched_qr.hpp"
#include "batched/batched_rand.hpp"
#include "batched/batched_solve.hpp"
#include "batched/batched_transpose.hpp"
#include "batched/bsr_gemm.hpp"
#include "common/random.hpp"
#include "kernels/entry_gen.hpp"
#include "test_common.hpp"

/// \file test_batched.cpp
/// The registry-driven parity suite for the batched-primitive dispatch
/// table: one parameterized fixture iterates every registered backend
/// configuration (naive / cpu / simdevice) and, for every primitive in
/// backend::all_ops(), asserts
///   * bitwise-identical results against the per-entry host reference
///     (hence bitwise identity across all backends, transitively), with
///     operands marshaled into device memory, and
///   * the pinned launch count of the configuration's launch mode.
/// This replaces the former per-op Naive-vs-Batched tests.

namespace h2sketch::batched {
namespace {

using test_util::random_matrix;

/// Launch pins: a batched configuration costs one launch per batch, the
/// naive configuration one launch per entry.
index_t pinned(const std::string& name, index_t batch_entries, index_t batched_launches) {
  return name == "naive" ? batch_entries : batched_launches;
}

/// A device-resident copy of a host matrix plus download-back helpers, so
/// every primitive is exercised across the marshaling boundary.
struct DeviceOperand {
  backend::DeviceMatrix dm;

  DeviceOperand(backend::DeviceBackend& dev, ConstMatrixView host) {
    dm.resize(dev, host.rows, host.cols);
    if (!dm.empty()) dm.upload_from(host);
  }
};

class RegistryBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  RegistryBackendTest() : ctx_(backend::make_backend(GetParam())) {}

  backend::DeviceBackend& dev() { return ctx_.device(); }

  batched::ExecutionContext ctx_;
};

TEST(BackendRegistry, RegistersTheBuiltInConfigurations) {
  const auto names = backend::registered_backends();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_NE(std::find(names.begin(), names.end(), "naive"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "simdevice"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "faulty-cpu"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "faulty-simdevice"), names.end());
  EXPECT_THROW((void)backend::make_backend("cuda"), std::runtime_error);
}

TEST(BackendRegistry, ParitySuiteCoversEveryRegisteredPrimitive) {
  // Every op this suite exercises; extending the dispatch table without
  // extending the suite fails here.
  const std::vector<backend::OpKind> covered = {
      backend::OpKind::Gemm,          backend::OpKind::GatherRows,
      backend::OpKind::BsrGemm,       backend::OpKind::MinRDiag,
      backend::OpKind::MinRDiagUpdate, backend::OpKind::RowId,
      backend::OpKind::FillGaussian,  backend::OpKind::Transpose,
      backend::OpKind::Potrf,         backend::OpKind::TrsmLower,
      backend::OpKind::EntryGen,
  };
  for (backend::OpKind op : backend::all_ops()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), op), covered.end())
        << "primitive '" << backend::op_name(op) << "' has no parity coverage";
    for (std::string_view name : backend::registered_backends())
      EXPECT_TRUE(backend::make_backend(name).device->supports(op))
          << name << " lacks " << backend::op_name(op);
  }
}

TEST_P(RegistryBackendTest, GemmMatchesPerEntryReferenceBitwise) {
  // Variable sizes, including an empty entry.
  const std::vector<std::array<index_t, 3>> dims = {{4, 5, 3}, {7, 2, 6}, {0, 3, 2}, {1, 1, 1}};
  std::vector<Matrix> as, bs, cs, refs;
  std::vector<DeviceOperand> da, db, dc;
  for (size_t i = 0; i < dims.size(); ++i) {
    as.push_back(random_matrix(dims[i][0], dims[i][2], 10 + i));
    bs.push_back(random_matrix(dims[i][2], dims[i][1], 20 + i));
    cs.push_back(random_matrix(dims[i][0], dims[i][1], 30 + i));
    refs.push_back(to_matrix(cs.back().view()));
    da.emplace_back(dev(), as[i].view());
    db.emplace_back(dev(), bs[i].view());
    dc.emplace_back(dev(), cs[i].view());
  }
  std::vector<ConstMatrixView> av, bv;
  std::vector<MatrixView> cv;
  for (size_t i = 0; i < dims.size(); ++i) {
    av.push_back(da[i].dm.view());
    bv.push_back(db[i].dm.view());
    cv.push_back(dc[i].dm.view());
  }
  batched_gemm(ctx_, 2.0, av, la::Op::None, bv, la::Op::None, 1.0, cv);
  for (size_t i = 0; i < dims.size(); ++i) {
    la::gemm(2.0, as[i].view(), la::Op::None, bs[i].view(), la::Op::None, 1.0, refs[i].view());
    const Matrix got = dc[i].dm.to_host();
    EXPECT_EQ(max_abs_diff(got.view(), refs[i].view()), 0.0) << "entry " << i;
  }
  EXPECT_EQ(ctx_.kernel_launches(),
            pinned(GetParam(), static_cast<index_t>(dims.size()), 1));
}

TEST_P(RegistryBackendTest, GatherRowsMatchesReferenceBitwise) {
  Matrix a = random_matrix(6, 3, 7);
  DeviceOperand da(dev(), a.view());
  backend::DeviceMatrix out;
  out.resize(dev(), 2, 3);
  std::vector<std::vector<index_t>> rows = {{5, 0}};
  std::vector<ConstMatrixView> in = {da.dm.view()};
  std::vector<MatrixView> dst = {out.view()};
  batched_gather_rows(ctx_, in, rows, dst);
  const Matrix got = out.to_host();
  for (index_t j = 0; j < 3; ++j) {
    EXPECT_EQ(got(0, j), a(5, j));
    EXPECT_EQ(got(1, j), a(0, j));
  }
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 1, 1));
}

TEST_P(RegistryBackendTest, MinRDiagMatchesSingleBitwise) {
  std::vector<Matrix> mats;
  mats.push_back(random_matrix(10, 4, 1));
  mats.push_back(random_matrix(3, 8, 2));
  mats.push_back(Matrix(5, 5)); // zero matrix
  std::vector<DeviceOperand> dm;
  std::vector<ConstMatrixView> views;
  for (auto& m : mats) {
    dm.emplace_back(dev(), m.view());
    views.push_back(dm.back().dm.view());
  }
  std::vector<real_t> out(mats.size());
  batched_min_r_diag(ctx_, views, out);
  for (size_t i = 0; i < mats.size(); ++i)
    EXPECT_EQ(out[i], la::min_abs_r_diag(mats[i].view()));
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 3, 1));
}

TEST_P(RegistryBackendTest, MinRDiagUpdateMatchesFullProbeBitwise) {
  // Panels grown in three appends (including empty appends and panels wider
  // than tall): after each ingest the incremental probe must equal the
  // from-scratch probe of the full panel bitwise.
  const std::vector<index_t> rows = {10, 3, 2, 5};
  const std::vector<std::array<index_t, 3>> chunks = {{3, 4, 2}, {2, 6, 1}, {4, 3, 2}, {0, 5, 0}};
  std::vector<Matrix> full;
  std::vector<backend::DeviceMatrix> work(rows.size());
  std::vector<std::vector<real_t>> tau(rows.size());
  std::vector<index_t> ingested(rows.size(), 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const index_t total = chunks[i][0] + chunks[i][1] + chunks[i][2];
    full.push_back(random_matrix(rows[i], total, 40 + static_cast<index_t>(i)));
    work[i].resize(dev(), rows[i], 0);
  }
  for (size_t step = 0; step < 3; ++step) {
    std::vector<MatrixView> wv(rows.size());
    std::vector<index_t> factored(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const index_t c0 = ingested[i], dn = chunks[i][step];
      work[i].append_cols(dev(), dn);
      if (dn > 0) dev().upload(full[i].view().col_range(c0, dn), work[i].view().col_range(c0, dn));
      factored[i] = c0;
      wv[i] = work[i].view();
      ingested[i] = c0 + dn;
    }
    std::vector<real_t> out(rows.size());
    batched_min_r_diag_update(ctx_, wv, factored, tau, out);
    for (size_t i = 0; i < rows.size(); ++i)
      EXPECT_EQ(out[i], la::min_abs_r_diag(full[i].view().col_range(0, ingested[i])))
          << "panel " << i << " step " << step;
  }
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 12, 3));
}

TEST_P(RegistryBackendTest, RowIdMatchesSingleBitwise) {
  std::vector<Matrix> mats;
  mats.push_back(random_matrix(12, 6, 3));
  mats.push_back(random_matrix(5, 9, 4));
  std::vector<DeviceOperand> dm;
  std::vector<ConstMatrixView> views;
  for (auto& m : mats) {
    dm.emplace_back(dev(), m.view());
    views.push_back(dm.back().dm.view());
  }
  std::vector<la::RowID> out(mats.size());
  batched_row_id(ctx_, views, 1e-10, -1, out);
  for (size_t i = 0; i < mats.size(); ++i) {
    const la::RowID ref = la::row_id(mats[i].view(), 1e-10, -1);
    EXPECT_EQ(out[i].skeleton, ref.skeleton);
    EXPECT_EQ(max_abs_diff(out[i].interp.view(), ref.interp.view()), 0.0);
  }
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 2, 1));
}

TEST_P(RegistryBackendTest, FillGaussianIdenticalAcrossBackends) {
  // Counter-based RNG: the backend (and hence parallelization) must not
  // change the generated values. Monolithic and per-block forms.
  GaussianStream stream(99);
  backend::DeviceMatrix a;
  a.resize(dev(), 64, 8);
  batched_fill_gaussian(ctx_, a.view(), stream, 1234);
  Matrix ref(64, 8);
  fill_gaussian(ref.view(), stream, 1234);
  EXPECT_EQ(max_abs_diff(a.to_host().view(), ref.view()), 0.0);
  EXPECT_EQ(ctx_.kernel_launches(), 1); // monolithic fill: 1 in either mode

  backend::DeviceMatrix b1, b2;
  b1.resize(dev(), 5, 3);
  b2.resize(dev(), 2, 7);
  const std::vector<MatrixView> blocks = {b1.view(), b2.view()};
  const std::vector<std::uint64_t> offsets = {11, 500};
  batched_fill_gaussian(ctx_, blocks, stream, offsets);
  Matrix r1(5, 3), r2(2, 7);
  fill_gaussian(r1.view(), stream, 11);
  fill_gaussian(r2.view(), stream, 500);
  EXPECT_EQ(max_abs_diff(b1.to_host().view(), r1.view()), 0.0);
  EXPECT_EQ(max_abs_diff(b2.to_host().view(), r2.view()), 0.0);
  EXPECT_EQ(ctx_.kernel_launches(), 1 + pinned(GetParam(), 2, 1));
}

TEST_P(RegistryBackendTest, TransposeMatchesReferenceBitwise) {
  Matrix a = random_matrix(4, 7, 5);
  Matrix b = random_matrix(3, 2, 6);
  DeviceOperand da(dev(), a.view()), db(dev(), b.view());
  backend::DeviceMatrix at, bt;
  at.resize(dev(), 7, 4);
  bt.resize(dev(), 2, 3);
  std::vector<ConstMatrixView> in = {da.dm.view(), db.dm.view()};
  std::vector<MatrixView> out = {at.view(), bt.view()};
  batched_transpose(ctx_, in, out);
  const Matrix hat = at.to_host(), hbt = bt.to_host();
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 7; ++j) EXPECT_EQ(hat(j, i), a(i, j));
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j) EXPECT_EQ(hbt(j, i), b(i, j));
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 2, 1));
}

TEST_P(RegistryBackendTest, PotrfAndTrsmMatchPerEntryReferenceBitwise) {
  SmallRng rng(515);
  const index_t batch = 6;
  std::vector<Matrix> spd(batch), rhs(batch);
  std::vector<DeviceOperand> dspd, drhs;
  for (index_t e = 0; e < batch; ++e) {
    const index_t n = 1 + rng.next_index(20);
    const index_t m = 1 + rng.next_index(8);
    const Matrix g = random_matrix(n, n, 900 + static_cast<std::uint64_t>(e));
    Matrix a(n, n);
    la::gemm(1.0, g.view(), la::Op::None, g.view(), la::Op::Trans, 0.0, a.view());
    for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<real_t>(n);
    spd[static_cast<size_t>(e)] = to_matrix(a.view());
    rhs[static_cast<size_t>(e)] = random_matrix(m, n, 1900 + static_cast<std::uint64_t>(e));
    dspd.emplace_back(dev(), spd[static_cast<size_t>(e)].view());
    drhs.emplace_back(dev(), rhs[static_cast<size_t>(e)].view());
  }
  std::vector<MatrixView> av;
  for (auto& d : dspd) av.push_back(d.dm.view());
  batched_potrf(ctx_, kSampleStream, std::move(av));
  std::vector<ConstMatrixView> lv;
  std::vector<MatrixView> bv;
  for (index_t e = 0; e < batch; ++e) {
    lv.push_back(dspd[static_cast<size_t>(e)].dm.view());
    bv.push_back(drhs[static_cast<size_t>(e)].dm.view());
  }
  batched_trsm_lower(ctx_, kSampleStream, TrsmSide::Right, la::Op::Trans, std::move(lv),
                     std::move(bv));
  ctx_.sync_all();
  for (index_t e = 0; e < batch; ++e) {
    Matrix ref_l = to_matrix(spd[static_cast<size_t>(e)].view());
    la::cholesky(ref_l.view());
    Matrix ref_b = to_matrix(rhs[static_cast<size_t>(e)].view());
    la::trsm_lower_right(ref_l.view(), la::Op::Trans, ref_b.view());
    EXPECT_EQ(max_abs_diff(dspd[static_cast<size_t>(e)].dm.to_host().view(), ref_l.view()), 0.0);
    EXPECT_EQ(max_abs_diff(drhs[static_cast<size_t>(e)].dm.to_host().view(), ref_b.view()), 0.0);
  }
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 2 * batch, 2));
}

TEST_P(RegistryBackendTest, EntryGenMatchesDirectEvaluationBitwise) {
  const Matrix source = random_matrix(16, 16, 88);
  kern::DenseEntryGenerator gen(source.view());
  const std::vector<index_t> rows = {3, 0, 9};
  const std::vector<index_t> cols = {1, 15};
  backend::DeviceMatrix out1, out2;
  out1.resize(dev(), 3, 2);
  out2.resize(dev(), 2, 3);
  std::vector<kern::BlockRequest> reqs = {{rows, cols, out1.view()}, {cols, rows, out2.view()}};
  kern::batched_generate(ctx_, gen, reqs);
  Matrix ref1(3, 2), ref2(2, 3);
  gen.generate_block(rows, cols, ref1.view());
  gen.generate_block(cols, rows, ref2.view());
  EXPECT_EQ(max_abs_diff(out1.to_host().view(), ref1.view()), 0.0);
  EXPECT_EQ(max_abs_diff(out2.to_host().view(), ref2.view()), 0.0);
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), 2, 1));
}

/// Random CSR block pattern over `rows` x `cols` nodes with uniform block
/// dims; reference result computed densely. Operands are device-resident.
struct BsrFixture {
  std::vector<index_t> row_ptr, col;
  std::vector<Matrix> block_store, x_store, y_store, y_ref;
  std::vector<backend::DeviceMatrix> dblocks, dx, dy;
  std::vector<ConstMatrixView> blocks, xv;
  std::vector<MatrixView> yv;

  BsrFixture(backend::DeviceBackend& dev, index_t rows, index_t cols, index_t bm, index_t bn,
             index_t ncols, real_t density, std::uint64_t seed) {
    SmallRng rng(seed);
    row_ptr.push_back(0);
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c = 0; c < cols; ++c)
        if (rng.next_real() < density) col.push_back(c);
      row_ptr.push_back(static_cast<index_t>(col.size()));
    }
    for (size_t e = 0; e < col.size(); ++e)
      block_store.push_back(random_matrix(bm, bn, seed + 100 + e));
    for (index_t c = 0; c < cols; ++c) x_store.push_back(random_matrix(bn, ncols, seed + 500 + c));
    for (index_t r = 0; r < rows; ++r) {
      y_store.push_back(random_matrix(bm, ncols, seed + 900 + r));
      y_ref.push_back(to_matrix(y_store.back().view()));
    }
    auto device_copies = [&dev](const std::vector<Matrix>& host,
                                std::vector<backend::DeviceMatrix>& out) {
      out.resize(host.size());
      for (size_t i = 0; i < host.size(); ++i) {
        out[i].resize(dev, host[i].rows(), host[i].cols());
        if (!out[i].empty()) out[i].upload_from(host[i].view());
      }
    };
    device_copies(block_store, dblocks);
    device_copies(x_store, dx);
    device_copies(y_store, dy);
    for (auto& b : dblocks) blocks.push_back(b.view());
    for (auto& x : dx) xv.push_back(x.view());
    for (auto& y : dy) yv.push_back(y.view());
  }

  index_t max_blocks_per_row() const {
    index_t mx = 0;
    for (size_t r = 0; r + 1 < row_ptr.size(); ++r) mx = std::max(mx, row_ptr[r + 1] - row_ptr[r]);
    return mx;
  }

  void reference(real_t alpha) {
    for (size_t r = 0; r + 1 < row_ptr.size(); ++r)
      for (index_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e)
        la::gemm(alpha, block_store[static_cast<size_t>(e)].view(), la::Op::None,
                 x_store[static_cast<size_t>(col[static_cast<size_t>(e)])].view(), la::Op::None,
                 1.0, y_ref[r].view());
  }
};

TEST_P(RegistryBackendTest, BsrGemmMatchesDenseReferenceBitwise) {
  BsrFixture f(dev(), 6, 5, 4, 3, 2, 0.5, 42);
  f.reference(-1.0);
  const index_t sub = bsr_gemm(ctx_, -1.0, f.row_ptr, f.col, f.blocks, f.xv, f.yv);
  EXPECT_EQ(sub, f.max_blocks_per_row());
  for (size_t r = 0; r < f.dy.size(); ++r)
    EXPECT_EQ(max_abs_diff(f.dy[r].to_host().view(), f.y_ref[r].view()), 0.0);
  // One launch per sub-batch; the naive mode pays the per-entry price for
  // each of the `rows` entries of every sub-batch.
  const index_t rows = static_cast<index_t>(f.row_ptr.size()) - 1;
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), sub * rows, sub));
}

TEST_P(RegistryBackendTest, BsrGemmHandlesRaggedRowsAndHeterogeneousBlocks) {
  // Rows with 0, 1 and 3 blocks; block dims vary per entry — the shape a
  // real level mix produces, and the case a uniform-dims-only backend
  // override would get wrong.
  std::vector<index_t> row_ptr = {0, 0, 1, 4};
  std::vector<index_t> col = {2, 0, 1, 2};
  // Row block heights: y0 2x2, y1 3x2, y2 4x2. Column widths: x0 2, x1 3, x2 5.
  std::vector<index_t> row_m = {2, 3, 4}, col_n = {2, 3, 5};
  std::vector<Matrix> bl;
  bl.push_back(random_matrix(3, 5, 1)); // (1,2)
  bl.push_back(random_matrix(4, 2, 2)); // (2,0)
  bl.push_back(random_matrix(4, 3, 3)); // (2,1)
  bl.push_back(random_matrix(4, 5, 4)); // (2,2)
  std::vector<Matrix> xs, yr;
  for (index_t c = 0; c < 3; ++c)
    xs.push_back(random_matrix(col_n[static_cast<size_t>(c)], 2, 5 + c));
  for (index_t r = 0; r < 3; ++r) yr.push_back(Matrix(row_m[static_cast<size_t>(r)], 2));
  std::vector<DeviceOperand> dbl, dxs;
  std::vector<backend::DeviceMatrix> dys(3);
  std::vector<ConstMatrixView> bv, xv;
  std::vector<MatrixView> yv;
  for (auto& b : bl) {
    dbl.emplace_back(dev(), b.view());
    bv.push_back(dbl.back().dm.view());
  }
  for (auto& x : xs) {
    dxs.emplace_back(dev(), x.view());
    xv.push_back(dxs.back().dm.view());
  }
  for (index_t r = 0; r < 3; ++r) {
    dys[static_cast<size_t>(r)].resize(dev(), row_m[static_cast<size_t>(r)], 2);
    yv.push_back(dys[static_cast<size_t>(r)].view());
  }
  const index_t sub = bsr_gemm(ctx_, 1.0, row_ptr, col, bv, xv, yv);
  EXPECT_EQ(sub, 3);
  la::gemm(1.0, bl[0].view(), la::Op::None, xs[2].view(), la::Op::None, 1.0, yr[1].view());
  la::gemm(1.0, bl[1].view(), la::Op::None, xs[0].view(), la::Op::None, 1.0, yr[2].view());
  la::gemm(1.0, bl[2].view(), la::Op::None, xs[1].view(), la::Op::None, 1.0, yr[2].view());
  la::gemm(1.0, bl[3].view(), la::Op::None, xs[2].view(), la::Op::None, 1.0, yr[2].view());
  for (size_t r = 0; r < 3; ++r)
    EXPECT_EQ(max_abs_diff(dys[r].to_host().view(), yr[r].view()), 0.0);
  EXPECT_EQ(la::norm_f(dys[0].to_host().view()), 0.0); // blockless row untouched
  EXPECT_EQ(ctx_.kernel_launches(), pinned(GetParam(), sub * 3, sub));
}

TEST_P(RegistryBackendTest, BsrGemmEmptyPatternIsNoop) {
  std::vector<index_t> row_ptr = {0, 0, 0};
  Matrix y0(3, 2), y1(3, 2);
  std::vector<MatrixView> yv = {y0.view(), y1.view()};
  const index_t sub = bsr_gemm(ctx_, 1.0, row_ptr, {}, {}, {}, yv);
  EXPECT_EQ(sub, 0);
  EXPECT_EQ(ctx_.kernel_launches(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredBackends, RegistryBackendTest,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (std::string_view n : backend::registered_backends())
                             names.emplace_back(n);
                           return names;
                         }()),
                         [](const auto& info) {
                           // gtest parameter names must be alphanumeric:
                           // "faulty-cpu" -> "faulty_cpu".
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(ExecutionContext, LaunchAccountingPerBackend) {
  ExecutionContext batched(Backend::Batched);
  batched.run_batch(10, [](index_t) {});
  EXPECT_EQ(batched.kernel_launches(), 1);

  ExecutionContext naive(Backend::Naive);
  naive.run_batch(10, [](index_t) {});
  EXPECT_EQ(naive.kernel_launches(), 10);

  batched.run_batch(0, [](index_t) {});
  EXPECT_EQ(batched.kernel_launches(), 1); // empty batch: no launch
  batched.reset_counters();
  EXPECT_EQ(batched.kernel_launches(), 0);
}

} // namespace
} // namespace h2sketch::batched
