#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "batched/device.hpp"
#include "common/random.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "la/blas.hpp"
#include "test_common.hpp"

namespace h2sketch::kern {
namespace {

TEST(Kernels, ExponentialValuesAndSymmetry) {
  ExponentialKernel k(0.2);
  const real_t x[3] = {0, 0, 0}, y[3] = {0.2, 0, 0};
  EXPECT_DOUBLE_EQ(k.evaluate(x, x, 3), 1.0);
  EXPECT_NEAR(k.evaluate(x, y, 3), std::exp(-1.0), 1e-15);
  EXPECT_DOUBLE_EQ(k.evaluate(x, y, 3), k.evaluate(y, x, 3));
}

TEST(Kernels, HelmholtzCosMatchesFormulaOffDiagonal) {
  HelmholtzCosKernel k(3.0);
  const real_t x[3] = {0, 0, 0}, y[3] = {0.5, 0, 0};
  EXPECT_NEAR(k.evaluate(x, y, 3), std::cos(1.5) / 0.5, 1e-15);
  EXPECT_GT(k.evaluate(x, x, 3), 0.0); // finite self term
}

TEST(Kernels, GaussianAndMaternDecay) {
  GaussianKernel g(0.2);
  Matern32Kernel m(0.2);
  const real_t x[3] = {0, 0, 0};
  real_t prev_g = 2, prev_m = 2;
  for (real_t r = 0.0; r < 1.0; r += 0.1) {
    const real_t y[3] = {r, 0, 0};
    const real_t vg = g.evaluate(x, y, 3), vm = m.evaluate(x, y, 3);
    EXPECT_LT(vg, prev_g);
    EXPECT_LT(vm, prev_m);
    EXPECT_GT(vg, 0.0);
    EXPECT_GT(vm, 0.0);
    prev_g = vg;
    prev_m = vm;
  }
  const real_t origin[3] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(g.evaluate(origin, origin, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.evaluate(origin, origin, 3), 1.0);
}

TEST(Kernels, LaplaceSingularityGuardedByDiagonal) {
  Laplace3dKernel k(42.0);
  const real_t x[3] = {0.25, 0.5, 0.75};
  EXPECT_DOUBLE_EQ(k.evaluate(x, x, 3), 42.0);
  const real_t y[3] = {0.25, 0.5, 1.75};
  EXPECT_DOUBLE_EQ(k.evaluate(x, y, 3), 1.0);
}

class EntryGenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = test_util::build_cube_tree(100, 3, 3, 16);
    kernel_ = std::make_unique<ExponentialKernel>(0.2);
    gen_ = std::make_unique<KernelEntryGenerator>(*tree_, *kernel_);
  }
  std::shared_ptr<tree::ClusterTree> tree_;
  std::unique_ptr<ExponentialKernel> kernel_;
  std::unique_ptr<KernelEntryGenerator> gen_;
};

TEST_F(EntryGenFixture, MatchesDirectKernelEvaluationThroughPermutation) {
  std::vector<index_t> rows = {0, 17, 42}, cols = {5, 99};
  Matrix out(3, 2);
  gen_->generate_block(rows, cols, out.view());
  const auto& pts = tree_->points();
  for (size_t i = 0; i < rows.size(); ++i)
    for (size_t j = 0; j < cols.size(); ++j) {
      real_t x[3], y[3];
      for (index_t d = 0; d < 3; ++d) {
        x[d] = pts.coord(tree_->original_index(rows[i]), d);
        y[d] = pts.coord(tree_->original_index(cols[j]), d);
      }
      EXPECT_DOUBLE_EQ(out(static_cast<index_t>(i), static_cast<index_t>(j)),
                       kernel_->evaluate(x, y, 3));
    }
  EXPECT_EQ(gen_->entries_generated(), 6);
}

TEST_F(EntryGenFixture, BatchedGenerateIsOneLaunch) {
  batched::ExecutionContext ctx(batched::Backend::Batched);
  Matrix o1(4, 4), o2(2, 7);
  std::vector<index_t> r1 = {0, 1, 2, 3}, c1 = {10, 11, 12, 13};
  std::vector<index_t> r2 = {50, 60}, c2 = {1, 2, 3, 4, 5, 6, 7};
  std::vector<BlockRequest> reqs = {{r1, c1, o1.view()}, {r2, c2, o2.view()}};
  batched_generate(ctx, *gen_, reqs);
  EXPECT_EQ(ctx.kernel_launches(), 1);
  EXPECT_EQ(gen_->entries_generated(), 16 + 14);
  // Spot-check one entry of each block.
  Matrix ref(1, 1);
  std::vector<index_t> rr = {r2[1]}, cc = {c2[6]};
  gen_->generate_block(rr, cc, ref.view());
  EXPECT_DOUBLE_EQ(o2(1, 6), ref(0, 0));
}

TEST_F(EntryGenFixture, SymmetryOfGeneratedBlocks) {
  std::vector<index_t> idx = {3, 30, 77};
  Matrix a(3, 3);
  gen_->generate_block(idx, idx, a.view());
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
}

TEST(DenseEntryGenerator, ReadsFromMatrix) {
  Matrix a(5, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i) a(i, j) = static_cast<real_t>(10 * i + j);
  DenseEntryGenerator gen(a.view());
  std::vector<index_t> rows = {4, 2}, cols = {1, 3, 0};
  Matrix out(2, 3);
  gen.generate_block(rows, cols, out.view());
  EXPECT_EQ(out(0, 0), 41.0);
  EXPECT_EQ(out(1, 2), 20.0);
}

TEST(DenseMatrixSampler, MatchesGemmAndCountsSamples) {
  const Matrix a = test_util::random_matrix(6, 6, 4);
  DenseMatrixSampler s(a.view());
  Matrix omega(6, 3), y(6, 3), ref(6, 3);
  fill_gaussian(omega.view(), GaussianStream(5));
  s.sample(omega.view(), y.view());
  la::gemm(1.0, a.view(), la::Op::None, omega.view(), la::Op::None, 0.0, ref.view());
  EXPECT_LT(max_abs_diff(y.view(), ref.view()), 1e-13);
  EXPECT_EQ(s.samples_taken(), 3);
  s.sample(omega.view(), y.view());
  EXPECT_EQ(s.samples_taken(), 6);
}

TEST(KernelMatVecSampler, MatchesDenseKernelMatrix) {
  auto tr = test_util::build_cube_tree(300, 3, 6, 32);
  ExponentialKernel k(0.2);
  KernelMatVecSampler s(*tr, k);
  // Dense reference via the entry generator.
  const Matrix kd = test_util::dense_kernel_matrix(*tr, k);
  Matrix omega(300, 4), y(300, 4), ref(300, 4);
  fill_gaussian(omega.view(), GaussianStream(7));
  s.sample(omega.view(), y.view());
  la::gemm(1.0, kd.view(), la::Op::None, omega.view(), la::Op::None, 0.0, ref.view());
  EXPECT_LT(max_abs_diff(y.view(), ref.view()), 1e-11);
}

} // namespace
} // namespace h2sketch::kern
