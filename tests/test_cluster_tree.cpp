#include "tree/cluster_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "test_common.hpp"

namespace h2sketch::tree {
namespace {

struct TreeCase {
  index_t n;
  index_t dim;
  index_t leaf_size;
  std::uint64_t seed;
};

class ClusterTreeProps : public ::testing::TestWithParam<TreeCase> {
 protected:
  ClusterTree make() const {
    const auto p = GetParam();
    return test_util::cube_tree(p.n, p.dim, p.seed, p.leaf_size);
  }
};

TEST_P(ClusterTreeProps, PermIsABijection) {
  const ClusterTree t = make();
  std::vector<index_t> sorted = t.perm();
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < t.num_points(); ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST_P(ClusterTreeProps, EveryLevelPartitionsTheIndexRange) {
  const ClusterTree t = make();
  for (index_t l = 0; l < t.num_levels(); ++l) {
    index_t expect_begin = 0;
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      EXPECT_EQ(t.begin(l, i), expect_begin);
      EXPECT_GE(t.size(l, i), 0);
      expect_begin = t.end(l, i);
    }
    EXPECT_EQ(expect_begin, t.num_points());
  }
}

TEST_P(ClusterTreeProps, ChildrenPartitionParent) {
  const ClusterTree t = make();
  for (index_t l = 0; l + 1 < t.num_levels(); ++l) {
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      EXPECT_EQ(t.begin(l + 1, 2 * i), t.begin(l, i));
      EXPECT_EQ(t.end(l + 1, 2 * i), t.begin(l + 1, 2 * i + 1));
      EXPECT_EQ(t.end(l + 1, 2 * i + 1), t.end(l, i));
    }
  }
}

TEST_P(ClusterTreeProps, LeafSizesBoundedAndBalanced) {
  const ClusterTree t = make();
  const index_t l = t.leaf_level();
  index_t mn = t.num_points(), mx = 0;
  for (index_t i = 0; i < t.nodes_at(l); ++i) {
    mn = std::min(mn, t.size(l, i));
    mx = std::max(mx, t.size(l, i));
  }
  // Depth may be capped when leaf_size is tiny so that no leaf is empty;
  // otherwise the requested bound holds.
  const bool depth_capped = 2 * t.nodes_at(l) > t.num_points();
  if (!depth_capped) EXPECT_LE(mx, GetParam().leaf_size);
  EXPECT_GE(mn, 1);
  EXPECT_LE(mx - mn, 1); // median splits keep siblings within one point
}

TEST_P(ClusterTreeProps, BoxesContainTheirPoints) {
  const ClusterTree t = make();
  for (index_t l = 0; l < t.num_levels(); ++l) {
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      const auto& box = t.box(l, i);
      for (index_t p = t.begin(l, i); p < t.end(l, i); ++p)
        EXPECT_TRUE(box.contains(t.points(), t.original_index(p)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesDimsLeaves, ClusterTreeProps,
    ::testing::Values(TreeCase{256, 3, 32, 1}, TreeCase{1000, 3, 64, 2}, TreeCase{513, 2, 16, 3},
                      TreeCase{777, 1, 8, 4}, TreeCase{64, 3, 64, 5}, TreeCase{65, 3, 64, 6},
                      TreeCase{100, 2, 1, 7}));

TEST(ClusterTree, SingleNodeWhenLeafCoversAll) {
  const ClusterTree t = test_util::cube_tree(50, 3, 8, 64);
  EXPECT_EQ(t.num_levels(), 1);
  EXPECT_EQ(t.leaf_level(), 0);
  EXPECT_EQ(t.size(0, 0), 50);
}

TEST(ClusterTree, DepthMatchesLeafBound) {
  const ClusterTree t = test_util::cube_tree(1024, 3, 9, 64);
  // 1024 / 64 = 16 leaves -> 5 levels (root + 4 splits).
  EXPECT_EQ(t.num_levels(), 5);
  EXPECT_EQ(t.max_leaf_size(), 64);
}

TEST(ClusterTree, DuplicatePointsAreHandled) {
  geo::PointCloud pc(128, 3); // all points identical at the origin
  const ClusterTree t = ClusterTree::build(pc, 16);
  EXPECT_EQ(t.max_leaf_size(), 16);
  for (index_t i = 0; i < t.nodes_at(t.leaf_level()); ++i)
    EXPECT_DOUBLE_EQ(t.box(t.leaf_level(), i).diameter(), 0.0);
}

TEST(ClusterTree, SplitsReduceBoxExtentAlongSomeAxis) {
  const ClusterTree t = test_util::cube_tree(512, 3, 10, 32);
  // Child diameters never exceed the parent's.
  for (index_t l = 0; l + 1 < t.num_levels(); ++l)
    for (index_t i = 0; i < t.nodes_at(l); ++i) {
      EXPECT_LE(t.box(l + 1, 2 * i).diameter(), t.box(l, i).diameter() + 1e-12);
      EXPECT_LE(t.box(l + 1, 2 * i + 1).diameter(), t.box(l, i).diameter() + 1e-12);
    }
}

TEST(ClusterTree, CoordPermutedConsistent) {
  const ClusterTree t = test_util::cube_tree(100, 2, 11, 10);
  for (index_t p = 0; p < 100; ++p)
    for (index_t d = 0; d < 2; ++d)
      EXPECT_EQ(t.coord_permuted(p, d), t.points().coord(t.original_index(p), d));
}

} // namespace
} // namespace h2sketch::tree
