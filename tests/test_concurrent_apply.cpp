#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "backend/registry.hpp"
#include "batched/device.hpp"
#include "core/construction.hpp"
#include "h2/h2_matvec.hpp"
#include "kernels/dense_sampler.hpp"
#include "kernels/entry_gen.hpp"
#include "kernels/kernels.hpp"
#include "solver/hss_construction.hpp"
#include "solver/ulv.hpp"
#include "test_common.hpp"

/// \file test_concurrent_apply.cpp
/// The serving-layer concurrency contract, pinned for the TSan job: a
/// compressed operator is read-only after construction, so N threads
/// applying the *same* operator through *distinct* ExecutionContexts must
/// race-check clean and produce results bitwise equal to a serial
/// application. Covers h2_matvec, HssMatrix::matvec, UlvCholesky::solve /
/// solve_many, and the H2Sampler whose embedded context is internally
/// serialized.

namespace h2sketch {
namespace {

constexpr int kThreads = 8;

using test_util::dense_kernel_matrix;
using test_util::random_matrix;

struct SharedOperators {
  std::shared_ptr<tree::ClusterTree> tr;
  kern::ExponentialKernel base{0.3};
  kern::RidgeKernel k{base, 1.0};
  h2::H2Matrix h2m;
  solver::HssMatrix hss;
  solver::UlvCholesky ulv;

  SharedOperators() {
    tr = test_util::build_cube_tree(256, 2, 99, 16);
    const Matrix kd = dense_kernel_matrix(*tr, k);
    core::ConstructionOptions opts;
    opts.tol = 1e-8;
    opts.sample_block = 16;
    opts.initial_samples = 32;
    batched::ExecutionContext ctx;
    {
      kern::DenseMatrixSampler sampler(kd.view());
      kern::KernelEntryGenerator gen(*tr, k);
      h2m = core::construct_h2(tr, tree::Admissibility::general(0.7), sampler, gen, opts, ctx)
                .matrix;
    }
    {
      kern::DenseMatrixSampler sampler(kd.view());
      kern::KernelEntryGenerator gen(*tr, k);
      auto res = solver::build_hss(tr, sampler, gen, opts, ctx);
      ulv = solver::ulv_factor(res.matrix, ctx);
      hss = std::move(res.matrix);
    }
  }

  static const SharedOperators& get() {
    static SharedOperators ops;
    return ops;
  }
};

/// Run `apply(ctx, thread_index)` serially once per thread index, then again
/// from kThreads concurrent threads with per-thread contexts, and require
/// the concurrent results to be bitwise equal to the serial ones.
template <typename Apply>
void expect_concurrent_matches_serial(index_t n, index_t d, const Apply& apply) {
  std::vector<Matrix> serial(kThreads), concurrent(kThreads, Matrix());
  for (int t = 0; t < kThreads; ++t) {
    serial[static_cast<size_t>(t)] = Matrix(n, d);
    batched::ExecutionContext ctx;
    apply(ctx, t, serial[static_cast<size_t>(t)]);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      concurrent[static_cast<size_t>(t)] = Matrix(n, d);
      batched::ExecutionContext ctx; // distinct context per thread
      apply(ctx, t, concurrent[static_cast<size_t>(t)]);
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(max_abs_diff(concurrent[static_cast<size_t>(t)].view(),
                           serial[static_cast<size_t>(t)].view()),
              0.0)
        << "thread " << t;
}

TEST(ConcurrentApply, H2MatvecBitwiseEqualAcrossEightThreads) {
  const auto& ops = SharedOperators::get();
  const index_t n = ops.h2m.size();
  std::vector<Matrix> inputs;
  for (int t = 0; t < kThreads; ++t) inputs.push_back(random_matrix(n, 2, 100 + t));
  expect_concurrent_matches_serial(n, 2, [&](batched::ExecutionContext& ctx, int t, Matrix& y) {
    h2::h2_matvec(ctx, ops.h2m, inputs[static_cast<size_t>(t)].view(), y.view());
  });
}

TEST(ConcurrentApply, HssMatvecBitwiseEqualAcrossEightThreads) {
  const auto& ops = SharedOperators::get();
  const index_t n = ops.hss.size();
  std::vector<Matrix> inputs;
  for (int t = 0; t < kThreads; ++t) inputs.push_back(random_matrix(n, 2, 200 + t));
  expect_concurrent_matches_serial(n, 2, [&](batched::ExecutionContext& ctx, int t, Matrix& y) {
    ops.hss.matvec(ctx, inputs[static_cast<size_t>(t)].view(), y.view());
  });
}

TEST(ConcurrentApply, UlvSolveManyBitwiseEqualAcrossEightThreads) {
  const auto& ops = SharedOperators::get();
  const index_t n = ops.ulv.size();
  std::vector<Matrix> inputs;
  for (int t = 0; t < kThreads; ++t) inputs.push_back(random_matrix(n, 2, 300 + t));
  expect_concurrent_matches_serial(n, 2, [&](batched::ExecutionContext& ctx, int t, Matrix& x) {
    ops.ulv.solve_many(inputs[static_cast<size_t>(t)].view(), x.view(), ctx);
  });
}

TEST(ConcurrentApply, UlvSingleSolveBitwiseEqualAcrossEightThreads) {
  const auto& ops = SharedOperators::get();
  const index_t n = ops.ulv.size();
  std::vector<std::vector<real_t>> inputs;
  for (int t = 0; t < kThreads; ++t)
    inputs.push_back(test_util::random_vector(n, static_cast<std::uint64_t>(400 + t)));
  expect_concurrent_matches_serial(n, 1, [&](batched::ExecutionContext& ctx, int t, Matrix& x) {
    ops.ulv.solve(inputs[static_cast<size_t>(t)],
                  real_span(x.data(), static_cast<size_t>(n)), ctx);
  });
}

TEST(ConcurrentApply, SharedH2SamplerSerializesItsEmbeddedContext) {
  // One H2Sampler instance shared by every thread: its embedded context is
  // mutable shared state, so sample() serializes internally. Results must
  // still match the serial pass bitwise.
  const auto& ops = SharedOperators::get();
  const index_t n = ops.h2m.size();
  std::vector<Matrix> inputs;
  for (int t = 0; t < kThreads; ++t) inputs.push_back(random_matrix(n, 2, 500 + t));

  h2::H2Sampler sampler(ops.h2m);
  std::vector<Matrix> serial(kThreads), concurrent(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    serial[static_cast<size_t>(t)] = Matrix(n, 2);
    sampler.sample(inputs[static_cast<size_t>(t)].view(), serial[static_cast<size_t>(t)].view());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      concurrent[static_cast<size_t>(t)] = Matrix(n, 2);
      sampler.sample(inputs[static_cast<size_t>(t)].view(),
                     concurrent[static_cast<size_t>(t)].view());
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(max_abs_diff(concurrent[static_cast<size_t>(t)].view(),
                           serial[static_cast<size_t>(t)].view()),
              0.0);
  EXPECT_EQ(sampler.samples_taken(), static_cast<index_t>(2 * kThreads * 2)); // 2 cols x 2 passes
}

} // namespace
} // namespace h2sketch
